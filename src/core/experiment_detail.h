// Internal to the core experiment engine: resolution of everything a run
// consumes *before* any event fires — per-cluster workload parameters,
// the memoized job streams, and the user/redundancy draws — shared by the
// classic sequential kernel (experiment.cpp) and the conservative
// parallel kernel (pdes_experiment.cpp).
//
// The fork order across resolve_clusters() + resolve_streams() is
// load-bearing twice over: the TraceCache keys on the workload/estimator
// generator states, and paired runs (scheme vs. NONE, sequential vs. PDES
// at the same latency) rely on byte-identical streams and draws. Do not
// reorder the master forks.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "rrsim/core/experiment.h"
#include "rrsim/grid/platform.h"
#include "rrsim/util/rng.h"
#include "rrsim/workload/calibrate.h"
#include "rrsim/workload/estimators.h"
#include "rrsim/workload/swf.h"
#include "rrsim/workload/trace_cache.h"

namespace rrsim::core::detail {

// Distinct substream tags so each model component draws independent
// randomness from the master seed.
enum Substream : std::uint64_t {
  kStreamWorkloadBase = 1000,
  kStreamEstimatorBase = 2000,
  kStreamRedundancy = 3000,
  kStreamPlacement = 3001,
  kStreamCalibration = 3002,
  kStreamUsers = 3003,
};

/// One cluster's job stream: memoized (Lublin path) or owned (SWF path).
struct ClusterStream {
  workload::TraceCache::StreamPtr shared;  // Lublin path (memoized)
  workload::JobStream own;                 // SWF path
  const workload::JobStream& get() const noexcept {
    return shared ? *shared : own;
  }
};

/// Pre-drawn per-job user attribution and redundancy coin flip, in
/// cluster-major job order — the order every arrival mechanism (and both
/// kernels) consumes the user/redundancy substreams. 8 bytes per job.
struct Draw {
  std::uint32_t user = 0;
  bool redundant = false;
};

/// Output of resolve_clusters(): validated platform shape plus the master
/// generator, positioned exactly where the historical inline code left it
/// (calibration substream consumed).
struct ResolvedClusters {
  std::vector<grid::ClusterConfig> cluster_configs;
  util::Rng master{0};
};

/// Output of resolve_streams().
struct ResolvedStreams {
  std::vector<ClusterStream> streams;
  std::vector<Draw> draws;  ///< cluster-major, one per generated job
  util::Rng placement_rng{0};
  std::size_t jobs_generated = 0;
};

/// Validates the platform/workload half of `config` and resolves the
/// per-cluster workload parameters. Deterministic in config.seed.
inline ResolvedClusters resolve_clusters(const ExperimentConfig& config) {
  if (config.n_clusters == 0) {
    throw std::invalid_argument("need >= 1 cluster");
  }
  if (!config.cluster_nodes.empty() &&
      config.cluster_nodes.size() != config.n_clusters) {
    throw std::invalid_argument("cluster_nodes size mismatch");
  }
  if (!config.cluster_mean_iat.empty() &&
      config.cluster_mean_iat.size() != config.n_clusters) {
    throw std::invalid_argument("cluster_mean_iat size mismatch");
  }
  if (config.redundant_fraction < 0.0 || config.redundant_fraction > 1.0) {
    throw std::invalid_argument("redundant_fraction must be in [0, 1]");
  }
  if (config.submit_horizon < 0.0) {
    throw std::invalid_argument("submit_horizon must be >= 0");
  }

  ResolvedClusters out{{}, util::Rng(config.seed)};

  // Calibration and stream generation use substreams that depend only on
  // the seed and the cluster index, never on the redundancy scheme, so
  // paired runs (scheme vs. NONE) see identical job streams.
  out.cluster_configs.resize(config.n_clusters);
  {
    util::Rng calib_rng = out.master.fork(kStreamCalibration);
    for (std::size_t i = 0; i < config.n_clusters; ++i) {
      grid::ClusterConfig& cc = out.cluster_configs[i];
      cc.nodes = config.nodes_of(i);
      cc.workload = config.base_workload;
      if (!config.cluster_mean_iat.empty()) {
        cc.workload =
            cc.workload.with_mean_interarrival(config.cluster_mean_iat[i]);
      } else if (config.load_mode == LoadMode::kSharedPeak) {
        cc.workload = cc.workload.with_mean_interarrival(
            cc.workload.mean_interarrival() *
            static_cast<double>(config.n_clusters));
      } else if (config.load_mode == LoadMode::kCalibrated) {
        cc.workload = workload::calibrate_params(
            cc.workload, cc.nodes, config.target_utilization, calib_rng);
      }
      // kPerClusterPeak keeps the literal model rate.
    }
  }

  if (config.per_user_pending_limit < 0 || config.users_per_cluster < 1) {
    throw std::invalid_argument("invalid per-user limit configuration");
  }
  return out;
}

/// Loads one SWF trace file filtered for one cluster: submit times shifted
/// to t=0 (clamped to 1e-6 so nothing arrives "before" the simulation),
/// cut at the horizon, jobs wider than the cluster dropped. This is THE
/// entry point for file-backed traces — the retained path materializes its
/// result directly and the windowed path spools it (window_spool.h), so
/// both replay byte-identical job sequences, including the post-read_swf
/// order of integer-time ties within a file.
inline workload::JobStream load_swf_stream(const std::string& path,
                                           double horizon, int max_nodes) {
  // rrsim-lint-allow(stream-materialization): the one sanctioned read_swf
  // call in core — SWF parsing must see the whole file for the stable
  // submit-time sort (ties keep file order; the tie-break explorer in
  // tools/check relies on that baseline). Retained mode keeps the result,
  // windowed mode spools it to disk and drops it; every other core/exec
  // call site must go through this loader or a WindowSpool reader.
  const workload::JobStream whole = workload::read_swf_file(path);
  const double t0 = whole.empty() ? 0.0 : whole.front().submit_time;
  workload::JobStream filtered;
  for (workload::JobSpec spec : whole) {
    spec.submit_time -= t0;
    if (spec.submit_time > horizon) break;
    if (spec.submit_time <= 0.0) spec.submit_time = 1e-6;
    if (spec.nodes > max_nodes) continue;
    filtered.push_back(spec);
  }
  return filtered;
}

/// Resolves the job streams (memoized via the TraceCache on the Lublin
/// path) and the cluster-major user/redundancy draws. `master` must be
/// the generator resolve_clusters() returned, untouched in between.
inline ResolvedStreams resolve_streams(
    const ExperimentConfig& config,
    const std::vector<grid::ClusterConfig>& cluster_configs,
    util::Rng& master, const workload::RuntimeEstimator& estimator) {
  ResolvedStreams out;
  util::Rng redundancy_rng = master.fork(kStreamRedundancy);
  util::Rng users_rng = master.fork(kStreamUsers);
  out.placement_rng = master.fork(kStreamPlacement);
  // Streams for all clusters are resolved up front, shared by every
  // consumer. Fork order is unchanged from the historical single loop:
  // the workload/estimator substreams fork in cluster order here, and the
  // user/redundancy draws below consume their own already-forked streams.
  out.streams.resize(config.n_clusters);
  for (std::size_t i = 0; i < config.n_clusters; ++i) {
    util::Rng stream_rng = master.fork(kStreamWorkloadBase + i);
    util::Rng est_rng = master.fork(kStreamEstimatorBase + i);
    if (!config.trace_files.empty()) {
      out.streams[i].own = load_swf_stream(
          config.trace_files[i % config.trace_files.size()],
          config.submit_horizon, cluster_configs[i].nodes);
    } else {
      // Memoized: sweep points sharing (seed, params, shape) — the common-
      // random-number pairing every figure uses — generate this stream
      // once per process. The Rng forks above happen unconditionally, so a
      // cache hit leaves every other substream exactly where a miss would.
      const workload::TraceKey key = workload::TraceKey::of(
          cluster_configs[i].workload, cluster_configs[i].nodes,
          config.submit_horizon, stream_rng, est_rng, estimator);
      out.streams[i].shared = workload::TraceCache::global().get_or_generate(
          key, [&]() {
            const workload::LublinModel model(cluster_configs[i].workload,
                                              cluster_configs[i].nodes);
            // rrsim-lint-allow(stream-materialization): this IS the
            // retained whole-stream path — SWF-adjacent drivers and
            // record-retaining runs consume the materialized snapshot;
            // windowed runs go through resolve_stream_windows() instead.
            workload::JobStream s = model.generate_stream(
                stream_rng, config.submit_horizon);
            workload::apply_estimator(s, estimator, est_rng);
            return s;
          });
    }
  }
  for (const ClusterStream& cs : out.streams) {
    out.jobs_generated += cs.get().size();
  }

  // Per-job draws, cluster-major — exactly the order the historical
  // retained staging loop and the streaming pumps consumed these
  // substreams, so the values are bit-identical to both.
  out.draws.reserve(out.jobs_generated);
  for (std::size_t i = 0; i < config.n_clusters; ++i) {
    const std::size_t count = out.streams[i].get().size();
    for (std::size_t j = 0; j < count; ++j) {
      Draw d;
      d.user = static_cast<std::uint32_t>(
          i * 4096 + users_rng.below(static_cast<std::uint64_t>(
                         config.users_per_cluster)));
      d.redundant = !config.scheme.is_none() &&
                    redundancy_rng.chance(config.redundant_fraction);
      out.draws.push_back(d);
    }
  }
  return out;
}

/// One cluster's windowed stream: the memoized seekable description of the
/// trace — a checkpoint table on the Lublin path (~48 bytes per window) or
/// a shared window spool on the SWF path (on-disk records + in-memory
/// index) — plus the exact positions of the user/redundancy substreams
/// where this cluster's draws begin. O(1) fixed state per cluster; the
/// jobs themselves are re-materialized one window at a time by the
/// arrival pumps.
struct WindowedClusterStream {
  workload::TraceCache::CheckpointPtr checkpoints;  // Lublin path
  workload::TraceCache::SpoolPtr spool;             // SWF path
  std::pair<std::uint64_t, std::uint64_t> users_start{0, 0};
  std::pair<std::uint64_t, std::uint64_t> redundancy_start{0, 0};

  std::uint64_t total_jobs() const noexcept {
    return checkpoints ? checkpoints->total_jobs
                       : (spool ? spool->total_jobs() : 0);
  }
  /// Resident bytes of the seekable description (for accounting).
  std::size_t payload_bytes() const noexcept {
    return checkpoints ? checkpoints->payload_bytes()
                       : (spool ? spool->payload_bytes() : 0);
  }
};

/// Output of resolve_stream_windows() — the O(window x clusters)
/// counterpart of ResolvedStreams (no streams vector, no draws vector).
struct ResolvedWindows {
  std::vector<WindowedClusterStream> streams;
  util::Rng placement_rng{0};
  std::size_t jobs_generated = 0;
  std::size_t window = 0;
};

/// Windowed counterpart of resolve_streams(): identical master fork order
/// (the TraceCache keys and every other substream land exactly where the
/// eager path leaves them), but instead of materializing streams it
/// memoizes generator checkpoint tables (one scan pass per trace per
/// process, O(window) resident) and, instead of pre-drawing rs.draws,
/// positions the user/redundancy substreams per cluster: it captures the
/// fingerprints where cluster i's draws begin and rolls the generators
/// forward past them with the same calls the eager loop makes, so a pump
/// restoring from the fingerprints reproduces its cluster's draws
/// bit-identically. File-backed traces (trace_files) are spooled to disk
/// once per (path, shape, horizon, window) via the TraceCache and pulled
/// back one window at a time, so SWF replay composes with windowed mode
/// instead of forcing retained whole-stream residency.
inline ResolvedWindows resolve_stream_windows(
    const ExperimentConfig& config,
    const std::vector<grid::ClusterConfig>& cluster_configs,
    util::Rng& master, const workload::RuntimeEstimator& estimator) {
  if (config.stream_window == 0) {
    throw std::logic_error("resolve_stream_windows needs stream_window > 0");
  }
  ResolvedWindows out;
  out.window = config.stream_window;
  util::Rng redundancy_rng = master.fork(kStreamRedundancy);
  util::Rng users_rng = master.fork(kStreamUsers);
  out.placement_rng = master.fork(kStreamPlacement);
  out.streams.resize(config.n_clusters);
  for (std::size_t i = 0; i < config.n_clusters; ++i) {
    // Forked unconditionally — exactly as resolve_streams() does on both
    // of its paths — so every later substream lands in the same place no
    // matter which source backs the windows.
    util::Rng stream_rng = master.fork(kStreamWorkloadBase + i);
    util::Rng est_rng = master.fork(kStreamEstimatorBase + i);
    if (!config.trace_files.empty()) {
      const std::string& path =
          config.trace_files[i % config.trace_files.size()];
      workload::SpoolKey skey;
      skey.path = path;
      skey.max_nodes = cluster_configs[i].nodes;
      skey.horizon = config.submit_horizon;
      skey.window = config.stream_window;
      out.streams[i].spool =
          workload::TraceCache::global().get_or_build_spool(skey, [&]() {
            workload::WindowSpool spool(config.stream_window);
            for (const workload::JobSpec& spec : load_swf_stream(
                     path, config.submit_horizon, cluster_configs[i].nodes)) {
              spool.append(spec);
            }
            spool.finish();
            return spool;
          });
    } else {
      const workload::TraceKey key = workload::TraceKey::of(
          cluster_configs[i].workload, cluster_configs[i].nodes,
          config.submit_horizon, stream_rng, est_rng, estimator);
      out.streams[i].checkpoints =
          workload::TraceCache::global().get_or_build_checkpoints(
              key, config.stream_window, [&]() {
                return workload::scan_checkpoints(
                    cluster_configs[i].workload, cluster_configs[i].nodes,
                    config.submit_horizon, stream_rng, est_rng, estimator,
                    config.stream_window);
              });
    }
    out.jobs_generated += out.streams[i].total_jobs();
  }

  // Substream positioning, cluster-major — the order resolve_streams()
  // pre-draws rs.draws. Capturing before advancing gives each cluster the
  // exact generator its draws start from. The advance itself is one draw
  // per job — O(total jobs) — so it is memoized per cluster segment: a
  // repeated sweep point (or a fraction sweep — chance() advances the
  // generator independently of p, see DrawSegmentKey) seeks straight to
  // the end fingerprints, keeping resolution O(window) on checkpoint-table
  // hits. A miss replays the *same* calls the eager loop makes (below, and
  // chance only when a scheme is active — the eager loop short-circuits
  // past the redundancy draw for NONE), so cluster i+1's start lands
  // exactly where the eager path puts it.
  for (std::size_t i = 0; i < config.n_clusters; ++i) {
    out.streams[i].users_start = users_rng.fingerprint();
    out.streams[i].redundancy_start = redundancy_rng.fingerprint();
    workload::DrawSegmentKey seg;
    seg.users_start = out.streams[i].users_start;
    seg.redundancy_start = out.streams[i].redundancy_start;
    seg.count = out.streams[i].total_jobs();
    seg.users_per_cluster =
        static_cast<std::uint64_t>(config.users_per_cluster);
    seg.scheme_active = !config.scheme.is_none();
    const workload::DrawSegment end =
        workload::TraceCache::global().get_or_advance_draws(seg, [&]() {
          util::Rng users = util::Rng::from_fingerprint(seg.users_start);
          util::Rng redundancy =
              util::Rng::from_fingerprint(seg.redundancy_start);
          for (std::uint64_t j = 0; j < seg.count; ++j) {
            (void)users.below(seg.users_per_cluster);
            if (seg.scheme_active) {
              (void)redundancy.chance(config.redundant_fraction);
            }
          }
          workload::DrawSegment e;
          e.users_end = users.fingerprint();
          e.redundancy_end = redundancy.fingerprint();
          return e;
        });
    users_rng = util::Rng::from_fingerprint(end.users_end);
    redundancy_rng = util::Rng::from_fingerprint(end.redundancy_end);
  }
  return out;
}

/// The conservative-PDES run path (pdes_experiment.cpp). run_experiment()
/// dispatches here when config.pdes && cross_cluster_latency > 0 &&
/// n_clusters > 1.
SimResult run_pdes_experiment(const ExperimentConfig& config);

}  // namespace rrsim::core::detail
