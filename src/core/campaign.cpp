#include "rrsim/core/campaign.h"

#include <stdexcept>

#include "rrsim/core/sweep.h"

namespace rrsim::core {

// The run_*_campaign entry points are one-point sweeps: all of the
// execution machinery — flat (point x replication) scheduling, per-thread
// workspace reuse, trace memoization, in-order reduction — lives in
// CampaignSweep (rrsim/core/sweep.h). Multi-point callers should queue
// their points on one CampaignSweep instead of looping over these, so
// work units from different points share the worker pool.

RelativeMetrics run_relative_campaign(const ExperimentConfig& config,
                                      int reps, int jobs) {
  RelativeMetrics out;
  CampaignSweep sweep(reps, jobs);
  sweep.add_relative(config, [&out](const RelativeMetrics& m) { out = m; });
  sweep.run();
  return out;
}

ClassifiedCampaign run_classified_campaign(const ExperimentConfig& config,
                                           int reps, int jobs) {
  ClassifiedCampaign out;
  CampaignSweep sweep(reps, jobs);
  sweep.add_classified(config,
                       [&out](const ClassifiedCampaign& m) { out = m; });
  sweep.run();
  return out;
}

PredictionCampaign run_prediction_campaign(const ExperimentConfig& config,
                                           int reps, int jobs) {
  PredictionCampaign out;
  CampaignSweep sweep(reps, jobs);
  sweep.add_prediction(config,
                       [&out](const PredictionCampaign& m) { out = m; });
  sweep.run();
  return out;
}

}  // namespace rrsim::core
