#include "rrsim/core/campaign.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "rrsim/exec/campaign_runner.h"
#include "rrsim/util/stats.h"

namespace rrsim::core {

// All three campaigns share the same execution shape: repetition r is an
// independent simulation (or pair of simulations) seeded with
// config.seed + r, and the aggregate is a fold over per-rep results in
// repetition order. CampaignRunner::map_reduce runs the map stage on a
// worker pool and the fold on the calling thread in order, so the output
// is bit-identical for any --jobs value.

RelativeMetrics run_relative_campaign(const ExperimentConfig& config,
                                      int reps, int jobs) {
  if (reps < 1) throw std::invalid_argument("reps must be >= 1");
  if (config.scheme.is_none()) {
    throw std::invalid_argument("relative campaign needs a non-NONE scheme");
  }
  struct RepOutcome {
    bool valid = false;
    double rel_stretch = 0.0;
    double rel_cv = 0.0;
    double rel_max = 0.0;
    double rel_turnaround = 0.0;
  };
  util::OnlineStats rel_stretch;
  util::OnlineStats rel_cv;
  util::OnlineStats rel_max;
  util::OnlineStats rel_turnaround;
  int wins = 0;
  RelativeMetrics out;
  out.per_rep_rel_stretch.reserve(static_cast<std::size_t>(reps));
  const exec::CampaignRunner runner(jobs);
  runner.map_reduce(
      reps,
      [&config](int r) {
        ExperimentConfig with = config;
        with.seed = config.seed + static_cast<std::uint64_t>(r);
        ExperimentConfig without = with;
        without.scheme = RedundancyScheme::none();

        const metrics::ScheduleMetrics m_with =
            metrics::compute_metrics(run_experiment(with).records);
        const metrics::ScheduleMetrics m_without =
            metrics::compute_metrics(run_experiment(without).records);
        RepOutcome o;
        if (m_without.avg_stretch <= 0.0 ||
            m_without.cv_stretch_percent <= 0.0 ||
            m_without.avg_turnaround <= 0.0 || m_without.max_stretch <= 0.0) {
          return o;  // degenerate repetition (e.g. empty stream); skip
        }
        o.valid = true;
        o.rel_stretch = m_with.avg_stretch / m_without.avg_stretch;
        o.rel_cv = m_with.cv_stretch_percent / m_without.cv_stretch_percent;
        o.rel_max = m_with.max_stretch / m_without.max_stretch;
        o.rel_turnaround = m_with.avg_turnaround / m_without.avg_turnaround;
        return o;
      },
      [&](int, RepOutcome o) {
        if (!o.valid) return;
        rel_stretch.add(o.rel_stretch);
        rel_cv.add(o.rel_cv);
        rel_max.add(o.rel_max);
        rel_turnaround.add(o.rel_turnaround);
        if (o.rel_stretch < 1.0) ++wins;
        out.per_rep_rel_stretch.push_back(o.rel_stretch);
      });
  out.reps = rel_stretch.count();
  if (out.reps == 0) return out;
  out.rel_avg_stretch = rel_stretch.mean();
  out.rel_cv_stretch = rel_cv.mean();
  out.rel_max_stretch = rel_max.mean();
  out.rel_avg_turnaround = rel_turnaround.mean();
  out.win_rate = static_cast<double>(wins) / static_cast<double>(out.reps);
  out.worst_rel_stretch = rel_stretch.max();
  return out;
}

ClassifiedCampaign run_classified_campaign(const ExperimentConfig& config,
                                           int reps, int jobs) {
  if (reps < 1) throw std::invalid_argument("reps must be >= 1");
  util::OnlineStats all;
  util::OnlineStats red;
  util::OnlineStats non;
  std::size_t red_jobs = 0;
  std::size_t non_jobs = 0;
  const exec::CampaignRunner runner(jobs);
  runner.map_reduce(
      reps,
      [&config](int r) {
        ExperimentConfig c = config;
        c.seed = config.seed + static_cast<std::uint64_t>(r);
        return metrics::compute_classified_metrics(run_experiment(c).records);
      },
      [&](int, metrics::ClassifiedMetrics m) {
        if (m.all.jobs > 0) all.add(m.all.avg_stretch);
        if (m.redundant.jobs > 0) red.add(m.redundant.avg_stretch);
        if (m.non_redundant.jobs > 0) non.add(m.non_redundant.avg_stretch);
        red_jobs += m.redundant.jobs;
        non_jobs += m.non_redundant.jobs;
      });
  ClassifiedCampaign out;
  out.reps = static_cast<std::size_t>(reps);
  out.avg_stretch_all = all.mean();
  out.avg_stretch_redundant = red.mean();
  out.avg_stretch_non_redundant = non.mean();
  out.redundant_jobs = red_jobs;
  out.non_redundant_jobs = non_jobs;
  return out;
}

PredictionCampaign run_prediction_campaign(const ExperimentConfig& config,
                                           int reps, int jobs) {
  if (reps < 1) throw std::invalid_argument("reps must be >= 1");
  metrics::JobRecords pooled;
  const exec::CampaignRunner runner(jobs);
  runner.map_reduce(
      reps,
      [&config](int r) {
        ExperimentConfig c = config;
        c.seed = config.seed + static_cast<std::uint64_t>(r);
        c.record_predictions = true;
        return run_experiment(c).records;
      },
      [&](int, metrics::JobRecords records) {
        pooled.insert(pooled.end(),
                      std::make_move_iterator(records.begin()),
                      std::make_move_iterator(records.end()));
      });
  PredictionCampaign out;
  out.reps = static_cast<std::size_t>(reps);
  out.all = metrics::compute_prediction_accuracy(pooled);
  out.redundant = metrics::compute_prediction_accuracy(pooled, true);
  out.non_redundant = metrics::compute_prediction_accuracy(pooled, false);
  return out;
}

}  // namespace rrsim::core
