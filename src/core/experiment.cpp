#include "rrsim/core/experiment.h"

#include <algorithm>
#include <functional>
#include <memory>
#include <stdexcept>
#include <utility>

#include "rrsim/des/simulation.h"
#include "rrsim/grid/gateway.h"
#include "rrsim/grid/placement.h"
#include "rrsim/grid/platform.h"
#include "rrsim/metrics/queue_tracker.h"
#include "rrsim/workload/calibrate.h"
#include "rrsim/workload/estimators.h"
#include "rrsim/workload/swf.h"
#include "rrsim/workload/trace_cache.h"

namespace rrsim::core {

int ExperimentConfig::nodes_of(std::size_t i) const {
  if (!cluster_nodes.empty()) return cluster_nodes.at(i);
  return nodes_per_cluster;
}

ExperimentWorkspace::ExperimentWorkspace() = default;
ExperimentWorkspace::~ExperimentWorkspace() = default;

ExperimentWorkspace& thread_workspace() {
  thread_local ExperimentWorkspace workspace;
  return workspace;
}

namespace {

// Distinct substream tags so each model component draws independent
// randomness from the master seed.
enum Substream : std::uint64_t {
  kStreamWorkloadBase = 1000,
  kStreamEstimatorBase = 2000,
  kStreamRedundancy = 3000,
  kStreamPlacement = 3001,
  kStreamCalibration = 3002,
  kStreamUsers = 3003,
};

}  // namespace

SimResult run_experiment(const ExperimentConfig& config) {
  ExperimentWorkspace workspace;
  return run_experiment(config, workspace);
}

SimResult run_experiment(const ExperimentConfig& config,
                         ExperimentWorkspace& workspace) {
  if (config.n_clusters == 0) {
    throw std::invalid_argument("need >= 1 cluster");
  }
  if (!config.cluster_nodes.empty() &&
      config.cluster_nodes.size() != config.n_clusters) {
    throw std::invalid_argument("cluster_nodes size mismatch");
  }
  if (!config.cluster_mean_iat.empty() &&
      config.cluster_mean_iat.size() != config.n_clusters) {
    throw std::invalid_argument("cluster_mean_iat size mismatch");
  }
  if (config.redundant_fraction < 0.0 || config.redundant_fraction > 1.0) {
    throw std::invalid_argument("redundant_fraction must be in [0, 1]");
  }
  if (config.submit_horizon < 0.0) {
    throw std::invalid_argument("submit_horizon must be >= 0");
  }

  util::Rng master(config.seed);
  des::Simulation& sim = workspace.sim_;
  sim.reset();

  // --- Resolve per-cluster workload parameters --------------------------
  // Calibration and stream generation use substreams that depend only on
  // the seed and the cluster index, never on the redundancy scheme, so
  // paired runs (scheme vs. NONE) see identical job streams.
  std::vector<grid::ClusterConfig> cluster_configs(config.n_clusters);
  {
    util::Rng calib_rng = master.fork(kStreamCalibration);
    for (std::size_t i = 0; i < config.n_clusters; ++i) {
      grid::ClusterConfig& cc = cluster_configs[i];
      cc.nodes = config.nodes_of(i);
      cc.workload = config.base_workload;
      if (!config.cluster_mean_iat.empty()) {
        cc.workload = cc.workload.with_mean_interarrival(
            config.cluster_mean_iat[i]);
      } else if (config.load_mode == LoadMode::kSharedPeak) {
        cc.workload = cc.workload.with_mean_interarrival(
            cc.workload.mean_interarrival() *
            static_cast<double>(config.n_clusters));
      } else if (config.load_mode == LoadMode::kCalibrated) {
        cc.workload = workload::calibrate_params(
            cc.workload, cc.nodes, config.target_utilization, calib_rng);
      }
      // kPerClusterPeak keeps the literal model rate.
    }
  }

  if (config.per_user_pending_limit < 0 || config.users_per_cluster < 1) {
    throw std::invalid_argument("invalid per-user limit configuration");
  }

  // --- Acquire platform + gateway (reuse when the shape matches) --------
  // Schedulers depend only on (algorithm, node count), so a workspace
  // whose platform has the same cluster layout is reset in place; any
  // mismatch reconstructs. The workload parameters stored inside the
  // platform's configs are never read here — stream generation uses the
  // freshly resolved cluster_configs above.
  {
    bool reuse = workspace.platform_ != nullptr &&
                 workspace.platform_->algorithm() == config.algorithm &&
                 workspace.platform_->size() == config.n_clusters;
    if (reuse) {
      for (std::size_t i = 0; i < config.n_clusters; ++i) {
        if (workspace.platform_->cluster_sizes()[i] !=
            cluster_configs[i].nodes) {
          reuse = false;
          break;
        }
      }
    }
    if (reuse) {
      workspace.platform_->reset();
      workspace.gateway_->reset(config.record_predictions);
      ++workspace.reuses_;
    } else {
      // The gateway references the platform; destroy it first.
      workspace.gateway_.reset();
      workspace.platform_.reset();
      workspace.platform_ = std::make_unique<grid::Platform>(
          sim, cluster_configs, config.algorithm);
      workspace.gateway_ = std::make_unique<grid::Gateway>(
          sim, *workspace.platform_, config.record_predictions);
    }
  }
  grid::Platform& platform = *workspace.platform_;
  grid::Gateway& gateway = *workspace.gateway_;

  if (config.per_user_pending_limit > 0) {
    for (std::size_t i = 0; i < platform.size(); ++i) {
      platform.scheduler(i).set_per_user_pending_limit(
          config.per_user_pending_limit);
    }
  }
  // Streaming runs keep the schedulers' per-job tables O(live jobs): the
  // gateway never reuses replica ids, so terminal lifecycle entries (and
  // their submit-time predictions) can be dropped as they occur. Retained
  // runs keep the historical full-lifecycle tables (set explicitly, not
  // left to reset(), so a reused workspace is deterministic either way).
  for (std::size_t i = 0; i < platform.size(); ++i) {
    platform.scheduler(i).set_forget_terminal_ids(!config.retain_records);
  }
  std::vector<std::unique_ptr<grid::MiddlewareStation>> stations;
  if (config.middleware_ops_per_sec > 0.0) {
    std::vector<grid::MiddlewareStation*> raw;
    for (std::size_t i = 0; i < platform.size(); ++i) {
      stations.push_back(std::make_unique<grid::MiddlewareStation>(
          sim, config.middleware_ops_per_sec));
      raw.push_back(stations.back().get());
    }
    gateway.set_middleware(std::move(raw));
  }
  const auto placement = grid::make_placement(config.placement);
  const auto estimator = workload::make_estimator(config.estimator);

  // --- Generate job streams ---------------------------------------------
  util::Rng redundancy_rng = master.fork(kStreamRedundancy);
  util::Rng users_rng = master.fork(kStreamUsers);
  auto placement_rng =
      std::make_unique<util::Rng>(master.fork(kStreamPlacement));
  // Streams for all clusters are resolved up front, shared by both record
  // modes. Fork order is unchanged from the historical single loop: the
  // workload/estimator substreams fork in cluster order here, and the
  // user/redundancy draws below consume their own already-forked streams.
  struct ClusterStream {
    workload::TraceCache::StreamPtr shared;  // Lublin path (memoized)
    workload::JobStream own;                 // SWF path
    const workload::JobStream& get() const noexcept {
      return shared ? *shared : own;
    }
  };
  std::vector<ClusterStream> streams(config.n_clusters);
  for (std::size_t i = 0; i < config.n_clusters; ++i) {
    util::Rng stream_rng = master.fork(kStreamWorkloadBase + i);
    util::Rng est_rng = master.fork(kStreamEstimatorBase + i);
    if (!config.trace_files.empty()) {
      workload::JobStream own_stream = workload::read_swf_file(
          config.trace_files[i % config.trace_files.size()]);
      // Shift to t=0, drop jobs that cannot run here, cut at the horizon.
      const double t0 =
          own_stream.empty() ? 0.0 : own_stream.front().submit_time;
      workload::JobStream filtered;
      for (workload::JobSpec spec : own_stream) {
        spec.submit_time -= t0;
        if (spec.submit_time > config.submit_horizon) break;
        if (spec.submit_time <= 0.0) spec.submit_time = 1e-6;
        if (spec.nodes > cluster_configs[i].nodes) continue;
        filtered.push_back(spec);
      }
      streams[i].own = std::move(filtered);
    } else {
      // Memoized: sweep points sharing (seed, params, shape) — the common-
      // random-number pairing every figure uses — generate this stream
      // once per process. The Rng forks above happen unconditionally, so a
      // cache hit leaves every other substream exactly where a miss would.
      const workload::TraceKey key = workload::TraceKey::of(
          cluster_configs[i].workload, cluster_configs[i].nodes,
          config.submit_horizon, stream_rng, est_rng, *estimator);
      streams[i].shared = workload::TraceCache::global().get_or_generate(
          key, [&]() {
            const workload::LublinModel model(cluster_configs[i].workload,
                                              cluster_configs[i].nodes);
            workload::JobStream s =
                model.generate_stream(stream_rng, config.submit_horizon);
            workload::apply_estimator(s, *estimator, est_rng);
            return s;
          });
    }
  }
  std::size_t jobs_generated = 0;
  for (const ClusterStream& cs : streams) jobs_generated += cs.get().size();

  // Declared before scheduling: the streaming mode's record sink points at
  // result.stream and must outlive the run.
  SimResult result;
  result.streamed = !config.retain_records;

  const std::size_t degree = config.scheme.degree(config.n_clusters);
  const double inflation = config.remote_inflation;
  // Chooses the remote targets of one redundant job at its submission
  // instant, so informed placement policies (least-loaded) observe the
  // live queue lengths. Shared verbatim by both arrival mechanisms below,
  // which therefore consume the placement substream identically.
  const auto place_job = [&platform, &placement = *placement,
                          &placement_rng = *placement_rng,
                          degree](grid::GridJob& job) {
    if (job.redundant && degree > 1) {
      std::vector<std::size_t> lengths;
      lengths.reserve(platform.size());
      for (std::size_t c = 0; c < platform.size(); ++c) {
        lengths.push_back(platform.scheduler(c).queue_length());
      }
      const grid::PlatformView view{platform.cluster_sizes(), lengths};
      auto remotes = placement.choose_remotes(job.origin, job.spec.nodes,
                                              view, degree - 1,
                                              placement_rng);
      job.targets.insert(job.targets.end(), remotes.begin(), remotes.end());
      job.redundant = job.targets.size() > 1;
    } else {
      job.redundant = false;
    }
  };

  // Per-cluster arrival pump state (streaming mode). Draws are made up
  // front in cluster-major job order — exactly the order the retained
  // mode's staging loop consumes the user/redundancy substreams — at 8
  // bytes per job instead of a staged GridJob (~150 with its target
  // heap). Pumps then walk the memoized streams directly, keeping one
  // in-flight arrival event per cluster instead of one per job.
  struct Draw {
    std::uint32_t user = 0;
    bool redundant = false;
  };
  struct Pump {
    const workload::JobStream* stream = nullptr;
    std::size_t next = 0;        // index of the next job to submit
    std::size_t draw_base = 0;   // first index into `draws`
    grid::GridJobId id_base = 0;  // ids are id_base + index + 1
    grid::GridJob scratch;       // reused submission buffer
  };
  std::vector<Draw> draws;
  std::vector<Pump> pumps;
  std::function<void(std::size_t)> pump_fire;

  std::vector<grid::GridJob>& jobs = workspace.jobs_;
  if (config.retain_records) {
    // --- Retained mode: stage every grid job, pre-schedule every arrival.
    jobs.clear();
    grid::GridJobId next_id = 1;
    for (std::size_t i = 0; i < config.n_clusters; ++i) {
      for (const workload::JobSpec& spec : streams[i].get()) {
        grid::GridJob job;
        job.id = next_id++;
        job.origin = i;
        job.user = static_cast<sched::UserId>(
            i * 4096 +
            users_rng.below(static_cast<std::uint64_t>(
                config.users_per_cluster)));
        job.spec = spec;
        job.redundant = !config.scheme.is_none() &&
                        redundancy_rng.chance(config.redundant_fraction);
        job.targets = {i};
        jobs.push_back(std::move(job));
      }
    }
    // Record storage sized once: every generated job finishes exactly once
    // under drain, so this is the exact final size (an upper bound under
    // truncation) and the per-finish push_back never reallocates.
    gateway.reserve_records(jobs.size());

    // Arrival events fire in deterministic order, so the placement stream
    // stays reproducible. `jobs` is fully built before any lambda captures
    // an element reference, and never resized afterwards.
    for (grid::GridJob& job : jobs) {
      sim.schedule_at(
          job.spec.submit_time,
          [&gateway, &place_job, &job, inflation] {
            place_job(job);
            gateway.submit(job, inflation);
          },
          des::Priority::kArrival);
    }
  } else {
    // --- Streaming mode: per-cluster pumps, per-finish metric folding.
    // Release any staging arena a previous retained run left in this
    // workspace — keeping it warm would defeat the O(live jobs) budget.
    std::vector<grid::GridJob>().swap(jobs);
    gateway.set_record_sink(&result.stream);

    draws.reserve(jobs_generated);
    for (std::size_t i = 0; i < config.n_clusters; ++i) {
      const std::size_t count = streams[i].get().size();
      for (std::size_t j = 0; j < count; ++j) {
        Draw d;
        d.user = static_cast<std::uint32_t>(
            i * 4096 +
            users_rng.below(static_cast<std::uint64_t>(
                config.users_per_cluster)));
        d.redundant = !config.scheme.is_none() &&
                      redundancy_rng.chance(config.redundant_fraction);
        draws.push_back(d);
      }
    }
    pumps.resize(config.n_clusters);
    {
      std::size_t base = 0;
      for (std::size_t i = 0; i < config.n_clusters; ++i) {
        pumps[i].stream = &streams[i].get();
        pumps[i].draw_base = base;
        pumps[i].id_base = static_cast<grid::GridJobId>(base);
        base += streams[i].get().size();
      }
    }
    // Fires cluster ci's next arrival, then schedules the following one.
    // Captures locals of this call by reference; the final sim.reset()
    // guarantees no callback survives the return.
    pump_fire = [&gateway, &place_job, &pumps, &draws, &sim, &pump_fire,
                 inflation](std::size_t ci) {
      Pump& p = pumps[ci];
      const workload::JobSpec& spec = (*p.stream)[p.next];
      const Draw& d = draws[p.draw_base + p.next];
      grid::GridJob& job = p.scratch;
      job.id = p.id_base + p.next + 1;
      job.origin = ci;
      job.user = static_cast<sched::UserId>(d.user);
      job.spec = spec;
      job.redundant = d.redundant;
      job.targets.clear();
      job.targets.push_back(ci);
      place_job(job);
      gateway.submit(job, inflation);
      if (++p.next < p.stream->size()) {
        sim.schedule_at((*p.stream)[p.next].submit_time,
                        [&pump_fire, ci] { pump_fire(ci); },
                        des::Priority::kArrival);
      }
    };
    for (std::size_t i = 0; i < config.n_clusters; ++i) {
      if (pumps[i].stream->empty()) continue;
      sim.schedule_at(pumps[i].stream->front().submit_time,
                      [&pump_fire, i] { pump_fire(i); },
                      des::Priority::kArrival);
    }
  }

  // --- Queue observation ---------------------------------------------------
  std::vector<metrics::QueueTracker::Probe> probes;
  probes.reserve(config.n_clusters);
  for (std::size_t i = 0; i < config.n_clusters; ++i) {
    probes.emplace_back([&platform, i] {
      return platform.scheduler(i).queue_length();
    });
  }
  metrics::QueueTracker tracker(sim, std::move(probes),
                                config.queue_sample_interval,
                                config.submit_horizon);

  if (config.drain) {
    sim.run();  // every job eventually starts and finishes
  } else {
    if (config.truncate_factor <= 0.0) {
      throw std::invalid_argument("truncate_factor must be > 0");
    }
    sim.run_until(config.submit_horizon * config.truncate_factor);
  }

  result.ops = platform.total_counters();
  result.gateway_cancels = gateway.cancellations_issued();
  result.replicas_rejected = gateway.replicas_rejected();
  result.replicas_dropped = gateway.replicas_dropped();
  for (const auto& station : stations) {
    result.middleware_max_backlog =
        std::max(result.middleware_max_backlog,
                 static_cast<double>(station->max_backlog()));
    result.middleware_mean_sojourn +=
        station->mean_sojourn() / static_cast<double>(stations.size());
  }
  result.jobs_generated = jobs_generated;
  result.avg_max_queue = tracker.avg_max_length();
  result.queue_growth_per_hour.reserve(config.n_clusters);
  for (std::size_t i = 0; i < config.n_clusters; ++i) {
    result.queue_growth_per_hour.push_back(tracker.growth_per_hour(i));
  }
  result.end_time = sim.now();
  // Job-proportional live state, capacity-based (high-water): gateway
  // tracking + scheduler tables, plus whichever arrival mechanism ran.
  result.live_state_bytes = gateway.live_state_bytes();
  for (std::size_t i = 0; i < platform.size(); ++i) {
    result.live_state_bytes += platform.scheduler(i).live_state_bytes();
  }
  if (config.retain_records) {
    result.live_state_bytes += jobs.capacity() * sizeof(grid::GridJob);
    for (const grid::GridJob& job : jobs) {
      result.live_state_bytes +=
          job.targets.capacity() * sizeof(std::size_t) +
          job.replica_specs.capacity() * sizeof(workload::JobSpec);
    }
  } else {
    result.live_state_bytes += draws.capacity() * sizeof(Draw) +
                               pumps.capacity() * sizeof(Pump);
    for (const Pump& p : pumps) {
      result.live_state_bytes +=
          p.scratch.targets.capacity() * sizeof(std::size_t);
    }
  }
  result.records = gateway.take_records();
  gateway.set_record_sink(nullptr);
  if (config.drain) {
    const std::uint64_t finished = config.retain_records
                                       ? result.records.size()
                                       : gateway.finished();
    if (finished != jobs_generated) {
      throw std::logic_error(
          "conservation violation: not every grid job finished exactly once");
    }
  }
  // Leave the workspace inert: arrival lambdas captured references to
  // locals of this call (placement, estimator, stations); reset() both
  // frees the slab's callbacks and guarantees none can ever fire.
  sim.reset();
  return result;
}

}  // namespace rrsim::core
