#include "rrsim/core/experiment.h"

#include <algorithm>
#include <functional>
#include <memory>
#include <stdexcept>
#include <utility>

#include "experiment_detail.h"
#include "rrsim/des/simulation.h"
#include "rrsim/grid/gateway.h"
#include "rrsim/grid/placement.h"
#include "rrsim/grid/platform.h"
#include "rrsim/metrics/queue_tracker.h"
#include "rrsim/workload/estimators.h"

namespace rrsim::core {

int ExperimentConfig::nodes_of(std::size_t i) const {
  if (!cluster_nodes.empty()) return cluster_nodes.at(i);
  return nodes_per_cluster;
}

ExperimentWorkspace::ExperimentWorkspace() = default;
ExperimentWorkspace::~ExperimentWorkspace() = default;

ExperimentWorkspace& thread_workspace() {
  thread_local ExperimentWorkspace workspace;
  return workspace;
}

SimResult run_experiment(const ExperimentConfig& config) {
  ExperimentWorkspace workspace;
  return run_experiment(config, workspace);
}

SimResult run_experiment(const ExperimentConfig& config,
                         ExperimentWorkspace& workspace) {
  if (config.cross_cluster_latency < 0.0) {
    throw std::invalid_argument("cross_cluster_latency must be >= 0");
  }
  if (config.cross_cluster_latency > 0.0 && !config.pdes) {
    throw std::invalid_argument(
        "cross_cluster_latency > 0 requires PDES mode (--pdes)");
  }
  // The parallel kernel only exists where cross-cluster edges do: with
  // one cluster (or zero latency) the classic zero-delay kernel *is* the
  // degenerate single-partition path, bit-identically.
  if (config.pdes && config.cross_cluster_latency > 0.0 &&
      config.n_clusters > 1) {
    return detail::run_pdes_experiment(config);
  }
  const bool windowed = config.stream_window > 0;
  if (windowed && config.retain_records) {
    throw std::invalid_argument(
        "stream_window requires streaming record mode "
        "(retain_records = false) on the classic kernel: retained runs "
        "materialize every record anyway, so a windowed input would bound "
        "nothing");
  }

  detail::ResolvedClusters rc = detail::resolve_clusters(config);
  std::vector<grid::ClusterConfig>& cluster_configs = rc.cluster_configs;
  des::Simulation& sim = workspace.sim_;
  sim.reset();

  // --- Acquire platform + gateway (reuse when the shape matches) --------
  // Schedulers depend only on (algorithm, node count), so a workspace
  // whose platform has the same cluster layout is reset in place; any
  // mismatch reconstructs. The workload parameters stored inside the
  // platform's configs are never read here — stream generation uses the
  // freshly resolved cluster_configs above.
  {
    bool reuse = workspace.platform_ != nullptr &&
                 workspace.platform_->algorithm() == config.algorithm &&
                 workspace.platform_->size() == config.n_clusters;
    if (reuse) {
      for (std::size_t i = 0; i < config.n_clusters; ++i) {
        if (workspace.platform_->cluster_sizes()[i] !=
            cluster_configs[i].nodes) {
          reuse = false;
          break;
        }
      }
    }
    if (reuse) {
      workspace.platform_->reset();
      workspace.gateway_->reset(config.record_predictions);
      ++workspace.reuses_;
    } else {
      // The gateway references the platform; destroy it first.
      workspace.gateway_.reset();
      workspace.platform_.reset();
      workspace.platform_ = std::make_unique<grid::Platform>(
          sim, cluster_configs, config.algorithm);
      workspace.gateway_ = std::make_unique<grid::Gateway>(
          sim, *workspace.platform_, config.record_predictions);
    }
  }
  grid::Platform& platform = *workspace.platform_;
  grid::Gateway& gateway = *workspace.gateway_;

  // Tie-break schedule hook (rrsim_check): installed before any event is
  // scheduled; the gateway probe lets the explorer prove same-timestamp
  // events on disjoint clusters independent. sim.reset() at the end of
  // the run uninstalls the policy, so pooled workspaces never retain a
  // pointer into a departed driver.
  if (config.tie_break_policy != nullptr) {
    sim.set_tie_break_policy(config.tie_break_policy, 0);
    config.tie_break_policy->attach_coupling_probe(
        0, [&gateway] { return gateway.cross_cluster_links(); });
  }

  if (config.per_user_pending_limit > 0) {
    for (std::size_t i = 0; i < platform.size(); ++i) {
      platform.scheduler(i).set_per_user_pending_limit(
          config.per_user_pending_limit);
    }
  }
  // Streaming runs keep the schedulers' per-job tables O(live jobs): the
  // gateway never reuses replica ids, so terminal lifecycle entries (and
  // their submit-time predictions) can be dropped as they occur. Retained
  // runs keep the historical full-lifecycle tables (set explicitly, not
  // left to reset(), so a reused workspace is deterministic either way).
  for (std::size_t i = 0; i < platform.size(); ++i) {
    platform.scheduler(i).set_forget_terminal_ids(!config.retain_records);
  }
  std::vector<std::unique_ptr<grid::MiddlewareStation>> stations;
  if (config.middleware_ops_per_sec > 0.0) {
    std::vector<grid::MiddlewareStation*> raw;
    for (std::size_t i = 0; i < platform.size(); ++i) {
      stations.push_back(std::make_unique<grid::MiddlewareStation>(
          sim, config.middleware_ops_per_sec));
      raw.push_back(stations.back().get());
    }
    gateway.set_middleware(std::move(raw));
  }
  const auto placement = grid::make_placement(config.placement);
  const auto estimator = workload::make_estimator(config.estimator);

  // --- Generate job streams (shared with the PDES kernel) ---------------
  // resolve_streams() is the historical inline loop moved verbatim into
  // experiment_detail.h: same validation order, same fork order, same
  // TraceCache memoization, and the user/redundancy draws pre-drawn in
  // the cluster-major order both record modes consume them.
  // resolve_stream_windows() is its O(window x clusters) counterpart:
  // checkpoint tables instead of streams, substream fingerprints instead
  // of pre-drawn draws, bit-identical job/draw values by construction.
  detail::ResolvedStreams rs;
  detail::ResolvedWindows ws;
  if (windowed) {
    ws = detail::resolve_stream_windows(config, cluster_configs, rc.master,
                                        *estimator);
  } else {
    rs = detail::resolve_streams(config, cluster_configs, rc.master,
                                 *estimator);
  }
  auto placement_rng = std::make_unique<util::Rng>(
      windowed ? ws.placement_rng : rs.placement_rng);
  const std::size_t jobs_generated =
      windowed ? ws.jobs_generated : rs.jobs_generated;

  // Declared before scheduling: the streaming mode's record sink points at
  // result.stream and must outlive the run.
  SimResult result;
  result.streamed = !config.retain_records;

  const std::size_t degree = config.scheme.degree(config.n_clusters);
  const double inflation = config.remote_inflation;
  // Chooses the remote targets of one redundant job at its submission
  // instant, so informed placement policies (least-loaded) observe the
  // live queue lengths. Shared verbatim by both arrival mechanisms below,
  // which therefore consume the placement substream identically.
  const auto place_job = [&platform, &placement = *placement,
                          &placement_rng = *placement_rng,
                          degree](grid::GridJob& job) {
    if (job.redundant && degree > 1) {
      std::vector<std::size_t> lengths;
      lengths.reserve(platform.size());
      for (std::size_t c = 0; c < platform.size(); ++c) {
        lengths.push_back(platform.scheduler(c).queue_length());
      }
      const grid::PlatformView view{platform.cluster_sizes(), lengths};
      auto remotes = placement.choose_remotes(job.origin, job.spec.nodes,
                                              view, degree - 1,
                                              placement_rng);
      job.targets.insert(job.targets.end(), remotes.begin(), remotes.end());
      job.redundant = job.targets.size() > 1;
    } else {
      job.redundant = false;
    }
  };
  // Under a redundant scheme every arrival callback couples globally:
  // place_job draws from the single shared placement substream and
  // snapshots every cluster's queue length, so permuting same-timestamp
  // arrivals — even ones submitting to different clusters — reorders the
  // RNG draws and changes replica targets. Arrival events therefore carry
  // their origin-cluster tag only when no placement draw can happen
  // (degree <= 1); otherwise they are scheduled untagged so schedule
  // explorers (tools/check) treat them as dependent on everything.
  const auto arrival_tag = [degree](std::size_t cluster) {
    return degree > 1 ? des::kNoEventTag : static_cast<std::uint32_t>(cluster);
  };

  // Per-cluster arrival pump state (streaming mode). The pre-drawn
  // rs.draws — 8 bytes per job instead of a staged GridJob (~150 with its
  // target heap) — let pumps walk the memoized streams directly, keeping
  // one in-flight arrival event per cluster instead of one per job.
  struct Pump {
    const workload::JobStream* stream = nullptr;
    std::size_t next = 0;        // index of the next job to submit
    std::size_t draw_base = 0;   // first index into rs.draws
    grid::GridJobId id_base = 0;  // ids are id_base + index + 1
    grid::GridJob scratch;       // reused submission buffer
  };
  std::vector<Pump> pumps;
  std::function<void(std::size_t)> pump_fire;

  // Windowed pump state (stream_window > 0): no resident stream at all —
  // a StreamWindow generator refills `buf` one window at a time, and the
  // user/redundancy draws are made lazily from generators restored at this
  // cluster's substream positions. Job ids, draw values and submit order
  // are bit-identical to the eager pumps by construction.
  struct WindowPump {
    std::unique_ptr<workload::StreamWindow> gen;
    workload::JobStream buf;      // current window, O(stream_window)
    std::size_t in_buf = 0;       // index of the next job within buf
    std::uint64_t produced = 0;   // jobs already submitted by this pump
    util::Rng users_rng{0};
    util::Rng redundancy_rng{0};
    grid::GridJobId id_base = 0;  // ids are id_base + produced + 1
    grid::GridJob scratch;
  };
  std::vector<WindowPump> wpumps;
  std::function<void(std::size_t)> wpump_fire;

  // Windowed SWF replay state (stream_window > 0 with trace_files): the
  // per-cluster spool readers pull O(window) buffers, but arrivals are
  // driven by ONE merged pump doing a k-way merge keyed (submit time,
  // cluster). SWF integer timestamps tie across clusters, and independent
  // per-cluster pumps would acquire interleaving-dependent event sequence
  // numbers at a tie; the merged pump emits tied arrivals in (time,
  // cluster, within-cluster order) — exactly the retained mode's
  // cluster-major staging order — and chains a single kArrival event, so
  // the windowed replay is bit-identical to the retained replay (only
  // arrival pumps schedule at kArrival priority, so relative order against
  // every other event class is decided by priority alone in both modes).
  struct SwfWindowCluster {
    std::unique_ptr<workload::WindowSpool::Reader> reader;
    workload::JobStream buf;      // current window, O(stream_window)
    std::size_t in_buf = 0;       // index of the next job within buf
    std::uint64_t produced = 0;   // jobs already submitted
    util::Rng users_rng{0};
    util::Rng redundancy_rng{0};
    grid::GridJobId id_base = 0;  // ids are id_base + produced + 1
    grid::GridJob scratch;
  };
  std::vector<SwfWindowCluster> mclusters;
  // Min-heap over (next submit time, cluster): the pair's lexicographic
  // order is exactly the tie rule above.
  std::vector<std::pair<double, std::size_t>> mheap;
  std::function<void()> merged_fire;

  std::vector<grid::GridJob>& jobs = workspace.jobs_;
  if (config.retain_records) {
    // --- Retained mode: stage every grid job, pre-schedule every arrival.
    jobs.clear();
    grid::GridJobId next_id = 1;
    std::size_t draw_index = 0;
    for (std::size_t i = 0; i < config.n_clusters; ++i) {
      for (const workload::JobSpec& spec : rs.streams[i].get()) {
        const detail::Draw& d = rs.draws[draw_index++];
        grid::GridJob job;
        job.id = next_id++;
        job.origin = i;
        job.user = static_cast<sched::UserId>(d.user);
        job.spec = spec;
        job.redundant = d.redundant;
        job.targets = {i};
        jobs.push_back(std::move(job));
      }
    }
    // Record storage sized once: every generated job finishes exactly once
    // under drain, so this is the exact final size (an upper bound under
    // truncation) and the per-finish push_back never reallocates.
    gateway.reserve_records(jobs.size());

    // Arrival events fire in deterministic order, so the placement stream
    // stays reproducible. `jobs` is fully built before any lambda captures
    // an element reference, and never resized afterwards.
    for (grid::GridJob& job : jobs) {
      sim.schedule_at(
          job.spec.submit_time,
          [&gateway, &place_job, &job, inflation] {
            place_job(job);
            gateway.submit(job, inflation);
          },
          des::Priority::kArrival, arrival_tag(job.origin));
    }
  } else if (windowed && !config.trace_files.empty()) {
    // --- Windowed SWF replay: merged arrival pump over spool readers.
    std::vector<grid::GridJob>().swap(jobs);
    gateway.set_record_sink(&result.stream);

    const std::size_t window = config.stream_window;
    mclusters.resize(config.n_clusters);
    {
      std::size_t base = 0;
      for (std::size_t i = 0; i < config.n_clusters; ++i) {
        const detail::WindowedClusterStream& wcs = ws.streams[i];
        SwfWindowCluster& p = mclusters[i];
        p.id_base = static_cast<grid::GridJobId>(base);
        base += wcs.total_jobs();
        if (wcs.total_jobs() == 0) continue;
        p.reader = std::make_unique<workload::WindowSpool::Reader>(wcs.spool);
        p.buf.reserve(window);
        p.reader->next(window, p.buf);
        p.users_rng = util::Rng::from_fingerprint(wcs.users_start);
        p.redundancy_rng = util::Rng::from_fingerprint(wcs.redundancy_start);
        mheap.emplace_back(p.buf.front().submit_time, i);
      }
    }
    std::make_heap(mheap.begin(), mheap.end(), std::greater<>{});
    const auto users_per_cluster =
        static_cast<std::uint64_t>(config.users_per_cluster);
    const bool scheme_active = !config.scheme.is_none();
    const double redundant_fraction = config.redundant_fraction;
    merged_fire = [&gateway, &place_job, &arrival_tag, &mclusters, &mheap,
                   &sim, &merged_fire, window, users_per_cluster,
                   scheme_active, redundant_fraction, inflation] {
      std::pop_heap(mheap.begin(), mheap.end(), std::greater<>{});
      const std::size_t ci = mheap.back().second;
      mheap.pop_back();
      SwfWindowCluster& p = mclusters[ci];
      const workload::JobSpec& spec = p.buf[p.in_buf];
      grid::GridJob& job = p.scratch;
      job.id = p.id_base + p.produced + 1;
      job.origin = ci;
      // Same draws, same per-generator order as the eager rs.draws loop.
      job.user = static_cast<sched::UserId>(static_cast<std::uint32_t>(
          ci * 4096 + p.users_rng.below(users_per_cluster)));
      job.spec = spec;
      job.redundant =
          scheme_active && p.redundancy_rng.chance(redundant_fraction);
      job.targets.clear();
      job.targets.push_back(ci);
      place_job(job);
      gateway.submit(job, inflation);
      ++p.produced;
      if (++p.in_buf == p.buf.size() && !p.reader->exhausted()) {
        p.reader->next(window, p.buf);
        p.in_buf = 0;
      }
      if (p.in_buf < p.buf.size()) {
        mheap.emplace_back(p.buf[p.in_buf].submit_time, ci);
        std::push_heap(mheap.begin(), mheap.end(), std::greater<>{});
      }
      if (!mheap.empty()) {
        sim.schedule_at(mheap.front().first, [&merged_fire] { merged_fire(); },
                        des::Priority::kArrival,
                        arrival_tag(mheap.front().second));
      }
    };
    if (!mheap.empty()) {
      sim.schedule_at(mheap.front().first, [&merged_fire] { merged_fire(); },
                      des::Priority::kArrival,
                      arrival_tag(mheap.front().second));
    }
  } else if (windowed) {
    // --- Windowed streaming mode: O(stream_window) trace state per pump.
    std::vector<grid::GridJob>().swap(jobs);
    gateway.set_record_sink(&result.stream);

    const std::size_t window = config.stream_window;
    wpumps.resize(config.n_clusters);
    {
      std::size_t base = 0;
      for (std::size_t i = 0; i < config.n_clusters; ++i) {
        const detail::WindowedClusterStream& wcs = ws.streams[i];
        WindowPump& p = wpumps[i];
        p.id_base = static_cast<grid::GridJobId>(base);
        base += wcs.checkpoints->total_jobs;
        if (wcs.checkpoints->total_jobs == 0) continue;
        p.gen = std::make_unique<workload::StreamWindow>(
            cluster_configs[i].workload, cluster_configs[i].nodes,
            config.submit_horizon, wcs.checkpoints->checkpoints.front(),
            *estimator);
        p.buf.reserve(window);
        p.gen->next(window, p.buf);
        p.users_rng = util::Rng::from_fingerprint(wcs.users_start);
        p.redundancy_rng = util::Rng::from_fingerprint(wcs.redundancy_start);
      }
    }
    const auto users_per_cluster =
        static_cast<std::uint64_t>(config.users_per_cluster);
    const bool scheme_active = !config.scheme.is_none();
    const double redundant_fraction = config.redundant_fraction;
    wpump_fire = [&gateway, &place_job, &arrival_tag, &wpumps, &sim,
                  &wpump_fire, window, users_per_cluster, scheme_active,
                  redundant_fraction, inflation](std::size_t ci) {
      WindowPump& p = wpumps[ci];
      const workload::JobSpec& spec = p.buf[p.in_buf];
      grid::GridJob& job = p.scratch;
      job.id = p.id_base + p.produced + 1;
      job.origin = ci;
      // Same draws, same per-generator order as the eager rs.draws loop
      // (which advances the redundancy generator only under an active
      // scheme — preserve the short-circuit exactly).
      job.user = static_cast<sched::UserId>(static_cast<std::uint32_t>(
          ci * 4096 + p.users_rng.below(users_per_cluster)));
      job.spec = spec;
      job.redundant =
          scheme_active && p.redundancy_rng.chance(redundant_fraction);
      job.targets.clear();
      job.targets.push_back(ci);
      place_job(job);
      gateway.submit(job, inflation);
      ++p.produced;
      if (++p.in_buf == p.buf.size() && !p.gen->exhausted()) {
        p.gen->next(window, p.buf);
        p.in_buf = 0;
      }
      if (p.in_buf < p.buf.size()) {
        sim.schedule_at(p.buf[p.in_buf].submit_time,
                        [&wpump_fire, ci] { wpump_fire(ci); },
                        des::Priority::kArrival, arrival_tag(ci));
      }
    };
    for (std::size_t i = 0; i < config.n_clusters; ++i) {
      if (wpumps[i].buf.empty()) continue;
      sim.schedule_at(wpumps[i].buf.front().submit_time,
                      [&wpump_fire, i] { wpump_fire(i); },
                      des::Priority::kArrival, arrival_tag(i));
    }
  } else {
    // --- Streaming mode: per-cluster pumps, per-finish metric folding.
    // Release any staging arena a previous retained run left in this
    // workspace — keeping it warm would defeat the O(live jobs) budget.
    std::vector<grid::GridJob>().swap(jobs);
    gateway.set_record_sink(&result.stream);

    pumps.resize(config.n_clusters);
    {
      std::size_t base = 0;
      for (std::size_t i = 0; i < config.n_clusters; ++i) {
        pumps[i].stream = &rs.streams[i].get();
        pumps[i].draw_base = base;
        pumps[i].id_base = static_cast<grid::GridJobId>(base);
        base += rs.streams[i].get().size();
      }
    }
    // Fires cluster ci's next arrival, then schedules the following one.
    // Captures locals of this call by reference; the final sim.reset()
    // guarantees no callback survives the return.
    pump_fire = [&gateway, &place_job, &arrival_tag, &pumps, &rs, &sim,
                 &pump_fire, inflation](std::size_t ci) {
      Pump& p = pumps[ci];
      const workload::JobSpec& spec = (*p.stream)[p.next];
      const detail::Draw& d = rs.draws[p.draw_base + p.next];
      grid::GridJob& job = p.scratch;
      job.id = p.id_base + p.next + 1;
      job.origin = ci;
      job.user = static_cast<sched::UserId>(d.user);
      job.spec = spec;
      job.redundant = d.redundant;
      job.targets.clear();
      job.targets.push_back(ci);
      place_job(job);
      gateway.submit(job, inflation);
      if (++p.next < p.stream->size()) {
        sim.schedule_at((*p.stream)[p.next].submit_time,
                        [&pump_fire, ci] { pump_fire(ci); },
                        des::Priority::kArrival, arrival_tag(ci));
      }
    };
    for (std::size_t i = 0; i < config.n_clusters; ++i) {
      if (pumps[i].stream->empty()) continue;
      sim.schedule_at(pumps[i].stream->front().submit_time,
                      [&pump_fire, i] { pump_fire(i); },
                      des::Priority::kArrival, arrival_tag(i));
    }
  }

  // --- Queue observation ---------------------------------------------------
  std::vector<metrics::QueueTracker::Probe> probes;
  probes.reserve(config.n_clusters);
  for (std::size_t i = 0; i < config.n_clusters; ++i) {
    probes.emplace_back([&platform, i] {
      return platform.scheduler(i).queue_length();
    });
  }
  metrics::QueueTracker tracker(sim, std::move(probes),
                                config.queue_sample_interval,
                                config.submit_horizon);

  if (config.drain) {
    sim.run();  // every job eventually starts and finishes
  } else {
    if (config.truncate_factor <= 0.0) {
      throw std::invalid_argument("truncate_factor must be > 0");
    }
    sim.run_until(config.submit_horizon * config.truncate_factor);
  }

  result.ops = platform.total_counters();
  result.gateway_cancels = gateway.cancellations_issued();
  result.replicas_rejected = gateway.replicas_rejected();
  result.replicas_dropped = gateway.replicas_dropped();
  for (const auto& station : stations) {
    result.middleware_max_backlog =
        std::max(result.middleware_max_backlog,
                 static_cast<double>(station->max_backlog()));
    result.middleware_mean_sojourn +=
        station->mean_sojourn() / static_cast<double>(stations.size());
  }
  result.jobs_generated = jobs_generated;
  result.avg_max_queue = tracker.avg_max_length();
  result.queue_growth_per_hour.reserve(config.n_clusters);
  for (std::size_t i = 0; i < config.n_clusters; ++i) {
    result.queue_growth_per_hour.push_back(tracker.growth_per_hour(i));
  }
  result.end_time = sim.now();
  // Job-proportional live state, capacity-based (high-water): gateway
  // tracking + scheduler tables, plus whichever arrival mechanism ran.
  result.live_state_bytes = gateway.live_state_bytes();
  for (std::size_t i = 0; i < platform.size(); ++i) {
    result.live_state_bytes += platform.scheduler(i).live_state_bytes();
  }
  result.live_state_bytes += rs.draws.capacity() * sizeof(detail::Draw);
  if (config.retain_records) {
    result.live_state_bytes += jobs.capacity() * sizeof(grid::GridJob);
    for (const grid::GridJob& job : jobs) {
      result.live_state_bytes +=
          job.targets.capacity() * sizeof(std::size_t) +
          job.replica_specs.capacity() * sizeof(workload::JobSpec);
    }
  } else if (windowed) {
    result.live_state_bytes += wpumps.capacity() * sizeof(WindowPump);
    for (const WindowPump& p : wpumps) {
      result.live_state_bytes +=
          p.scratch.targets.capacity() * sizeof(std::size_t);
    }
    result.live_state_bytes += mclusters.capacity() * sizeof(SwfWindowCluster);
    result.live_state_bytes +=
        mheap.capacity() * sizeof(std::pair<double, std::size_t>);
    for (const SwfWindowCluster& p : mclusters) {
      result.live_state_bytes +=
          p.scratch.targets.capacity() * sizeof(std::size_t);
    }
  } else {
    result.live_state_bytes += pumps.capacity() * sizeof(Pump);
    for (const Pump& p : pumps) {
      result.live_state_bytes +=
          p.scratch.targets.capacity() * sizeof(std::size_t);
    }
  }
  // Resident trace state: what stream_window exists to bound. Windowed
  // runs hold checkpoint tables (or spool indexes) plus one window buffer
  // per cluster; whole-stream runs hold every generated spec.
  if (windowed) {
    for (const detail::WindowedClusterStream& wcs : ws.streams) {
      result.resident_trace_bytes += wcs.payload_bytes();
    }
    for (const WindowPump& p : wpumps) {
      result.resident_trace_bytes +=
          p.buf.capacity() * sizeof(workload::JobSpec);
    }
    for (const SwfWindowCluster& p : mclusters) {
      result.resident_trace_bytes +=
          p.buf.capacity() * sizeof(workload::JobSpec);
    }
  } else {
    for (const detail::ClusterStream& cs : rs.streams) {
      result.resident_trace_bytes +=
          cs.get().size() * sizeof(workload::JobSpec);
    }
  }
  result.records = gateway.take_records();
  gateway.set_record_sink(nullptr);
  if (config.drain) {
    const std::uint64_t finished = config.retain_records
                                       ? result.records.size()
                                       : gateway.finished();
    if (finished != jobs_generated) {
      throw std::logic_error(
          "conservation violation: not every grid job finished exactly once");
    }
  }
  // Leave the workspace inert: arrival lambdas captured references to
  // locals of this call (placement, estimator, stations); reset() both
  // frees the slab's callbacks and guarantees none can ever fire.
  sim.reset();
  return result;
}

}  // namespace rrsim::core
