// The paper's redundant request schemes: R2, R3, R4 (fixed counts), HALF
// (requests to half the clusters), ALL (requests to every cluster), and
// NONE (the baseline every result is reported relative to).
#pragma once

#include <cstddef>
#include <string>

namespace rrsim::core {

/// How many clusters a redundant job sends requests to.
struct RedundancyScheme {
  enum class Kind { kNone, kFixed, kHalf, kAll };

  Kind kind = Kind::kNone;
  int k = 1;  ///< request count for Kind::kFixed

  static RedundancyScheme none() noexcept { return {Kind::kNone, 1}; }
  /// R<k>: requests to k clusters total (including the local one).
  /// Throws std::invalid_argument if k < 1.
  static RedundancyScheme fixed(int k);
  static RedundancyScheme half() noexcept { return {Kind::kHalf, 0}; }
  static RedundancyScheme all() noexcept { return {Kind::kAll, 0}; }

  /// Parses "NONE", "R<k>" (e.g. "R2"), "HALF", "ALL".
  static RedundancyScheme parse(const std::string& name);

  /// Total number of requests per job on an N-cluster platform, >= 1 and
  /// <= N. HALF is ceil(N/2); R<k> saturates at N.
  std::size_t degree(std::size_t n_clusters) const;

  /// Canonical display name ("NONE", "R2", "HALF", "ALL").
  std::string name() const;

  bool is_none() const noexcept { return kind == Kind::kNone; }

  friend bool operator==(const RedundancyScheme&,
                         const RedundancyScheme&) = default;
};

}  // namespace rrsim::core
