// One complete multi-cluster simulation: N clusters + schedulers, one job
// stream per cluster, a redundancy scheme applied by some fraction p of
// the jobs, and the metrics the paper reports. This is the engine behind
// every figure and table in Section 3 and Section 5.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "rrsim/core/scheme.h"
#include "rrsim/des/simulation.h"
#include "rrsim/metrics/online.h"
#include "rrsim/metrics/record.h"
#include "rrsim/sched/factory.h"
#include "rrsim/sched/scheduler.h"
#include "rrsim/workload/lublin.h"

namespace rrsim::grid {
class Gateway;
class Platform;
struct GridJob;
}  // namespace rrsim::grid

namespace rrsim::core {

/// How the workload's arrival rate maps onto the platform.
enum class LoadMode {
  /// The model's "peak hour" arrival process describes the *whole system*:
  /// each of the N clusters receives a stream with mean inter-arrival
  /// N * base rate, so total offered load is constant as N grows. This is
  /// the reading of the paper's setup ("6 hours of job submissions,
  /// around 4,000 jobs") that reproduces its observed behaviour —
  /// redundancy harmful at N = 2 (clusters overloaded), beneficial for
  /// N > 5 (load per cluster drops below 1), stretch magnitudes of a few
  /// to a few hundred. The default.
  kSharedPeak,
  /// Every cluster receives the full model-rate stream (mean 5 s
  /// inter-arrival). Heavily overloads each cluster — queues grow by
  /// hundreds of jobs per hour, which is the regime of the paper's
  /// Section 4.1 queue-growth statement.
  kPerClusterPeak,
  /// Rescale each cluster's arrival rate so its offered load equals
  /// target_utilization (steady-state studies).
  kCalibrated,
};

/// Everything that defines one simulation run. Defaults mirror the paper's
/// base setup: 128-node clusters, EASY, exact estimates, uniform replica
/// placement, 6 h of submissions, every job redundant.
struct ExperimentConfig {
  // --- platform ---------------------------------------------------------
  std::size_t n_clusters = 10;
  int nodes_per_cluster = 128;
  /// Per-cluster sizes; overrides nodes_per_cluster when non-empty
  /// (Table 3 heterogeneity). Must then have n_clusters entries.
  std::vector<int> cluster_nodes;
  sched::Algorithm algorithm = sched::Algorithm::kEasy;

  // --- workload ----------------------------------------------------------
  workload::LublinParams base_workload{};
  LoadMode load_mode = LoadMode::kSharedPeak;
  /// Offered load per cluster for LoadMode::kCalibrated.
  double target_utilization = 0.92;
  /// Per-cluster mean inter-arrival override, seconds (Table 3 draws
  /// these from [2, 20] s). Overrides load_mode when non-empty.
  std::vector<double> cluster_mean_iat;
  double submit_horizon = 6.0 * 3600.0;  ///< seconds of job submissions
  /// "exact", "phi" or "uniform216" (see workload/estimators.h).
  std::string estimator = "exact";
  /// SWF trace files replayed *instead of* the Lublin model — the
  /// cross-check the paper ran against Parallel Workloads Archive logs.
  /// When non-empty, cluster i replays trace_files[i % size()]: submit
  /// times are shifted to start at 0 and truncated to submit_horizon,
  /// jobs wider than the cluster are skipped, and the traces' own
  /// requested times are kept (load_mode and estimator do not apply).
  /// Composes with stream_window > 0: the trace is spooled to disk once
  /// (workload::WindowSpool) and replayed window by window, bit-identical
  /// to the retained replay including integer-time tie order.
  std::vector<std::string> trace_files;

  // --- redundancy --------------------------------------------------------
  RedundancyScheme scheme = RedundancyScheme::none();
  double redundant_fraction = 1.0;  ///< the paper's p, in [0, 1]
  std::string placement = "uniform";  ///< or "biased" (Table 2)
  double remote_inflation = 1.0;  ///< requested-time factor on remote
                                  ///< replicas (§3.1.2: 1.1, 1.5)

  // --- middleware (§4.2, made dynamic) -------------------------------------
  /// Sustainable middleware operations per second per cluster (submission
  /// or cancellation each count as one; GT4 WS-GRAM sustains ~1). Every
  /// request then flows through a FIFO station and arrives late when the
  /// station saturates. 0 disables middleware (the paper's Section 3
  /// zero-overhead assumption). Incompatible with record_predictions.
  double middleware_ops_per_sec = 0.0;

  // --- mitigation: per-user pending limits (§2/§6) -------------------------
  /// Cap on pending requests per user per queue; 0 disables. The origin
  /// replica is exempt (a user's home submission always enters), so the
  /// cap only trims redundancy.
  int per_user_pending_limit = 0;
  /// Size of the user population at each cluster (jobs are attributed to
  /// users uniformly). Only meaningful with a pending limit; smaller
  /// populations make the limit bind sooner.
  int users_per_cluster = 8;

  // --- measurement protocol ----------------------------------------------
  /// If true, the simulation runs until every submitted job finishes (the
  /// queues drain) and metrics cover all jobs. If false, the simulation
  /// stops at submit_horizon * truncate_factor and metrics cover only the
  /// jobs that completed by then — the appropriate protocol for the
  /// paper's Section 3 experiments, whose "peak hour" arrival rate
  /// overloads the clusters so badly (queues grow ~700 jobs/hour) that
  /// its reported stretch magnitudes are only attainable over the jobs
  /// that finish within the observation window.
  bool drain = true;
  double truncate_factor = 1.0;  ///< observation window, multiple of
                                 ///< submit_horizon (used when !drain)

  // --- cross-cluster latency / parallel execution --------------------------
  /// Run on the conservative parallel kernel: one DES partition per
  /// cluster, advanced in lookahead windows (exec/pdes.h), with the
  /// distributed per-cluster gateway (grid/pdes_gateway.h). Requires
  /// cross_cluster_latency > 0 — the latency is the protocol's lookahead.
  /// Results are bit-identical for any pdes_jobs. Incompatible with
  /// middleware, record_predictions, streaming (retain_records == false)
  /// and the "least-loaded" placement (which needs a global queue view).
  bool pdes = false;
  /// One-way latency, in seconds, of every cross-cluster interaction:
  /// remote replica submission, sibling cancellation, and the notices that
  /// flow back to the origin. 0 (the default) is the paper's zero-delay
  /// assumption, served by the classic single-gateway kernel; > 0 requires
  /// pdes and models the real-grid regime where a job can start on two
  /// clusters because the cancellation was still in flight
  /// (SimResult::duplicate_starts).
  double cross_cluster_latency = 0.0;
  /// Worker threads for the PDES kernel; <= 0 resolves like --jobs
  /// (RRSIM_JOBS, then hardware_concurrency), and is clamped to
  /// n_clusters. 1 runs the same windowed protocol sequentially.
  int pdes_jobs = 0;

  // --- bookkeeping ---------------------------------------------------------
  bool record_predictions = false;  ///< Section 5 instrumentation
  /// If true (the default), every finished job is appended to
  /// SimResult::records — the mode all figure/table pipelines use. If
  /// false, the run *streams*: per-job outcomes are folded into
  /// SimResult::stream as they finish, the per-job staging vector and the
  /// pre-scheduled arrival slab are replaced by per-cluster arrival pumps,
  /// and memory stays O(live jobs) instead of O(total jobs) — the mode
  /// that makes 10^6-job campaigns fit in tens of MB. Metric results are
  /// bit-identical to the retained mode except when two clusters submit
  /// at the exact same instant (possible with integer-time SWF traces,
  /// measure-zero under the Lublin model): the placement stream is then
  /// consumed in a different order.
  bool retain_records = true;
  /// If > 0, job streams are never materialized whole: generation is
  /// windowed (workload::StreamWindow pulls this many jobs at a time from
  /// the per-cluster generators, bit-identical output by construction) and
  /// the TraceCache memoizes generator *checkpoints* instead of streams,
  /// so resident trace state is O(stream_window x clusters) instead of
  /// O(total jobs) — the regime that fits 10^3 clusters x 10^7 jobs.
  /// Requires the streaming record mode on the classic kernel
  /// (retain_records == false; PDES retains records but still streams its
  /// *input* windowed). File-backed traces (trace_files) have no
  /// generator to checkpoint; they are spooled to an unlinked temp file
  /// instead (workload::WindowSpool, cached per trace key), keeping only
  /// the window index resident — and, unlike the eager streaming mode,
  /// the windowed SWF replay reproduces the *retained* path's
  /// cross-cluster tie order exactly (a single merged arrival pump keyed
  /// (time, cluster) instead of independent per-cluster pumps).
  /// 0 (the default) keeps whole-stream resolution.
  std::size_t stream_window = 0;
  double queue_sample_interval = 60.0;  ///< seconds between queue samples
  std::uint64_t seed = 1;

  /// Tie-break schedule hook for the rrsim_check explorer: when non-null,
  /// the policy is installed on the classic kernel's simulation (and on
  /// every PDES partition, which then requires pdes_jobs == 1 so policy
  /// calls stay single-threaded) before any event is scheduled, and its
  /// coupling probe is attached to the gateway/coordinator. Not owned;
  /// must outlive the run. Deliberately *not* part of the trace-cache
  /// key: the policy permutes dispatch order, never the generated
  /// workload. nullptr (default) keeps the kernel's seq-order fast path —
  /// outputs are bit-identical to a build without this field.
  des::TieBreakPolicy* tie_break_policy = nullptr;

  /// Resolved size of cluster `i`.
  int nodes_of(std::size_t i) const;
};

/// Outcome of one run.
struct SimResult {
  metrics::JobRecords records;  ///< one entry per finished grid job
                                ///< (empty when streamed)
  /// Streaming-mode metrics: every finished job folded in, in finish
  /// order. Only populated when streamed is true.
  metrics::OnlineAccumulator stream;
  bool streamed = false;  ///< ran with retain_records == false
  /// High-water bytes of job-proportional live simulation state (gateway
  /// tracking, scheduler tables, and — in retained mode — the grid-job
  /// staging vector). Capacity-based, so it reports the run's peak even
  /// though tables shrink as jobs finish. Excludes the retained records
  /// and the DES event slab.
  std::size_t live_state_bytes = 0;
  /// Resident bytes of workload trace state during the run: materialized
  /// job streams (whole-stream modes, shared snapshots counted once) or
  /// checkpoint tables + window buffers (windowed mode). The quantity the
  /// stream_window option exists to bound.
  std::size_t resident_trace_bytes = 0;
  sched::OpCounters ops;        ///< summed over all schedulers
  std::uint64_t gateway_cancels = 0;  ///< replica cancellations issued
  std::uint64_t replicas_rejected = 0;  ///< refused by per-user limits
  std::uint64_t replicas_dropped = 0;  ///< skipped (job already started)
  double middleware_max_backlog = 0.0;  ///< worst station backlog (ops)
  double middleware_mean_sojourn = 0.0;  ///< mean op latency, seconds
  std::uint64_t jobs_generated = 0;
  /// PDES mode only: grid jobs that started on more than one cluster
  /// because the sibling cancellation was still in flight (the
  /// latency-specific harm; always 0 on the zero-delay kernel).
  std::uint64_t duplicate_starts = 0;
  /// PDES mode only: finish notices discarded because the job's record
  /// already existed (the duplicate runs completing).
  std::uint64_t duplicate_finishes = 0;
  /// PDES mode only: barrier windows the coordinator executed.
  std::uint64_t pdes_windows = 0;
  double avg_max_queue = 0.0;  ///< mean over clusters of max queue length
  std::vector<double> queue_growth_per_hour;  ///< per cluster, jobs/hour
  double end_time = 0.0;  ///< simulated time when everything drained
};

/// Reusable per-run simulation state: the DES event slab, the Platform
/// (schedulers with their profiles and queues), the Gateway (replica maps
/// and record buffer), and the grid-job staging vector. Sweep workers keep
/// one workspace per thread and run every work unit through it, so the
/// arenas those structures grew on the first replication stay warm for all
/// later ones. Reuse is strictly behaviour-preserving: every component is
/// reset to its just-constructed state between runs (the tests pin
/// equality against fresh construction), and the Platform/Gateway pair is
/// reconstructed whenever the cluster shape or algorithm changes.
class ExperimentWorkspace {
 public:
  ExperimentWorkspace();
  ~ExperimentWorkspace();
  ExperimentWorkspace(const ExperimentWorkspace&) = delete;
  ExperimentWorkspace& operator=(const ExperimentWorkspace&) = delete;

  /// Runs that reused the previous run's Platform/Gateway (observability
  /// for tests and the sweep benchmark; a shape change resets nothing
  /// visible here, it just reconstructs).
  std::uint64_t platform_reuses() const noexcept { return reuses_; }

 private:
  friend SimResult run_experiment(const ExperimentConfig& config,
                                  ExperimentWorkspace& workspace);
  des::Simulation sim_;
  std::unique_ptr<grid::Platform> platform_;
  std::unique_ptr<grid::Gateway> gateway_;
  std::vector<grid::GridJob> jobs_;
  std::uint64_t reuses_ = 0;
};

/// Runs one experiment under the configured measurement protocol (drain or
/// truncate). Deterministic in config.seed.
SimResult run_experiment(const ExperimentConfig& config);

/// Same semantics and bit-identical results, but runs inside `workspace`,
/// reusing its simulation slab, schedulers, and gateway allocations. The
/// workspace must not be used concurrently from two threads.
SimResult run_experiment(const ExperimentConfig& config,
                         ExperimentWorkspace& workspace);

/// This thread's lazily-constructed workspace. Sweep workers route every
/// work unit through it so arenas persist for the lifetime of the worker
/// thread, not one unit.
ExperimentWorkspace& thread_workspace();

}  // namespace rrsim::core
