// Shared command-line plumbing for the bench and example binaries: every
// harness accepts the same core flags, so the paper's experiments can be
// re-run under varied protocols without recompiling.
//
// Flags consumed by apply_common_flags():
//   --clusters=N      number of sites
//   --nodes=K         nodes per cluster
//   --hours=H         hours of job submissions
//   --algo=easy|cbf|fcfs
//   --estimator=exact|phi|uniform216
//   --scheme=NONE|R2|R3|R4|HALF|ALL
//   --percent=P       percentage of jobs using redundant requests
//   --placement=uniform|biased
//   --load=shared|peak|util  arrival-rate mode (see LoadMode)
//   --util=U          per-cluster offered load for --load=util
//   --protocol=drain|truncate
//   --mw-rate=R       middleware ops/s per cluster (0 = instantaneous)
//   --user-limit=L    per-user pending-request cap (0 = off)
//   --users=U         users per cluster (population for the cap)
//   --seed=S
//   --window=W        windowed trace generation: pull W jobs at a time
//                     instead of materializing whole streams (requires
//                     streaming record mode on the classic kernel; 0 = off)
//   --trace-cache-budget=B  byte budget for the process-global trace
//                     cache (LRU eviction above B; 0 = unlimited, the
//                     default). Benches also honor the
//                     RRSIM_TRACE_CACHE_BUDGET env var; the flag wins.
//   --jobs=N          campaign worker threads (also env RRSIM_JOBS;
//                     default: hardware concurrency). Campaign results
//                     are bit-identical for any N.
//   --pdes            run on the conservative parallel kernel (one DES
//                     partition per cluster; requires --latency > 0 to
//                     take effect, worker count from --jobs/RRSIM_JOBS;
//                     --jobs=1 warns and runs the protocol sequentially).
//                     Results are bit-identical for any worker count.
//   --latency=S       one-way cross-cluster latency in seconds (>= 0;
//                     > 0 requires --pdes). 0 keeps the paper's zero-delay
//                     assumption on the classic kernel.
#pragma once

#include "rrsim/core/experiment.h"
#include "rrsim/util/cli.h"

namespace rrsim::core {

/// Parses "shared" / "peak" / "util" into a LoadMode. Throws
/// std::invalid_argument on anything else.
LoadMode parse_load_mode(const std::string& name);

/// Display name of a load mode.
std::string load_mode_name(LoadMode mode);

/// Overwrites the fields of `config` for which `cli` carries a flag (see
/// the header comment for the flag list). Returns the updated config.
ExperimentConfig apply_common_flags(ExperimentConfig config,
                                    const util::Cli& cli);

}  // namespace rrsim::core
