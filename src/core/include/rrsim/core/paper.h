// Canonical experiment configurations for reproducing the paper's tables
// and figures. The paper under-specifies its simulation protocol in two
// places — how the Lublin "peak hour" arrival rate maps onto N clusters,
// and whether metrics cover all jobs or only those completing within the
// observation window. rrsim exposes both dimensions (LoadMode,
// drain/truncate); the configurations here pin the combination that
// reproduces each experiment's reported *shape* (see EXPERIMENTS.md for
// the calibration study behind these choices).
#pragma once

#include "rrsim/core/experiment.h"

namespace rrsim::core {

/// Mean inter-arrival time (seconds) of the *system-wide* job stream used
/// by the figure-regime configuration. With the default base-2 Lublin
/// runtimes (mean job work ~3,300 node-seconds) and 128-node clusters,
/// this puts a 10-cluster platform at ~1.7x offered load per cluster —
/// the persistent-queueing regime in which the paper's Fig 1/2/4 effects
/// (modest stretch gains, fairness gains, penalty on non-redundant jobs)
/// all appear with the reported signs.
inline constexpr double kFigureBaseInterarrival = 1.55;

/// The paper's base setup for the Section 3 simulation experiments:
/// 128-node clusters, EASY, exact estimates, uniform placement, 6 h of
/// submissions, shared-peak arrivals at kFigureBaseInterarrival, drain
/// protocol, every job redundant (scheme still NONE — callers pick one).
ExperimentConfig figure_config();

/// Same, but sized down for continuous-integration speed: 2 h of
/// submissions. Shapes are preserved; statistics are noisier.
ExperimentConfig figure_config_quick();

}  // namespace rrsim::core
