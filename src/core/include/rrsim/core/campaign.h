// Campaigns: repeated experiments over random job streams, with the
// paper's paired methodology — each repetition runs a redundancy scheme
// and the NONE baseline on *identical* streams and reports the ratio of
// their metrics, then averages the ratios over repetitions ("relative to
// the scheme using no redundant requests, averaged over 50 experiments").
#pragma once

#include <vector>

#include "rrsim/core/experiment.h"
#include "rrsim/metrics/summary.h"

namespace rrsim::core {

/// Relative (scheme / NONE) schedule metrics, aggregated over repetitions.
struct RelativeMetrics {
  std::size_t reps = 0;
  double rel_avg_stretch = 0.0;   ///< mean over reps of stretch ratio
  double rel_cv_stretch = 0.0;    ///< mean over reps of CV ratio
  double rel_max_stretch = 0.0;   ///< mean over reps of max-stretch ratio
  double rel_avg_turnaround = 0.0;
  double win_rate = 0.0;  ///< fraction of reps where the scheme's average
                          ///< stretch beat the baseline's
  double worst_rel_stretch = 0.0;  ///< largest (worst) stretch ratio seen
  std::vector<double> per_rep_rel_stretch;  ///< one ratio per repetition
};

/// Runs `reps` paired repetitions of `config` (with its scheme) against
/// the NONE baseline. Repetition r uses seed config.seed + r for both
/// runs, so the job streams are identical within a pair. The scheme in
/// `config` must not be NONE.
///
/// `jobs` is the worker-thread count for the repetitions (0 = the process
/// default: --jobs flag, RRSIM_JOBS, or hardware concurrency — see
/// rrsim/exec/campaign_runner.h). Results are bit-identical for any
/// `jobs` value: repetitions are seeded by index and reduced in order.
/// The same contract applies to the other campaigns below.
RelativeMetrics run_relative_campaign(const ExperimentConfig& config,
                                      int reps, int jobs = 0);

/// Absolute per-class metrics averaged over repetitions (Fig 4: average
/// stretch of jobs using redundancy vs. jobs not using it).
struct ClassifiedCampaign {
  std::size_t reps = 0;
  double avg_stretch_all = 0.0;
  double avg_stretch_redundant = 0.0;      ///< "r jobs" (0 when none exist)
  double avg_stretch_non_redundant = 0.0;  ///< "n-r jobs"
  std::size_t redundant_jobs = 0;          ///< total r jobs over all reps
  std::size_t non_redundant_jobs = 0;
};

/// Runs `reps` repetitions of `config` and averages the per-class average
/// stretches over the repetitions that have jobs of that class.
ClassifiedCampaign run_classified_campaign(const ExperimentConfig& config,
                                           int reps, int jobs = 0);

/// Prediction-accuracy study (Table 4), averaged over repetitions.
struct PredictionCampaign {
  std::size_t reps = 0;
  metrics::PredictionAccuracy all;
  metrics::PredictionAccuracy redundant;
  metrics::PredictionAccuracy non_redundant;
};

/// Runs `reps` repetitions with prediction recording forced on and
/// aggregates the over-estimation ratios across all repetitions' jobs.
PredictionCampaign run_prediction_campaign(const ExperimentConfig& config,
                                           int reps, int jobs = 0);

}  // namespace rrsim::core
