// The campaign-level face of the sweep engine: queue every point of a
// figure or table as a campaign, then run them all as one flat
// (point x replication) work pool on a single worker pool.
//
// This is what the bench binaries build on instead of hand-rolled serial
// loops: each add_*() call queues one sweep point and a completion
// callback that receives the point's aggregate; run() executes all
// replications of all points concurrently (see exec::SweepRunner for the
// scheduling and determinism contract) and fires the callbacks in add()
// order on the calling thread. Results are bit-identical to running the
// equivalent run_*_campaign() calls back-to-back, for any --jobs value.
//
// Replications execute inside the worker thread's reusable
// ExperimentWorkspace (warm DES slab, schedulers, gateway) and pull their
// job streams from the global workload::TraceCache, so the common-random-
// number streams shared by every point of a figure are generated once.
#pragma once

#include <cstdint>
#include <functional>

#include "rrsim/core/campaign.h"
#include "rrsim/core/experiment.h"
#include "rrsim/exec/sweep_runner.h"

namespace rrsim::core {

/// Trace-cache activity of one CampaignSweep::run(), as deltas of the
/// process-global workload::TraceCache counters around the run — the
/// sweep-granularity observability the per-process counters cannot give
/// when several sweeps share one process. Other threads running
/// experiments concurrently would perturb the deltas; the benches that
/// read this run one sweep at a time, which is the supported shape.
struct SweepCacheStats {
  std::uint64_t stream_hits = 0;
  std::uint64_t stream_misses = 0;
  std::uint64_t checkpoint_hits = 0;
  std::uint64_t checkpoint_misses = 0;
  std::uint64_t draw_hits = 0;
  std::uint64_t draw_misses = 0;
  std::uint64_t spool_hits = 0;
  std::uint64_t spool_misses = 0;
};

/// Cache-affinity key of a sweep point: an FNV-1a digest of exactly the
/// config fields that determine the point's memoized trace inputs (seed,
/// platform shape, load, horizon, estimator, users, window, trace files)
/// and none of the swept treatment knobs (scheme, fraction, placement,
/// scheduler) — so every point of a fraction or scheme sweep over one
/// workload maps to one affinity group and exec::SweepRunner can schedule
/// the group's units temporally adjacent (see add_affine). Never 0 (the
/// runner's opt-out value). Collisions are harmless: affinity is a
/// scheduling hint, results are unaffected.
std::uint64_t trace_affinity(const ExperimentConfig& config);

/// Deterministic multi-campaign sweep. Not thread-safe; build and run it
/// from one thread.
class CampaignSweep {
 public:
  /// Every queued campaign runs `reps` replications (seed + r pairing, as
  /// in run_*_campaign). jobs = 0 resolves the process default.
  /// Throws std::invalid_argument if reps < 1.
  explicit CampaignSweep(int reps, int jobs = 0);

  int reps() const noexcept { return reps_; }
  int jobs() const noexcept { return runner_.jobs(); }

  /// Queues a paired scheme-vs-NONE campaign (see run_relative_campaign;
  /// config.scheme must not be NONE — throws immediately otherwise).
  /// `done` fires during run(), after the point's last replication folded.
  void add_relative(const ExperimentConfig& config,
                    std::function<void(const RelativeMetrics&)> done);

  /// Queues a per-class (r-jobs / n-r-jobs) campaign.
  void add_classified(const ExperimentConfig& config,
                      std::function<void(const ClassifiedCampaign&)> done);

  /// Queues a prediction-accuracy campaign (record_predictions forced on).
  void add_prediction(const ExperimentConfig& config,
                      std::function<void(const PredictionCampaign&)> done);

  /// Queues `reps` independent runs of `config` (replication r uses seed
  /// config.seed + r); `per_rep` fires once per replication, in order.
  /// For studies that consume raw SimResults rather than a campaign
  /// aggregate (middleware load, queue growth, rejection counts).
  void add_experiments(const ExperimentConfig& config,
                       std::function<void(int, const SimResult&)> per_rep);

  /// Escape hatch for custom work-unit shapes (e.g. per-shape moldable
  /// units): tasks queued here interleave into the same flat pool.
  exec::SweepRunner& runner() noexcept { return runner_; }

  /// Executes everything queued; see exec::SweepRunner::run(). Also
  /// captures this run's trace-cache deltas into last_cache_stats().
  void run();

  /// Trace-cache activity of the most recent successful run().
  const SweepCacheStats& last_cache_stats() const noexcept {
    return last_cache_stats_;
  }

 private:
  int reps_;
  exec::SweepRunner runner_;
  SweepCacheStats last_cache_stats_;
};

}  // namespace rrsim::core
