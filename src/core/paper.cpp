#include "rrsim/core/paper.h"

namespace rrsim::core {

ExperimentConfig figure_config() {
  ExperimentConfig config;
  config.n_clusters = 10;
  config.nodes_per_cluster = 128;
  config.algorithm = sched::Algorithm::kEasy;
  config.base_workload =
      config.base_workload.with_mean_interarrival(kFigureBaseInterarrival);
  config.load_mode = LoadMode::kSharedPeak;
  config.submit_horizon = 6.0 * 3600.0;
  config.drain = true;
  config.estimator = "exact";
  config.scheme = RedundancyScheme::none();
  config.redundant_fraction = 1.0;
  return config;
}

ExperimentConfig figure_config_quick() {
  ExperimentConfig config = figure_config();
  config.submit_horizon = 2.0 * 3600.0;
  return config;
}

}  // namespace rrsim::core
