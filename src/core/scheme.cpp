#include "rrsim/core/scheme.h"

#include <algorithm>
#include <stdexcept>

namespace rrsim::core {

RedundancyScheme RedundancyScheme::fixed(int k) {
  if (k < 1) throw std::invalid_argument("R<k> needs k >= 1");
  return {Kind::kFixed, k};
}

RedundancyScheme RedundancyScheme::parse(const std::string& name) {
  if (name == "NONE" || name == "none") return none();
  if (name == "HALF" || name == "half") return half();
  if (name == "ALL" || name == "all") return all();
  if ((name.size() >= 2) && (name[0] == 'R' || name[0] == 'r')) {
    try {
      std::size_t pos = 0;
      const int k = std::stoi(name.substr(1), &pos);
      if (pos == name.size() - 1) return fixed(k);
    } catch (const std::exception&) {
      // fall through to the error below
    }
  }
  throw std::invalid_argument("unknown redundancy scheme: " + name);
}

std::size_t RedundancyScheme::degree(std::size_t n_clusters) const {
  if (n_clusters == 0) throw std::invalid_argument("empty platform");
  switch (kind) {
    case Kind::kNone:
      return 1;
    case Kind::kFixed:
      return std::min<std::size_t>(static_cast<std::size_t>(k), n_clusters);
    case Kind::kHalf:
      return std::max<std::size_t>(1, (n_clusters + 1) / 2);
    case Kind::kAll:
      return n_clusters;
  }
  throw std::logic_error("unreachable");
}

std::string RedundancyScheme::name() const {
  switch (kind) {
    case Kind::kNone:
      return "NONE";
    case Kind::kFixed:
      return "R" + std::to_string(k);
    case Kind::kHalf:
      return "HALF";
    case Kind::kAll:
      return "ALL";
  }
  throw std::logic_error("unreachable");
}

}  // namespace rrsim::core
