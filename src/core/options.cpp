#include "rrsim/core/options.h"

#include <cstdio>
#include <stdexcept>
#include <string>

#include "rrsim/exec/campaign_runner.h"
#include "rrsim/workload/trace_cache.h"

namespace rrsim::core {

LoadMode parse_load_mode(const std::string& name) {
  if (name == "shared") return LoadMode::kSharedPeak;
  if (name == "peak") return LoadMode::kPerClusterPeak;
  if (name == "util") return LoadMode::kCalibrated;
  throw std::invalid_argument("unknown load mode: " + name +
                              " (expected shared|peak|util)");
}

std::string load_mode_name(LoadMode mode) {
  switch (mode) {
    case LoadMode::kSharedPeak:
      return "shared";
    case LoadMode::kPerClusterPeak:
      return "peak";
    case LoadMode::kCalibrated:
      return "util";
  }
  throw std::logic_error("unreachable");
}

ExperimentConfig apply_common_flags(ExperimentConfig config,
                                    const util::Cli& cli) {
  if (cli.has("clusters")) {
    config.n_clusters = static_cast<std::size_t>(cli.get_int("clusters", 0));
  }
  if (cli.has("nodes")) {
    config.nodes_per_cluster = static_cast<int>(cli.get_int("nodes", 0));
  }
  if (cli.has("hours")) {
    config.submit_horizon = cli.get_double("hours", 0.0) * 3600.0;
  }
  if (cli.has("algo")) {
    config.algorithm = sched::parse_algorithm(cli.get_string("algo", ""));
  }
  if (cli.has("estimator")) {
    config.estimator = cli.get_string("estimator", "exact");
  }
  if (cli.has("scheme")) {
    config.scheme = RedundancyScheme::parse(cli.get_string("scheme", ""));
  }
  if (cli.has("percent")) {
    config.redundant_fraction = cli.get_double("percent", 100.0) / 100.0;
  }
  if (cli.has("placement")) {
    config.placement = cli.get_string("placement", "uniform");
  }
  if (cli.has("load")) {
    config.load_mode = parse_load_mode(cli.get_string("load", "shared"));
  }
  if (cli.has("util")) {
    config.target_utilization = cli.get_double("util", 0.92);
    config.load_mode = LoadMode::kCalibrated;
  }
  if (cli.has("protocol")) {
    const std::string p = cli.get_string("protocol", "drain");
    if (p == "drain") {
      config.drain = true;
    } else if (p == "truncate") {
      config.drain = false;
    } else {
      throw std::invalid_argument("unknown protocol: " + p);
    }
  }
  if (cli.has("mw-rate")) {
    config.middleware_ops_per_sec = cli.get_double("mw-rate", 0.0);
  }
  if (cli.has("user-limit")) {
    config.per_user_pending_limit =
        static_cast<int>(cli.get_int("user-limit", 0));
  }
  if (cli.has("users")) {
    config.users_per_cluster = static_cast<int>(cli.get_int("users", 8));
  }
  if (cli.has("seed")) {
    config.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  }
  if (cli.has("window")) {
    const std::int64_t window = cli.get_int("window", 0);
    if (window < 0) {
      throw std::invalid_argument("--window must be >= 0 jobs (got " +
                                  std::to_string(window) + "; 0 disables "
                                  "windowed generation)");
    }
    config.stream_window = static_cast<std::size_t>(window);
  }
  if (cli.has("trace-cache-budget")) {
    const std::int64_t budget = cli.get_int("trace-cache-budget", 0);
    if (budget < 0) {
      throw std::invalid_argument(
          "--trace-cache-budget must be >= 0 bytes (got " +
          std::to_string(budget) + "; 0 means unlimited)");
    }
    workload::TraceCache::global().set_byte_budget(
        static_cast<std::size_t>(budget));
  }
  if (cli.has("jobs")) {
    const std::int64_t jobs = cli.get_int("jobs", 0);
    if (jobs < 1) {
      throw std::invalid_argument("--jobs must be >= 1 (got " +
                                  std::to_string(jobs) + ")");
    }
    exec::set_default_jobs(static_cast<int>(jobs));
  }
  if (cli.has("latency")) {
    const double latency = cli.get_double("latency", 0.0);
    if (latency < 0.0) {
      throw std::invalid_argument("--latency must be >= 0 seconds (got " +
                                  std::to_string(latency) + ")");
    }
    config.cross_cluster_latency = latency;
  }
  // After --jobs so the PDES worker count sees the configured default.
  if (cli.has("pdes")) {
    config.pdes = cli.get_bool("pdes", true);
    if (config.pdes) {
      config.pdes_jobs = exec::default_jobs();
      if (config.pdes_jobs == 1) {
        std::fprintf(stderr,
                     "warning: --pdes with one worker (--jobs=1) runs the "
                     "windowed protocol sequentially; results are identical, "
                     "there is just no speedup\n");
      }
    }
  }
  return config;
}

}  // namespace rrsim::core
