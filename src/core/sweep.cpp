#include "rrsim/core/sweep.h"

#include <bit>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>

#include "rrsim/metrics/summary.h"
#include "rrsim/util/stats.h"
#include "rrsim/workload/trace_cache.h"

namespace rrsim::core {

namespace {

// FNV-1a, byte-at-a-time. Doubles are mixed on their exact bit patterns —
// the same "identical bits" contract as workload::TraceKey.
struct Fnv {
  std::uint64_t h = 1469598103934665603ull;
  void byte(unsigned char b) {
    h ^= b;
    h *= 1099511628211ull;
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) byte((v >> (8 * i)) & 0xff);
  }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void str(const std::string& s) {
    for (const char c : s) byte(static_cast<unsigned char>(c));
    u64(s.size());  // length-delimited: "ab","c" != "a","bc"
  }
};

}  // namespace

std::uint64_t trace_affinity(const ExperimentConfig& config) {
  // Exactly the fields that reach the memoized trace inputs — TraceKey
  // (via resolve_clusters' calibration and the per-cluster workload
  // parameters), DrawSegmentKey, and SpoolKey. Treatment knobs the cache
  // deliberately ignores (scheme, fraction, placement, scheduler,
  // protocol) are deliberately absent here too: points differing only in
  // them share every cached entry, which is the sharing this affinity
  // exists to exploit.
  Fnv f;
  f.u64(config.seed);
  f.u64(config.n_clusters);
  f.u64(static_cast<std::uint64_t>(config.nodes_per_cluster));
  for (const int n : config.cluster_nodes) {
    f.u64(static_cast<std::uint64_t>(n));
  }
  f.u64(config.cluster_nodes.size());
  f.u64(static_cast<std::uint64_t>(config.load_mode));
  f.f64(config.target_utilization);
  f.f64(config.base_workload.mean_interarrival());
  for (const double iat : config.cluster_mean_iat) f.f64(iat);
  f.u64(config.cluster_mean_iat.size());
  f.f64(config.submit_horizon);
  f.str(config.estimator);
  f.u64(static_cast<std::uint64_t>(config.users_per_cluster));
  f.u64(config.stream_window);
  for (const std::string& path : config.trace_files) f.str(path);
  f.u64(config.trace_files.size());
  // 0 is SweepRunner's "no affinity" opt-out; never collide with it.
  return f.h == 0 ? 1 : f.h;
}

namespace {

// Mode-agnostic metric extraction: retained runs go through the batch
// functions over the record vector (the historical, bit-exact path);
// streaming runs read the same quantities off the per-run accumulator,
// which was fed the identical per-job values in the identical order.
metrics::ScheduleMetrics metrics_of(const SimResult& r) {
  return r.streamed ? r.stream.metrics() : metrics::compute_metrics(r.records);
}

metrics::ClassifiedMetrics classified_of(const SimResult& r) {
  return r.streamed ? r.stream.classified()
                    : metrics::compute_classified_metrics(r.records);
}

}  // namespace

CampaignSweep::CampaignSweep(int reps, int jobs)
    : reps_(reps), runner_(jobs) {
  if (reps < 1) throw std::invalid_argument("reps must be >= 1");
}

void CampaignSweep::run() {
  const workload::TraceCache& cache = workload::TraceCache::global();
  const std::uint64_t sh = cache.hits();
  const std::uint64_t sm = cache.misses();
  const std::uint64_t ch = cache.checkpoint_hits();
  const std::uint64_t cm = cache.checkpoint_misses();
  const std::uint64_t dh = cache.draw_hits();
  const std::uint64_t dm = cache.draw_misses();
  const std::uint64_t ph = cache.spool_hits();
  const std::uint64_t pm = cache.spool_misses();
  runner_.run();
  last_cache_stats_.stream_hits = cache.hits() - sh;
  last_cache_stats_.stream_misses = cache.misses() - sm;
  last_cache_stats_.checkpoint_hits = cache.checkpoint_hits() - ch;
  last_cache_stats_.checkpoint_misses = cache.checkpoint_misses() - cm;
  last_cache_stats_.draw_hits = cache.draw_hits() - dh;
  last_cache_stats_.draw_misses = cache.draw_misses() - dm;
  last_cache_stats_.spool_hits = cache.spool_hits() - ph;
  last_cache_stats_.spool_misses = cache.spool_misses() - pm;
}

// Replications run through the worker thread's persistent workspace: the
// map stage is the only code that executes on pool threads, and each
// thread owns exactly one workspace, so no locking is needed and arenas
// stay warm across every unit the thread picks up.

void CampaignSweep::add_relative(
    const ExperimentConfig& config,
    std::function<void(const RelativeMetrics&)> done) {
  if (config.scheme.is_none()) {
    throw std::invalid_argument("relative campaign needs a non-NONE scheme");
  }
  struct RepOutcome {
    bool valid = false;
    double rel_stretch = 0.0;
    double rel_cv = 0.0;
    double rel_max = 0.0;
    double rel_turnaround = 0.0;
  };
  struct Acc {
    util::OnlineStats rel_stretch;
    util::OnlineStats rel_cv;
    util::OnlineStats rel_max;
    util::OnlineStats rel_turnaround;
    int wins = 0;
    RelativeMetrics out;
  };
  auto acc = std::make_shared<Acc>();
  acc->out.per_rep_rel_stretch.reserve(static_cast<std::size_t>(reps_));
  runner_.add_affine(
      reps_, trace_affinity(config),
      [config](int r) {
        ExperimentConfig with = config;
        with.seed = config.seed + static_cast<std::uint64_t>(r);
        ExperimentConfig without = with;
        without.scheme = RedundancyScheme::none();

        ExperimentWorkspace& ws = thread_workspace();
        const metrics::ScheduleMetrics m_with =
            metrics_of(run_experiment(with, ws));
        const metrics::ScheduleMetrics m_without =
            metrics_of(run_experiment(without, ws));
        RepOutcome o;
        if (m_without.avg_stretch <= 0.0 ||
            m_without.cv_stretch_percent <= 0.0 ||
            m_without.avg_turnaround <= 0.0 || m_without.max_stretch <= 0.0) {
          return o;  // degenerate repetition (e.g. empty stream); skip
        }
        o.valid = true;
        o.rel_stretch = m_with.avg_stretch / m_without.avg_stretch;
        o.rel_cv = m_with.cv_stretch_percent / m_without.cv_stretch_percent;
        o.rel_max = m_with.max_stretch / m_without.max_stretch;
        o.rel_turnaround = m_with.avg_turnaround / m_without.avg_turnaround;
        return o;
      },
      [acc, done = std::move(done), reps = reps_](int r, RepOutcome o) {
        if (o.valid) {
          acc->rel_stretch.add(o.rel_stretch);
          acc->rel_cv.add(o.rel_cv);
          acc->rel_max.add(o.rel_max);
          acc->rel_turnaround.add(o.rel_turnaround);
          if (o.rel_stretch < 1.0) ++acc->wins;
          acc->out.per_rep_rel_stretch.push_back(o.rel_stretch);
        }
        if (r != reps - 1) return;
        RelativeMetrics& out = acc->out;
        out.reps = acc->rel_stretch.count();
        if (out.reps != 0) {
          out.rel_avg_stretch = acc->rel_stretch.mean();
          out.rel_cv_stretch = acc->rel_cv.mean();
          out.rel_max_stretch = acc->rel_max.mean();
          out.rel_avg_turnaround = acc->rel_turnaround.mean();
          out.win_rate = static_cast<double>(acc->wins) /
                         static_cast<double>(out.reps);
          out.worst_rel_stretch = acc->rel_stretch.max();
        }
        done(out);
      });
}

void CampaignSweep::add_classified(
    const ExperimentConfig& config,
    std::function<void(const ClassifiedCampaign&)> done) {
  struct Acc {
    util::OnlineStats all;
    util::OnlineStats red;
    util::OnlineStats non;
    std::size_t red_jobs = 0;
    std::size_t non_jobs = 0;
  };
  auto acc = std::make_shared<Acc>();
  runner_.add_affine(
      reps_, trace_affinity(config),
      [config](int r) {
        ExperimentConfig c = config;
        c.seed = config.seed + static_cast<std::uint64_t>(r);
        return classified_of(run_experiment(c, thread_workspace()));
      },
      [acc, done = std::move(done), reps = reps_](int r,
                                                  metrics::ClassifiedMetrics
                                                      m) {
        if (m.all.jobs > 0) acc->all.add(m.all.avg_stretch);
        if (m.redundant.jobs > 0) acc->red.add(m.redundant.avg_stretch);
        if (m.non_redundant.jobs > 0) {
          acc->non.add(m.non_redundant.avg_stretch);
        }
        acc->red_jobs += m.redundant.jobs;
        acc->non_jobs += m.non_redundant.jobs;
        if (r != reps - 1) return;
        ClassifiedCampaign out;
        out.reps = static_cast<std::size_t>(reps);
        out.avg_stretch_all = acc->all.mean();
        out.avg_stretch_redundant = acc->red.mean();
        out.avg_stretch_non_redundant = acc->non.mean();
        out.redundant_jobs = acc->red_jobs;
        out.non_redundant_jobs = acc->non_jobs;
        done(out);
      });
}

void CampaignSweep::add_prediction(
    const ExperimentConfig& config,
    std::function<void(const PredictionCampaign&)> done) {
  struct Pool {
    metrics::JobRecords records;        // retained: records of every rep
    metrics::OnlineAccumulator stream;  // streaming: Welford-merged reps
    bool streamed = false;
  };
  auto pooled = std::make_shared<Pool>();
  runner_.add_affine(
      reps_, trace_affinity(config),
      [config](int r) {
        ExperimentConfig c = config;
        c.seed = config.seed + static_cast<std::uint64_t>(r);
        c.record_predictions = true;
        return run_experiment(c, thread_workspace());
      },
      [pooled, done = std::move(done), reps = reps_](int r, SimResult result) {
        if (result.streamed) {
          // The reduce stage runs in rep order, so the parallel Welford
          // merge pools deterministically: counts are exact, the pooled
          // mean/CV agree with the retained concatenation to rounding.
          pooled->streamed = true;
          pooled->stream.merge(result.stream);
        } else {
          pooled->records.insert(
              pooled->records.end(),
              std::make_move_iterator(result.records.begin()),
              std::make_move_iterator(result.records.end()));
        }
        if (r != reps - 1) return;
        PredictionCampaign out;
        out.reps = static_cast<std::size_t>(reps);
        if (pooled->streamed) {
          out.all = pooled->stream.prediction();
          out.redundant = pooled->stream.prediction(true);
          out.non_redundant = pooled->stream.prediction(false);
        } else {
          out.all = metrics::compute_prediction_accuracy(pooled->records);
          out.redundant =
              metrics::compute_prediction_accuracy(pooled->records, true);
          out.non_redundant =
              metrics::compute_prediction_accuracy(pooled->records, false);
        }
        done(out);
      });
}

void CampaignSweep::add_experiments(
    const ExperimentConfig& config,
    std::function<void(int, const SimResult&)> per_rep) {
  runner_.add_affine(
      reps_, trace_affinity(config),
      [config](int r) {
        ExperimentConfig c = config;
        c.seed = config.seed + static_cast<std::uint64_t>(r);
        return run_experiment(c, thread_workspace());
      },
      [per_rep = std::move(per_rep)](int r, SimResult result) {
        per_rep(r, result);
      });
}

}  // namespace rrsim::core
