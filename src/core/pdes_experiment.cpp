// The conservative-PDES run path: one DES partition per cluster advanced
// in lookahead windows (exec::PdesCoordinator), with the distributed
// per-cluster gateway (grid::PdesGateway) exchanging L-delayed messages.
//
// Everything *before* the event loop — workload resolution, job streams,
// user/redundancy draws — is shared with the sequential kernel through
// experiment_detail.h, so a PDES run consumes byte-identical inputs.
// During the run, each cluster's arrival pump, scheduler, gateway agent,
// placement generator and queue tracker are touched only by that
// cluster's partition, which is what makes results independent of the
// worker count (DESIGN.md §9).
#include <algorithm>
#include <functional>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "rrsim/core/experiment.h"
#include "rrsim/exec/pdes.h"
#include "rrsim/grid/pdes_gateway.h"
#include "rrsim/grid/placement.h"
#include "rrsim/metrics/queue_tracker.h"
#include "rrsim/sched/factory.h"
#include "rrsim/util/validate.h"
#include "experiment_detail.h"

namespace rrsim::core::detail {

SimResult run_pdes_experiment(const ExperimentConfig& config) {
  // The features below all assume the zero-delay single-gateway kernel:
  // middleware stations and submit-time predictions consult global state
  // at one instant, streaming folds records through one sink in global
  // finish order, and least-loaded placement reads every cluster's live
  // queue length. Reject them loudly instead of silently degrading.
  if (config.middleware_ops_per_sec > 0.0) {
    throw std::invalid_argument("middleware is not supported in PDES mode");
  }
  if (config.record_predictions) {
    throw std::invalid_argument(
        "record_predictions is not supported in PDES mode");
  }
  if (!config.retain_records) {
    throw std::invalid_argument(
        "streaming (retain_records = false) is not supported in PDES mode");
  }
  if (config.placement == "least-loaded") {
    throw std::invalid_argument(
        "least-loaded placement needs a global queue view; "
        "not supported in PDES mode");
  }
  if (!config.drain && config.truncate_factor <= 0.0) {
    throw std::invalid_argument("truncate_factor must be > 0");
  }

  ResolvedClusters rc = resolve_clusters(config);
  const std::size_t n = config.n_clusters;

  // Declared before everything that schedules callbacks into its
  // partitions: the coordinator (and its simulations, holding any
  // still-queued callbacks after a truncated run) must be destroyed last.
  exec::PdesCoordinator coord(n, config.cross_cluster_latency,
                              config.pdes_jobs);

  std::vector<std::unique_ptr<sched::ClusterScheduler>> owned_scheds;
  std::vector<sched::ClusterScheduler*> scheds;
  owned_scheds.reserve(n);
  scheds.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    owned_scheds.push_back(sched::make_scheduler(
        config.algorithm, coord.partition(i), rc.cluster_configs[i].nodes));
    if (config.per_user_pending_limit > 0) {
      owned_scheds.back()->set_per_user_pending_limit(
          config.per_user_pending_limit);
    }
    scheds.push_back(owned_scheds.back().get());
  }

  grid::PdesGateway gateway(coord, scheds, config.cross_cluster_latency);

  // Tie-break schedule hook (rrsim_check): one policy shared by every
  // partition, distinguished through the partition id in each TieGroup.
  // The policy object is called from whichever thread runs a partition's
  // window, so explorer runs are restricted to one worker.
  if (config.tie_break_policy != nullptr) {
    if (coord.jobs() != 1) {
      throw std::invalid_argument(
          "tie_break_policy requires pdes_jobs == 1 (policy calls must be "
          "single-threaded)");
    }
    for (std::size_t i = 0; i < n; ++i) {
      coord.partition(i).set_tie_break_policy(
          config.tie_break_policy, static_cast<std::uint32_t>(i));
      config.tie_break_policy->attach_coupling_probe(
          static_cast<std::uint32_t>(i),
          [&coord] { return coord.in_flight_messages(); });
    }
  }

  const auto placement = grid::make_placement(config.placement);
  const auto estimator = workload::make_estimator(config.estimator);
  // Windowed input (stream_window > 0) composes with PDES: records are
  // still retained (required above), but the *trace* side — the dominant
  // resident set at grid scale — stays O(window x clusters). Each pump's
  // generator and draw substreams are partition-confined state, so the
  // worker-count independence argument is unchanged.
  const bool windowed = config.stream_window > 0;
  ResolvedStreams rs;
  ResolvedWindows ws;
  if (windowed) {
    ws = resolve_stream_windows(config, rc.cluster_configs, rc.master,
                                *estimator);
  } else {
    rs = resolve_streams(config, rc.cluster_configs, rc.master, *estimator);
  }
  const std::size_t jobs_generated =
      windowed ? ws.jobs_generated : rs.jobs_generated;

  for (std::size_t i = 0; i < n; ++i) {
    gateway.reserve_records(i, windowed ? ws.streams[i].total_jobs()
                                        : rs.streams[i].get().size());
  }

  // Placement state is per-cluster so redundant jobs can pick their
  // remotes on their own partition without sharing a generator. (The
  // classic kernel draws all clusters from one placement stream, so PDES
  // target choices differ from it at the same seed — but are identical
  // across worker counts, which is the determinism that matters here.)
  std::vector<util::Rng> placement_rngs;
  placement_rngs.reserve(n);
  util::Rng& placement_master = windowed ? ws.placement_rng : rs.placement_rng;
  for (std::size_t i = 0; i < n; ++i) {
    placement_rngs.push_back(placement_master.fork(i));
  }
  std::vector<int> sizes;
  sizes.reserve(n);
  for (const grid::ClusterConfig& cc : rc.cluster_configs) {
    sizes.push_back(cc.nodes);
  }
  const std::vector<std::size_t> no_lengths;  // read-only, shared by all

  const std::size_t degree = config.scheme.degree(n);
  const double inflation = config.remote_inflation;
  const auto place_job = [&placement = *placement, &placement_rngs, &sizes,
                          &no_lengths, degree](grid::GridJob& job) {
    if (job.redundant && degree > 1) {
      const grid::PlatformView view{sizes, no_lengths};
      auto remotes =
          placement.choose_remotes(job.origin, job.spec.nodes, view,
                                   degree - 1, placement_rngs[job.origin]);
      job.targets.insert(job.targets.end(), remotes.begin(), remotes.end());
      job.redundant = job.targets.size() > 1;
    } else {
      job.redundant = false;
    }
  };

  // Per-cluster arrival pumps, as in the streaming kernel: one in-flight
  // arrival event per cluster, walking the memoized stream. Ids are
  // cluster-major from 1 — the same scheme the retained kernel uses.
  struct Pump {
    const workload::JobStream* stream = nullptr;
    std::size_t next = 0;
    std::size_t draw_base = 0;
    grid::GridJobId id_base = 0;
    grid::GridJob scratch;
  };
  std::vector<Pump> pumps(n);
  std::function<void(std::size_t)> pump_fire;
  // Windowed counterpart: a WindowSource — a StreamWindow generator on the
  // Lublin path, a spool reader on the SWF path — refills `buf` one window
  // at a time, draws made lazily from substream-positioned generators (see
  // the classic kernel's WindowPump for the bit-identity argument). All of
  // it is partition-confined, like Pump; SWF spool readers share one
  // immutable spool via pread, so concurrent partitions never contend.
  // (No merged pump here: each partition is its own DES with its own event
  // sequence, so cross-cluster integer-time ties cannot reorder anything.)
  struct WindowPump {
    std::unique_ptr<workload::WindowSource> gen;
    workload::JobStream buf;
    std::size_t in_buf = 0;
    std::uint64_t produced = 0;
    util::Rng users_rng{0};
    util::Rng redundancy_rng{0};
    grid::GridJobId id_base = 0;
    grid::GridJob scratch;
  };
  std::vector<WindowPump> wpumps;
  std::function<void(std::size_t)> wpump_fire;
  if (windowed) {
    const std::size_t window = config.stream_window;
    wpumps.resize(n);
    std::size_t base = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const WindowedClusterStream& wcs = ws.streams[i];
      WindowPump& p = wpumps[i];
      p.id_base = static_cast<grid::GridJobId>(base);
      base += wcs.total_jobs();
      if (wcs.total_jobs() == 0) continue;
      if (wcs.spool) {
        p.gen = std::make_unique<workload::WindowSpool::Reader>(wcs.spool);
      } else {
        p.gen = std::make_unique<workload::StreamWindow>(
            rc.cluster_configs[i].workload, rc.cluster_configs[i].nodes,
            config.submit_horizon, wcs.checkpoints->checkpoints.front(),
            *estimator);
      }
      p.buf.reserve(window);
      p.gen->next(window, p.buf);
      p.users_rng = util::Rng::from_fingerprint(wcs.users_start);
      p.redundancy_rng = util::Rng::from_fingerprint(wcs.redundancy_start);
    }
    const auto users_per_cluster =
        static_cast<std::uint64_t>(config.users_per_cluster);
    const bool scheme_active = !config.scheme.is_none();
    const double redundant_fraction = config.redundant_fraction;
    wpump_fire = [&gateway, &place_job, &wpumps, &coord, &wpump_fire, window,
                  users_per_cluster, scheme_active, redundant_fraction,
                  inflation](std::size_t ci) {
      WindowPump& p = wpumps[ci];
      const workload::JobSpec& spec = p.buf[p.in_buf];
      grid::GridJob& job = p.scratch;
      job.id = p.id_base + p.produced + 1;
      job.origin = ci;
      job.user = static_cast<sched::UserId>(static_cast<std::uint32_t>(
          ci * 4096 + p.users_rng.below(users_per_cluster)));
      job.spec = spec;
      job.redundant =
          scheme_active && p.redundancy_rng.chance(redundant_fraction);
      job.targets.clear();
      job.targets.push_back(ci);
      place_job(job);
      gateway.submit(job, inflation);
      ++p.produced;
      if (++p.in_buf == p.buf.size() && !p.gen->exhausted()) {
        p.gen->next(window, p.buf);
        p.in_buf = 0;
      }
      if (p.in_buf < p.buf.size()) {
        coord.partition(ci).schedule_at(
            p.buf[p.in_buf].submit_time,
            [&wpump_fire, ci] { wpump_fire(ci); }, des::Priority::kArrival,
            static_cast<std::uint32_t>(ci));
      }
    };
    for (std::size_t i = 0; i < n; ++i) {
      if (wpumps[i].buf.empty()) continue;
      coord.partition(i).schedule_at(wpumps[i].buf.front().submit_time,
                                     [&wpump_fire, i] { wpump_fire(i); },
                                     des::Priority::kArrival,
                                     static_cast<std::uint32_t>(i));
    }
  } else {
    std::size_t base = 0;
    for (std::size_t i = 0; i < n; ++i) {
      pumps[i].stream = &rs.streams[i].get();
      pumps[i].draw_base = base;
      pumps[i].id_base = static_cast<grid::GridJobId>(base);
      base += rs.streams[i].get().size();
    }
    // Fires cluster ci's next arrival on ci's partition, then schedules
    // the following one there. Runs concurrently for different ci, but
    // touches only cluster-confined state (pumps[ci], placement_rngs[ci],
    // the origin gateway agent) plus the coordinator's per-source mailbox.
    pump_fire = [&gateway, &place_job, &pumps, &rs, &coord, &pump_fire,
                 inflation](std::size_t ci) {
      Pump& p = pumps[ci];
      const workload::JobSpec& spec = (*p.stream)[p.next];
      const Draw& d = rs.draws[p.draw_base + p.next];
      grid::GridJob& job = p.scratch;
      job.id = p.id_base + p.next + 1;
      job.origin = ci;
      job.user = static_cast<sched::UserId>(d.user);
      job.spec = spec;
      job.redundant = d.redundant;
      job.targets.clear();
      job.targets.push_back(ci);
      place_job(job);
      gateway.submit(job, inflation);
      if (++p.next < p.stream->size()) {
        coord.partition(ci).schedule_at(
            (*p.stream)[p.next].submit_time,
            [&pump_fire, ci] { pump_fire(ci); }, des::Priority::kArrival,
            static_cast<std::uint32_t>(ci));
      }
    };
    for (std::size_t i = 0; i < n; ++i) {
      if (pumps[i].stream->empty()) continue;
      coord.partition(i).schedule_at(pumps[i].stream->front().submit_time,
                                     [&pump_fire, i] { pump_fire(i); },
                                     des::Priority::kArrival,
                                     static_cast<std::uint32_t>(i));
    }
  }

  // One single-probe tracker per partition (the classic kernel's one
  // tracker would probe other clusters' schedulers across partitions).
  std::vector<std::unique_ptr<metrics::QueueTracker>> trackers;
  trackers.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<metrics::QueueTracker::Probe> probes;
    probes.emplace_back(
        [&sched = *scheds[i]] { return sched.queue_length(); });
    trackers.push_back(std::make_unique<metrics::QueueTracker>(
        coord.partition(i), std::move(probes), config.queue_sample_interval,
        config.submit_horizon));
  }

  if (config.drain) {
    coord.run();
  } else {
    coord.run(config.submit_horizon * config.truncate_factor);
  }

#if RRSIM_VALIDATE_ENABLED
  gateway.debug_validate();
#endif

  SimResult result;
  for (const sched::ClusterScheduler* s : scheds) {
    const sched::OpCounters& c = s->counters();
    // Same aggregation as Platform::total_counters(): rejects are
    // reported separately as replicas_rejected.
    result.ops.submits += c.submits;
    result.ops.cancels += c.cancels;
    result.ops.starts += c.starts;
    result.ops.finishes += c.finishes;
    result.ops.declines += c.declines;
    result.ops.sched_passes += c.sched_passes;
  }
  result.gateway_cancels = gateway.cancellations_issued();
  result.replicas_rejected = gateway.replicas_rejected();
  result.duplicate_starts = gateway.duplicate_starts();
  result.duplicate_finishes = gateway.duplicate_finishes();
  result.pdes_windows = coord.windows();
  result.jobs_generated = jobs_generated;
  double max_sum = 0.0;
  result.queue_growth_per_hour.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    max_sum += static_cast<double>(trackers[i]->max_length(0));
    result.queue_growth_per_hour.push_back(trackers[i]->growth_per_hour(0));
  }
  result.avg_max_queue = max_sum / static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) {
    result.end_time = std::max(result.end_time, coord.partition(i).now());
  }
  result.live_state_bytes = gateway.live_state_bytes();
  for (const sched::ClusterScheduler* s : scheds) {
    result.live_state_bytes += s->live_state_bytes();
  }
  result.live_state_bytes += rs.draws.capacity() * sizeof(Draw) +
                             pumps.capacity() * sizeof(Pump) +
                             wpumps.capacity() * sizeof(WindowPump);
  for (const Pump& p : pumps) {
    result.live_state_bytes +=
        p.scratch.targets.capacity() * sizeof(std::size_t);
  }
  for (const WindowPump& p : wpumps) {
    result.live_state_bytes +=
        p.scratch.targets.capacity() * sizeof(std::size_t);
  }
  if (windowed) {
    for (const WindowedClusterStream& wcs : ws.streams) {
      result.resident_trace_bytes += wcs.payload_bytes();
    }
    for (const WindowPump& p : wpumps) {
      result.resident_trace_bytes +=
          p.buf.capacity() * sizeof(workload::JobSpec);
    }
  } else {
    for (const ClusterStream& cs : rs.streams) {
      result.resident_trace_bytes +=
          cs.get().size() * sizeof(workload::JobSpec);
    }
  }
  result.records = gateway.take_records();
  if (config.drain && gateway.finished() != jobs_generated) {
    throw std::logic_error(
        "conservation violation: not every grid job finished exactly once");
  }
  return result;
}

}  // namespace rrsim::core::detail
