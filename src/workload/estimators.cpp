#include "rrsim/workload/estimators.h"

#include <cmath>
#include <stdexcept>

#include "rrsim/util/table.h"

namespace rrsim::workload {

PhiEstimator::PhiEstimator(double phi) : phi_(phi) {
  if (!(phi > 0.0 && phi < 1.0)) {
    throw std::invalid_argument("phi must be in (0, 1)");
  }
}

double PhiEstimator::requested_for(double actual, util::Rng& rng) const {
  const double u = rng.uniform(phi_, 1.0);
  return actual / u;
}

std::string PhiEstimator::name() const {
  return "phi(" + util::format_fixed(phi_, 2) + ")";
}

double PhiEstimator::mean_factor() const {
  return std::log(1.0 / phi_) / (1.0 - phi_);
}

UniformFactorEstimator::UniformFactorEstimator(double mean) : mean_(mean) {
  if (mean < 1.0) throw std::invalid_argument("mean factor must be >= 1");
}

double UniformFactorEstimator::requested_for(double actual,
                                             util::Rng& rng) const {
  const double factor = rng.uniform(1.0, 2.0 * mean_ - 1.0);
  return actual * factor;
}

std::string UniformFactorEstimator::name() const { return "uniform-factor"; }

void apply_estimator(JobStream& stream, const RuntimeEstimator& estimator,
                     util::Rng& rng) {
  for (JobSpec& job : stream) {
    job.requested_time = estimator.requested_for(job.runtime, rng);
  }
}

std::unique_ptr<RuntimeEstimator> make_estimator(const std::string& name) {
  if (name == "exact") return std::make_unique<ExactEstimator>();
  if (name == "phi") return std::make_unique<PhiEstimator>();
  if (name == "uniform216") return std::make_unique<UniformFactorEstimator>();
  throw std::invalid_argument("unknown estimator: " + name);
}

}  // namespace rrsim::workload
