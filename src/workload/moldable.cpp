#include "rrsim/workload/moldable.h"

#include <algorithm>
#include <stdexcept>

namespace rrsim::workload {

AmdahlSpeedup::AmdahlSpeedup(double parallel_fraction)
    : f_(parallel_fraction) {
  if (f_ < 0.0 || f_ > 1.0) {
    throw std::invalid_argument("parallel fraction must be in [0, 1]");
  }
}

double AmdahlSpeedup::runtime(double base_runtime, int base_nodes,
                              int nodes) const {
  if (base_runtime <= 0.0 || base_nodes < 1 || nodes < 1) {
    throw std::invalid_argument("speedup: non-positive inputs");
  }
  const double serial = (1.0 - f_) * base_runtime;
  const double parallel = f_ * base_runtime *
                          static_cast<double>(base_nodes) /
                          static_cast<double>(nodes);
  return serial + parallel;
}

std::vector<JobShape> moldable_shapes(const JobSpec& base,
                                      const AmdahlSpeedup& speedup,
                                      int max_nodes, int count) {
  if (count < 1) throw std::invalid_argument("need >= 1 shape");
  if (base.nodes < 1 || base.nodes > max_nodes) {
    throw std::invalid_argument("base shape does not fit the cluster");
  }
  const double over_estimation =
      base.runtime > 0.0 ? base.requested_time / base.runtime : 1.0;
  std::vector<JobShape> shapes;
  std::vector<int> widths{base.nodes};
  // Alternate halving and doubling: n/2, 2n, n/4, 4n, ...
  for (int factor = 2; static_cast<int>(widths.size()) < 2 * count;
       factor *= 2) {
    widths.push_back(std::max(1, base.nodes / factor));
    widths.push_back(std::min(max_nodes, base.nodes * factor));
  }
  for (const int nodes : widths) {
    if (static_cast<int>(shapes.size()) >= count) break;
    const bool seen =
        std::any_of(shapes.begin(), shapes.end(),
                    [nodes](const JobShape& s) { return s.nodes == nodes; });
    if (seen) continue;
    JobShape shape;
    shape.nodes = nodes;
    shape.runtime = speedup.runtime(base.runtime, base.nodes, nodes);
    shape.requested_time = shape.runtime * over_estimation;
    shapes.push_back(shape);
  }
  return shapes;
}

}  // namespace rrsim::workload
