#include "rrsim/workload/calibrate.h"

#include <stdexcept>

namespace rrsim::workload {

double interarrival_for_utilization(const LublinModel& model,
                                    double target_util, util::Rng& rng,
                                    int samples) {
  if (target_util <= 0.0) {
    throw std::invalid_argument("target utilisation must be > 0");
  }
  const double mean_work = model.estimate_mean_work(rng, samples);
  return mean_work / (target_util * static_cast<double>(model.max_nodes()));
}

LublinParams calibrate_params(const LublinParams& params, int max_nodes,
                              double target_util, util::Rng& rng,
                              int samples) {
  const LublinModel probe(params, max_nodes);
  const double iat =
      interarrival_for_utilization(probe, target_util, rng, samples);
  return params.with_mean_interarrival(iat);
}

double offered_load(const JobStream& stream, int nodes, double horizon) {
  if (nodes <= 0) throw std::invalid_argument("nodes must be > 0");
  if (stream.empty() || horizon <= 0.0) return 0.0;
  double work = 0.0;
  for (const JobSpec& j : stream) {
    work += static_cast<double>(j.nodes) * j.runtime;
  }
  return work / (static_cast<double>(nodes) * horizon);
}

}  // namespace rrsim::workload
