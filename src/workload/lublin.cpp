#include "rrsim/workload/lublin.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rrsim::workload {

LublinParams LublinParams::with_mean_interarrival(double mean_iat) const {
  if (mean_iat <= 0.0) {
    throw std::invalid_argument("mean inter-arrival must be > 0");
  }
  LublinParams out = *this;
  out.arrival_beta = mean_iat / out.arrival_alpha;
  return out;
}

LublinModel::LublinModel(LublinParams params, int max_nodes)
    : params_(params), max_nodes_(max_nodes) {
  if (max_nodes_ < 1) throw std::invalid_argument("max_nodes must be >= 1");
  if (params_.arrival_alpha <= 0.0 || params_.arrival_beta <= 0.0) {
    throw std::invalid_argument("arrival gamma parameters must be > 0");
  }
  if (params_.serial_prob < 0.0 || params_.serial_prob > 1.0 ||
      params_.pow2_prob < 0.0 || params_.pow2_prob > 1.0 ||
      params_.uprob < 0.0 || params_.uprob > 1.0) {
    throw std::invalid_argument("probabilities must be in [0, 1]");
  }
  if (params_.min_runtime <= 0.0 ||
      params_.max_runtime < params_.min_runtime) {
    throw std::invalid_argument("invalid runtime clamp range");
  }
  if (params_.rt_log_base <= 1.0) {
    throw std::invalid_argument("rt_log_base must be > 1");
  }
  const double uhi = std::log2(static_cast<double>(max_nodes_));
  double umed = uhi - params_.umed_offset;
  double ulow = std::min(params_.ulow, uhi);
  // Small clusters: keep the two stages ordered.
  if (umed < ulow) umed = ulow + (uhi - ulow) / 2.0;
  log2_nodes_ = util::TwoStageUniformParams{ulow, umed, uhi, params_.uprob};
}

double LublinModel::sample_interarrival(util::Rng& rng) const {
  return std::max(1e-6, util::sample_gamma(rng, params_.arrival_alpha,
                                           params_.arrival_beta));
}

int LublinModel::sample_nodes(util::Rng& rng) const {
  if (max_nodes_ == 1 || rng.chance(params_.serial_prob)) return 1;
  const double u = util::sample_two_stage_uniform(rng, log2_nodes_);
  double nodes = 0.0;
  if (rng.chance(params_.pow2_prob)) {
    nodes = std::exp2(std::round(u));  // snap to the nearest power of two
  } else {
    nodes = std::round(std::exp2(u));
  }
  const auto n = static_cast<int>(nodes);
  return std::clamp(n, 1, max_nodes_);
}

double LublinModel::sample_runtime(util::Rng& rng, int nodes) const {
  const double p = std::clamp(
      params_.rt_pa * static_cast<double>(nodes) + params_.rt_pb, 0.0, 1.0);
  const util::HyperGammaParams hg{params_.rt_a1, params_.rt_b1, params_.rt_a2,
                                  params_.rt_b2, p};
  const double log_rt = util::sample_hyper_gamma(rng, hg);
  return std::clamp(std::pow(params_.rt_log_base, log_rt),
                    params_.min_runtime, params_.max_runtime);
}

JobSpec LublinModel::sample_job(util::Rng& rng) const {
  JobSpec spec;
  spec.nodes = sample_nodes(rng);
  spec.runtime = sample_runtime(rng, spec.nodes);
  spec.requested_time = spec.runtime;
  return spec;
}

JobStream LublinModel::generate_stream(util::Rng& rng, double horizon) const {
  if (horizon < 0.0) throw std::invalid_argument("horizon must be >= 0");
  JobStream stream;
  double t = sample_interarrival(rng);
  while (t <= horizon) {
    JobSpec spec = sample_job(rng);
    spec.submit_time = t;
    stream.push_back(spec);
    t += sample_interarrival(rng);
  }
  return stream;
}

double LublinModel::estimate_mean_work(util::Rng& rng, int samples) const {
  if (samples <= 0) throw std::invalid_argument("samples must be > 0");
  double total = 0.0;
  for (int i = 0; i < samples; ++i) {
    const JobSpec s = sample_job(rng);
    total += static_cast<double>(s.nodes) * s.runtime;
  }
  return total / static_cast<double>(samples);
}

}  // namespace rrsim::workload
