// Windowed (pull-based) generation of Lublin job streams.
//
// LublinModel::generate_stream materializes a whole horizon of jobs at
// once, which makes trace bytes the dominant resident set of grid-scale
// campaigns: 10^7 JobSpecs are ~320 MB before the simulation proper has
// allocated anything. StreamWindow is the lazy counterpart — it holds the
// generator *state* (two Rngs and the arrival clock, ~50 bytes) and emits
// jobs in caller-bounded chunks, so a campaign's resident trace state is
// O(window x clusters) instead of O(total jobs).
//
// Bit-identity by construction: StreamWindow performs exactly the draws
// generate_stream + apply_estimator perform, on the same two generators,
// in the same per-generator order. The stream Rng's sequence is
// [interarrival][nodes, runtime][interarrival]... regardless of where
// window boundaries fall, and the estimator Rng is consumed once per job
// in job order — interleaving the estimator draw per job instead of in a
// second pass cannot change either sequence because the two generators
// are independent. tests/workload/stream_window_test.cpp pins the
// concatenated windows == materialized stream equality across seeds,
// window sizes, and estimators.
//
// Checkpoints make the stream seekable: a StreamCheckpoint captures the
// full generator state between jobs, so window k of a 10^7-job stream can
// be rematerialized from checkpoint k in O(window) work instead of
// regenerating from t = 0 (see workload::TraceCache, which memoizes
// checkpoint tables per trace key for common-random-number sweeps).
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "rrsim/util/rng.h"
#include "rrsim/workload/estimators.h"
#include "rrsim/workload/jobspec.h"
#include "rrsim/workload/lublin.h"

namespace rrsim::workload {

/// Complete generator state between two jobs of a windowed stream: restore
/// it (plus the same model parameters, horizon, and estimator) and the
/// remaining suffix of the stream regenerates bit-identically.
struct StreamCheckpoint {
  std::pair<std::uint64_t, std::uint64_t> stream_rng{0, 0};
  std::pair<std::uint64_t, std::uint64_t> est_rng{0, 0};
  /// Submit time of the next job, already drawn from the stream Rng (the
  /// generate_stream loop draws the gap *before* deciding whether the job
  /// is inside the horizon).
  double next_arrival = 0.0;
  /// Jobs emitted before this checkpoint.
  std::uint64_t job_index = 0;
  /// True when the stream ended before this state (next_arrival fell past
  /// the horizon); such a checkpoint yields no further jobs.
  bool exhausted = false;
};

/// A whole stream described by its window boundaries instead of its jobs:
/// checkpoints[k] is the generator state with exactly k * window jobs
/// emitted (checkpoints[0] is the initial state), so any window can be
/// rematerialized independently. ~48 bytes per window instead of
/// ~32 bytes per job. An empty stream has no checkpoints.
struct CheckpointedTrace {
  std::size_t window = 0;         ///< jobs per window (the W of the table)
  std::uint64_t total_jobs = 0;   ///< exact stream length
  std::vector<StreamCheckpoint> checkpoints;  ///< one per window, in order

  /// Approximate resident payload bytes (for cache budgeting).
  std::size_t payload_bytes() const noexcept {
    return checkpoints.capacity() * sizeof(StreamCheckpoint);
  }
};

/// The pull interface every windowed job source presents: generator-backed
/// (StreamWindow) and file-backed (WindowSpool::Reader) sources are
/// interchangeable to the arrival pumps, which only ever ask for "the next
/// up-to-W jobs".
class WindowSource {
 public:
  virtual ~WindowSource() = default;

  /// Replaces the contents of `out` with the next up-to-`max_jobs` jobs.
  /// Returns the number emitted; 0 iff the source is exhausted. Throws
  /// std::invalid_argument on max_jobs == 0.
  virtual std::size_t next(std::size_t max_jobs, JobStream& out) = 0;

  /// True once the source has ended (no further next() will emit).
  virtual bool exhausted() const noexcept = 0;
};

/// Pull-based Lublin stream generator. Not thread-safe; each consumer
/// (arrival pump, checkpoint scan) owns its instance. The estimator is
/// borrowed and must outlive the generator.
class StreamWindow : public WindowSource {
 public:
  /// Starts a fresh stream: takes the generators by value at exactly the
  /// states generate_stream/apply_estimator would receive them, and primes
  /// the first arrival (one interarrival draw, as generate_stream does
  /// before its loop). Throws std::invalid_argument on horizon < 0 (and
  /// on invalid model parameters, via LublinModel).
  StreamWindow(const LublinParams& params, int max_nodes, double horizon,
               const util::Rng& stream_rng, const util::Rng& est_rng,
               const RuntimeEstimator& estimator);

  /// Resumes mid-stream from a checkpoint captured on an identically
  /// parameterized generator. No draws are performed on construction —
  /// the checkpoint's next_arrival is already drawn.
  StreamWindow(const LublinParams& params, int max_nodes, double horizon,
               const StreamCheckpoint& at, const RuntimeEstimator& estimator);

  /// Replaces the contents of `out` with the next up-to-`max_jobs` jobs
  /// (submit_time, nodes, runtime, and estimator-applied requested_time
  /// all final). Returns the number emitted; 0 iff the stream is
  /// exhausted. Throws std::invalid_argument on max_jobs == 0.
  std::size_t next(std::size_t max_jobs, JobStream& out) override;

  /// True once the stream has ended (no further next() will emit).
  bool exhausted() const noexcept override { return exhausted_; }

  /// Jobs emitted so far (across all next() calls, plus the checkpoint's
  /// job_index when resumed).
  std::uint64_t jobs_emitted() const noexcept { return job_index_; }

  /// Captures the current between-jobs generator state.
  StreamCheckpoint checkpoint() const;

 private:
  LublinModel model_;
  double horizon_;
  util::Rng stream_rng_;
  util::Rng est_rng_;
  const RuntimeEstimator* estimator_;
  double next_arrival_ = 0.0;
  std::uint64_t job_index_ = 0;
  bool exhausted_ = false;
};

/// One full generation pass that records the generator state every
/// `window` jobs and discards the jobs themselves: O(window) resident, one
/// stream's worth of draws. The result is the seekable description a
/// TraceCache checkpoint entry stores. Throws std::invalid_argument on
/// window == 0.
CheckpointedTrace scan_checkpoints(const LublinParams& params, int max_nodes,
                                   double horizon,
                                   const util::Rng& stream_rng,
                                   const util::Rng& est_rng,
                                   const RuntimeEstimator& estimator,
                                   std::size_t window);

}  // namespace rrsim::workload
