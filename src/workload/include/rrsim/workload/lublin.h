// The Lublin–Feitelson batch workload model (JPDC 2003), as used by the
// paper: gamma-distributed "peak hour" inter-arrival times, a two-stage
// log-uniform node-count distribution biased towards powers of two, and
// hyper-gamma runtimes whose mixture probability p depends on the node
// count.
//
// Parameter values default to the "model" batch-job constants from the
// published model. Runtimes are generated as exp(X) with X hyper-gamma
// (the model fits the logarithm of the runtime); the resulting mixture is
// ~1-minute short jobs and ~3-hour long jobs, with larger jobs more likely
// to be long (p = pa * nodes + pb decreases with nodes).
#pragma once

#include "rrsim/util/distributions.h"
#include "rrsim/util/rng.h"
#include "rrsim/workload/jobspec.h"

namespace rrsim::workload {

/// Parameters of the Lublin–Feitelson model. Defaults are the published
/// "model" values for batch jobs; the paper varies `arrival_alpha` (Fig 3)
/// and instantiates everything else as-is.
struct LublinParams {
  // Inter-arrival times ~ Gamma(arrival_alpha, arrival_beta) seconds;
  // defaults give the paper's 5.01 s mean "peak hour" rate.
  double arrival_alpha = 10.23;
  double arrival_beta = 0.4871;

  // Node counts: P(serial) = serial_prob; otherwise log2(nodes) is drawn
  // from a two-stage uniform on [ulow, umed] w.p. uprob, [umed, uhi]
  // otherwise, where uhi = log2(max_nodes) and umed = uhi - umed_offset.
  // The result is rounded to a power of two with probability pow2_prob.
  double serial_prob = 0.244;
  double pow2_prob = 0.576;
  double ulow = 0.8;
  double uprob = 0.86;
  double umed_offset = 3.5;

  // log(runtime seconds) ~ HyperGamma(a1, b1, a2, b2, p), with
  // p = pa * nodes + pb clamped to [0, 1]. `rt_log_base` sets the
  // logarithm base the hyper-gamma variate exponentiates through:
  // 2.0 (default) yields short jobs ~15 s / long jobs ~11 min and the
  // stretch magnitudes, drain times and ~700 jobs/hour queue growth the
  // paper reports; base e yields a much heavier tail (~1 min / ~3 h).
  double rt_a1 = 4.2;
  double rt_b1 = 0.94;
  double rt_a2 = 312.0;
  double rt_b2 = 0.03;
  double rt_pa = -0.0054;
  double rt_pb = 0.78;
  double rt_log_base = 2.0;

  // Sanity clamps on generated runtimes (seconds).
  double min_runtime = 1.0;
  double max_runtime = 2.0 * 24.0 * 3600.0;

  /// Mean inter-arrival time implied by the gamma parameters.
  double mean_interarrival() const noexcept {
    return arrival_alpha * arrival_beta;
  }

  /// Returns a copy with the arrival process rescaled so the mean
  /// inter-arrival time equals `mean_iat` seconds (alpha is kept, beta is
  /// scaled — this is how Fig 3 sweeps load while preserving burstiness).
  LublinParams with_mean_interarrival(double mean_iat) const;
};

/// Sampler for the Lublin model, bound to a cluster size. Each call uses
/// the caller's Rng so multiple clusters can hold independent streams.
class LublinModel {
 public:
  /// `max_nodes` is the size of the target cluster (>= 1); the node-count
  /// distribution is truncated to it. Throws std::invalid_argument on
  /// non-positive sizes or invalid probabilities.
  LublinModel(LublinParams params, int max_nodes);

  /// Next inter-arrival gap, seconds (> 0).
  double sample_interarrival(util::Rng& rng) const;

  /// Number of nodes for one job, in [1, max_nodes].
  int sample_nodes(util::Rng& rng) const;

  /// Actual runtime in seconds for a job of `nodes` nodes, clamped to
  /// [min_runtime, max_runtime].
  double sample_runtime(util::Rng& rng, int nodes) const;

  /// Samples one complete job (nodes then runtime). `submit_time` is
  /// filled by the caller/stream generator.
  JobSpec sample_job(util::Rng& rng) const;

  /// Generates a full stream: jobs arriving in (0, horizon] seconds.
  /// requested_time is set equal to runtime (exact estimates); apply a
  /// RuntimeEstimator afterwards for over-estimation models.
  JobStream generate_stream(util::Rng& rng, double horizon) const;

  const LublinParams& params() const noexcept { return params_; }
  int max_nodes() const noexcept { return max_nodes_; }

  /// Monte-Carlo estimate of the mean work (nodes * runtime, node-seconds)
  /// of one job, used for load calibration.
  double estimate_mean_work(util::Rng& rng, int samples = 20000) const;

 private:
  LublinParams params_;
  int max_nodes_;
  util::TwoStageUniformParams log2_nodes_;
};

}  // namespace rrsim::workload
