// Load calibration.
//
// The Lublin model's literal "peak hour" arrival rate (5 s mean
// inter-arrival) overloads any finite cluster if sustained — the paper
// itself notes queues growing by ~700 jobs/hour at that rate. Relative
// comparisons between redundancy schemes remain meaningful either way, but
// for steady-state experiments it is more informative to run each cluster
// at a controlled utilisation. These helpers rescale the arrival process
// to hit a target offered load; raw-rate experiments simply skip them.
#pragma once

#include "rrsim/util/rng.h"
#include "rrsim/workload/lublin.h"

namespace rrsim::workload {

/// Mean inter-arrival time (seconds) that gives an offered load of
/// `target_util` (node-seconds demanded / node-seconds available) on a
/// cluster of `model.max_nodes()` nodes: E[nodes * runtime] /
/// (util * max_nodes). Estimated by Monte-Carlo with `samples` draws.
/// Throws std::invalid_argument unless 0 < target_util.
double interarrival_for_utilization(const LublinModel& model,
                                    double target_util, util::Rng& rng,
                                    int samples = 20000);

/// Returns `params` rescaled so that a LublinModel(max_nodes) built from
/// them offers `target_util` load on a cluster of `max_nodes` nodes.
LublinParams calibrate_params(const LublinParams& params, int max_nodes,
                              double target_util, util::Rng& rng,
                              int samples = 20000);

/// Empirical offered load of a concrete stream on `nodes` nodes over
/// `horizon` seconds: sum(nodes_i * runtime_i) / (nodes * horizon).
/// Returns 0 for an empty stream or non-positive horizon.
double offered_load(const JobStream& stream, int nodes, double horizon);

}  // namespace rrsim::workload
