// Memoization of deterministically generated workload traces.
//
// Sweep campaigns use common random numbers: every point of a figure
// (redundancy degree N, fraction p, scheduler, ...) replays the *same*
// job stream, because the stream is produced from a seed-derived Rng whose
// draws do not depend on the swept parameter. Regenerating that stream at
// every sweep point is pure waste — for the Lublin model it is tens of
// thousands of gamma/hyper-gamma samples per cluster per point. The cache
// keys a generated (and estimator-applied) stream by everything that
// determines it bit-exactly — model parameters, cluster size, horizon,
// the exact Rng states, and the estimator — and hands out shared read-only
// snapshots, so each distinct trace is generated once per process no
// matter how many sweep points or worker threads consume it.
//
// Four entry kinds share one LRU-evicted store:
//   - whole streams (retained-mode drivers; ~32 bytes/job),
//   - generator checkpoint tables (windowed drivers; ~48 bytes/window —
//     see stream_window.h), which let a sweep point seek to window k and
//     re-materialize it in O(window) instead of holding 10^7 specs
//     resident or regenerating from t = 0,
//   - substream draw segments (~32 bytes), and
//   - window spools (windowed SWF replay; resident cost is the spool's
//     in-memory index only — the records live in an unlinked temp file,
//     see window_spool.h), so a grid sweep replays each trace file once
//     no matter how many points consume it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "rrsim/util/rng.h"
#include "rrsim/workload/estimators.h"
#include "rrsim/workload/lublin.h"
#include "rrsim/workload/stream_window.h"
#include "rrsim/workload/window_spool.h"

namespace rrsim::workload {

/// Everything that determines a generated job stream bit-exactly. Two keys
/// compare equal iff generation would produce identical streams: the model
/// parameters and horizon are compared on their exact double bits, and the
/// Rng fingerprints pin the entire future output of the generators (see
/// util::Rng::fingerprint).
struct TraceKey {
  LublinParams params;
  int max_nodes = 1;
  double horizon = 0.0;
  std::pair<std::uint64_t, std::uint64_t> stream_rng{0, 0};
  std::pair<std::uint64_t, std::uint64_t> est_rng{0, 0};
  /// Estimator identity: name() alone does not always encode the
  /// estimator's parameters (UniformFactorEstimator's does not), so the
  /// mean factor rides along to disambiguate.
  std::string estimator_name;
  double estimator_mean_factor = 1.0;

  /// Convenience constructor from the live objects at the generation site.
  static TraceKey of(const LublinParams& params, int max_nodes,
                     double horizon, const util::Rng& stream_rng,
                     const util::Rng& est_rng,
                     const RuntimeEstimator& estimator) {
    TraceKey k;
    k.params = params;
    k.max_nodes = max_nodes;
    k.horizon = horizon;
    k.stream_rng = stream_rng.fingerprint();
    k.est_rng = est_rng.fingerprint();
    k.estimator_name = estimator.name();
    k.estimator_mean_factor = estimator.mean_factor();
    return k;
  }

  /// Flat byte encoding of the key (exact double bits, no canonicalisation
  /// of NaNs/-0.0 — "identical bits" is precisely the contract). Used as
  /// the hash-map key.
  std::string bytes() const;
};

/// Where the per-job user/redundancy substreams land after one cluster's
/// segment of draws (see core::detail::resolve_stream_windows): the exact
/// generator fingerprints the *next* cluster's draws start from.
struct DrawSegment {
  std::pair<std::uint64_t, std::uint64_t> users_end{0, 0};
  std::pair<std::uint64_t, std::uint64_t> redundancy_end{0, 0};
};

/// Everything that determines a DrawSegment bit-exactly: the substream
/// start states, the number of per-job draws, and the draw shapes. The
/// redundancy *fraction* is deliberately absent — Rng::chance consumes
/// exactly one next_u64 regardless of p, so the end state is independent
/// of the swept fraction, which is precisely what lets fraction sweeps
/// reuse one fast-forward (util_rng_test pins that invariant). The user
/// count *is* present: Rng::below's rejection loop can consume a
/// value-dependent number of draws.
struct DrawSegmentKey {
  std::pair<std::uint64_t, std::uint64_t> users_start{0, 0};
  std::pair<std::uint64_t, std::uint64_t> redundancy_start{0, 0};
  std::uint64_t count = 0;
  std::uint64_t users_per_cluster = 0;
  /// False for scheme NONE, where the redundancy substream never advances
  /// (the eager loop short-circuits past the chance() call).
  bool scheme_active = false;

  /// Flat byte encoding, same contract as TraceKey::bytes().
  std::string bytes() const;
};

/// Everything that determines a spooled SWF window store bit-exactly: the
/// file path, the filters applied while loading (cluster size and horizon
/// — see core::detail::load_swf_stream), and the window the spool was
/// chunked at. The path is taken at face value; callers replaying a file
/// that changed on disk mid-process get whatever was spooled first, the
/// same staleness contract as any memo keyed by name.
struct SpoolKey {
  std::string path;
  int max_nodes = 1;
  double horizon = 0.0;
  std::size_t window = 0;

  /// Flat byte encoding, same contract as TraceKey::bytes().
  std::string bytes() const;
};

/// Process-wide, thread-safe memo of generated job streams and generator
/// checkpoint tables.
///
/// Values are shared immutable snapshots: consumers must treat them as
/// read-only and copy before mutating (experiment drivers copy anyway,
/// because submission-time bookkeeping annotates specs per run). Lookups
/// that miss run the supplied generator *outside* the cache lock; when two
/// threads race on the same key, both may generate, and the first to
/// publish wins (generation is deterministic, so the discarded duplicate
/// is bit-identical — no blocking, no torn results).
///
/// Eviction is genuinely LRU: every hit moves the entry to the back of the
/// recency list, and the byte budget evicts from the front (least recently
/// used), so a sweep's hot streams survive a parade of one-shot entries.
class TraceCache {
 public:
  using StreamPtr = std::shared_ptr<const JobStream>;
  using CheckpointPtr = std::shared_ptr<const CheckpointedTrace>;
  // rrsim-lint-allow(std-function-member): invoked once per cache miss
  // (trace generation, milliseconds of work); the JobStream() signature
  // rules out InlineFunction (void() only).
  using Generator = std::function<JobStream()>;
  // rrsim-lint-allow(std-function-member): same once-per-miss economics as
  // Generator, for checkpoint-table construction (one full scan pass).
  using CheckpointBuilder = std::function<CheckpointedTrace()>;
  // rrsim-lint-allow(std-function-member): once-per-miss again — a miss
  // replays one cluster's O(jobs) substream fast-forward.
  using DrawAdvancer = std::function<DrawSegment()>;
  using SpoolPtr = std::shared_ptr<const WindowSpool>;
  // rrsim-lint-allow(std-function-member): once-per-miss — a miss reads
  // and spools one whole SWF file.
  using SpoolBuilder = std::function<WindowSpool()>;

  TraceCache() = default;
  TraceCache(const TraceCache&) = delete;
  TraceCache& operator=(const TraceCache&) = delete;

  /// Returns the cached stream for `key`, generating (and publishing) it
  /// via `generate` on a miss. When the cache is disabled, always calls
  /// `generate` and publishes nothing.
  StreamPtr get_or_generate(const TraceKey& key, const Generator& generate);

  /// Returns the cached checkpoint table for (`key`, `window`), building
  /// (and publishing) it via `build` on a miss. Tables for different
  /// windows of the same trace are distinct entries. When the cache is
  /// disabled, always calls `build` and publishes nothing. Throws
  /// std::invalid_argument on window == 0.
  CheckpointPtr get_or_build_checkpoints(const TraceKey& key,
                                         std::size_t window,
                                         const CheckpointBuilder& build);

  /// Returns the memoized substream end fingerprints for `key`, computing
  /// them via `advance` on a miss. This is what keeps windowed input
  /// resolution O(window) for repeated sweep points: without it every run
  /// would fast-forward the user/redundancy substreams one draw per job
  /// (O(total jobs)) even when the checkpoint table itself is a cache hit.
  /// Entries are ~32 bytes and share the LRU-evicted store. When the cache
  /// is disabled, always calls `advance` and publishes nothing.
  DrawSegment get_or_advance_draws(const DrawSegmentKey& key,
                                   const DrawAdvancer& advance);

  /// Returns the cached window spool for `key`, building (and publishing)
  /// it via `build` on a miss. The entry's budget charge is the spool's
  /// resident index bytes (payload_bytes), not its on-disk record bytes;
  /// eviction drops the index and closes the unlinked backing file once
  /// the last consumer's shared_ptr releases. When the cache is disabled,
  /// always calls `build` and publishes nothing. Throws
  /// std::invalid_argument on key.window == 0.
  SpoolPtr get_or_build_spool(const SpoolKey& key, const SpoolBuilder& build);

  /// Turns memoization on/off. Disabling does not drop existing entries
  /// (use clear()); it makes every lookup generate afresh — the serial-
  /// baseline mode of bench/micro_sweep.
  void set_enabled(bool on);
  bool enabled() const;

  /// Caps the resident bytes of cached payloads (approximate: payload
  /// bytes, not map overhead). Insertion evicts least-recently-used
  /// entries until under budget; in-flight shared_ptrs keep evicted
  /// payloads alive. 0 means unlimited (default). A sweep's working set
  /// is typically a handful of streams, far below any sane budget.
  void set_byte_budget(std::size_t bytes);

  /// The current byte budget (0 = unlimited). The flag/env plumbing in
  /// core/options and bench_common reads this back for validation tests.
  std::size_t byte_budget() const;

  /// Drops all entries and zeroes the hit/miss counters.
  void clear();

  // --- Statistics (cumulative since last clear()) ------------------------
  std::uint64_t hits() const;
  std::uint64_t misses() const;
  std::uint64_t checkpoint_hits() const;
  std::uint64_t checkpoint_misses() const;
  std::uint64_t draw_hits() const;
  std::uint64_t draw_misses() const;
  std::uint64_t spool_hits() const;
  std::uint64_t spool_misses() const;
  std::size_t entries() const;
  std::size_t resident_bytes() const;

  /// The process-wide instance every experiment driver consults.
  static TraceCache& global();

 private:
  /// One cached payload: exactly one of `stream` / `checkpoints` / `draws`
  /// / `spool` is meaningful, by entry kind (the key's leading tag byte).
  /// `lru` is
  /// this entry's node in the recency list, so a hit can splice it to the
  /// back in O(1).
  struct Entry {
    StreamPtr stream;
    CheckpointPtr checkpoints;
    DrawSegment draws;
    SpoolPtr spool;
    std::size_t bytes = 0;
    std::list<const std::string*>::iterator lru;
  };

  // rrsim-lint-allow(unordered-container): lookup/insert/erase only —
  // never iterated (eviction walks lru_), so the unspecified bucket order
  // cannot reach any output.
  using Map = std::unordered_map<std::string, Entry>;

  /// Inserts (or adopts a racing thread's) entry, updates recency and the
  /// byte budget, and returns a copy of the published entry's payload
  /// pointers. Returns a *value*, never an iterator: eviction inside can
  /// erase the just-inserted node when the budget is smaller than this one
  /// payload, so no reference into the map survives this call.
  Entry publish_locked(std::string key, Entry entry);
  void touch_locked(Map::iterator it);
  void evict_to_budget_locked();

  mutable std::mutex mu_;
  bool enabled_ = true;
  std::size_t byte_budget_ = 0;  // 0 = unlimited
  std::size_t resident_bytes_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t checkpoint_hits_ = 0;
  std::uint64_t checkpoint_misses_ = 0;
  std::uint64_t draw_hits_ = 0;
  std::uint64_t draw_misses_ = 0;
  std::uint64_t spool_hits_ = 0;
  std::uint64_t spool_misses_ = 0;
  Map map_;
  /// Recency order, least recently used first. Nodes point at the map's
  /// own key strings (stable under rehash — unordered_map never moves
  /// elements), so no key is stored twice.
  std::list<const std::string*> lru_;
};

}  // namespace rrsim::workload
