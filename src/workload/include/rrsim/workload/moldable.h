// Moldable jobs — the paper's redundancy option (iv): a job that can run
// on several node counts submits redundant requests with *different
// shapes* (more nodes = shorter but queues longer; fewer nodes = longer
// but starts sooner), possibly to a single batch queue, and keeps
// whichever starts first. The paper defers this option to future work;
// rrsim implements it with an Amdahl speedup model.
#pragma once

#include <vector>

#include "rrsim/workload/jobspec.h"

namespace rrsim::workload {

/// Amdahl's-law execution-time model: a fraction `parallel_fraction` of
/// the work scales perfectly with nodes, the rest is serial.
class AmdahlSpeedup {
 public:
  /// Throws std::invalid_argument unless parallel_fraction is in [0, 1].
  explicit AmdahlSpeedup(double parallel_fraction);

  /// Runtime on `nodes` nodes of a job measured to take `base_runtime`
  /// on `base_nodes` nodes:
  ///   T(n) = (1 - f) * T0 + f * T0 * n0 / n.
  /// Throws std::invalid_argument on non-positive nodes/runtime.
  double runtime(double base_runtime, int base_nodes, int nodes) const;

  double parallel_fraction() const noexcept { return f_; }

 private:
  double f_;
};

/// One candidate submission shape of a moldable job.
struct JobShape {
  int nodes = 1;
  double runtime = 1.0;         ///< actual execution time at this width
  double requested_time = 1.0;  ///< user request at this width
};

/// Generates up to `count` distinct shapes for a moldable job whose
/// measured shape is `base` (nodes/runtime/requested), by halving and
/// doubling the node count alternately (n, n/2, 2n, n/4, 4n, ...),
/// clamped to [1, max_nodes] and de-duplicated. Runtimes follow the
/// speedup model; requested times keep the base shape's over-estimation
/// factor. The base shape is always first. Throws std::invalid_argument
/// if count < 1 or the base shape does not fit the cluster.
std::vector<JobShape> moldable_shapes(const JobSpec& base,
                                      const AmdahlSpeedup& speedup,
                                      int max_nodes, int count);

}  // namespace rrsim::workload
