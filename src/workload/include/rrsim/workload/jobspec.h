// The workload-side description of a job, before it is handed to any
// scheduler: when it arrives, how many nodes it needs, how long it will
// actually run, and how long the user *says* it will run.
#pragma once

#include <cstdint>
#include <vector>

namespace rrsim::workload {

/// One job as produced by a workload model or trace.
struct JobSpec {
  double submit_time = 0.0;     ///< seconds since experiment start
  int nodes = 1;                ///< compute nodes required (>= 1)
  double runtime = 1.0;         ///< actual execution time, seconds (> 0)
  double requested_time = 1.0;  ///< user's requested wall time, >= runtime
};

/// A time-ordered stream of jobs destined for one cluster.
using JobStream = std::vector<JobSpec>;

}  // namespace rrsim::workload
