// Spill-to-disk windowing of file-backed job streams.
//
// Generator-backed streams are regenerable from a ~48-byte checkpoint
// (stream_window.h), so windowed mode costs nothing to seek. File-backed
// streams — SWF replays from the Parallel Workloads Archive — have no
// generator to checkpoint, which is why trace_files historically forced
// retained whole-stream mode: O(total jobs) resident per cluster.
// WindowSpool lifts that. A first-pass writer chunks any job stream into
// fixed-size window segments in a single unlinked temp file; what stays
// resident is only the in-memory checkpoint index (one {job index, byte
// offset} pair per window, ~16 bytes per window), and a pull-based Reader
// re-materializes any window in O(window) pread work, presenting the same
// WindowSource interface as StreamWindow.
//
// Bit-identity by construction: records are serialized field-by-field with
// exact double bits (no struct memcpy — padding bytes are indeterminate)
// and read back the same way, so a spooled stream round-trips to the byte.
// The *order* of jobs is exactly the order append() saw them — for SWF
// input, the post-read_swf sorted order shared with the retained path —
// so integer-time ties within one file resolve identically in both modes.
//
// Lifetime and cleanup: the temp file is created with mkstemp and unlinked
// immediately, before the constructor returns. The directory entry never
// outlives the constructor; the storage itself is reclaimed by the kernel
// when the last file descriptor closes (spool destruction), including on
// every exception path — there is nothing to clean up by name.
//
// Thread-safety: the writer phase (append/finish) is single-threaded.
// After finish(), the spool is immutable and Readers pull via pread
// (positioned reads, no shared file offset), so any number of Readers on
// any threads may consume one spool concurrently — which is what lets a
// process-wide TraceCache share one spool across sweep points and PDES
// partitions. A Reader holds shared ownership of its spool, so cache
// eviction cannot invalidate an in-flight run.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "rrsim/workload/jobspec.h"
#include "rrsim/workload/stream_window.h"

namespace rrsim::workload {

/// Write-once, read-many on-disk window store for a job stream.
class WindowSpool {
 public:
  /// One checkpoint per window: where window k starts, in jobs and bytes.
  /// With fixed-size records the byte offset is derivable, but the index
  /// stores it explicitly so the format (and its readers) stay valid if
  /// records ever become variable-length.
  struct WindowIndex {
    std::uint64_t job_index = 0;
    std::uint64_t byte_offset = 0;
  };

  /// Creates the backing temp file under `dir` (empty selects $TMPDIR,
  /// falling back to /tmp) and unlinks it immediately. Throws
  /// std::invalid_argument on window == 0 and std::runtime_error when the
  /// temp file cannot be created.
  explicit WindowSpool(std::size_t window, const std::string& dir = "");

  WindowSpool(WindowSpool&& other) noexcept;
  WindowSpool& operator=(WindowSpool&& other) noexcept;
  WindowSpool(const WindowSpool&) = delete;
  WindowSpool& operator=(const WindowSpool&) = delete;
  ~WindowSpool();

  /// Appends one job in stream order. Throws std::logic_error after
  /// finish() and std::runtime_error on write failure.
  void append(const JobSpec& spec);

  /// Seals the spool: flushes buffered records and freezes the index.
  /// Readers may only attach to a finished spool. Idempotent.
  void finish();

  bool finished() const noexcept { return finished_; }
  std::size_t window() const noexcept { return window_; }
  std::uint64_t total_jobs() const noexcept { return total_jobs_; }

  /// Resident (in-memory) bytes: the checkpoint index. This is what a
  /// cache budget should charge — the record bytes live on disk.
  std::size_t payload_bytes() const noexcept {
    return index_.capacity() * sizeof(WindowIndex);
  }

  /// On-disk bytes of the record file (reported, not resident).
  std::uint64_t file_bytes() const noexcept;

  /// Pull-based consumer of a finished spool. Each consumer owns its
  /// instance (a cursor); the spool itself is shared and immutable.
  class Reader : public WindowSource {
   public:
    /// Positions the cursor at the start of `start_window`. Throws
    /// std::logic_error on an unfinished spool and std::invalid_argument
    /// when start_window is past the index.
    explicit Reader(std::shared_ptr<const WindowSpool> spool,
                    std::size_t start_window = 0);

    std::size_t next(std::size_t max_jobs, JobStream& out) override;
    bool exhausted() const noexcept override {
      return next_job_ >= spool_->total_jobs();
    }

    /// Jobs emitted so far, counting the seek offset like
    /// StreamWindow::jobs_emitted counts a resumed checkpoint's.
    std::uint64_t jobs_emitted() const noexcept { return next_job_; }

   private:
    std::shared_ptr<const WindowSpool> spool_;
    std::uint64_t next_job_ = 0;
  };

 private:
  void flush_buffer();
  /// Reads `count` records starting at record `first` into `out`
  /// (appending). pread-based: const, safe concurrently.
  void read_records(std::uint64_t first, std::size_t count,
                    JobStream& out) const;

  int fd_ = -1;
  std::size_t window_ = 0;
  std::uint64_t total_jobs_ = 0;
  bool finished_ = false;
  std::vector<WindowIndex> index_;
  std::vector<unsigned char> buffer_;  ///< writer-side coalescing buffer
  std::uint64_t flushed_bytes_ = 0;
};

}  // namespace rrsim::workload
