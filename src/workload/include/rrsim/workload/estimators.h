// Runtime-estimate models: how the *requested* wall time relates to the
// *actual* runtime. The paper contrasts "Exact Estimates" (requested ==
// actual) with "Real Estimates" — over-estimation following the φ-model of
// Zhang et al. [18], quoted in the paper as a uniformly distributed
// over-estimation factor with mean 2.16 at φ = 0.10.
#pragma once

#include <memory>
#include <string>

#include "rrsim/util/rng.h"
#include "rrsim/workload/jobspec.h"

namespace rrsim::workload {

/// Maps an actual runtime to a user-requested wall time (>= actual).
class RuntimeEstimator {
 public:
  virtual ~RuntimeEstimator() = default;

  /// Requested time for a job whose actual runtime is `actual` seconds.
  /// Must return a value >= actual.
  virtual double requested_for(double actual, util::Rng& rng) const = 0;

  /// Human-readable name for reports.
  virtual std::string name() const = 0;

  /// Mean over-estimation factor E[requested / actual].
  virtual double mean_factor() const = 0;
};

/// requested == actual ("Exact Estimates" in Table 1).
class ExactEstimator final : public RuntimeEstimator {
 public:
  double requested_for(double actual, util::Rng&) const override {
    return actual;
  }
  std::string name() const override { return "exact"; }
  double mean_factor() const override { return 1.0; }
};

/// The φ-model: the actual runtime is a fraction u ~ Uniform(φ, 1) of the
/// requested time, i.e. requested = actual / u. Mean over-estimation
/// factor is ln(1/φ) / (1 - φ) (≈ 2.56 at φ = 0.10).
class PhiEstimator final : public RuntimeEstimator {
 public:
  /// Throws std::invalid_argument unless 0 < phi < 1.
  explicit PhiEstimator(double phi = 0.10);

  double requested_for(double actual, util::Rng& rng) const override;
  std::string name() const override;
  double mean_factor() const override;

  double phi() const noexcept { return phi_; }

 private:
  double phi_;
};

/// Over-estimation factor drawn Uniform(1, 2*mean - 1): a literal reading
/// of the paper's "uniformly distributed over-estimation factor with mean
/// 2.16". Used by the Table 1 / Table 4 harnesses so the mean factor
/// matches the paper's quoted 2.16 exactly.
class UniformFactorEstimator final : public RuntimeEstimator {
 public:
  /// Throws std::invalid_argument unless mean >= 1.
  explicit UniformFactorEstimator(double mean = 2.16);

  double requested_for(double actual, util::Rng& rng) const override;
  std::string name() const override;
  double mean_factor() const override { return mean_; }

 private:
  double mean_;
};

/// Applies `estimator` to every job of `stream` in place, replacing
/// requested_time. Multiplicative, so any prior inflation is overwritten.
void apply_estimator(JobStream& stream, const RuntimeEstimator& estimator,
                     util::Rng& rng);

/// Factory by name: "exact", "phi", "uniform216". Throws on unknown names.
std::unique_ptr<RuntimeEstimator> make_estimator(const std::string& name);

}  // namespace rrsim::workload
