// Standard Workload Format (SWF) I/O — the format used by the Parallel
// Workloads Archive the paper cross-checks against. Lets users replay real
// traces through rrsim's schedulers, or export generated streams.
#pragma once

#include <iosfwd>
#include <string>

#include "rrsim/workload/jobspec.h"

namespace rrsim::workload {

/// Reads an SWF stream into a JobStream.
///
/// SWF is line-oriented: `;`-prefixed header/comment lines, then one job
/// per line with 18 whitespace-separated fields. We use fields
/// 2 (submit time), 4 (run time), 8 (requested processors, falling back to
/// field 5, allocated processors, when -1) and 9 (requested time, falling
/// back to run time when -1). Jobs with non-positive runtime or processor
/// count are skipped (cancelled entries in real logs).
///
/// Throws std::runtime_error on malformed job lines.
JobStream read_swf(std::istream& in);

/// Convenience overload: reads from a file path.
/// Throws std::runtime_error if the file cannot be opened.
JobStream read_swf_file(const std::string& path);

/// Writes `stream` as SWF (with a minimal header comment). Fields not
/// represented by JobSpec are emitted as -1 per the SWF convention.
void write_swf(std::ostream& out, const JobStream& stream);

/// Convenience overload: writes to a file path.
void write_swf_file(const std::string& path, const JobStream& stream);

}  // namespace rrsim::workload
