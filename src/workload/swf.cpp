#include "rrsim/workload/swf.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace rrsim::workload {

JobStream read_swf(std::istream& in) {
  JobStream stream;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    // Strip leading whitespace; skip blanks and `;` comments.
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == ';') continue;
    std::istringstream fields(line);
    std::vector<double> f;
    double v = 0.0;
    while (fields >> v) f.push_back(v);
    if (f.size() < 9) {
      throw std::runtime_error("SWF line " + std::to_string(lineno) +
                               ": expected >= 9 fields, got " +
                               std::to_string(f.size()));
    }
    const double submit = f[1];
    const double runtime = f[3];
    double procs = f[7] > 0 ? f[7] : f[4];
    double requested = f[8] > 0 ? f[8] : runtime;
    if (runtime <= 0.0 || procs <= 0.0) continue;  // cancelled/failed entry
    JobSpec spec;
    spec.submit_time = submit;
    spec.nodes = static_cast<int>(procs);
    spec.runtime = runtime;
    spec.requested_time = std::max(requested, runtime);
    stream.push_back(spec);
  }
  // Stable: jobs tied on submit_time keep their SWF file order, so the
  // parse is deterministic across standard libraries.
  std::stable_sort(stream.begin(), stream.end(),
                   [](const JobSpec& a, const JobSpec& b) {
                     return a.submit_time < b.submit_time;
                   });
  return stream;
}

JobStream read_swf_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open SWF file: " + path);
  return read_swf(in);
}

void write_swf(std::ostream& out, const JobStream& stream) {
  // Full round-trip fidelity for double-valued fields.
  out.precision(17);
  out << "; SWF trace written by rrsim\n";
  out << "; MaxProcs: ";
  int max_procs = 0;
  for (const JobSpec& j : stream) max_procs = std::max(max_procs, j.nodes);
  out << max_procs << "\n";
  long long id = 1;
  for (const JobSpec& j : stream) {
    // 18 SWF fields; unknowns are -1.
    out << id++ << ' ' << j.submit_time << ' ' << -1 << ' ' << j.runtime
        << ' ' << j.nodes << ' ' << -1 << ' ' << -1 << ' ' << j.nodes << ' '
        << j.requested_time << ' ' << -1 << ' ' << 1 << ' ' << -1 << ' '
        << -1 << ' ' << -1 << ' ' << -1 << ' ' << -1 << ' ' << -1 << ' '
        << -1 << '\n';
  }
}

void write_swf_file(const std::string& path, const JobStream& stream) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open SWF file for write: " + path);
  write_swf(out, stream);
}

}  // namespace rrsim::workload
