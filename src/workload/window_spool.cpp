#include "rrsim/workload/window_spool.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>
#include <utility>

namespace rrsim::workload {
namespace {

// Fixed-size on-disk record: the four JobSpec fields, 8 bytes each,
// little-endian, doubles as their exact bit patterns. Serialized
// field-by-field — a struct memcpy would write indeterminate padding
// bytes (same rationale as TraceKey::bytes).
constexpr std::size_t kRecordBytes = 32;

// Flush the writer's coalescing buffer at this size: large enough that
// spooling is a handful of write() calls per million jobs, small enough
// to stay invisible next to the simulation's own footprint.
constexpr std::size_t kFlushThreshold = std::size_t{1} << 20;

void put_u64(std::vector<unsigned char>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<unsigned char>((v >> (8 * i)) & 0xff));
  }
}

void put_double(std::vector<unsigned char>& out, double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof bits == sizeof v);
  std::memcpy(&bits, &v, sizeof bits);
  put_u64(out, bits);
}

std::uint64_t get_u64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  }
  return v;
}

double get_double(const unsigned char* p) {
  const std::uint64_t bits = get_u64(p);
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

std::string temp_dir_or_default(const std::string& dir) {
  if (!dir.empty()) return dir;
  if (const char* env = std::getenv("TMPDIR"); env != nullptr && *env != '\0') {
    return env;
  }
  return "/tmp";
}

}  // namespace

WindowSpool::WindowSpool(std::size_t window, const std::string& dir)
    : window_(window) {
  if (window == 0) {
    throw std::invalid_argument("WindowSpool: window must be >= 1");
  }
  std::string path = temp_dir_or_default(dir) + "/rrsim-spool-XXXXXX";
  fd_ = ::mkstemp(path.data());
  if (fd_ < 0) {
    throw std::runtime_error("WindowSpool: mkstemp failed under '" + path +
                             "': " + std::strerror(errno));
  }
  // Unlink before anyone can observe the name: the storage now lives only
  // as long as the descriptor, so every exit path — including exceptions —
  // reclaims it without cleanup-by-name.
  if (::unlink(path.c_str()) != 0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("WindowSpool: unlink failed for '" + path +
                             "': " + std::strerror(err));
  }
  buffer_.reserve(kFlushThreshold + kRecordBytes);
}

WindowSpool::WindowSpool(WindowSpool&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      window_(other.window_),
      total_jobs_(other.total_jobs_),
      finished_(other.finished_),
      index_(std::move(other.index_)),
      buffer_(std::move(other.buffer_)),
      flushed_bytes_(other.flushed_bytes_) {}

WindowSpool& WindowSpool::operator=(WindowSpool&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    window_ = other.window_;
    total_jobs_ = other.total_jobs_;
    finished_ = other.finished_;
    index_ = std::move(other.index_);
    buffer_ = std::move(other.buffer_);
    flushed_bytes_ = other.flushed_bytes_;
  }
  return *this;
}

WindowSpool::~WindowSpool() {
  if (fd_ >= 0) ::close(fd_);
}

void WindowSpool::append(const JobSpec& spec) {
  if (finished_) {
    throw std::logic_error("WindowSpool: append after finish()");
  }
  if (total_jobs_ % window_ == 0) {
    index_.push_back(WindowIndex{
        total_jobs_, flushed_bytes_ + buffer_.size()});
  }
  put_double(buffer_, spec.submit_time);
  put_u64(buffer_, static_cast<std::uint64_t>(
                       static_cast<std::int64_t>(spec.nodes)));
  put_double(buffer_, spec.runtime);
  put_double(buffer_, spec.requested_time);
  ++total_jobs_;
  if (buffer_.size() >= kFlushThreshold) flush_buffer();
}

void WindowSpool::finish() {
  if (finished_) return;
  flush_buffer();
  finished_ = true;
}

std::uint64_t WindowSpool::file_bytes() const noexcept {
  return flushed_bytes_ + buffer_.size();
}

void WindowSpool::flush_buffer() {
  std::size_t done = 0;
  while (done < buffer_.size()) {
    const ssize_t n =
        ::write(fd_, buffer_.data() + done, buffer_.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("WindowSpool: write failed: ") +
                               std::strerror(errno));
    }
    done += static_cast<std::size_t>(n);
  }
  flushed_bytes_ += buffer_.size();
  buffer_.clear();
}

void WindowSpool::read_records(std::uint64_t first, std::size_t count,
                               JobStream& out) const {
  std::vector<unsigned char> raw(count * kRecordBytes);
  std::size_t done = 0;
  const auto base = static_cast<off_t>(first * kRecordBytes);
  while (done < raw.size()) {
    const ssize_t n = ::pread(fd_, raw.data() + done, raw.size() - done,
                              base + static_cast<off_t>(done));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("WindowSpool: pread failed: ") +
                               std::strerror(errno));
    }
    if (n == 0) {
      throw std::runtime_error("WindowSpool: spool file truncated");
    }
    done += static_cast<std::size_t>(n);
  }
  for (std::size_t i = 0; i < count; ++i) {
    const unsigned char* p = raw.data() + i * kRecordBytes;
    JobSpec spec;
    spec.submit_time = get_double(p);
    spec.nodes = static_cast<int>(static_cast<std::int64_t>(get_u64(p + 8)));
    spec.runtime = get_double(p + 16);
    spec.requested_time = get_double(p + 24);
    out.push_back(spec);
  }
}

WindowSpool::Reader::Reader(std::shared_ptr<const WindowSpool> spool,
                            std::size_t start_window)
    : spool_(std::move(spool)) {
  if (spool_ == nullptr) {
    throw std::invalid_argument("WindowSpool::Reader: null spool");
  }
  if (!spool_->finished()) {
    throw std::logic_error("WindowSpool::Reader: spool not finished");
  }
  if (start_window > spool_->index_.size()) {
    throw std::invalid_argument(
        "WindowSpool::Reader: start_window " + std::to_string(start_window) +
        " past the index (" + std::to_string(spool_->index_.size()) +
        " windows)");
  }
  next_job_ = start_window < spool_->index_.size()
                  ? spool_->index_[start_window].job_index
                  : spool_->total_jobs();
}

std::size_t WindowSpool::Reader::next(std::size_t max_jobs, JobStream& out) {
  if (max_jobs == 0) {
    throw std::invalid_argument("WindowSpool::Reader: max_jobs must be >= 1");
  }
  out.clear();
  const std::uint64_t remaining = spool_->total_jobs() - next_job_;
  const std::size_t count = static_cast<std::size_t>(
      remaining < max_jobs ? remaining : max_jobs);
  if (count == 0) return 0;
  spool_->read_records(next_job_, count, out);
  next_job_ += count;
  return count;
}

}  // namespace rrsim::workload
