#include "rrsim/workload/trace_cache.h"

#include <bit>
#include <cstring>

namespace rrsim::workload {

namespace {

void append_u64(std::string& out, std::uint64_t v) {
  char buf[sizeof v];
  std::memcpy(buf, &v, sizeof v);
  out.append(buf, sizeof v);
}

void append_double(std::string& out, double v) {
  append_u64(out, std::bit_cast<std::uint64_t>(v));
}

}  // namespace

std::string TraceKey::bytes() const {
  std::string out;
  out.reserve(30 * sizeof(std::uint64_t) + estimator_name.size());
  // Field-by-field (never memcpy of the struct): padding bytes are
  // indeterminate and would make equal keys compare unequal.
  append_double(out, params.arrival_alpha);
  append_double(out, params.arrival_beta);
  append_double(out, params.serial_prob);
  append_double(out, params.pow2_prob);
  append_double(out, params.ulow);
  append_double(out, params.uprob);
  append_double(out, params.umed_offset);
  append_double(out, params.rt_a1);
  append_double(out, params.rt_b1);
  append_double(out, params.rt_a2);
  append_double(out, params.rt_b2);
  append_double(out, params.rt_pa);
  append_double(out, params.rt_pb);
  append_double(out, params.rt_log_base);
  append_double(out, params.min_runtime);
  append_double(out, params.max_runtime);
  append_u64(out, static_cast<std::uint64_t>(max_nodes));
  append_double(out, horizon);
  append_u64(out, stream_rng.first);
  append_u64(out, stream_rng.second);
  append_u64(out, est_rng.first);
  append_u64(out, est_rng.second);
  append_double(out, estimator_mean_factor);
  out += estimator_name;
  return out;
}

TraceCache::StreamPtr TraceCache::get_or_generate(const TraceKey& key,
                                                  const Generator& generate) {
  std::string k = key.bytes();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!enabled_) {
      // Count the lookup as a miss so disabled-mode stats still show how
      // much regeneration the cache would have absorbed.
      ++misses_;
    } else if (const auto it = map_.find(k); it != map_.end()) {
      ++hits_;
      return it->second;
    } else {
      ++misses_;
    }
  }
  // Generate outside the lock: Lublin streams take milliseconds and other
  // threads should neither wait on us nor serialize their own misses.
  auto stream = std::make_shared<const JobStream>(generate());
  std::lock_guard<std::mutex> lock(mu_);
  if (!enabled_) return stream;
  const auto [it, inserted] = map_.emplace(std::move(k), stream);
  if (!inserted) {
    // A racing thread published first. Generation is deterministic, so
    // the two streams are bit-identical; adopt the published one so all
    // consumers share a single buffer.
    return it->second;
  }
  insertion_order_.push_back(it->first);
  resident_bytes_ += it->second->size() * sizeof(JobSpec);
  evict_to_budget_locked();
  return it->second;
}

void TraceCache::evict_to_budget_locked() {
  if (byte_budget_ == 0) return;
  while (resident_bytes_ > byte_budget_ && !insertion_order_.empty()) {
    const std::string& oldest = insertion_order_.front();
    const auto it = map_.find(oldest);
    if (it != map_.end()) {
      resident_bytes_ -= it->second->size() * sizeof(JobSpec);
      map_.erase(it);
    }
    insertion_order_.pop_front();
  }
}

void TraceCache::set_enabled(bool on) {
  std::lock_guard<std::mutex> lock(mu_);
  enabled_ = on;
}

bool TraceCache::enabled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return enabled_;
}

void TraceCache::set_byte_budget(std::size_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  byte_budget_ = bytes;
  evict_to_budget_locked();
}

void TraceCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  map_.clear();
  insertion_order_.clear();
  resident_bytes_ = 0;
  hits_ = 0;
  misses_ = 0;
}

std::uint64_t TraceCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

std::uint64_t TraceCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

std::size_t TraceCache::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

std::size_t TraceCache::resident_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return resident_bytes_;
}

TraceCache& TraceCache::global() {
  static TraceCache instance;
  return instance;
}

}  // namespace rrsim::workload
