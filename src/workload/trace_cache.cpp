#include "rrsim/workload/trace_cache.h"

#include <bit>
#include <cstring>
#include <stdexcept>

namespace rrsim::workload {

namespace {

// Leading tag byte of the map key, so stream, checkpoint, and draw-segment
// entries never collide across kinds.
constexpr char kStreamTag = 'S';
constexpr char kCheckpointTag = 'C';
constexpr char kDrawTag = 'D';
constexpr char kSpoolTag = 'P';

void append_u64(std::string& out, std::uint64_t v) {
  char buf[sizeof v];
  std::memcpy(buf, &v, sizeof v);
  out.append(buf, sizeof v);
}

void append_double(std::string& out, double v) {
  append_u64(out, std::bit_cast<std::uint64_t>(v));
}

}  // namespace

std::string TraceKey::bytes() const {
  std::string out;
  out.reserve(30 * sizeof(std::uint64_t) + estimator_name.size());
  // Field-by-field (never memcpy of the struct): padding bytes are
  // indeterminate and would make equal keys compare unequal.
  append_double(out, params.arrival_alpha);
  append_double(out, params.arrival_beta);
  append_double(out, params.serial_prob);
  append_double(out, params.pow2_prob);
  append_double(out, params.ulow);
  append_double(out, params.uprob);
  append_double(out, params.umed_offset);
  append_double(out, params.rt_a1);
  append_double(out, params.rt_b1);
  append_double(out, params.rt_a2);
  append_double(out, params.rt_b2);
  append_double(out, params.rt_pa);
  append_double(out, params.rt_pb);
  append_double(out, params.rt_log_base);
  append_double(out, params.min_runtime);
  append_double(out, params.max_runtime);
  append_u64(out, static_cast<std::uint64_t>(max_nodes));
  append_double(out, horizon);
  append_u64(out, stream_rng.first);
  append_u64(out, stream_rng.second);
  append_u64(out, est_rng.first);
  append_u64(out, est_rng.second);
  append_double(out, estimator_mean_factor);
  out += estimator_name;
  return out;
}

std::string DrawSegmentKey::bytes() const {
  std::string out;
  out.reserve(6 * sizeof(std::uint64_t) + 1);
  append_u64(out, users_start.first);
  append_u64(out, users_start.second);
  append_u64(out, redundancy_start.first);
  append_u64(out, redundancy_start.second);
  append_u64(out, count);
  append_u64(out, users_per_cluster);
  out.push_back(scheme_active ? '\1' : '\0');
  return out;
}

std::string SpoolKey::bytes() const {
  std::string out;
  out.reserve(3 * sizeof(std::uint64_t) + path.size());
  append_u64(out, static_cast<std::uint64_t>(max_nodes));
  append_double(out, horizon);
  append_u64(out, window);
  out += path;
  return out;
}

TraceCache::StreamPtr TraceCache::get_or_generate(const TraceKey& key,
                                                  const Generator& generate) {
  std::string k;
  k.push_back(kStreamTag);
  k += key.bytes();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!enabled_) {
      // Count the lookup as a miss so disabled-mode stats still show how
      // much regeneration the cache would have absorbed.
      ++misses_;
    } else if (const auto it = map_.find(k); it != map_.end()) {
      ++hits_;
      touch_locked(it);
      return it->second.stream;
    } else {
      ++misses_;
    }
  }
  // Generate outside the lock: Lublin streams take milliseconds and other
  // threads should neither wait on us nor serialize their own misses.
  auto stream = std::make_shared<const JobStream>(generate());
  std::lock_guard<std::mutex> lock(mu_);
  if (!enabled_) return stream;
  Entry entry;
  entry.stream = stream;
  entry.bytes = stream->size() * sizeof(JobSpec);
  return publish_locked(std::move(k), std::move(entry)).stream;
}

TraceCache::CheckpointPtr TraceCache::get_or_build_checkpoints(
    const TraceKey& key, std::size_t window, const CheckpointBuilder& build) {
  if (window == 0) throw std::invalid_argument("window must be > 0");
  std::string k;
  k.push_back(kCheckpointTag);
  k += key.bytes();
  append_u64(k, window);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!enabled_) {
      ++checkpoint_misses_;
    } else if (const auto it = map_.find(k); it != map_.end()) {
      ++checkpoint_hits_;
      touch_locked(it);
      return it->second.checkpoints;
    } else {
      ++checkpoint_misses_;
    }
  }
  // Build outside the lock; deterministic builds make racing duplicates
  // harmless, same as get_or_generate.
  auto table = std::make_shared<const CheckpointedTrace>(build());
  std::lock_guard<std::mutex> lock(mu_);
  if (!enabled_) return table;
  Entry entry;
  entry.checkpoints = table;
  entry.bytes = table->payload_bytes();
  return publish_locked(std::move(k), std::move(entry)).checkpoints;
}

DrawSegment TraceCache::get_or_advance_draws(const DrawSegmentKey& key,
                                             const DrawAdvancer& advance) {
  std::string k;
  k.push_back(kDrawTag);
  k += key.bytes();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!enabled_) {
      ++draw_misses_;
    } else if (const auto it = map_.find(k); it != map_.end()) {
      ++draw_hits_;
      touch_locked(it);
      return it->second.draws;
    } else {
      ++draw_misses_;
    }
  }
  // Advance outside the lock, same once-per-miss economics as generation:
  // the fast-forward is one draw per job, O(total jobs) per cluster.
  const DrawSegment seg = advance();
  std::lock_guard<std::mutex> lock(mu_);
  if (!enabled_) return seg;
  Entry entry;
  entry.draws = seg;
  entry.bytes = sizeof(DrawSegment);
  return publish_locked(std::move(k), std::move(entry)).draws;
}

TraceCache::SpoolPtr TraceCache::get_or_build_spool(const SpoolKey& key,
                                                    const SpoolBuilder& build) {
  if (key.window == 0) throw std::invalid_argument("window must be > 0");
  std::string k;
  k.push_back(kSpoolTag);
  k += key.bytes();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!enabled_) {
      ++spool_misses_;
    } else if (const auto it = map_.find(k); it != map_.end()) {
      ++spool_hits_;
      touch_locked(it);
      return it->second.spool;
    } else {
      ++spool_misses_;
    }
  }
  // Build outside the lock: a miss reads and spools one whole trace file.
  // Racing duplicates each spool into their own unlinked temp file; the
  // loser's storage is reclaimed when its shared_ptr dies.
  auto spool = std::make_shared<const WindowSpool>(build());
  std::lock_guard<std::mutex> lock(mu_);
  if (!enabled_) return spool;
  Entry entry;
  entry.spool = spool;
  entry.bytes = spool->payload_bytes();
  return publish_locked(std::move(k), std::move(entry)).spool;
}

TraceCache::Entry TraceCache::publish_locked(std::string key, Entry entry) {
  const auto [it, inserted] = map_.emplace(std::move(key), std::move(entry));
  if (!inserted) {
    // A racing thread published first. Generation is deterministic, so
    // the two payloads are bit-identical; adopt the published one so all
    // consumers share a single buffer. Treat the reuse as a touch.
    touch_locked(it);
    return it->second;
  }
  lru_.push_back(&it->first);
  it->second.lru = std::prev(lru_.end());
  resident_bytes_ += it->second.bytes;
  // Copy the payload out BEFORE evicting: the fresh entry sits at the
  // recency back, so colder entries go first, but a budget smaller than
  // this one payload evicts the entry itself — eviction may invalidate
  // `it`, and the returned shared_ptrs (not the map node) are what keep
  // the payload alive for the caller.
  Entry published = it->second;
  evict_to_budget_locked();
  return published;
}

void TraceCache::touch_locked(Map::iterator it) {
  lru_.splice(lru_.end(), lru_, it->second.lru);
}

void TraceCache::evict_to_budget_locked() {
  if (byte_budget_ == 0) return;
  while (resident_bytes_ > byte_budget_ && !lru_.empty()) {
    const auto it = map_.find(*lru_.front());
    lru_.pop_front();
    // Every lru_ node should name a live map entry; if the invariant ever
    // drifts, skip the stale node rather than dereference end().
    if (it == map_.end()) continue;
    resident_bytes_ -= it->second.bytes;
    map_.erase(it);
  }
}

void TraceCache::set_enabled(bool on) {
  std::lock_guard<std::mutex> lock(mu_);
  enabled_ = on;
}

bool TraceCache::enabled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return enabled_;
}

void TraceCache::set_byte_budget(std::size_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  byte_budget_ = bytes;
  evict_to_budget_locked();
}

std::size_t TraceCache::byte_budget() const {
  std::lock_guard<std::mutex> lock(mu_);
  return byte_budget_;
}

void TraceCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  map_.clear();
  lru_.clear();
  resident_bytes_ = 0;
  hits_ = 0;
  misses_ = 0;
  checkpoint_hits_ = 0;
  checkpoint_misses_ = 0;
  draw_hits_ = 0;
  draw_misses_ = 0;
  spool_hits_ = 0;
  spool_misses_ = 0;
}

std::uint64_t TraceCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

std::uint64_t TraceCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

std::uint64_t TraceCache::checkpoint_hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return checkpoint_hits_;
}

std::uint64_t TraceCache::checkpoint_misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return checkpoint_misses_;
}

std::uint64_t TraceCache::draw_hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return draw_hits_;
}

std::uint64_t TraceCache::draw_misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return draw_misses_;
}

std::uint64_t TraceCache::spool_hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spool_hits_;
}

std::uint64_t TraceCache::spool_misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spool_misses_;
}

std::size_t TraceCache::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

std::size_t TraceCache::resident_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return resident_bytes_;
}

TraceCache& TraceCache::global() {
  static TraceCache instance;
  return instance;
}

}  // namespace rrsim::workload
