#include "rrsim/workload/stream_window.h"

#include <stdexcept>

namespace rrsim::workload {

StreamWindow::StreamWindow(const LublinParams& params, int max_nodes,
                           double horizon, const util::Rng& stream_rng,
                           const util::Rng& est_rng,
                           const RuntimeEstimator& estimator)
    : model_(params, max_nodes),
      horizon_(horizon),
      stream_rng_(stream_rng),
      est_rng_(est_rng),
      estimator_(&estimator) {
  if (horizon < 0.0) throw std::invalid_argument("horizon must be >= 0");
  // Prime the first arrival exactly as generate_stream does before its
  // loop; a gap past the horizon means the stream is empty, with the same
  // single interarrival draw consumed either way.
  next_arrival_ = model_.sample_interarrival(stream_rng_);
  exhausted_ = next_arrival_ > horizon_;
}

StreamWindow::StreamWindow(const LublinParams& params, int max_nodes,
                           double horizon, const StreamCheckpoint& at,
                           const RuntimeEstimator& estimator)
    : model_(params, max_nodes),
      horizon_(horizon),
      stream_rng_(util::Rng::from_fingerprint(at.stream_rng)),
      est_rng_(util::Rng::from_fingerprint(at.est_rng)),
      estimator_(&estimator),
      next_arrival_(at.next_arrival),
      job_index_(at.job_index),
      exhausted_(at.exhausted || at.next_arrival > horizon) {
  if (horizon < 0.0) throw std::invalid_argument("horizon must be >= 0");
}

std::size_t StreamWindow::next(std::size_t max_jobs, JobStream& out) {
  if (max_jobs == 0) throw std::invalid_argument("max_jobs must be > 0");
  out.clear();
  while (out.size() < max_jobs && !exhausted_) {
    // Same per-job draw order as generate_stream: nodes, runtime (both
    // from the stream Rng via sample_job), then the next interarrival
    // gap. The estimator draw interleaves per job but runs on its own
    // generator, so its sequence matches apply_estimator's second pass.
    JobSpec spec = model_.sample_job(stream_rng_);
    spec.submit_time = next_arrival_;
    spec.requested_time = estimator_->requested_for(spec.runtime, est_rng_);
    out.push_back(spec);
    ++job_index_;
    next_arrival_ += model_.sample_interarrival(stream_rng_);
    exhausted_ = next_arrival_ > horizon_;
  }
  return out.size();
}

StreamCheckpoint StreamWindow::checkpoint() const {
  StreamCheckpoint cp;
  cp.stream_rng = stream_rng_.fingerprint();
  cp.est_rng = est_rng_.fingerprint();
  cp.next_arrival = next_arrival_;
  cp.job_index = job_index_;
  cp.exhausted = exhausted_;
  return cp;
}

CheckpointedTrace scan_checkpoints(const LublinParams& params, int max_nodes,
                                   double horizon,
                                   const util::Rng& stream_rng,
                                   const util::Rng& est_rng,
                                   const RuntimeEstimator& estimator,
                                   std::size_t window) {
  if (window == 0) throw std::invalid_argument("window must be > 0");
  CheckpointedTrace trace;
  trace.window = window;
  StreamWindow gen(params, max_nodes, horizon, stream_rng, est_rng,
                   estimator);
  JobStream scratch;
  scratch.reserve(window);
  while (!gen.exhausted()) {
    trace.checkpoints.push_back(gen.checkpoint());
    gen.next(window, scratch);
  }
  trace.total_jobs = gen.jobs_emitted();
  return trace;
}

}  // namespace rrsim::workload
