// Discrete-event simulation kernel.
//
// Replaces the paper's use of the SimGrid toolkit: the study needs only a
// deterministic event queue with zero-delay messaging (Section 3.1.2 of the
// paper explicitly ignores network overheads), so a small kernel with
// well-defined same-time ordering is behaviourally equivalent and fully
// reproducible.
//
// Event state lives in a slab of pooled slots recycled through a free
// list, so scheduling an event performs no heap allocation once the slab
// and the callback's inline storage are warm (the previous design paid a
// std::shared_ptr control block plus callback state per event — ~2
// allocations across millions of events per run). Handles carry a
// (slot, generation) pair: recycling a slot bumps its generation, so a
// stale handle can never cancel a later event that reuses its slot.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace rrsim::des {

/// Simulated time, in seconds since the start of the simulation.
using Time = double;

/// A very large time used as "never"/horizon sentinel.
inline constexpr Time kTimeInfinity = 1e300;

/// Event priorities break ties between events scheduled at the same
/// timestamp: lower runs first. The simulator uses these bands to make
/// same-instant interactions deterministic (e.g. a job completion frees
/// nodes before the scheduling pass triggered by a new arrival sees them).
enum class Priority : int {
  kCompletion = 0,  ///< job completions (free resources first)
  kCancel = 1,      ///< replica cancellations
  kArrival = 2,     ///< job arrivals / submissions
  kControl = 3,     ///< probes, bookkeeping, end-of-experiment markers
};

/// Deterministic event-driven simulation engine.
///
/// Events are dispatched in (time, priority, insertion-sequence) order, so
/// runs with identical inputs produce identical traces on any platform.
/// Callbacks may schedule and cancel further events freely, including at
/// the current timestamp (same-time events inserted during dispatch run in
/// the same pass, after already-queued events of equal time/priority).
class Simulation {
 public:
  using Callback = std::function<void()>;

  /// Handle to a scheduled event, used to cancel it. Default-constructed
  /// handles are inert. Handles are trivially cheap to copy (a pointer
  /// plus a generation-checked slot index) and become inert once their
  /// event fires or is cancelled — but must not be used after the owning
  /// Simulation is destroyed.
  class EventHandle {
   public:
    EventHandle() = default;

    /// Cancels the event if it has not yet fired. Returns true if this
    /// call performed the cancellation.
    bool cancel() noexcept;

    /// True if the event is still queued (not fired, not cancelled).
    bool pending() const noexcept;

   private:
    friend class Simulation;
    EventHandle(Simulation* sim, std::uint32_t slot, std::uint64_t gen)
        : sim_(sim), slot_(slot), gen_(gen) {}
    Simulation* sim_ = nullptr;
    std::uint32_t slot_ = 0;
    std::uint64_t gen_ = 0;
  };

  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current simulated time. Starts at 0.
  Time now() const noexcept { return now_; }

  /// Schedules `cb` at absolute time `t` (must be >= now()).
  /// Throws std::invalid_argument if `t` is in the past or not finite.
  EventHandle schedule_at(Time t, Callback cb,
                          Priority prio = Priority::kControl);

  /// Schedules `cb` after a delay of `dt` seconds (must be >= 0).
  EventHandle schedule_in(Time dt, Callback cb,
                          Priority prio = Priority::kControl);

  /// Dispatches the next event, if any. Returns false when the queue is
  /// empty (cancelled events are skipped and do not count).
  bool step();

  /// Runs until no events remain.
  void run();

  /// Runs all events with time <= `t`, then sets now() to `t` (if the
  /// queue empties earlier, time still advances to `t`).
  void run_until(Time t);

  /// Number of live (non-cancelled) events still queued.
  std::size_t pending_events() const noexcept { return live_; }

  /// Total events dispatched so far.
  std::uint64_t dispatched() const noexcept { return dispatched_; }

  /// Size of the event slab (live + recycled slots); observability for
  /// tests and benchmarks, not part of the simulation semantics.
  std::size_t pool_capacity() const noexcept { return slots_.size(); }

  /// Returns the simulation to its initial state — time 0, no events, no
  /// dispatch history — while keeping the event slab, free list, and heap
  /// storage allocated, so a reset simulation schedules its first events
  /// with warm arenas. Every outstanding EventHandle becomes inert (each
  /// slot's generation is bumped), so a stale handle can neither cancel
  /// nor report pending for events of the next run. A reset simulation is
  /// indistinguishable, event-order-wise, from a freshly constructed one.
  void reset() noexcept;

 private:
  // One pooled event. `generation` counts retirements of the slot: a
  // queue entry or handle created with generation g is live iff the slot
  // still holds generation g. Cancelling or firing retires the slot
  // (bumps the generation and returns the index to the free list), so
  // the lazily-deleted queue entry and any outstanding handles observe
  // the mismatch and become inert.
  struct Slot {
    Callback callback;
    std::uint64_t generation = 0;
  };
  struct QueueEntry {
    Time time;
    int priority;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint64_t gen;
  };
  struct Compare {
    // std::push_heap/pop_heap build a max-heap; invert so the earliest
    // (time, priority, seq) triple is dispatched first. The heap lives in
    // a plain vector (not std::priority_queue) so reset() can clear it
    // without surrendering its capacity.
    bool operator()(const QueueEntry& a, const QueueEntry& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      if (a.priority != b.priority) return a.priority > b.priority;
      return a.seq > b.seq;
    }
  };

  /// True if queue entry / handle coordinates still refer to a live event.
  bool is_live(std::uint32_t slot, std::uint64_t gen) const noexcept {
    return slot < slots_.size() && slots_[slot].generation == gen;
  }

  /// Retires a live slot: destroys its callback (callers that dispatch
  /// move it out first), bumps the generation, recycles the index.
  void retire(std::uint32_t slot) noexcept;

  /// Heap helpers over heap_ (min-first per Compare).
  void heap_push(const QueueEntry& e);
  void heap_pop() noexcept;

  Time now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t dispatched_ = 0;
  std::size_t live_ = 0;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::vector<QueueEntry> heap_;
};

}  // namespace rrsim::des
