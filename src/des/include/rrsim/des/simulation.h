// Discrete-event simulation kernel.
//
// Replaces the paper's use of the SimGrid toolkit: the study needs only a
// deterministic event queue with zero-delay messaging (Section 3.1.2 of the
// paper explicitly ignores network overheads), so a small kernel with
// well-defined same-time ordering is behaviourally equivalent and fully
// reproducible.
//
// Event state lives in a slab of pooled slots recycled through a free
// list, and callbacks are stored inline in the slot (util::InlineFunction
// — over-sized captures are a compile error), so scheduling an event
// performs no heap allocation once the slab is warm. Handles carry a
// (slot, generation) pair: recycling a slot bumps its generation, so a
// stale handle can never cancel a later event that reuses its slot.
//
// The pending set is a two-tier calendar queue over the slab:
//
//   far tier   — an overflow list plus, per "season", an array of time
//                buckets; membership is intrusive (doubly linked through
//                slab slots), so inserting and cancelling far events is
//                O(1) and allocation-free.
//   near tier  — a small binary heap holding exactly the events with
//                time < heap_limit_; the heap top is therefore always
//                the global minimum under the (time, priority, sequence)
//                total order, which keeps dispatch order bit-identical
//                to the plain-binary-heap kernel this design replaced.
//
// When the near heap empties, the next non-empty bucket is drained into
// it (amortized O(1) per event); when a season's buckets are exhausted,
// the overflow list is scanned once and re-bucketed over its actual time
// span. DES workloads here schedule most events far ahead (all arrivals
// up front, completions a runtime ahead), so the near heap stays tiny and
// cache-resident instead of growing with the whole pending population.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "rrsim/util/inline_fn.h"
#include "rrsim/util/validate.h"

namespace rrsim::des {

/// Simulated time, in seconds since the start of the simulation.
using Time = double;

/// A very large time used as "never"/horizon sentinel.
inline constexpr Time kTimeInfinity = 1e300;

/// Event priorities break ties between events scheduled at the same
/// timestamp: lower runs first. The simulator uses these bands to make
/// same-instant interactions deterministic (e.g. a job completion frees
/// nodes before the scheduling pass triggered by a new arrival sees them).
enum class Priority : int {
  kCompletion = 0,  ///< job completions (free resources first)
  kCancel = 1,      ///< replica cancellations
  kArrival = 2,     ///< job arrivals / submissions
  kControl = 3,     ///< probes, bookkeeping, end-of-experiment markers
};

/// Inline capture budget for event callbacks. Sized for the largest
/// schedule-site capture in the tree (an arrival closure carrying a Job
/// by value plus two references) with headroom; raising it trades slab
/// memory for capture room.
inline constexpr std::size_t kCallbackCapacity = 112;

/// Tag for events not attributed to any cluster/partition entity.
/// Schedule sites pass the cluster an event acts on; untagged events are
/// treated as touching everything (conservatively dependent) by schedule
/// explorers.
inline constexpr std::uint32_t kNoEventTag = 0xffffffffu;

/// One member of a same-(time, priority) tie group, in insertion order.
struct TieEvent {
  std::uint64_t seq;  ///< global insertion sequence (unique within a run)
  std::uint32_t tag;  ///< cluster tag from the schedule site, or kNoEventTag
};

/// A same-timestamp/same-priority dispatch group offered to a
/// TieBreakPolicy. `members` lists the live events sharing the minimal
/// (time, priority) pair, ascending by seq; index 0 is what the default
/// kernel would dispatch next.
struct TieGroup {
  std::uint64_t id;         ///< dense per-run group ordinal (singletons too)
  std::uint32_t partition;  ///< kernel instance (PDES partition index, else 0)
  Time time;
  int priority;
  const TieEvent* members;
  std::size_t size;  ///< >= 1
};

/// Pluggable tie-break hook on the event queue. When installed (see
/// Simulation::set_tie_break_policy) the kernel exposes each
/// same-(time, priority) event group and lets the policy permute its
/// dispatch order without perturbing anything else — timestamps,
/// priorities, callbacks, and the slab/handle machinery are untouched.
/// With no policy installed the kernel keeps the default seq order on the
/// fast path, bit-identical to the historical behaviour.
///
/// A maximal run of consecutive same-(time, priority) dispatches forms
/// one group. pick() is called once per dispatch while a group drains;
/// the member list shrinks as events fire and may grow when callbacks
/// schedule new events at the group's (time, priority). Returning 0 from
/// every call reproduces the default order exactly.
class TieBreakPolicy {
 public:
  virtual ~TieBreakPolicy() = default;

  /// Index (into group.members) of the event to dispatch next.
  virtual std::size_t pick(const TieGroup& group) = 0;

  /// Optional coupling metadata hook: before a run, the experiment layer
  /// hands the policy a probe that reports the number of live
  /// cross-cluster couplings (replica sets spanning >= 2 clusters on the
  /// zero-delay kernel; undelivered coordinator messages in PDES mode).
  /// Schedule explorers sample it per tie group to prove events on
  /// disjoint clusters independent. The default implementation ignores
  /// the probe.
  virtual void attach_coupling_probe(std::uint32_t partition,
                                     std::function<std::uint64_t()> probe);
};

/// Deterministic event-driven simulation engine.
///
/// Events are dispatched in (time, priority, insertion-sequence) order, so
/// runs with identical inputs produce identical traces on any platform.
/// Callbacks may schedule and cancel further events freely, including at
/// the current timestamp (same-time events inserted during dispatch run in
/// the same pass, after already-queued events of equal time/priority).
class Simulation {
 public:
  /// Non-allocating callback: captures live inside the event slot. A
  /// capture larger than kCallbackCapacity is rejected at compile time —
  /// capture pointers or indices instead of large objects.
  using Callback = util::InlineFunction<kCallbackCapacity>;

  /// Handle to a scheduled event, used to cancel it. Default-constructed
  /// handles are inert. Handles are trivially cheap to copy (a pointer
  /// plus a generation-checked slot index) and become inert once their
  /// event fires or is cancelled — but must not be used after the owning
  /// Simulation is destroyed.
  class EventHandle {
   public:
    EventHandle() = default;

    /// Cancels the event if it has not yet fired. Returns true if this
    /// call performed the cancellation.
    bool cancel() noexcept;

    /// True if the event is still queued (not fired, not cancelled).
    bool pending() const noexcept;

   private:
    friend class Simulation;
    EventHandle(Simulation* sim, std::uint32_t slot, std::uint64_t gen)
        : sim_(sim), slot_(slot), gen_(gen) {}
    Simulation* sim_ = nullptr;
    std::uint32_t slot_ = 0;
    std::uint64_t gen_ = 0;
  };

  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current simulated time. Starts at 0.
  Time now() const noexcept { return now_; }

  /// Schedules `cb` at absolute time `t` (must be >= now()).
  /// Throws std::invalid_argument if `t` is in the past or not finite.
  /// `tag` labels the cluster the event acts on (kNoEventTag = global);
  /// it is metadata for tie-break policies only and never affects the
  /// dispatch order.
  EventHandle schedule_at(Time t, Callback cb,
                          Priority prio = Priority::kControl,
                          std::uint32_t tag = kNoEventTag);

  /// Schedules `cb` after a delay of `dt` seconds (must be >= 0).
  EventHandle schedule_in(Time dt, Callback cb,
                          Priority prio = Priority::kControl,
                          std::uint32_t tag = kNoEventTag);

  /// Installs (or, with nullptr, removes) a tie-break policy. The policy
  /// is not owned and must outlive the run; `partition` is echoed back in
  /// every TieGroup (PDES partition index; 0 for the classic kernel).
  /// Install before running: swapping policies mid-group is undefined.
  /// reset() uninstalls the policy.
  void set_tie_break_policy(TieBreakPolicy* policy,
                            std::uint32_t partition = 0) noexcept {
    policy_ = policy;
    policy_partition_ = partition;
  }

  /// The installed tie-break policy, or nullptr (default seq order).
  TieBreakPolicy* tie_break_policy() const noexcept { return policy_; }

  /// Number of tie groups opened so far under an installed policy (dense
  /// ordinals, singleton groups included); 0 on the default path.
  std::uint64_t tie_groups() const noexcept { return tie_groups_; }

  /// Dispatches the next event, if any. Returns false when the queue is
  /// empty (cancelled events are skipped and do not count).
  bool step();

  /// Runs until no events remain.
  void run();

  /// Runs all events with time <= `t`, then sets now() to `t` (if the
  /// queue empties earlier, time still advances to `t`).
  void run_until(Time t);

  /// Runs all events with time strictly < `t`, then sets now() to `t`.
  /// This is the PDES window primitive: a partition advances through
  /// [now, t) and stops exactly at the horizon, so an event scheduled at
  /// `t` itself (e.g. a message injected at the horizon) still dispatches
  /// in a later window under the same (time, priority, seq) order.
  void run_before(Time t);

  /// Timestamp of the earliest live event, or kTimeInfinity when none
  /// remain. May refill the near heap from the calendar tiers and drop
  /// stale (cancelled) heap entries, but dispatches nothing and never
  /// changes the observable dispatch order.
  Time next_event_time();

  /// Number of live (non-cancelled) events still queued.
  std::size_t pending_events() const noexcept { return live_; }

  /// Total events dispatched so far.
  std::uint64_t dispatched() const noexcept { return dispatched_; }

  /// Size of the event slab (live + recycled slots); observability for
  /// tests and benchmarks, not part of the simulation semantics.
  std::size_t pool_capacity() const noexcept { return slots_.size(); }

  /// Returns the simulation to its initial state — time 0, no events, no
  /// dispatch history — while keeping the event slab, free list, heap,
  /// and bucket storage allocated, so a reset simulation schedules its
  /// first events with warm arenas. Every outstanding EventHandle becomes
  /// inert (each slot's generation is bumped), so a stale handle can
  /// neither cancel nor report pending for events of the next run. A
  /// reset simulation is indistinguishable, event-order-wise, from a
  /// freshly constructed one.
  void reset() noexcept;

#if RRSIM_VALIDATE_ENABLED
  /// Hash of the semantic simulation state (time, counters, queue
  /// occupancy) — deliberately excludes arena capacities, so a reset
  /// simulation with a warm slab fingerprints equal to a fresh one.
  /// reset() checks exactly that; a member added without reset() coverage
  /// shows up as a fingerprint mismatch once it is folded in here.
  std::uint64_t debug_fingerprint() const noexcept;

  /// Corruption hook for the oracle death tests: primes the dispatch
  /// watermark as if an event later than everything still queued had
  /// already fired, so the next step() must trip the order oracle.
  void debug_force_dispatch_watermark(Time t) noexcept {
    vd_have_last_ = true;
    vd_last_time_ = t;
    vd_last_prio_ = static_cast<int>(Priority::kControl);
    vd_last_seq_ = ~std::uint64_t{0};
    vd_last_epoch_ = ~std::uint64_t{0};
  }

  /// Corruption hook: makes the next reset() "forget" to restore
  /// next_seq_, emulating a member added without reset coverage.
  void debug_leak_state_on_reset(bool leak) noexcept {
    vd_leak_on_reset_ = leak;
  }
#endif

 private:
  static constexpr std::uint32_t kNil = 0xffffffffu;
  /// Sentinel bucket index marking membership in the overflow list.
  static constexpr std::uint32_t kOverflowBucket = 0xfffffffeu;
  /// Overflow populations at or below this size skip bucketing and move
  /// straight into the near heap (a plain-heap season), so tiny event
  /// populations never pay the per-season bucket-array scan. Measured on
  /// the micro_campaign 1k-live churn: raising this to 2048 made the
  /// kernel ~40% slower (bucketed refills keep the near heap a few
  /// entries deep, which beats O(log n) pushes even at n = 1024), so the
  /// threshold only covers populations too small to subdivide at all.
  static constexpr std::size_t kDirectMoveThreshold = 64;
  static constexpr std::size_t kMinBuckets = 16;
  static constexpr std::size_t kMaxBuckets = 1024;

  enum class Where : std::uint8_t {
    kFree = 0,  ///< on the free list
    kNear = 1,  ///< in the near heap (entry holds a by-value copy)
    kFar = 2,   ///< linked into a bucket or the overflow list
  };

  // One pooled event. `generation` counts retirements of the slot: a
  // heap entry or handle created with generation g is live iff the slot
  // still holds generation g. Cancelling or firing retires the slot
  // (bumps the generation and returns the index to the free list). Far
  // events are additionally linked through prev/next, so cancelling one
  // unlinks and retires it immediately — O(1), and the slot is reusable
  // at once (the pooled-slab recycling tests pin this).
  struct Slot {
    Callback callback;
    std::uint64_t generation = 0;
    Time time = 0.0;
    std::uint64_t seq = 0;
    std::uint32_t next = kNil;
    std::uint32_t prev = kNil;
    std::uint32_t bucket = kNil;  ///< owning list while kFar
    std::uint32_t tag = kNoEventTag;
    std::uint8_t priority = 0;
    Where where = Where::kFree;
#if RRSIM_VALIDATE_ENABLED
    /// Dispatch count at schedule time. The order oracle compares the
    /// full (time, priority, seq) triple only against events that were
    /// already queued at the previous pop; an event inserted *during*
    /// that dispatch (epoch >= the pop's dispatch number) may legally
    /// carry the same time with a lower priority.
    std::uint64_t epoch = 0;
#endif
  };
  struct QueueEntry {
    Time time;
    int priority;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint64_t gen;
  };
  struct Compare {
    // std::push_heap/pop_heap build a max-heap; invert so the earliest
    // (time, priority, seq) triple is dispatched first. The heap lives in
    // a plain vector (not std::priority_queue) so reset() can clear it
    // without surrendering its capacity.
    bool operator()(const QueueEntry& a, const QueueEntry& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      if (a.priority != b.priority) return a.priority > b.priority;
      return a.seq > b.seq;
    }
  };

  /// True if queue entry / handle coordinates still refer to a live event.
  bool is_live(std::uint32_t slot, std::uint64_t gen) const noexcept {
    return slot < slots_.size() && slots_[slot].generation == gen;
  }

  /// Retires a live slot: destroys its callback (callers that dispatch
  /// move it out first), bumps the generation, recycles the index.
  void retire(std::uint32_t slot) noexcept;

  /// Removes a far event from its bucket/overflow list (O(1)).
  void unlink(std::uint32_t slot) noexcept;

  /// Links `slot` at the head of bucket `b` (kOverflowBucket = overflow).
  void link(std::uint32_t slot, std::uint32_t b) noexcept;

  /// Start time of bucket `i` in the current season.
  Time bucket_start(std::size_t i) const noexcept {
    return bucket_base_ + static_cast<Time>(i) * bucket_width_;
  }

  /// Bucket for a far event at time `t` in the active season. Guarantees
  /// the correctness invariant: an event placed in bucket b > cur_bucket_
  /// has t >= bucket_start(b), so draining earlier buckets never raises
  /// heap_limit_ past an event still waiting in a later bucket.
  std::uint32_t bucket_index(Time t) const noexcept;

  /// Moves a far list (given by its head) into the near heap.
  void drain_list_to_heap(std::uint32_t head);

  /// Refills the near heap from the calendar tiers. Returns false iff no
  /// events remain anywhere (heap, buckets, overflow).
  bool refill();

  /// Starts a new season from the overflow list: either buckets it over
  /// its time span or, for small populations, moves it straight into the
  /// near heap.
  void start_season();

  /// Heap helpers over heap_ (min-first per Compare).
  void heap_push(const QueueEntry& e);
  void heap_pop() noexcept;

  /// Dispatch path while a TieBreakPolicy is installed: gathers the
  /// minimal-(time, priority) cohort and lets the policy choose.
  bool step_policy();

  Time now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t dispatched_ = 0;
  std::size_t live_ = 0;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;

  // Near tier: exact (time, priority, seq) heap of events < heap_limit_.
  std::vector<QueueEntry> heap_;
  Time heap_limit_ = 0.0;

  // Far tier: current season's buckets plus the overflow list.
  std::vector<std::uint32_t> bucket_heads_;  // kNil-terminated lists
  std::size_t n_buckets_ = 0;                // 0: no active season
  std::size_t cur_bucket_ = 0;               // next undrained bucket
  Time bucket_base_ = 0.0;
  Time bucket_width_ = 0.0;
  Time bucket_range_end_ = 0.0;
  std::uint32_t overflow_head_ = kNil;
  std::size_t overflow_count_ = 0;

  // Tie-break policy hook (nullptr = default seq-order fast path). The
  // group trackers delimit maximal runs of same-(time, priority)
  // dispatches; the scratch vectors keep cohort gathering allocation-free
  // after the first group.
  TieBreakPolicy* policy_ = nullptr;
  std::uint32_t policy_partition_ = 0;
  std::uint64_t tie_groups_ = 0;
  bool group_open_ = false;
  Time group_time_ = 0.0;
  int group_prio_ = 0;
  struct GroupMember {
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t tag;
  };
  std::vector<GroupMember> group_members_;
  std::vector<TieEvent> group_scratch_;

#if RRSIM_VALIDATE_ENABLED
  // Dispatch-order oracle watermark: coordinates of the previous pop.
  bool vd_have_last_ = false;
  bool vd_leak_on_reset_ = false;
  Time vd_last_time_ = 0.0;
  int vd_last_prio_ = 0;
  std::uint64_t vd_last_seq_ = 0;
  std::uint64_t vd_last_epoch_ = 0;
#endif
};

}  // namespace rrsim::des
