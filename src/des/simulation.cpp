#include "rrsim/des/simulation.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

namespace rrsim::des {

bool Simulation::EventHandle::cancel() noexcept {
  if (sim_ == nullptr || !sim_->is_live(slot_, gen_)) return false;
  // Far events unlink in O(1); near events leave their heap entry behind
  // (lazily skipped at pop, exactly like the plain-heap kernel). Either
  // way the slot itself is retired immediately, so the pooled-slab
  // recycling guarantees are unchanged.
  if (sim_->slots_[slot_].where == Where::kFar) sim_->unlink(slot_);
  sim_->retire(slot_);  // drops the callback's captures promptly
  if (sim_->live_ > 0) --sim_->live_;
  sim_ = nullptr;
  return true;
}

bool Simulation::EventHandle::pending() const noexcept {
  return sim_ != nullptr && sim_->is_live(slot_, gen_);
}

void Simulation::retire(std::uint32_t slot) noexcept {
  Slot& s = slots_[slot];
  s.callback = nullptr;  // drop captured resources; cheap if already moved
  ++s.generation;
  s.where = Where::kFree;
  free_slots_.push_back(slot);
}

void Simulation::unlink(std::uint32_t slot) noexcept {
  Slot& s = slots_[slot];
  if (s.prev != kNil) {
    slots_[s.prev].next = s.next;
  } else if (s.bucket == kOverflowBucket) {
    overflow_head_ = s.next;
  } else {
    bucket_heads_[s.bucket] = s.next;
  }
  if (s.next != kNil) slots_[s.next].prev = s.prev;
  if (s.bucket == kOverflowBucket) --overflow_count_;
  s.next = kNil;
  s.prev = kNil;
  s.bucket = kNil;
}

void Simulation::link(std::uint32_t slot, std::uint32_t b) noexcept {
  std::uint32_t& head =
      (b == kOverflowBucket) ? overflow_head_ : bucket_heads_[b];
  Slot& s = slots_[slot];
  s.prev = kNil;
  s.next = head;
  s.bucket = b;
  s.where = Where::kFar;
  if (head != kNil) slots_[head].prev = slot;
  head = slot;
  if (b == kOverflowBucket) ++overflow_count_;
}

std::uint32_t Simulation::bucket_index(Time t) const noexcept {
  const Time rel = (t - bucket_base_) / bucket_width_;
  std::size_t idx;
  if (!(rel > 0.0)) {
    idx = 0;
  } else if (rel >= static_cast<Time>(n_buckets_)) {
    idx = n_buckets_ - 1;
  } else {
    idx = static_cast<std::size_t>(rel);
    if (idx >= n_buckets_) idx = n_buckets_ - 1;  // FP edge of the cast
  }
  if (idx < cur_bucket_) idx = cur_bucket_;
  // The division may round up across a bucket boundary; walk down until
  // the bucket's computed start covers `t`. Events may legally land in
  // bucket cur_bucket_ even below its start (it is the next one drained).
  while (idx > cur_bucket_ && t < bucket_start(idx)) --idx;
  return static_cast<std::uint32_t>(idx);
}

void Simulation::heap_push(const QueueEntry& e) {
  heap_.push_back(e);
  std::push_heap(heap_.begin(), heap_.end(), Compare{});
}

void Simulation::heap_pop() noexcept {
  std::pop_heap(heap_.begin(), heap_.end(), Compare{});
  heap_.pop_back();
}

void Simulation::drain_list_to_heap(std::uint32_t head) {
  for (std::uint32_t i = head; i != kNil;) {
    Slot& s = slots_[i];
    const std::uint32_t next = s.next;
    s.next = kNil;
    s.prev = kNil;
    s.bucket = kNil;
    s.where = Where::kNear;
    heap_push(QueueEntry{s.time, static_cast<int>(s.priority), s.seq, i,
                         s.generation});
    i = next;
  }
}

void Simulation::start_season() {
  // One scan of the overflow list for population and time span.
  Time min_t = slots_[overflow_head_].time;
  Time max_t = min_t;
  for (std::uint32_t i = overflow_head_; i != kNil; i = slots_[i].next) {
    const Time t = slots_[i].time;
    min_t = std::min(min_t, t);
    max_t = std::max(max_t, t);
  }
  const std::size_t n = overflow_count_;
  std::size_t n_buckets = 0;
  Time width = 0.0;
  if (n > kDirectMoveThreshold && max_t > min_t) {
    n_buckets = std::clamp(n / 8, kMinBuckets, kMaxBuckets);
    width = (max_t - min_t) / static_cast<Time>(n_buckets);
    if (!(width > 0.0)) n_buckets = 0;  // span too narrow to subdivide
  }
  std::uint32_t i = overflow_head_;
  overflow_head_ = kNil;
  overflow_count_ = 0;
  if (n_buckets == 0) {
    // Plain-heap season: the whole population moves into the near heap.
    while (i != kNil) {
      Slot& s = slots_[i];
      const std::uint32_t next = s.next;
      s.next = kNil;
      s.prev = kNil;
      s.bucket = kNil;
      s.where = Where::kNear;
      heap_push(QueueEntry{s.time, static_cast<int>(s.priority), s.seq, i,
                           s.generation});
      i = next;
    }
    heap_limit_ =
        std::nextafter(max_t, std::numeric_limits<Time>::infinity());
    return;
  }
  if (bucket_heads_.size() < n_buckets) bucket_heads_.resize(n_buckets, kNil);
  bucket_base_ = min_t;
  bucket_width_ = width;
  n_buckets_ = n_buckets;
  cur_bucket_ = 0;
  bucket_range_end_ = bucket_start(n_buckets);
  if (!(bucket_range_end_ > max_t)) {
    // FP guard: the last bucket must absorb max_t.
    bucket_range_end_ =
        std::nextafter(max_t, std::numeric_limits<Time>::infinity());
  }
  while (i != kNil) {
    const std::uint32_t next = slots_[i].next;
    link(i, bucket_index(slots_[i].time));
    i = next;
  }
}

bool Simulation::refill() {
  for (;;) {
    while (n_buckets_ != 0) {
      if (cur_bucket_ == n_buckets_) {
        // Season exhausted; everything below its range is dispatched or
        // already in the heap.
        n_buckets_ = 0;
        cur_bucket_ = 0;
        heap_limit_ = bucket_range_end_;
        break;
      }
      const std::size_t b = cur_bucket_++;
      heap_limit_ = (cur_bucket_ == n_buckets_) ? bucket_range_end_
                                                : bucket_start(cur_bucket_);
      const std::uint32_t head = bucket_heads_[b];
      if (head != kNil) {
        bucket_heads_[b] = kNil;
        drain_list_to_heap(head);
        return true;
      }
    }
    if (overflow_count_ == 0) return !heap_.empty();
    start_season();
    if (!heap_.empty()) return true;  // plain-heap seasons fill it directly
  }
}

Simulation::EventHandle Simulation::schedule_at(Time t, Callback cb,
                                                Priority prio,
                                                std::uint32_t tag) {
  if (!(t >= now_) || !std::isfinite(t)) {
    throw std::invalid_argument("schedule_at: time must be finite and >= now");
  }
  if (!cb) throw std::invalid_argument("schedule_at: empty callback");
  std::uint32_t index;
  if (!free_slots_.empty()) {
    index = free_slots_.back();
    free_slots_.pop_back();
  } else {
    if (slots_.size() >= std::numeric_limits<std::uint32_t>::max()) {
      throw std::length_error("schedule_at: event pool exhausted");
    }
    index = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& slot = slots_[index];
  slot.callback = std::move(cb);
  slot.time = t;
  slot.seq = next_seq_++;
  slot.tag = tag;
  slot.priority = static_cast<std::uint8_t>(prio);
#if RRSIM_VALIDATE_ENABLED
  slot.epoch = dispatched_;
#endif
  if (t < heap_limit_) {
    slot.where = Where::kNear;
    heap_push(QueueEntry{t, static_cast<int>(prio), slot.seq, index,
                         slot.generation});
  } else if (n_buckets_ != 0 && t < bucket_range_end_) {
    link(index, bucket_index(t));
  } else {
    link(index, kOverflowBucket);
  }
  ++live_;
  return EventHandle(this, index, slot.generation);
}

Simulation::EventHandle Simulation::schedule_in(Time dt, Callback cb,
                                                Priority prio,
                                                std::uint32_t tag) {
  if (!(dt >= 0.0)) throw std::invalid_argument("schedule_in: negative delay");
  return schedule_at(now_ + dt, std::move(cb), prio, tag);
}

void TieBreakPolicy::attach_coupling_probe(
    std::uint32_t partition, std::function<std::uint64_t()> probe) {
  (void)partition;
  (void)probe;
}

bool Simulation::step_policy() {
  // Skim stale entries until the heap top is live (refilling as needed):
  // the top then carries the global minimum under (time, priority, seq).
  for (;;) {
    if (heap_.empty() && !refill()) return false;
    const QueueEntry& top = heap_.front();
    if (is_live(top.slot, top.gen)) break;
    heap_pop();
  }
  const Time t = heap_.front().time;
  const int prio = heap_.front().priority;
  // Group accounting: each maximal run of same-(time, priority)
  // dispatches is one group; ordinals are dense over the run (singleton
  // groups included) so a replay driver can address a group stably.
  if (!group_open_ || t != group_time_ || prio != group_prio_) {
    group_open_ = true;
    group_time_ = t;
    group_prio_ = prio;
    ++tie_groups_;
  }
  // Gather the cohort. The calendar invariant — every live event below
  // heap_limit_ sits in the near heap, far events are at or above it —
  // puts every event sharing the minimal (time, priority) pair in heap_,
  // so a single scan sees the whole group.
  group_members_.clear();
  for (const QueueEntry& e : heap_) {
    if (e.time != t || e.priority != prio) continue;
    if (!is_live(e.slot, e.gen)) continue;
    group_members_.push_back(GroupMember{e.seq, e.slot, slots_[e.slot].tag});
  }
  std::sort(group_members_.begin(), group_members_.end(),
            [](const GroupMember& a, const GroupMember& b) {
              return a.seq < b.seq;  // seqs are unique: a total order
            });
  std::size_t choice = 0;
  if (group_members_.size() > 1) {
    group_scratch_.clear();
    for (const GroupMember& m : group_members_) {
      group_scratch_.push_back(TieEvent{m.seq, m.tag});
    }
    const TieGroup group{tie_groups_ - 1, policy_partition_, t, prio,
                         group_scratch_.data(), group_scratch_.size()};
    choice = policy_->pick(group);
    if (choice >= group_members_.size()) {
      throw std::logic_error("tie-break policy picked an index out of range");
    }
  }
  const GroupMember chosen = group_members_[choice];
#if RRSIM_VALIDATE_ENABLED
  // Relaxed dispatch-order oracle: a policy may permute seq order inside
  // a (time, priority) group, so only the (time, priority) axes bind for
  // events queued across a pop; the time axis is unconditional.
  RRSIM_CHECK(t >= now_, "event dispatched before now()");
  if (vd_have_last_) {
    RRSIM_CHECK(t >= vd_last_time_, "dispatch time went backwards");
    if (slots_[chosen.slot].epoch < vd_last_epoch_) {
      RRSIM_CHECK(t > vd_last_time_ || prio >= vd_last_prio_,
                  "(time, priority) dispatch order violated under a "
                  "tie-break policy");
    }
  }
  vd_have_last_ = true;
  vd_last_time_ = t;
  vd_last_prio_ = prio;
  vd_last_seq_ = chosen.seq;
  vd_last_epoch_ = dispatched_ + 1;
#endif
  now_ = t;
  // Dispatch the chosen member directly off its slot. Its heap entry (if
  // it was not the top) stays behind and is lazily skipped once the slot
  // retires — the same mechanism that absorbs cancelled near events.
  Callback cb(std::move(slots_[chosen.slot].callback));
  retire(chosen.slot);
  if (live_ > 0) --live_;
  ++dispatched_;
  cb();
  return true;
}

bool Simulation::step() {
  if (policy_ != nullptr) return step_policy();
  for (;;) {
    if (heap_.empty() && !refill()) return false;
    const QueueEntry entry = heap_.front();
    heap_pop();
    if (!is_live(entry.slot, entry.gen)) continue;  // cancelled; skip
#if RRSIM_VALIDATE_ENABLED
    // Dispatch-order oracle. Time never goes backwards; the full
    // (time, priority, seq) order additionally holds against any event
    // that was already queued at the previous pop (an event inserted
    // during that dispatch may legally share its time with a lower
    // priority, so only the time axis binds for those).
    RRSIM_CHECK(entry.time >= now_, "event dispatched before now()");
    if (vd_have_last_) {
      RRSIM_CHECK(entry.time >= vd_last_time_,
                  "dispatch time went backwards");
      if (slots_[entry.slot].epoch < vd_last_epoch_) {
        const bool after =
            entry.time > vd_last_time_ ||
            entry.priority > vd_last_prio_ ||
            (entry.priority == vd_last_prio_ && entry.seq > vd_last_seq_);
        RRSIM_CHECK(after,
                    "(time, priority, seq) dispatch order violated for "
                    "events queued across a pop");
      }
    }
    vd_have_last_ = true;
    vd_last_time_ = entry.time;
    vd_last_prio_ = entry.priority;
    vd_last_seq_ = entry.seq;
    vd_last_epoch_ = dispatched_ + 1;
#endif
    now_ = entry.time;
    // Move the callback out (single move-construction — cheaper than
    // going through retire()'s assignment) and retire the slot *before*
    // running it, so the callback can schedule new events (possibly
    // reusing this slot) and outstanding handles read "fired".
    Callback cb(std::move(slots_[entry.slot].callback));
    retire(entry.slot);
    if (live_ > 0) --live_;
    ++dispatched_;
    cb();
    return true;
  }
}

void Simulation::run() {
  while (step()) {
  }
}

void Simulation::run_until(Time t) {
  if (t < now_) throw std::invalid_argument("run_until: time in the past");
  for (;;) {
    if (heap_.empty() && !refill()) break;
    const QueueEntry& top = heap_.front();
    if (!is_live(top.slot, top.gen)) {
      heap_pop();
      continue;
    }
    if (top.time > t) break;
    step();
  }
  now_ = t;
}

void Simulation::run_before(Time t) {
  if (t < now_) throw std::invalid_argument("run_before: time in the past");
  for (;;) {
    if (heap_.empty() && !refill()) break;
    const QueueEntry& top = heap_.front();
    if (!is_live(top.slot, top.gen)) {
      heap_pop();
      continue;
    }
    if (!(top.time < t)) break;
    step();
  }
  if (t > now_) now_ = t;
}

Time Simulation::next_event_time() {
  for (;;) {
    if (heap_.empty() && !refill()) return kTimeInfinity;
    const QueueEntry& top = heap_.front();
    if (!is_live(top.slot, top.gen)) {
      heap_pop();
      continue;
    }
    return top.time;
  }
}

#if RRSIM_VALIDATE_ENABLED
std::uint64_t Simulation::debug_fingerprint() const noexcept {
  // FNV-1a over the semantic state. Arena capacities (slab size, heap /
  // bucket / free-list storage) are deliberately excluded: they are what
  // reset() keeps warm. What must match a fresh simulation is everything
  // observable through the public API plus queue occupancy.
  std::uint64_t h = 0xcbf29ce484222325ull;
  const auto mix = [&h](std::uint64_t v) noexcept {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffu;
      h *= 0x100000001b3ull;
    }
  };
  const auto mix_time = [&mix](Time t) noexcept {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(Time));
    __builtin_memcpy(&bits, &t, sizeof(bits));
    mix(bits);
  };
  mix_time(now_);
  mix(next_seq_);
  mix(dispatched_);
  mix(live_);
  mix(heap_.size());
  mix_time(heap_limit_);
  mix(n_buckets_);
  mix(cur_bucket_);
  mix_time(bucket_base_);
  mix_time(bucket_width_);
  mix_time(bucket_range_end_);
  mix(overflow_head_ == kNil ? 0 : 1);
  mix(overflow_count_);
  mix(slots_.size() - free_slots_.size());  // slots not on the free list
  std::uint64_t busy = 0;
  for (const Slot& s : slots_) {
    if (s.where != Where::kFree) ++busy;
  }
  mix(busy);
  std::uint64_t linked_heads = 0;
  for (const std::uint32_t head : bucket_heads_) {
    if (head != kNil) ++linked_heads;
  }
  mix(linked_heads);
  mix(policy_ == nullptr ? 0 : 1);
  mix(policy_partition_);
  mix(tie_groups_);
  mix(group_open_ ? 1 : 0);
  mix(vd_have_last_ ? 1 : 0);
  return h;
}
#endif

void Simulation::reset() noexcept {
  now_ = 0.0;
  next_seq_ = 0;
  dispatched_ = 0;
  live_ = 0;
  heap_.clear();
  heap_limit_ = 0.0;
  n_buckets_ = 0;
  cur_bucket_ = 0;
  bucket_base_ = 0.0;
  bucket_width_ = 0.0;
  bucket_range_end_ = 0.0;
  overflow_head_ = kNil;
  overflow_count_ = 0;
  // The policy is per-run configuration: clearing it keeps a pooled
  // workspace simulation from calling into a policy object the previous
  // run's driver may already have destroyed.
  policy_ = nullptr;
  policy_partition_ = 0;
  tie_groups_ = 0;
  group_open_ = false;
  group_time_ = 0.0;
  group_prio_ = 0;
  group_members_.clear();
  group_scratch_.clear();
  std::fill(bucket_heads_.begin(), bucket_heads_.end(), kNil);
  // Retire every slot: destroy lingering callbacks (a truncated run leaves
  // events queued) and bump generations so handles from the previous run
  // are inert. The free list is rebuilt highest-index-first so the next
  // run allocates slot 0, 1, 2, ... exactly like a fresh slab would.
  free_slots_.clear();
  free_slots_.reserve(slots_.size());
  for (std::size_t i = slots_.size(); i-- > 0;) {
    Slot& s = slots_[i];
    s.callback = nullptr;
    ++s.generation;
    s.where = Where::kFree;
    s.next = kNil;
    s.prev = kNil;
    s.bucket = kNil;
    free_slots_.push_back(static_cast<std::uint32_t>(i));
  }
#if RRSIM_VALIDATE_ENABLED
  vd_have_last_ = false;
  if (vd_leak_on_reset_) next_seq_ = 1;  // simulated missed-member bug
  // Reset-coverage oracle: a reset simulation must fingerprint equal to
  // a freshly constructed one. A member added to Simulation but not to
  // reset() (and folded into debug_fingerprint()) trips here.
  RRSIM_CHECK(debug_fingerprint() == Simulation().debug_fingerprint(),
              "reset() state differs from a freshly constructed Simulation");
#endif
}

}  // namespace rrsim::des
