#include "rrsim/des/simulation.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

namespace rrsim::des {

bool Simulation::EventHandle::cancel() noexcept {
  if (sim_ == nullptr || !sim_->is_live(slot_, gen_)) return false;
  sim_->retire(slot_);  // drops the callback's captures promptly
  if (sim_->live_ > 0) --sim_->live_;
  sim_ = nullptr;
  return true;
}

bool Simulation::EventHandle::pending() const noexcept {
  return sim_ != nullptr && sim_->is_live(slot_, gen_);
}

void Simulation::retire(std::uint32_t slot) noexcept {
  Slot& s = slots_[slot];
  s.callback = nullptr;  // drop captured resources; cheap if already moved
  ++s.generation;
  free_slots_.push_back(slot);
}

void Simulation::heap_push(const QueueEntry& e) {
  heap_.push_back(e);
  std::push_heap(heap_.begin(), heap_.end(), Compare{});
}

void Simulation::heap_pop() noexcept {
  std::pop_heap(heap_.begin(), heap_.end(), Compare{});
  heap_.pop_back();
}

Simulation::EventHandle Simulation::schedule_at(Time t, Callback cb,
                                                Priority prio) {
  if (!(t >= now_) || !std::isfinite(t)) {
    throw std::invalid_argument("schedule_at: time must be finite and >= now");
  }
  if (!cb) throw std::invalid_argument("schedule_at: empty callback");
  std::uint32_t index;
  if (!free_slots_.empty()) {
    index = free_slots_.back();
    free_slots_.pop_back();
  } else {
    if (slots_.size() >= std::numeric_limits<std::uint32_t>::max()) {
      throw std::length_error("schedule_at: event pool exhausted");
    }
    index = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& slot = slots_[index];
  slot.callback = std::move(cb);
  heap_push(QueueEntry{t, static_cast<int>(prio), next_seq_++, index,
                       slot.generation});
  ++live_;
  return EventHandle(this, index, slot.generation);
}

Simulation::EventHandle Simulation::schedule_in(Time dt, Callback cb,
                                                Priority prio) {
  if (!(dt >= 0.0)) throw std::invalid_argument("schedule_in: negative delay");
  return schedule_at(now_ + dt, std::move(cb), prio);
}

bool Simulation::step() {
  while (!heap_.empty()) {
    const QueueEntry entry = heap_.front();
    heap_pop();
    if (!is_live(entry.slot, entry.gen)) continue;  // cancelled; skip
    now_ = entry.time;
    // Move the callback out (single move-construction — cheaper than
    // going through retire()'s assignment) and retire the slot *before*
    // running it, so the callback can schedule new events (possibly
    // reusing this slot) and outstanding handles read "fired".
    Callback cb(std::move(slots_[entry.slot].callback));
    retire(entry.slot);
    if (live_ > 0) --live_;
    ++dispatched_;
    cb();
    return true;
  }
  return false;
}

void Simulation::run() {
  while (step()) {
  }
}

void Simulation::run_until(Time t) {
  if (t < now_) throw std::invalid_argument("run_until: time in the past");
  while (!heap_.empty()) {
    const QueueEntry& top = heap_.front();
    if (!is_live(top.slot, top.gen)) {
      heap_pop();
      continue;
    }
    if (top.time > t) break;
    step();
  }
  now_ = t;
}

void Simulation::reset() noexcept {
  now_ = 0.0;
  next_seq_ = 0;
  dispatched_ = 0;
  live_ = 0;
  heap_.clear();
  // Retire every slot: destroy lingering callbacks (a truncated run leaves
  // events queued) and bump generations so handles from the previous run
  // are inert. The free list is rebuilt highest-index-first so the next
  // run allocates slot 0, 1, 2, ... exactly like a fresh slab would.
  free_slots_.clear();
  free_slots_.reserve(slots_.size());
  for (std::size_t i = slots_.size(); i-- > 0;) {
    slots_[i].callback = nullptr;
    ++slots_[i].generation;
    free_slots_.push_back(static_cast<std::uint32_t>(i));
  }
}

}  // namespace rrsim::des
