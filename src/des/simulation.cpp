#include "rrsim/des/simulation.h"

#include <cmath>
#include <stdexcept>
#include <utility>

namespace rrsim::des {

/// Shared state between the queue and any handles to the event.
struct Simulation::EventHandle::State {
  Callback callback;
  bool cancelled = false;
  bool fired = false;
  std::size_t* live = nullptr;  // owner's live-event counter
};

bool Simulation::EventHandle::cancel() noexcept {
  if (!state_ || state_->cancelled || state_->fired) return false;
  state_->cancelled = true;
  state_->callback = nullptr;  // release captured resources promptly
  if (state_->live != nullptr && *state_->live > 0) --(*state_->live);
  return true;
}

bool Simulation::EventHandle::pending() const noexcept {
  return state_ && !state_->cancelled && !state_->fired;
}

Simulation::EventHandle Simulation::schedule_at(Time t, Callback cb,
                                                Priority prio) {
  if (!(t >= now_) || !std::isfinite(t)) {
    throw std::invalid_argument("schedule_at: time must be finite and >= now");
  }
  if (!cb) throw std::invalid_argument("schedule_at: empty callback");
  auto state = std::make_shared<EventHandle::State>();
  state->callback = std::move(cb);
  state->live = &live_;
  queue_.push(QueueEntry{t, static_cast<int>(prio), next_seq_++, state});
  ++live_;
  return EventHandle(std::move(state));
}

Simulation::EventHandle Simulation::schedule_in(Time dt, Callback cb,
                                                Priority prio) {
  if (!(dt >= 0.0)) throw std::invalid_argument("schedule_in: negative delay");
  return schedule_at(now_ + dt, std::move(cb), prio);
}

bool Simulation::step() {
  while (!queue_.empty()) {
    QueueEntry entry = queue_.top();
    queue_.pop();
    if (entry.state->cancelled) continue;
    now_ = entry.time;
    entry.state->fired = true;
    if (live_ > 0) --live_;
    ++dispatched_;
    // Move out the callback so the state does not keep captures alive.
    Callback cb = std::move(entry.state->callback);
    cb();
    return true;
  }
  return false;
}

void Simulation::run() {
  while (step()) {
  }
}

void Simulation::run_until(Time t) {
  if (t < now_) throw std::invalid_argument("run_until: time in the past");
  while (!queue_.empty()) {
    if (queue_.top().state->cancelled) {
      queue_.pop();
      continue;
    }
    if (queue_.top().time > t) break;
    step();
  }
  now_ = t;
}

}  // namespace rrsim::des
