#include "rrsim/loadmodel/frontend.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>

namespace rrsim::loadmodel {

FrontEnd::FrontEnd(int cluster_nodes, std::uint64_t base_op_work)
    : cluster_nodes_(cluster_nodes), base_op_work_(base_op_work) {
  if (cluster_nodes_ < 1) {
    throw std::invalid_argument("front-end needs >= 1 node");
  }
}

std::uint64_t FrontEnd::submit(int nodes, double requested_time) {
  if (nodes < 1 || nodes > cluster_nodes_) {
    throw std::invalid_argument("front-end: job does not fit the cluster");
  }
  if (requested_time <= 0.0) {
    throw std::invalid_argument("front-end: non-positive requested time");
  }
  FrontEndJob job;
  job.id = next_id_++;
  job.nodes = nodes;
  job.requested_time = requested_time;
  queue_.push_back(job);
  clock_ += 1.0;
  scheduling_iteration();
  return job.id;
}

bool FrontEnd::cancel_head() {
  if (queue_.empty()) return false;
  queue_.pop_front();
  clock_ += 1.0;
  scheduling_iteration();
  return true;
}

void FrontEnd::prefill(std::size_t count, util::Rng& rng) {
  while (queue_.size() < count) {
    FrontEndJob job;
    job.id = next_id_++;
    job.nodes = static_cast<int>(rng.between(1, cluster_nodes_));
    job.requested_time = rng.uniform(60.0, 24.0 * 3600.0);
    queue_.push_back(job);
  }
}

void FrontEnd::scheduling_iteration() {
  // Phase 0: fixed per-operation cost (request parsing, accounting,
  // journal write in a real front-end). Comparable arithmetic to one
  // priority evaluation per work unit, so base_op_work is in the same
  // currency as the queue sweep below.
  for (std::uint64_t i = 0; i < base_op_work_; ++i) {
    ballast_ += std::log1p(static_cast<double>(i & 1023u)) * 1e-9;
  }
  // Phase 1: priority sweep (Maui recomputes job priorities from queue
  // time, size, and a fairness term on every iteration).
  const FrontEndJob* best = nullptr;
  for (FrontEndJob& job : queue_) {
    const double queue_age = clock_ - static_cast<double>(job.id);
    job.priority = queue_age * 0.1 +
                   std::log1p(static_cast<double>(job.nodes)) -
                   job.requested_time * 1e-6;
    ++work_;
    if (best == nullptr || job.priority > best->priority) best = &job;
  }
  // Phase 2: feasibility of the best candidate (never fits: busy cluster).
  if (best != nullptr && best->nodes <= free_nodes_) {
    // Unreachable in the measurement setup; kept for correctness if a
    // user constructs a front-end with free capacity.
    return;
  }
  // Phase 3: backfill scan — every queued job is tested against the free
  // capacity (zero here, but the scan itself is the realistic cost).
  for (const FrontEndJob& job : queue_) {
    ++work_;
    if (job.nodes <= free_nodes_) break;
  }
}

std::vector<ThroughputPoint> measure_throughput(
    int cluster_nodes, const std::vector<std::size_t>& queue_sizes,
    int pairs, util::Rng& rng) {
  if (pairs < 1) throw std::invalid_argument("pairs must be >= 1");
  std::vector<ThroughputPoint> out;
  out.reserve(queue_sizes.size());
  for (const std::size_t depth : queue_sizes) {
    FrontEnd fe(cluster_nodes);
    fe.prefill(depth, rng);
    // rrsim-lint-allow(wall-clock): this *is* a wall-clock benchmark —
    // the Section 4 frontend capacity study measures real operations per
    // real second on the host; no simulated result depends on it.
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < pairs; ++i) {
      fe.submit(static_cast<int>(rng.between(1, cluster_nodes)),
                rng.uniform(60.0, 24.0 * 3600.0));
      fe.cancel_head();
    }
    // rrsim-lint-allow(wall-clock): end stamp of the same measurement.
    const auto t1 = std::chrono::steady_clock::now();
    const double secs =
        std::chrono::duration<double>(t1 - t0).count();
    ThroughputPoint p;
    p.queue_size = depth;
    p.pairs_per_sec = secs > 0.0 ? static_cast<double>(pairs) / secs : 0.0;
    out.push_back(p);
  }
  return out;
}

}  // namespace rrsim::loadmodel
