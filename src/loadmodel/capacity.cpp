#include "rrsim/loadmodel/capacity.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rrsim::loadmodel {

ServiceRates gram_middleware() {
  // "slightly under 60 transactions per minute ... .5 job submissions and
  // .5 job cancellations can be processed per second" (Section 4.2).
  return ServiceRates{0.5, 0.5};
}

ServiceRates scheduler_rates(const ExpDecayModel& model, double queue_depth) {
  // The Fig 5 curve is per direction: the scheduler sustains at(q)
  // submissions/s *and* at(q) cancellations/s simultaneously.
  const double each_way = model.at(queue_depth);
  return ServiceRates{each_way, each_way};
}

int max_redundancy(const ServiceRates& rates, double iat) {
  if (iat <= 0.0) throw std::invalid_argument("iat must be > 0");
  if (rates.submits_per_sec < 0.0 || rates.cancels_per_sec < 0.0) {
    throw std::invalid_argument("rates must be >= 0");
  }
  // r/iat <= S  =>  r <= S*iat ; (r-1)/iat <= C  =>  r <= C*iat + 1.
  const double by_submit = rates.submits_per_sec * iat;
  const double by_cancel = rates.cancels_per_sec * iat + 1.0;
  const double r = std::floor(std::min(by_submit, by_cancel));
  return std::max(1, static_cast<int>(r));
}

CapacityReport analyze_capacity(const ExpDecayModel& scheduler_model,
                                double queue_depth,
                                const ServiceRates& middleware, double iat) {
  CapacityReport report;
  // The paper reads Fig 5 at 10,000 pending requests as "6 submissions
  // and 6 cancellations per second", giving r/iat <= 6 and thus r <= 30
  // at the 5 s peak-hour inter-arrival time.
  report.scheduler_max_r =
      max_redundancy(scheduler_rates(scheduler_model, queue_depth), iat);
  report.middleware_max_r = max_redundancy(middleware, iat);
  report.system_max_r =
      std::min(report.scheduler_max_r, report.middleware_max_r);
  report.middleware_is_bottleneck =
      report.middleware_max_r < report.scheduler_max_r;
  return report;
}

}  // namespace rrsim::loadmodel
