#include "rrsim/loadmodel/throughput_model.h"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace rrsim::loadmodel {

ExpDecayModel::ExpDecayModel(double floor, double amplitude, double scale)
    : floor_(floor), amplitude_(amplitude), scale_(scale) {
  if (scale_ <= 0.0 || amplitude_ < 0.0 || floor_ < 0.0) {
    throw std::invalid_argument("invalid exp-decay parameters");
  }
}

double ExpDecayModel::at(double q) const {
  if (q < 0.0) throw std::invalid_argument("queue depth must be >= 0");
  return floor_ + amplitude_ * std::exp(-q / scale_);
}

ExpDecayModel ExpDecayModel::paper_calibrated() {
  static const ExpDecayModel model = fit_exp_decay(
      {{0.0, 11.0}, {10000.0, 6.0}, {20000.0, 5.0}});
  return model;
}

ExpDecayModel fit_exp_decay(
    const std::vector<std::pair<double, double>>& points) {
  if (points.size() < 3) {
    throw std::invalid_argument("fit needs >= 3 points");
  }
  double span = 0.0;
  for (const auto& [q, y] : points) span = std::max(span, q);
  if (span <= 0.0) throw std::invalid_argument("fit needs a positive span");

  double best_err = std::numeric_limits<double>::infinity();
  double best_a = 0.0;
  double best_b = 0.0;
  double best_c = span;
  // Grid over the decay scale; floor/amplitude solved by linear least
  // squares on the basis {1, exp(-q/c)}.
  for (int i = 1; i <= 400; ++i) {
    const double c = span * static_cast<double>(i) / 100.0;  // span/100..4*span
    double s1 = 0.0, sx = 0.0, sxx = 0.0, sy = 0.0, sxy = 0.0;
    for (const auto& [q, y] : points) {
      const double x = std::exp(-q / c);
      s1 += 1.0;
      sx += x;
      sxx += x * x;
      sy += y;
      sxy += x * y;
    }
    const double det = s1 * sxx - sx * sx;
    if (std::abs(det) < 1e-12) continue;
    const double a = (sy * sxx - sx * sxy) / det;  // floor
    const double b = (s1 * sxy - sx * sy) / det;   // amplitude
    if (a < 0.0 || b < 0.0) continue;
    double err = 0.0;
    for (const auto& [q, y] : points) {
      const double d = a + b * std::exp(-q / c) - y;
      err += d * d;
    }
    if (err < best_err) {
      best_err = err;
      best_a = a;
      best_b = b;
      best_c = c;
    }
  }
  if (!std::isfinite(best_err)) {
    throw std::invalid_argument("fit failed: no feasible parameters");
  }
  return ExpDecayModel(best_a, best_b, best_c);
}

}  // namespace rrsim::loadmodel
