// A batch-scheduler front-end whose submit/cancel throughput can be
// *measured* — rrsim's stand-in for the paper's OpenPBS/Maui experiment
// (Fig 5). The paper saturated a PBS server (whose cluster was fully
// occupied by one long job) with qsub/qdel pairs at different queue
// depths. Here the same protocol runs against an in-process front-end
// that, like Maui, performs a full scheduling iteration on every queue
// event: a priority sweep over all pending jobs plus a backfill
// feasibility scan. Per-operation work therefore grows with queue depth,
// which is the mechanism behind Fig 5's decaying curve; absolute ops/s
// are far higher than a 2006 daemon with disk I/O (see DESIGN.md).
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "rrsim/util/rng.h"

namespace rrsim::loadmodel {

/// One pending request in the front-end's queue.
struct FrontEndJob {
  std::uint64_t id = 0;
  int nodes = 1;
  double requested_time = 3600.0;
  double priority = 0.0;  ///< recomputed every scheduling iteration
};

/// In-process scheduler front-end with a Maui-style per-event scheduling
/// iteration. The managed cluster is fully busy (as in the paper's
/// measurement setup), so no job ever starts — every operation pays the
/// full queue-proportional scheduling cost.
class FrontEnd {
 public:
  /// `cluster_nodes`: size of the (busy) cluster the feasibility checks
  /// run against. `base_op_work` is the fixed per-operation cost in
  /// work units (default equivalent to a ~10,000-entry queue sweep),
  /// standing in for the constant costs a real front-end pays per
  /// qsub/qdel — process spawn, TCP round trip, job-file disk write.
  /// Without it the throughput curve would decay by orders of magnitude
  /// instead of the paper's ~2x between an empty and a 20,000-deep queue.
  /// Throws std::invalid_argument if cluster_nodes < 1.
  explicit FrontEnd(int cluster_nodes, std::uint64_t base_op_work = 20000);

  /// Enqueues a request and runs a scheduling iteration (qsub).
  std::uint64_t submit(int nodes, double requested_time);

  /// Removes the job at the head of the queue and runs a scheduling
  /// iteration (qdel of the head causes maximum churn, as in the paper).
  /// Returns false if the queue is empty.
  bool cancel_head();

  /// Fills the queue to `count` jobs with random small requests, without
  /// running scheduling iterations (fast experiment setup).
  void prefill(std::size_t count, util::Rng& rng);

  std::size_t queue_size() const noexcept { return queue_.size(); }

  /// Total queue-proportional evaluations performed across all scheduling
  /// iterations (excludes the fixed base cost); grows ~ O(ops *
  /// queue_size). Exposed for tests.
  std::uint64_t work_performed() const noexcept { return work_; }

  /// Accumulator of the fixed-cost computation; reading it keeps the
  /// work observable (and un-elidable) to the optimiser.
  double ballast() const noexcept { return ballast_; }

 private:
  /// Maui-style iteration: recompute priorities for every pending job,
  /// pick the best candidate, test feasibility, then scan the queue once
  /// for backfill candidates. No job ever fits (cluster busy).
  void scheduling_iteration();

  int cluster_nodes_;
  int free_nodes_ = 0;  // cluster fully busy, as in the paper's setup
  std::uint64_t base_op_work_;
  std::uint64_t next_id_ = 1;
  std::uint64_t work_ = 0;
  double clock_ = 0.0;   // logical queue age used in priority terms
  double ballast_ = 0.0; // sink for the fixed-cost computation
  std::deque<FrontEndJob> queue_;
};

/// One point of the Fig 5 curve.
struct ThroughputPoint {
  std::size_t queue_size = 0;
  double pairs_per_sec = 0.0;  ///< submit+cancel *pairs* per wall second
};

/// Measures submit/cancel-pair throughput at each queue depth in
/// `queue_sizes`: fills the front-end to the depth, then times `pairs`
/// submit+cancel-head pairs with a monotonic clock. One fresh FrontEnd
/// per depth. Throws std::invalid_argument if pairs < 1.
std::vector<ThroughputPoint> measure_throughput(
    int cluster_nodes, const std::vector<std::size_t>& queue_sizes,
    int pairs, util::Rng& rng);

}  // namespace rrsim::loadmodel
