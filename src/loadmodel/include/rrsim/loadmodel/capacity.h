// The Section 4 capacity analysis: how many redundant requests per job a
// multi-cluster system tolerates before the batch scheduler or the grid
// middleware becomes the bottleneck.
//
// With mean job inter-arrival time `iat` at each cluster and every job
// using r requests, each cluster receives r/iat submissions and
// (r-1)/iat cancellations per second in steady state. A service layer
// with submit throughput S and cancel throughput C therefore requires
//   r / iat <= S   and   (r - 1) / iat <= C.
// The paper instantiates this with S = C = 6/s for the batch scheduler
// (measured at a 10,000-deep queue) giving r <= 30, and S = C = 0.5/s for
// GT4 WS-GRAM giving r < 3.
#pragma once

#include "rrsim/loadmodel/throughput_model.h"

namespace rrsim::loadmodel {

/// A service layer's sustainable operation rates, per second.
struct ServiceRates {
  double submits_per_sec = 0.0;
  double cancels_per_sec = 0.0;
};

/// GT4 WS-GRAM as reported in the paper (just under one transaction per
/// second, split evenly between submissions and cancellations).
ServiceRates gram_middleware();

/// The batch scheduler's rates at queue depth `q`, from a throughput
/// model whose at(q) gives the *per-direction* rate (Fig 5: ~11
/// submissions/s and ~11 cancellations/s at an empty queue).
ServiceRates scheduler_rates(const ExpDecayModel& model, double queue_depth);

/// Largest integer r such that a service with `rates` sustains every job
/// using r requests at mean inter-arrival `iat` seconds. At least 1 (a
/// job always sends its one local request). Throws std::invalid_argument
/// if iat <= 0.
int max_redundancy(const ServiceRates& rates, double iat);

/// Bottleneck summary for a system with both layers.
struct CapacityReport {
  int scheduler_max_r = 0;   ///< paper: 30 at iat = 5 s
  int middleware_max_r = 0;  ///< paper: 2 ("under 3") at iat = 5 s
  int system_max_r = 0;      ///< min of the two
  bool middleware_is_bottleneck = false;
};

/// Evaluates both layers at inter-arrival `iat` with the scheduler model
/// at queue depth `queue_depth`.
CapacityReport analyze_capacity(const ExpDecayModel& scheduler_model,
                                double queue_depth,
                                const ServiceRates& middleware, double iat);

}  // namespace rrsim::loadmodel
