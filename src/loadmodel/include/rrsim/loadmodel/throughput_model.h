// Analytic throughput-vs-queue-size model, calibrated to the paper's
// OpenPBS/Maui measurements (Fig 5): ~11 submissions+cancellations/s on an
// empty queue, decaying "in a somewhat exponential manner" to ~5/s at
// 20,000 pending requests, ~6/s at 10,000. The Section 4 capacity
// analysis evaluates this model at a conservative queue depth.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace rrsim::loadmodel {

/// throughput(q) = floor + amplitude * exp(-q / scale), ops per second.
class ExpDecayModel {
 public:
  /// Throws std::invalid_argument if scale <= 0 or amplitude < 0 or
  /// floor < 0.
  ExpDecayModel(double floor, double amplitude, double scale);

  /// Ops per second at queue depth `q` (>= 0).
  double at(double q) const;

  double floor() const noexcept { return floor_; }
  double amplitude() const noexcept { return amplitude_; }
  double scale() const noexcept { return scale_; }

  /// The model fit to the three operating points the paper reports for
  /// OpenPBS/Maui on a 1 GHz Pentium III: (0, 11), (10000, 6), (20000, 5).
  static ExpDecayModel paper_calibrated();

 private:
  double floor_;
  double amplitude_;
  double scale_;
};

/// Least-squares fit of an ExpDecayModel to (queue_size, ops_per_sec)
/// points: grid search over the scale parameter with a closed-form linear
/// solve for floor/amplitude at each candidate. Throws
/// std::invalid_argument with fewer than 3 points.
ExpDecayModel fit_exp_decay(
    const std::vector<std::pair<double, double>>& points);

}  // namespace rrsim::loadmodel
