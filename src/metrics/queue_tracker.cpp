#include "rrsim/metrics/queue_tracker.h"

#include <algorithm>
#include <stdexcept>

namespace rrsim::metrics {

QueueTracker::QueueTracker(des::Simulation& sim, std::vector<Probe> probes,
                           double interval, double horizon)
    : sim_(sim),
      probes_(std::move(probes)),
      interval_(interval),
      horizon_(horizon),
      series_(probes_.size()) {
  if (interval_ <= 0.0) {
    throw std::invalid_argument("sampling interval must be > 0");
  }
  if (horizon_ < 0.0) throw std::invalid_argument("horizon must be >= 0");
  if (interval_ <= horizon_) {
    sim_.schedule_in(interval_, [this] { sample(); },
                     des::Priority::kControl);
  }
}

void QueueTracker::sample() {
  const double now = sim_.now();
  for (std::size_t i = 0; i < probes_.size(); ++i) {
    series_[i].emplace_back(now, probes_[i]());
  }
  if (now + interval_ <= horizon_) {
    sim_.schedule_in(interval_, [this] { sample(); },
                     des::Priority::kControl);
  }
}

std::size_t QueueTracker::max_length(std::size_t i) const {
  std::size_t best = 0;
  for (const auto& [t, len] : series_.at(i)) best = std::max(best, len);
  return best;
}

double QueueTracker::avg_max_length() const {
  if (series_.empty()) return 0.0;
  double total = 0.0;
  for (std::size_t i = 0; i < series_.size(); ++i) {
    total += static_cast<double>(max_length(i));
  }
  return total / static_cast<double>(series_.size());
}

const std::vector<std::pair<double, std::size_t>>& QueueTracker::series(
    std::size_t i) const {
  return series_.at(i);
}

double QueueTracker::growth_per_hour(std::size_t i) const {
  const auto& s = series_.at(i);
  if (s.size() < 2) return 0.0;
  // Simple least-squares slope of length vs. time.
  double sum_t = 0.0;
  double sum_y = 0.0;
  double sum_tt = 0.0;
  double sum_ty = 0.0;
  for (const auto& [t, len] : s) {
    const auto y = static_cast<double>(len);
    sum_t += t;
    sum_y += y;
    sum_tt += t * t;
    sum_ty += t * y;
  }
  const auto n = static_cast<double>(s.size());
  const double denom = n * sum_tt - sum_t * sum_t;
  if (denom == 0.0) return 0.0;
  const double slope_per_sec = (n * sum_ty - sum_t * sum_y) / denom;
  return slope_per_sec * 3600.0;
}

}  // namespace rrsim::metrics
