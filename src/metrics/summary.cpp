#include "rrsim/metrics/summary.h"

#include <algorithm>

#include "rrsim/util/stats.h"

namespace rrsim::metrics {

double stretch_of(const JobRecord& r) noexcept {
  const double denom = std::max(r.actual_time, 1.0);
  return r.turnaround() / denom;
}

namespace {

template <typename Filter>
ScheduleMetrics compute_filtered(std::span<const JobRecord> records,
                                 Filter&& keep) {
  util::OnlineStats stretch;
  util::OnlineStats turnaround;
  util::OnlineStats wait;
  for (const JobRecord& r : records) {
    if (!keep(r)) continue;
    stretch.add(stretch_of(r));
    turnaround.add(r.turnaround());
    wait.add(r.wait_time());
  }
  ScheduleMetrics m;
  m.jobs = stretch.count();
  if (m.jobs == 0) return m;
  m.avg_stretch = stretch.mean();
  m.cv_stretch_percent = stretch.cv_percent();
  m.max_stretch = stretch.max();
  m.avg_turnaround = turnaround.mean();
  m.avg_wait = wait.mean();
  return m;
}

}  // namespace

ScheduleMetrics compute_metrics(std::span<const JobRecord> records) {
  return compute_filtered(records, [](const JobRecord&) { return true; });
}

ClassifiedMetrics compute_classified_metrics(
    std::span<const JobRecord> records) {
  ClassifiedMetrics out;
  out.all = compute_metrics(records);
  out.redundant =
      compute_filtered(records, [](const JobRecord& r) { return r.redundant; });
  out.non_redundant = compute_filtered(
      records, [](const JobRecord& r) { return !r.redundant; });
  return out;
}

PredictionAccuracy compute_prediction_accuracy(
    std::span<const JobRecord> records, std::optional<bool> redundant_only,
    double min_wait) {
  util::OnlineStats ratios;
  for (const JobRecord& r : records) {
    if (redundant_only && r.redundant != *redundant_only) continue;
    if (!r.predicted_start) continue;
    const double actual_wait = r.wait_time();
    if (actual_wait < min_wait) continue;
    const double predicted_wait =
        std::max(0.0, *r.predicted_start - r.submit_time);
    ratios.add(predicted_wait / actual_wait);
  }
  PredictionAccuracy acc;
  acc.jobs = ratios.count();
  if (acc.jobs == 0) return acc;
  acc.avg_ratio = ratios.mean();
  acc.cv_ratio_percent = ratios.cv_percent();
  return acc;
}

}  // namespace rrsim::metrics
