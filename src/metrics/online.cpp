#include "rrsim/metrics/online.h"

#include <algorithm>

namespace rrsim::metrics {

JobRecord32 compact(const JobRecord& r) noexcept {
  JobRecord32 c;
  c.submit_time = r.submit_time;
  c.start_time = r.start_time;
  c.finish_time = r.finish_time;
  c.actual_time = r.actual_time;
  if (r.predicted_start) c.predicted_start = *r.predicted_start;
  c.grid_id = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(r.grid_id, UINT32_MAX));
  c.origin_cluster = static_cast<std::uint16_t>(
      std::min<std::size_t>(r.origin_cluster, UINT16_MAX));
  c.winner_cluster = static_cast<std::uint16_t>(
      std::min<std::size_t>(r.winner_cluster, UINT16_MAX));
  c.nodes = static_cast<std::uint16_t>(std::clamp(r.nodes, 0, 0xffff));
  c.replicas = static_cast<std::uint8_t>(std::clamp(r.replicas, 0, 0xff));
  c.replicas_delivered =
      static_cast<std::uint8_t>(std::clamp(r.replicas_delivered, 0, 0xff));
  c.redundant = r.redundant;
  return c;
}

double stretch_of(const JobRecord32& r) noexcept {
  const double denom = std::max(r.actual_time, 1.0);
  return r.turnaround() / denom;
}

// --- P2Quantile ------------------------------------------------------------

P2Quantile::P2Quantile(double q) : q_(q) {
  rate_ = {0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0};
}

void P2Quantile::add(double x) noexcept {
  if (n_ < 5) {
    heights_[n_++] = x;
    if (n_ == 5) {
      std::sort(heights_.begin(), heights_.end());
      for (std::size_t i = 0; i < 5; ++i) {
        pos_[i] = static_cast<double>(i + 1);
        desired_[i] = 1.0 + 4.0 * rate_[i];
      }
    }
    return;
  }
  // Locate the cell containing x, stretching the extreme markers.
  std::size_t k;
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = x;
    k = 3;
  } else {
    k = 0;
    while (k < 3 && x >= heights_[k + 1]) ++k;
  }
  for (std::size_t i = k + 1; i < 5; ++i) pos_[i] += 1.0;
  for (std::size_t i = 0; i < 5; ++i) desired_[i] += rate_[i];
  ++n_;
  // Nudge the three interior markers toward their desired positions with
  // the piecewise-parabolic (P^2) formula, falling back to linear when
  // the parabola would break the height ordering.
  for (std::size_t i = 1; i <= 3; ++i) {
    const double d = desired_[i] - pos_[i];
    if ((d >= 1.0 && pos_[i + 1] - pos_[i] > 1.0) ||
        (d <= -1.0 && pos_[i - 1] - pos_[i] < -1.0)) {
      const double s = d < 0.0 ? -1.0 : 1.0;
      const double hp = (pos_[i + 1] - pos_[i]);
      const double hm = (pos_[i] - pos_[i - 1]);
      const double parabolic =
          heights_[i] +
          s / (pos_[i + 1] - pos_[i - 1]) *
              ((hm + s) * (heights_[i + 1] - heights_[i]) / hp +
               (hp - s) * (heights_[i] - heights_[i - 1]) / hm);
      if (heights_[i - 1] < parabolic && parabolic < heights_[i + 1]) {
        heights_[i] = parabolic;
      } else {
        const std::size_t j = d < 0.0 ? i - 1 : i + 1;
        heights_[i] += s * (heights_[j] - heights_[i]) /
                       (pos_[j] - pos_[i]);
      }
      pos_[i] += s;
    }
  }
}

void P2Quantile::merge_from(const P2Quantile& other) noexcept {
  const std::size_t markers = std::min<std::size_t>(other.n_, 5);
  for (std::size_t i = 0; i < markers; ++i) add(other.heights_[i]);
}

double P2Quantile::value() const noexcept {
  if (n_ == 0) return 0.0;
  if (n_ >= 5) return heights_[2];
  // Exact small-sample quantile, same interpolation as util::quantile.
  std::array<double, 5> sorted = heights_;
  std::sort(sorted.begin(), sorted.begin() + static_cast<std::ptrdiff_t>(n_));
  const double rank = q_ * static_cast<double>(n_ - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, n_ - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

// --- OnlineAccumulator -----------------------------------------------------

OnlineAccumulator::OnlineAccumulator(double min_wait) : min_wait_(min_wait) {}

void OnlineAccumulator::add(const JobRecord32& r) noexcept {
  // Mirror compute_filtered exactly: one add per series, in this order,
  // per class the record belongs to — independent accumulators see the
  // same value sequences the batch path feeds them.
  const double stretch = stretch_of(r);
  const double turnaround = r.turnaround();
  const double wait = r.wait_time();
  all_.stretch.add(stretch);
  all_.turnaround.add(turnaround);
  all_.wait.add(wait);
  ClassAcc& cls = r.redundant ? redundant_ : non_redundant_;
  cls.stretch.add(stretch);
  cls.turnaround.add(turnaround);
  cls.wait.add(wait);
  if (r.has_prediction() && wait >= min_wait_) {
    const double predicted_wait =
        std::max(0.0, r.predicted_start - r.submit_time);
    const double ratio = predicted_wait / wait;
    ratio_all_.add(ratio);
    (r.redundant ? ratio_redundant_ : ratio_non_redundant_).add(ratio);
  }
  p50_.add(stretch);
  p90_.add(stretch);
  p99_.add(stretch);
}

void OnlineAccumulator::merge(const OnlineAccumulator& other) noexcept {
  all_.stretch.merge(other.all_.stretch);
  all_.turnaround.merge(other.all_.turnaround);
  all_.wait.merge(other.all_.wait);
  redundant_.stretch.merge(other.redundant_.stretch);
  redundant_.turnaround.merge(other.redundant_.turnaround);
  redundant_.wait.merge(other.redundant_.wait);
  non_redundant_.stretch.merge(other.non_redundant_.stretch);
  non_redundant_.turnaround.merge(other.non_redundant_.turnaround);
  non_redundant_.wait.merge(other.non_redundant_.wait);
  ratio_all_.merge(other.ratio_all_);
  ratio_redundant_.merge(other.ratio_redundant_);
  ratio_non_redundant_.merge(other.ratio_non_redundant_);
  p50_.merge_from(other.p50_);
  p90_.merge_from(other.p90_);
  p99_.merge_from(other.p99_);
}

void OnlineAccumulator::reset() noexcept {
  *this = OnlineAccumulator(min_wait_);
}

ScheduleMetrics OnlineAccumulator::to_metrics(const ClassAcc& acc) noexcept {
  ScheduleMetrics m;
  m.jobs = acc.stretch.count();
  if (m.jobs == 0) return m;
  m.avg_stretch = acc.stretch.mean();
  m.cv_stretch_percent = acc.stretch.cv_percent();
  m.max_stretch = acc.stretch.max();
  m.avg_turnaround = acc.turnaround.mean();
  m.avg_wait = acc.wait.mean();
  return m;
}

ScheduleMetrics OnlineAccumulator::metrics() const noexcept {
  return to_metrics(all_);
}

ClassifiedMetrics OnlineAccumulator::classified() const noexcept {
  ClassifiedMetrics out;
  out.all = to_metrics(all_);
  out.redundant = to_metrics(redundant_);
  out.non_redundant = to_metrics(non_redundant_);
  return out;
}

PredictionAccuracy OnlineAccumulator::prediction(
    std::optional<bool> redundant_only) const noexcept {
  const util::OnlineStats& ratios =
      !redundant_only ? ratio_all_
                      : (*redundant_only ? ratio_redundant_
                                         : ratio_non_redundant_);
  PredictionAccuracy acc;
  acc.jobs = ratios.count();
  if (acc.jobs == 0) return acc;
  acc.avg_ratio = ratios.mean();
  acc.cv_ratio_percent = ratios.cv_percent();
  return acc;
}

}  // namespace rrsim::metrics
