// Streaming (constant-memory) metrics: everything the batch pipeline in
// summary.h computes from a retained JobRecord vector, computed instead
// from a one-pass accumulator fed per finished job. Feeding records in
// the same order the gateway would have appended them reproduces the
// batch results bit-identically for every mean/CV/max (the batch path is
// itself a sequence of util::OnlineStats::add calls in record order); the
// quantile sketch is the one genuinely approximate extension.
//
// This is what unlocks the ROADMAP's grid-scale campaigns: a 10^6-job run
// needs ~500 bytes of metric state instead of ~100 MB of records.
#pragma once

#include <array>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <optional>

#include "rrsim/metrics/record.h"
#include "rrsim/metrics/summary.h"
#include "rrsim/util/stats.h"

namespace rrsim::metrics {

/// Compact per-job record for the streaming path: 32-bit grid id, 16-bit
/// cluster indices, and a NaN sentinel instead of optional<double> — 56
/// bytes against JobRecord's ~104. All time fields stay full doubles, so
/// every metric derived from a JobRecord32 is bit-identical to the same
/// metric derived from the JobRecord it was compacted from
/// (requested_time is dropped: no metric reads it).
struct JobRecord32 {
  double submit_time = 0.0;
  double start_time = 0.0;
  double finish_time = 0.0;
  double actual_time = 1.0;
  /// Queue-wait prediction made at submit time; NaN when none was
  /// recorded (predictions are real start times, never NaN themselves).
  double predicted_start = std::numeric_limits<double>::quiet_NaN();
  std::uint32_t grid_id = 0;
  std::uint16_t origin_cluster = 0;
  std::uint16_t winner_cluster = 0;
  std::uint16_t nodes = 1;
  std::uint8_t replicas = 1;
  std::uint8_t replicas_delivered = 1;
  bool redundant = false;

  double wait_time() const noexcept { return start_time - submit_time; }
  double turnaround() const noexcept { return finish_time - submit_time; }
  bool has_prediction() const noexcept { return !std::isnan(predicted_start); }
};
static_assert(sizeof(JobRecord32) <= 56, "JobRecord32 grew past 56 bytes");

/// Narrows a full record (saturating the id/counter fields).
JobRecord32 compact(const JobRecord& r) noexcept;

/// Stretch with the same 1 s denominator clamp as stretch_of(JobRecord).
double stretch_of(const JobRecord32& r) noexcept;

/// Single-quantile streaming estimator (Jain & Chlamtac's P² algorithm):
/// five markers tracking the target quantile and its neighbourhood,
/// adjusted with a piecewise-parabolic update — O(1) memory and time per
/// observation. Exact for the first five observations; afterwards the
/// estimate converges with O(1/sqrt(n)) rank error on smooth
/// distributions.
class P2Quantile {
 public:
  /// `q` in (0, 1).
  explicit P2Quantile(double q);

  void add(double x) noexcept;

  /// Current estimate. With fewer than five observations, the exact
  /// linear-interpolated quantile of what was seen (matching
  /// util::quantile); 0 if empty.
  double value() const noexcept;

  std::size_t count() const noexcept { return n_; }
  double quantile() const noexcept { return q_; }

  /// Approximate merge: replays the other sketch's marker heights (its
  /// five-point distribution summary) as observations. Exact while the
  /// other side has fewer than five observations (the markers then *are*
  /// the raw sample); a coarse but order-preserving summary afterwards.
  void merge_from(const P2Quantile& other) noexcept;

 private:
  double q_;
  std::size_t n_ = 0;
  std::array<double, 5> heights_{};   // marker heights, ascending
  std::array<double, 5> pos_{};       // marker positions (1-based ranks)
  std::array<double, 5> desired_{};   // desired positions
  std::array<double, 5> rate_{};      // desired-position increments
};

/// One-pass replacement for compute_metrics / compute_classified_metrics /
/// compute_prediction_accuracy over a retained record vector. Feed every
/// finished job once, in finish order; results for mean/CV/max are then
/// bit-identical to the batch functions over the records that would have
/// been retained. merge() combines per-repetition accumulators (parallel
/// Welford merge — exact counts/max, means within rounding of the pooled
/// sequential result; sketches are combined approximately by replaying
/// the other side's five marker heights).
class OnlineAccumulator {
 public:
  /// `min_wait`: the prediction-ratio wait threshold, matching
  /// compute_prediction_accuracy's default of 1 s.
  explicit OnlineAccumulator(double min_wait = 1.0);

  void add(const JobRecord32& r) noexcept;
  void add(const JobRecord& r) noexcept { add(compact(r)); }

  void merge(const OnlineAccumulator& other) noexcept;

  /// Back to the just-constructed state (min_wait kept).
  void reset() noexcept;

  /// Finished jobs accumulated so far.
  std::size_t jobs() const noexcept { return all_.stretch.count(); }

  /// Equivalent of compute_metrics over the fed records.
  ScheduleMetrics metrics() const noexcept;

  /// Equivalent of compute_classified_metrics.
  ClassifiedMetrics classified() const noexcept;

  /// Equivalent of compute_prediction_accuracy(records, redundant_only,
  /// min_wait).
  PredictionAccuracy prediction(
      std::optional<bool> redundant_only = std::nullopt) const noexcept;

  /// Streaming stretch-distribution extensions (approximate, see class
  /// comment).
  double stretch_p50() const noexcept { return p50_.value(); }
  double stretch_p90() const noexcept { return p90_.value(); }
  double stretch_p99() const noexcept { return p99_.value(); }

 private:
  struct ClassAcc {
    util::OnlineStats stretch;
    util::OnlineStats turnaround;
    util::OnlineStats wait;
  };

  static ScheduleMetrics to_metrics(const ClassAcc& acc) noexcept;

  double min_wait_;
  ClassAcc all_;
  ClassAcc redundant_;
  ClassAcc non_redundant_;
  util::OnlineStats ratio_all_;
  util::OnlineStats ratio_redundant_;
  util::OnlineStats ratio_non_redundant_;
  P2Quantile p50_{0.50};
  P2Quantile p90_{0.90};
  P2Quantile p99_{0.99};
};

}  // namespace rrsim::metrics
