// Schedule-quality metrics over a set of job records: the paper's two
// headline metrics (average stretch, coefficient of variation of
// stretches) plus the robustness variants it reports in prose (average
// turnaround, maximum stretch), computed overall and split by job class
// (redundant vs. non-redundant).
#pragma once

#include <span>

#include "rrsim/metrics/record.h"

namespace rrsim::metrics {

/// Aggregate metrics over one simulation's completed jobs.
struct ScheduleMetrics {
  std::size_t jobs = 0;
  double avg_stretch = 0.0;
  double cv_stretch_percent = 0.0;  ///< fairness: stddev/mean of stretches
  double max_stretch = 0.0;         ///< alternative fairness metric
  double avg_turnaround = 0.0;
  double avg_wait = 0.0;
};

/// Metrics for the whole population and for each class (Fig 4 needs the
/// split; r = jobs using redundant requests, nr = jobs not using them).
struct ClassifiedMetrics {
  ScheduleMetrics all;
  ScheduleMetrics redundant;      ///< "r jobs"
  ScheduleMetrics non_redundant;  ///< "n-r jobs"
};

/// Computes metrics over `records`; empty input gives all-zero metrics.
ScheduleMetrics compute_metrics(std::span<const JobRecord> records);

/// Computes the per-class split.
ClassifiedMetrics compute_classified_metrics(
    std::span<const JobRecord> records);

/// Prediction-accuracy statistics (Table 4): over-estimation ratio
/// predicted_wait / actual_wait per job, for jobs with a recorded
/// prediction and an actual wait above `min_wait` seconds (ratios are
/// undefined at zero wait; the paper's CBF predictor never predicts a
/// start before `now`, so predicted waits are >= 0).
struct PredictionAccuracy {
  std::size_t jobs = 0;          ///< jobs contributing a ratio
  double avg_ratio = 0.0;        ///< mean over-estimation factor
  double cv_ratio_percent = 0.0; ///< CV of the ratios, percent
};

/// `which`: compute over all jobs (nullopt), only redundant (true), or
/// only non-redundant (false).
PredictionAccuracy compute_prediction_accuracy(
    std::span<const JobRecord> records,
    std::optional<bool> redundant_only = std::nullopt,
    double min_wait = 1.0);

}  // namespace rrsim::metrics
