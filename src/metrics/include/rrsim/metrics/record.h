// Per-job outcome records — the raw material for every metric in the
// paper: stretch, turnaround, fairness (CV of stretches), and the
// prediction-accuracy ratios of Section 5.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace rrsim::metrics {

/// Outcome of one *grid* job (one user job, however many replicas it had).
struct JobRecord {
  std::uint64_t grid_id = 0;
  std::size_t origin_cluster = 0;
  std::size_t winner_cluster = 0;  ///< where it actually ran
  bool redundant = false;  ///< did the user send redundant requests?
  int replicas = 1;        ///< requests the user *sent* (intent)
  int replicas_delivered = 1;  ///< requests that actually reached a
                               ///< scheduler (drops/limit rejections
                               ///< excluded)
  int nodes = 1;
  double submit_time = 0.0;
  double start_time = 0.0;
  double finish_time = 0.0;
  double actual_time = 1.0;
  double requested_time = 1.0;
  /// Queue-wait prediction made at submit time (min over replicas for
  /// redundant jobs), when prediction recording was enabled.
  std::optional<double> predicted_start;

  double wait_time() const noexcept { return start_time - submit_time; }
  double turnaround() const noexcept { return finish_time - submit_time; }
};

using JobRecords = std::vector<JobRecord>;

/// Stretch (slowdown): turnaround / execution time, with the standard 1 s
/// clamp on the denominator so sub-second jobs cannot blow the metric up.
double stretch_of(const JobRecord& r) noexcept;

}  // namespace rrsim::metrics
