// Queue-length observation over simulated time — used for the Section 4.1
// checks: queue growth per hour at the raw peak arrival rate, and the
// max-queue-size comparison between the ALL scheme and no redundancy.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "rrsim/des/simulation.h"

namespace rrsim::metrics {

/// Periodically samples a set of queue-length probes on a simulation.
class QueueTracker {
 public:
  /// A probe returns the current queue length of one cluster.
  // rrsim-lint-allow(std-function-member): installed once per run and
  // called once per sampling interval (seconds of simulated time apart);
  // the std::size_t() signature rules out InlineFunction (void() only).
  using Probe = std::function<std::size_t()>;

  /// Samples every `interval` simulated seconds, starting at `interval`,
  /// while the simulation keeps running. Throws std::invalid_argument on
  /// non-positive interval.
  QueueTracker(des::Simulation& sim, std::vector<Probe> probes,
               double interval, double horizon);

  /// Largest queue length ever sampled for cluster `i`.
  std::size_t max_length(std::size_t i) const;

  /// Mean of per-cluster maxima — the paper's "average maximum queue size
  /// across all clusters".
  double avg_max_length() const;

  /// Sampled series for cluster `i`: (time, length) pairs.
  const std::vector<std::pair<double, std::size_t>>& series(
      std::size_t i) const;

  /// Least-squares growth rate of cluster `i`'s queue length, in jobs per
  /// hour (the §4.1 "~700 jobs/hour" figure).
  double growth_per_hour(std::size_t i) const;

 private:
  void sample();

  des::Simulation& sim_;
  std::vector<Probe> probes_;
  double interval_;
  double horizon_;
  std::vector<std::vector<std::pair<double, std::size_t>>> series_;
};

}  // namespace rrsim::metrics
