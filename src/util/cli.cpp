#include "rrsim/util/cli.h"

#include <stdexcept>

namespace rrsim::util {

namespace {

bool looks_like_flag(const std::string& s) {
  return s.size() > 2 && s[0] == '-' && s[1] == '-';
}

}  // namespace

Cli::Cli(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!looks_like_flag(arg)) {
      throw std::invalid_argument("unexpected positional argument: " + arg);
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    std::string key;
    std::string value;
    if (eq != std::string::npos) {
      key = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else {
      key = arg;
      // `--key value` form: consume the next token if it is not a flag.
      if (i + 1 < argc && !looks_like_flag(argv[i + 1])) {
        value = argv[++i];
      }
    }
    if (key.empty()) throw std::invalid_argument("empty flag name");
    values_[key] = value;
    seen_.push_back(key);
  }
}

bool Cli::has(const std::string& name) const {
  return values_.find(name) != values_.end();
}

std::optional<std::string> Cli::raw(const std::string& name) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string Cli::get_string(const std::string& name,
                            const std::string& fallback) const {
  const auto v = raw(name);
  return v ? *v : fallback;
}

std::int64_t Cli::get_int(const std::string& name,
                          std::int64_t fallback) const {
  const auto v = raw(name);
  if (!v) return fallback;
  try {
    std::size_t pos = 0;
    const std::int64_t out = std::stoll(*v, &pos);
    if (pos != v->size()) throw std::invalid_argument("trailing chars");
    return out;
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + name + " expects an integer, got '" +
                                *v + "'");
  }
}

double Cli::get_double(const std::string& name, double fallback) const {
  const auto v = raw(name);
  if (!v) return fallback;
  try {
    std::size_t pos = 0;
    const double out = std::stod(*v, &pos);
    if (pos != v->size()) throw std::invalid_argument("trailing chars");
    return out;
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + name + " expects a number, got '" +
                                *v + "'");
  }
}

bool Cli::get_bool(const std::string& name, bool fallback) const {
  const auto v = raw(name);
  if (!v) return fallback;
  if (v->empty() || *v == "true" || *v == "1" || *v == "yes") return true;
  if (*v == "false" || *v == "0" || *v == "no") return false;
  throw std::invalid_argument("flag --" + name + " expects a boolean, got '" +
                              *v + "'");
}

}  // namespace rrsim::util
