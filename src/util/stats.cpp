#include "rrsim/util/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rrsim::util {

void OnlineStats::add(double x) noexcept {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  max_ = std::max(max_, x);
  min_ = std::min(min_, x);
}

double OnlineStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double OnlineStats::stddev() const noexcept { return std::sqrt(variance()); }

double OnlineStats::cv_percent() const noexcept {
  const double m = mean();
  return m != 0.0 ? stddev() / m * 100.0 : 0.0;
}

void OnlineStats::merge(const OnlineStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  sum_ += other.sum_;
  max_ = std::max(max_, other.max_);
  min_ = std::min(min_, other.min_);
}

Summary summarize(std::span<const double> xs) noexcept {
  OnlineStats acc;
  for (const double x : xs) acc.add(x);
  Summary s;
  s.count = acc.count();
  if (s.count == 0) return s;
  s.mean = acc.mean();
  s.stddev = acc.stddev();
  s.cv_percent = acc.cv_percent();
  s.min = acc.min();
  s.max = acc.max();
  return s;
}

double quantile(std::span<const double> xs, double q) {
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile q in [0,1]");
  if (xs.empty()) return 0.0;
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  const double pos = q * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return v[lo] + frac * (v[hi] - v[lo]);
}

double mean_of(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (const double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

std::vector<double> elementwise_ratio(std::span<const double> a,
                                      std::span<const double> b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("elementwise_ratio requires equal sizes");
  }
  std::vector<double> out;
  out.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (b[i] != 0.0) out.push_back(a[i] / b[i]);
  }
  return out;
}

}  // namespace rrsim::util
