// Descriptive statistics used throughout the metrics pipeline.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace rrsim::util {

/// Streaming mean/variance accumulator (Welford's algorithm), numerically
/// stable for the long, skewed stretch series the simulator produces.
class OnlineStats {
 public:
  /// Adds one observation.
  void add(double x) noexcept;

  /// Number of observations added.
  std::size_t count() const noexcept { return n_; }

  /// Arithmetic mean; 0 if empty.
  double mean() const noexcept { return n_ ? mean_ : 0.0; }

  /// Unbiased sample variance; 0 if fewer than two observations.
  double variance() const noexcept;

  /// Sample standard deviation.
  double stddev() const noexcept;

  /// Coefficient of variation in percent (stddev / mean * 100), the paper's
  /// fairness metric; 0 if the mean is 0 or the sample is empty.
  double cv_percent() const noexcept;

  /// Largest observation; -inf if empty.
  double max() const noexcept { return max_; }

  /// Smallest observation; +inf if empty.
  double min() const noexcept { return min_; }

  /// Sum of all observations.
  double sum() const noexcept { return sum_; }

  /// Merges another accumulator into this one (parallel Welford merge).
  void merge(const OnlineStats& other) noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double max_ = -1.0 / 0.0;
  double min_ = 1.0 / 0.0;
};

/// Summary of a sample, computed in one pass over a span.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double cv_percent = 0.0;
  double min = 0.0;
  double max = 0.0;
};

/// Computes the Summary of `xs`; all-zero Summary for an empty span.
Summary summarize(std::span<const double> xs) noexcept;

/// Linear-interpolated quantile (q in [0, 1]) of `xs`; `xs` is copied and
/// sorted internally. Returns 0 for an empty span.
double quantile(std::span<const double> xs, double q);

/// Arithmetic mean of `xs`; 0 for an empty span.
double mean_of(std::span<const double> xs) noexcept;

/// Element-wise ratio a[i] / b[i]. Requires equal sizes; entries where
/// b[i] == 0 are skipped.
std::vector<double> elementwise_ratio(std::span<const double> a,
                                      std::span<const double> b);

}  // namespace rrsim::util
