// Type-erased callables that keep the hot paths off the heap.
//
//  * InlineFunction<N> — never allocates: the callable lives in a fixed
//    N-byte inline buffer and over-sized captures are rejected at compile
//    time. This is the DES kernel's callback type: scheduling an event
//    writes the capture into the event slab slot and nothing else.
//  * TaskFunction — move-only std::function replacement for the thread
//    pool: small-buffer-optimized with a heap fallback for large
//    captures, so typical pool tasks enqueue without allocating while
//    arbitrary ones still work.
//
// Both are move-only (moving transfers the erased callable; the source
// becomes empty) and require nothrow-move-constructible callables so the
// containers holding them can relocate without exception-safety holes.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace rrsim::util {

/// Fixed-capacity, non-allocating move-only callable with signature
/// void(). sizeof(InlineFunction<N>) == N + 2 pointers.
template <std::size_t Capacity>
class InlineFunction {
 public:
  InlineFunction() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFunction>>>
  InlineFunction(F&& f) {  // NOLINT: implicit like std::function
    using Fn = std::decay_t<F>;
    static_assert(sizeof(Fn) <= Capacity,
                  "callable capture exceeds the inline buffer; shrink the "
                  "capture (capture pointers/indices, not objects) or raise "
                  "the owner's capacity");
    static_assert(alignof(Fn) <= alignof(std::max_align_t),
                  "callable over-aligned for the inline buffer");
    static_assert(std::is_nothrow_move_constructible_v<Fn>,
                  "callable must be nothrow move constructible");
    ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
    invoke_ = [](void* p) { (*static_cast<Fn*>(p))(); };
    manage_ = [](void* dst, void* src) noexcept {
      Fn* s = static_cast<Fn*>(src);
      if (dst != nullptr) ::new (dst) Fn(std::move(*s));
      s->~Fn();
    };
  }

  InlineFunction(InlineFunction&& other) noexcept { move_from(other); }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  InlineFunction& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { reset(); }

  explicit operator bool() const noexcept { return invoke_ != nullptr; }

  void operator()() { invoke_(buf_); }

  void reset() noexcept {
    if (manage_ != nullptr) {
      manage_(nullptr, buf_);  // destroy in place
      invoke_ = nullptr;
      manage_ = nullptr;
    }
  }

 private:
  void move_from(InlineFunction& other) noexcept {
    if (other.manage_ != nullptr) {
      other.manage_(buf_, other.buf_);  // move-construct, destroy source
      invoke_ = other.invoke_;
      manage_ = other.manage_;
      other.invoke_ = nullptr;
      other.manage_ = nullptr;
    }
  }

  void (*invoke_)(void*) = nullptr;
  /// dst == nullptr: destroy src in place. Otherwise move-construct the
  /// callable into dst and destroy src (a single "relocate" operation).
  void (*manage_)(void* dst, void* src) noexcept = nullptr;
  alignas(std::max_align_t) unsigned char buf_[Capacity];
};

/// Move-only void() callable with small-buffer optimization and a heap
/// fallback: the thread pool's task type. Unlike std::function it never
/// requires copyability, so tasks can own move-only resources.
class TaskFunction {
 public:
  static constexpr std::size_t kInlineCapacity = 48;

  TaskFunction() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, TaskFunction>>>
  TaskFunction(F&& f) {  // NOLINT: implicit like std::function
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineCapacity &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      invoke_ = [](TaskFunction& self) {
        (*static_cast<Fn*>(static_cast<void*>(self.buf_)))();
      };
      manage_ = [](TaskFunction* dst, TaskFunction& src) noexcept {
        Fn* s = static_cast<Fn*>(static_cast<void*>(src.buf_));
        if (dst != nullptr) {
          ::new (static_cast<void*>(dst->buf_)) Fn(std::move(*s));
        }
        s->~Fn();
      };
    } else {
      heap_ = new Fn(std::forward<F>(f));
      invoke_ = [](TaskFunction& self) {
        (*static_cast<Fn*>(self.heap_))();
      };
      manage_ = [](TaskFunction* dst, TaskFunction& src) noexcept {
        if (dst != nullptr) {
          dst->heap_ = src.heap_;
        } else {
          delete static_cast<Fn*>(src.heap_);
        }
        src.heap_ = nullptr;
      };
    }
  }

  TaskFunction(TaskFunction&& other) noexcept { move_from(other); }

  TaskFunction& operator=(TaskFunction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  TaskFunction(const TaskFunction&) = delete;
  TaskFunction& operator=(const TaskFunction&) = delete;

  ~TaskFunction() { reset(); }

  explicit operator bool() const noexcept { return invoke_ != nullptr; }

  void operator()() { invoke_(*this); }

  void reset() noexcept {
    if (manage_ != nullptr) {
      manage_(nullptr, *this);
      invoke_ = nullptr;
      manage_ = nullptr;
    }
  }

 private:
  void move_from(TaskFunction& other) noexcept {
    if (other.manage_ != nullptr) {
      other.manage_(this, other);
      invoke_ = other.invoke_;
      manage_ = other.manage_;
      other.invoke_ = nullptr;
      other.manage_ = nullptr;
    }
  }

  void (*invoke_)(TaskFunction&) = nullptr;
  /// dst == nullptr: destroy/release src. Otherwise transfer the callable
  /// from src to dst (inline: move-construct + destroy; heap: pointer
  /// hand-off) without touching dst's previous state.
  void (*manage_)(TaskFunction* dst, TaskFunction& src) noexcept = nullptr;
  union {
    alignas(std::max_align_t) unsigned char buf_[kInlineCapacity];
    void* heap_;
  };
};

}  // namespace rrsim::util
