// Deterministic pseudo-random number generation for rrsim.
//
// All randomness in a simulation flows from a single 64-bit seed through
// instances of Pcg64 so that experiments are bit-reproducible across
// platforms and compilers (we deliberately avoid std::mt19937 +
// std::*_distribution, whose outputs are implementation-defined).
#pragma once

#include <cstdint>
#include <limits>
#include <utility>

namespace rrsim::util {

/// Permuted congruential generator (PCG XSH-RR 64/32, O'Neill 2014).
///
/// 64-bit state, 32-bit output, period 2^64 per stream. Two constructor
/// parameters (seed, stream) select independent sequences; distinct stream
/// ids yield statistically independent generators, which rrsim uses to give
/// each cluster / model component its own substream of a master seed.
class Pcg32 {
 public:
  using result_type = std::uint32_t;

  /// Seeds the generator. `stream` selects one of 2^63 independent
  /// sequences; the same (seed, stream) pair always produces the same
  /// output sequence.
  explicit Pcg32(std::uint64_t seed = 0x853c49e6748fea9bULL,
                 std::uint64_t stream = 0xda3e39cb94b95bdbULL) noexcept {
    state_ = 0u;
    inc_ = (stream << 1u) | 1u;
    next();
    state_ += seed;
    next();
  }

  /// Returns the next 32 bits of the stream.
  result_type next() noexcept {
    const std::uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    const auto xorshifted =
        static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
    const auto rot = static_cast<std::uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
  }

  result_type operator()() noexcept { return next(); }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Raw generator state / increment. Together they determine the entire
  /// future output sequence exactly, which makes them usable as cache keys
  /// for "everything this generator would produce from here".
  std::uint64_t state() const noexcept { return state_; }
  std::uint64_t increment() const noexcept { return inc_; }

  /// Rebuilds a generator from a previously captured (state, increment)
  /// pair: the restored generator continues the captured generator's
  /// output sequence exactly (no re-seeding scramble is applied).
  static Pcg32 from_state(std::uint64_t state,
                          std::uint64_t increment) noexcept {
    Pcg32 g;
    g.state_ = state;
    g.inc_ = increment;
    return g;
  }

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
};

/// rrsim's random-number engine: 64-bit outputs built from two Pcg32 draws,
/// plus the convenience samplers every model in the codebase needs.
class Rng {
 public:
  /// (seed, stream) selects a reproducible sequence; see Pcg32.
  explicit Rng(std::uint64_t seed = 1, std::uint64_t stream = 0) noexcept
      : gen_(seed, 0x9e3779b97f4a7c15ULL ^ stream) {}

  using result_type = std::uint64_t;

  /// Next 64 uniformly random bits.
  result_type next_u64() noexcept {
    const std::uint64_t hi = gen_.next();
    return (hi << 32) | gen_.next();
  }

  result_type operator()() noexcept { return next_u64(); }
  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform01() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform01();
  }

  /// Uniform integer in [0, n). Requires n > 0. Uses Lemire's unbiased
  /// multiply-shift rejection method.
  std::uint64_t below(std::uint64_t n) noexcept {
    // Rejection loop terminates quickly for all n.
    const std::uint64_t threshold = (0 - n) % n;
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) return r % n;
    }
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t between(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Bernoulli trial: true with probability p (clamped to [0,1]).
  bool chance(double p) noexcept { return uniform01() < p; }

  /// Derives an independent generator for a subcomponent. Each distinct
  /// `substream` gives a sequence uncorrelated with this one.
  Rng fork(std::uint64_t substream) noexcept {
    return Rng(next_u64() ^ (substream * 0xbf58476d1ce4e5b9ULL),
               substream + 1);
  }

  /// Exact (state, increment) fingerprint of this generator: two Rngs with
  /// equal fingerprints produce identical output forever. Used as a cache
  /// key for deterministically generated data (see workload::TraceCache).
  std::pair<std::uint64_t, std::uint64_t> fingerprint() const noexcept {
    return {gen_.state(), gen_.increment()};
  }

  /// Rebuilds an Rng from a fingerprint(): the restored generator produces
  /// the fingerprinted generator's future output exactly. This is what
  /// makes generator checkpoints (workload::StreamCheckpoint) seekable —
  /// capture fingerprints mid-stream, restore later, regenerate the same
  /// suffix.
  static Rng from_fingerprint(
      std::pair<std::uint64_t, std::uint64_t> fp) noexcept {
    Rng r;
    r.gen_ = Pcg32::from_state(fp.first, fp.second);
    return r;
  }

 private:
  Pcg32 gen_;
};

}  // namespace rrsim::util
