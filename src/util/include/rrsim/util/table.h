// Plain-text and CSV table rendering for the bench harnesses, which print
// the paper's tables/figure series as aligned text plus a machine-readable
// CSV block.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace rrsim::util {

/// A simple column-aligned table. Cells are strings; numeric helpers format
/// with fixed precision. Render as aligned text or CSV.
class Table {
 public:
  /// Creates a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Starts a new row; subsequent add_* calls fill it left to right.
  Table& begin_row();

  /// Appends a string cell to the current row.
  Table& add(std::string cell);

  /// Appends a numeric cell formatted with `precision` decimal digits.
  Table& add(double value, int precision = 2);

  /// Appends an integer cell.
  Table& add(long long value);

  /// Number of data rows.
  std::size_t rows() const noexcept { return rows_.size(); }

  /// Renders the table as aligned monospace text.
  std::string to_text() const;

  /// Renders the table as CSV (header row + data rows).
  std::string to_csv() const;

  /// Writes text rendering followed by a "# CSV" block to `os`.
  void print(std::ostream& os, bool with_csv = true) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats `value` with `precision` decimal digits (fixed notation).
std::string format_fixed(double value, int precision);

}  // namespace rrsim::util
