// Minimal command-line flag parser shared by the bench and example
// binaries. Supports `--key=value`, `--key value`, and boolean `--flag`.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace rrsim::util {

/// Parsed command line. Unknown flags are collected rather than rejected so
/// harnesses can share common options and add their own.
class Cli {
 public:
  /// Parses argv. Throws std::invalid_argument on malformed input
  /// (e.g. a non-flag positional argument or `--key=` with empty key).
  Cli(int argc, const char* const* argv);

  /// True if `--name` was present (with or without a value).
  bool has(const std::string& name) const;

  /// String value of `--name`, or `fallback` if absent.
  std::string get_string(const std::string& name,
                         const std::string& fallback) const;

  /// Integer value of `--name`, or `fallback` if absent.
  /// Throws std::invalid_argument if present but not an integer.
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;

  /// Floating-point value of `--name`, or `fallback` if absent.
  double get_double(const std::string& name, double fallback) const;

  /// Boolean: `--name` alone, or `--name=true/false/1/0/yes/no`.
  bool get_bool(const std::string& name, bool fallback) const;

  /// Program name (argv[0]).
  const std::string& program() const noexcept { return program_; }

  /// All flags seen, in order, for diagnostics.
  const std::vector<std::string>& seen() const noexcept { return seen_; }

 private:
  std::optional<std::string> raw(const std::string& name) const;

  std::string program_;
  std::map<std::string, std::string> values_;  // flag -> value ("" if bare)
  std::vector<std::string> seen_;
};

}  // namespace rrsim::util
