// Random-variate samplers used by the workload models.
//
// Implemented from first principles (Marsaglia–Tsang for gamma, polar
// Box–Muller for normals) so that sampled sequences are identical on every
// platform for a given seed — std::gamma_distribution et al. are
// implementation-defined and would break reproducibility.
#pragma once

#include <stdexcept>

#include "rrsim/util/rng.h"

namespace rrsim::util {

/// Standard normal variate (mean 0, variance 1), polar Box–Muller.
double sample_normal(Rng& rng);

/// Exponential variate with the given mean (> 0).
double sample_exponential(Rng& rng, double mean);

/// Gamma variate with shape `alpha` (> 0) and scale `beta` (> 0);
/// mean = alpha * beta. Marsaglia–Tsang squeeze method, with the Ahrens-
/// style boost for alpha < 1.
double sample_gamma(Rng& rng, double alpha, double beta);

/// Parameters of a hyper-gamma distribution: a mixture of two gamma
/// distributions, Gamma(a1, b1) with probability `p` and Gamma(a2, b2)
/// with probability 1 - p.
struct HyperGammaParams {
  double a1 = 1.0;
  double b1 = 1.0;
  double a2 = 1.0;
  double b2 = 1.0;
  double p = 0.5;  ///< probability of the first component, in [0, 1]
};

/// Hyper-gamma variate (mixture of two gammas). Throws std::invalid_argument
/// on non-positive shapes/scales or p outside [0, 1].
double sample_hyper_gamma(Rng& rng, const HyperGammaParams& params);

/// Parameters of the two-stage uniform distribution used by the
/// Lublin–Feitelson model for log2(job size): with probability `prob`
/// the variate is Uniform(low, med), otherwise Uniform(med, high).
struct TwoStageUniformParams {
  double low = 0.0;
  double med = 0.5;
  double high = 1.0;
  double prob = 0.5;  ///< probability of the lower stage, in [0, 1]
};

/// Two-stage uniform variate. Throws std::invalid_argument unless
/// low <= med <= high and prob in [0, 1].
double sample_two_stage_uniform(Rng& rng, const TwoStageUniformParams& params);

/// Mean of the two-stage uniform distribution (closed form).
constexpr double two_stage_uniform_mean(
    const TwoStageUniformParams& p) noexcept {
  return p.prob * (p.low + p.med) / 2.0 + (1.0 - p.prob) * (p.med + p.high) / 2.0;
}

}  // namespace rrsim::util
