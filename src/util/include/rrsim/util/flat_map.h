// Flat associative containers for the per-job/per-event hot paths.
//
// The kernel overhaul replaced every tree/hash map on the schedule →
// dispatch path with one of three cache-friendly layouts:
//
//  * FlatHashMap    — open-addressing hash map (linear probing, backward-
//                     shift deletion, power-of-two capacity). One flat
//                     array of slots, no per-node allocation, no
//                     tombstones. Iteration order is unspecified; use it
//                     only where iteration order cannot reach results
//                     (lifecycle indexes, id -> position maps).
//  * FlatOrderedMap — sorted vector keyed by K. Iteration is key order,
//                     which the profile-rebuild paths depend on for
//                     bit-identical floating-point reservation order.
//                     O(log n) find, O(n) insert/erase — intended for
//                     small populations (the running set is bounded by
//                     the node count).
//  * DenseIdMap     — direct-indexed vector for keys the owner allocates
//                     densely from 0/1 upward (the gateway's replica
//                     ids). O(1) everything, one flag byte per id.
//
// All three keep their storage across clear(), so a reused scheduler or
// gateway runs its next experiment with warm arenas.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <utility>
#include <vector>

namespace rrsim::util {

/// SplitMix64 finalizer: integer ids here are sequential (job ids,
/// replica ids, user ids), which is the worst case for power-of-two
/// masking without mixing.
inline std::uint64_t hash_mix(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Default hasher for FlatHashMap: mixes any integral key.
struct IntHash {
  template <typename K>
  std::uint64_t operator()(K key) const noexcept {
    return hash_mix(static_cast<std::uint64_t>(key));
  }
};

/// Open-addressing hash map with linear probing and backward-shift
/// deletion. V must be default-constructible and move-assignable (empty
/// slots hold a default V); K must be an integral id type.
template <typename K, typename V, typename Hash = IntHash>
class FlatHashMap {
 public:
  struct Slot {
    K key;
    V value;
  };

  FlatHashMap() = default;

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  /// Drops all entries but keeps the slot array allocated.
  void clear() noexcept {
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (used_[i]) {
        slots_[i].value = V{};  // release resources held by values
        used_[i] = 0;
      }
    }
    size_ = 0;
  }

  /// Pre-sizes the table for `n` entries without rehashing on the way.
  void reserve(std::size_t n) {
    std::size_t want = 16;
    while (want * 3 / 4 < n) want *= 2;
    if (want > slots_.size()) rehash(want);
  }

  V* find(const K& key) noexcept {
    if (slots_.empty()) return nullptr;
    const std::size_t idx = find_index(key);
    return idx == npos ? nullptr : &slots_[idx].value;
  }
  const V* find(const K& key) const noexcept {
    return const_cast<FlatHashMap*>(this)->find(key);
  }

  bool contains(const K& key) const noexcept { return find(key) != nullptr; }

  /// Returns the value for `key`, which must be present.
  V& at(const K& key) {
    V* v = find(key);
    if (v == nullptr) throw std::out_of_range("FlatHashMap::at: missing key");
    return *v;
  }
  const V& at(const K& key) const {
    return const_cast<FlatHashMap*>(this)->at(key);
  }

  /// Inserts default V if absent (std::map::operator[] semantics).
  V& operator[](const K& key) { return *try_emplace(key, V{}).value; }

  struct InsertResult {
    V* value;
    bool inserted;
  };

  /// Inserts (key, value) if the key is absent; returns the slot either
  /// way. Pointers are invalidated by any later insert or erase.
  InsertResult try_emplace(const K& key, V value) {
    if (slots_.empty() || (size_ + 1) * 4 > slots_.size() * 3) {
      rehash(slots_.empty() ? 16 : slots_.size() * 2);
    }
    std::size_t i = Hash{}(key)&mask_;
    for (;;) {
      if (!used_[i]) {
        used_[i] = 1;
        slots_[i].key = key;
        slots_[i].value = std::move(value);
        ++size_;
        return {&slots_[i].value, true};
      }
      if (slots_[i].key == key) return {&slots_[i].value, false};
      i = (i + 1) & mask_;
    }
  }

  /// Removes `key` if present. Backward-shift deletion: later entries of
  /// the probe chain move up, so lookups never scan tombstones.
  bool erase(const K& key) noexcept {
    if (slots_.empty()) return false;
    std::size_t i = find_index(key);
    if (i == npos) return false;
    std::size_t hole = i;
    for (std::size_t j = (hole + 1) & mask_; used_[j]; j = (j + 1) & mask_) {
      const std::size_t home = Hash{}(slots_[j].key) & mask_;
      // `j` may fill the hole iff its home position does not lie strictly
      // between hole (exclusive) and j (inclusive) along the probe order.
      const std::size_t dist_home = (j - home) & mask_;
      const std::size_t dist_hole = (j - hole) & mask_;
      if (dist_home >= dist_hole) {
        slots_[hole].key = slots_[j].key;
        slots_[hole].value = std::move(slots_[j].value);
        hole = j;
      }
    }
    slots_[hole].value = V{};
    used_[hole] = 0;
    --size_;
    return true;
  }

  /// Visits every (key, value) pair in unspecified order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (used_[i]) fn(slots_[i].key, slots_[i].value);
    }
  }

  /// Bytes of backing storage held (capacity-based: storage survives
  /// clear(), so this is the table's high-water footprint).
  std::size_t memory_bytes() const noexcept {
    return slots_.capacity() * sizeof(Slot) + used_.capacity();
  }

 private:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  std::size_t find_index(const K& key) const noexcept {
    std::size_t i = Hash{}(key)&mask_;
    while (used_[i]) {
      if (slots_[i].key == key) return i;
      i = (i + 1) & mask_;
    }
    return npos;
  }

  void rehash(std::size_t new_cap) {
    std::vector<Slot> old_slots = std::move(slots_);
    std::vector<std::uint8_t> old_used = std::move(used_);
    slots_.clear();
    slots_.resize(new_cap);
    used_.assign(new_cap, 0);
    mask_ = new_cap - 1;
    size_ = 0;
    for (std::size_t i = 0; i < old_slots.size(); ++i) {
      if (old_used[i]) {
        try_emplace(old_slots[i].key, std::move(old_slots[i].value));
      }
    }
  }

  std::vector<Slot> slots_;
  std::vector<std::uint8_t> used_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

/// Sorted-vector map: key-ordered iteration with contiguous storage.
/// Intended for small populations mutated at event granularity (the
/// running set), where O(n) insert/erase is cheaper in practice than a
/// tree's pointer chasing and the key-ordered walk must stay bit-exact.
template <typename K, typename V>
class FlatOrderedMap {
 public:
  using value_type = std::pair<K, V>;
  using iterator = typename std::vector<value_type>::iterator;
  using const_iterator = typename std::vector<value_type>::const_iterator;

  iterator begin() noexcept { return entries_.begin(); }
  iterator end() noexcept { return entries_.end(); }
  const_iterator begin() const noexcept { return entries_.begin(); }
  const_iterator end() const noexcept { return entries_.end(); }

  std::size_t size() const noexcept { return entries_.size(); }
  bool empty() const noexcept { return entries_.empty(); }
  void clear() noexcept { entries_.clear(); }
  void reserve(std::size_t n) { entries_.reserve(n); }

  iterator find(const K& key) noexcept {
    const iterator it = lower_bound(key);
    return (it != entries_.end() && it->first == key) ? it : entries_.end();
  }
  const_iterator find(const K& key) const noexcept {
    return const_cast<FlatOrderedMap*>(this)->find(key);
  }

  V& at(const K& key) {
    const iterator it = find(key);
    if (it == entries_.end()) {
      throw std::out_of_range("FlatOrderedMap::at: missing key");
    }
    return it->second;
  }
  const V& at(const K& key) const {
    return const_cast<FlatOrderedMap*>(this)->at(key);
  }

  /// Inserts (key, value) if absent; returns (iterator, inserted).
  std::pair<iterator, bool> emplace(const K& key, V value) {
    const iterator it = lower_bound(key);
    if (it != entries_.end() && it->first == key) return {it, false};
    return {entries_.emplace(it, key, std::move(value)), true};
  }

  iterator erase(iterator it) { return entries_.erase(it); }
  bool erase(const K& key) {
    const iterator it = find(key);
    if (it == entries_.end()) return false;
    entries_.erase(it);
    return true;
  }

  /// Bytes of backing storage held (capacity-based high-water footprint).
  std::size_t memory_bytes() const noexcept {
    return entries_.capacity() * sizeof(value_type);
  }

 private:
  iterator lower_bound(const K& key) noexcept {
    std::size_t lo = 0, hi = entries_.size();
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (entries_[mid].first < key) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return entries_.begin() + static_cast<std::ptrdiff_t>(lo);
  }

  std::vector<value_type> entries_;
};

/// Direct-indexed map for ids the owner allocates densely from a small
/// base (the gateway numbers replicas 1, 2, 3, ...). The backing vector
/// grows to the largest id seen and is kept across clear().
template <typename V>
class DenseIdMap {
 public:
  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  void clear() noexcept {
    for (std::size_t i = 0; i < present_.size(); ++i) {
      if (present_[i]) {
        values_[i] = V{};
        present_[i] = 0;
      }
    }
    size_ = 0;
  }

  void reserve(std::uint64_t max_id) {
    if (max_id + 1 > values_.size()) {
      values_.resize(static_cast<std::size_t>(max_id + 1));
      present_.resize(static_cast<std::size_t>(max_id + 1), 0);
    }
  }

  V* find(std::uint64_t id) noexcept {
    if (id >= present_.size() || !present_[id]) return nullptr;
    return &values_[id];
  }
  const V* find(std::uint64_t id) const noexcept {
    return const_cast<DenseIdMap*>(this)->find(id);
  }

  /// Inserts (id, value); ids are owner-allocated, so inserting an
  /// already-present id is a logic error (asserted, then overwritten).
  void insert(std::uint64_t id, V value) {
    reserve(id);
    assert(!present_[id]);
    if (!present_[id]) ++size_;
    present_[id] = 1;
    values_[id] = std::move(value);
  }

  bool erase(std::uint64_t id) noexcept {
    if (id >= present_.size() || !present_[id]) return false;
    values_[id] = V{};
    present_[id] = 0;
    --size_;
    return true;
  }

  /// Bytes of backing storage held (capacity-based high-water footprint).
  std::size_t memory_bytes() const noexcept {
    return values_.capacity() * sizeof(V) + present_.capacity();
  }

 private:
  std::vector<V> values_;
  std::vector<std::uint8_t> present_;
  std::size_t size_ = 0;
};

}  // namespace rrsim::util
