// RRSIM_VALIDATE: debug invariant-validation layer.
//
// Compiled with -DRRSIM_VALIDATE=1 (CMake option RRSIM_VALIDATE=ON, or
// the always-on `validate_tests` ctest binary), every core data
// structure checks its invariants after each mutating operation:
// calendar-queue dispatch order, CBF profile canonicality, scheduler
// accounting, gateway replica tracking, and Simulation::reset coverage.
// A broken invariant aborts immediately with a message — turning
// "ordering silently corrupted, results subtly wrong" into a loud crash
// at the first bad operation.
//
// In normal builds the macro is 0 and every check compiles away; the
// validators cost nothing in Release.
#pragma once

#ifndef RRSIM_VALIDATE
#define RRSIM_VALIDATE 0
#endif

#if RRSIM_VALIDATE
#define RRSIM_VALIDATE_ENABLED 1
#else
#define RRSIM_VALIDATE_ENABLED 0
#endif

#if RRSIM_VALIDATE_ENABLED

#include <cstdio>
#include <cstdlib>

namespace rrsim::util {

[[noreturn]] inline void validate_fail(const char* file, int line,
                                       const char* what) noexcept {
  std::fprintf(stderr, "rrsim validate: %s:%d: invariant violated: %s\n",
               file, line, what);
  std::fflush(stderr);
  std::abort();
}

}  // namespace rrsim::util

#define RRSIM_CHECK(cond, what)                                      \
  do {                                                               \
    if (!(cond)) ::rrsim::util::validate_fail(__FILE__, __LINE__, (what)); \
  } while (false)

#else

#define RRSIM_CHECK(cond, what) \
  do {                          \
  } while (false)

#endif
