#include "rrsim/util/table.h"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace rrsim::util {

std::string format_fixed(double value, int precision) {
  std::ostringstream ss;
  ss.setf(std::ios::fixed);
  ss.precision(precision);
  ss << value;
  return ss.str();
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("table needs >= 1 column");
}

Table& Table::begin_row() {
  rows_.emplace_back();
  rows_.back().reserve(headers_.size());
  return *this;
}

Table& Table::add(std::string cell) {
  if (rows_.empty()) begin_row();
  if (rows_.back().size() >= headers_.size()) {
    throw std::logic_error("row has more cells than headers");
  }
  rows_.back().push_back(std::move(cell));
  return *this;
}

Table& Table::add(double value, int precision) {
  return add(format_fixed(value, precision));
}

Table& Table::add(long long value) { return add(std::to_string(value)); }

std::string Table::to_text() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream ss;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      ss << cell << std::string(widths[c] - cell.size(), ' ');
      ss << (c + 1 < headers_.size() ? "  " : "");
    }
    ss << '\n';
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (const std::size_t w : widths) total += w + 2;
  ss << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return ss.str();
}

std::string Table::to_csv() const {
  auto escape = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (const char ch : s) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  std::ostringstream ss;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      ss << (c ? "," : "") << escape(row[c]);
    }
    ss << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return ss.str();
}

void Table::print(std::ostream& os, bool with_csv) const {
  os << to_text();
  if (with_csv) os << "\n# CSV\n" << to_csv();
}

}  // namespace rrsim::util
