#include "rrsim/util/distributions.h"

#include <cmath>

namespace rrsim::util {

double sample_normal(Rng& rng) {
  // Polar Box–Muller; discards the second variate to keep the sampler
  // stateless (reproducibility matters more than halving the draw count).
  for (;;) {
    const double u = rng.uniform(-1.0, 1.0);
    const double v = rng.uniform(-1.0, 1.0);
    const double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      return u * std::sqrt(-2.0 * std::log(s) / s);
    }
  }
}

double sample_exponential(Rng& rng, double mean) {
  if (mean <= 0.0) throw std::invalid_argument("exponential mean must be > 0");
  // 1 - u in (0, 1] avoids log(0).
  return -mean * std::log(1.0 - rng.uniform01());
}

namespace {

// Marsaglia–Tsang (2000) for shape >= 1, unit scale.
double gamma_mt_alpha_ge1(Rng& rng, double alpha) {
  const double d = alpha - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = 0.0;
    double v = 0.0;
    do {
      x = sample_normal(rng);
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = rng.uniform01();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (u > 0.0 &&
        std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v;
    }
  }
}

}  // namespace

double sample_gamma(Rng& rng, double alpha, double beta) {
  if (alpha <= 0.0 || beta <= 0.0) {
    throw std::invalid_argument("gamma shape and scale must be > 0");
  }
  if (alpha >= 1.0) return beta * gamma_mt_alpha_ge1(rng, alpha);
  // Boost for alpha < 1: Gamma(a) = Gamma(a + 1) * U^(1/a).
  const double g = gamma_mt_alpha_ge1(rng, alpha + 1.0);
  double u = rng.uniform01();
  while (u <= 0.0) u = rng.uniform01();
  return beta * g * std::pow(u, 1.0 / alpha);
}

double sample_hyper_gamma(Rng& rng, const HyperGammaParams& params) {
  if (params.p < 0.0 || params.p > 1.0) {
    throw std::invalid_argument("hyper-gamma p must be in [0, 1]");
  }
  return rng.chance(params.p) ? sample_gamma(rng, params.a1, params.b1)
                              : sample_gamma(rng, params.a2, params.b2);
}

double sample_two_stage_uniform(Rng& rng,
                                const TwoStageUniformParams& params) {
  if (!(params.low <= params.med && params.med <= params.high)) {
    throw std::invalid_argument("two-stage uniform requires low<=med<=high");
  }
  if (params.prob < 0.0 || params.prob > 1.0) {
    throw std::invalid_argument("two-stage uniform prob must be in [0, 1]");
  }
  return rng.chance(params.prob) ? rng.uniform(params.low, params.med)
                                 : rng.uniform(params.med, params.high);
}

}  // namespace rrsim::util
