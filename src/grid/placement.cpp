#include "rrsim/grid/placement.h"

#include <algorithm>
#include <stdexcept>

namespace rrsim::grid {

namespace {

/// Clusters other than `origin` that can run a `nodes`-wide job, in id
/// order.
std::vector<std::size_t> eligible_remotes(std::size_t origin, int nodes,
                                          const PlatformView& view) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < view.cluster_sizes.size(); ++i) {
    if (i != origin && view.cluster_sizes[i] >= nodes) out.push_back(i);
  }
  return out;
}

std::vector<std::size_t> uniform_choice(std::vector<std::size_t> pool,
                                        std::size_t count, util::Rng& rng) {
  // Partial Fisher-Yates: draw min(count, pool) distinct clusters.
  const std::size_t take = std::min(count, pool.size());
  for (std::size_t i = 0; i < take; ++i) {
    const std::size_t j =
        i + static_cast<std::size_t>(rng.below(pool.size() - i));
    std::swap(pool[i], pool[j]);
  }
  pool.resize(take);
  return pool;
}

}  // namespace

std::vector<std::size_t> UniformPlacement::choose_remotes(
    std::size_t origin, int nodes, const PlatformView& view,
    std::size_t count, util::Rng& rng) const {
  return uniform_choice(eligible_remotes(origin, nodes, view), count, rng);
}

std::vector<std::size_t> BiasedPlacement::choose_remotes(
    std::size_t origin, int nodes, const PlatformView& view,
    std::size_t count, util::Rng& rng) const {
  std::vector<std::size_t> pool = eligible_remotes(origin, nodes, view);
  // Weight 2^-rank by id order; sample without replacement.
  std::vector<double> weights(pool.size());
  double w = 1.0;
  for (std::size_t i = 0; i < pool.size(); ++i, w *= 0.5) weights[i] = w;
  std::vector<std::size_t> chosen;
  const std::size_t take = std::min(count, pool.size());
  chosen.reserve(take);
  while (chosen.size() < take) {
    double total = 0.0;
    for (const double x : weights) total += x;
    double u = rng.uniform01() * total;
    std::size_t pick = pool.size() - 1;
    for (std::size_t i = 0; i < pool.size(); ++i) {
      if (weights[i] <= 0.0) continue;
      if (u < weights[i]) {
        pick = i;
        break;
      }
      u -= weights[i];
    }
    // Guard against picking an exhausted slot via fp round-off.
    while (weights[pick] <= 0.0 && pick > 0) --pick;
    chosen.push_back(pool[pick]);
    weights[pick] = 0.0;
  }
  return chosen;
}

std::vector<std::size_t> LeastLoadedPlacement::choose_remotes(
    std::size_t origin, int nodes, const PlatformView& view,
    std::size_t count, util::Rng& rng) const {
  std::vector<std::size_t> pool = eligible_remotes(origin, nodes, view);
  if (view.queue_lengths.size() != view.cluster_sizes.size()) {
    // No live queue information: degrade gracefully to the blind choice.
    return uniform_choice(std::move(pool), count, rng);
  }
  std::sort(pool.begin(), pool.end(),
            [&view](std::size_t a, std::size_t b) {
              if (view.queue_lengths[a] != view.queue_lengths[b]) {
                return view.queue_lengths[a] < view.queue_lengths[b];
              }
              return a < b;
            });
  pool.resize(std::min(count, pool.size()));
  return pool;
}

std::unique_ptr<PlacementPolicy> make_placement(const std::string& name) {
  if (name == "uniform") return std::make_unique<UniformPlacement>();
  if (name == "biased") return std::make_unique<BiasedPlacement>();
  if (name == "least-loaded") return std::make_unique<LeastLoadedPlacement>();
  throw std::invalid_argument("unknown placement policy: " + name);
}

}  // namespace rrsim::grid
