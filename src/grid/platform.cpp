#include "rrsim/grid/platform.h"

#include <stdexcept>

namespace rrsim::grid {

Platform::Platform(des::Simulation& sim, std::vector<ClusterConfig> configs,
                   sched::Algorithm algorithm)
    : configs_(std::move(configs)), algorithm_(algorithm) {
  if (configs_.empty()) {
    throw std::invalid_argument("platform needs >= 1 cluster");
  }
  schedulers_.reserve(configs_.size());
  sizes_.reserve(configs_.size());
  for (const ClusterConfig& c : configs_) {
    schedulers_.push_back(sched::make_scheduler(algorithm, sim, c.nodes));
    sizes_.push_back(c.nodes);
  }
}

sched::OpCounters Platform::total_counters() const {
  sched::OpCounters total;
  for (const auto& s : schedulers_) {
    const sched::OpCounters& c = s->counters();
    total.submits += c.submits;
    total.cancels += c.cancels;
    total.starts += c.starts;
    total.finishes += c.finishes;
    total.declines += c.declines;
    total.sched_passes += c.sched_passes;
  }
  return total;
}

std::vector<ClusterConfig> homogeneous_configs(
    std::size_t n, int nodes, const workload::LublinParams& params) {
  if (n == 0) throw std::invalid_argument("need >= 1 cluster");
  std::vector<ClusterConfig> out(n);
  for (ClusterConfig& c : out) {
    c.nodes = nodes;
    c.workload = params;
  }
  return out;
}

}  // namespace rrsim::grid
