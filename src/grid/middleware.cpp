#include "rrsim/grid/middleware.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace rrsim::grid {

MiddlewareStation::MiddlewareStation(des::Simulation& sim,
                                     double ops_per_sec)
    : sim_(sim), service_time_(1.0 / ops_per_sec) {
  if (!(ops_per_sec > 0.0)) {
    throw std::invalid_argument("middleware rate must be > 0");
  }
}

void MiddlewareStation::enqueue(Op op) {
  if (!op) throw std::invalid_argument("middleware: empty operation");
  queue_.push(Pending{sim_.now(), std::move(op)});
  max_backlog_ = std::max(max_backlog_, backlog());
  if (!busy_) start_service();
}

void MiddlewareStation::start_service() {
  if (queue_.empty()) {
    busy_ = false;
    return;
  }
  busy_ = true;
  // The head stays at the queue front while in service (backlog counts
  // it); the completion event pops and runs it, so the simulation
  // callback captures only `this` — the operation's own captures never
  // leave the queue slot until they are consumed.
  sim_.schedule_in(
      service_time_,
      [this] {
        Pending head = std::move(queue_.front());
        queue_.pop();
        ++processed_;
        total_sojourn_ += sim_.now() - head.enqueued_at;
        head.op();
        start_service();
      },
      des::Priority::kControl, event_tag_);
}

}  // namespace rrsim::grid
