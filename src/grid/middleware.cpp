#include "rrsim/grid/middleware.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace rrsim::grid {

MiddlewareStation::MiddlewareStation(des::Simulation& sim,
                                     double ops_per_sec)
    : sim_(sim), service_time_(1.0 / ops_per_sec) {
  if (!(ops_per_sec > 0.0)) {
    throw std::invalid_argument("middleware rate must be > 0");
  }
}

void MiddlewareStation::enqueue(std::function<void()> op) {
  if (!op) throw std::invalid_argument("middleware: empty operation");
  queue_.push(Pending{sim_.now(), std::move(op)});
  max_backlog_ = std::max(max_backlog_, backlog());
  if (!busy_) start_service();
}

void MiddlewareStation::start_service() {
  if (queue_.empty()) {
    busy_ = false;
    return;
  }
  busy_ = true;
  // Move the head out; it completes after one service time.
  Pending head = std::move(queue_.front());
  queue_.pop();
  sim_.schedule_in(
      service_time_,
      [this, enqueued_at = head.enqueued_at, op = std::move(head.op)] {
        ++processed_;
        total_sojourn_ += sim_.now() - enqueued_at;
        op();
        start_service();
      },
      des::Priority::kControl);
}

}  // namespace rrsim::grid
