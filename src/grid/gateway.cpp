#include "rrsim/grid/gateway.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>

namespace rrsim::grid {

Gateway::Gateway(des::Simulation& sim, Platform& platform,
                 bool record_predictions)
    : sim_(sim), platform_(platform),
      record_predictions_(record_predictions) {
  for (std::size_t c = 0; c < platform_.size(); ++c) install_callbacks(c);
}

#if RRSIM_VALIDATE_ENABLED
void Gateway::validate_job(GridJobId id) const {
  const Tracked* tracked = tracked_.find(id);
  RRSIM_CHECK(tracked != nullptr, "gateway: tracked job vanished");
  for (const auto& [cluster, rid] : tracked->replicas) {
    RRSIM_CHECK(cluster < platform_.size(),
                "gateway: replica targets a cluster outside the platform");
    const std::uint32_t* gid = replica_to_grid_.find(rid);
    RRSIM_CHECK(gid != nullptr && *gid == id,
                "gateway: replica index does not map a tracked replica "
                "back to its grid job");
  }
}

void Gateway::debug_validate() const {
  std::size_t replica_sum = 0;
  tracked_.for_each([this, &replica_sum](const GridJobId& id,
                                         const Tracked& tracked) {
    replica_sum += tracked.replicas.size();
    (void)tracked;
    validate_job(id);
  });
  RRSIM_CHECK(replica_sum == replica_to_grid_.size(),
              "gateway: replica index size disagrees with the tracked "
              "replica lists");
}

void Gateway::debug_corrupt_tracking() {
  bool done = false;
  tracked_.for_each([this, &done](const GridJobId&, const Tracked& tracked) {
    if (done) return;
    for (const auto& [cluster, rid] : tracked.replicas) {
      (void)cluster;
      if (std::uint32_t* gid = replica_to_grid_.find(rid)) {
        *gid += 1;  // now points at a job that does not own this replica
        done = true;
        return;
      }
    }
  });
}
#endif

void Gateway::install_callbacks(std::size_t cluster) {
  sched::ClusterScheduler::Callbacks cb;
  cb.on_grant = [this, cluster](const sched::Job& job) {
    return on_grant(cluster, job);
  };
  cb.on_finish = [this, cluster](const sched::Job& job) {
    on_finish(cluster, job);
  };
  sched::ClusterScheduler& sched = platform_.scheduler(cluster);
  sched.set_callbacks(std::move(cb));
  // Attribute the scheduler's own events (completions, wake-ups) to its
  // cluster, so tie-break explorers can reason about event independence.
  sched.set_event_tag(static_cast<std::uint32_t>(cluster));
}

void Gateway::submit(const GridJob& job, double remote_inflation) {
  if (remote_inflation < 1.0) {
    throw std::invalid_argument("remote inflation factor must be >= 1");
  }
  if (job.targets.empty()) {
    throw std::invalid_argument("grid job needs >= 1 target");
  }
  if (job.id > std::numeric_limits<std::uint32_t>::max()) {
    throw std::invalid_argument("grid job id exceeds the 32-bit id space");
  }
  if (std::find(job.targets.begin(), job.targets.end(), job.origin) ==
      job.targets.end()) {
    throw std::invalid_argument("origin cluster must be among the targets");
  }
  if (!job.replica_specs.empty() &&
      job.replica_specs.size() != job.targets.size()) {
    throw std::invalid_argument("one replica spec per target required");
  }
  if (job.replica_specs.empty()) {
    // Identical replicas in the same queue are pointless; moldable
    // (shaped) submissions legitimately target one queue repeatedly.
    auto sorted = job.targets;
    std::sort(sorted.begin(), sorted.end());
    if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
      throw std::invalid_argument("duplicate target cluster");
    }
  }
  Tracked fresh;
  fresh.origin = static_cast<std::uint32_t>(job.origin);
  fresh.redundant = job.redundant;
  fresh.replicas_sent = static_cast<std::uint16_t>(
      std::min<std::size_t>(job.targets.size(), 0xffff));
  const auto inserted = tracked_.try_emplace(job.id, std::move(fresh));
  if (!inserted.inserted) {
    throw std::invalid_argument("duplicate grid job id");
  }
  ++submitted_;
  // Safe to hold across the submit loop: nothing below inserts into
  // tracked_ (on_grant/on_finish only read it), so no rehash can move it.
  Tracked& tracked = *inserted.value;
  tracked.replicas.reserve(job.targets.size());

  // Build the replica descriptors first: a replica that starts immediately
  // during submission must already see its siblings registered, otherwise
  // they would escape cancellation.
  struct PendingSubmit {
    std::size_t cluster;
    sched::Job replica;
  };
  std::vector<PendingSubmit> submits;
  submits.reserve(job.targets.size());
  bool first_replica = true;
  for (std::size_t t = 0; t < job.targets.size(); ++t) {
    const std::size_t target = job.targets[t];
    const workload::JobSpec& spec =
        job.replica_specs.empty() ? job.spec : job.replica_specs[t];
    sched::Job replica;
    replica.id = next_replica_id_++;
    replica.nodes = spec.nodes;
    replica.user = job.user;
    // The first replica bypasses pending limits: the user's home
    // submission always eventually enters the queue, only the *extra*
    // redundancy is subject to caps.
    replica.limit_exempt = first_replica && target == job.origin;
    first_replica = false;
    replica.actual_time = spec.runtime;
    // Shaped (moldable) replicas carry explicit requested times; uniform
    // replicas inflate the remote ones per Section 3.1.2.
    replica.requested_time =
        (!job.replica_specs.empty() || target == job.origin)
            ? spec.requested_time
            : spec.requested_time * remote_inflation;
    // Real schedulers kill jobs at the requested limit; keep actual <=
    // requested even when the user under-estimates.
    replica.requested_time = std::max(replica.requested_time,
                                      replica.actual_time);
    replica_to_grid_.insert(replica.id, static_cast<std::uint32_t>(job.id));
    tracked.replicas.push_back(Tracked::Replica{
        static_cast<std::uint32_t>(target), replica.id});
    submits.push_back(PendingSubmit{target, replica});
  }
  for (const PendingSubmit& s : submits) {
    if (middleware_.empty()) {
      deliver_submit(s.cluster, s.replica, /*deferred=*/false);
    } else {
      middleware_[s.cluster]->enqueue(
          [this, cluster = s.cluster, replica = s.replica] {
            deliver_submit(cluster, replica, /*deferred=*/true);
          });
    }
  }
  if (record_predictions_) {
    // Min over replicas of each scheduler's submit-time prediction — how a
    // redundancy-using user would forecast their wait (Section 5). Only
    // replicas still pending have predictions in flight; if one already
    // started, the best prediction is "now".
    std::optional<double> best;
    if (tracked.started) {
      best = sim_.now();
    } else {
      for (const auto& [cluster, rid] : tracked.replicas) {
        const auto p =
            platform_.scheduler(cluster).predicted_start_at_submit(rid);
        if (p && (!best || *p < *best)) best = *p;
      }
    }
    if (best) tracked.predicted_start = *best;
  }
#if RRSIM_VALIDATE_ENABLED
  validate_job(job.id);
#endif
}

void Gateway::reset(bool record_predictions) {
  record_predictions_ = record_predictions;
  middleware_.clear();
  next_replica_id_ = 1;
  replica_to_grid_.clear();
  tracked_.clear();
  sink_ = nullptr;
  records_.clear();
  submitted_ = 0;
  finished_ = 0;
  cancels_issued_ = 0;
  rejected_ = 0;
  dropped_ = 0;
  // Re-install callbacks: a scheduler reset keeps its hooks, but going
  // through the constructor path again makes reuse self-contained.
  for (std::size_t c = 0; c < platform_.size(); ++c) install_callbacks(c);
}

void Gateway::set_middleware(std::vector<MiddlewareStation*> stations) {
  if (!stations.empty() && stations.size() != platform_.size()) {
    throw std::invalid_argument("need one middleware station per cluster");
  }
  if (!stations.empty() && record_predictions_) {
    throw std::invalid_argument(
        "submit-time predictions need instantaneous delivery");
  }
  for (const MiddlewareStation* s : stations) {
    if (s == nullptr) throw std::invalid_argument("null middleware station");
  }
  for (std::size_t c = 0; c < stations.size(); ++c) {
    stations[c]->set_event_tag(static_cast<std::uint32_t>(c));
  }
  middleware_ = std::move(stations);
}

void Gateway::deliver_submit(std::size_t cluster, const sched::Job& replica,
                             bool deferred) {
  const std::uint32_t* gid = replica_to_grid_.find(replica.id);
  if (gid == nullptr) return;  // defensive: unknown replica
  const GridJobId grid_id = *gid;
  Tracked& tracked = tracked_.at(grid_id);
  if (deferred && tracked.started) {
    // The job already started elsewhere while this submission was in
    // flight; delivering it would only create a request that is
    // immediately declined. Drop it: it costs neither a submission nor a
    // cancellation (the canceling client simply skips it).
    ++dropped_;
    replica_to_grid_.erase(replica.id);
    std::erase_if(tracked.replicas,
                  [&](const Tracked::Replica& p) { return p.id == replica.id; });
    return;
  }
  if (!platform_.scheduler(cluster).submit(replica)) {
    // Refused by a per-user pending limit: forget the replica.
    ++rejected_;
    replica_to_grid_.erase(replica.id);
    std::erase_if(tracked.replicas,
                  [&](const Tracked::Replica& p) { return p.id == replica.id; });
  }
  // Note: tracked.job.redundant deliberately keeps the *intent* (the user
  // sent redundant requests), even if drops/rejections leave one replica —
  // the paper's r-jobs/n-r-jobs classes are about user behaviour.
#if RRSIM_VALIDATE_ENABLED
  validate_job(grid_id);
#endif
}

void Gateway::deliver_cancel(std::size_t cluster, sched::JobId replica) {
  if (platform_.scheduler(cluster).cancel(replica)) {
    ++cancels_issued_;
  }
}

bool Gateway::on_grant(std::size_t cluster, const sched::Job& job) {
  const std::uint32_t* gid = replica_to_grid_.find(job.id);
  if (gid == nullptr) {
    // Not a gateway-managed job (e.g. background load) — always allow.
    return true;
  }
  const GridJobId grid_id = *gid;
  Tracked& tracked = tracked_.at(grid_id);
  if (tracked.started) {
    // A sibling replica already won; refuse this start. The scheduler
    // drops the request, which also counts as the "cancellation" of this
    // replica from the middleware's point of view.
    ++cancels_issued_;
    return false;
  }
  tracked.started = true;
  tracked.winner = static_cast<std::uint32_t>(cluster);
  cancel_siblings(grid_id, cluster);
  return true;
}

void Gateway::cancel_siblings(GridJobId id, std::size_t winner_cluster) {
  // Zero-delay deferred cancellation: issuing qdel from inside another
  // scheduler's scheduling pass would mutate queues mid-iteration, so the
  // cancellations land as same-timestamp events right after the current
  // one. A sibling that gets granted in between is declined by on_grant.
  const Tracked& tracked = tracked_.at(id);
  for (const auto& [cluster, rid] : tracked.replicas) {
    if (cluster == winner_cluster) continue;
    if (middleware_.empty()) {
      sim_.schedule_in(
          0.0, [this, cluster, rid] { deliver_cancel(cluster, rid); },
          des::Priority::kCancel, cluster);
    } else {
      // The qdel is itself a middleware transaction and arrives late.
      middleware_[cluster]->enqueue(
          [this, cluster, rid] { deliver_cancel(cluster, rid); });
    }
  }
}

void Gateway::on_finish(std::size_t cluster, const sched::Job& job) {
  const std::uint32_t* gid = replica_to_grid_.find(job.id);
  if (gid == nullptr) return;
  const GridJobId grid_id = *gid;
  Tracked& tracked = tracked_.at(grid_id);

  if (sink_ != nullptr) {
    metrics::JobRecord32 rec;
    rec.grid_id = static_cast<std::uint32_t>(grid_id);
    rec.origin_cluster = static_cast<std::uint16_t>(tracked.origin);
    rec.winner_cluster = static_cast<std::uint16_t>(cluster);
    rec.redundant = tracked.redundant;
    rec.replicas = static_cast<std::uint8_t>(
        std::min<unsigned>(tracked.replicas_sent, 0xff));
    rec.replicas_delivered = static_cast<std::uint8_t>(
        std::min<std::size_t>(tracked.replicas.size(), 0xff));
    rec.nodes = static_cast<std::uint16_t>(
        std::min(job.nodes, 0xffff));
    rec.submit_time = job.submit_time;
    rec.start_time = job.start_time;
    rec.finish_time = job.finish_time;
    rec.actual_time = job.actual_time;
    rec.predicted_start = tracked.predicted_start;  // NaN = none
    sink_->add(rec);
  } else {
    metrics::JobRecord rec;
    rec.grid_id = grid_id;
    rec.origin_cluster = tracked.origin;
    rec.winner_cluster = cluster;
    rec.redundant = tracked.redundant;
    rec.replicas = static_cast<int>(tracked.replicas_sent);
    // tracked.replicas holds the replicas actually *delivered* (dropped
    // and limit-rejected ones were removed; nothing else shrinks the
    // list).
    rec.replicas_delivered = static_cast<int>(tracked.replicas.size());
    rec.nodes = job.nodes;
    rec.submit_time = job.submit_time;
    rec.start_time = job.start_time;
    rec.finish_time = job.finish_time;
    rec.actual_time = job.actual_time;
    rec.requested_time = job.requested_time;
    if (!std::isnan(tracked.predicted_start)) {
      rec.predicted_start = tracked.predicted_start;
    }
    records_.push_back(rec);
  }
  ++finished_;
  // Reclaim the job's tracking state. With direct delivery and a finish
  // strictly after the start, no event can reference these replicas any
  // more: every sibling was declined or cancelled at the start instant.
  // Three bounded exceptions keep their entries: middleware (a late
  // deliver_submit still needs tracked.started to count drops),
  // zero-length runs (finish at the start instant may still race
  // same-timestamp sibling grants), and moldable same-queue siblings —
  // those are never qdel'ed (cancel_siblings skips the winner's cluster)
  // and rely on the grant-time decline, which needs the tracking entry.
  bool same_queue_sibling = false;
  for (const auto& [rcluster, rid] : tracked.replicas) {
    if (rid != job.id && rcluster == cluster) {
      same_queue_sibling = true;
      break;
    }
  }
  if (middleware_.empty() && job.finish_time > job.start_time &&
      !same_queue_sibling) {
    for (const auto& [rcluster, rid] : tracked.replicas) {
      (void)rcluster;
      replica_to_grid_.erase(rid);
    }
    tracked_.erase(grid_id);
  }
}

std::uint64_t Gateway::cross_cluster_links() const noexcept {
  std::uint64_t links = 0;
  tracked_.for_each([&links](const GridJobId&, const Tracked& t) {
    for (std::size_t i = 1; i < t.replicas.size(); ++i) {
      if (t.replicas[i].cluster != t.replicas[0].cluster) {
        ++links;
        break;
      }
    }
  });
  return links;
}

std::size_t Gateway::live_state_bytes() const noexcept {
  std::size_t replica_bytes = 0;
  tracked_.for_each([&replica_bytes](const GridJobId&, const Tracked& t) {
    replica_bytes += t.replicas.capacity() * sizeof(Tracked::Replica);
  });
  return tracked_.memory_bytes() + replica_to_grid_.memory_bytes() +
         replica_bytes;
}

}  // namespace rrsim::grid
