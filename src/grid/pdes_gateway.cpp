#include "rrsim/grid/pdes_gateway.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

namespace rrsim::grid {

PdesGateway::PdesGateway(exec::PdesCoordinator& coord,
                         std::vector<sched::ClusterScheduler*> schedulers,
                         double latency)
    : coord_(coord), scheds_(std::move(schedulers)), latency_(latency) {
  if (scheds_.size() != coord_.partitions()) {
    throw std::invalid_argument("pdes gateway: need one scheduler per partition");
  }
  for (const sched::ClusterScheduler* s : scheds_) {
    if (s == nullptr) throw std::invalid_argument("pdes gateway: null scheduler");
  }
  if (!(latency_ > 0.0) || latency_ != coord_.lookahead()) {
    throw std::invalid_argument(
        "pdes gateway: latency must be positive and equal the coordinator's "
        "lookahead");
  }
  agents_.resize(scheds_.size());
  for (std::size_t c = 0; c < scheds_.size(); ++c) {
    sched::ClusterScheduler::Callbacks cb;
    cb.on_grant = [this, c](const sched::Job& job) { return on_grant(c, job); };
    cb.on_finish = [this, c](const sched::Job& job) { on_finish(c, job); };
    scheds_[c]->set_callbacks(std::move(cb));
    scheds_[c]->set_event_tag(static_cast<std::uint32_t>(c));
  }
}

sched::JobId PdesGateway::allocate_replica_id(std::size_t origin) {
  const std::uint64_t n = agents_.size();
  const std::uint64_t raw = agents_[origin].next_replica * n + origin + 1;
  if (raw > std::numeric_limits<sched::JobId>::max()) {
    throw std::length_error("pdes gateway: replica id space exhausted");
  }
  ++agents_[origin].next_replica;
  return static_cast<sched::JobId>(raw);
}

void PdesGateway::submit(const GridJob& job, double remote_inflation) {
  if (remote_inflation < 1.0) {
    throw std::invalid_argument("remote inflation factor must be >= 1");
  }
  if (job.targets.empty()) {
    throw std::invalid_argument("grid job needs >= 1 target");
  }
  if (job.id > std::numeric_limits<std::uint32_t>::max()) {
    throw std::invalid_argument("grid job id exceeds the 32-bit id space");
  }
  if (job.origin >= agents_.size()) {
    throw std::invalid_argument("origin cluster outside the platform");
  }
  if (std::find(job.targets.begin(), job.targets.end(), job.origin) ==
      job.targets.end()) {
    throw std::invalid_argument("origin cluster must be among the targets");
  }
  if (!job.replica_specs.empty()) {
    // Same-queue (moldable) siblings rely on the zero-delay grant-decline
    // arbitration of the classic gateway; with a real latency the decline
    // information cannot exist yet.
    throw std::invalid_argument(
        "moldable replica shapes are not supported in PDES mode");
  }
  {
    auto sorted = job.targets;
    std::sort(sorted.begin(), sorted.end());
    if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
      throw std::invalid_argument("duplicate target cluster");
    }
    if (sorted.back() >= agents_.size()) {
      throw std::invalid_argument("target cluster outside the platform");
    }
  }
  const std::size_t origin = job.origin;
  Agent& agent = agents_[origin];
  des::Simulation& sim = coord_.partition(origin);

  Tracked fresh;
  fresh.submit_time = sim.now();
  fresh.redundant = job.redundant;
  fresh.replicas_sent = static_cast<std::uint16_t>(
      std::min<std::size_t>(job.targets.size(), 0xffff));
  const auto inserted = agent.tracked.try_emplace(job.id, std::move(fresh));
  if (!inserted.inserted) {
    throw std::invalid_argument("duplicate grid job id");
  }
  ++agent.submitted;
  Tracked& tracked = *inserted.value;
  tracked.replicas.reserve(job.targets.size());

  // Build all replica descriptors before queuing any, exactly like the
  // classic gateway: the origin replica may be granted during its own
  // submission pass, and the start handler must already see the full
  // sibling set to cancel it.
  struct PendingSubmit {
    std::size_t cluster;
    sched::Job replica;
  };
  std::vector<PendingSubmit> submits;
  submits.reserve(job.targets.size());
  bool first_replica = true;
  for (const std::size_t target : job.targets) {
    const workload::JobSpec& spec = job.spec;
    sched::Job replica;
    replica.id = allocate_replica_id(origin);
    replica.nodes = spec.nodes;
    replica.user = job.user;
    replica.limit_exempt = first_replica && target == job.origin;
    first_replica = false;
    replica.actual_time = spec.runtime;
    replica.requested_time = target == job.origin
                                 ? spec.requested_time
                                 : spec.requested_time * remote_inflation;
    replica.requested_time =
        std::max(replica.requested_time, replica.actual_time);
    tracked.replicas.push_back(
        Tracked::Replica{static_cast<std::uint32_t>(target), replica.id});
    submits.push_back(PendingSubmit{target, replica});
  }
  const auto grid32 = static_cast<std::uint32_t>(job.id);
  for (PendingSubmit& s : submits) {
    if (s.cluster == origin) {
      deliver_submit(origin, static_cast<std::uint32_t>(origin), grid32,
                     s.replica);
    } else {
      coord_.post(origin, s.cluster, sim.now() + latency_,
                  des::Priority::kArrival,
                  [this, target = s.cluster, o = static_cast<std::uint32_t>(
                                                 origin),
                   grid32, replica = s.replica] {
                    deliver_submit(target, o, grid32, replica);
                  });
    }
  }
}

void PdesGateway::deliver_submit(std::size_t target, std::uint32_t origin,
                                 std::uint32_t grid,
                                 const sched::Job& replica) {
  Agent& agent = agents_[target];
  agent.routes.try_emplace(replica.id, Route{origin, grid});
  if (!scheds_[target]->submit(replica)) {
    // Refused by a per-user pending limit. Tell the origin so the job's
    // replicas_delivered count excludes this request (the notice takes
    // another L; a record written before it arrives keeps the optimistic
    // count — stale information is the point of this mode).
    agent.routes.erase(replica.id);
    if (static_cast<std::size_t>(origin) == target) {
      handle_reject(target, grid, replica.id);
    } else {
      coord_.post(target, origin, coord_.partition(target).now() + latency_,
                  des::Priority::kControl,
                  [this, o = static_cast<std::size_t>(origin), grid,
                   rid = replica.id] { handle_reject(o, grid, rid); });
    }
  }
}

bool PdesGateway::on_grant(std::size_t cluster, const sched::Job& job) {
  const Route* route = agents_[cluster].routes.find(job.id);
  if (route == nullptr) return true;  // background load — always allow
  const auto winner = static_cast<std::uint32_t>(cluster);
  if (route->origin == cluster) {
    handle_start(cluster, winner, route->grid);
  } else {
    coord_.post(cluster, route->origin,
                coord_.partition(cluster).now() + latency_,
                des::Priority::kControl,
                [this, o = static_cast<std::size_t>(route->origin), winner,
                 grid = route->grid] { handle_start(o, winner, grid); });
  }
  // Unlike the classic gateway there is no same-instant decline: the
  // origin's knowledge is L old, so every grant stands and duplicate
  // starts are counted instead of prevented.
  return true;
}

void PdesGateway::handle_start(std::size_t origin, std::uint32_t winner,
                               std::uint32_t grid) {
  Agent& agent = agents_[origin];
  Tracked* tracked = agent.tracked.find(grid);
  if (tracked == nullptr) return;  // defensive: unknown job
  if (tracked->started) {
    ++agent.duplicate_starts;
    return;  // siblings were already cancelled at the first start
  }
  tracked->started = true;
  tracked->winner = winner;
  des::Simulation& sim = coord_.partition(origin);
  for (const auto& [cluster, rid] : tracked->replicas) {
    if (cluster == winner) continue;
    if (cluster == origin) {
      // Local sibling: same-timestamp deferred qdel, exactly like the
      // classic gateway (never from inside a scheduling pass).
      sim.schedule_in(
          0.0, [this, c = static_cast<std::size_t>(cluster), rid] {
            deliver_cancel(c, rid);
          },
          des::Priority::kCancel, cluster);
    } else {
      coord_.post(origin, cluster, sim.now() + latency_,
                  des::Priority::kCancel,
                  [this, c = static_cast<std::size_t>(cluster), rid] {
                    deliver_cancel(c, rid);
                  });
    }
  }
}

void PdesGateway::deliver_cancel(std::size_t cluster, sched::JobId replica) {
  if (scheds_[cluster]->cancel(replica)) {
    ++agents_[cluster].cancels_issued;
    agents_[cluster].routes.erase(replica);
  }
  // A cancel for a replica already running (or already terminal) is a
  // no-op qdel: with latency the canceller cannot know better.
}

void PdesGateway::on_finish(std::size_t cluster, const sched::Job& job) {
  Agent& agent = agents_[cluster];
  const Route* route = agent.routes.find(job.id);
  if (route == nullptr) return;
  const std::uint32_t origin = route->origin;
  const std::uint32_t grid = route->grid;
  agent.routes.erase(job.id);  // terminal — nothing references it again
  FinishInfo info;
  info.winner = static_cast<std::uint32_t>(cluster);
  info.nodes = job.nodes;
  info.start_time = job.start_time;
  info.finish_time = job.finish_time;
  info.actual_time = job.actual_time;
  info.requested_time = job.requested_time;
  if (origin == cluster) {
    handle_finish(cluster, grid, info);
  } else {
    coord_.post(cluster, origin, coord_.partition(cluster).now() + latency_,
                des::Priority::kControl,
                [this, o = static_cast<std::size_t>(origin), grid, info] {
                  handle_finish(o, grid, info);
                });
  }
}

void PdesGateway::handle_finish(std::size_t origin, std::uint32_t grid,
                                const FinishInfo& info) {
  Agent& agent = agents_[origin];
  Tracked* tracked = agent.tracked.find(grid);
  if (tracked == nullptr) return;  // defensive: unknown job
  if (tracked->finished) {
    ++agent.duplicate_finishes;  // a duplicate start completing
    return;
  }
  tracked->finished = true;
  metrics::JobRecord rec;
  rec.grid_id = grid;
  rec.origin_cluster = origin;
  rec.winner_cluster = info.winner;
  rec.redundant = tracked->redundant;
  rec.replicas = static_cast<int>(tracked->replicas_sent);
  rec.replicas_delivered = static_cast<int>(tracked->replicas.size());
  rec.nodes = info.nodes;
  // The user's submit instant at the origin — not the L-delayed time the
  // winning replica entered its queue — so wait/turnaround include the
  // cross-cluster delivery delay the user actually experienced.
  rec.submit_time = tracked->submit_time;
  rec.start_time = info.start_time;
  rec.finish_time = info.finish_time;
  rec.actual_time = info.actual_time;
  rec.requested_time = info.requested_time;
  agent.records.push_back(rec);
  ++agent.finished;
}

void PdesGateway::handle_reject(std::size_t origin, std::uint32_t grid,
                                sched::JobId replica) {
  Agent& agent = agents_[origin];
  ++agent.rejected;
  Tracked* tracked = agent.tracked.find(grid);
  if (tracked == nullptr) return;
  std::erase_if(tracked->replicas, [replica](const Tracked::Replica& r) {
    return r.id == replica;
  });
}

void PdesGateway::reserve_records(std::size_t origin, std::size_t n) {
  agents_.at(origin).records.reserve(n);
}

metrics::JobRecords PdesGateway::take_records() {
  std::size_t total = 0;
  for (const Agent& a : agents_) total += a.records.size();
  metrics::JobRecords all;
  all.reserve(total);
  for (Agent& a : agents_) {
    for (metrics::JobRecord& r : a.records) all.push_back(r);
    a.records.clear();
  }
  return all;
}

std::uint64_t PdesGateway::submitted() const noexcept {
  std::uint64_t n = 0;
  for (const Agent& a : agents_) n += a.submitted;
  return n;
}

std::uint64_t PdesGateway::finished() const noexcept {
  std::uint64_t n = 0;
  for (const Agent& a : agents_) n += a.finished;
  return n;
}

std::uint64_t PdesGateway::cancellations_issued() const noexcept {
  std::uint64_t n = 0;
  for (const Agent& a : agents_) n += a.cancels_issued;
  return n;
}

std::uint64_t PdesGateway::replicas_rejected() const noexcept {
  std::uint64_t n = 0;
  for (const Agent& a : agents_) n += a.rejected;
  return n;
}

std::uint64_t PdesGateway::duplicate_starts() const noexcept {
  std::uint64_t n = 0;
  for (const Agent& a : agents_) n += a.duplicate_starts;
  return n;
}

std::uint64_t PdesGateway::duplicate_finishes() const noexcept {
  std::uint64_t n = 0;
  for (const Agent& a : agents_) n += a.duplicate_finishes;
  return n;
}

std::size_t PdesGateway::live_state_bytes() const noexcept {
  std::size_t bytes = 0;
  for (const Agent& a : agents_) {
    bytes += a.tracked.memory_bytes() + a.routes.memory_bytes();
    a.tracked.for_each([&bytes](const GridJobId&, const Tracked& t) {
      bytes += t.replicas.capacity() * sizeof(Tracked::Replica);
    });
  }
  return bytes;
}

#if RRSIM_VALIDATE_ENABLED
void PdesGateway::debug_validate() const {
  for (std::size_t c = 0; c < agents_.size(); ++c) {
    agents_[c].routes.for_each([this, c](const sched::JobId& rid,
                                         const Route& route) {
      RRSIM_CHECK(route.origin < agents_.size(),
                  "pdes gateway: route names a cluster outside the platform");
      const Tracked* tracked = agents_[route.origin].tracked.find(route.grid);
      RRSIM_CHECK(tracked != nullptr,
                  "pdes gateway: route points at an untracked grid job");
      bool listed = false;
      for (const auto& [cluster, id] : tracked->replicas) {
        if (cluster == c && id == rid) {
          listed = true;
          break;
        }
      }
      RRSIM_CHECK(listed,
                  "pdes gateway: routed replica missing from its job's "
                  "replica list");
    });
  }
}
#endif

}  // namespace rrsim::grid
