// The multi-site platform: N clusters, each with its own size, its own
// batch scheduler, and its own workload parameters. Covers both the
// paper's homogeneous setups (identical 128-node clusters) and the
// Table 3 heterogeneous one (sizes in {16..256}, varying arrival rates).
#pragma once

#include <memory>
#include <vector>

#include "rrsim/des/simulation.h"
#include "rrsim/sched/factory.h"
#include "rrsim/workload/lublin.h"

namespace rrsim::grid {

/// Static description of one cluster.
struct ClusterConfig {
  int nodes = 128;
  workload::LublinParams workload;  ///< arrival/shape parameters for the
                                    ///< job stream originating here
};

/// N clusters bound to one simulation, each with a scheduler of the same
/// algorithm (the paper never mixes algorithms across sites).
class Platform {
 public:
  /// Builds the clusters and their schedulers. Throws
  /// std::invalid_argument if `configs` is empty.
  Platform(des::Simulation& sim, std::vector<ClusterConfig> configs,
           sched::Algorithm algorithm);

  std::size_t size() const noexcept { return configs_.size(); }
  sched::ClusterScheduler& scheduler(std::size_t i) {
    return *schedulers_.at(i);
  }
  const sched::ClusterScheduler& scheduler(std::size_t i) const {
    return *schedulers_.at(i);
  }
  const ClusterConfig& config(std::size_t i) const { return configs_.at(i); }
  sched::Algorithm algorithm() const noexcept { return algorithm_; }

  /// Cluster sizes by id, the shape placement policies consume.
  const std::vector<int>& cluster_sizes() const noexcept { return sizes_; }

  /// Sum of operation counters over all schedulers.
  sched::OpCounters total_counters() const;

  /// Resets every scheduler in place (see ClusterScheduler::reset),
  /// keeping their arenas warm. Shape, workload configs, and algorithm
  /// are immutable, so a Platform may only be reused for an experiment
  /// with an identical cluster layout — callers compare size(),
  /// cluster_sizes(), algorithm(), and config() first and reconstruct on
  /// any mismatch. The owning Simulation must be reset alongside.
  void reset() {
    for (auto& s : schedulers_) s->reset();
  }

 private:
  std::vector<ClusterConfig> configs_;
  std::vector<std::unique_ptr<sched::ClusterScheduler>> schedulers_;
  std::vector<int> sizes_;
  sched::Algorithm algorithm_;
};

/// Convenience: N identical clusters sharing one workload parameter set.
std::vector<ClusterConfig> homogeneous_configs(
    std::size_t n, int nodes, const workload::LublinParams& params);

}  // namespace rrsim::grid
