// Distributed gateway for the PDES mode: redundant requests with a real
// cross-cluster latency.
//
// The classic Gateway (gateway.h) is a single object arbitrating every
// cluster under the paper's zero-delay assumption — a grant on any
// cluster can consult and mutate global tracking state at the same
// simulated instant. With a cross-cluster latency L > 0 that shortcut is
// both physically wrong and fatal to parallel execution, so this gateway
// is one *agent per cluster*, each confined to its cluster's PDES
// partition:
//
//   * the origin agent owns a job's tracking entry (replica set, started/
//     finished flags, the outcome record);
//   * a target agent owns the route entry for each replica queued locally
//     (replica id -> origin cluster + grid job);
//   * every cross-cluster interaction — replica submission, sibling
//     cancellation, grant/finish/reject notices back to the origin —
//     travels through PdesCoordinator::post() with delay L.
//
// Protocol consequences of the latency (all deliberate, all measured
// rather than hidden): a replica can be granted while the winner's
// cancellation is still in flight, so a grid job may *start more than
// once* (`duplicate_starts()`); the first finish notice to reach the
// origin produces the job's record; records carry the user's submit time
// at the origin, not the (L-delayed) time the replica entered a remote
// queue. With L = 0 the experiment layer uses the classic gateway
// instead — this class requires a strictly positive latency.
//
// Thread contract: every handler runs on the partition that owns the
// state it touches, so no locks are needed and runs are bit-identical
// for any worker count (see exec/pdes.h and DESIGN.md §9).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "rrsim/exec/pdes.h"
#include "rrsim/grid/gateway.h"
#include "rrsim/metrics/record.h"
#include "rrsim/sched/scheduler.h"
#include "rrsim/util/flat_map.h"

namespace rrsim::grid {

/// Per-cluster gateway agents over a PdesCoordinator. Counter accessors
/// sum across agents and must only be called while the coordinator is
/// quiescent (before run() or after it returns).
class PdesGateway {
 public:
  /// One scheduler per coordinator partition (same indexing); `latency`
  /// must equal the coordinator's lookahead and be > 0.
  PdesGateway(exec::PdesCoordinator& coord,
              std::vector<sched::ClusterScheduler*> schedulers,
              double latency);

  PdesGateway(const PdesGateway&) = delete;
  PdesGateway& operator=(const PdesGateway&) = delete;

  /// Submits `job` from its origin cluster at the origin partition's
  /// current time: the origin replica enters the local queue immediately,
  /// remote replicas arrive at their targets after `latency`. Must be
  /// called from code running on the origin partition. Moldable
  /// replica_specs are not supported in PDES mode (same-queue siblings
  /// need the zero-delay grant-decline arbitration); throws
  /// std::invalid_argument. Validation otherwise matches Gateway::submit.
  void submit(const GridJob& job, double remote_inflation = 1.0);

  /// Pre-sizes cluster `origin`'s record buffer for `n` finished jobs.
  void reserve_records(std::size_t origin, std::size_t n);

  /// Concatenates and moves out all agents' records, in origin-cluster
  /// order (within a cluster: finish-notice order at the origin).
  metrics::JobRecords take_records();

  std::uint64_t submitted() const noexcept;
  std::uint64_t finished() const noexcept;
  std::uint64_t cancellations_issued() const noexcept;
  std::uint64_t replicas_rejected() const noexcept;

  /// Grid jobs that started on more than one cluster because the sibling
  /// cancellation was still in flight when another replica was granted —
  /// the latency-specific harm of redundant requests. (The classic
  /// zero-delay gateway declines such grants; with L > 0 the information
  /// simply is not there yet.)
  std::uint64_t duplicate_starts() const noexcept;

  /// Finish notices discarded because the job's record already existed
  /// (the duplicate runs completing).
  std::uint64_t duplicate_finishes() const noexcept;

  /// Job-proportional live tracking state across all agents (tracked
  /// jobs, replica lists, route tables), capacity-based. Unlike the
  /// classic gateway there is no reclaim-at-finish: notices about a job
  /// can arrive up to 2L after its record is written, so tracking
  /// entries live for the whole run (O(total jobs)).
  std::size_t live_state_bytes() const noexcept;

#if RRSIM_VALIDATE_ENABLED
  /// Cross-agent tracking sweep (quiescent only): every route entry maps
  /// back to a tracked job at its origin whose replica list contains it.
  void debug_validate() const;
#endif

 private:
  struct Route {
    std::uint32_t origin = 0;
    std::uint32_t grid = 0;
  };

  struct Tracked {
    struct Replica {
      std::uint32_t cluster = 0;
      sched::JobId id = 0;
    };
    std::vector<Replica> replicas;
    double submit_time = 0.0;  ///< user's submit instant at the origin
    std::uint32_t winner = 0;
    std::uint16_t replicas_sent = 0;
    bool redundant = false;
    bool started = false;
    bool finished = false;
  };

  /// Everything one cluster's agent owns; only that cluster's partition
  /// thread may touch it.
  struct Agent {
    util::FlatHashMap<GridJobId, Tracked> tracked;  ///< jobs originating here
    util::FlatHashMap<sched::JobId, Route> routes;  ///< replicas queued here
    metrics::JobRecords records;
    std::uint64_t next_replica = 0;  ///< per-origin allocation counter
    std::uint64_t submitted = 0;
    std::uint64_t finished = 0;
    std::uint64_t cancels_issued = 0;
    std::uint64_t rejected = 0;
    std::uint64_t duplicate_starts = 0;
    std::uint64_t duplicate_finishes = 0;
  };

  /// Fields a finish notice carries to the origin.
  struct FinishInfo {
    std::uint32_t winner = 0;
    int nodes = 1;
    double start_time = 0.0;
    double finish_time = 0.0;
    double actual_time = 0.0;
    double requested_time = 0.0;
  };

  /// Globally unique, dense-per-origin replica ids: origin o allocates
  /// o+1, o+1+n, o+1+2n, ... so no two agents can mint the same id
  /// without any shared counter.
  sched::JobId allocate_replica_id(std::size_t origin);

  bool on_grant(std::size_t cluster, const sched::Job& job);
  void on_finish(std::size_t cluster, const sched::Job& job);

  /// Runs on `target`: registers the route and queues the replica.
  void deliver_submit(std::size_t target, std::uint32_t origin,
                      std::uint32_t grid, const sched::Job& replica);
  /// Runs on `cluster`: qdel for a (possibly already terminal) replica.
  void deliver_cancel(std::size_t cluster, sched::JobId replica);
  /// Runs on `origin`: a replica started on `winner`.
  void handle_start(std::size_t origin, std::uint32_t winner,
                    std::uint32_t grid);
  /// Runs on `origin`: a replica finished on info.winner.
  void handle_finish(std::size_t origin, std::uint32_t grid,
                     const FinishInfo& info);
  /// Runs on `origin`: a remote target refused the replica (user limit).
  void handle_reject(std::size_t origin, std::uint32_t grid,
                     sched::JobId replica);

  exec::PdesCoordinator& coord_;
  std::vector<sched::ClusterScheduler*> scheds_;
  double latency_;
  std::vector<Agent> agents_;
};

}  // namespace rrsim::grid
