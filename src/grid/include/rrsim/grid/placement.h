// Replica placement: which remote clusters receive a job's redundant
// requests. The paper's default picks remote clusters uniformly at random
// ("users blindly send requests to all clusters on which they have
// accounts"); Table 2 uses a heavily biased distribution where cluster
// C1 is twice as likely as C2, which is twice as likely as C3, and so on.
// LeastLoadedPlacement models the informed choice a metascheduler would
// make (Subramani et al., the paper's ref [5]): pick the remotes with the
// shortest queues.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "rrsim/util/rng.h"

namespace rrsim::grid {

/// What a placement policy may observe about the platform at submission
/// time. `queue_lengths` may be empty when the caller has no live queue
/// information (policies that need it then fall back to uniform choice).
struct PlatformView {
  const std::vector<int>& cluster_sizes;
  const std::vector<std::size_t>& queue_lengths;
};

/// Strategy for choosing the remote targets of redundant requests.
class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;

  /// Chooses up to `count` distinct remote clusters (never `origin`) from
  /// those whose size in `view.cluster_sizes` is >= `nodes` (a replica
  /// must be runnable where it is sent — the paper's heterogeneous
  /// experiment sizes jobs to their origin cluster and only replicates
  /// where they fit). Returns fewer than `count` ids if not enough
  /// clusters qualify.
  virtual std::vector<std::size_t> choose_remotes(std::size_t origin,
                                                  int nodes,
                                                  const PlatformView& view,
                                                  std::size_t count,
                                                  util::Rng& rng) const = 0;

  virtual std::string name() const = 0;
};

/// Uniform random choice among eligible remote clusters (paper default).
class UniformPlacement final : public PlacementPolicy {
 public:
  std::vector<std::size_t> choose_remotes(std::size_t origin, int nodes,
                                          const PlatformView& view,
                                          std::size_t count,
                                          util::Rng& rng) const override;
  std::string name() const override { return "uniform"; }
};

/// Geometrically biased choice (Table 2): eligible remote cluster with the
/// i-th smallest id has weight 2^-i, so C1 is twice as likely as C2, etc.
/// Sampling is without replacement (weights renormalised after each pick).
class BiasedPlacement final : public PlacementPolicy {
 public:
  std::vector<std::size_t> choose_remotes(std::size_t origin, int nodes,
                                          const PlatformView& view,
                                          std::size_t count,
                                          util::Rng& rng) const override;
  std::string name() const override { return "biased"; }
};

/// Informed choice: the eligible remote clusters with the fewest pending
/// requests at submission time (ties broken by cluster id). Models a
/// metascheduler with global queue knowledge; falls back to uniform when
/// the view carries no queue lengths.
class LeastLoadedPlacement final : public PlacementPolicy {
 public:
  std::vector<std::size_t> choose_remotes(std::size_t origin, int nodes,
                                          const PlatformView& view,
                                          std::size_t count,
                                          util::Rng& rng) const override;
  std::string name() const override { return "least-loaded"; }
};

/// Factory by name: "uniform", "biased" or "least-loaded". Throws on
/// unknown names.
std::unique_ptr<PlacementPolicy> make_placement(const std::string& name);

}  // namespace rrsim::grid
