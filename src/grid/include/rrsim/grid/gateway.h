// The Gateway implements user-driven redundant requests exactly as the
// paper describes them: one job, k replica requests in k different batch
// queues; when one replica is granted nodes the others are cancelled.
//
// The cancel-on-start protocol is modelled with the paper's assumptions:
// zero network delay (cancellations land at the same simulated instant the
// winning replica starts) and late binding of input data (optionally,
// remote replicas request inflated compute time — the Section 3.1.2
// +10 %/+50 % experiment). Simultaneous starts are resolved through the
// scheduler grant callback: the first grant wins, any same-instant grant
// for a sibling is declined.
//
// The zero-delay assumption is what makes this a *single* object: a grant
// anywhere may consult global tracking state at the same instant. For
// runs with a real cross-cluster latency (--pdes --latency=<s>) the
// experiment layer uses grid::PdesGateway instead — one agent per
// cluster exchanging L-delayed messages, which is also what lets the
// conservative parallel kernel advance clusters concurrently
// (pdes_gateway.h, exec/pdes.h, DESIGN.md §9).
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "rrsim/des/simulation.h"
#include "rrsim/grid/middleware.h"
#include "rrsim/grid/platform.h"
#include "rrsim/metrics/online.h"
#include "rrsim/metrics/record.h"
#include "rrsim/util/flat_map.h"

namespace rrsim::grid {

/// Identifies one user job across all its replicas.
using GridJobId = std::uint64_t;

/// A user job about to be submitted through the gateway.
struct GridJob {
  GridJobId id = 0;
  std::size_t origin = 0;            ///< cluster where the user "lives"
  sched::UserId user = 0;            ///< submitting user (for limits)
  workload::JobSpec spec;            ///< nodes / runtime / requested time
  bool redundant = false;            ///< does it use redundant requests?
  std::vector<std::size_t> targets;  ///< clusters to submit to (origin first)
  /// Per-replica shape overrides for *moldable* redundancy (the paper's
  /// option (iv)): when non-empty it must have one entry per target, and
  /// replica i is submitted with replica_specs[i]'s nodes/runtime/
  /// requested time instead of `spec` (no remote inflation applied —
  /// shapes are explicit). Targets may then repeat, i.e. several shapes
  /// of the same job may sit in one batch queue.
  std::vector<workload::JobSpec> replica_specs;
};

/// Submits replica sets, arbitrates grants, cancels siblings, and collects
/// per-job outcome records.
class Gateway {
 public:
  /// `record_predictions`: if true, every submission queries the target
  /// schedulers' submit-time start predictions and stores the minimum over
  /// replicas in the job record (Section 5 methodology).
  Gateway(des::Simulation& sim, Platform& platform,
          bool record_predictions = false);

  Gateway(const Gateway&) = delete;
  Gateway& operator=(const Gateway&) = delete;

  /// Routes all request submissions and cancellations through per-cluster
  /// middleware stations (one per cluster, not owned). Must be called
  /// before the first submit; pass an empty vector to restore direct
  /// (zero-overhead) delivery — the paper's Section 3 assumption.
  /// Submit-time prediction recording needs instantaneous delivery and is
  /// unsupported with middleware. Throws std::invalid_argument on a size
  /// mismatch or if predictions are being recorded.
  void set_middleware(std::vector<MiddlewareStation*> stations);

  /// Submits `job` to each target cluster at the current simulated time.
  /// Replicas on non-origin clusters have their requested time multiplied
  /// by `remote_inflation` (>= 1; models requesting extra time to upload
  /// input data after late binding). Throws std::invalid_argument if
  /// targets is empty, origin is not in targets, a target repeats, or the
  /// job does not fit on some target.
  void submit(const GridJob& job, double remote_inflation = 1.0);

  /// Streams per-finish outcomes into `sink` instead of appending to the
  /// record vector (constant-memory campaigns). Records are fed in finish
  /// order — the same order records() would hold them — so metrics from
  /// the accumulator are bit-identical to the batch functions over the
  /// records a retained run would have produced. Pass nullptr to restore
  /// record retention. The sink must outlive the run; reset() clears it.
  void set_record_sink(metrics::OnlineAccumulator* sink) noexcept {
    sink_ = sink;
  }

  /// Bytes of job-proportional live tracking state (tracked jobs, their
  /// replica lists, and the replica index), capacity-based so it reports
  /// the run's high-water footprint. Retained records are *not* included
  /// — they are output, not live state.
  std::size_t live_state_bytes() const noexcept;

  /// Records of all grid jobs that finished so far.
  const metrics::JobRecords& records() const noexcept { return records_; }

  /// Moves the collected records out, leaving the internal vector empty.
  /// Experiment drivers use this instead of copying records(): the result
  /// takes ownership of the buffer and the gateway re-reserves on reuse.
  metrics::JobRecords take_records() noexcept { return std::move(records_); }

  /// Pre-sizes the record vector for `n` finished jobs, so the per-finish
  /// collection path never reallocates mid-run. Drivers know the job
  /// count up front (the workload trace is generated before submission).
  void reserve_records(std::size_t n) { records_.reserve(n); }

  /// Returns the gateway to its just-constructed state (with the given
  /// prediction-recording mode), keeping hash-table buckets and record
  /// capacity warm. Middleware routing reverts to direct delivery;
  /// scheduler callbacks are re-installed. The platform and simulation
  /// must have been reset alongside.
  void reset(bool record_predictions = false);

  /// Grid jobs submitted / finished (conservation checks in tests).
  std::uint64_t submitted() const noexcept { return submitted_; }
  std::uint64_t finished() const noexcept { return finished_; }

  /// Replica-level cancellations the gateway issued (middleware load).
  std::uint64_t cancellations_issued() const noexcept {
    return cancels_issued_;
  }

  /// Replica submissions refused by per-user pending limits. The origin
  /// replica is always exempt, so every grid job still runs.
  std::uint64_t replicas_rejected() const noexcept { return rejected_; }

  /// Replicas dropped before delivery because their job had already
  /// started elsewhere (possible when same-instant grants race during
  /// submission, or when middleware delays delivery).
  std::uint64_t replicas_dropped() const noexcept { return dropped_; }

  /// Live cross-cluster couplings: tracked grid jobs whose replica set
  /// still spans >= 2 distinct clusters. While this is 0, same-timestamp
  /// events on different clusters cannot influence each other through
  /// the gateway's shared tracking state — the independence criterion
  /// tie-break schedule explorers use for DPOR-style pruning. O(tracked
  /// jobs); sampled per tie group by explorers, never on the hot path.
  std::uint64_t cross_cluster_links() const noexcept;

#if RRSIM_VALIDATE_ENABLED
  /// Full tracking sweep: every replica of every tracked job maps back to
  /// that job in the replica index, and the index holds exactly the
  /// tracked replicas (size-sum agreement). O(total jobs) — tests and
  /// reset paths; per-operation checks cover the job each op touched.
  void debug_validate() const;

  /// Corruption hook for the oracle death tests: re-points one replica's
  /// index entry at a nonexistent grid job.
  void debug_corrupt_tracking();
#endif

 private:
  /// Per-job live tracking state, kept deliberately compact (48 bytes +
  /// one 8-byte-per-replica vector): the full GridJob is never needed
  /// after submission — only the origin, the redundancy intent, and the
  /// replica count survive into the job record — and at grid scale this
  /// struct's size bounds the gateway's memory high-water.
  struct Tracked {
    struct Replica {
      std::uint32_t cluster = 0;
      sched::JobId id = 0;
    };
    /// One entry per live (delivered, not dropped/rejected) replica.
    std::vector<Replica> replicas;
    std::uint32_t origin = 0;
    std::uint32_t winner = 0;       ///< cluster of the granted replica
    std::uint16_t replicas_sent = 0;  ///< requests the user sent (intent)
    bool redundant = false;
    bool started = false;
    /// Min-over-replicas submit-time prediction; NaN when not recorded.
    double predicted_start = std::numeric_limits<double>::quiet_NaN();
  };

  bool on_grant(std::size_t cluster, const sched::Job& job);
  void on_finish(std::size_t cluster, const sched::Job& job);
  void install_callbacks(std::size_t cluster);
  void cancel_siblings(GridJobId id, std::size_t winner_cluster);
  /// Hands the replica to the target scheduler, accounting rejections.
  /// `deferred` marks middleware delivery: only then may a replica whose
  /// job already started be dropped before submission (the client skips
  /// an op still sitting in its own queue); with direct delivery every
  /// qsub has already been issued and must reach the scheduler.
  void deliver_submit(std::size_t cluster, const sched::Job& replica,
                      bool deferred);
  /// Issues a qdel for a (possibly no longer pending) replica.
  void deliver_cancel(std::size_t cluster, sched::JobId replica);

#if RRSIM_VALIDATE_ENABLED
  /// Per-operation check, O(replicas of one job): the job's replica list
  /// and the replica index must agree, and each replica's target cluster
  /// must exist on the platform.
  void validate_job(GridJobId id) const;
#endif

  des::Simulation& sim_;
  Platform& platform_;
  bool record_predictions_;
  std::vector<MiddlewareStation*> middleware_;  // empty = direct delivery
  sched::JobId next_replica_id_ = 1;
  /// Replica ids are allocated densely from 1 by this gateway, so the
  /// replica -> grid-job mapping is a direct-indexed vector, not a hash.
  /// Values are 32-bit: submit() rejects grid ids above 2^32 - 1, which
  /// halves the dominant per-replica table at grid scale.
  util::DenseIdMap<std::uint32_t> replica_to_grid_;
  util::FlatHashMap<GridJobId, Tracked> tracked_;
  metrics::OnlineAccumulator* sink_ = nullptr;  // null = retain records_
  metrics::JobRecords records_;
  std::uint64_t submitted_ = 0;
  std::uint64_t finished_ = 0;
  std::uint64_t cancels_issued_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace rrsim::grid
