// A grid middleware service station (think GT4 WS-GRAM): every job
// submission or cancellation bound for a cluster passes through a FIFO
// single server with a finite sustainable operation rate. The paper
// treats middleware capacity analytically (Section 4.2: ~0.5 submissions
// + 0.5 cancellations per second, hence r < 3 redundant requests per job
// at peak); this component makes the same bottleneck *dynamic* — when
// redundancy pushes the operation rate above the service rate, the
// middleware backlog diverges and request delivery lags.
#pragma once

#include <cstdint>
#include <queue>

#include "rrsim/des/simulation.h"
#include "rrsim/util/inline_fn.h"

namespace rrsim::grid {

/// FIFO single-server station with deterministic service times.
class MiddlewareStation {
 public:
  /// Non-allocating operation closure: captures live inline. Sized for
  /// the largest gateway transaction (a deferred submit carrying a
  /// sched::Job by value plus its routing info); middleware stations sit
  /// on every submit/cancel of a redundancy-heavy run, so operations must
  /// not heap-allocate per enqueue.
  using Op = util::InlineFunction<96>;

  /// `ops_per_sec`: sustainable operation rate (> 0); each operation
  /// occupies the server for exactly 1/ops_per_sec seconds.
  MiddlewareStation(des::Simulation& sim, double ops_per_sec);

  MiddlewareStation(const MiddlewareStation&) = delete;
  MiddlewareStation& operator=(const MiddlewareStation&) = delete;

  /// Queues an operation; `op` runs when its service completes (waiting
  /// time + 1/rate after the station becomes free).
  void enqueue(Op op);

  /// Operations waiting or in service right now. (The operation in
  /// service stays at the queue front until it completes.)
  std::size_t backlog() const noexcept { return queue_.size(); }

  /// Operations completed so far.
  std::uint64_t processed() const noexcept { return processed_; }

  /// Largest backlog ever observed.
  std::size_t max_backlog() const noexcept { return max_backlog_; }

  /// Mean time from enqueue to completion over all processed operations.
  double mean_sojourn() const noexcept {
    return processed_ ? total_sojourn_ / static_cast<double>(processed_)
                      : 0.0;
  }

  /// Cluster tag stamped on the station's service-completion events
  /// (metadata for tie-break explorers; the gateway sets it when wiring
  /// one station per cluster). Default des::kNoEventTag.
  void set_event_tag(std::uint32_t tag) noexcept { event_tag_ = tag; }

 private:
  struct Pending {
    des::Time enqueued_at;
    Op op;
  };

  void start_service();

  des::Simulation& sim_;
  double service_time_;
  std::uint32_t event_tag_ = des::kNoEventTag;
  bool busy_ = false;
  std::queue<Pending> queue_;
  std::uint64_t processed_ = 0;
  std::size_t max_backlog_ = 0;
  double total_sojourn_ = 0.0;
};

}  // namespace rrsim::grid
