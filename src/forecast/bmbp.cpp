#include "rrsim/forecast/bmbp.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace rrsim::forecast {

double binomial_cdf(std::size_t k, std::size_t n, double p) {
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument("binomial p must be in [0, 1]");
  }
  if (k >= n) return 1.0;
  if (p == 0.0) return 1.0;
  if (p == 1.0) return 0.0;  // k < n, and all mass sits at X = n
  const double log_p = std::log(p);
  const double log_1p = std::log1p(-p);
  const double lg_n1 = std::lgamma(static_cast<double>(n) + 1.0);
  double sum = 0.0;
  for (std::size_t i = 0; i <= k; ++i) {
    const auto di = static_cast<double>(i);
    const auto dni = static_cast<double>(n - i);
    const double log_term = lg_n1 - std::lgamma(di + 1.0) -
                            std::lgamma(dni + 1.0) + di * log_p +
                            dni * log_1p;
    sum += std::exp(log_term);
  }
  return std::min(sum, 1.0);
}

std::optional<std::size_t> bmbp_order_statistic(std::size_t n, double q,
                                                double c) {
  if (!(q > 0.0 && q < 1.0) || !(c > 0.0 && c < 1.0)) {
    throw std::invalid_argument("quantile and confidence must be in (0, 1)");
  }
  if (n == 0) return std::nullopt;
  // Want the smallest k (1-based) with P[Binomial(n, q) < k] >= c,
  // i.e. binomial_cdf(k - 1, n, q) >= c. The CDF is monotone in k:
  // binary search.
  std::size_t lo = 1;
  std::size_t hi = n;
  if (binomial_cdf(n - 1, n, q) < c) return std::nullopt;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (binomial_cdf(mid - 1, n, q) >= c) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

BmbpPredictor::BmbpPredictor(double quantile, double confidence,
                             std::size_t max_history)
    : quantile_(quantile),
      confidence_(confidence),
      max_history_(max_history) {
  if (!(quantile_ > 0.0 && quantile_ < 1.0) ||
      !(confidence_ > 0.0 && confidence_ < 1.0)) {
    throw std::invalid_argument("quantile and confidence must be in (0, 1)");
  }
  if (max_history_ == 0) {
    throw std::invalid_argument("history window must be >= 1");
  }
}

void BmbpPredictor::observe(double wait) {
  if (wait < 0.0) throw std::invalid_argument("waits cannot be negative");
  window_.push_back(wait);
  if (window_.size() > max_history_) window_.pop_front();
}

std::optional<double> BmbpPredictor::upper_bound() const {
  const auto k =
      bmbp_order_statistic(window_.size(), quantile_, confidence_);
  if (!k) return std::nullopt;
  std::vector<double> sorted(window_.begin(), window_.end());
  std::sort(sorted.begin(), sorted.end());
  return sorted[*k - 1];
}

}  // namespace rrsim::forecast
