// The Binomial Method Batch Predictor (Brevik, Nurmi & Wolski, PPoPP
// 2006) — the paper's reference [2] and its suggested future direction
// for Section 5: statistical queue-wait forecasts instead of
// reservation-based ones.
//
// Given n historical waits treated as an i.i.d. sample, the k-th order
// statistic is an upper bound on the population's q-quantile with
// confidence c whenever P[Binomial(n, q) < k] >= c. The predictor keeps
// a sliding window of observed waits and answers "with confidence c,
// at most a fraction 1-q of jobs will wait longer than B".
#pragma once

#include <cstddef>
#include <deque>
#include <optional>

namespace rrsim::forecast {

/// P[X <= k] for X ~ Binomial(n, p). Exact summation in log space;
/// numerically solid for the window sizes predictors use (n <= ~1e5).
/// Throws std::invalid_argument unless 0 <= p <= 1.
double binomial_cdf(std::size_t k, std::size_t n, double p);

/// Smallest 1-based order-statistic index k such that the k-th smallest
/// of n samples upper-bounds the q-quantile with confidence >= c, or
/// nullopt if even the sample maximum (k = n) does not reach confidence c
/// (history too small). Throws std::invalid_argument unless q and c are
/// in (0, 1).
std::optional<std::size_t> bmbp_order_statistic(std::size_t n, double q,
                                                double c);

/// Sliding-window BMBP: observe waits, query the current bound.
class BmbpPredictor {
 public:
  /// Predicts an upper bound on the `quantile`-quantile of waits with
  /// the given `confidence`, over a window of the most recent
  /// `max_history` observations. Throws std::invalid_argument on
  /// parameters outside (0, 1) or zero history.
  BmbpPredictor(double quantile = 0.95, double confidence = 0.95,
                std::size_t max_history = 512);

  /// Adds an observed wait (>= 0) to the window.
  void observe(double wait);

  /// Current upper bound, or nullopt while the window is too small to
  /// support the requested confidence.
  std::optional<double> upper_bound() const;

  std::size_t history_size() const noexcept { return window_.size(); }
  double quantile() const noexcept { return quantile_; }
  double confidence() const noexcept { return confidence_; }

 private:
  double quantile_;
  double confidence_;
  std::size_t max_history_;
  std::deque<double> window_;
};

}  // namespace rrsim::forecast
