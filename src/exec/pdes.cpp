#include "rrsim/exec/pdes.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "rrsim/exec/campaign_runner.h"

namespace rrsim::exec {

namespace {

/// Global mailbox order: delivery time, then event priority, then source
/// partition, then per-source posting sequence. (source, seq) pairs are
/// unique, so this is a total order and the sort is deterministic.
struct MessageOrder {
  template <typename M>
  bool operator()(const M& a, const M& b) const noexcept {
    if (a.time != b.time) return a.time < b.time;
    if (a.priority != b.priority) return a.priority < b.priority;
    if (a.source != b.source) return a.source < b.source;
    return a.seq < b.seq;
  }
};

}  // namespace

PdesCoordinator::PdesCoordinator(std::size_t partitions, double lookahead,
                                 int jobs)
    : lookahead_(lookahead) {
  if (partitions == 0) {
    throw std::invalid_argument("pdes: need at least one partition");
  }
  if (!(lookahead > 0.0) || !std::isfinite(lookahead)) {
    throw std::invalid_argument(
        "pdes: lookahead must be positive and finite (a zero-latency grid "
        "is the classic single-queue kernel, not a PDES partitioning)");
  }
  sims_.reserve(partitions);
  for (std::size_t i = 0; i < partitions; ++i) {
    sims_.push_back(std::make_unique<des::Simulation>());
  }
  staging_.resize(partitions);
  seq_.assign(partitions, 0);
  jobs_ = resolve_jobs(jobs);
  if (jobs_ > static_cast<int>(partitions)) {
    jobs_ = static_cast<int>(partitions);
  }
  if (jobs_ < 1) jobs_ = 1;
  if (jobs_ > 1) pool_ = std::make_unique<ThreadPool>(jobs_);
}

void PdesCoordinator::post(std::size_t source, std::size_t dest, des::Time t,
                           des::Priority prio, util::TaskFunction fn) {
  if (source >= sims_.size() || dest >= sims_.size()) {
    throw std::out_of_range("pdes: partition index out of range");
  }
  if (!fn) throw std::invalid_argument("pdes: empty message callback");
  // The conservative contract. Checked in every build (it is one compare
  // per cross-cluster message): a violation would let a message land in a
  // window its destination already executed, silently breaking both
  // causality and the jobs-independence guarantee.
  if (!(t >= sims_[source]->now() + lookahead_)) {
    throw std::logic_error("pdes: message posted inside the lookahead horizon");
  }
  staging_[source].push_back(Message{t, static_cast<int>(prio),
                                     static_cast<std::uint32_t>(source),
                                     static_cast<std::uint32_t>(dest),
                                     seq_[source]++, std::move(fn)});
}

void PdesCoordinator::collect_staged() {
  for (std::vector<Message>& box : staging_) {
    for (Message& m : box) pending_.push_back(std::move(m));
    box.clear();
  }
}

void PdesCoordinator::deliver_messages(des::Time bound, bool inclusive) {
  std::sort(pending_.begin(), pending_.end(), MessageOrder{});
  std::size_t i = 0;
  for (; i < pending_.size(); ++i) {
    Message& m = pending_[i];
    if (inclusive ? m.time > bound : !(m.time < bound)) break;
#if RRSIM_VALIDATE_ENABLED
    if (vd_corrupt_delivery_) {
      vd_corrupt_delivery_ = false;
      m.time = -1.0;
    }
#endif
    des::Simulation& dst = *sims_[m.dest];
    RRSIM_CHECK(m.time >= dst.now(),
                "pdes: message delivered into its destination's past");
    dst.schedule_at(
        m.time, [fn = std::move(m.fn)]() mutable { fn(); },
        static_cast<des::Priority>(m.priority), m.dest);
    ++delivered_;
  }
  pending_.erase(pending_.begin(),
                 pending_.begin() + static_cast<std::ptrdiff_t>(i));
}

void PdesCoordinator::advance_all(des::Time horizon) {
  const int n = static_cast<int>(sims_.size());
  if (pool_ != nullptr) {
    parallel_for_each(*pool_, n, [this, horizon](int i) {
      sims_[static_cast<std::size_t>(i)]->run_before(horizon);
    });
  } else {
    for (int i = 0; i < n; ++i) {
      sims_[static_cast<std::size_t>(i)]->run_before(horizon);
    }
  }
}

void PdesCoordinator::run(des::Time limit) {
  if (std::isnan(limit) || limit < 0.0) {
    throw std::invalid_argument("pdes: run limit must be >= 0");
  }
  for (;;) {
    collect_staged();
    des::Time t = des::kTimeInfinity;
    for (const std::unique_ptr<des::Simulation>& sim : sims_) {
      t = std::min(t, sim->next_event_time());
    }
    for (const Message& m : pending_) t = std::min(t, m.time);
    if (t >= limit || t >= des::kTimeInfinity) break;
    des::Time horizon = t + lookahead_;
    if (horizon > limit) horizon = limit;
#if RRSIM_VALIDATE_ENABLED
    RRSIM_CHECK(horizon >= vd_last_horizon_, "pdes: horizon went backwards");
    vd_last_horizon_ = horizon;
#endif
    deliver_messages(horizon, /*inclusive=*/false);
    advance_all(horizon);
    ++windows_;
  }
  if (limit < des::kTimeInfinity) {
    // Final pass, mirroring Simulation::run_until(limit): everything at
    // exactly `limit` still runs, then every partition's clock rests at
    // the limit. No window is needed — remaining messages are all due at
    // time >= limit, and anything an at-limit event posts is due at
    // >= limit + lookahead, i.e. past the truncation point.
    deliver_messages(limit, /*inclusive=*/true);
    for (const std::unique_ptr<des::Simulation>& sim : sims_) {
      sim->run_until(limit);
    }
  }
}

}  // namespace rrsim::exec
