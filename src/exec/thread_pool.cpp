#include "rrsim/exec/thread_pool.h"

#include <utility>

namespace rrsim::exec {

ThreadPool::ThreadPool(int threads) {
  const int n = threads < 1 ? 1 : threads;
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  task_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::grow_ring(std::size_t min_cap) {
  std::size_t cap = ring_.empty() ? 16 : ring_.size();
  while (cap < min_cap) cap *= 2;
  if (cap <= ring_.size()) return;
  std::vector<util::TaskFunction> bigger(cap);
  const std::size_t mask = ring_.size() - 1;
  for (std::size_t i = 0; i < ring_count_; ++i) {
    bigger[i] = std::move(ring_[(ring_head_ + i) & mask]);
  }
  ring_ = std::move(bigger);
  ring_head_ = 0;
}

void ThreadPool::reserve(std::size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  grow_ring(n);
}

void ThreadPool::submit(util::TaskFunction task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (ring_count_ == ring_.size()) grow_ring(ring_count_ + 1);
    ring_[(ring_head_ + ring_count_) & (ring_.size() - 1)] = std::move(task);
    ++ring_count_;
  }
  task_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return ring_count_ == 0 && active_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    util::TaskFunction task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_cv_.wait(lock, [this] { return stop_ || ring_count_ != 0; });
      // Drain the queue even when stopping so submitted work always runs.
      if (ring_count_ == 0) return;
      task = std::move(ring_[ring_head_]);  // leaves the slot empty
      ring_head_ = (ring_head_ + 1) & (ring_.size() - 1);
      --ring_count_;
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (ring_count_ == 0 && active_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace rrsim::exec
