#include "rrsim/exec/thread_pool.h"

#include <utility>

namespace rrsim::exec {

ThreadPool::ThreadPool(int threads) {
  const int n = threads < 1 ? 1 : threads;
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  task_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push_back(std::move(task));
  }
  task_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return tasks_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      // Drain the queue even when stopping so submitted work always runs.
      if (tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (tasks_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace rrsim::exec
