// Fixed-size worker pool for campaign-level parallelism. The pool is
// deliberately simple: a locked FIFO of type-erased tasks and N worker
// threads. Determinism is not the pool's job — callers that need
// reproducible results must make each task independent and reduce task
// outputs in a fixed order (see rrsim/exec/campaign_runner.h).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "rrsim/util/inline_fn.h"

namespace rrsim::exec {

/// A fixed set of worker threads draining a shared task queue. Tasks may
/// not submit to the pool they run on from within wait_idle()'s critical
/// window and must not throw out of the pool (wrap work that can throw —
/// parallel_for_each below does this for you).
class ThreadPool {
 public:
  /// Spawns `threads` workers (clamped to >= 1).
  explicit ThreadPool(int threads);

  /// Drains outstanding tasks, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Tasks run in FIFO claim order but complete in any
  /// order. Must not be called after shutdown began (i.e. from the
  /// destructor's drain). The task type is move-only with a small-buffer
  /// optimization, so typical campaign tasks (a few captured pointers and
  /// indices) enqueue without allocating and may own move-only state.
  void submit(util::TaskFunction task);

  /// Pre-sizes the task ring for `n` outstanding tasks, so a burst of
  /// that many submits never regrows the queue mid-campaign.
  void reserve(std::size_t n);

  /// Blocks until the queue is empty and every worker is idle.
  void wait_idle();

  /// Number of worker threads.
  int size() const noexcept { return static_cast<int>(workers_.size()); }

 private:
  void worker_loop();

  /// Regrows the ring to at least `min_cap` slots (power of two),
  /// preserving FIFO order. Caller holds mu_.
  void grow_ring(std::size_t min_cap);

  std::mutex mu_;
  std::condition_variable task_cv_;  // signalled when tasks arrive / stop
  std::condition_variable idle_cv_;  // signalled when a worker goes idle
  /// FIFO task queue as a circular buffer over one flat allocation
  /// (power-of-two capacity). Replaces std::deque: no chunk allocation
  /// per enqueue burst, and the storage is reused for the whole campaign.
  std::vector<util::TaskFunction> ring_;
  std::size_t ring_head_ = 0;   // index of the oldest task
  std::size_t ring_count_ = 0;  // tasks currently queued
  std::vector<std::thread> workers_;
  std::size_t active_ = 0;  // workers currently running a task
  bool stop_ = false;
};

/// Runs `fn(i)` for every i in [0, n) on the pool and blocks until all
/// calls finished. Exceptions are captured per index; after completion the
/// exception of the *lowest* failing index is rethrown, so error reporting
/// is deterministic regardless of completion order.
template <typename Fn>
void parallel_for_each(ThreadPool& pool, int n, Fn&& fn) {
  if (n <= 0) return;
  struct Sync {
    std::mutex mu;
    std::condition_variable cv;
    int remaining;
  };
  auto sync = std::make_shared<Sync>();
  sync->remaining = n;
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    pool.submit([sync, i, &errors, &fn] {
      try {
        fn(i);
      } catch (...) {
        errors[static_cast<std::size_t>(i)] = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(sync->mu);
      if (--sync->remaining == 0) sync->cv.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(sync->mu);
  sync->cv.wait(lock, [&] { return sync->remaining == 0; });
  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

}  // namespace rrsim::exec
