// Cross-task fan-out with per-task ordered reduction: the execution core
// of the sweep engine.
//
// A sweep is a list of tasks (the points of a figure or table), each made
// of `n` independent, index-addressed work units (the replications of that
// point). CampaignRunner parallelizes one task at a time, which strands
// workers at every point boundary: a 30-point figure with 10 replications
// on an 8-core box repeatedly drains to the 1-2 slowest replications
// before the next point may start. SweepRunner instead flattens all
// queued tasks' units into ONE pool serviced by ONE set of worker threads
// — (point, replication) units from different points run side by side, so
// the machine only drains once, at the very end of the whole sweep.
//
// Determinism contract (same as CampaignRunner, extended across tasks):
// map(u) may run on any thread in any order; reductions run on the
// calling thread, tasks in add() order, units in index order within each
// task. Output is therefore bit-identical for any worker count, provided
// each unit derives its randomness from its index.
//
// A single long-lived pool has a second, quieter benefit: worker threads
// survive the whole sweep, so thread_local state (the per-worker
// core::ExperimentWorkspace arenas) stays warm across every unit the
// thread executes, instead of dying with a per-point pool.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "rrsim/exec/campaign_runner.h"
#include "rrsim/exec/thread_pool.h"

namespace rrsim::exec {

/// Queue tasks with add(), execute everything with run().
class SweepRunner {
 public:
  /// jobs = 0 resolves via resolve_jobs() (--jobs flag, RRSIM_JOBS env,
  /// hardware concurrency); otherwise uses `jobs` workers.
  explicit SweepRunner(int jobs = 0) : jobs_(resolve_jobs(jobs)) {}

  SweepRunner(const SweepRunner&) = delete;
  SweepRunner& operator=(const SweepRunner&) = delete;

  int jobs() const noexcept { return jobs_; }

  /// Work units queued so far (across all tasks).
  std::size_t pending_units() const noexcept { return total_units_; }

  /// Queues one task of `n` units. map(u) produces unit u's result on a
  /// worker thread; reduce(u, result) folds it on the thread that later
  /// calls run(), in unit order, after all tasks queued before this one
  /// have been reduced. Both callables are captured by value (they outlive
  /// this call); map must be const-invocable from multiple threads.
  template <typename Map, typename Reduce>
  void add(int n, Map map, Reduce reduce) {
    add_affine(n, 0, std::move(map), std::move(reduce));
  }

  /// add() with a cache-affinity hint. Tasks sharing a nonzero `affinity`
  /// declare that same-index units derive identical expensive state (for
  /// campaign sweeps: unit r of every point at one trace_affinity replays
  /// the same memoized trace — see core::trace_affinity), so run() orders
  /// execution to make the sharing pay: of each (affinity, unit) group,
  /// the first-queued member runs in a leader phase (cold, generating the
  /// shared state in parallel across groups), and the remaining members
  /// run after a barrier (warm, all hits). affinity == 0 opts out — every
  /// unit is its own group and execution order is exactly add() order.
  /// Scheduling only: results, reduction order, and therefore output are
  /// bit-identical to add() for any worker count, because each unit still
  /// writes its own result slot and reductions run task-by-task in add()
  /// order either way.
  template <typename Map, typename Reduce>
  void add_affine(int n, std::uint64_t affinity, Map map, Reduce reduce) {
    using R = std::invoke_result_t<Map&, int>;
    static_assert(!std::is_void_v<R>, "map must return the per-unit result");
    if (n <= 0) return;
    auto results = std::make_shared<std::vector<std::optional<R>>>(
        static_cast<std::size_t>(n));
    Task task;
    task.units = n;
    task.affinity = affinity;
    task.run_unit = [results, map = std::move(map)](int u) {
      (*results)[static_cast<std::size_t>(u)].emplace(map(u));
    };
    task.reduce_all = [results, reduce = std::move(reduce)]() {
      for (std::size_t u = 0; u < results->size(); ++u) {
        reduce(static_cast<int>(u), std::move(*(*results)[u]));
      }
    };
    total_units_ += static_cast<std::size_t>(n);
    tasks_.push_back(std::move(task));
  }

  /// Executes every queued unit (one flat pool, one ThreadPool when
  /// jobs > 1), then reduces task by task in add() order, and clears the
  /// queue. The first exception to surface propagates and discards the
  /// whole batch (a partially-executed batch is not replayable); the
  /// runner itself stays usable for newly queued tasks. Calling run()
  /// with nothing queued is a no-op.
  void run();

 private:
  struct Task {
    int units = 0;
    std::uint64_t affinity = 0;  ///< 0 = no sharing declared
    // rrsim-lint-allow(std-function-member): assigned once per sweep
    // point (cold path); run_unit's signature takes the unit index, which
    // InlineFunction (void() only) cannot express.
    std::function<void(int)> run_unit;
    // rrsim-lint-allow(std-function-member): same — one assignment and
    // one call per sweep point, never per event.
    std::function<void()> reduce_all;
  };

  int jobs_;
  std::size_t total_units_ = 0;
  std::vector<Task> tasks_;
};

}  // namespace rrsim::exec
