// Conservative parallel-DES coordinator (horizon-barrier protocol).
//
// The grid model interacts across clusters only through gateway
// submit/cancel/finish notifications, and those all travel with a fixed
// cross-cluster latency L > 0. That latency is natural *lookahead* in the
// conservative-PDES sense (cf. SimGrid's parallel execution kernel): an
// event dispatched at time te in one partition can influence another
// partition no earlier than te + L. The coordinator exploits exactly
// that:
//
//   1. T  = min over partitions of next_event_time(), and over pending
//           cross-partition messages of their delivery time.
//   2. H  = T + L (capped at the run limit). No message produced by any
//           event in [T, H) can be due before H, so every partition may
//           dispatch its events with time < H independently.
//   3. Deliver pending messages with time < H, globally sorted by
//           (time, priority, source partition, per-source seq), into
//           their destination partitions.
//   4. Advance every partition with run_before(H) — in parallel on a
//           ThreadPool when jobs > 1, in partition order otherwise.
//   5. Collect the messages the window staged, and repeat.
//
// Determinism for any worker count is by construction, not by luck:
//   * each partition's event order is the kernel's own (time, priority,
//     seq) order, executed by exactly one thread per window;
//   * messages are staged in per-source mailboxes with per-source seq
//     counters — worker threads never contend on a shared counter whose
//     interleaving could leak into the order;
//   * the coordinator injects messages between windows, on one thread,
//     in the sorted order above, so destination-side seq numbers (and
//     hence same-timestamp tie-breaks) are identical for --jobs=1 and
//     --jobs=N.
// The sequential reference is therefore literally this class with one
// worker; DESIGN.md §9 gives the full argument.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "rrsim/des/simulation.h"
#include "rrsim/exec/thread_pool.h"
#include "rrsim/util/inline_fn.h"
#include "rrsim/util/validate.h"

namespace rrsim::exec {

/// Owns one des::Simulation per partition plus the barrier protocol that
/// advances them in lockstep windows. Partition callbacks may touch only
/// their own partition's state; cross-partition effects must go through
/// post(). (The rrsim_lint worker-ref-capture rule polices the lambda
/// side of this contract.)
class PdesCoordinator {
 public:
  /// `lookahead` must be positive and finite — it is the protocol's
  /// safety margin, not a tuning knob. `jobs` <= 0 resolves via
  /// resolve_jobs() and is clamped to the partition count; 1 runs every
  /// window on the calling thread.
  PdesCoordinator(std::size_t partitions, double lookahead, int jobs = 0);

  PdesCoordinator(const PdesCoordinator&) = delete;
  PdesCoordinator& operator=(const PdesCoordinator&) = delete;

  std::size_t partitions() const noexcept { return sims_.size(); }
  des::Simulation& partition(std::size_t i) noexcept { return *sims_[i]; }
  double lookahead() const noexcept { return lookahead_; }

  /// Effective worker count (after resolve/clamp).
  int jobs() const noexcept { return jobs_; }

  /// Stages `fn` for execution on partition `dest` at absolute time `t`
  /// with priority `prio`. Must be called from code running on partition
  /// `source` (its window thread), with t >= partition(source).now() +
  /// lookahead() — the conservative contract; violations throw
  /// std::logic_error. Same-partition effects should use the partition's
  /// own schedule_in/schedule_at instead (no latency, no mailbox).
  void post(std::size_t source, std::size_t dest, des::Time t,
            des::Priority prio, util::TaskFunction fn);

  /// Runs the barrier loop until no events or undelivered messages
  /// remain at time <= `limit`. Mirrors Simulation semantics: with the
  /// default infinite limit this is run(); with a finite limit, events
  /// with time <= limit are dispatched and every partition's now() ends
  /// at `limit` (run_until semantics), leaving later work queued.
  void run(des::Time limit = des::kTimeInfinity);

  /// Barrier windows executed so far (observability for bench/tests).
  std::uint64_t windows() const noexcept { return windows_; }

  /// Cross-partition messages injected so far.
  std::uint64_t messages_delivered() const noexcept { return delivered_; }

  /// Cross-partition messages posted but not yet scheduled into their
  /// destination partition (staged mailboxes plus the collected pending
  /// list). While this is 0, same-timestamp events in different
  /// partitions cannot be causally coupled through the coordinator — the
  /// PDES independence criterion tie-break explorers use for DPOR-style
  /// pruning. Coordinator-thread only (jobs == 1 for explorer runs).
  std::uint64_t in_flight_messages() const noexcept {
    std::uint64_t n = pending_.size();
    for (const std::vector<Message>& box : staging_) n += box.size();
    return n;
  }

#if RRSIM_VALIDATE_ENABLED
  /// Corruption hook for the mailbox-oracle death test: warps the next
  /// delivered message's timestamp to before time zero, so the
  /// "delivered into its destination's past" check must trip.
  void debug_corrupt_next_delivery() noexcept { vd_corrupt_delivery_ = true; }
#endif

 private:
  struct Message {
    des::Time time;
    int priority;
    std::uint32_t source;
    std::uint32_t dest;
    std::uint64_t seq;  ///< per-source posting sequence
    util::TaskFunction fn;
  };

  /// Moves every staged mailbox into pending_, in source order. Runs on
  /// the coordinator thread only; the parallel_for_each barrier provides
  /// the happens-before edge from the workers' writes.
  void collect_staged();

  /// Sorts pending_ by (time, priority, source, seq) and schedules every
  /// message with time < bound (or <= bound when `inclusive`) into its
  /// destination partition.
  void deliver_messages(des::Time bound, bool inclusive);

  /// run_before(horizon) on every partition — pooled when jobs_ > 1.
  void advance_all(des::Time horizon);

  double lookahead_;
  int jobs_ = 1;
  std::vector<std::unique_ptr<des::Simulation>> sims_;
  std::vector<std::vector<Message>> staging_;  ///< one mailbox per source
  std::vector<std::uint64_t> seq_;             ///< per-source post counter
  std::vector<Message> pending_;  ///< collected, awaiting delivery
  std::unique_ptr<ThreadPool> pool_;
  std::uint64_t windows_ = 0;
  std::uint64_t delivered_ = 0;
#if RRSIM_VALIDATE_ENABLED
  bool vd_corrupt_delivery_ = false;
  des::Time vd_last_horizon_ = 0.0;
#endif
};

}  // namespace rrsim::exec
