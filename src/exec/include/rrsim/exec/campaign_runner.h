// Deterministic fan-out/ordered-reduce for campaigns.
//
// A campaign is `n` independent repetitions whose per-rep randomness is
// derived from the repetition index (seed + r), so repetitions can run on
// any thread in any order. Reproducibility then only requires that the
// *reduction* over per-rep results happens in repetition order — which
// CampaignRunner::map_reduce guarantees: map(r) runs concurrently,
// reduce(r, result) runs on the calling thread for r = 0, 1, ..., n-1.
// Results are therefore bit-identical for any worker count, including 1.
#pragma once

#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "rrsim/exec/thread_pool.h"

namespace rrsim::exec {

/// Process-wide default worker count used when a campaign is invoked with
/// jobs = 0. Set from the --jobs flag (see core::apply_common_flags);
/// 0 means "not configured".
void set_default_jobs(int jobs);

/// Resolves a requested worker count: `requested` if >= 1, else the value
/// from set_default_jobs, else the RRSIM_JOBS environment variable, else
/// std::thread::hardware_concurrency() (at least 1).
int resolve_jobs(int requested) noexcept;

/// resolve_jobs(0): the worker count campaigns use by default.
inline int default_jobs() noexcept { return resolve_jobs(0); }

/// Fans independent, index-seeded work items out across a worker pool and
/// reduces their results in index order on the calling thread.
class CampaignRunner {
 public:
  /// jobs = 0 resolves via resolve_jobs(); otherwise uses `jobs` workers.
  explicit CampaignRunner(int jobs = 0) : jobs_(resolve_jobs(jobs)) {}

  int jobs() const noexcept { return jobs_; }

  /// Runs map(r) for r in [0, n), then calls reduce(r, std::move(result_r))
  /// sequentially for r = 0..n-1 on the calling thread. With one worker
  /// (or n <= 1) everything runs inline on the calling thread; either way
  /// the reduce sequence — and hence the outcome — is identical.
  /// The first exception (by repetition index) propagates to the caller.
  template <typename Map, typename Reduce>
  void map_reduce(int n, Map&& map, Reduce&& reduce) const {
    using R = std::invoke_result_t<Map&, int>;
    static_assert(!std::is_void_v<R>, "map must return the per-rep result");
    if (n <= 0) return;
    if (jobs_ <= 1 || n == 1) {
      for (int r = 0; r < n; ++r) reduce(r, map(r));
      return;
    }
    std::vector<std::optional<R>> results(static_cast<std::size_t>(n));
    const int workers = jobs_ < n ? jobs_ : n;
    {
      ThreadPool pool(workers);
      parallel_for_each(pool, n, [&results, &map](int r) {
        results[static_cast<std::size_t>(r)].emplace(map(r));
      });
    }
    for (int r = 0; r < n; ++r) {
      reduce(r, std::move(*results[static_cast<std::size_t>(r)]));
    }
  }

 private:
  int jobs_;
};

}  // namespace rrsim::exec
