#include "rrsim/exec/sweep_runner.h"

#include <algorithm>
#include <map>

namespace rrsim::exec {

void SweepRunner::run() {
  // Flatten (task, unit) in queue order — the reference order everything
  // below is measured against: reduction is ALWAYS task-by-task in add()
  // order, units ascending, so execution order is pure scheduling.
  std::vector<std::pair<std::size_t, int>> flat;
  flat.reserve(total_units_);
  for (std::size_t t = 0; t < tasks_.size(); ++t) {
    for (int u = 0; u < tasks_[t].units; ++u) flat.emplace_back(t, u);
  }
  const int n = static_cast<int>(flat.size());

  // Cache-affine grouping: units of tasks sharing a nonzero affinity are
  // grouped per unit index (unit r of every such task replays trace r —
  // units differ in seed, so only same-index units share). The first
  // flat-order member of each group leads (cold: it generates the shared
  // memoized state); the rest follow (warm). Affinity-0 units are their
  // own leaders, so an affinity-free batch executes in exactly the
  // historical flat order.
  std::map<std::pair<std::uint64_t, int>, std::size_t> first_pos;
  std::vector<std::size_t> leaders;  // flat positions, ascending
  // (leader flat position, follower flat position), built ascending in the
  // second coordinate; sorting groups followers by leader while keeping
  // flat order within each group.
  std::vector<std::pair<std::size_t, std::size_t>> followers;
  for (std::size_t i = 0; i < flat.size(); ++i) {
    const std::uint64_t a = tasks_[flat[i].first].affinity;
    if (a == 0) {
      leaders.push_back(i);
      continue;
    }
    const auto [it, inserted] =
        first_pos.emplace(std::make_pair(a, flat[i].second), i);
    if (inserted) {
      leaders.push_back(i);
    } else {
      followers.emplace_back(it->second, i);
    }
  }
  std::sort(followers.begin(), followers.end());

  try {
    if (jobs_ <= 1 || n <= 1) {
      // Serial: each leader immediately followed by its own followers —
      // the tightest LRU locality a byte-budgeted trace cache can get.
      // Both vectors are ascending in leader position, so this is a merge.
      std::size_t fi = 0;
      for (const std::size_t li : leaders) {
        const auto& [t, u] = flat[li];
        tasks_[t].run_unit(u);
        for (; fi < followers.size() && followers[fi].first == li; ++fi) {
          const auto& [ft, fu] = flat[followers[fi].second];
          tasks_[ft].run_unit(fu);
        }
      }
    } else {
      // Parallel: leaders fan out first (cold generation runs once per
      // group, concurrently across groups), then a barrier, then the
      // followers (every shared lookup hits). Sequential parallel_for_each
      // calls on one pool are safe — each call carries its own
      // synchronization — and the pool (with its thread_local workspace
      // arenas) stays warm across the phases.
      ThreadPool pool(jobs_ < n ? jobs_ : n);
      parallel_for_each(pool, static_cast<int>(leaders.size()),
                        [&flat, &leaders, this](int i) {
                          const auto& [t, u] =
                              flat[leaders[static_cast<std::size_t>(i)]];
                          tasks_[t].run_unit(u);
                        });
      parallel_for_each(pool, static_cast<int>(followers.size()),
                        [&flat, &followers, this](int i) {
                          const auto& [t, u] =
                              flat[followers[static_cast<std::size_t>(i)]
                                       .second];
                          tasks_[t].run_unit(u);
                        });
    }
    for (Task& task : tasks_) task.reduce_all();
  } catch (...) {
    // A partially-executed batch is not replayable; drop it whole so the
    // runner stays usable for fresh tasks.
    tasks_.clear();
    total_units_ = 0;
    throw;
  }
  tasks_.clear();
  total_units_ = 0;
}

}  // namespace rrsim::exec
