#include "rrsim/exec/sweep_runner.h"

namespace rrsim::exec {

void SweepRunner::run() {
  // Flatten (task, unit) in queue order. Units are *claimed* by workers in
  // this order too (the pool's queue is FIFO), which keeps early tasks'
  // reductions unblocked as soon as possible without any effect on the
  // results — reduction order is fixed below regardless.
  std::vector<std::pair<std::size_t, int>> flat;
  flat.reserve(total_units_);
  for (std::size_t t = 0; t < tasks_.size(); ++t) {
    for (int u = 0; u < tasks_[t].units; ++u) flat.emplace_back(t, u);
  }
  const int n = static_cast<int>(flat.size());
  try {
    if (jobs_ <= 1 || n <= 1) {
      for (const auto& [t, u] : flat) tasks_[t].run_unit(u);
    } else {
      ThreadPool pool(jobs_ < n ? jobs_ : n);
      parallel_for_each(pool, n, [&flat, this](int i) {
        const auto& [t, u] = flat[static_cast<std::size_t>(i)];
        tasks_[t].run_unit(u);
      });
    }
    for (Task& task : tasks_) task.reduce_all();
  } catch (...) {
    // A partially-executed batch is not replayable; drop it whole so the
    // runner stays usable for fresh tasks.
    tasks_.clear();
    total_units_ = 0;
    throw;
  }
  tasks_.clear();
  total_units_ = 0;
}

}  // namespace rrsim::exec
