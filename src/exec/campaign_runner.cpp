#include "rrsim/exec/campaign_runner.h"

#include <atomic>
#include <cstdlib>
#include <thread>

namespace rrsim::exec {

namespace {
// rrsim-lint-allow(mutable-global): caches the default worker count
// (env/hardware probe); campaign results are bit-identical across worker
// counts, so this can never leak into outputs.
std::atomic<int> g_default_jobs{0};

int env_jobs() noexcept {
  const char* env = std::getenv("RRSIM_JOBS");
  if (env == nullptr || *env == '\0') return 0;
  char* end = nullptr;
  const long v = std::strtol(env, &end, 10);
  if (end == env || *end != '\0' || v < 1 || v > 4096) return 0;
  return static_cast<int>(v);
}
}  // namespace

void set_default_jobs(int jobs) {
  g_default_jobs.store(jobs < 0 ? 0 : jobs, std::memory_order_relaxed);
}

int resolve_jobs(int requested) noexcept {
  if (requested >= 1) return requested;
  const int configured = g_default_jobs.load(std::memory_order_relaxed);
  if (configured >= 1) return configured;
  const int from_env = env_jobs();
  if (from_env >= 1) return from_env;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? static_cast<int>(hw) : 1;
}

}  // namespace rrsim::exec
