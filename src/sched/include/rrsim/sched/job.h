// The scheduler-side view of a job (one *request* in one batch queue).
// When redundant requests are used, each replica of a grid job is a
// distinct sched::Job in a distinct cluster's queue.
#pragma once

#include <cstdint>

#include "rrsim/des/simulation.h"

namespace rrsim::sched {

using des::Time;

/// Identifies one request within one scheduler. Replicas of the same grid
/// job have different JobIds; the grid::Gateway keeps the mapping. 32 bits
/// by design: ids are allocated densely from 1, and even the grid-scale
/// target (10^7 jobs x up to 64 replicas) stays well under 2^32 — halving
/// every per-job table slot that keys on a JobId.
using JobId = std::uint32_t;

/// Lifecycle of a request in a batch queue. One byte: the lifecycle index
/// holds an entry for every id ever submitted, so its slot size scales
/// with total jobs.
enum class JobState : std::uint8_t {
  kPending,    ///< waiting in the queue
  kRunning,    ///< allocated nodes, executing
  kFinished,   ///< ran to completion
  kCancelled,  ///< removed from the queue before starting (qdel)
  kDeclined,   ///< grant refused by the owner (a sibling replica won)
};

/// Identifies the human (or account) behind a request, for per-user
/// policies such as pending-request limits.
using UserId = std::uint32_t;

/// One batch request. `requested_time` is what the user asked for (the
/// scheduler plans with it); `actual_time` is how long the job really runs
/// (always <= requested_time — real schedulers kill jobs at the limit).
struct Job {
  JobId id = 0;
  int nodes = 1;
  Time submit_time = 0.0;
  Time requested_time = 1.0;
  Time actual_time = 1.0;
  UserId user = 0;
  /// Exempt from per-user pending limits. The grid gateway marks the
  /// local (origin) replica exempt: a user's home submission always
  /// enters the queue eventually, only *extra* redundancy is capped —
  /// the mitigation the paper's Section 2/6 describes ("batch schedulers
  /// can be configured so that a single user can only have a limited
  /// number of pending requests").
  bool limit_exempt = false;

  JobState state = JobState::kPending;
  Time start_time = -1.0;
  Time finish_time = -1.0;

  /// Queue waiting time; only meaningful once the job has started.
  Time wait_time() const noexcept { return start_time - submit_time; }
};

}  // namespace rrsim::sched
