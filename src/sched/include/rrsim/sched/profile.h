// Node-availability profile: how many nodes are free over future time.
// This is the planning structure behind Conservative Backfilling and
// behind reservation-based queue-wait prediction (Section 5 of the paper).
#pragma once

#include <utility>
#include <vector>

#include "rrsim/des/simulation.h"

namespace rrsim::sched {

using des::Time;

/// Piecewise-constant free-node count over [0, +inf).
///
/// Represented as breakpoints (t_i, free_i), sorted by t_i, meaning
/// `free_i` nodes are available on [t_i, t_{i+1}); the last segment extends
/// to infinity. Reservations subtract capacity over an interval; releases
/// are done by rebuilding (profiles are small and rebuilds keep the
/// invariants trivially true).
class Profile {
 public:
  /// A profile with `total_nodes` free everywhere. Throws
  /// std::invalid_argument if total_nodes < 1.
  explicit Profile(int total_nodes);

  /// Total capacity.
  int total_nodes() const noexcept { return total_; }

  /// Free nodes at time `t` (>= 0).
  int free_at(Time t) const;

  /// Smallest free-node count over [start, start + duration).
  int min_free(Time start, Time duration) const;

  /// Earliest time t >= `from` at which `nodes` nodes are simultaneously
  /// free for the whole interval [t, t + duration). Always exists because
  /// the profile eventually returns to a constant level >= nodes whenever
  /// nodes <= total (reservations are finite); throws std::invalid_argument
  /// if nodes > total or nodes < 1 or duration <= 0.
  Time earliest_start(Time from, int nodes, Time duration) const;

  /// Removes `nodes` nodes from the free count over
  /// [start, start + duration). Throws std::logic_error if that would make
  /// any segment negative (callers must reserve only feasible slots).
  void reserve(Time start, Time duration, int nodes);

  /// Breakpoints, for inspection/tests.
  const std::vector<std::pair<Time, int>>& steps() const noexcept {
    return steps_;
  }

 private:
  /// Ensures a breakpoint exists exactly at `t`; returns its index.
  std::size_t split_at(Time t);

  int total_;
  std::vector<std::pair<Time, int>> steps_;
};

}  // namespace rrsim::sched
