// Node-availability profile: how many nodes are free over future time.
// This is the planning structure behind Conservative Backfilling and
// behind reservation-based queue-wait prediction (Section 5 of the paper).
#pragma once

#include <utility>
#include <vector>

#include "rrsim/des/simulation.h"

namespace rrsim::sched {

using des::Time;

/// Piecewise-constant free-node count over [0, +inf).
///
/// Represented as breakpoints (t_i, free_i), sorted by t_i, meaning
/// `free_i` nodes are available on [t_i, t_{i+1}); the last segment extends
/// to infinity. Reservations subtract capacity over an interval and
/// release() adds it back in place, so cancel-heavy callers (CBF under
/// redundant-request churn) never rebuild from scratch. The representation
/// is kept canonical — adjacent segments always have distinct levels — and
/// point lookups remember the last segment touched, so the sequential
/// access pattern of backfilling scans stays O(1) per step.
class Profile {
 public:
  /// A profile with `total_nodes` free everywhere. Throws
  /// std::invalid_argument if total_nodes < 1.
  explicit Profile(int total_nodes);

  /// Total capacity.
  int total_nodes() const noexcept { return total_; }

  /// Free nodes at time `t` (>= 0).
  int free_at(Time t) const;

  /// Smallest free-node count over [start, start + duration).
  int min_free(Time start, Time duration) const;

  /// Earliest time t >= `from` at which `nodes` nodes are simultaneously
  /// free for the whole interval [t, t + duration). Always exists because
  /// the profile eventually returns to a constant level >= nodes whenever
  /// nodes <= total (reservations are finite); throws std::invalid_argument
  /// if nodes > total or nodes < 1 or duration <= 0.
  Time earliest_start(Time from, int nodes, Time duration) const;

  /// Removes `nodes` nodes from the free count over
  /// [start, start + duration). Throws std::logic_error if that would make
  /// any segment negative (callers must reserve only feasible slots); the
  /// profile is unchanged when it throws.
  void reserve(Time start, Time duration, int nodes);

  /// Exact inverse of reserve(): adds `nodes` back over
  /// [start, start + duration). Throws std::logic_error if that would push
  /// any segment above total_nodes() — i.e. if no matching reservation
  /// covers the interval; the profile is unchanged when it throws.
  void release(Time start, Time duration, int nodes);

  /// release() with an absolute interval [start, end). Callers releasing
  /// the *tail* of a reservation (from "now" to its end) must use this
  /// form: the end boundary has to hit the breakpoint the original
  /// reserve() created bit-exactly, and round-tripping it through a
  /// duration (`end - start`) can move it by an ulp.
  void release_until(Time start, Time end, int nodes);

  /// Returns to the fully-free state without releasing storage, so a
  /// scratch profile can be reused across predictions/rebuilds with no
  /// reallocation.
  void reset();

  /// Garbage-collects breakpoints strictly before the segment containing
  /// `t`: long-lived incremental profiles would otherwise accumulate one
  /// dead breakpoint per expired reservation. Queries earlier than `t`
  /// afterwards report the level of the earliest retained segment; the
  /// function on [t, +inf) is unchanged.
  void prune_before(Time t);

  /// True if this profile and `other` describe the same free-node function
  /// on [from, +inf). Both operands being canonical (no adjacent equal
  /// levels), this compares the level at `from` and every later
  /// breakpoint. Used by the incremental-vs-rebuild invariant checks.
  bool future_equals(const Profile& other, Time from) const;

  /// Breakpoints, for inspection/tests.
  const std::vector<std::pair<Time, int>>& steps() const noexcept {
    return steps_;
  }

#if RRSIM_VALIDATE_ENABLED
  /// Full structural check — strictly increasing breakpoint times, all
  /// levels within [0, total], canonical form (adjacent levels distinct),
  /// trailing level back at full capacity. Runs automatically after every
  /// mutate; callable directly from tests.
  void debug_validate() const;

  /// Corruption hook for the oracle death tests: duplicates the level of
  /// the last segment into a new breakpoint, breaking canonical form.
  void debug_break_canonical();
#endif

 private:
  /// Index of the segment containing `t` (hinted: sequential lookups near
  /// the previous one skip the binary search).
  std::size_t segment_index(Time t) const;

  /// Ensures a breakpoint exists exactly at `t`; returns its index.
  std::size_t split_at(Time t);

  /// Adds `delta` to every segment level in [start, end), after checking
  /// the result stays within [0, total]. Shared by reserve() and
  /// release()/release_until().
  void apply(Time start, Time end, int delta);

  /// Restores canonicality around the just-modified index range
  /// [first, last]: removes any breakpoint whose level equals its
  /// predecessor's.
  void coalesce_around(std::size_t first, std::size_t last);

  int total_;
  std::vector<std::pair<Time, int>> steps_;
  mutable std::size_t hint_ = 0;  // last segment index returned
};

}  // namespace rrsim::sched
