// Construction of schedulers by algorithm name, used by experiment
// configuration and the CLI harnesses.
#pragma once

#include <memory>
#include <string>

#include "rrsim/sched/scheduler.h"

namespace rrsim::sched {

/// The three algorithms the paper evaluates (Table 1).
enum class Algorithm {
  kFcfs,
  kEasy,
  kCbf,
};

/// Parses "fcfs" / "easy" / "cbf" (case-sensitive). Throws
/// std::invalid_argument on anything else.
Algorithm parse_algorithm(const std::string& name);

/// Display name of an algorithm.
std::string algorithm_name(Algorithm algo);

/// Creates a scheduler of the given algorithm on `total_nodes` nodes.
std::unique_ptr<ClusterScheduler> make_scheduler(Algorithm algo,
                                                 des::Simulation& sim,
                                                 int total_nodes);

}  // namespace rrsim::sched
