// Conservative Backfilling (Mu'alem & Feitelson 2001): every job receives
// a reservation when it is submitted — the earliest slot in the
// availability profile that delays no earlier reservation. Jobs may leap-
// frog in start order but never push anyone's reservation back. The
// reservation made at submit time doubles as the scheduler's queue-wait
// prediction, which Section 5 of the paper studies.
//
// The implementation is incremental: cancels, declines and early
// completions release their reservation in place (Profile::release) and
// re-reserve only the queue suffix whose slots can actually move, instead
// of rebuilding the whole profile from scratch. Redundant-request
// workloads are cancel-heavy by construction (degree N costs up to N-1
// cancels per grid job), so this is the scheduler's hottest path.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "rrsim/sched/profile.h"
#include "rrsim/sched/scheduler.h"
#include "rrsim/util/flat_map.h"

namespace rrsim::sched {

/// Conservative-backfilling batch scheduler.
class CbfScheduler final : public ClusterScheduler {
 public:
  /// `compress_on_early_completion`: when a job finishes before its
  /// requested time, release the unused tail of its footprint and pull
  /// every reservation as early as possible (the "compression" step of
  /// the published algorithm). Disable for very deep queues where O(Q)
  /// compression per completion dominates; predictions and correctness
  /// are unaffected, only responsiveness to early completions.
  CbfScheduler(des::Simulation& sim, int total_nodes,
               bool compress_on_early_completion = true)
      : ClusterScheduler(sim, total_nodes),
        compress_(compress_on_early_completion),
        profile_(total_nodes),
        rebuild_scratch_(total_nodes) {}

  std::string name() const override { return "cbf"; }
  std::size_t queue_length() const override { return queue_.size(); }

  /// Current (possibly compressed) reservation for a pending job, or
  /// nullopt if the job is not pending. The *submit-time* value is
  /// available via predicted_start_at_submit(). O(1).
  std::optional<Time> current_reservation(JobId id) const;

  /// Enables the incremental-vs-rebuild oracle: after every profile
  /// mutation, the incremental state (profile + reservations) is checked
  /// against a from-scratch rebuild. A mismatch adopts the rebuild result
  /// (so behaviour stays correct) and increments self_check_fallbacks().
  /// Off by default — this is the debug/test invariant check, O(Q) per
  /// operation.
  void set_self_check(bool on) { self_check_ = on; }

  /// Number of self-check mismatches that forced a rebuild fallback.
  /// Tests assert this stays 0; anything else means the incremental
  /// update diverged from the published rebuild semantics.
  std::uint64_t self_check_fallbacks() const noexcept {
    return self_check_fallbacks_;
  }

  /// Number of from-scratch profile rebuilds performed (the fallback
  /// path). With compression enabled this should be a small fraction of
  /// cancels — it only runs when incremental_base_ok() detects that a
  /// rebuild's floating-point snapping would not be a no-op.
  std::uint64_t rebuilds() const noexcept { return rebuilds_; }

  std::size_t live_state_bytes() const noexcept override {
    return ClusterScheduler::live_state_bytes() +
           queue_.capacity() * sizeof(Entry) + pos_.memory_bytes() +
           running_end_.memory_bytes() + heap_.size() * sizeof(HeapEntry);
  }

  void reset() override {
    ClusterScheduler::reset();
    queue_.clear();
    profile_.reset();
    pos_.clear();
    running_end_.clear();
    heap_ = {};  // priority_queue has no clear(); small, rebuilt on demand
    next_seq_ = 0;
    wakeup_ = {};  // the underlying event died with the Simulation reset
    self_check_fallbacks_ = 0;
    rebuilds_ = 0;
  }

#if RRSIM_VALIDATE_ENABLED
  /// Base sweep plus the CBF index invariants (validate_index()).
  void debug_validate() const override;

  /// Corruption hook for the oracle death tests: points the front job's
  /// pos_ entry at the wrong queue position.
  void debug_corrupt_index() {
    if (!queue_.empty()) pos_[queue_.front().job.id] = queue_.size();
  }
#endif

 protected:
  void handle_submit(Job job) override;
  Job handle_cancel(JobId id) override;
  void handle_completion(const Job& job) override;
  std::vector<const Job*> pending_in_order() const override;

 private:
  struct Entry {
    Job job;
    Time reserved_start = 0.0;
    std::uint64_t seq = 0;  ///< submission order, strictly increasing
  };

  /// Lazily-invalidated wake-up/dispatch index: one entry per reservation
  /// assignment. An entry is current iff the job is still queued with the
  /// same seq and reserved_start (reservations only move earlier, so a
  /// superseded entry never shadows the live one at the heap top).
  struct HeapEntry {
    Time time;
    std::uint64_t seq;
    JobId id;
  };
  struct HeapLater {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  /// True if `e` still describes a queued reservation.
  bool entry_current(const HeapEntry& e) const;

  /// Removes queue position `k`, keeping the id->position index in step.
  void erase_entry(std::size_t k);

  /// Releases reservation [r, r+req) from the profile, clipped to the
  /// future (the part before `now` may already have been pruned).
  void release_reservation(Time r, Time req, int nodes);

  /// True if an incremental compression would reproduce a from-scratch
  /// rebuild bit-exactly. A rebuild re-reserves every running footprint
  /// as [now, now + (end - now)); the incremental profile keeps the
  /// breakpoint the footprint was created with. Those agree only when
  /// `now + (end - now) == end` holds in double arithmetic for every
  /// running job (it usually does, but it is not an FP identity) and the
  /// stored breakpoint is still the job's true requested end. O(running).
  bool incremental_base_ok() const;

  /// Compression after capacity was freed: releases every reservation at
  /// queue position >= from_pos and greedily re-reserves them in FCFS
  /// order. Positions before from_pos cannot move — a job's reservation
  /// depends only on the running set and *earlier* queue positions — so
  /// this computes exactly what a from-scratch rebuild would, touching
  /// only the suffix. Callers must have checked incremental_base_ok().
  void compress_from(std::size_t from_pos);

  /// From-scratch fallback: resets the profile (in place) from the
  /// running set and re-reserves every queued job in FCFS order;
  /// reservations can only move earlier. Used when compression is
  /// disabled (the profile may then hold conservative "ghost" footprints
  /// of early-finished jobs that a rebuild must drop), when
  /// incremental_base_ok() fails, and by the self-check fallback.
  void rebuild_profile();

  /// Starts every queued job whose reservation time has arrived, then
  /// schedules a wake-up at the next reservation.
  void dispatch_ready();

  /// Self-check oracle body: compares incremental state against a
  /// from-scratch rebuild into rebuild_scratch_.
  void verify_against_rebuild();

#if RRSIM_VALIDATE_ENABLED
  /// queue_/pos_ bijection, FCFS seq order, running_end_ ⊆ running set.
  /// O(queue) — runs after each handler (the handlers themselves are
  /// already O(queue) on their mutation paths).
  void validate_index() const;
#endif

  bool compress_;
  std::vector<Entry> queue_;  // FCFS order
  Profile profile_;
  util::FlatHashMap<JobId, std::size_t> pos_;  // id -> queue position
  /// Where each running job's footprint actually ends *in the profile*:
  /// its reservation end at start time, possibly re-snapped by a later
  /// rebuild. Tail releases on early completion must use this value, not
  /// a recomputed end, to invert the stored reservation bit-exactly.
  util::FlatHashMap<JobId, Time> running_end_;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, HeapLater> heap_;
  std::uint64_t next_seq_ = 0;
  des::Simulation::EventHandle wakeup_;

  bool self_check_ = false;
  std::uint64_t self_check_fallbacks_ = 0;
  std::uint64_t rebuilds_ = 0;
  Profile rebuild_scratch_;
};

}  // namespace rrsim::sched
