// Conservative Backfilling (Mu'alem & Feitelson 2001): every job receives
// a reservation when it is submitted — the earliest slot in the
// availability profile that delays no earlier reservation. Jobs may leap-
// frog in start order but never push anyone's reservation back. The
// reservation made at submit time doubles as the scheduler's queue-wait
// prediction, which Section 5 of the paper studies.
#pragma once

#include <vector>

#include "rrsim/sched/profile.h"
#include "rrsim/sched/scheduler.h"

namespace rrsim::sched {

/// Conservative-backfilling batch scheduler.
class CbfScheduler final : public ClusterScheduler {
 public:
  /// `compress_on_early_completion`: when a job finishes before its
  /// requested time, rebuild the profile and pull every reservation as
  /// early as possible (the "compression" step of the published
  /// algorithm). Disable for very deep queues where O(Q^2) compression
  /// dominates; predictions and correctness are unaffected, only
  /// responsiveness to early completions.
  CbfScheduler(des::Simulation& sim, int total_nodes,
               bool compress_on_early_completion = true)
      : ClusterScheduler(sim, total_nodes),
        compress_(compress_on_early_completion),
        profile_(total_nodes) {}

  std::string name() const override { return "cbf"; }
  std::size_t queue_length() const override { return queue_.size(); }

  /// Current (possibly compressed) reservation for a pending job, or
  /// nullopt if the job is not pending. The *submit-time* value is
  /// available via predicted_start_at_submit().
  std::optional<Time> current_reservation(JobId id) const;

 protected:
  void handle_submit(Job job) override;
  Job handle_cancel(JobId id) override;
  void handle_completion(const Job& job) override;
  std::vector<const Job*> pending_in_order() const override;

 private:
  struct Entry {
    Job job;
    Time reserved_start = 0.0;
  };

  /// Rebuilds the profile from the running set (requested ends) and
  /// re-reserves every queued job in FCFS order; reservations can only
  /// move earlier.
  void rebuild_profile();

  /// Starts every queued job whose reservation time has arrived, then
  /// schedules a wake-up at the next reservation.
  void dispatch_ready();

  bool compress_;
  std::vector<Entry> queue_;  // FCFS order
  Profile profile_;
  des::Simulation::EventHandle wakeup_;
};

}  // namespace rrsim::sched
