// Abstract batch scheduler managing one cluster's queue, plus the shared
// machinery every concrete algorithm (FCFS, EASY, CBF) builds on: the
// running set, the grant/decline start protocol, completion events, and
// operation counters for the Section 4 load study.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "rrsim/des/simulation.h"
#include "rrsim/sched/job.h"
#include "rrsim/sched/profile.h"
#include "rrsim/util/flat_map.h"

namespace rrsim::sched {

/// Operation counters, for the middleware/scheduler load analysis.
struct OpCounters {
  std::uint64_t submits = 0;    ///< qsub-equivalents accepted
  std::uint64_t rejects = 0;    ///< submissions refused (per-user limit)
  std::uint64_t cancels = 0;    ///< qdel-equivalents that removed a job
  std::uint64_t starts = 0;     ///< jobs granted nodes
  std::uint64_t finishes = 0;   ///< jobs that ran to completion
  std::uint64_t declines = 0;   ///< grants refused by the owner
  std::uint64_t sched_passes = 0;  ///< scheduling passes executed
};

/// Batch scheduler for a single cluster.
///
/// Event flow: `submit()` enqueues a request; the scheduler decides starts
/// during scheduling passes (triggered by submissions, cancellations, and
/// completions). Before starting a job it consults the grant callback —
/// the grid Gateway uses this to refuse starts for jobs whose sibling
/// replica already won elsewhere (the paper's cancel-on-callback protocol
/// with zero network delay). Completions are scheduled on the simulation
/// at start + actual_time.
class ClusterScheduler {
 public:
  /// Owner hooks. All optional; a null grant accepts every start.
  /// std::function is deliberate here: the hooks are installed once per
  /// run (never per event), their captures fit the small-buffer
  /// optimisation, and every signature takes the Job — which
  /// util::InlineFunction (void() only) cannot express.
  struct Callbacks {
    /// Asked immediately before `job` would start; return false to refuse
    /// (the request is then removed from the queue as Declined).
    // rrsim-lint-allow(std-function-member): installed once per run; the
    // bool(const Job&) signature is inexpressible as InlineFunction.
    std::function<bool(const Job&)> on_grant;
    /// Job started (after a successful grant).
    // rrsim-lint-allow(std-function-member): installed once per run; the
    // void(const Job&) signature is inexpressible as InlineFunction.
    std::function<void(const Job&)> on_start;
    /// Job ran to completion.
    // rrsim-lint-allow(std-function-member): installed once per run; the
    // void(const Job&) signature is inexpressible as InlineFunction.
    std::function<void(const Job&)> on_finish;
    /// Pending job removed via cancel().
    // rrsim-lint-allow(std-function-member): installed once per run; the
    // void(const Job&) signature is inexpressible as InlineFunction.
    std::function<void(const Job&)> on_cancelled;
  };

  /// Binds the scheduler to a simulation and a cluster of `total_nodes`
  /// identical nodes. Throws std::invalid_argument if total_nodes < 1.
  ClusterScheduler(des::Simulation& sim, int total_nodes);
  virtual ~ClusterScheduler() = default;

  ClusterScheduler(const ClusterScheduler&) = delete;
  ClusterScheduler& operator=(const ClusterScheduler&) = delete;

  void set_callbacks(Callbacks callbacks) { callbacks_ = std::move(callbacks); }

  /// Submits a request at the current simulation time. The job's
  /// actual_time is clamped to requested_time (schedulers kill jobs at
  /// their limit). Returns false — and leaves all state untouched — when
  /// a configured per-user pending limit refuses the request. Throws
  /// std::invalid_argument if the job can never run here (nodes < 1 or >
  /// total), has a duplicate id, or non-positive times.
  bool submit(Job job);

  /// Caps the number of *pending* requests any one user may have in this
  /// queue (running jobs do not count, matching PBS-style limits).
  /// nullopt (default) disables the limit. Jobs with limit_exempt set
  /// bypass it.
  void set_per_user_pending_limit(std::optional<int> limit);

  /// When enabled, a job's lifecycle entry (and any recorded submit-time
  /// prediction) is erased the moment it reaches a terminal state —
  /// cancelled, declined or finished — instead of being kept for the
  /// run's lifetime, so the per-job tables stay O(live jobs) over
  /// arbitrarily long runs. Scheduling behaviour is unchanged: cancel()
  /// on a forgotten id answers false through the unknown-id path, which
  /// is indistinguishable from the terminal-state answer. The one
  /// observable difference is that resubmitting a *terminal* id is no
  /// longer caught as a duplicate, so only drivers that never reuse ids
  /// (the gateway allocates monotonically) may enable this. Off by
  /// default; reset() turns it back off.
  void set_forget_terminal_ids(bool forget) noexcept {
    forget_terminal_ids_ = forget;
  }

  /// Cancels a *pending* request (qdel). Returns true if the job was
  /// pending and has been removed; false if unknown, running, or done.
  /// The membership check is an O(1) hash lookup on the lifecycle index
  /// (redundant-request workloads are cancel-heavy: every grid job with
  /// redundancy degree N issues up to N-1 cancels).
  bool cancel(JobId id);

  /// Algorithm name ("fcfs", "easy", "cbf").
  virtual std::string name() const = 0;

  // --- Introspection -----------------------------------------------------

  int total_nodes() const noexcept { return total_nodes_; }
  int free_nodes() const noexcept { return free_nodes_; }
  std::size_t running_count() const noexcept { return running_.size(); }

  /// Cluster tag stamped on every event this scheduler posts (completion
  /// and wake-up events), so tie-break explorers can attribute them to a
  /// cluster. Identity-like configuration: like the owner callbacks it
  /// survives reset(). Default des::kNoEventTag (unattributed).
  void set_event_tag(std::uint32_t tag) noexcept { event_tag_ = tag; }
  std::uint32_t event_tag() const noexcept { return event_tag_; }
  virtual std::size_t queue_length() const = 0;
  const OpCounters& counters() const noexcept { return counters_; }
  des::Simulation& simulation() noexcept { return sim_; }

  /// The queue-wait prediction made *at submission time* for a still-known
  /// job, in seconds of predicted start time (absolute). CBF answers from
  /// its reservation (the paper's Section 5 predictor); FCFS and EASY
  /// answer from the conservative profile simulation done at submit.
  std::optional<Time> predicted_start_at_submit(JobId id) const;

  /// Predicts the start time a hypothetical `nodes` x `requested_time`
  /// request submitted now would get, by building a conservative
  /// availability profile from the running set (requested end times) and
  /// the current queue in FCFS order — the "simulation of the batch queue"
  /// predictor the paper describes. Does not modify state.
  Time predict_hypothetical_start(int nodes, Time requested_time) const;

  /// Bytes of job-proportional live state this scheduler holds: the flat
  /// per-job tables (lifecycle index, predictions, running set, per-user
  /// counts) plus the algorithm's own pending structures. Capacity-based,
  /// so it reports the run's high-water footprint even after erasures —
  /// the number the memory-budget benches track. Deque-backed queues are
  /// counted at current size (std::deque exposes no capacity).
  virtual std::size_t live_state_bytes() const noexcept;

  /// Returns the scheduler to its just-constructed state — empty queue,
  /// all nodes free, zeroed counters, no lifecycle history, no per-user
  /// limit — while keeping container storage allocated where the
  /// representation allows, so a reused scheduler runs its next
  /// experiment with warm arenas. Owner callbacks are kept (they bind
  /// the scheduler to its Gateway, which outlives resets). Callers must
  /// reset the owning Simulation first/alongside: completion events
  /// scheduled by the previous run are orphaned, not cancelled, here.
  virtual void reset();

#if RRSIM_VALIDATE_ENABLED
  /// Full cross-consistency sweep: node accounting, running_ vs
  /// known_ids_ agreement, per-user pending counts non-negative. O(n) in
  /// the lifecycle table — tests and reset paths only; the per-operation
  /// checks cover the entities each operation touched.
  virtual void debug_validate() const;

  /// Corruption hook for the oracle death tests: leaks one node from the
  /// free count, as a mismatched reserve/release pair would.
  void debug_corrupt_accounting() noexcept { --free_nodes_; }
#endif

 protected:
  // --- Services for concrete algorithms ----------------------------------

  /// Attempts to start `job` now: consults the grant callback; on success
  /// allocates nodes, schedules completion, fires on_start, and returns
  /// true. On decline records the job as Declined and returns false. The
  /// caller must have removed the job from its pending structures first.
  bool try_start(Job job);

  /// Running jobs as (requested_end_time, nodes), unsorted.
  std::vector<std::pair<Time, int>> running_requested_ends() const;

  /// The authoritative running set, keyed by id (iteration order is id
  /// order — profile rebuilds must reserve footprints in this order to
  /// reproduce historical results exactly; the sorted-vector map keeps
  /// that order while making the walk a contiguous scan).
  const util::FlatOrderedMap<JobId, Job>& running_jobs() const noexcept {
    return running_;
  }

  /// Pending jobs in FCFS (submission) order, for prediction profiles.
  virtual std::vector<const Job*> pending_in_order() const = 0;

  /// Called after submit() has validated and counted the job.
  virtual void handle_submit(Job job) = 0;

  /// Called when `id` (validated pending) must be removed. Implementations
  /// remove it from their structures and return the Job by value.
  virtual Job handle_cancel(JobId id) = 0;

  /// Called after a running job finished and freed its nodes.
  virtual void handle_completion(const Job& job) = 0;

  /// Record a submit-time prediction for `id` (used by EASY/FCFS which
  /// have no reservations; CBF records its own reservations).
  void record_prediction(JobId id, Time predicted_start);

  void count_pass() noexcept { ++counters_.sched_passes; }

  des::Simulation& sim_;

 private:
  void complete_job(JobId id);

#if RRSIM_VALIDATE_ENABLED
  /// Per-operation check, O(running): free_nodes_ must equal total minus
  /// the running set's footprint, and the job the operation touched must
  /// be in the lifecycle state the operation left it in.
  void validate_op(JobId touched, JobState expected) const;
#endif

  int total_nodes_;
  int free_nodes_;
  std::uint32_t event_tag_ = des::kNoEventTag;  // see set_event_tag()
  Callbacks callbacks_;
  OpCounters counters_;
  std::optional<int> per_user_limit_;
  bool forget_terminal_ids_ = false;  // see set_forget_terminal_ids()
  // Per-job bookkeeping lives in flat tables: these are touched on every
  // submit/cancel/start/finish, and none of them needs ordered iteration
  // (the running set, which does, gets the sorted-vector map).
  util::FlatHashMap<UserId, int> pending_per_user_;
  util::FlatOrderedMap<JobId, Job> running_;
  util::FlatHashMap<JobId, Time> predictions_;  // submit-time starts
  /// Lifecycle of every id ever submitted: duplicate-id guard and the
  /// O(1) pending/running membership check behind cancel().
  util::FlatHashMap<JobId, JobState> known_ids_;
  /// Reused by predict_hypothetical_start (reset, not reallocated):
  /// Section-5 prediction sweeps call it per job submission.
  mutable Profile scratch_profile_;
};

}  // namespace rrsim::sched
