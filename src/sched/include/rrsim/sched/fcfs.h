// First-Come-First-Serve: jobs start strictly in arrival order; the head
// of the queue blocks everything behind it. The paper's baseline
// comparator.
#pragma once

#include <deque>

#include "rrsim/sched/scheduler.h"

namespace rrsim::sched {

/// Strict FCFS batch scheduler (no backfilling).
class FcfsScheduler final : public ClusterScheduler {
 public:
  FcfsScheduler(des::Simulation& sim, int total_nodes)
      : ClusterScheduler(sim, total_nodes) {}

  std::string name() const override { return "fcfs"; }
  std::size_t queue_length() const override { return queue_.size(); }

  void reset() override {
    ClusterScheduler::reset();
    queue_.clear();
  }

  std::size_t live_state_bytes() const noexcept override {
    return ClusterScheduler::live_state_bytes() + queue_.size() * sizeof(Job);
  }

 protected:
  void handle_submit(Job job) override;
  Job handle_cancel(JobId id) override;
  void handle_completion(const Job& job) override;
  std::vector<const Job*> pending_in_order() const override;

 private:
  /// Starts queued jobs from the head while they fit.
  void schedule_pass();

  std::deque<Job> queue_;
};

}  // namespace rrsim::sched
