// EASY backfilling (Lifka 1995, as formalised by Mu'alem & Feitelson 2001):
// FCFS with one reservation. The queue head gets a "shadow" reservation at
// the earliest time enough nodes will be free (based on running jobs'
// *requested* end times); any later job may jump ahead if starting it now
// cannot delay that reservation. The paper calls EASY "representative of
// algorithms running in deployed systems today".
#pragma once

#include <deque>
#include <utility>
#include <vector>

#include "rrsim/sched/scheduler.h"

namespace rrsim::sched {

/// EASY-backfilling batch scheduler.
class EasyScheduler final : public ClusterScheduler {
 public:
  EasyScheduler(des::Simulation& sim, int total_nodes)
      : ClusterScheduler(sim, total_nodes) {}

  std::string name() const override { return "easy"; }
  std::size_t queue_length() const override { return queue_.size(); }

  void reset() override {
    ClusterScheduler::reset();
    queue_.clear();
    running_ends_.clear();
  }

  std::size_t live_state_bytes() const noexcept override {
    return ClusterScheduler::live_state_bytes() +
           queue_.size() * sizeof(Job) +
           running_ends_.capacity() * sizeof(running_ends_[0]);
  }

  /// Shadow reservation currently protecting the queue head: the time at
  /// which the head is guaranteed to start, or nullopt if the queue is
  /// empty. Exposed for tests of the no-head-delay invariant.
  std::optional<Time> head_shadow_time() const;

#if RRSIM_VALIDATE_ENABLED
  void debug_validate() const override {
    ClusterScheduler::debug_validate();
    validate_ends();
  }
#endif

 protected:
  void handle_submit(Job job) override;
  Job handle_cancel(JobId id) override;
  void handle_completion(const Job& job) override;
  std::vector<const Job*> pending_in_order() const override;

 private:
  struct Shadow {
    Time time = 0.0;  ///< when the head can start, at the latest
    int extra = 0;    ///< nodes free at that moment beyond the head's need
  };

  /// Computes the head's shadow by walking running_ends_ in end order.
  /// Requires a non-empty queue and that the head does not currently fit.
  Shadow compute_shadow() const;

  /// One full scheduling pass: start from the head while possible, then
  /// backfill. Re-runs itself after any decline (queue shape changed).
  void schedule_pass();

  /// Starts `job` via try_start and, on success, records its requested
  /// end in running_ends_. `now + job.requested_time` must be computed
  /// before the move, hence the helper.
  bool start_and_track(Job job);

#if RRSIM_VALIDATE_ENABLED
  /// running_ends_ must mirror the running set (one entry per running
  /// job) and stay sorted — compute_shadow's linear scan depends on it.
  void validate_ends() const {
    RRSIM_CHECK(running_ends_.size() == running_count(),
                "easy: running_ends_ size disagrees with the running set");
    for (std::size_t i = 1; i < running_ends_.size(); ++i) {
      RRSIM_CHECK(running_ends_[i - 1] <= running_ends_[i],
                  "easy: running_ends_ lost its sort order");
    }
  }
#endif

  std::deque<Job> queue_;
  /// Running jobs as (requested_end, nodes), kept sorted across
  /// start/finish so compute_shadow never re-sorts the running set. The
  /// pair ordering matches what sorting running_requested_ends() yielded.
  /// A sorted vector rather than a multiset: the population is bounded by
  /// the node count, inserts/erases are memmoves of a contiguous 16-byte
  /// element, and compute_shadow becomes a linear scan of one array.
  /// Duplicate (end, nodes) pairs are value-identical, so which instance
  /// an erase removes cannot affect results.
  std::vector<std::pair<Time, int>> running_ends_;
};

}  // namespace rrsim::sched
