#include "rrsim/sched/profile.h"

#include <algorithm>
#include <stdexcept>

namespace rrsim::sched {

Profile::Profile(int total_nodes) : total_(total_nodes) {
  if (total_ < 1) throw std::invalid_argument("profile needs >= 1 node");
  steps_.emplace_back(0.0, total_);
}

namespace {

// Index of the segment containing time t: the last step with time <= t.
std::size_t segment_index(const std::vector<std::pair<Time, int>>& steps,
                          Time t) {
  // upper_bound on time, then step back one.
  auto it = std::upper_bound(
      steps.begin(), steps.end(), t,
      [](Time value, const std::pair<Time, int>& s) { return value < s.first; });
  if (it == steps.begin()) return 0;  // t before first breakpoint
  return static_cast<std::size_t>(it - steps.begin()) - 1;
}

}  // namespace

int Profile::free_at(Time t) const {
  if (t < 0.0) throw std::invalid_argument("free_at: negative time");
  return steps_[segment_index(steps_, t)].second;
}

int Profile::min_free(Time start, Time duration) const {
  if (start < 0.0 || duration <= 0.0) {
    throw std::invalid_argument("min_free: bad interval");
  }
  const Time end = start + duration;
  std::size_t i = segment_index(steps_, start);
  int min_free_count = steps_[i].second;
  for (++i; i < steps_.size() && steps_[i].first < end; ++i) {
    min_free_count = std::min(min_free_count, steps_[i].second);
  }
  return min_free_count;
}

Time Profile::earliest_start(Time from, int nodes, Time duration) const {
  if (nodes < 1 || nodes > total_) {
    throw std::invalid_argument("earliest_start: nodes out of range");
  }
  if (duration <= 0.0) {
    throw std::invalid_argument("earliest_start: non-positive duration");
  }
  if (from < 0.0) from = 0.0;
  // Candidate anchors are `from` and every breakpoint after it; the first
  // anchor whose whole window [t, t + duration) has capacity wins. The
  // final segment always has full capacity (reserve() restores the level
  // at each reservation's end), so the scan terminates.
  const std::size_t start_seg = segment_index(steps_, from);
  for (std::size_t a = start_seg; a < steps_.size(); ++a) {
    const Time candidate = std::max(from, steps_[a].first);
    if (steps_[a].second < nodes) continue;
    const Time end = candidate + duration;
    bool feasible = true;
    for (std::size_t j = a + 1; j < steps_.size() && steps_[j].first < end;
         ++j) {
      if (steps_[j].second < nodes) {
        feasible = false;
        break;
      }
    }
    if (feasible) return candidate;
  }
  throw std::logic_error("profile never regains requested capacity");
}

std::size_t Profile::split_at(Time t) {
  const std::size_t i = segment_index(steps_, t);
  if (steps_[i].first == t) return i;
  steps_.insert(steps_.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                {t, steps_[i].second});
  return i + 1;
}

void Profile::reserve(Time start, Time duration, int nodes) {
  if (start < 0.0 || duration <= 0.0 || nodes < 1) {
    throw std::invalid_argument("reserve: bad arguments");
  }
  const Time end = start + duration;
  const std::size_t first = split_at(start);
  const std::size_t last = split_at(end);  // breakpoint at release time
  for (std::size_t i = first; i < last; ++i) {
    if (steps_[i].second < nodes) {
      throw std::logic_error("reserve: capacity would go negative");
    }
    steps_[i].second -= nodes;
  }
}

}  // namespace rrsim::sched
