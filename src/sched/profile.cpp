#include "rrsim/sched/profile.h"

#include <algorithm>
#include <stdexcept>

namespace rrsim::sched {

Profile::Profile(int total_nodes) : total_(total_nodes) {
  if (total_ < 1) throw std::invalid_argument("profile needs >= 1 node");
  steps_.emplace_back(0.0, total_);
}

std::size_t Profile::segment_index(Time t) const {
  // The hint is only an accelerator: validity is checked from scratch, so
  // a stale value (after inserts/erases) can never produce a wrong index.
  if (hint_ < steps_.size() && steps_[hint_].first <= t) {
    if (hint_ + 1 == steps_.size() || t < steps_[hint_ + 1].first) {
      return hint_;
    }
    // One step forward covers the sequential scans of reserve/release.
    if (hint_ + 2 == steps_.size() || t < steps_[hint_ + 2].first) {
      return ++hint_;
    }
  }
  auto it = std::upper_bound(
      steps_.begin(), steps_.end(), t,
      [](Time value, const std::pair<Time, int>& s) { return value < s.first; });
  if (it == steps_.begin()) {
    hint_ = 0;  // t before first breakpoint
  } else {
    hint_ = static_cast<std::size_t>(it - steps_.begin()) - 1;
  }
  return hint_;
}

int Profile::free_at(Time t) const {
  if (t < 0.0) throw std::invalid_argument("free_at: negative time");
  return steps_[segment_index(t)].second;
}

int Profile::min_free(Time start, Time duration) const {
  if (start < 0.0 || duration <= 0.0) {
    throw std::invalid_argument("min_free: bad interval");
  }
  const Time end = start + duration;
  std::size_t i = segment_index(start);
  int min_free_count = steps_[i].second;
  for (++i; i < steps_.size() && steps_[i].first < end; ++i) {
    min_free_count = std::min(min_free_count, steps_[i].second);
  }
  return min_free_count;
}

Time Profile::earliest_start(Time from, int nodes, Time duration) const {
  if (nodes < 1 || nodes > total_) {
    throw std::invalid_argument("earliest_start: nodes out of range");
  }
  if (duration <= 0.0) {
    throw std::invalid_argument("earliest_start: non-positive duration");
  }
  if (from < 0.0) from = 0.0;
  // Candidate anchors are `from` and every breakpoint after it; the first
  // anchor whose whole window [t, t + duration) has capacity wins. The
  // final segment always has full capacity (reserve() restores the level
  // at each reservation's end), so the scan terminates.
  const std::size_t start_seg = segment_index(from);
  for (std::size_t a = start_seg; a < steps_.size(); ++a) {
    const Time candidate = std::max(from, steps_[a].first);
    if (steps_[a].second < nodes) continue;
    const Time end = candidate + duration;
    bool feasible = true;
    for (std::size_t j = a + 1; j < steps_.size() && steps_[j].first < end;
         ++j) {
      if (steps_[j].second < nodes) {
        feasible = false;
        break;
      }
    }
    if (feasible) return candidate;
  }
  throw std::logic_error("profile never regains requested capacity");
}

std::size_t Profile::split_at(Time t) {
  const std::size_t i = segment_index(t);
  if (steps_[i].first == t) return i;
  steps_.insert(steps_.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                {t, steps_[i].second});
  return i + 1;
}

void Profile::apply(Time start, Time end, int delta) {
  const std::size_t first = split_at(start);
  const std::size_t last = split_at(end);  // breakpoint at interval end
  for (std::size_t i = first; i < last; ++i) {
    const int level = steps_[i].second + delta;
    if (level < 0 || level > total_) {
      // Undo the splits so a throwing call leaves the profile untouched
      // (the splits are level-neutral; coalescing removes them).
      coalesce_around(first, last);
      throw std::logic_error(delta < 0
                                 ? "reserve: capacity would go negative"
                                 : "release: no matching reservation");
    }
  }
  for (std::size_t i = first; i < last; ++i) steps_[i].second += delta;
  coalesce_around(first, last);
#if RRSIM_VALIDATE_ENABLED
  debug_validate();
#endif
}

void Profile::coalesce_around(std::size_t first, std::size_t last) {
  // Levels changed on [first, last); the boundaries first-1/first and
  // last-1/last may now be equal as well. Scan once over the closed
  // neighbourhood and drop redundant breakpoints.
  std::size_t lo = first > 0 ? first - 1 : 0;
  std::size_t hi = std::min(last + 1, steps_.size());
  std::size_t write = lo;
  for (std::size_t read = lo; read < hi; ++read) {
    if (write > 0 && steps_[read].second == steps_[write - 1].second) {
      continue;  // same level as predecessor: breakpoint is redundant
    }
    if (write != read) steps_[write] = steps_[read];
    ++write;
  }
  if (write != hi) {
    steps_.erase(steps_.begin() + static_cast<std::ptrdiff_t>(write),
                 steps_.begin() + static_cast<std::ptrdiff_t>(hi));
  }
}

#if RRSIM_VALIDATE_ENABLED
void Profile::debug_validate() const {
  RRSIM_CHECK(!steps_.empty(), "profile has no segments");
  RRSIM_CHECK(steps_.back().second == total_,
              "profile tail is not back at full capacity (a reservation "
              "never ends, or release() missed the tail)");
  for (std::size_t i = 0; i < steps_.size(); ++i) {
    RRSIM_CHECK(steps_[i].second >= 0 && steps_[i].second <= total_,
                "profile level outside [0, total_nodes]");
    if (i == 0) continue;
    RRSIM_CHECK(steps_[i - 1].first < steps_[i].first,
                "profile breakpoint times not strictly increasing");
    RRSIM_CHECK(steps_[i - 1].second != steps_[i].second,
                "profile not canonical: adjacent segments share a level");
  }
}

void Profile::debug_break_canonical() {
  steps_.emplace_back(steps_.back().first + 1.0, steps_.back().second);
}
#endif

void Profile::reserve(Time start, Time duration, int nodes) {
  if (start < 0.0 || duration <= 0.0 || nodes < 1) {
    throw std::invalid_argument("reserve: bad arguments");
  }
  apply(start, start + duration, -nodes);
}

void Profile::release(Time start, Time duration, int nodes) {
  if (start < 0.0 || duration <= 0.0 || nodes < 1) {
    throw std::invalid_argument("release: bad arguments");
  }
  apply(start, start + duration, nodes);
}

void Profile::release_until(Time start, Time end, int nodes) {
  if (start < 0.0 || end <= start || nodes < 1) {
    throw std::invalid_argument("release_until: bad arguments");
  }
  apply(start, end, nodes);
}

void Profile::reset() {
  steps_.clear();
  steps_.emplace_back(0.0, total_);
  hint_ = 0;
#if RRSIM_VALIDATE_ENABLED
  debug_validate();
#endif
}

void Profile::prune_before(Time t) {
  const std::size_t i = segment_index(t);
  if (i == 0) return;
  // The breakpoint times are kept verbatim (no rewriting to `t`), so the
  // function on [t, inf) — including the exact double values earliest_start
  // can return — is bit-identical to the unpruned profile's.
  steps_.erase(steps_.begin(),
               steps_.begin() + static_cast<std::ptrdiff_t>(i));
  hint_ = 0;
#if RRSIM_VALIDATE_ENABLED
  debug_validate();
#endif
}

bool Profile::future_equals(const Profile& other, Time from) const {
  if (free_at(from) != other.free_at(from)) return false;
  std::size_t i = segment_index(from) + 1;
  std::size_t j = other.segment_index(from) + 1;
  // Both representations are canonical, so the change points after `from`
  // must agree pairwise.
  while (true) {
    const bool ai = i < steps_.size();
    const bool bj = j < other.steps_.size();
    if (!ai || !bj) return ai == bj;
    if (steps_[i] != other.steps_[j]) return false;
    ++i;
    ++j;
  }
}

}  // namespace rrsim::sched
