#include "rrsim/sched/cbf.h"

#include <stdexcept>
#include <utility>

namespace rrsim::sched {

#if RRSIM_VALIDATE_ENABLED
void CbfScheduler::validate_index() const {
  RRSIM_CHECK(pos_.size() == queue_.size(),
              "cbf: pos_ index and queue_ disagree on size");
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    const std::size_t* p = pos_.find(queue_[i].job.id);
    RRSIM_CHECK(p != nullptr && *p == i,
                "cbf: pos_ entry does not point at the job's queue slot");
    if (i > 0) {
      RRSIM_CHECK(queue_[i - 1].seq < queue_[i].seq,
                  "cbf: queue_ no longer in submission (FCFS) order");
    }
  }
  running_end_.for_each([this](const JobId& id, const Time& end) {
    RRSIM_CHECK(running_jobs().find(id) != running_jobs().end(),
                "cbf: running_end_ keeps a footprint for a job that is "
                "not running");
    RRSIM_CHECK(end > 0.0, "cbf: non-positive stored footprint end");
  });
}

void CbfScheduler::debug_validate() const {
  ClusterScheduler::debug_validate();
  validate_index();
}
#endif

void CbfScheduler::handle_submit(Job job) {
  const Time now = sim_.now();
  // GC: every reservation whose interval expired leaves dead breakpoints
  // behind; submissions are the steady pulse that sweeps them.
  profile_.prune_before(now);
  const Time s =
      profile_.earliest_start(now, job.nodes, job.requested_time);
  profile_.reserve(s, job.requested_time, job.nodes);
  record_prediction(job.id, s);  // the Section 5 predictor
  const JobId id = job.id;
  const std::uint64_t seq = next_seq_++;
  pos_.try_emplace(id, queue_.size());
  queue_.push_back(Entry{std::move(job), s, seq});
  heap_.push(HeapEntry{s, seq, id});
  dispatch_ready();
#if RRSIM_VALIDATE_ENABLED
  validate_index();
#endif
}

Job CbfScheduler::handle_cancel(JobId id) {
  const std::size_t* p = pos_.find(id);
  if (p == nullptr) {
    throw std::logic_error("cbf: cancel of non-pending job");
  }
  const std::size_t k = *p;
  Job job = std::move(queue_[k].job);
  const Time r = queue_[k].reserved_start;
  erase_entry(k);
  if (compress_ && incremental_base_ok()) {
    // Freed slot: drop the reservation in place and pull the suffix
    // earlier. The prefix cannot move (its slots depend only on the
    // running set and earlier positions), so this equals a rebuild.
    release_reservation(r, job.requested_time, job.nodes);
    compress_from(k);
  } else {
    rebuild_profile();
  }
  if (self_check_) verify_against_rebuild();
  dispatch_ready();
#if RRSIM_VALIDATE_ENABLED
  validate_index();
#endif
  return job;
}

void CbfScheduler::handle_completion(const Job& job) {
  Time stored_end = 0.0;
  if (const Time* se = running_end_.find(job.id)) {
    stored_end = *se;
    running_end_.erase(job.id);
  }
  const bool early =
      job.finish_time < job.start_time + job.requested_time;
  if (early && compress_) {
    if (incremental_base_ok()) {
      // Release the unused tail of the conservative footprint, then pull
      // every reservation as early as possible.
      const Time now = sim_.now();
      if (stored_end > now) {
        profile_.release_until(now, stored_end, job.nodes);
      }
      compress_from(0);
    } else {
      rebuild_profile();
    }
    if (self_check_) verify_against_rebuild();
  }
  dispatch_ready();
#if RRSIM_VALIDATE_ENABLED
  validate_index();
#endif
}

std::vector<const Job*> CbfScheduler::pending_in_order() const {
  std::vector<const Job*> out;
  out.reserve(queue_.size());
  for (const Entry& e : queue_) out.push_back(&e.job);
  return out;
}

std::optional<Time> CbfScheduler::current_reservation(JobId id) const {
  const std::size_t* p = pos_.find(id);
  if (p == nullptr) return std::nullopt;
  return queue_[*p].reserved_start;
}

bool CbfScheduler::entry_current(const HeapEntry& e) const {
  const std::size_t* p = pos_.find(e.id);
  if (p == nullptr) return false;
  const Entry& entry = queue_[*p];
  return entry.seq == e.seq && entry.reserved_start == e.time;
}

void CbfScheduler::erase_entry(std::size_t k) {
  pos_.erase(queue_[k].job.id);
  queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(k));
  for (std::size_t i = k; i < queue_.size(); ++i) {
    pos_[queue_[i].job.id] = i;
  }
}

void CbfScheduler::release_reservation(Time r, Time req, int nodes) {
  const Time now = sim_.now();
  if (r >= now) {
    profile_.release(r, req, nodes);
    return;
  }
  // Reservation already partially in the past (a due-but-blocked job):
  // only its future part is releasable. The end boundary must be the
  // exact breakpoint reserve() created, hence the absolute-interval form.
  const Time end = r + req;
  if (end > now) profile_.release_until(now, end, nodes);
}

bool CbfScheduler::incremental_base_ok() const {
  const Time now = sim_.now();
  for (const auto& [id, job] : running_jobs()) {
    const Time end = job.start_time + job.requested_time;
    if (end <= now) continue;  // footprint contributes nothing ahead
    const Time* stored = running_end_.find(id);
    if (stored == nullptr || *stored != end) return false;
    if (now + (end - now) != end) return false;
  }
  return true;
}

void CbfScheduler::compress_from(std::size_t from_pos) {
  count_pass();
  const Time now = sim_.now();
  // Release the whole suffix before re-reserving any of it: re-reserving
  // one job at a time around still-standing later reservations is NOT
  // equivalent to a rebuild (a later job can grab the freed slot first).
  for (std::size_t i = from_pos; i < queue_.size(); ++i) {
    const Entry& e = queue_[i];
    release_reservation(e.reserved_start, e.job.requested_time,
                        e.job.nodes);
  }
  for (std::size_t i = from_pos; i < queue_.size(); ++i) {
    Entry& e = queue_[i];
    const Time s =
        profile_.earliest_start(now, e.job.nodes, e.job.requested_time);
    profile_.reserve(s, e.job.requested_time, e.job.nodes);
    if (s != e.reserved_start) {
      e.reserved_start = s;
      heap_.push(HeapEntry{s, e.seq, e.job.id});
    }
  }
}

void CbfScheduler::rebuild_profile() {
  count_pass();
  ++rebuilds_;
  const Time now = sim_.now();
  profile_.reset();
  running_end_.clear();
  for (const auto& [id, job] : running_jobs()) {
    const Time end = job.start_time + job.requested_time;
    if (end > now) {
      profile_.reserve(now, end - now, job.nodes);
      // The stored breakpoint is now + (end - now), which is where the
      // reserve above actually put it — not necessarily `end`.
      running_end_[id] = now + (end - now);
    }
  }
  for (Entry& e : queue_) {
    const Time s =
        profile_.earliest_start(now, e.job.nodes, e.job.requested_time);
    profile_.reserve(s, e.job.requested_time, e.job.nodes);
    if (s != e.reserved_start) {
      e.reserved_start = s;
      heap_.push(HeapEntry{s, e.seq, e.job.id});
    }
  }
}

void CbfScheduler::dispatch_ready() {
  count_pass();
  // Reservations whose time has arrived, collected from the heap. Entries
  // stay in `due` across start attempts and are revalidated each round:
  // a start can trigger callbacks that cancel or compress reentrantly.
  std::vector<HeapEntry> due;
  for (;;) {
    const Time now = sim_.now();
    while (!heap_.empty() && heap_.top().time <= now) {
      const HeapEntry e = heap_.top();
      heap_.pop();
      if (entry_current(e)) due.push_back(e);
    }
    // The first due-and-fitting job in queue order starts; the minimum
    // seq among due entries is that job.
    std::size_t best = due.size();
    for (std::size_t i = 0; i < due.size(); ++i) {
      if (!entry_current(due[i])) continue;
      const Entry& entry = queue_[*pos_.find(due[i].id)];
      if (entry.job.nodes > free_nodes()) {
        // Due, but a same-timestamp completion has not freed its nodes
        // yet (equal-time completions drain one at a time). That
        // completion will re-enter dispatch_ready; starting must wait.
        continue;
      }
      if (best == due.size() || due[i].seq < due[best].seq) best = i;
    }
    if (best == due.size()) break;
    const JobId id = due[best].id;
    const std::size_t k = *pos_.find(id);
    const Time r = queue_[k].reserved_start;
    const Time req = queue_[k].job.requested_time;
    const int nodes = queue_[k].job.nodes;
    Job job = std::move(queue_[k].job);
    erase_entry(k);
    if (try_start(std::move(job))) {
      // Its footprint in the profile is the reservation it held.
      running_end_.try_emplace(id, r + req);
    } else {
      // Declined: its reservation must be released so later jobs can
      // move up.
      if (compress_ && incremental_base_ok()) {
        release_reservation(r, req, nodes);
        compress_from(k);
      } else {
        rebuild_profile();
      }
      if (self_check_) verify_against_rebuild();
    }
  }
  // Wake up at the next future reservation. Entries already due but
  // blocked on a same-timestamp completion need no wake-up: that
  // completion re-enters dispatch_ready after freeing its nodes.
  wakeup_.cancel();
  const Time now = sim_.now();
  for (const HeapEntry& e : due) {
    if (entry_current(e)) heap_.push(e);  // blocked: keep indexed
  }
  Time next = des::kTimeInfinity;
  std::vector<HeapEntry> keep;
  while (!heap_.empty()) {
    const HeapEntry e = heap_.top();
    if (!entry_current(e)) {
      heap_.pop();  // superseded assignment: drop it for good
      continue;
    }
    if (e.time <= now) {
      heap_.pop();  // due-but-blocked: look past it for the wake-up
      keep.push_back(e);
      continue;
    }
    next = e.time;
    break;
  }
  for (const HeapEntry& e : keep) heap_.push(e);
  if (next < des::kTimeInfinity) {
    wakeup_ = sim_.schedule_at(
        next, [this] { dispatch_ready(); }, des::Priority::kControl,
        event_tag());
  }
}

void CbfScheduler::verify_against_rebuild() {
  const Time now = sim_.now();
  Profile& oracle = rebuild_scratch_;
  oracle.reset();
  for (const auto& kv : running_jobs()) {
    const Job& job = kv.second;
    const Time end = job.start_time + job.requested_time;
    if (end > now) oracle.reserve(now, end - now, job.nodes);
  }
  bool ok = true;
  for (const Entry& e : queue_) {
    const Time s =
        oracle.earliest_start(now, e.job.nodes, e.job.requested_time);
    oracle.reserve(s, e.job.requested_time, e.job.nodes);
    if (s != e.reserved_start) ok = false;
  }
  if (ok && profile_.future_equals(oracle, now)) return;
  ++self_check_fallbacks_;
  rebuild_profile();  // adopt the oracle's answer; behaviour stays right
}

}  // namespace rrsim::sched
