#include "rrsim/sched/cbf.h"

#include <algorithm>
#include <stdexcept>

namespace rrsim::sched {

void CbfScheduler::handle_submit(Job job) {
  const Time now = sim_.now();
  const Time s =
      profile_.earliest_start(now, job.nodes, job.requested_time);
  profile_.reserve(s, job.requested_time, job.nodes);
  record_prediction(job.id, s);  // the Section 5 predictor
  queue_.push_back(Entry{std::move(job), s});
  dispatch_ready();
}

Job CbfScheduler::handle_cancel(JobId id) {
  const auto it =
      std::find_if(queue_.begin(), queue_.end(),
                   [id](const Entry& e) { return e.job.id == id; });
  if (it == queue_.end()) {
    throw std::logic_error("cbf: cancel of non-pending job");
  }
  Job job = it->job;
  queue_.erase(it);
  rebuild_profile();  // freed slot: pull later reservations earlier
  dispatch_ready();
  return job;
}

void CbfScheduler::handle_completion(const Job& job) {
  const bool early =
      job.finish_time < job.start_time + job.requested_time;
  if (early && compress_) {
    rebuild_profile();
  }
  dispatch_ready();
}

std::vector<const Job*> CbfScheduler::pending_in_order() const {
  std::vector<const Job*> out;
  out.reserve(queue_.size());
  for (const Entry& e : queue_) out.push_back(&e.job);
  return out;
}

std::optional<Time> CbfScheduler::current_reservation(JobId id) const {
  for (const Entry& e : queue_) {
    if (e.job.id == id) return e.reserved_start;
  }
  return std::nullopt;
}

void CbfScheduler::rebuild_profile() {
  count_pass();
  const Time now = sim_.now();
  profile_ = Profile(total_nodes());
  for (const auto& [end, nodes] : running_requested_ends()) {
    if (end > now) profile_.reserve(now, end - now, nodes);
  }
  for (Entry& e : queue_) {
    e.reserved_start =
        profile_.earliest_start(now, e.job.nodes, e.job.requested_time);
    profile_.reserve(e.reserved_start, e.job.requested_time, e.job.nodes);
  }
}

void CbfScheduler::dispatch_ready() {
  count_pass();
  const Time now = sim_.now();
  bool again = true;
  while (again) {
    again = false;
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (it->reserved_start > now) continue;
      if (it->job.nodes > free_nodes()) {
        // The reservation is due but a same-timestamp completion has not
        // freed its nodes yet (completion events of equal time drain one
        // at a time). That completion will re-enter dispatch_ready;
        // starting must wait for it.
        continue;
      }
      Job job = it->job;
      queue_.erase(it);
      if (!try_start(std::move(job))) {
        // Declined: its reservation must be released so later jobs can
        // move up; rebuild and rescan.
        rebuild_profile();
      }
      again = true;
      break;  // iterators invalidated either way
    }
  }
  // Wake up at the next future reservation. Entries already due but
  // blocked on a same-timestamp completion need no wake-up: that
  // completion re-enters dispatch_ready after freeing its nodes.
  wakeup_.cancel();
  Time next = des::kTimeInfinity;
  for (const Entry& e : queue_) {
    if (e.reserved_start > now) next = std::min(next, e.reserved_start);
  }
  if (next < des::kTimeInfinity) {
    wakeup_ = sim_.schedule_at(
        next, [this] { dispatch_ready(); }, des::Priority::kControl);
  }
}

}  // namespace rrsim::sched
