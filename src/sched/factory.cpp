#include "rrsim/sched/factory.h"

#include <stdexcept>

#include "rrsim/sched/cbf.h"
#include "rrsim/sched/easy.h"
#include "rrsim/sched/fcfs.h"

namespace rrsim::sched {

Algorithm parse_algorithm(const std::string& name) {
  if (name == "fcfs") return Algorithm::kFcfs;
  if (name == "easy") return Algorithm::kEasy;
  if (name == "cbf") return Algorithm::kCbf;
  throw std::invalid_argument("unknown scheduling algorithm: " + name);
}

std::string algorithm_name(Algorithm algo) {
  switch (algo) {
    case Algorithm::kFcfs:
      return "fcfs";
    case Algorithm::kEasy:
      return "easy";
    case Algorithm::kCbf:
      return "cbf";
  }
  throw std::logic_error("unreachable");
}

std::unique_ptr<ClusterScheduler> make_scheduler(Algorithm algo,
                                                 des::Simulation& sim,
                                                 int total_nodes) {
  switch (algo) {
    case Algorithm::kFcfs:
      return std::make_unique<FcfsScheduler>(sim, total_nodes);
    case Algorithm::kEasy:
      return std::make_unique<EasyScheduler>(sim, total_nodes);
    case Algorithm::kCbf:
      return std::make_unique<CbfScheduler>(sim, total_nodes);
  }
  throw std::logic_error("unreachable");
}

}  // namespace rrsim::sched
