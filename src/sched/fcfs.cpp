#include "rrsim/sched/fcfs.h"

#include <stdexcept>

namespace rrsim::sched {

void FcfsScheduler::handle_submit(Job job) {
  queue_.push_back(std::move(job));
  schedule_pass();
}

Job FcfsScheduler::handle_cancel(JobId id) {
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (it->id == id) {
      Job job = *it;
      queue_.erase(it);
      schedule_pass();  // removing the head may unblock successors
      return job;
    }
  }
  throw std::logic_error("fcfs: cancel of non-pending job");
}

void FcfsScheduler::handle_completion(const Job&) { schedule_pass(); }

std::vector<const Job*> FcfsScheduler::pending_in_order() const {
  std::vector<const Job*> out;
  out.reserve(queue_.size());
  for (const Job& j : queue_) out.push_back(&j);
  return out;
}

void FcfsScheduler::schedule_pass() {
  count_pass();
  while (!queue_.empty() && queue_.front().nodes <= free_nodes()) {
    Job job = std::move(queue_.front());
    queue_.pop_front();
    try_start(std::move(job));  // declined jobs simply leave the queue
  }
}

}  // namespace rrsim::sched
