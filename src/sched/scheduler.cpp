#include "rrsim/sched/scheduler.h"

#include <algorithm>
#include <stdexcept>

namespace rrsim::sched {

ClusterScheduler::ClusterScheduler(des::Simulation& sim, int total_nodes)
    : sim_(sim),
      total_nodes_(total_nodes),
      free_nodes_(total_nodes),
      scratch_profile_(total_nodes < 1 ? 1 : total_nodes) {
  if (total_nodes_ < 1) {
    throw std::invalid_argument("scheduler needs >= 1 node");
  }
}

void ClusterScheduler::reset() {
  free_nodes_ = total_nodes_;
  counters_ = OpCounters{};
  per_user_limit_.reset();
  forget_terminal_ids_ = false;
  pending_per_user_.clear();
  running_.clear();
  predictions_.clear();
  known_ids_.clear();
#if RRSIM_VALIDATE_ENABLED
  debug_validate();
#endif
}

#if RRSIM_VALIDATE_ENABLED
void ClusterScheduler::validate_op(JobId touched, JobState expected) const {
  RRSIM_CHECK(free_nodes_ >= 0 && free_nodes_ <= total_nodes_,
              "scheduler free-node count outside [0, total]");
  int allocated = 0;
  for (const auto& [id, job] : running_) allocated += job.nodes;
  RRSIM_CHECK(free_nodes_ == total_nodes_ - allocated,
              "scheduler free-node count disagrees with the running set");
  const JobState* state = known_ids_.find(touched);
  const bool terminal = expected == JobState::kCancelled ||
                        expected == JobState::kDeclined ||
                        expected == JobState::kFinished;
  if (forget_terminal_ids_ && terminal) {
    RRSIM_CHECK(state == nullptr,
                "terminal id still in the lifecycle index in forget mode");
  } else {
    RRSIM_CHECK(state != nullptr && *state == expected,
                "lifecycle index disagrees with the operation just applied");
  }
  const bool in_running = running_.find(touched) != running_.end();
  RRSIM_CHECK(in_running == (expected == JobState::kRunning),
              "running set membership disagrees with lifecycle state");
}

void ClusterScheduler::debug_validate() const {
  RRSIM_CHECK(free_nodes_ >= 0 && free_nodes_ <= total_nodes_,
              "scheduler free-node count outside [0, total]");
  int allocated = 0;
  for (const auto& [id, job] : running_) {
    allocated += job.nodes;
    const JobState* state = known_ids_.find(id);
    RRSIM_CHECK(state != nullptr && *state == JobState::kRunning,
                "job in the running set is not kRunning in the lifecycle "
                "index");
  }
  RRSIM_CHECK(free_nodes_ == total_nodes_ - allocated,
              "scheduler free-node count disagrees with the running set");
  known_ids_.for_each([this](const JobId& id, const JobState& state) {
    const bool in_running = running_.find(id) != running_.end();
    RRSIM_CHECK(in_running == (state == JobState::kRunning),
                "running set membership disagrees with lifecycle state");
  });
  pending_per_user_.for_each([](const UserId&, const int& count) {
    RRSIM_CHECK(count >= 0, "negative per-user pending count");
  });
}
#endif

std::size_t ClusterScheduler::live_state_bytes() const noexcept {
  return pending_per_user_.memory_bytes() + running_.memory_bytes() +
         predictions_.memory_bytes() + known_ids_.memory_bytes();
}

void ClusterScheduler::set_per_user_pending_limit(std::optional<int> limit) {
  if (limit && *limit < 0) {
    throw std::invalid_argument("per-user pending limit must be >= 0");
  }
  per_user_limit_ = limit;
}

bool ClusterScheduler::submit(Job job) {
  if (job.nodes < 1 || job.nodes > total_nodes_) {
    throw std::invalid_argument("job node count not runnable on this cluster");
  }
  if (job.requested_time <= 0.0 || job.actual_time <= 0.0) {
    throw std::invalid_argument("job times must be > 0");
  }
  if (per_user_limit_ && !job.limit_exempt &&
      pending_per_user_[job.user] >= *per_user_limit_) {
    ++counters_.rejects;
    return false;
  }
  if (!known_ids_.try_emplace(job.id, JobState::kPending).inserted) {
    throw std::invalid_argument("duplicate job id submitted");
  }
  job.actual_time = std::min(job.actual_time, job.requested_time);
  job.submit_time = sim_.now();
  job.state = JobState::kPending;
  ++counters_.submits;
  ++pending_per_user_[job.user];
#if RRSIM_VALIDATE_ENABLED
  const JobId submitted_id = job.id;
#endif
  handle_submit(std::move(job));
#if RRSIM_VALIDATE_ENABLED
  // handle_submit may have already started the job (empty queue + free
  // nodes), finished it (zero-ish runtimes do not exist, so no), or
  // declined it; accept whatever lifecycle state it reached, but the
  // accounting and membership agreement must hold regardless.
  const JobState* reached = known_ids_.find(submitted_id);
  if (reached == nullptr) {
    // Only legal in forget mode, where an immediate decline (the sole
    // terminal state reachable inside submit — completions are events)
    // erases the entry before we get here.
    RRSIM_CHECK(forget_terminal_ids_,
                "submitted job vanished from lifecycle");
    validate_op(submitted_id, JobState::kDeclined);
  } else {
    validate_op(submitted_id, *reached);
  }
#endif
  return true;
}

bool ClusterScheduler::cancel(JobId id) {
  // Only pending jobs are cancellable. The lifecycle index answers the
  // membership question in O(1) — no walk over the pending queue — and
  // handle_cancel is then guaranteed to find the job in its structures.
  const JobState* state = known_ids_.find(id);
  if (state == nullptr || *state != JobState::kPending) {
    return false;
  }
  Job job = handle_cancel(id);
  job.state = JobState::kCancelled;
  // Re-find: handle_cancel is virtual and the flat table invalidates
  // pointers on insert, so the pre-call pointer must not be trusted.
  if (forget_terminal_ids_) {
    known_ids_.erase(id);
    predictions_.erase(id);
  } else {
    known_ids_.at(id) = JobState::kCancelled;
  }
  ++counters_.cancels;
  --pending_per_user_[job.user];
#if RRSIM_VALIDATE_ENABLED
  validate_op(id, JobState::kCancelled);
#endif
  if (callbacks_.on_cancelled) callbacks_.on_cancelled(job);
  return true;
}

bool ClusterScheduler::try_start(Job job) {
  if (job.nodes > free_nodes_) {
    throw std::logic_error("try_start: not enough free nodes");
  }
  // The job leaves the pending population whether the grant succeeds
  // (it runs) or not (it is dropped as declined).
  --pending_per_user_[job.user];
  if (callbacks_.on_grant && !callbacks_.on_grant(job)) {
    ++counters_.declines;
    if (forget_terminal_ids_) {
      known_ids_.erase(job.id);
      predictions_.erase(job.id);
    } else {
      known_ids_[job.id] = JobState::kDeclined;
    }
#if RRSIM_VALIDATE_ENABLED
    validate_op(job.id, JobState::kDeclined);
#endif
    return false;
  }
  job.state = JobState::kRunning;
  job.start_time = sim_.now();
  job.finish_time = job.start_time + job.actual_time;
  free_nodes_ -= job.nodes;
  ++counters_.starts;
  const JobId id = job.id;
  known_ids_[id] = JobState::kRunning;
  running_.emplace(id, job);
  sim_.schedule_at(
      job.finish_time, [this, id] { complete_job(id); },
      des::Priority::kCompletion, event_tag_);
#if RRSIM_VALIDATE_ENABLED
  validate_op(id, JobState::kRunning);
#endif
  // Pass the local copy, not running_.at(id): the callback may start or
  // cancel other jobs, and the flat running set relocates on mutation.
  if (callbacks_.on_start) callbacks_.on_start(job);
  return true;
}

void ClusterScheduler::complete_job(JobId id) {
  const auto it = running_.find(id);
  if (it == running_.end()) {
    throw std::logic_error("completion for unknown running job");
  }
  Job job = it->second;
  running_.erase(it);
  job.state = JobState::kFinished;
  if (forget_terminal_ids_) {
    known_ids_.erase(id);
    predictions_.erase(id);
  } else {
    known_ids_[id] = JobState::kFinished;
  }
  free_nodes_ += job.nodes;
  ++counters_.finishes;
#if RRSIM_VALIDATE_ENABLED
  validate_op(id, JobState::kFinished);
#endif
  if (callbacks_.on_finish) callbacks_.on_finish(job);
  handle_completion(job);
}

std::vector<std::pair<Time, int>> ClusterScheduler::running_requested_ends()
    const {
  std::vector<std::pair<Time, int>> out;
  out.reserve(running_.size());
  for (const auto& [id, job] : running_) {
    out.emplace_back(job.start_time + job.requested_time, job.nodes);
  }
  return out;
}

void ClusterScheduler::record_prediction(JobId id, Time predicted_start) {
  predictions_[id] = predicted_start;
}

std::optional<Time> ClusterScheduler::predicted_start_at_submit(
    JobId id) const {
  const Time* t = predictions_.find(id);
  if (t == nullptr) return std::nullopt;
  return *t;
}

Time ClusterScheduler::predict_hypothetical_start(int nodes,
                                                  Time requested_time) const {
  if (nodes < 1 || nodes > total_nodes_) {
    throw std::invalid_argument("hypothetical job cannot run here");
  }
  const Time now = sim_.now();
  // The scratch profile is reset in place — prediction sweeps call this
  // once per submission, and a fresh Profile per call was the dominant
  // allocation of the Section-5 studies.
  Profile& profile = scratch_profile_;
  profile.reset();
  // Running jobs hold their nodes until their *requested* end — the
  // conservative assumption every queue-based predictor makes.
  for (const auto& kv : running_) {
    const Job& job = kv.second;
    const Time end = job.start_time + job.requested_time;
    if (end > now) profile.reserve(now, end - now, job.nodes);
  }
  // Queued jobs claim slots in FCFS order.
  for (const Job* j : pending_in_order()) {
    const Time s = profile.earliest_start(now, j->nodes, j->requested_time);
    profile.reserve(s, j->requested_time, j->nodes);
  }
  return profile.earliest_start(now, nodes, requested_time);
}

}  // namespace rrsim::sched
