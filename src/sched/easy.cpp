#include "rrsim/sched/easy.h"

#include <algorithm>
#include <stdexcept>

namespace rrsim::sched {

void EasyScheduler::handle_submit(Job job) {
  queue_.push_back(std::move(job));
  schedule_pass();
}

Job EasyScheduler::handle_cancel(JobId id) {
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (it->id == id) {
      Job job = *it;
      queue_.erase(it);
      schedule_pass();  // cancellation opens backfill opportunities
      return job;
    }
  }
  throw std::logic_error("easy: cancel of non-pending job");
}

void EasyScheduler::handle_completion(const Job& job) {
  const std::pair<Time, int> key{job.start_time + job.requested_time,
                                 job.nodes};
  const auto it =
      std::lower_bound(running_ends_.begin(), running_ends_.end(), key);
  if (it == running_ends_.end() || *it != key) {
    throw std::logic_error("easy: finished job missing from running_ends_");
  }
  running_ends_.erase(it);  // erase one instance, not all duplicates
#if RRSIM_VALIDATE_ENABLED
  validate_ends();
#endif
  schedule_pass();
}

std::vector<const Job*> EasyScheduler::pending_in_order() const {
  std::vector<const Job*> out;
  out.reserve(queue_.size());
  for (const Job& j : queue_) out.push_back(&j);
  return out;
}

EasyScheduler::Shadow EasyScheduler::compute_shadow() const {
  const Job& head = queue_.front();
  int avail = free_nodes();
  for (const auto& [end, nodes] : running_ends_) {
    avail += nodes;
    if (avail >= head.nodes) {
      return Shadow{end, avail - head.nodes};
    }
  }
  // Unreachable while the head does not fit: head.nodes <= total_nodes, so
  // draining every running job always yields enough.
  throw std::logic_error("easy: shadow not found for non-fitting head");
}

std::optional<Time> EasyScheduler::head_shadow_time() const {
  if (queue_.empty()) return std::nullopt;
  if (queue_.front().nodes <= free_nodes()) return sim_.now();
  return compute_shadow().time;
}

bool EasyScheduler::start_and_track(Job job) {
  const Time end = sim_.now() + job.requested_time;
  const int nodes = job.nodes;
  if (!try_start(std::move(job))) return false;
  // `end` equals start_time + requested_time: try_start stamps
  // start_time with the same now used above.
  const std::pair<Time, int> key{end, nodes};
  running_ends_.insert(
      std::upper_bound(running_ends_.begin(), running_ends_.end(), key), key);
#if RRSIM_VALIDATE_ENABLED
  validate_ends();
#endif
  return true;
}

void EasyScheduler::schedule_pass() {
  count_pass();
  for (;;) {
    // Phase 1: strict FCFS starts from the head.
    while (!queue_.empty() && queue_.front().nodes <= free_nodes()) {
      Job job = std::move(queue_.front());
      queue_.pop_front();
      start_and_track(std::move(job));
    }
    if (queue_.empty()) return;

    // Phase 2: backfill behind the (non-fitting) head under the one-
    // reservation rule. Shadow/extra are maintained incrementally: a
    // backfilled job that may outlive the shadow consumes `extra`.
    Shadow shadow = compute_shadow();
    const Time now = sim_.now();
    bool queue_changed = false;  // a decline invalidates iterators/shadow
    for (auto it = std::next(queue_.begin());
         it != queue_.end() && free_nodes() > 0;) {
      const bool fits_now = it->nodes <= free_nodes();
      const bool ends_before_shadow =
          now + it->requested_time <= shadow.time;
      const bool within_extra = it->nodes <= shadow.extra;
      if (fits_now && (ends_before_shadow || within_extra)) {
        Job job = *it;
        it = queue_.erase(it);
        if (!ends_before_shadow) shadow.extra -= job.nodes;
        if (!start_and_track(std::move(job))) {
          // Decline: the start did not happen, so the shadow bookkeeping
          // above may now be stale; restart the whole pass.
          queue_changed = true;
          break;
        }
      } else {
        ++it;
      }
    }
    if (!queue_changed) return;
  }
}

}  // namespace rrsim::sched
