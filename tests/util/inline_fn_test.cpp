// Tests for the non-allocating callable types: lifetime of captures,
// move semantics, and the inline/heap split of TaskFunction.
#include "rrsim/util/inline_fn.h"

#include <gtest/gtest.h>

#include <memory>
#include <utility>

namespace {

using rrsim::util::InlineFunction;
using rrsim::util::TaskFunction;

TEST(InlineFunction, InvokesAndReportsEngaged) {
  int hits = 0;
  InlineFunction<64> fn = [&hits] { ++hits; };
  ASSERT_TRUE(static_cast<bool>(fn));
  fn();
  fn();
  EXPECT_EQ(hits, 2);
  EXPECT_FALSE(static_cast<bool>(InlineFunction<64>{}));
}

TEST(InlineFunction, MoveTransfersCallableAndEmptiesSource) {
  int hits = 0;
  InlineFunction<64> a = [&hits] { ++hits; };
  InlineFunction<64> b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(hits, 1);
  InlineFunction<64> c;
  c = std::move(b);
  EXPECT_FALSE(static_cast<bool>(b));
  c();
  EXPECT_EQ(hits, 2);
}

TEST(InlineFunction, DestructionAndResetReleaseCaptures) {
  const auto token = std::make_shared<int>(1);
  {
    InlineFunction<64> fn = [token] { (void)*token; };
    EXPECT_EQ(token.use_count(), 2);
  }
  EXPECT_EQ(token.use_count(), 1);  // destructor ran the capture's dtor
  InlineFunction<64> fn = [token] { (void)*token; };
  EXPECT_EQ(token.use_count(), 2);
  fn = nullptr;
  EXPECT_EQ(token.use_count(), 1);
  EXPECT_FALSE(static_cast<bool>(fn));
}

TEST(InlineFunction, AssignmentReplacesPreviousCapture) {
  const auto first = std::make_shared<int>(1);
  const auto second = std::make_shared<int>(2);
  InlineFunction<64> fn = [first] { (void)*first; };
  fn = InlineFunction<64>([second] { (void)*second; });
  EXPECT_EQ(first.use_count(), 1);
  EXPECT_EQ(second.use_count(), 2);
}

TEST(TaskFunction, SmallAndLargeCapturesBothWork) {
  int hits = 0;
  TaskFunction small = [&hits] { ++hits; };  // fits the inline buffer
  struct Big {
    double pad[16];
  };
  Big big{};
  big.pad[0] = 4.0;
  TaskFunction large = [&hits, big] { hits += static_cast<int>(big.pad[0]); };
  small();
  large();
  EXPECT_EQ(hits, 5);
}

TEST(TaskFunction, SupportsMoveOnlyCaptures) {
  auto owned = std::make_unique<int>(7);
  int out = 0;
  TaskFunction fn = [&out, p = std::move(owned)] { out = *p; };
  TaskFunction moved = std::move(fn);
  EXPECT_FALSE(static_cast<bool>(fn));
  moved();
  EXPECT_EQ(out, 7);
}

TEST(TaskFunction, HeapCapturesReleaseOnDestructionAndMove) {
  const auto token = std::make_shared<int>(1);
  struct Pad {
    double pad[16];
  };
  {
    TaskFunction fn = [token, pad = Pad{}] { (void)*token, (void)pad; };
    EXPECT_EQ(token.use_count(), 2);
    TaskFunction moved = std::move(fn);
    EXPECT_EQ(token.use_count(), 2);  // hand-off, not a copy
  }
  EXPECT_EQ(token.use_count(), 1);
}

}  // namespace
