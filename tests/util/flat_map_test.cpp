// Property tests for the flat containers backing the kernel hot paths.
// Each container is driven by a long randomized operation sequence and
// checked against the std:: associative container it replaced, including
// across rehash/growth boundaries and backward-shift deletions.
#include "rrsim/util/flat_map.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <random>
#include <vector>

namespace {

using rrsim::util::DenseIdMap;
using rrsim::util::FlatHashMap;
using rrsim::util::FlatOrderedMap;

template <typename Flat>
void expect_same_contents(const Flat& flat,
                          const std::map<std::uint64_t, int>& oracle) {
  ASSERT_EQ(flat.size(), oracle.size());
  std::map<std::uint64_t, int> seen;
  flat.for_each([&seen](std::uint64_t k, int v) { seen.emplace(k, v); });
  EXPECT_EQ(seen, oracle);
}

TEST(FlatHashMap, RandomizedAgainstMapOracle) {
  std::mt19937 rng(12345);
  FlatHashMap<std::uint64_t, int> flat;
  std::map<std::uint64_t, int> oracle;
  // A small key universe forces collisions, probe chains that wrap the
  // table, and backward-shift deletions inside long runs.
  std::uniform_int_distribution<std::uint64_t> key_dist(0, 255);
  for (int step = 0; step < 20000; ++step) {
    const std::uint64_t k = key_dist(rng);
    switch (rng() % 5u) {
      case 0: {
        const auto r = flat.try_emplace(k, step);
        const auto o = oracle.try_emplace(k, step);
        EXPECT_EQ(r.inserted, o.second);
        EXPECT_EQ(*r.value, o.first->second);
        break;
      }
      case 1:
        EXPECT_EQ(flat.erase(k), oracle.erase(k) > 0);
        break;
      case 2: {
        int* v = flat.find(k);
        const auto it = oracle.find(k);
        ASSERT_EQ(v != nullptr, it != oracle.end());
        if (v != nullptr) EXPECT_EQ(*v, it->second);
        EXPECT_EQ(flat.contains(k), v != nullptr);
        break;
      }
      case 3:
        ++flat[k];
        ++oracle[k];
        break;
      case 4: {
        int* v = flat.find(k);
        if (v != nullptr) {
          *v = step;
          oracle[k] = step;
        }
        break;
      }
    }
    if (step % 2500 == 0) expect_same_contents(flat, oracle);
  }
  expect_same_contents(flat, oracle);
}

TEST(FlatHashMap, SequentialIdsSurviveGrowth) {
  // Sequential keys are the common case (job ids) and the worst case for
  // a power-of-two table without hash mixing; growth rehashes everything.
  FlatHashMap<std::uint64_t, std::uint64_t> flat;
  constexpr std::uint64_t kN = 10000;
  for (std::uint64_t k = 0; k < kN; ++k) {
    const auto r = flat.try_emplace(k, k * 3);
    ASSERT_TRUE(r.inserted);
  }
  ASSERT_EQ(flat.size(), kN);
  for (std::uint64_t k = 0; k < kN; k += 3) EXPECT_TRUE(flat.erase(k));
  for (std::uint64_t k = 0; k < kN; ++k) {
    const std::uint64_t* v = flat.find(k);
    if (k % 3 == 0) {
      EXPECT_EQ(v, nullptr);
    } else {
      ASSERT_NE(v, nullptr);
      EXPECT_EQ(*v, k * 3);
    }
  }
}

TEST(FlatHashMap, ClearKeepsWorkingAndAtThrows) {
  FlatHashMap<std::uint64_t, int> flat;
  for (std::uint64_t k = 0; k < 100; ++k) flat.try_emplace(k, 1);
  flat.clear();
  EXPECT_TRUE(flat.empty());
  EXPECT_EQ(flat.find(5), nullptr);
  EXPECT_THROW(flat.at(5), std::out_of_range);
  flat.try_emplace(7, 42);
  EXPECT_EQ(flat.at(7), 42);
  EXPECT_EQ(flat.size(), 1u);
}

TEST(FlatHashMap, ReservePreventsGrowthRehash) {
  FlatHashMap<std::uint64_t, int> flat;
  flat.reserve(1000);
  for (std::uint64_t k = 0; k < 1000; ++k) flat.try_emplace(k, 1);
  EXPECT_EQ(flat.size(), 1000u);
}

TEST(FlatOrderedMap, RandomizedAgainstMapOracleWithOrder) {
  std::mt19937 rng(999);
  FlatOrderedMap<std::uint64_t, int> flat;
  std::map<std::uint64_t, int> oracle;
  std::uniform_int_distribution<std::uint64_t> key_dist(0, 127);
  for (int step = 0; step < 8000; ++step) {
    const std::uint64_t k = key_dist(rng);
    switch (rng() % 3u) {
      case 0: {
        const auto r = flat.emplace(k, step);
        const auto o = oracle.emplace(k, step);
        EXPECT_EQ(r.second, o.second);
        EXPECT_EQ(r.first->second, o.first->second);
        break;
      }
      case 1:
        EXPECT_EQ(flat.erase(k), oracle.erase(k) > 0);
        break;
      case 2: {
        const auto it = flat.find(k);
        const auto o = oracle.find(k);
        ASSERT_EQ(it != flat.end(), o != oracle.end());
        if (it != flat.end()) EXPECT_EQ(it->second, o->second);
        break;
      }
    }
    if (step % 1000 == 0) {
      // Iteration must visit keys in ascending order with oracle-equal
      // contents — the profile-rebuild paths depend on this order.
      ASSERT_EQ(flat.size(), oracle.size());
      auto oit = oracle.begin();
      for (const auto& [key, value] : flat) {
        ASSERT_NE(oit, oracle.end());
        EXPECT_EQ(key, oit->first);
        EXPECT_EQ(value, oit->second);
        ++oit;
      }
    }
  }
}

TEST(DenseIdMap, InsertFindEraseAndClear) {
  DenseIdMap<int> map;
  for (std::uint64_t id = 1; id <= 64; ++id) {
    map.insert(id, static_cast<int>(id * 7));
  }
  EXPECT_EQ(map.size(), 64u);
  EXPECT_EQ(map.find(0), nullptr);
  for (std::uint64_t id = 1; id <= 64; id += 2) EXPECT_TRUE(map.erase(id));
  EXPECT_FALSE(map.erase(3));  // already gone
  for (std::uint64_t id = 1; id <= 64; ++id) {
    const int* v = map.find(id);
    if (id % 2 == 1) {
      EXPECT_EQ(v, nullptr);
    } else {
      ASSERT_NE(v, nullptr);
      EXPECT_EQ(*v, static_cast<int>(id * 7));
    }
  }
  map.clear();
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.find(2), nullptr);
  map.insert(2, 5);
  EXPECT_EQ(*map.find(2), 5);
}

}  // namespace
