#include "rrsim/util/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "rrsim/util/rng.h"

namespace rrsim::util {
namespace {

TEST(OnlineStats, EmptyIsAllZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.cv_percent(), 0.0);
}

TEST(OnlineStats, SingleValue) {
  OnlineStats s;
  s.add(4.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 4.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 4.0);
  EXPECT_EQ(s.max(), 4.0);
}

TEST(OnlineStats, KnownSample) {
  // Sample {2, 4, 4, 4, 5, 5, 7, 9}: mean 5, sample variance 32/7.
  OnlineStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.cv_percent(), std::sqrt(32.0 / 7.0) / 5.0 * 100.0, 1e-9);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(OnlineStats, MatchesNaiveTwoPassOnRandomData) {
  Rng rng(1);
  std::vector<double> xs;
  OnlineStats s;
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.uniform(-100.0, 100.0);
    xs.push_back(x);
    s.add(x);
  }
  double mean = 0.0;
  for (const double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double m2 = 0.0;
  for (const double x : xs) m2 += (x - mean) * (x - mean);
  const double var = m2 / static_cast<double>(xs.size() - 1);
  EXPECT_NEAR(s.mean(), mean, 1e-9);
  EXPECT_NEAR(s.variance(), var, 1e-6);
}

TEST(OnlineStats, MergeEqualsSequential) {
  Rng rng(2);
  OnlineStats whole;
  OnlineStats left;
  OnlineStats right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(0.0, 10.0);
    whole.add(x);
    (i % 3 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_EQ(left.max(), whole.max());
  EXPECT_EQ(left.min(), whole.min());
}

TEST(OnlineStats, MergeWithEmptyIsIdentity) {
  OnlineStats a;
  a.add(1.0);
  a.add(3.0);
  OnlineStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.mean(), 2.0);
  OnlineStats b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_EQ(b.mean(), 2.0);
}

TEST(Summarize, EmptySpan) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Summarize, BasicSample) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.mean, 2.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 3.0);
  EXPECT_NEAR(s.stddev, 1.0, 1e-12);
  EXPECT_NEAR(s.cv_percent, 50.0, 1e-9);
}

TEST(Quantile, InterpolatesLinearly) {
  const std::vector<double> xs{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 25.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0 / 3.0), 20.0);
}

TEST(Quantile, UnsortedInputHandled) {
  const std::vector<double> xs{40.0, 10.0, 30.0, 20.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 25.0);
}

TEST(Quantile, RejectsOutOfRangeQ) {
  const std::vector<double> xs{1.0};
  EXPECT_THROW(quantile(xs, -0.1), std::invalid_argument);
  EXPECT_THROW(quantile(xs, 1.1), std::invalid_argument);
}

TEST(Quantile, EmptyReturnsZero) { EXPECT_EQ(quantile({}, 0.5), 0.0); }

TEST(MeanOf, Basics) {
  EXPECT_EQ(mean_of({}), 0.0);
  const std::vector<double> xs{2.0, 4.0};
  EXPECT_DOUBLE_EQ(mean_of(xs), 3.0);
}

TEST(ElementwiseRatio, SkipsZeroDenominators) {
  const std::vector<double> a{2.0, 6.0, 8.0};
  const std::vector<double> b{1.0, 0.0, 4.0};
  const std::vector<double> r = elementwise_ratio(a, b);
  ASSERT_EQ(r.size(), 2u);
  EXPECT_DOUBLE_EQ(r[0], 2.0);
  EXPECT_DOUBLE_EQ(r[1], 2.0);
}

TEST(ElementwiseRatio, RejectsSizeMismatch) {
  const std::vector<double> a{1.0};
  const std::vector<double> b{1.0, 2.0};
  EXPECT_THROW(elementwise_ratio(a, b), std::invalid_argument);
}

}  // namespace
}  // namespace rrsim::util
