#include "rrsim/util/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace rrsim::util {
namespace {

TEST(Pcg32, SameSeedSameSequence) {
  Pcg32 a(123, 7);
  Pcg32 b(123, 7);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next(), b.next()) << "diverged at draw " << i;
  }
}

TEST(Pcg32, DifferentSeedsDiffer) {
  Pcg32 a(1, 7);
  Pcg32 b(2, 7);
  int same = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Pcg32, DifferentStreamsDiffer) {
  Pcg32 a(42, 1);
  Pcg32 b(42, 2);
  int same = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, Uniform01MeanNearHalf) {
  Rng rng(10);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-3.0, 17.5);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 17.5);
  }
}

TEST(Rng, BelowIsUnbiasedAcrossSmallRange) {
  Rng rng(12);
  std::vector<int> counts(7, 0);
  const int n = 70000;
  for (int i = 0; i < n; ++i) {
    ++counts[rng.below(7)];
  }
  for (int k = 0; k < 7; ++k) {
    EXPECT_NEAR(counts[k], n / 7, n / 7 * 0.1) << "bucket " << k;
  }
}

TEST(Rng, BetweenCoversInclusiveRange) {
  Rng rng(13);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.between(-2, 3);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);  // all six values observed
}

TEST(Rng, ChanceZeroAndOne) {
  Rng rng(14);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceMatchesProbability) {
  Rng rng(15);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ForkProducesIndependentStreams) {
  Rng parent(16);
  Rng a = parent.fork(1);
  Rng b = parent.fork(2);
  int same = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, ForkIsDeterministic) {
  Rng p1(17);
  Rng p2(17);
  Rng a = p1.fork(5);
  Rng b = p2.fork(5);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, FromFingerprintContinuesTheSequenceExactly) {
  Rng original(19);
  for (int i = 0; i < 37; ++i) original.next_u64();  // advance mid-stream
  Rng restored = Rng::from_fingerprint(original.fingerprint());
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(restored.next_u64(), original.next_u64())
        << "diverged at draw " << i;
  }
  // And the restored generator's own fingerprint round-trips.
  EXPECT_EQ(restored.fingerprint(), original.fingerprint());
}

TEST(Rng, ChanceAdvancesStateIndependentlyOfProbability) {
  // workload::DrawSegmentKey relies on this: chance(p) consumes exactly
  // one next_u64 whatever p is, so the generator's end state after a run
  // of coin flips does not depend on the swept probability — which is what
  // lets redundant-fraction sweep points share one memoized substream
  // fast-forward. If chance() ever short-circuits for p <= 0 or p >= 1,
  // the memo key must grow a fraction field.
  Rng a(23);
  Rng b(23);
  const double ps_a[] = {0.0, 0.3, 1.0, -1.0, 0.5};
  const double ps_b[] = {0.9, 0.1, 2.0, 0.7, 0.0};
  for (int i = 0; i < 5; ++i) {
    (void)a.chance(ps_a[i]);
    (void)b.chance(ps_b[i]);
    ASSERT_EQ(a.fingerprint(), b.fingerprint()) << "diverged at flip " << i;
  }
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(Rng::min() == 0);
  static_assert(Rng::max() == ~0ULL);
  Rng rng(18);
  EXPECT_NE(rng(), rng());
}

}  // namespace
}  // namespace rrsim::util
