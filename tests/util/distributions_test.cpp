#include "rrsim/util/distributions.h"

#include <gtest/gtest.h>

#include <cmath>

namespace rrsim::util {
namespace {

constexpr int kSamples = 200000;

TEST(Normal, MomentsMatchStandardNormal) {
  Rng rng(1);
  double sum = 0.0;
  double sum2 = 0.0;
  for (int i = 0; i < kSamples; ++i) {
    const double x = sample_normal(rng);
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / kSamples, 0.0, 0.02);
  EXPECT_NEAR(sum2 / kSamples, 1.0, 0.02);
}

TEST(Exponential, MeanMatches) {
  Rng rng(2);
  double sum = 0.0;
  for (int i = 0; i < kSamples; ++i) sum += sample_exponential(rng, 7.5);
  EXPECT_NEAR(sum / kSamples, 7.5, 0.1);
}

TEST(Exponential, AlwaysPositive) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    ASSERT_GE(sample_exponential(rng, 0.001), 0.0);
  }
}

TEST(Exponential, RejectsNonPositiveMean) {
  Rng rng(4);
  EXPECT_THROW(sample_exponential(rng, 0.0), std::invalid_argument);
  EXPECT_THROW(sample_exponential(rng, -1.0), std::invalid_argument);
}

// Gamma moments: mean = alpha*beta, variance = alpha*beta^2.
struct GammaCase {
  double alpha;
  double beta;
};

class GammaMoments : public ::testing::TestWithParam<GammaCase> {};

TEST_P(GammaMoments, MeanAndVarianceMatch) {
  const auto [alpha, beta] = GetParam();
  Rng rng(5);
  double sum = 0.0;
  double sum2 = 0.0;
  for (int i = 0; i < kSamples; ++i) {
    const double x = sample_gamma(rng, alpha, beta);
    ASSERT_GT(x, 0.0);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / kSamples;
  const double var = sum2 / kSamples - mean * mean;
  EXPECT_NEAR(mean, alpha * beta, 0.03 * alpha * beta + 0.01);
  EXPECT_NEAR(var, alpha * beta * beta,
              0.10 * alpha * beta * beta + 0.01);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GammaMoments,
    ::testing::Values(GammaCase{0.3, 1.0},   // boosted branch (alpha < 1)
                      GammaCase{1.0, 2.0},   // exponential special case
                      GammaCase{4.2, 0.94},  // Lublin short-class ln-runtime
                      GammaCase{10.23, 0.4871},  // paper arrival process
                      GammaCase{312.0, 0.03}));  // Lublin long-class

TEST(Gamma, RejectsBadParameters) {
  Rng rng(6);
  EXPECT_THROW(sample_gamma(rng, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(sample_gamma(rng, 1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(sample_gamma(rng, -1.0, 1.0), std::invalid_argument);
}

TEST(HyperGamma, DegenerateMixtureMatchesComponent) {
  Rng rng(7);
  // p = 1: only the first component is ever drawn.
  const HyperGammaParams only_first{2.0, 3.0, 100.0, 100.0, 1.0};
  double sum = 0.0;
  for (int i = 0; i < kSamples; ++i) {
    sum += sample_hyper_gamma(rng, only_first);
  }
  EXPECT_NEAR(sum / kSamples, 6.0, 0.1);
}

TEST(HyperGamma, MixtureMeanIsWeightedAverage) {
  Rng rng(8);
  const HyperGammaParams hg{2.0, 1.0, 10.0, 2.0, 0.25};
  double sum = 0.0;
  for (int i = 0; i < kSamples; ++i) sum += sample_hyper_gamma(rng, hg);
  // 0.25 * 2 + 0.75 * 20 = 15.5
  EXPECT_NEAR(sum / kSamples, 15.5, 0.25);
}

TEST(HyperGamma, RejectsBadProbability) {
  Rng rng(9);
  EXPECT_THROW(sample_hyper_gamma(rng, {1, 1, 1, 1, -0.1}),
               std::invalid_argument);
  EXPECT_THROW(sample_hyper_gamma(rng, {1, 1, 1, 1, 1.1}),
               std::invalid_argument);
}

TEST(TwoStageUniform, StaysWithinBounds) {
  Rng rng(10);
  const TwoStageUniformParams p{1.0, 4.0, 7.0, 0.7};
  for (int i = 0; i < 20000; ++i) {
    const double x = sample_two_stage_uniform(rng, p);
    ASSERT_GE(x, 1.0);
    ASSERT_LT(x, 7.0);
  }
}

TEST(TwoStageUniform, LowerStageProbabilityRespected) {
  Rng rng(11);
  const TwoStageUniformParams p{0.0, 1.0, 2.0, 0.86};
  int low = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (sample_two_stage_uniform(rng, p) < 1.0) ++low;
  }
  EXPECT_NEAR(static_cast<double>(low) / n, 0.86, 0.01);
}

TEST(TwoStageUniform, EmpiricalMeanMatchesClosedForm) {
  Rng rng(12);
  const TwoStageUniformParams p{0.8, 3.5, 7.0, 0.86};
  double sum = 0.0;
  for (int i = 0; i < kSamples; ++i) {
    sum += sample_two_stage_uniform(rng, p);
  }
  EXPECT_NEAR(sum / kSamples, two_stage_uniform_mean(p), 0.02);
}

TEST(TwoStageUniform, RejectsDisorderedStages) {
  Rng rng(13);
  EXPECT_THROW(sample_two_stage_uniform(rng, {5.0, 4.0, 7.0, 0.5}),
               std::invalid_argument);
  EXPECT_THROW(sample_two_stage_uniform(rng, {1.0, 4.0, 3.0, 0.5}),
               std::invalid_argument);
  EXPECT_THROW(sample_two_stage_uniform(rng, {1.0, 2.0, 3.0, 1.5}),
               std::invalid_argument);
}

}  // namespace
}  // namespace rrsim::util
