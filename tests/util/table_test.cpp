#include "rrsim/util/table.h"

#include <gtest/gtest.h>

#include <sstream>

namespace rrsim::util {
namespace {

TEST(FormatFixed, Precision) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(3.0, 0), "3");
  EXPECT_EQ(format_fixed(-0.5, 1), "-0.5");
}

TEST(Table, RequiresHeaders) {
  EXPECT_THROW(Table(std::vector<std::string>{}), std::invalid_argument);
}

TEST(Table, TextRenderingAligned) {
  Table t({"name", "value"});
  t.begin_row().add("alpha").add(1.5, 1);
  t.begin_row().add("b").add(22LL);
  const std::string text = t.to_text();
  // Header, separator, two rows.
  std::istringstream in(text);
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_NE(lines[0].find("name"), std::string::npos);
  EXPECT_NE(lines[1].find("---"), std::string::npos);
  EXPECT_NE(lines[2].find("alpha"), std::string::npos);
  EXPECT_NE(lines[2].find("1.5"), std::string::npos);
  EXPECT_NE(lines[3].find("22"), std::string::npos);
}

TEST(Table, CsvRendering) {
  Table t({"a", "b"});
  t.begin_row().add("x").add(2LL);
  EXPECT_EQ(t.to_csv(), "a,b\nx,2\n");
}

TEST(Table, CsvEscapesSpecials) {
  Table t({"a"});
  t.begin_row().add("has,comma");
  t.begin_row().add("has\"quote");
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"has\"\"quote\""), std::string::npos);
}

TEST(Table, TooManyCellsThrows) {
  Table t({"only"});
  t.begin_row().add("one");
  EXPECT_THROW(t.add("two"), std::logic_error);
}

TEST(Table, ImplicitFirstRow) {
  Table t({"a"});
  t.add("auto");  // no begin_row needed for the first cell
  EXPECT_EQ(t.rows(), 1u);
}

TEST(Table, PrintIncludesCsvBlock) {
  Table t({"h"});
  t.begin_row().add("v");
  std::ostringstream out;
  t.print(out);
  EXPECT_NE(out.str().find("# CSV"), std::string::npos);
  std::ostringstream out2;
  t.print(out2, false);
  EXPECT_EQ(out2.str().find("# CSV"), std::string::npos);
}

}  // namespace
}  // namespace rrsim::util
