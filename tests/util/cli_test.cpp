#include "rrsim/util/cli.h"

#include <gtest/gtest.h>

namespace rrsim::util {
namespace {

Cli make(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Cli(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, EmptyCommandLine) {
  const Cli cli = make({});
  EXPECT_FALSE(cli.has("anything"));
  EXPECT_EQ(cli.program(), "prog");
}

TEST(Cli, KeyEqualsValue) {
  const Cli cli = make({"--reps=50"});
  EXPECT_TRUE(cli.has("reps"));
  EXPECT_EQ(cli.get_int("reps", 0), 50);
}

TEST(Cli, KeySpaceValue) {
  const Cli cli = make({"--scheme", "HALF"});
  EXPECT_EQ(cli.get_string("scheme", ""), "HALF");
}

TEST(Cli, BareFlagIsTrue) {
  const Cli cli = make({"--full"});
  EXPECT_TRUE(cli.get_bool("full", false));
}

TEST(Cli, AbsentFlagUsesFallback) {
  const Cli cli = make({});
  EXPECT_EQ(cli.get_int("reps", 7), 7);
  EXPECT_EQ(cli.get_double("util", 0.5), 0.5);
  EXPECT_EQ(cli.get_string("x", "d"), "d");
  EXPECT_FALSE(cli.get_bool("full", false));
}

TEST(Cli, BooleanSpellings) {
  EXPECT_TRUE(make({"--x=true"}).get_bool("x", false));
  EXPECT_TRUE(make({"--x=1"}).get_bool("x", false));
  EXPECT_TRUE(make({"--x=yes"}).get_bool("x", false));
  EXPECT_FALSE(make({"--x=false"}).get_bool("x", true));
  EXPECT_FALSE(make({"--x=0"}).get_bool("x", true));
  EXPECT_FALSE(make({"--x=no"}).get_bool("x", true));
}

TEST(Cli, BadBooleanThrows) {
  const Cli cli = make({"--x=maybe"});
  EXPECT_THROW(cli.get_bool("x", false), std::invalid_argument);
}

TEST(Cli, BadIntegerThrows) {
  EXPECT_THROW(make({"--n=12x"}).get_int("n", 0), std::invalid_argument);
  EXPECT_THROW(make({"--n=1.5"}).get_int("n", 0), std::invalid_argument);
}

TEST(Cli, DoubleParsing) {
  EXPECT_DOUBLE_EQ(make({"--u=0.92"}).get_double("u", 0), 0.92);
  EXPECT_THROW(make({"--u=abc"}).get_double("u", 0), std::invalid_argument);
}

TEST(Cli, NegativeNumbersAsValues) {
  // `--key=value` form supports negative numbers unambiguously.
  EXPECT_EQ(make({"--n=-3"}).get_int("n", 0), -3);
}

TEST(Cli, PositionalArgumentRejected) {
  std::vector<const char*> argv{"prog", "positional"};
  EXPECT_THROW(Cli(2, argv.data()), std::invalid_argument);
}

TEST(Cli, LaterFlagWins) {
  const Cli cli = make({"--n=1", "--n=2"});
  EXPECT_EQ(cli.get_int("n", 0), 2);
}

TEST(Cli, SeenRecordsOrder) {
  const Cli cli = make({"--a=1", "--b=2", "--a=3"});
  ASSERT_EQ(cli.seen().size(), 3u);
  EXPECT_EQ(cli.seen()[0], "a");
  EXPECT_EQ(cli.seen()[1], "b");
  EXPECT_EQ(cli.seen()[2], "a");
}

}  // namespace
}  // namespace rrsim::util
