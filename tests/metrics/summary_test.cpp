#include "rrsim/metrics/summary.h"

#include <gtest/gtest.h>

namespace rrsim::metrics {
namespace {

JobRecord make_record(double submit, double start, double actual,
                      bool redundant = false) {
  JobRecord r;
  r.submit_time = submit;
  r.start_time = start;
  r.actual_time = actual;
  r.finish_time = start + actual;
  r.requested_time = actual;
  r.redundant = redundant;
  return r;
}

TEST(Stretch, NoWaitIsOne) {
  EXPECT_DOUBLE_EQ(stretch_of(make_record(0.0, 0.0, 100.0)), 1.0);
}

TEST(Stretch, WaitInflatesStretch) {
  // 100 s wait + 100 s run over 100 s runtime = 2.
  EXPECT_DOUBLE_EQ(stretch_of(make_record(0.0, 100.0, 100.0)), 2.0);
}

TEST(Stretch, SubSecondRuntimeClamped) {
  // 0.1 s job waiting 10 s: denominator clamps at 1 s, so stretch is
  // 10.1 rather than 101.
  const JobRecord r = make_record(0.0, 10.0, 0.1);
  EXPECT_NEAR(stretch_of(r), 10.1, 1e-9);
}

TEST(ComputeMetrics, EmptyRecords) {
  const ScheduleMetrics m = compute_metrics({});
  EXPECT_EQ(m.jobs, 0u);
  EXPECT_EQ(m.avg_stretch, 0.0);
}

TEST(ComputeMetrics, HandComputedValues) {
  std::vector<JobRecord> rs;
  rs.push_back(make_record(0.0, 0.0, 100.0));    // stretch 1
  rs.push_back(make_record(0.0, 200.0, 100.0));  // stretch 3
  const ScheduleMetrics m = compute_metrics(rs);
  EXPECT_EQ(m.jobs, 2u);
  EXPECT_DOUBLE_EQ(m.avg_stretch, 2.0);
  EXPECT_DOUBLE_EQ(m.max_stretch, 3.0);
  EXPECT_DOUBLE_EQ(m.avg_wait, 100.0);
  EXPECT_DOUBLE_EQ(m.avg_turnaround, 200.0);
  // stddev of {1,3} is sqrt(2), CV = sqrt(2)/2*100.
  EXPECT_NEAR(m.cv_stretch_percent, 70.710678, 1e-4);
}

TEST(ClassifiedMetrics, SplitsByRedundancyFlag) {
  std::vector<JobRecord> rs;
  rs.push_back(make_record(0.0, 0.0, 10.0, true));     // r, stretch 1
  rs.push_back(make_record(0.0, 10.0, 10.0, true));    // r, stretch 2
  rs.push_back(make_record(0.0, 40.0, 10.0, false));   // n-r, stretch 5
  const ClassifiedMetrics m = compute_classified_metrics(rs);
  EXPECT_EQ(m.all.jobs, 3u);
  EXPECT_EQ(m.redundant.jobs, 2u);
  EXPECT_EQ(m.non_redundant.jobs, 1u);
  EXPECT_DOUBLE_EQ(m.redundant.avg_stretch, 1.5);
  EXPECT_DOUBLE_EQ(m.non_redundant.avg_stretch, 5.0);
}

TEST(PredictionAccuracy, RatioComputation) {
  std::vector<JobRecord> rs;
  JobRecord a = make_record(0.0, 10.0, 5.0);  // waited 10
  a.predicted_start = 40.0;                   // predicted wait 40 -> ratio 4
  JobRecord b = make_record(0.0, 20.0, 5.0);  // waited 20
  b.predicted_start = 40.0;                   // ratio 2
  rs = {a, b};
  const PredictionAccuracy acc = compute_prediction_accuracy(rs);
  EXPECT_EQ(acc.jobs, 2u);
  EXPECT_DOUBLE_EQ(acc.avg_ratio, 3.0);
}

TEST(PredictionAccuracy, SkipsJobsWithoutPredictionOrWait) {
  std::vector<JobRecord> rs;
  rs.push_back(make_record(0.0, 10.0, 5.0));  // no prediction
  JobRecord b = make_record(0.0, 0.5, 5.0);   // wait below threshold
  b.predicted_start = 100.0;
  rs.push_back(b);
  const PredictionAccuracy acc = compute_prediction_accuracy(rs);
  EXPECT_EQ(acc.jobs, 0u);
}

TEST(PredictionAccuracy, ClassFilters) {
  std::vector<JobRecord> rs;
  JobRecord a = make_record(0.0, 10.0, 5.0, true);
  a.predicted_start = 20.0;  // ratio 2
  JobRecord b = make_record(0.0, 10.0, 5.0, false);
  b.predicted_start = 80.0;  // ratio 8
  rs = {a, b};
  EXPECT_DOUBLE_EQ(compute_prediction_accuracy(rs, true).avg_ratio, 2.0);
  EXPECT_DOUBLE_EQ(compute_prediction_accuracy(rs, false).avg_ratio, 8.0);
  EXPECT_DOUBLE_EQ(compute_prediction_accuracy(rs).avg_ratio, 5.0);
}

TEST(PredictionAccuracy, NegativePredictedWaitClampsToZero) {
  std::vector<JobRecord> rs;
  JobRecord a = make_record(100.0, 110.0, 5.0);
  a.predicted_start = 90.0;  // "in the past": clamp to zero wait
  rs = {a};
  const PredictionAccuracy acc = compute_prediction_accuracy(rs);
  EXPECT_DOUBLE_EQ(acc.avg_ratio, 0.0);
}

}  // namespace
}  // namespace rrsim::metrics
