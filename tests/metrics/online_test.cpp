#include "rrsim/metrics/online.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "rrsim/metrics/summary.h"
#include "rrsim/util/rng.h"
#include "rrsim/util/stats.h"

namespace rrsim::metrics {
namespace {

JobRecord make_record(double submit, double start, double actual,
                      bool redundant = false) {
  JobRecord r;
  r.submit_time = submit;
  r.start_time = start;
  r.actual_time = actual;
  r.finish_time = start + actual;
  r.requested_time = actual;
  r.redundant = redundant;
  return r;
}

/// Random record population exercising both classes, sub-second runtimes
/// (the stretch clamp), and a predicted-start on roughly half the jobs.
std::vector<JobRecord> random_records(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<JobRecord> rs;
  rs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double submit = rng.uniform(0.0, 10000.0);
    const double wait = rng.chance(0.3) ? 0.0 : rng.uniform(0.0, 5000.0);
    const double actual = rng.chance(0.2) ? rng.uniform(0.01, 1.0)
                                          : rng.uniform(1.0, 3000.0);
    JobRecord r = make_record(submit, submit + wait, actual,
                              rng.chance(0.5));
    r.grid_id = i + 1;
    r.origin_cluster = i % 7;
    r.winner_cluster = i % 5;
    r.nodes = 1 + static_cast<int>(rng.below(64));
    r.replicas = 1 + static_cast<int>(rng.below(4));
    r.replicas_delivered = r.replicas;
    if (rng.chance(0.5)) {
      r.predicted_start = submit + rng.uniform(0.0, 2.0 * wait + 1.0);
    }
    rs.push_back(r);
  }
  return rs;
}

// --- compact / JobRecord32 ------------------------------------------------

TEST(Compact, PreservesEveryMetricInput) {
  JobRecord r = make_record(12.5, 40.25, 99.75, true);
  r.grid_id = 7;
  r.predicted_start = 33.0;
  const JobRecord32 c = compact(r);
  EXPECT_EQ(c.submit_time, r.submit_time);
  EXPECT_EQ(c.start_time, r.start_time);
  EXPECT_EQ(c.finish_time, r.finish_time);
  EXPECT_EQ(c.actual_time, r.actual_time);
  EXPECT_TRUE(c.has_prediction());
  EXPECT_EQ(c.predicted_start, 33.0);
  EXPECT_EQ(c.grid_id, 7u);
  EXPECT_TRUE(c.redundant);
  EXPECT_EQ(stretch_of(c), stretch_of(r));
  EXPECT_EQ(c.wait_time(), r.wait_time());
  EXPECT_EQ(c.turnaround(), r.turnaround());
}

TEST(Compact, MissingPredictionBecomesNaN) {
  const JobRecord32 c = compact(make_record(0.0, 1.0, 2.0));
  EXPECT_FALSE(c.has_prediction());
}

TEST(Compact, SaturatesNarrowFields) {
  JobRecord r = make_record(0.0, 1.0, 2.0);
  r.grid_id = (1ULL << 40);
  r.origin_cluster = 1 << 20;
  r.nodes = 1 << 20;
  r.replicas = 1000;
  const JobRecord32 c = compact(r);
  EXPECT_EQ(c.grid_id, UINT32_MAX);
  EXPECT_EQ(c.origin_cluster, UINT16_MAX);
  EXPECT_EQ(c.nodes, UINT16_MAX);
  EXPECT_EQ(c.replicas, 255);
}

// --- streaming vs batch oracle --------------------------------------------

// The accumulator's contract is *bit identity* with the batch pipeline
// when fed the records in vector order, so these comparisons use EXPECT_EQ
// on doubles, not a tolerance.
TEST(OnlineAccumulator, BitIdenticalToBatchOnRandomRecords) {
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    const std::vector<JobRecord> rs = random_records(5000, seed);
    OnlineAccumulator acc;
    for (const JobRecord& r : rs) acc.add(r);

    const ScheduleMetrics batch = compute_metrics(rs);
    const ScheduleMetrics stream = acc.metrics();
    EXPECT_EQ(stream.jobs, batch.jobs);
    EXPECT_EQ(stream.avg_stretch, batch.avg_stretch);
    EXPECT_EQ(stream.cv_stretch_percent, batch.cv_stretch_percent);
    EXPECT_EQ(stream.max_stretch, batch.max_stretch);
    EXPECT_EQ(stream.avg_turnaround, batch.avg_turnaround);
    EXPECT_EQ(stream.avg_wait, batch.avg_wait);

    const ClassifiedMetrics cb = compute_classified_metrics(rs);
    const ClassifiedMetrics cs = acc.classified();
    const auto expect_same = [](const ScheduleMetrics& got,
                                const ScheduleMetrics& want) {
      EXPECT_EQ(got.jobs, want.jobs);
      EXPECT_EQ(got.avg_stretch, want.avg_stretch);
      EXPECT_EQ(got.cv_stretch_percent, want.cv_stretch_percent);
      EXPECT_EQ(got.max_stretch, want.max_stretch);
      EXPECT_EQ(got.avg_turnaround, want.avg_turnaround);
      EXPECT_EQ(got.avg_wait, want.avg_wait);
    };
    expect_same(cs.all, cb.all);
    expect_same(cs.redundant, cb.redundant);
    expect_same(cs.non_redundant, cb.non_redundant);

    for (auto cls : {std::optional<bool>{}, std::optional<bool>{true},
                     std::optional<bool>{false}}) {
      const PredictionAccuracy pb = compute_prediction_accuracy(rs, cls);
      const PredictionAccuracy ps = acc.prediction(cls);
      EXPECT_EQ(ps.jobs, pb.jobs);
      EXPECT_EQ(ps.avg_ratio, pb.avg_ratio);
      EXPECT_EQ(ps.cv_ratio_percent, pb.cv_ratio_percent);
    }
  }
}

TEST(OnlineAccumulator, EmptyMatchesBatchEmpty) {
  const OnlineAccumulator acc;
  const ScheduleMetrics batch = compute_metrics({});
  EXPECT_EQ(acc.jobs(), 0u);
  EXPECT_EQ(acc.metrics().jobs, batch.jobs);
  EXPECT_EQ(acc.metrics().avg_stretch, batch.avg_stretch);
  EXPECT_EQ(acc.prediction().jobs, 0u);
}

TEST(OnlineAccumulator, ResetRestoresFreshState) {
  OnlineAccumulator acc;
  for (const JobRecord& r : random_records(100, 9)) acc.add(r);
  acc.reset();
  EXPECT_EQ(acc.jobs(), 0u);
  EXPECT_EQ(acc.metrics().avg_stretch, 0.0);
  // After reset the accumulator must again match batch exactly.
  const std::vector<JobRecord> rs = random_records(500, 10);
  for (const JobRecord& r : rs) acc.add(r);
  EXPECT_EQ(acc.metrics().avg_stretch, compute_metrics(rs).avg_stretch);
}

// Welford merge over per-rep accumulators vs one sequential pass over the
// concatenation: counts and max are exact, means/CVs agree to rounding.
TEST(OnlineAccumulator, MergeMatchesPooledSequentialWithinRounding) {
  std::vector<JobRecord> all;
  OnlineAccumulator merged;
  for (std::uint64_t rep = 0; rep < 4; ++rep) {
    const std::vector<JobRecord> rs = random_records(1000 + 100 * rep, rep);
    OnlineAccumulator acc;
    for (const JobRecord& r : rs) acc.add(r);
    merged.merge(acc);
    all.insert(all.end(), rs.begin(), rs.end());
  }
  OnlineAccumulator sequential;
  for (const JobRecord& r : all) sequential.add(r);

  const ScheduleMetrics m = merged.metrics();
  const ScheduleMetrics s = sequential.metrics();
  EXPECT_EQ(m.jobs, s.jobs);
  EXPECT_EQ(m.max_stretch, s.max_stretch);
  EXPECT_NEAR(m.avg_stretch, s.avg_stretch, 1e-9 * s.avg_stretch);
  EXPECT_NEAR(m.cv_stretch_percent, s.cv_stretch_percent,
              1e-9 * s.cv_stretch_percent);
  EXPECT_NEAR(m.avg_wait, s.avg_wait, 1e-9 * s.avg_wait);
  const PredictionAccuracy pm = merged.prediction();
  const PredictionAccuracy pseq = sequential.prediction();
  EXPECT_EQ(pm.jobs, pseq.jobs);
  EXPECT_NEAR(pm.avg_ratio, pseq.avg_ratio, 1e-9 * pseq.avg_ratio);
}

// --- P2 quantile sketch ----------------------------------------------------

TEST(P2Quantile, ExactForFewerThanFiveObservations) {
  P2Quantile q(0.5);
  EXPECT_EQ(q.value(), 0.0);
  q.add(3.0);
  EXPECT_EQ(q.value(), 3.0);
  q.add(1.0);
  EXPECT_EQ(q.value(), 2.0);  // median of {1, 3}
  q.add(2.0);
  EXPECT_EQ(q.value(), 2.0);  // median of {1, 2, 3}
}

TEST(P2Quantile, MergeOfSmallSketchIsExactReplay) {
  P2Quantile a(0.5);
  a.add(1.0);
  a.add(5.0);
  P2Quantile b(0.5);
  b.add(3.0);
  a.merge_from(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.value(), 3.0);  // median of {1, 3, 5}
}

/// Randomized error bound: the P^2 estimate's *rank* in the sample must be
/// close to the target quantile. Rank error is the right yardstick — it is
/// distribution-free, while value error blows up wherever the density is
/// thin (e.g. the far tail of the stretch distribution).
TEST(P2Quantile, RandomizedRankErrorBound) {
  for (std::uint64_t seed : {11ULL, 12ULL, 13ULL, 14ULL}) {
    util::Rng rng(seed);
    std::vector<double> sample;
    const std::size_t n = 20000;
    sample.reserve(n);
    P2Quantile p50(0.50);
    P2Quantile p90(0.90);
    P2Quantile p99(0.99);
    for (std::size_t i = 0; i < n; ++i) {
      // Heavy-ish tail, like stretch: exp of a uniform spread.
      const double x = std::exp(rng.uniform(0.0, 5.0));
      sample.push_back(x);
      p50.add(x);
      p90.add(x);
      p99.add(x);
    }
    std::sort(sample.begin(), sample.end());
    const auto rank_of = [&](double v) {
      const auto it = std::lower_bound(sample.begin(), sample.end(), v);
      return static_cast<double>(it - sample.begin()) /
             static_cast<double>(n);
    };
    EXPECT_NEAR(rank_of(p50.value()), 0.50, 0.02) << "seed " << seed;
    EXPECT_NEAR(rank_of(p90.value()), 0.90, 0.02) << "seed " << seed;
    EXPECT_NEAR(rank_of(p99.value()), 0.99, 0.01) << "seed " << seed;
  }
}

TEST(OnlineAccumulator, SketchQuantilesOrderedAndNearExact) {
  const std::vector<JobRecord> rs = random_records(10000, 42);
  OnlineAccumulator acc;
  std::vector<double> stretches;
  stretches.reserve(rs.size());
  for (const JobRecord& r : rs) {
    acc.add(r);
    stretches.push_back(stretch_of(r));
  }
  std::sort(stretches.begin(), stretches.end());
  const auto exact = [&](double q) {
    return stretches[static_cast<std::size_t>(
        q * static_cast<double>(stretches.size() - 1))];
  };
  EXPECT_LE(acc.stretch_p50(), acc.stretch_p90());
  EXPECT_LE(acc.stretch_p90(), acc.stretch_p99());
  EXPECT_NEAR(acc.stretch_p50(), exact(0.50), 0.05 * exact(0.50));
  EXPECT_NEAR(acc.stretch_p90(), exact(0.90), 0.10 * exact(0.90));
}

}  // namespace
}  // namespace rrsim::metrics
