#include "rrsim/metrics/queue_tracker.h"

#include <gtest/gtest.h>

namespace rrsim::metrics {
namespace {

TEST(QueueTracker, RejectsBadInterval) {
  des::Simulation sim;
  EXPECT_THROW(QueueTracker(sim, {}, 0.0, 100.0), std::invalid_argument);
  EXPECT_THROW(QueueTracker(sim, {}, -5.0, 100.0), std::invalid_argument);
  EXPECT_THROW(QueueTracker(sim, {}, 1.0, -1.0), std::invalid_argument);
}

TEST(QueueTracker, SamplesAtInterval) {
  des::Simulation sim;
  std::size_t value = 0;
  QueueTracker tracker(sim, {[&value] { return value; }}, 10.0, 50.0);
  sim.schedule_at(15.0, [&value] { value = 3; });
  sim.schedule_at(35.0, [&value] { value = 7; });
  sim.run();
  const auto& series = tracker.series(0);
  // Samples at 10, 20, 30, 40, 50.
  ASSERT_EQ(series.size(), 5u);
  EXPECT_EQ(series[0], (std::pair<double, std::size_t>{10.0, 0u}));
  EXPECT_EQ(series[1], (std::pair<double, std::size_t>{20.0, 3u}));
  EXPECT_EQ(series[4], (std::pair<double, std::size_t>{50.0, 7u}));
  EXPECT_EQ(tracker.max_length(0), 7u);
}

TEST(QueueTracker, StopsAtHorizon) {
  des::Simulation sim;
  QueueTracker tracker(sim, {[] { return std::size_t{1}; }}, 10.0, 25.0);
  sim.schedule_at(100.0, [] {});  // simulation runs past the horizon
  sim.run();
  EXPECT_EQ(tracker.series(0).size(), 2u);  // samples at 10 and 20
}

TEST(QueueTracker, AvgMaxAcrossProbes) {
  des::Simulation sim;
  QueueTracker tracker(sim,
                       {[] { return std::size_t{4}; },
                        [] { return std::size_t{8}; }},
                       10.0, 20.0);
  sim.run();
  EXPECT_DOUBLE_EQ(tracker.avg_max_length(), 6.0);
}

TEST(QueueTracker, GrowthPerHourLinearQueue) {
  des::Simulation sim;
  double now_len = 0.0;
  // Queue grows by exactly 2 jobs per minute = 120 per hour.
  QueueTracker tracker(
      sim, {[&now_len] { return static_cast<std::size_t>(now_len); }}, 60.0,
      3600.0);
  for (int minute = 1; minute <= 60; ++minute) {
    sim.schedule_at(minute * 60.0 - 1.0,
                    [&now_len] { now_len += 2.0; });
  }
  sim.run();
  EXPECT_NEAR(tracker.growth_per_hour(0), 120.0, 5.0);
}

TEST(QueueTracker, GrowthOfFlatQueueIsZero) {
  des::Simulation sim;
  QueueTracker tracker(sim, {[] { return std::size_t{42}; }}, 10.0, 1000.0);
  sim.run();
  EXPECT_NEAR(tracker.growth_per_hour(0), 0.0, 1e-9);
}

TEST(QueueTracker, HorizonShorterThanIntervalYieldsNoSamples) {
  des::Simulation sim;
  QueueTracker tracker(sim, {[] { return std::size_t{1}; }}, 100.0, 50.0);
  sim.run();
  EXPECT_TRUE(tracker.series(0).empty());
  EXPECT_EQ(tracker.max_length(0), 0u);
  EXPECT_EQ(tracker.growth_per_hour(0), 0.0);
}

}  // namespace
}  // namespace rrsim::metrics
