// Self-tests for rrsim_lint: every rule id fires on a minimal fixture,
// stays silent on the legitimate near-miss, and the allow/bare-allow
// annotation contract behaves as documented.
//
// Fixtures are raw string literals. The linter strips string contents
// before scanning, so when rrsim_lint_repo gates this very file the
// fixtures are invisible — the self-test cannot trip the repo gate.
#include "linter.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "flow.h"
#include "scan.h"

namespace rrsim::lint {
namespace {

std::vector<std::string> rules_of(const std::vector<Finding>& findings) {
  std::vector<std::string> out;
  out.reserve(findings.size());
  for (const Finding& f : findings) out.push_back(f.rule);
  return out;
}

std::vector<Finding> lint(std::string_view text,
                          Category cat = Category::kSrc) {
  return lint_source("fixture.cpp", text, cat);
}

TEST(LintRules, CleanSourceHasNoFindings) {
  const auto findings = lint(R"fix(
#include <vector>
namespace rrsim {
constexpr int kMax = 8;
void tick(double now) {
  std::vector<int> v;
  v.push_back(static_cast<int>(now));
}
}  // namespace rrsim
)fix");
  EXPECT_TRUE(findings.empty()) << findings.size() << " unexpected findings";
}

TEST(LintRules, UnorderedContainerFires) {
  const auto findings = lint(R"fix(
void f() {
  std::unordered_map<int, int> m;
  (void)m;
}
)fix");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "unordered-container");
  EXPECT_EQ(findings[0].line, 3);
  EXPECT_EQ(findings[0].file, "fixture.cpp");
}

TEST(LintRules, UnorderedContainerFiresInEveryCategory) {
  const std::string fixture = R"fix(
void f() { std::unordered_set<int> s; (void)s; }
)fix";
  for (const Category cat :
       {Category::kSrc, Category::kBench, Category::kTests}) {
    const auto findings = lint(fixture, cat);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "unordered-container");
  }
}

TEST(LintRules, WallClockFiresInSrcOnly) {
  const std::string fixture = R"fix(
void f() {
  auto t0 = std::chrono::steady_clock::now();
  (void)t0;
}
)fix";
  const auto src = lint(fixture, Category::kSrc);
  ASSERT_EQ(src.size(), 1u);
  EXPECT_EQ(src[0].rule, "wall-clock");
  EXPECT_TRUE(lint(fixture, Category::kBench).empty());
  EXPECT_TRUE(lint(fixture, Category::kTests).empty());
}

TEST(LintRules, WallClockCatchesBareTimeCall) {
  const auto findings = lint(R"fix(
void f() {
  long t = time(nullptr);
  (void)t;
}
)fix");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "wall-clock");
}

TEST(LintRules, WallClockIgnoresMembersAndDeclarations) {
  EXPECT_TRUE(lint(R"fix(
struct Clock { double time(); };
double probe(Clock& c) { return c.time(); }
double when(Clock* c) { return c->time(); }
des::Time time(int ticks);
)fix").empty());
}

TEST(LintRules, AmbientRngFiresEverywhere) {
  const std::string fixture = R"fix(
void f() {
  std::random_device rd;
  srand(42);
  int r = rand();
  (void)rd;
  (void)r;
}
)fix";
  const auto findings = lint(fixture, Category::kTests);
  ASSERT_EQ(findings.size(), 3u);
  EXPECT_EQ(findings[0].rule, "ambient-rng");  // random_device, line 3
  EXPECT_EQ(findings[1].rule, "ambient-rng");  // srand, line 4
  EXPECT_EQ(findings[2].rule, "ambient-rng");  // rand(), line 5
  EXPECT_EQ(findings[0].line, 3);
  EXPECT_EQ(findings[2].line, 5);
}

TEST(LintRules, AmbientRngIgnoresMemberNamedRand) {
  EXPECT_TRUE(lint(R"fix(
double draw(util::Rng& rng) { return rng.rand(); }
)fix").empty());
}

TEST(LintRules, UnseededShuffleFires) {
  const auto findings = lint(R"fix(
void f(std::vector<int>& v) {
  std::shuffle(v.begin(), v.end(), bits);
}
)fix");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "unseeded-shuffle");
}

TEST(LintRules, SeededShuffleIsSilent) {
  EXPECT_TRUE(lint(R"fix(
void f(std::vector<int>& v, std::mt19937& gen) {
  std::shuffle(v.begin(), v.end(), gen);
}
void g(std::vector<int>& v, util::Rng& rng) {
  std::shuffle(v.begin(), v.end(), rng.engine());
}
)fix").empty());
}

TEST(LintRules, PointerKeyFires) {
  const auto keyed = lint(R"fix(
void f() { std::map<Widget*, int> by_ptr; (void)by_ptr; }
)fix");
  ASSERT_EQ(keyed.size(), 1u);
  EXPECT_EQ(keyed[0].rule, "pointer-key");

  const auto comparator = lint(R"fix(
using Cmp = std::less<Widget*>;
)fix");
  ASSERT_EQ(comparator.size(), 1u);
  EXPECT_EQ(comparator[0].rule, "pointer-key");
}

TEST(LintRules, PointerValueIsSilent) {
  EXPECT_TRUE(lint(R"fix(
void f() { util::FlatHashMap<std::uint64_t, Widget*> by_id; (void)by_id; }
)fix").empty());
}

TEST(LintRules, MutableGlobalFiresInSrcOnly) {
  const std::string fixture = R"fix(
namespace rrsim {
int counter = 0;
}  // namespace rrsim
)fix";
  const auto src = lint(fixture, Category::kSrc);
  ASSERT_EQ(src.size(), 1u);
  EXPECT_EQ(src[0].rule, "mutable-global");
  EXPECT_EQ(src[0].line, 3);
  EXPECT_TRUE(lint(fixture, Category::kTests).empty());
}

TEST(LintRules, MutableGlobalIgnoresConstantsLocalsAndMembers) {
  EXPECT_TRUE(lint(R"fix(
namespace rrsim {
constexpr int kLimit = 4;
const double kPi = 3.14159;
using Id = std::uint64_t;
extern int declared_elsewhere;
void helper(int x);
class Holder {
  int member_ = 0;
};
void f() {
  int local = 0;
  (void)local;
}
}  // namespace rrsim
)fix").empty());
}

TEST(LintRules, StdFunctionMemberFiresInSrcOnly) {
  const std::string fixture = R"fix(
class Widget {
 public:
  void set_callback(std::function<void()> cb);
 private:
  std::function<void()> cb_;
};
)fix";
  const auto src = lint(fixture, Category::kSrc);
  ASSERT_EQ(src.size(), 1u);  // the member, not the parameter
  EXPECT_EQ(src[0].rule, "std-function-member");
  EXPECT_EQ(src[0].line, 6);
  EXPECT_TRUE(lint(fixture, Category::kTests).empty());
}

TEST(LintRules, WorkerRefCaptureFiresInSrcOnly) {
  const std::string fixture = R"fix(
void f(ThreadPool& pool, std::vector<int>& results) {
  parallel_for_each(pool, 8, [&](int i) { results[i] = i; });
}
)fix";
  const auto src = lint(fixture, Category::kSrc);
  ASSERT_EQ(src.size(), 1u);
  EXPECT_EQ(src[0].rule, "worker-ref-capture");
  EXPECT_EQ(src[0].line, 3);
  EXPECT_TRUE(lint(fixture, Category::kBench).empty());
  EXPECT_TRUE(lint(fixture, Category::kTests).empty());
}

TEST(LintRules, WorkerRefCaptureFiresOnDefaultRefWithExtras) {
  const auto findings = lint(R"fix(
void f(ThreadPool& pool) {
  exec::parallel_for_each(pool, 4, [&, n = 2](int i) { use(i + n); });
}
)fix");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "worker-ref-capture");
}

TEST(LintRules, WorkerExplicitCapturesAreSilent) {
  EXPECT_TRUE(lint(R"fix(
void f(ThreadPool& pool, std::vector<int>& results, int base) {
  parallel_for_each(pool, 8, [&results, base](int i) {
    results[i] = base + i;
  });
  parallel_for_each(pool, 8, [this, base](int i) { work(base + i); });
}
)fix").empty());
}

TEST(LintRules, WorkerRefCaptureAllowAnnotationSuppresses) {
  EXPECT_TRUE(lint(R"fix(
void f(ThreadPool& pool, std::vector<int>& results) {
  // rrsim-lint-allow(worker-ref-capture): per-index writes are disjoint.
  parallel_for_each(pool, 8, [&](int i) { results[i] = i; });
}
)fix").empty());
}

TEST(LintRules, RefCaptureOutsideWorkerCallIsSilent) {
  EXPECT_TRUE(lint(R"fix(
void f(std::vector<int>& v) {
  std::for_each(v.begin(), v.end(), [&](int& x) { x += 1; });
  auto fn = [&] { v.clear(); };
  fn();
}
)fix").empty());
}

TEST(LintRules, StreamMaterializationFiresInCoreAndExecOnly) {
  const std::string fixture = R"fix(
void f(const workload::LublinModel& model, util::Rng& rng) {
  auto s = model.generate_stream(rng, 3600.0);
  (void)s;
}
)fix";
  for (const char* path :
       {"src/core/experiment.cpp", "src/exec/sweep.cpp",
        "src/core/detail/resolver.h"}) {
    const auto findings = lint_source(path, fixture, Category::kSrc);
    ASSERT_EQ(findings.size(), 1u) << path;
    EXPECT_EQ(findings[0].rule, "stream-materialization");
    EXPECT_EQ(findings[0].line, 3);
  }
  // The workload layer defines and may call it freely; so do bench and
  // tests (whatever their path says).
  EXPECT_TRUE(
      lint_source("src/workload/lublin.cpp", fixture, Category::kSrc)
          .empty());
  EXPECT_TRUE(lint_source("bench/core/micro.cpp", fixture, Category::kBench)
                  .empty());
  EXPECT_TRUE(
      lint_source("tests/core/streaming_test.cpp", fixture, Category::kTests)
          .empty());
}

TEST(LintRules, StreamMaterializationIgnoresDeclarationsWithoutCall) {
  // Mentioning the name without a call (docs, aliases) stays silent.
  EXPECT_TRUE(lint_source("src/core/experiment.h", R"fix(
struct Api {
  int generate_stream;
};
)fix", Category::kSrc).empty());
}

TEST(LintRules, SwfFullTraceLoadFiresInCoreAndExecOnly) {
  const std::string fixture = R"fix(
void f(const std::string& path) {
  auto jobs = workload::read_swf_file(path);
  auto jobs2 = read_swf(path, 16);
  (void)jobs;
  (void)jobs2;
}
)fix";
  for (const char* path :
       {"src/core/experiment_detail.h", "src/exec/replay.cpp"}) {
    const auto findings = lint_source(path, fixture, Category::kSrc);
    ASSERT_EQ(findings.size(), 2u) << path;
    EXPECT_EQ(findings[0].rule, "stream-materialization");
    EXPECT_EQ(findings[0].line, 3);
    EXPECT_EQ(findings[1].rule, "stream-materialization");
    EXPECT_EQ(findings[1].line, 4);
  }
  // The workload layer owns the readers; bench/tests load traces freely.
  EXPECT_TRUE(
      lint_source("src/workload/swf.cpp", fixture, Category::kSrc).empty());
  EXPECT_TRUE(lint_source("tests/core/swf_spool_test.cpp", fixture,
                          Category::kTests)
                  .empty());
}

TEST(LintRules, SwfLoadAllowAnnotationSuppresses) {
  EXPECT_TRUE(lint_source("src/core/experiment_detail.h", R"fix(
void f(const std::string& path) {
  // rrsim-lint-allow(stream-materialization): the one sanctioned
  // full-trace load both replay paths share.
  auto jobs = workload::read_swf_file(path);
  (void)jobs;
}
)fix", Category::kSrc).empty());
}

TEST(LintRules, StreamMaterializationAllowAnnotationSuppresses) {
  EXPECT_TRUE(lint_source("src/core/experiment_detail.h", R"fix(
void f(const workload::LublinModel& model, util::Rng& rng) {
  // rrsim-lint-allow(stream-materialization): the retained path keeps
  // whole streams by contract.
  auto s = model.generate_stream(rng, 3600.0);
  (void)s;
}
)fix", Category::kSrc).empty());
}

// --- the allow annotation contract ---------------------------------------

TEST(LintAllows, JustifiedAllowSuppresses) {
  EXPECT_TRUE(lint(R"fix(
void f() {
  // rrsim-lint-allow(unordered-container): fixture exercises legacy path.
  std::unordered_map<int, int> m;
  (void)m;
}
)fix").empty());
}

TEST(LintAllows, WrappedJustificationStillCoversDeclaration) {
  // Consecutive // lines merge into one block; the declaration directly
  // below the block is covered even though the tag is two lines up.
  EXPECT_TRUE(lint(R"fix(
void f() {
  // rrsim-lint-allow(unordered-container): a justification long enough
  // to wrap onto a second comment line, which must still cover the
  // declaration underneath the whole block.
  std::unordered_map<int, int> m;
  (void)m;
}
)fix").empty());
}

TEST(LintAllows, AllowDoesNotLeakPastTheNextLine) {
  const auto findings = lint(R"fix(
void f() {
  // rrsim-lint-allow(unordered-container): only covers the next line.
  std::unordered_map<int, int> covered;
  std::unordered_map<int, int> not_covered;
  (void)covered;
  (void)not_covered;
}
)fix");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "unordered-container");
  EXPECT_EQ(findings[0].line, 5);
}

TEST(LintAllows, MissingJustificationIsBareAllowAndDoesNotSuppress) {
  const auto findings = lint(R"fix(
void f() {
  // rrsim-lint-allow(unordered-container)
  std::unordered_map<int, int> m;
  (void)m;
}
)fix");
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].rule, "bare-allow");
  EXPECT_EQ(findings[0].line, 3);
  EXPECT_EQ(findings[1].rule, "unordered-container");
  EXPECT_EQ(findings[1].line, 4);
}

TEST(LintAllows, UnknownRuleIsBareAllow) {
  const auto findings = lint(R"fix(
// rrsim-lint-allow(no-such-rule): justified but names nothing.
int x = 0;
)fix", Category::kTests);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "bare-allow");
  EXPECT_NE(findings[0].message.find("no-such-rule"), std::string::npos);
}

TEST(LintAllows, MultiRuleAllowSuppressesAllNamedRules) {
  EXPECT_TRUE(lint(R"fix(
void f() {
  // rrsim-lint-allow(unordered-container, pointer-key): fixture needs both.
  std::unordered_map<Widget*, int> m;
  (void)m;
}
)fix").empty());
}

// --- stripping, categories, rule table -----------------------------------

TEST(LintInfra, StringAndCommentContentsAreInvisible) {
  EXPECT_TRUE(lint(R"fix(
// std::unordered_map mentioned in a comment is not a finding.
void f() {
  const char* s = "std::unordered_map<int, int>";
  (void)s;
}
)fix").empty());
}

TEST(LintInfra, CategoryForPathMatchesComponents) {
  EXPECT_EQ(category_for_path("src/des/simulation.cpp"), Category::kSrc);
  EXPECT_EQ(category_for_path("bench/micro_kernel.cpp"), Category::kBench);
  EXPECT_EQ(category_for_path("tests/grid/gateway_test.cpp"),
            Category::kTests);
  // Rightmost component wins.
  EXPECT_EQ(category_for_path("src/foo/tests/bar.cpp"), Category::kTests);
  // Whole-component match only; unknown trees get the strictest rules.
  EXPECT_EQ(category_for_path("benches/thing.cpp"), Category::kSrc);
  EXPECT_EQ(category_for_path("misc/thing.cpp"), Category::kSrc);
}

TEST(LintInfra, RuleTableIsConsistent) {
  const auto& rules = rule_table();
  ASSERT_FALSE(rules.empty());
  for (const RuleInfo& r : rules) {
    EXPECT_TRUE(rule_exists(r.id));
  }
  EXPECT_TRUE(rule_exists("unordered-container"));
  EXPECT_TRUE(rule_exists("bare-allow"));
  EXPECT_FALSE(rule_exists("no-such-rule"));
}

TEST(LintInfra, LintFileReportsUnreadablePaths) {
  std::vector<Finding> out;
  EXPECT_FALSE(lint_file("/nonexistent/rrsim/missing.cpp", nullptr, out));
  EXPECT_TRUE(out.empty());
}

// --- flow-aware rules ------------------------------------------------------

TEST(LintFlow, TieSensitiveCompareFiresOnFunctor) {
  const std::string fixture = R"fix(
struct Ev { double time; int nodes; };
struct ByTime {
  bool operator()(const Ev& a, const Ev& b) const { return a.time < b.time; }
};
)fix";
  const auto src = lint(fixture, Category::kSrc);
  ASSERT_EQ(src.size(), 1u);
  EXPECT_EQ(src[0].rule, "tie-sensitive-compare");
  EXPECT_EQ(src[0].line, 4);
  EXPECT_TRUE(lint(fixture, Category::kTests).empty());
}

TEST(LintFlow, TieSensitiveCompareSilentWithDiscriminator) {
  const auto findings = lint(R"fix(
struct Ev { double time; unsigned seq; };
struct ByTime {
  bool operator()(const Ev& a, const Ev& b) const {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }
};
)fix");
  EXPECT_TRUE(findings.empty());
}

TEST(LintFlow, TieSensitiveCompareFiresOnSortLambdaButNotStableSort) {
  const std::string sort_fixture = R"fix(
#include <algorithm>
void f(std::vector<Ev>& v) {
  std::sort(v.begin(), v.end(),
            [](const Ev& a, const Ev& b) { return a.submit_time < b.submit_time; });
}
)fix";
  const auto findings = lint(sort_fixture);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "tie-sensitive-compare");

  // std::stable_sort is exempt: stability is the discriminator.
  const auto stable = lint(R"fix(
#include <algorithm>
void f(std::vector<Ev>& v) {
  std::stable_sort(v.begin(), v.end(),
                   [](const Ev& a, const Ev& b) { return a.submit_time < b.submit_time; });
}
)fix");
  EXPECT_TRUE(stable.empty());
}

TEST(LintFlow, TieSensitiveCompareAllowSuppresses) {
  const auto findings = lint(R"fix(
struct Ev { double time; };
struct ByTime {
  // rrsim-lint-allow(tie-sensitive-compare): ties are impossible here —
  // the caller dedupes timestamps before sorting.
  bool operator()(const Ev& a, const Ev& b) const { return a.time < b.time; }
};
)fix");
  EXPECT_TRUE(findings.empty());
}

TEST(LintFlow, IterationOrderEscapeFiresOnAppendPostAndFloatSum) {
  const auto findings = lint(R"fix(
void f(std::vector<double>& out) {
  util::FlatHashMap<unsigned, double> credits;
  double sum = 0.0;
  credits.for_each([&](unsigned id, double c) {
    out.push_back(c);
    sum += c;
  });
}
void g(des::Simulation& sim) {
  util::FlatHashMap<unsigned, double> wake;
  wake.for_each([&](unsigned id, double t) {
    sim.schedule_at(t, [] {});
  });
}
)fix");
  ASSERT_EQ(findings.size(), 3u);
  EXPECT_EQ(findings[0].rule, "iteration-order-escape");
  EXPECT_EQ(findings[1].rule, "iteration-order-escape");
  EXPECT_EQ(findings[2].rule, "iteration-order-escape");
}

TEST(LintFlow, IterationOrderEscapeSilentOnIntegralAccumulation) {
  const auto findings = lint(R"fix(
void f() {
  util::FlatHashMap<unsigned, double> credits;
  std::size_t n = 0;
  double floor = 1e300;
  credits.for_each([&](unsigned id, double c) {
    n += 1;
    if (c < floor) floor = c;
  });
}
)fix");
  EXPECT_TRUE(findings.empty());
}

TEST(LintFlow, IterationOrderEscapeSilentOnOrderedMap) {
  const auto findings = lint(R"fix(
void f(std::vector<double>& out) {
  util::FlatOrderedMap<unsigned, double> credits;
  credits.for_each([&](unsigned id, double c) { out.push_back(c); });
}
)fix");
  EXPECT_TRUE(findings.empty());
}

TEST(LintFlow, UnstableSortFiresOnTimeStructWithoutOperatorLess) {
  const std::string fixture = R"fix(
#include <algorithm>
#include <vector>
struct Arrival { double submit_time; int nodes; };
void f() {
  std::vector<Arrival> pending;
  std::sort(pending.begin(), pending.end());
}
)fix";
  const auto findings = lint(fixture);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "unstable-sort");
  EXPECT_EQ(findings[0].line, 7);
}

TEST(LintFlow, UnstableSortSilentWithOperatorLessOrScalarElements) {
  const auto with_less = lint(R"fix(
#include <algorithm>
#include <vector>
struct Arrival {
  double submit_time;
  unsigned seq;
  bool operator<(const Arrival& o) const {
    return submit_time != o.submit_time ? submit_time < o.submit_time
                                        : seq < o.seq;
  }
};
void f() {
  std::vector<Arrival> pending;
  std::sort(pending.begin(), pending.end());
}
)fix");
  EXPECT_TRUE(with_less.empty());

  const auto doubles = lint(R"fix(
#include <algorithm>
#include <vector>
void f() {
  std::vector<double> xs;
  std::sort(xs.begin(), xs.end());
}
)fix");
  EXPECT_TRUE(doubles.empty());
}

TEST(LintFlow, UnstableSortFiresOnUnresolvableNamedComparator) {
  const auto findings = lint(R"fix(
#include <algorithm>
#include <vector>
void f(std::vector<int>& v) {
  std::sort(v.begin(), v.end(), MysteryOrder{});
}
)fix");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "unstable-sort");
}

TEST(LintFlow, UnstableSortTrustsAnalyzableComparator) {
  // A visible comparator functor is rule 1's jurisdiction; here it has a
  // seq tie-break, so nothing fires at all.
  const auto findings = lint(R"fix(
#include <algorithm>
#include <vector>
struct Msg { double time; unsigned seq; };
struct MsgOrder {
  bool operator()(const Msg& a, const Msg& b) const {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }
};
void f(std::vector<Msg>& v) {
  std::sort(v.begin(), v.end(), MsgOrder{});
}
)fix");
  EXPECT_TRUE(findings.empty());
}

TEST(LintFlow, CrossHeaderResolutionThroughFileSet) {
  // The element struct lives in an overlay header; the flow pass must
  // resolve it through the include graph to flag the sort.
  FileSet files;
  files.add_memory("rrsim/test/rec.h", R"fix(
#pragma once
namespace rrsim { struct Rec { double finish_time; int nodes; }; }
)fix");
  const auto findings = lint_source("src/x.cpp", R"fix(
#include <algorithm>
#include <vector>
#include "rrsim/test/rec.h"
void f() {
  std::vector<rrsim::Rec> done;
  std::sort(done.begin(), done.end());
}
)fix",
                                    Category::kSrc, files);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "unstable-sort");
}

TEST(LintFlow, ListAllowRecordsCarryJustifications) {
  AllowSet allows;
  std::vector<Finding> sink;
  strip("fixture.cpp", R"fix(
// rrsim-lint-allow(wall-clock): measures real host
// throughput on purpose.
void f() {}
)fix",
        allows, sink);
  ASSERT_EQ(allows.records.size(), 1u);
  EXPECT_EQ(allows.records[0].rules,
            (std::vector<std::string>{"wall-clock"}));
  EXPECT_EQ(allows.records[0].justification,
            "measures real host throughput on purpose.");
}

TEST(LintInfra, FindingsAreSortedByLine) {
  const auto findings = lint(R"fix(
void f() {
  std::unordered_map<int, int> second;
  (void)second;
}
namespace rrsim {
int global = 0;
}
)fix");
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_LT(findings[0].line, findings[1].line);
  EXPECT_EQ(rules_of(findings),
            (std::vector<std::string>{"unordered-container",
                                      "mutable-global"}));
}

}  // namespace
}  // namespace rrsim::lint
