// Slab/free-list event pool behaviour: slot recycling, generation-checked
// handles, and live-event accounting under churn. The observable kernel
// semantics (ordering, cancellation) are covered by simulation_test.cpp;
// this file pins down the pooling machinery those semantics now rest on.
#include "rrsim/des/simulation.h"

#include <gtest/gtest.h>

#include <vector>

#include "rrsim/util/rng.h"

namespace rrsim::des {
namespace {

TEST(EventPool, SlotsAreRecycledAfterFire) {
  Simulation sim;
  for (int round = 0; round < 100; ++round) {
    sim.schedule_in(1.0, [] {});
    sim.run();
  }
  // One slot serves all 100 sequential events.
  EXPECT_EQ(sim.pool_capacity(), 1u);
  EXPECT_EQ(sim.dispatched(), 100u);
}

TEST(EventPool, SlotsAreRecycledAfterCancel) {
  Simulation sim;
  for (int round = 0; round < 100; ++round) {
    auto h = sim.schedule_in(1.0, [] {});
    EXPECT_TRUE(h.cancel());
  }
  EXPECT_EQ(sim.pool_capacity(), 1u);
  EXPECT_EQ(sim.pending_events(), 0u);
  sim.run();
  EXPECT_EQ(sim.dispatched(), 0u);
}

TEST(EventPool, StaleHandleCannotCancelRecycledSlot) {
  Simulation sim;
  bool second_fired = false;
  auto first = sim.schedule_at(1.0, [] {});
  ASSERT_TRUE(first.cancel());
  // The new event reuses the cancelled event's slot (same capacity)...
  auto second = sim.schedule_at(2.0, [&] { second_fired = true; });
  EXPECT_EQ(sim.pool_capacity(), 1u);
  // ...but the stale handle's generation no longer matches, so it is
  // inert and cannot reach the new occupant.
  EXPECT_FALSE(first.pending());
  EXPECT_FALSE(first.cancel());
  EXPECT_TRUE(second.pending());
  sim.run();
  EXPECT_TRUE(second_fired);
}

TEST(EventPool, StaleHandleAfterFireIsInertAgainstReuse) {
  Simulation sim;
  auto first = sim.schedule_at(1.0, [] {});
  sim.run();
  EXPECT_FALSE(first.pending());
  bool fired = false;
  auto second = sim.schedule_at(2.0, [&] { fired = true; });
  EXPECT_FALSE(first.cancel());  // must not cancel the slot's new occupant
  EXPECT_TRUE(second.pending());
  sim.run();
  EXPECT_TRUE(fired);
}

TEST(EventPool, CancelAfterFireIsNoOp) {
  Simulation sim;
  int fired = 0;
  auto h = sim.schedule_at(1.0, [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(h.cancel());
  EXPECT_FALSE(h.cancel());
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(EventPool, CopiedHandlesShareCancellation) {
  Simulation sim;
  auto a = sim.schedule_at(1.0, [] {});
  auto b = a;  // handles are cheap value types
  EXPECT_TRUE(b.pending());
  EXPECT_TRUE(a.cancel());
  EXPECT_FALSE(b.pending());
  EXPECT_FALSE(b.cancel());
}

TEST(EventPool, CallbackSchedulingReusesTheFiringSlot) {
  Simulation sim;
  bool inner_fired = false;
  sim.schedule_at(1.0, [&] {
    // The firing event's slot was retired before this callback runs, so
    // the nested schedule may legally reuse it.
    sim.schedule_at(2.0, [&] { inner_fired = true; });
  });
  sim.run();
  EXPECT_TRUE(inner_fired);
  EXPECT_EQ(sim.pool_capacity(), 1u);
  EXPECT_EQ(sim.dispatched(), 2u);
}

TEST(EventPool, PendingAccountingUnderChurn) {
  // Random interleaving of schedules, cancels and steps; pending_events()
  // must track the live count exactly throughout.
  util::Rng rng(7);
  Simulation sim;
  std::vector<Simulation::EventHandle> handles;
  std::size_t expected_live = 0;
  for (int op = 0; op < 5000; ++op) {
    const double dice = rng.uniform(0.0, 1.0);
    if (dice < 0.5) {
      handles.push_back(
          sim.schedule_in(rng.uniform(0.0, 10.0), [] {},
                          static_cast<Priority>(rng.below(4))));
      ++expected_live;
    } else if (dice < 0.8 && !handles.empty()) {
      const std::size_t pick = rng.below(handles.size());
      if (handles[pick].cancel()) --expected_live;
    } else {
      if (sim.step()) --expected_live;
    }
    ASSERT_EQ(sim.pending_events(), expected_live) << "op " << op;
  }
  sim.run();
  EXPECT_EQ(sim.pending_events(), 0u);
  // Churn recycles slots: the slab stays far smaller than the number of
  // events that passed through it.
  EXPECT_LT(sim.pool_capacity(), 5000u);
}

TEST(EventPool, GenerationSurvivesManyRecyclesOfOneSlot) {
  Simulation sim;
  Simulation::EventHandle stale;
  for (int i = 0; i < 10000; ++i) {
    auto h = sim.schedule_in(1.0, [] {});
    if (i == 0) stale = h;
    ASSERT_TRUE(h.cancel());
  }
  EXPECT_EQ(sim.pool_capacity(), 1u);
  EXPECT_FALSE(stale.pending());
  EXPECT_FALSE(stale.cancel());
  bool fired = false;
  sim.schedule_in(1.0, [&] { fired = true; });
  sim.run();
  EXPECT_TRUE(fired);
}

}  // namespace
}  // namespace rrsim::des
