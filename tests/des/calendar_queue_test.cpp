// Randomized churn test pinning the calendar queue's dispatch order to
// the kernel's documented contract: events fire in (time, priority,
// insertion-sequence) order, cancellations never fire, and this holds
// across season boundaries, mid-run insertions below and above the
// near/far split, and bucket re-use after reset.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <tuple>
#include <vector>

#include "rrsim/des/simulation.h"

namespace {

using rrsim::des::Priority;
using rrsim::des::Simulation;
using rrsim::des::Time;

struct Record {
  Time time = 0.0;
  int priority = 0;
  int id = 0;  // global schedule order == kernel insertion sequence
  bool cancelled = false;
};

struct Churn {
  std::vector<Record> records;
  std::vector<std::pair<Time, int>> fired;  // (time, id) in dispatch order
};

// Schedules `kBatches` waves of events with clustered + quantized times
// (quantization forces exact timestamp ties so priority/seq ordering is
// exercised), cancels a random subset between waves, and advances the
// clock partway so later waves straddle the near-heap/far-tier boundary.
Churn run_churn(Simulation& sim, std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<Time> offset(0.0, 5000.0);
  Churn churn;
  std::vector<Simulation::EventHandle> handles;
  int next_id = 0;
  constexpr int kBatches = 12;
  constexpr int kPerBatch = 300;
  for (int batch = 0; batch < kBatches; ++batch) {
    const Time base = sim.now();
    for (int i = 0; i < kPerBatch; ++i) {
      Time t = base + offset(rng);
      if (rng() % 3u == 0) t = base + static_cast<Time>(rng() % 50u);  // ties
      const int prio = static_cast<int>(rng() % 4u);
      const int id = next_id++;
      churn.records.push_back(Record{t, prio, id, false});
      handles.push_back(sim.schedule_at(
          t,
          [&churn, t, id] { churn.fired.emplace_back(t, id); },
          static_cast<Priority>(prio)));
    }
    // Cancel ~20% of everything still pending (including earlier waves).
    for (int i = 0; i < kPerBatch / 5; ++i) {
      const std::size_t k = rng() % handles.size();
      if (handles[k].cancel()) {
        churn.records[k].cancelled = true;
      }
    }
    sim.run_until(sim.now() + 1500.0);
  }
  sim.run();
  return churn;
}

void expect_contract_order(const Churn& churn) {
  std::vector<Record> expected;
  for (const Record& r : churn.records) {
    if (!r.cancelled) expected.push_back(r);
  }
  std::sort(expected.begin(), expected.end(),
            [](const Record& a, const Record& b) {
              return std::tie(a.time, a.priority, a.id) <
                     std::tie(b.time, b.priority, b.id);
            });
  ASSERT_EQ(churn.fired.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(churn.fired[i].second, expected[i].id) << "at dispatch " << i;
    ASSERT_EQ(churn.fired[i].first, expected[i].time) << "at dispatch " << i;
  }
}

TEST(CalendarQueue, RandomChurnDispatchesInContractOrder) {
  Simulation sim;
  for (std::uint32_t seed : {1u, 77u, 4242u}) {
    expect_contract_order(run_churn(sim, seed));
    EXPECT_EQ(sim.pending_events(), 0u);
    sim.reset();  // next seed reuses the slab, heap, and bucket arrays
  }
}

TEST(CalendarQueue, IdenticalTimesAcrossSeasonsKeepInsertionOrder) {
  Simulation sim;
  std::vector<int> fired;
  // 500 events at each of two far-apart timestamps: enough to trigger
  // bucketed seasons, with every event in a season tied on time and
  // priority so dispatch order must fall back to insertion sequence.
  for (int rep = 0; rep < 2; ++rep) {
    const Time t = 1000.0 + 1e6 * rep;
    for (int i = 0; i < 500; ++i) {
      const int id = rep * 500 + i;
      sim.schedule_at(t, [&fired, id] { fired.push_back(id); });
    }
  }
  sim.run();
  ASSERT_EQ(fired.size(), 1000u);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(fired[static_cast<std::size_t>(i)], i);
}

TEST(CalendarQueue, CallbackInsertionsAtAndNearNowDispatchInPass) {
  Simulation sim;
  std::vector<int> fired;
  // Seed a far-future population so a season is active, then have an
  // event chain insert at the current time and just after it — both land
  // in the near heap and run before the far population.
  for (int i = 0; i < 200; ++i) {
    sim.schedule_at(5e5 + i * 10.0, [&fired] { fired.push_back(-1); });
  }
  sim.schedule_at(100.0, [&sim, &fired] {
    fired.push_back(1);
    sim.schedule_at(sim.now(), [&sim, &fired] {
      fired.push_back(2);
      sim.schedule_in(0.5, [&fired] { fired.push_back(3); });
    });
  });
  sim.run_until(200.0);
  ASSERT_EQ(fired.size(), 3u);
  EXPECT_EQ(fired[0], 1);
  EXPECT_EQ(fired[1], 2);
  EXPECT_EQ(fired[2], 3);
  sim.run();
  EXPECT_EQ(fired.size(), 203u);
}

}  // namespace
