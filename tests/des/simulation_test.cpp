#include "rrsim/des/simulation.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "rrsim/util/rng.h"

namespace rrsim::des {
namespace {

TEST(Simulation, StartsAtTimeZero) {
  Simulation sim;
  EXPECT_EQ(sim.now(), 0.0);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulation, EventsRunInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 3.0);
}

TEST(Simulation, SameTimeOrderedByPriority) {
  Simulation sim;
  std::vector<std::string> order;
  sim.schedule_at(1.0, [&] { order.push_back("control"); },
                  Priority::kControl);
  sim.schedule_at(1.0, [&] { order.push_back("completion"); },
                  Priority::kCompletion);
  sim.schedule_at(1.0, [&] { order.push_back("arrival"); },
                  Priority::kArrival);
  sim.schedule_at(1.0, [&] { order.push_back("cancel"); }, Priority::kCancel);
  sim.run();
  EXPECT_EQ(order, (std::vector<std::string>{"completion", "cancel",
                                             "arrival", "control"}));
}

TEST(Simulation, SameTimeSamePriorityIsFifo) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(5.0, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) ASSERT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Simulation, CallbackCanScheduleAtCurrentTime) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule_at(1.0, [&] {
    order.push_back(1);
    sim.schedule_at(1.0, [&] { order.push_back(2); });
  });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(sim.now(), 1.0);
}

TEST(Simulation, ScheduleInAddsDelay) {
  Simulation sim;
  double fired_at = -1.0;
  sim.schedule_at(2.0, [&] {
    sim.schedule_in(3.0, [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(fired_at, 5.0);
}

TEST(Simulation, PastSchedulingRejected) {
  Simulation sim;
  sim.schedule_at(10.0, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(5.0, [] {}), std::invalid_argument);
  EXPECT_THROW(sim.schedule_in(-1.0, [] {}), std::invalid_argument);
}

TEST(Simulation, NonFiniteTimeRejected) {
  Simulation sim;
  EXPECT_THROW(
      sim.schedule_at(std::numeric_limits<double>::infinity(), [] {}),
      std::invalid_argument);
  EXPECT_THROW(sim.schedule_at(std::nan(""), [] {}), std::invalid_argument);
}

TEST(Simulation, EmptyCallbackRejected) {
  Simulation sim;
  EXPECT_THROW(sim.schedule_at(1.0, Simulation::Callback{}),
               std::invalid_argument);
}

TEST(Simulation, CancelPreventsExecution) {
  Simulation sim;
  bool fired = false;
  auto handle = sim.schedule_at(1.0, [&] { fired = true; });
  EXPECT_TRUE(handle.pending());
  EXPECT_TRUE(handle.cancel());
  EXPECT_FALSE(handle.pending());
  sim.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.dispatched(), 0u);
}

TEST(Simulation, DoubleCancelReturnsFalse) {
  Simulation sim;
  auto handle = sim.schedule_at(1.0, [] {});
  EXPECT_TRUE(handle.cancel());
  EXPECT_FALSE(handle.cancel());
}

TEST(Simulation, CancelAfterFireReturnsFalse) {
  Simulation sim;
  auto handle = sim.schedule_at(1.0, [] {});
  sim.run();
  EXPECT_FALSE(handle.pending());
  EXPECT_FALSE(handle.cancel());
}

TEST(Simulation, DefaultHandleIsInert) {
  Simulation::EventHandle handle;
  EXPECT_FALSE(handle.pending());
  EXPECT_FALSE(handle.cancel());
}

TEST(Simulation, PendingEventCountTracksCancellation) {
  Simulation sim;
  auto h1 = sim.schedule_at(1.0, [] {});
  auto h2 = sim.schedule_at(2.0, [] {});
  EXPECT_EQ(sim.pending_events(), 2u);
  h1.cancel();
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run();
  EXPECT_EQ(sim.pending_events(), 0u);
  (void)h2;
}

TEST(Simulation, RunUntilStopsAndAdvancesClock) {
  Simulation sim;
  std::vector<double> times;
  for (double t : {1.0, 2.0, 3.0, 4.0}) {
    sim.schedule_at(t, [&times, &sim] { times.push_back(sim.now()); });
  }
  sim.run_until(2.5);
  EXPECT_EQ(times, (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(sim.now(), 2.5);
  EXPECT_EQ(sim.pending_events(), 2u);
  sim.run();
  EXPECT_EQ(times.size(), 4u);
}

TEST(Simulation, RunUntilInclusiveOfBoundary) {
  Simulation sim;
  bool fired = false;
  sim.schedule_at(2.0, [&] { fired = true; });
  sim.run_until(2.0);
  EXPECT_TRUE(fired);
}

TEST(Simulation, RunUntilRejectsPast) {
  Simulation sim;
  sim.schedule_at(5.0, [] {});
  sim.run();
  EXPECT_THROW(sim.run_until(1.0), std::invalid_argument);
}

TEST(Simulation, StepReturnsFalseWhenEmpty) {
  Simulation sim;
  EXPECT_FALSE(sim.step());
  sim.schedule_at(1.0, [] {});
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(Simulation, StressRandomizedOrderProperty) {
  // Property: regardless of insertion order, dispatch is sorted by
  // (time, priority) and stable within equal keys.
  util::Rng rng(99);
  Simulation sim;
  struct Key {
    double time;
    int prio;
    std::uint64_t seq;
  };
  std::vector<Key> dispatched;
  std::uint64_t seq = 0;
  for (int i = 0; i < 2000; ++i) {
    const double t = std::floor(rng.uniform(0.0, 50.0));  // force ties
    const int prio = static_cast<int>(rng.below(4));
    const std::uint64_t s = seq++;
    sim.schedule_at(
        t, [&dispatched, t, prio, s] { dispatched.push_back({t, prio, s}); },
        static_cast<Priority>(prio));
  }
  sim.run();
  ASSERT_EQ(dispatched.size(), 2000u);
  for (std::size_t i = 1; i < dispatched.size(); ++i) {
    const Key& a = dispatched[i - 1];
    const Key& b = dispatched[i];
    const bool ordered =
        a.time < b.time ||
        (a.time == b.time &&
         (a.prio < b.prio || (a.prio == b.prio && a.seq < b.seq)));
    ASSERT_TRUE(ordered) << "out of order at index " << i;
  }
}

TEST(Simulation, DispatchedCounterCounts) {
  Simulation sim;
  for (int i = 0; i < 5; ++i) sim.schedule_at(1.0, [] {});
  sim.run();
  EXPECT_EQ(sim.dispatched(), 5u);
}

}  // namespace
}  // namespace rrsim::des
