// Simulation::reset() contract: a reset kernel is indistinguishable,
// event-order-wise, from a freshly constructed one; every handle from
// before the reset is inert; and the slab/heap storage survives so the
// next run schedules into warm arenas.
#include "rrsim/des/simulation.h"

#include <gtest/gtest.h>

#include <vector>

namespace rrsim::des {
namespace {

// A dispatch script exercising same-time ordering (priority bands and
// insertion sequence), nested scheduling, and cancellation; returns the
// observed (time, tag) trace.
std::vector<std::pair<Time, int>> drive(Simulation& sim) {
  std::vector<std::pair<Time, int>> trace;
  auto mark = [&trace, &sim](int tag) { trace.emplace_back(sim.now(), tag); };
  sim.schedule_at(5.0, [mark] { mark(1); }, Priority::kControl);
  sim.schedule_at(5.0, [mark] { mark(2); }, Priority::kArrival);
  sim.schedule_at(5.0, [mark] { mark(3); }, Priority::kArrival);
  auto doomed = sim.schedule_at(4.0, [mark] { mark(99); });
  sim.schedule_at(1.0, [mark, &sim] {
    mark(4);
    sim.schedule_in(0.0, [mark] { mark(5); }, Priority::kControl);
  });
  EXPECT_TRUE(doomed.cancel());
  sim.run();
  return trace;
}

TEST(SimulationReset, ResetRunIdenticalToFreshRun) {
  Simulation reused;
  const auto first = drive(reused);
  const std::size_t capacity = reused.pool_capacity();
  ASSERT_GT(capacity, 0u);

  reused.reset();
  EXPECT_EQ(reused.now(), 0.0);
  EXPECT_EQ(reused.pending_events(), 0u);
  EXPECT_EQ(reused.dispatched(), 0u);
  EXPECT_EQ(reused.pool_capacity(), capacity);  // slab kept, not freed

  const auto second = drive(reused);
  Simulation fresh;
  const auto reference = drive(fresh);
  EXPECT_EQ(second, reference);
  EXPECT_EQ(first, reference);
  EXPECT_EQ(reused.pool_capacity(), capacity);  // no regrowth on reuse
}

TEST(SimulationReset, OutstandingHandlesBecomeInert) {
  Simulation sim;
  bool stale_fired = false;
  auto stale = sim.schedule_at(10.0, [&stale_fired] { stale_fired = true; });
  EXPECT_TRUE(stale.pending());

  sim.reset();
  EXPECT_FALSE(stale.pending());
  EXPECT_FALSE(stale.cancel());

  // The next run recycles the stale handle's slot; the handle from the
  // previous life must not be able to cancel (or observe) the new event.
  bool new_fired = false;
  sim.schedule_at(1.0, [&new_fired] { new_fired = true; });
  EXPECT_FALSE(stale.cancel());
  EXPECT_FALSE(stale.pending());
  sim.run();
  EXPECT_TRUE(new_fired);
  EXPECT_FALSE(stale_fired);
}

TEST(SimulationReset, ResetMidRunDiscardsQueuedEvents) {
  Simulation sim;
  int fired = 0;
  for (int i = 0; i < 8; ++i) {
    sim.schedule_at(static_cast<Time>(i + 1), [&fired] { ++fired; });
  }
  sim.run_until(3.0);
  EXPECT_EQ(fired, 3);
  sim.reset();
  EXPECT_EQ(sim.pending_events(), 0u);
  sim.run();  // nothing left to dispatch
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(sim.now(), 0.0);
}

TEST(SimulationReset, RepeatedResetCyclesStayStable) {
  Simulation sim;
  const auto reference = drive(sim);
  for (int cycle = 0; cycle < 5; ++cycle) {
    sim.reset();
    EXPECT_EQ(drive(sim), reference) << "cycle " << cycle;
  }
}

}  // namespace
}  // namespace rrsim::des
