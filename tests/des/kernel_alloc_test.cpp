// Pins the kernel overhaul's zero-allocation guarantee: once the event
// slab, near heap, and season buckets are warm, the schedule → dispatch
// path (including cancels and run_until) performs no heap allocation.
// Global operator new is replaced with a counting shim for this binary,
// so any allocation anywhere in the measured window fails the test.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "rrsim/des/simulation.h"

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using rrsim::des::Simulation;
using rrsim::des::Time;

// One round of representative kernel traffic: a burst of events spread
// over a wide horizon (forces a bucketed season), sparse cancellations,
// a bounded run_until, then drain. `handles` must be pre-reserved by the
// caller so handle bookkeeping itself cannot allocate.
void churn_round(Simulation& sim, std::vector<Simulation::EventHandle>& handles,
                 std::uint64_t* dispatched_sink) {
  constexpr int kEvents = 600;
  handles.clear();
  const Time base = sim.now();
  for (int i = 0; i < kEvents; ++i) {
    const Time t = base + 1.0 + static_cast<Time>((i * 37) % 1000) * 25.0;
    handles.push_back(
        sim.schedule_at(t, [dispatched_sink] { ++*dispatched_sink; }));
  }
  for (std::size_t i = 0; i < handles.size(); i += 7) handles[i].cancel();
  sim.run_until(base + 9000.0);
  sim.run();
}

TEST(KernelAllocation, WarmScheduleDispatchPathDoesNotAllocate) {
  Simulation sim;
  std::vector<Simulation::EventHandle> handles;
  handles.reserve(600);
  std::uint64_t sink = 0;
  // Warm every arena the workload can touch: slab, free list, near heap,
  // bucket heads — including the post-reset re-warm path.
  churn_round(sim, handles, &sink);
  sim.reset();
  churn_round(sim, handles, &sink);
  sim.reset();

  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  churn_round(sim, handles, &sink);
  sim.reset();
  churn_round(sim, handles, &sink);
  const std::uint64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u)
      << "schedule/dispatch/cancel/reset allocated on a warm kernel";
  EXPECT_GT(sink, 0u);
}

TEST(KernelAllocation, ColdKernelAllocatesOnlyWhileGrowing) {
  // Sanity check on the shim itself: the first round must allocate (the
  // slab and heap grow from empty), otherwise the counter is broken and
  // the zero-allocation assertion above proves nothing.
  Simulation sim;
  std::vector<Simulation::EventHandle> handles;
  handles.reserve(600);
  std::uint64_t sink = 0;
  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  churn_round(sim, handles, &sink);
  const std::uint64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_GT(after - before, 0u);
}

}  // namespace
