// Tests for the PDES window primitives: next_event_time() (peek the
// earliest live timestamp without dispatching) and run_before(t) (advance
// through [now, t), stopping exactly at the horizon). The conservative
// coordinator builds its horizon computation on these two calls, so their
// edge cases — cancelled entries, empty queues, events exactly at the
// horizon — are load-bearing for cross-cluster determinism.
#include "rrsim/des/simulation.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace rrsim::des {
namespace {

TEST(HorizonApi, NextEventTimeEmptyIsInfinity) {
  Simulation sim;
  EXPECT_EQ(sim.next_event_time(), kTimeInfinity);
  sim.run_until(5.0);
  EXPECT_EQ(sim.next_event_time(), kTimeInfinity);
}

TEST(HorizonApi, NextEventTimeReturnsEarliestLiveEvent) {
  Simulation sim;
  sim.schedule_at(7.0, [] {});
  sim.schedule_at(3.0, [] {});
  sim.schedule_at(9.0, [] {});
  EXPECT_DOUBLE_EQ(sim.next_event_time(), 3.0);
  // Peeking dispatches nothing and does not advance time.
  EXPECT_EQ(sim.now(), 0.0);
  EXPECT_EQ(sim.pending_events(), 3u);
}

TEST(HorizonApi, NextEventTimeSkipsCancelledEntries) {
  Simulation sim;
  Simulation::EventHandle early = sim.schedule_at(2.0, [] {});
  sim.schedule_at(6.0, [] {});
  EXPECT_DOUBLE_EQ(sim.next_event_time(), 2.0);
  EXPECT_TRUE(early.cancel());
  EXPECT_DOUBLE_EQ(sim.next_event_time(), 6.0);
}

TEST(HorizonApi, NextEventTimeSkipsCancelledAcrossCalendarTiers) {
  // Far-future events live in coarser calendar tiers than near ones;
  // cancelling the whole near cohort forces the peek to refill from the
  // far tiers and still report the earliest *live* timestamp.
  Simulation sim;
  std::vector<Simulation::EventHandle> near_events;
  for (int i = 0; i < 32; ++i) {
    near_events.push_back(sim.schedule_at(1.0 + i, [] {}));
  }
  sim.schedule_at(5.0e6, [] {});  // far tier
  for (Simulation::EventHandle& h : near_events) EXPECT_TRUE(h.cancel());
  EXPECT_DOUBLE_EQ(sim.next_event_time(), 5.0e6);
  EXPECT_EQ(sim.pending_events(), 1u);
}

TEST(HorizonApi, RunBeforeDispatchesStrictlyBelowHorizon) {
  Simulation sim;
  std::vector<double> fired;
  sim.schedule_at(1.0, [&] { fired.push_back(1.0); });
  sim.schedule_at(2.0, [&] { fired.push_back(2.0); });
  sim.schedule_at(3.0, [&] { fired.push_back(3.0); });  // exactly at horizon
  sim.schedule_at(4.0, [&] { fired.push_back(4.0); });
  sim.run_before(3.0);
  // The event at t == 3 must NOT run: a message injected at the horizon
  // belongs to the next window.
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
  // The held-back events dispatch normally afterwards.
  sim.run();
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0, 3.0, 4.0}));
}

TEST(HorizonApi, RunBeforeAdvancesTimeWhenQueueEmptiesEarly) {
  Simulation sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] { ++fired; });
  sim.run_before(10.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 10.0);
  EXPECT_EQ(sim.next_event_time(), kTimeInfinity);
}

TEST(HorizonApi, RunBeforeAtCurrentTimeIsANoOp) {
  Simulation sim;
  int fired = 0;
  sim.schedule_at(5.0, [&] { ++fired; });
  sim.run_before(5.0);  // horizon == earliest event: nothing dispatches
  EXPECT_EQ(fired, 0);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
  sim.run_before(5.0);  // horizon == now: still legal, still a no-op
  EXPECT_EQ(fired, 0);
}

TEST(HorizonApi, RunBeforePastHorizonThrows) {
  Simulation sim;
  sim.run_until(10.0);
  EXPECT_THROW(sim.run_before(9.0), std::invalid_argument);
}

TEST(HorizonApi, CallbackScheduledInsideWindowStillRespectsHorizon) {
  // An event below the horizon may schedule another event below the
  // horizon (it runs this window) or at/after it (it waits).
  Simulation sim;
  std::vector<int> fired;
  sim.schedule_at(1.0, [&] {
    fired.push_back(1);
    sim.schedule_at(2.0, [&] { fired.push_back(2); });
    sim.schedule_at(3.0, [&] { fired.push_back(3); });
  });
  sim.run_before(3.0);
  EXPECT_EQ(fired, (std::vector<int>{1, 2}));
  EXPECT_DOUBLE_EQ(sim.next_event_time(), 3.0);
}

}  // namespace
}  // namespace rrsim::des
