// Golden bit-identity tests for the kernel hot-path overhaul.
//
// The calendar event queue, inline callbacks, and flat job tables are
// pure representation changes: every simulated trajectory must be
// bit-identical to the pre-overhaul kernel (binary-heap queue,
// std::function callbacks, std::map/unordered_map job tables). These
// tests pin fig1/table1-shaped campaign outputs to hex-float values
// captured from that baseline — any FP-visible deviation anywhere in the
// schedule → dispatch → metrics pipeline fails EXPECT_EQ on doubles.
//
// If one of these fails after an *intentional* semantic change, recapture
// the constants with a build of the old semantics and say so loudly in
// the commit; they are not tunable tolerances.
#include <gtest/gtest.h>

#include "rrsim/core/campaign.h"
#include "rrsim/core/paper.h"
#include "rrsim/core/scheme.h"

namespace {

using namespace rrsim;

struct Golden {
  double rel_avg_stretch;
  double rel_cv_stretch;
  double rel_max_stretch;
  double rel_avg_turnaround;
  double win_rate;
  double worst_rel_stretch;
};

void expect_bit_identical(const core::RelativeMetrics& m, const Golden& g) {
  EXPECT_EQ(m.rel_avg_stretch, g.rel_avg_stretch);
  EXPECT_EQ(m.rel_cv_stretch, g.rel_cv_stretch);
  EXPECT_EQ(m.rel_max_stretch, g.rel_max_stretch);
  EXPECT_EQ(m.rel_avg_turnaround, g.rel_avg_turnaround);
  EXPECT_EQ(m.win_rate, g.win_rate);
  EXPECT_EQ(m.worst_rel_stretch, g.worst_rel_stretch);
}

TEST(GoldenCampaign, Fig1ShapedFixedR2AtFourClusters) {
  core::ExperimentConfig c = core::figure_config_quick();
  c.n_clusters = 4;
  c.submit_horizon = 0.4 * 3600.0;
  c.seed = 42;
  c.scheme = core::RedundancyScheme::fixed(2);
  expect_bit_identical(core::run_relative_campaign(c, 4, 1),
                       Golden{0x1.51dc3209080dcp-1, 0x1.e052fb7791017p-1,
                              0x1.460da1c0bad8bp-1, 0x1.c84797d944544p-1,
                              0x1p+0, 0x1.8bc3c773cf5c8p-1});
}

TEST(GoldenCampaign, Fig1ShapedHalfAtSixClusters) {
  core::ExperimentConfig c = core::figure_config_quick();
  c.n_clusters = 6;
  c.submit_horizon = 0.4 * 3600.0;
  c.seed = 42;
  c.scheme = core::RedundancyScheme::half();
  expect_bit_identical(core::run_relative_campaign(c, 4, 1),
                       Golden{0x1.dfb341b21be14p-2, 0x1.fcd6decd2f148p-1,
                              0x1.a67ad16a54843p-2, 0x1.6c201c8c7911ap-1,
                              0x1p+0, 0x1.dcc7f00954871p-1});
}

class GoldenTable1 : public ::testing::Test {
 protected:
  static core::ExperimentConfig config(sched::Algorithm algo,
                                       const char* estimator) {
    core::ExperimentConfig c = core::figure_config_quick();
    c.n_clusters = 3;
    c.submit_horizon = 0.3 * 3600.0;
    c.seed = 7;
    c.scheme = core::RedundancyScheme::half();
    c.algorithm = algo;
    c.estimator = estimator;
    return c;
  }
  static core::RelativeMetrics run(sched::Algorithm algo,
                                   const char* estimator) {
    return core::run_relative_campaign(config(algo, estimator), 3, 1);
  }
};

TEST_F(GoldenTable1, EasyExactEstimates) {
  expect_bit_identical(run(sched::Algorithm::kEasy, "exact"),
                       Golden{0x1.2880684e632c8p-1, 0x1.4a26fdc8d52bp+0,
                              0x1.7f7cf21b81d4ap-1, 0x1.ad44b99f5ff2cp-1,
                              0x1p+0, 0x1.9770279bc5162p-1});
}

TEST_F(GoldenTable1, EasyUniformEstimates) {
  expect_bit_identical(run(sched::Algorithm::kEasy, "uniform216"),
                       Golden{0x1.363a62d87b7c6p-1, 0x1.18ea0e66c11f4p+0,
                              0x1.a064e53768aa6p-1, 0x1.a988f1059f57ap-1,
                              0x1p+0, 0x1.68c48e2dedc25p-1});
}

TEST_F(GoldenTable1, CbfExactEstimates) {
  expect_bit_identical(run(sched::Algorithm::kCbf, "exact"),
                       Golden{0x1.07f15353d12d2p-1, 0x1.0e59d28133843p+0,
                              0x1.33fd398c50f1cp-1, 0x1.b584bfa079e8dp-1,
                              0x1p+0, 0x1.8bc69f4b1efc5p-1});
}

TEST_F(GoldenTable1, CbfUniformEstimates) {
  expect_bit_identical(run(sched::Algorithm::kCbf, "uniform216"),
                       Golden{0x1.627c893e42043p-1, 0x1.b168b4fbebeb5p-1,
                              0x1.673fbb8b1dadcp-1, 0x1.c6e9b81168183p-1,
                              0x1.5555555555555p-1, 0x1.04b704270ba4ap+0});
}

TEST_F(GoldenTable1, FcfsExactEstimates) {
  expect_bit_identical(run(sched::Algorithm::kFcfs, "exact"),
                       Golden{0x1.ee18f669bdf02p-1, 0x1.d08278266660cp-1,
                              0x1.aa6feaae40643p-1, 0x1.f76a33204e5cbp-1,
                              0x1.5555555555555p-1, 0x1.1b61b720ec80fp+0});
}

TEST_F(GoldenTable1, FcfsIgnoresEstimatorQuality) {
  // FCFS never reads requested-time estimates, so the uniform216 point
  // must reproduce the exact-estimates point bit for bit.
  const core::RelativeMetrics exact = run(sched::Algorithm::kFcfs, "exact");
  const core::RelativeMetrics uniform =
      run(sched::Algorithm::kFcfs, "uniform216");
  EXPECT_EQ(exact.rel_avg_stretch, uniform.rel_avg_stretch);
  EXPECT_EQ(exact.rel_cv_stretch, uniform.rel_cv_stretch);
  EXPECT_EQ(exact.rel_max_stretch, uniform.rel_max_stretch);
  EXPECT_EQ(exact.rel_avg_turnaround, uniform.rel_avg_turnaround);
  EXPECT_EQ(exact.win_rate, uniform.win_rate);
  EXPECT_EQ(exact.worst_rel_stretch, uniform.worst_rel_stretch);
}

}  // namespace
