// End-to-end assertions of the paper's qualitative findings, at reduced
// scale so they run in CI time. Each test pins one headline claim.
#include <gtest/gtest.h>

#include "rrsim/core/campaign.h"
#include "rrsim/core/paper.h"
#include "rrsim/metrics/summary.h"

namespace rrsim::core {
namespace {

// Shared reduced-scale base: 1.5 h of submissions instead of 6 h.
ExperimentConfig base_config() {
  ExperimentConfig c = figure_config();
  c.submit_horizon = 1.5 * 3600.0;
  c.seed = 1234;
  return c;
}

TEST(PaperShape, RedundancyImprovesStretchAtTenClusters) {
  // Fig 1 at N = 10: every scheme's relative average stretch < 1.
  for (const char* scheme : {"R2", "HALF", "ALL"}) {
    ExperimentConfig c = base_config();
    c.scheme = RedundancyScheme::parse(scheme);
    const RelativeMetrics rel = run_relative_campaign(c, 3);
    EXPECT_LT(rel.rel_avg_stretch, 1.0) << "scheme " << scheme;
  }
}

TEST(PaperShape, RedundancyImprovesFairnessAtTenClusters) {
  // Fig 2 at N = 10, on the paper's two fairness readings. The max-stretch
  // improvement (paper: 10-60%) is robust in our regime; the CV of
  // stretches converges near parity rather than the paper's 0.75-0.9
  // (see EXPERIMENTS.md), so we assert it is at least not degraded.
  // Full 6 h window: fairness gains come from equalising queue backlogs,
  // which takes time to develop.
  ExperimentConfig c = base_config();
  c.submit_horizon = 6.0 * 3600.0;
  c.seed = 42;
  c.scheme = RedundancyScheme::half();
  const RelativeMetrics rel = run_relative_campaign(c, 4);
  EXPECT_LT(rel.rel_max_stretch, 0.9);
  EXPECT_LT(rel.rel_cv_stretch, 1.15);
}

TEST(PaperShape, RedundancyCanHurtOnTinyPlatforms) {
  // Fig 1 at N = 2-4: redundancy is not beneficial (the paper attributes
  // this to lost backfilling opportunities at overloaded clusters).
  ExperimentConfig c = base_config();
  c.n_clusters = 2;
  c.scheme = RedundancyScheme::fixed(2);
  const RelativeMetrics rel = run_relative_campaign(c, 3);
  EXPECT_GT(rel.rel_avg_stretch, 0.95);
}

TEST(PaperShape, NonRedundantJobsPayAsRedundancySpreads) {
  // Fig 4: the stretch of jobs NOT using redundant requests grows with
  // the fraction p of jobs that use them.
  ExperimentConfig c = base_config();
  c.scheme = RedundancyScheme::all();
  c.drain = true;
  c.seed = 5;
  c.redundant_fraction = 0.1;
  const ClassifiedCampaign low = run_classified_campaign(c, 3);
  c.redundant_fraction = 0.85;
  const ClassifiedCampaign high = run_classified_campaign(c, 3);
  EXPECT_GT(high.avg_stretch_non_redundant,
            low.avg_stretch_non_redundant);
}

TEST(PaperShape, RedundantJobsOutperformNonRedundantOnes) {
  // Fig 4: at any mixed p, jobs using redundancy do better than jobs
  // not using it (the unfair-advantage finding).
  ExperimentConfig c = base_config();
  c.scheme = RedundancyScheme::all();
  c.redundant_fraction = 0.4;
  const ClassifiedCampaign res = run_classified_campaign(c, 3);
  EXPECT_LT(res.avg_stretch_redundant, res.avg_stretch_non_redundant);
}

TEST(PaperShape, HeterogeneityAmplifiesBenefits) {
  // Table 3: on a heterogeneous platform the relative stretch of HALF
  // is clearly below 1 (better load balancing).
  // Sizes from the paper's Table 3 setup; inter-arrival means are the
  // paper's [2, 20] s draws scaled by N = 10 to stay in the shared-load
  // figure regime (see DESIGN.md).
  ExperimentConfig c = base_config();
  c.cluster_nodes = {16, 32, 64, 128, 256, 16, 32, 64, 128, 256};
  c.cluster_mean_iat = {200.0, 160.0, 120.0, 80.0, 40.0,
                        180.0, 140.0, 100.0, 60.0, 30.0};
  c.scheme = RedundancyScheme::half();
  const RelativeMetrics rel = run_relative_campaign(c, 3);
  EXPECT_LT(rel.rel_avg_stretch, 0.9);
  EXPECT_LT(rel.rel_cv_stretch, 1.0);
}

TEST(PaperShape, BenefitsHoldAcrossSchedulingAlgorithms) {
  // Table 1: relative metrics below 1 for EASY and FCFS (CBF covered by
  // the predictability tests; it is slow at this load).
  for (const auto algo : {sched::Algorithm::kEasy, sched::Algorithm::kFcfs}) {
    ExperimentConfig c = base_config();
    c.algorithm = algo;
    c.scheme = RedundancyScheme::half();
    const RelativeMetrics rel = run_relative_campaign(c, 2);
    EXPECT_LT(rel.rel_avg_stretch, 1.0)
        << "algo " << sched::algorithm_name(algo);
  }
}

TEST(PaperShape, BenefitsHoldWithOverestimatedRuntimes) {
  // Table 1 "Real Estimates" column: over-estimation does not change the
  // direction of the result.
  ExperimentConfig c = base_config();
  c.estimator = "uniform216";
  c.scheme = RedundancyScheme::half();
  const RelativeMetrics rel = run_relative_campaign(c, 3);
  EXPECT_LT(rel.rel_avg_stretch, 1.0);
}

TEST(PaperShape, BiasedPlacementStillBeneficial) {
  // Table 2: heavily biased replica targeting remains beneficial.
  ExperimentConfig c = base_config();
  c.placement = "biased";
  c.scheme = RedundancyScheme::fixed(3);
  const RelativeMetrics rel = run_relative_campaign(c, 3);
  EXPECT_LT(rel.rel_avg_stretch, 1.0);
}

TEST(PaperShape, RemoteInflationDoesNotFlipResults) {
  // Section 3.1.2: +10% / +50% requested time on remote replicas changed
  // nothing. Check the sign of the result is stable.
  for (const double inflation : {1.0, 1.1, 1.5}) {
    ExperimentConfig c = base_config();
    c.scheme = RedundancyScheme::half();
    c.remote_inflation = inflation;
    const RelativeMetrics rel = run_relative_campaign(c, 2);
    EXPECT_LT(rel.rel_avg_stretch, 1.0) << "inflation " << inflation;
  }
}

TEST(PaperShape, SteadyStateQueuesBarelyGrowUnderAll) {
  // Section 4.1: in steady state, the ALL scheme's maximum queue size is
  // within a few percent of the no-redundancy one (cancellations keep the
  // request population stable).
  ExperimentConfig c = base_config();
  c.load_mode = LoadMode::kCalibrated;
  c.target_utilization = 0.7;
  c.submit_horizon = 24.0 * 3600.0;
  c.queue_sample_interval = 300.0;
  ExperimentConfig all = c;
  all.scheme = RedundancyScheme::all();
  const SimResult r_none = run_experiment(c);
  const SimResult r_all = run_experiment(all);
  // Queues stay shallow in both cases; ALL must not blow them up by an
  // order of magnitude (Little's law: replicas are cancelled as fast as
  // redundancy shortens waits).
  EXPECT_LT(r_all.avg_max_queue, 4.0 * (r_none.avg_max_queue + 2.0));
}

TEST(PaperShape, PeakRateGrowsQueuesByHundredsPerHour) {
  // Section 4.1: at the literal peak arrival rate the queue grows by
  // several hundred jobs per hour.
  ExperimentConfig c;
  c.n_clusters = 1;
  c.load_mode = LoadMode::kPerClusterPeak;
  c.submit_horizon = 4.0 * 3600.0;
  c.drain = false;
  c.truncate_factor = 1.0;
  c.seed = 9;
  const SimResult r = run_experiment(c);
  ASSERT_EQ(r.queue_growth_per_hour.size(), 1u);
  EXPECT_GT(r.queue_growth_per_hour[0], 200.0);
  EXPECT_LT(r.queue_growth_per_hour[0], 720.0);  // bounded by arrivals
}

}  // namespace
}  // namespace rrsim::core
