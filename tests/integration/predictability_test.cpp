// Section 5 end-to-end: reservation-based queue-wait predictions are
// conservative, and redundancy inflates the over-prediction — more for
// jobs that do not use redundancy themselves.
#include <gtest/gtest.h>

#include "rrsim/core/campaign.h"
#include "rrsim/core/paper.h"

namespace rrsim::core {
namespace {

ExperimentConfig prediction_config() {
  // Table 4's regime: every cluster at the full peak rate, so queues are
  // deep and identically flooded. The window is kept short because CBF's
  // profile rebuilds are quadratic in queue depth.
  ExperimentConfig c;
  c.n_clusters = 10;
  c.load_mode = LoadMode::kPerClusterPeak;
  c.submit_horizon = 1200.0;
  c.algorithm = sched::Algorithm::kCbf;  // the paper's Section 5 predictor
  c.estimator = "uniform216";            // conservative requested times
  c.record_predictions = true;
  c.seed = 77;
  return c;
}

TEST(Predictability, BaselineOverestimatesWaits) {
  // Table 4 left column: with no redundancy, conservative requested
  // times make reservation-based predictions over-estimates (paper: 9.24
  // on average with a large CV).
  ExperimentConfig c = prediction_config();
  const PredictionCampaign res = run_prediction_campaign(c, 2);
  ASSERT_GT(res.all.jobs, 0u);
  EXPECT_GT(res.all.avg_ratio, 1.5);
  EXPECT_GT(res.all.cv_ratio_percent, 30.0);
}

TEST(Predictability, RedundancyInflatesOverpredictionForBothClasses) {
  // Table 4 right columns: with 40% of jobs using ALL, the average
  // over-estimation grows for both classes relative to the baseline (the
  // paper reports ~4x for redundant and ~8x for non-redundant jobs; our
  // regime reproduces the dramatic inflation though with the class
  // ordering reversed — see EXPERIMENTS.md).
  ExperimentConfig baseline = prediction_config();
  const PredictionCampaign base = run_prediction_campaign(baseline, 2);

  ExperimentConfig mixed = prediction_config();
  mixed.scheme = RedundancyScheme::all();
  mixed.redundant_fraction = 0.4;
  const PredictionCampaign with = run_prediction_campaign(mixed, 2);

  ASSERT_GT(with.non_redundant.jobs, 0u);
  ASSERT_GT(with.redundant.jobs, 0u);
  EXPECT_GT(with.non_redundant.avg_ratio, base.all.avg_ratio);
  EXPECT_GT(with.redundant.avg_ratio, base.all.avg_ratio);
}

TEST(Predictability, RedundancyShrinksQueueFloodedPredictionsViaMin) {
  // The structural facts behind Table 4: non-redundant jobs' predictions
  // are inflated by the replica-flooded queues, redundant jobs' min-over-
  // replica predictions are smaller than single-queue ones, and redundant
  // jobs' actual waits are far shorter.
  ExperimentConfig mixed = prediction_config();
  mixed.scheme = RedundancyScheme::all();
  mixed.redundant_fraction = 0.4;
  mixed.seed = 78;
  const SimResult r = run_experiment(mixed);
  double nr_pred = 0.0, nr_act = 0.0, r_pred = 0.0, r_act = 0.0;
  std::size_t nr_n = 0, r_n = 0;
  for (const auto& rec : r.records) {
    if (!rec.predicted_start) continue;
    const double pred = std::max(0.0, *rec.predicted_start - rec.submit_time);
    if (rec.redundant) {
      r_pred += pred;
      r_act += rec.wait_time();
      ++r_n;
    } else {
      nr_pred += pred;
      nr_act += rec.wait_time();
      ++nr_n;
    }
  }
  ASSERT_GT(nr_n, 0u);
  ASSERT_GT(r_n, 0u);
  EXPECT_LT(r_pred / static_cast<double>(r_n),
            nr_pred / static_cast<double>(nr_n));
  EXPECT_LT(r_act / static_cast<double>(r_n),
            nr_act / static_cast<double>(nr_n));
}

}  // namespace
}  // namespace rrsim::core
