// Bit-reproducibility: the whole stack (workload -> gateway -> schedulers
// -> metrics) must produce identical results for identical seeds, and
// different results for different seeds.
#include <gtest/gtest.h>

#include <map>

#include "rrsim/core/experiment.h"
#include "rrsim/core/paper.h"

namespace rrsim::core {
namespace {

ExperimentConfig config_for(std::uint64_t seed) {
  ExperimentConfig c = figure_config_quick();
  c.n_clusters = 4;
  c.submit_horizon = 0.5 * 3600.0;
  c.scheme = RedundancyScheme::half();
  c.seed = seed;
  return c;
}

bool identical(const SimResult& a, const SimResult& b) {
  if (a.records.size() != b.records.size()) return false;
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    const auto& x = a.records[i];
    const auto& y = b.records[i];
    if (x.grid_id != y.grid_id || x.winner_cluster != y.winner_cluster ||
        x.submit_time != y.submit_time || x.start_time != y.start_time ||
        x.finish_time != y.finish_time || x.nodes != y.nodes) {
      return false;
    }
  }
  return true;
}

TEST(Determinism, SameSeedSameTrajectory) {
  const SimResult a = run_experiment(config_for(31));
  const SimResult b = run_experiment(config_for(31));
  EXPECT_TRUE(identical(a, b));
  EXPECT_EQ(a.ops.submits, b.ops.submits);
  EXPECT_EQ(a.ops.sched_passes, b.ops.sched_passes);
  EXPECT_EQ(a.gateway_cancels, b.gateway_cancels);
  EXPECT_EQ(a.end_time, b.end_time);
}

TEST(Determinism, DifferentSeedsDifferentTrajectories) {
  const SimResult a = run_experiment(config_for(31));
  const SimResult b = run_experiment(config_for(32));
  EXPECT_FALSE(identical(a, b));
}

TEST(Determinism, AlgorithmsShareWorkloadGivenSeed) {
  // The workload substreams must not depend on the scheduling algorithm:
  // same seed => same job population regardless of scheduler.
  ExperimentConfig easy = config_for(77);
  ExperimentConfig fcfs = config_for(77);
  fcfs.algorithm = sched::Algorithm::kFcfs;
  const SimResult a = run_experiment(easy);
  const SimResult b = run_experiment(fcfs);
  ASSERT_EQ(a.jobs_generated, b.jobs_generated);
  // Outcomes differ (different scheduler), but submit times of the same
  // grid ids agree.
  std::map<std::uint64_t, double> submit_a;
  for (const auto& r : a.records) submit_a[r.grid_id] = r.submit_time;
  for (const auto& r : b.records) {
    ASSERT_EQ(submit_a.at(r.grid_id), r.submit_time);
  }
}

}  // namespace
}  // namespace rrsim::core
