// Composition tests: the extension features stacked together must keep
// the core invariants (conservation, determinism) intact.
#include <gtest/gtest.h>

#include "rrsim/core/experiment.h"
#include "rrsim/core/paper.h"

namespace rrsim::core {
namespace {

ExperimentConfig everything_on() {
  ExperimentConfig c = figure_config_quick();
  c.n_clusters = 5;
  c.submit_horizon = 0.75 * 3600.0;
  c.scheme = RedundancyScheme::all();
  c.redundant_fraction = 0.6;
  c.placement = "least-loaded";
  c.estimator = "uniform216";
  c.remote_inflation = 1.1;
  c.middleware_ops_per_sec = 3.0;
  c.per_user_pending_limit = 3;
  c.users_per_cluster = 3;
  c.seed = 404;
  return c;
}

TEST(Composition, AllFeaturesTogetherConserveJobs) {
  const SimResult r = run_experiment(everything_on());
  EXPECT_GT(r.jobs_generated, 0u);
  EXPECT_EQ(r.records.size(), r.jobs_generated);
  EXPECT_EQ(r.ops.finishes, r.jobs_generated);
  EXPECT_GT(r.middleware_mean_sojourn, 0.0);
  for (const auto& rec : r.records) {
    EXPECT_GE(rec.replicas_delivered, 1);
    EXPECT_LE(rec.replicas_delivered, rec.replicas);
    EXPECT_GE(rec.start_time, rec.submit_time);
    EXPECT_GT(rec.finish_time, rec.start_time);
  }
}

TEST(Composition, AllFeaturesTogetherDeterministic) {
  const SimResult a = run_experiment(everything_on());
  const SimResult b = run_experiment(everything_on());
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    ASSERT_EQ(a.records[i].grid_id, b.records[i].grid_id);
    ASSERT_EQ(a.records[i].start_time, b.records[i].start_time);
    ASSERT_EQ(a.records[i].winner_cluster, b.records[i].winner_cluster);
  }
  EXPECT_EQ(a.replicas_rejected, b.replicas_rejected);
  EXPECT_EQ(a.replicas_dropped, b.replicas_dropped);
  EXPECT_EQ(a.gateway_cancels, b.gateway_cancels);
}

TEST(Composition, AccountingIdentityUnderAllFeatures) {
  const SimResult r = run_experiment(everything_on());
  // Every delivered replica either ran (one per job), was cancelled or
  // declined (gateway_cancels), or is impossible: delivered = submits.
  std::uint64_t delivered = 0;
  for (const auto& rec : r.records) {
    delivered += static_cast<std::uint64_t>(rec.replicas_delivered);
  }
  EXPECT_EQ(delivered, r.ops.submits);
  EXPECT_EQ(r.gateway_cancels + r.jobs_generated, r.ops.submits);
}

TEST(Composition, EachAlgorithmSurvivesTheFullStack) {
  for (const auto algo : {sched::Algorithm::kFcfs, sched::Algorithm::kEasy,
                          sched::Algorithm::kCbf}) {
    ExperimentConfig c = everything_on();
    c.submit_horizon = 0.4 * 3600.0;  // keep CBF cheap
    c.algorithm = algo;
    const SimResult r = run_experiment(c);
    EXPECT_EQ(r.records.size(), r.jobs_generated)
        << sched::algorithm_name(algo);
  }
}

TEST(Composition, TruncationComposesWithMiddleware) {
  ExperimentConfig c = everything_on();
  c.drain = false;
  c.truncate_factor = 1.0;
  const SimResult r = run_experiment(c);
  EXPECT_LT(r.records.size(), r.jobs_generated);
  for (const auto& rec : r.records) {
    EXPECT_LE(rec.finish_time, c.submit_horizon + 1e-9);
  }
}

}  // namespace
}  // namespace rrsim::core
