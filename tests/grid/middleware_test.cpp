#include "rrsim/grid/middleware.h"

#include <gtest/gtest.h>

#include <vector>

#include "rrsim/grid/gateway.h"
#include "rrsim/grid/platform.h"

namespace rrsim::grid {
namespace {

TEST(MiddlewareStation, RejectsBadConstruction) {
  des::Simulation sim;
  EXPECT_THROW(MiddlewareStation(sim, 0.0), std::invalid_argument);
  EXPECT_THROW(MiddlewareStation(sim, -1.0), std::invalid_argument);
}

TEST(MiddlewareStation, ServesAtConfiguredRate) {
  des::Simulation sim;
  MiddlewareStation station(sim, 2.0);  // 0.5 s per operation
  std::vector<double> completion_times;
  for (int i = 0; i < 4; ++i) {
    station.enqueue([&completion_times, &sim] {
      completion_times.push_back(sim.now());
    });
  }
  EXPECT_EQ(station.backlog(), 4u);
  sim.run();
  ASSERT_EQ(completion_times.size(), 4u);
  EXPECT_DOUBLE_EQ(completion_times[0], 0.5);
  EXPECT_DOUBLE_EQ(completion_times[1], 1.0);
  EXPECT_DOUBLE_EQ(completion_times[2], 1.5);
  EXPECT_DOUBLE_EQ(completion_times[3], 2.0);
  EXPECT_EQ(station.processed(), 4u);
  EXPECT_EQ(station.backlog(), 0u);
}

TEST(MiddlewareStation, TracksSojournAndBacklog) {
  des::Simulation sim;
  MiddlewareStation station(sim, 1.0);
  for (int i = 0; i < 3; ++i) station.enqueue([] {});
  EXPECT_EQ(station.max_backlog(), 3u);
  sim.run();
  // Sojourns: 1, 2, 3 seconds -> mean 2.
  EXPECT_DOUBLE_EQ(station.mean_sojourn(), 2.0);
}

TEST(MiddlewareStation, IdleStationServesPromptly) {
  des::Simulation sim;
  MiddlewareStation station(sim, 4.0);
  double done = -1.0;
  station.enqueue([&] { done = sim.now(); });
  sim.run();
  EXPECT_DOUBLE_EQ(done, 0.25);
  // A later lone operation also takes exactly one service time.
  sim.schedule_at(10.0, [&] {
    station.enqueue([&] { done = sim.now(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(done, 10.25);
}

TEST(MiddlewareStation, BacklogDivergesWhenOverloaded) {
  des::Simulation sim;
  MiddlewareStation station(sim, 1.0);
  // Offer 2 ops/s against 1 op/s of service for 100 s.
  for (int i = 0; i < 200; ++i) {
    sim.schedule_at(i * 0.5, [&station] { station.enqueue([] {}); });
  }
  sim.run_until(100.0);
  EXPECT_GT(station.backlog(), 80u);  // ~100 in queue
}

// --- Gateway integration -------------------------------------------------

struct Fixture {
  des::Simulation sim;
  Platform platform;
  Gateway gateway;
  std::vector<std::unique_ptr<MiddlewareStation>> stations;

  Fixture(std::size_t n, double rate)
      : platform(sim, homogeneous_configs(n, 8, workload::LublinParams{}),
                 sched::Algorithm::kEasy),
        gateway(sim, platform) {
    std::vector<MiddlewareStation*> raw;
    for (std::size_t i = 0; i < n; ++i) {
      stations.push_back(std::make_unique<MiddlewareStation>(sim, rate));
      raw.push_back(stations.back().get());
    }
    gateway.set_middleware(std::move(raw));
  }
};

GridJob make_grid_job(GridJobId id, std::size_t origin,
                      std::vector<std::size_t> targets, double runtime) {
  GridJob job;
  job.id = id;
  job.origin = origin;
  job.targets = std::move(targets);
  job.redundant = job.targets.size() > 1;
  job.spec.nodes = 8;
  job.spec.runtime = runtime;
  job.spec.requested_time = runtime;
  return job;
}

TEST(GatewayMiddleware, SubmissionDelayedByService) {
  Fixture f(1, 0.5);  // 2 s per middleware operation
  f.gateway.submit(make_grid_job(1, 0, {0}, 10.0));
  f.sim.run();
  ASSERT_EQ(f.gateway.records().size(), 1u);
  // Submitted through middleware at t=2, ran 10 s.
  EXPECT_DOUBLE_EQ(f.gateway.records()[0].start_time, 2.0);
  EXPECT_DOUBLE_EQ(f.gateway.records()[0].finish_time, 12.0);
}

TEST(GatewayMiddleware, LateReplicaDroppedAfterSiblingStarts) {
  Fixture f(2, 1.0);  // 1 s per operation
  // Both replicas enqueue at t=0; cluster 0's arrives at t=1 and starts;
  // cluster 1's arrives at t=1 too (separate stations) — one of them is
  // granted first and the other is declined or dropped.
  f.gateway.submit(make_grid_job(1, 0, {0, 1}, 5.0));
  f.sim.run();
  EXPECT_EQ(f.gateway.records().size(), 1u);
  const auto total = f.platform.total_counters();
  EXPECT_EQ(total.finishes, 1u);
  EXPECT_EQ(total.starts, 1u);
}

TEST(GatewayMiddleware, ValidatesConfiguration) {
  des::Simulation sim;
  Platform platform(sim, homogeneous_configs(2, 8, workload::LublinParams{}),
                    sched::Algorithm::kEasy);
  Gateway gateway(sim, platform);
  MiddlewareStation station(sim, 1.0);
  EXPECT_THROW(gateway.set_middleware({&station}), std::invalid_argument);
  EXPECT_THROW(gateway.set_middleware({&station, nullptr}),
               std::invalid_argument);
  Gateway predicting(sim, platform, /*record_predictions=*/true);
  MiddlewareStation s2(sim, 1.0);
  EXPECT_THROW(predicting.set_middleware({&station, &s2}),
               std::invalid_argument);
}

TEST(GatewayMiddleware, ConservationUnderSlowMiddleware) {
  Fixture f(3, 0.8);
  util::Rng rng(5);
  GridJobId id = 1;
  double t = 0.0;
  std::vector<GridJob> jobs;
  for (int i = 0; i < 80; ++i) {
    t += rng.uniform(0.0, 6.0);
    const std::size_t origin = rng.below(3);
    GridJob job = make_grid_job(id++, origin, {0, 1, 2}, rng.uniform(1.0, 40.0));
    job.origin = origin;
    // make sure origin is in targets and first
    job.targets = {origin};
    for (std::size_t c = 0; c < 3; ++c) {
      if (c != origin) job.targets.push_back(c);
    }
    job.spec.nodes = static_cast<int>(rng.between(1, 8));
    job.spec.submit_time = t;
    jobs.push_back(job);
  }
  for (const GridJob& job : jobs) {
    f.sim.schedule_at(job.spec.submit_time,
                      [&g = f.gateway, &job] { g.submit(job); },
                      des::Priority::kArrival);
  }
  f.sim.run();
  EXPECT_EQ(f.gateway.records().size(), 80u);
  const auto total = f.platform.total_counters();
  EXPECT_EQ(total.finishes, 80u);
  // Every delivered replica either ran or was cancelled/declined once.
  EXPECT_EQ(f.gateway.cancellations_issued() + 80u, total.submits);
}

}  // namespace
}  // namespace rrsim::grid
