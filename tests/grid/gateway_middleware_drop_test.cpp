// Gateway replica accounting under middleware-delayed delivery: the
// deferred branch of deliver_submit drops a replica whose job already
// started while its qsub sat in a middleware queue (counted by
// replicas_dropped(), never reaching a scheduler), and per-user pending
// limits still reject late-delivered remote replicas (counted by
// replicas_rejected()). Direct-delivery runs exercise neither branch.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "rrsim/grid/gateway.h"
#include "rrsim/grid/middleware.h"
#include "rrsim/grid/platform.h"

namespace rrsim::grid {
namespace {

struct Fixture {
  des::Simulation sim;
  Platform platform;
  Gateway gateway;
  std::vector<std::unique_ptr<MiddlewareStation>> stations;

  Fixture(std::size_t n, const std::vector<double>& rates)
      : platform(sim, homogeneous_configs(n, 8, workload::LublinParams{}),
                 sched::Algorithm::kEasy),
        gateway(sim, platform) {
    std::vector<MiddlewareStation*> raw;
    for (std::size_t i = 0; i < n; ++i) {
      stations.push_back(std::make_unique<MiddlewareStation>(sim, rates[i]));
      raw.push_back(stations.back().get());
    }
    gateway.set_middleware(std::move(raw));
  }
};

GridJob make_grid_job(GridJobId id, std::size_t origin,
                      std::vector<std::size_t> targets, sched::UserId user,
                      double runtime) {
  GridJob job;
  job.id = id;
  job.origin = origin;
  job.user = user;
  job.targets = std::move(targets);
  job.redundant = job.targets.size() > 1;
  job.spec.nodes = 8;
  job.spec.runtime = runtime;
  job.spec.requested_time = runtime;
  return job;
}

TEST(GatewayMiddlewareDrop, LateReplicaDroppedBeforeReachingScheduler) {
  // Cluster 0's middleware delivers in 1 s, cluster 1's in 4 s. The
  // origin replica lands at t=1 on an idle cluster and starts; the remote
  // qsub is still in cluster 1's station and must be dropped on delivery
  // at t=4 — it never becomes a scheduler submission, and no qdel is ever
  // needed for it.
  Fixture f(2, {1.0, 0.25});
  f.gateway.submit(make_grid_job(1, 0, {0, 1}, 7, 10.0));
  f.sim.run();

  EXPECT_EQ(f.gateway.replicas_dropped(), 1u);
  EXPECT_EQ(f.gateway.replicas_rejected(), 0u);
  EXPECT_EQ(f.gateway.cancellations_issued(), 0u);
  const auto total = f.platform.total_counters();
  EXPECT_EQ(total.submits, 1u);  // the dropped replica never arrived
  EXPECT_EQ(total.starts, 1u);
  EXPECT_EQ(total.cancels, 0u);
  ASSERT_EQ(f.gateway.records().size(), 1u);
  EXPECT_EQ(f.gateway.records()[0].replicas, 2);
  EXPECT_EQ(f.gateway.records()[0].replicas_delivered, 1);
  EXPECT_EQ(f.gateway.records()[0].winner_cluster, 0u);
  EXPECT_DOUBLE_EQ(f.gateway.records()[0].start_time, 1.0);
}

TEST(GatewayMiddlewareDrop, SameInstantDeliveryDropsTheLoser) {
  // Equal rates: both replicas deliver at t=1. Delivery events fire in
  // enqueue order (origin first), so the origin wins and the remote
  // replica observes started==true in the same dispatch pass — the
  // deferred drop, not a decline-after-submit.
  Fixture f(2, {1.0, 1.0});
  f.gateway.submit(make_grid_job(1, 0, {0, 1}, 7, 5.0));
  f.sim.run();

  EXPECT_EQ(f.gateway.replicas_dropped(), 1u);
  EXPECT_EQ(f.gateway.cancellations_issued(), 0u);
  EXPECT_EQ(f.platform.total_counters().submits, 1u);
  ASSERT_EQ(f.gateway.records().size(), 1u);
  EXPECT_EQ(f.gateway.records()[0].replicas_delivered, 1);
}

TEST(GatewayMiddlewareDrop, PendingReplicaIsCancelledNotDropped) {
  // Both clusters are occupied, so neither replica starts at delivery;
  // when the origin replica eventually wins, the sibling is a *pending*
  // scheduler job and must be cancelled via qdel — the drop counter stays
  // at zero. (Drops happen before delivery; cancels after.)
  Fixture f(2, {1.0, 1.0});
  f.gateway.submit(make_grid_job(1, 0, {0}, 99, 50.0));
  f.gateway.submit(make_grid_job(2, 1, {1}, 99, 60.0));
  f.gateway.submit(make_grid_job(3, 0, {0, 1}, 7, 5.0));
  f.sim.run();

  EXPECT_EQ(f.gateway.replicas_dropped(), 0u);
  EXPECT_EQ(f.gateway.cancellations_issued(), 1u);
  EXPECT_EQ(f.platform.total_counters().submits, 4u);  // all delivered
  EXPECT_EQ(f.gateway.records().size(), 3u);
}

TEST(GatewayMiddlewareDrop, LateRemoteReplicaRejectedByUserLimit) {
  // Per-user cap of one pending request. Cluster 1 is busy for 1000 s and
  // user 7 already queued a job there, so when user 7's redundant job's
  // remote replica is finally delivered (t=3, after two earlier station
  // operations), the cap rejects it at the scheduler — counted as a
  // rejection, not a drop (its job had not started anywhere).
  Fixture f(2, {1.0, 1.0});
  for (std::size_t i = 0; i < 2; ++i) {
    f.platform.scheduler(i).set_per_user_pending_limit(1);
  }
  f.gateway.submit(make_grid_job(1, 0, {0}, 99, 1000.0));
  f.gateway.submit(make_grid_job(2, 1, {1}, 99, 1000.0));
  f.gateway.submit(make_grid_job(3, 1, {1}, 7, 5.0));
  f.gateway.submit(make_grid_job(4, 0, {0, 1}, 7, 5.0));
  f.sim.run();

  EXPECT_EQ(f.gateway.replicas_rejected(), 1u);
  EXPECT_EQ(f.gateway.replicas_dropped(), 0u);
  EXPECT_EQ(f.gateway.records().size(), 4u);  // every job still ran once
  for (const auto& rec : f.gateway.records()) {
    if (rec.grid_id == 4) {
      EXPECT_EQ(rec.replicas, 2);
      EXPECT_EQ(rec.replicas_delivered, 1);  // trimmed to the origin one
      EXPECT_EQ(rec.winner_cluster, 0u);
    }
  }
}

TEST(GatewayMiddlewareDrop, DirectDeliveryNeverDrops) {
  // Without middleware every qsub has already been issued when the first
  // grant lands, so losers are declined or cancelled, never dropped.
  des::Simulation sim;
  Platform platform(sim,
                    homogeneous_configs(2, 8, workload::LublinParams{}),
                    sched::Algorithm::kEasy);
  Gateway gateway(sim, platform);
  GridJob job = make_grid_job(1, 0, {0, 1}, 7, 5.0);
  gateway.submit(job);
  sim.run();
  EXPECT_EQ(gateway.replicas_dropped(), 0u);
  EXPECT_EQ(platform.total_counters().submits, 2u);
  ASSERT_EQ(gateway.records().size(), 1u);
  EXPECT_EQ(gateway.records()[0].replicas_delivered, 2);
}

}  // namespace
}  // namespace rrsim::grid
