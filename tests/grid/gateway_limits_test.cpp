// Gateway behaviour under per-user pending limits: origin replicas are
// exempt, remote replicas get trimmed, every job still runs exactly once.
#include <gtest/gtest.h>

#include "rrsim/grid/gateway.h"
#include "rrsim/grid/platform.h"

namespace rrsim::grid {
namespace {

struct Fixture {
  des::Simulation sim;
  Platform platform;
  Gateway gateway;

  explicit Fixture(std::size_t n, int limit)
      : platform(sim, homogeneous_configs(n, 8, workload::LublinParams{}),
                 sched::Algorithm::kEasy),
        gateway(sim, platform) {
    for (std::size_t i = 0; i < n; ++i) {
      platform.scheduler(i).set_per_user_pending_limit(limit);
    }
  }
};

GridJob make_grid_job(GridJobId id, std::size_t origin,
                      std::vector<std::size_t> targets, sched::UserId user,
                      double runtime = 50.0) {
  GridJob job;
  job.id = id;
  job.origin = origin;
  job.user = user;
  job.targets = std::move(targets);
  job.redundant = job.targets.size() > 1;
  job.spec.nodes = 8;
  job.spec.runtime = runtime;
  job.spec.requested_time = runtime;
  return job;
}

TEST(GatewayLimits, RemoteReplicasTrimmedLocalAlwaysAccepted) {
  Fixture f(3, /*limit=*/1);
  // Fill every cluster with a long job, then queue one pending job per
  // cluster for user 7 so the user is at the cap everywhere.
  f.gateway.submit(make_grid_job(1, 0, {0}, 99, 1000.0));
  f.gateway.submit(make_grid_job(2, 1, {1}, 99, 1000.0));
  f.gateway.submit(make_grid_job(3, 2, {2}, 99, 1000.0));
  f.gateway.submit(make_grid_job(4, 0, {0}, 7));
  f.gateway.submit(make_grid_job(5, 1, {1}, 7));
  f.gateway.submit(make_grid_job(6, 2, {2}, 7));
  // User 7's redundant job: remote replicas must be refused (cap hit at
  // clusters 1 and 2), the origin replica accepted despite the cap.
  f.gateway.submit(make_grid_job(7, 0, {0, 1, 2}, 7));
  EXPECT_EQ(f.gateway.replicas_rejected(), 2u);
  f.sim.run();
  // Every job still ran exactly once.
  EXPECT_EQ(f.gateway.records().size(), 7u);
  for (const auto& rec : f.gateway.records()) {
    if (rec.grid_id == 7) {
      EXPECT_EQ(rec.replicas, 3);            // the user sent three
      EXPECT_EQ(rec.replicas_delivered, 1);  // trimmed to the origin one
      EXPECT_TRUE(rec.redundant);  // the user *tried* to use redundancy
      EXPECT_EQ(rec.winner_cluster, 0u);
    }
  }
}

TEST(GatewayLimits, UnlimitedWhenNoCapConfigured) {
  Fixture unlimited(3, /*limit=*/1);
  // Reconfigure: no limit on cluster 1 only.
  unlimited.platform.scheduler(1).set_per_user_pending_limit(std::nullopt);
  unlimited.gateway.submit(make_grid_job(1, 0, {0}, 99, 1000.0));
  unlimited.gateway.submit(make_grid_job(2, 1, {1}, 99, 1000.0));
  unlimited.gateway.submit(make_grid_job(3, 0, {0}, 7));
  unlimited.gateway.submit(make_grid_job(4, 1, {1}, 7));
  unlimited.gateway.submit(make_grid_job(5, 0, {0, 1}, 7));
  // Cluster 1 has no cap, so only... cluster 1's replica is accepted and
  // cluster 0's origin replica is exempt: nothing rejected.
  EXPECT_EQ(unlimited.gateway.replicas_rejected(), 0u);
  unlimited.sim.run();
  EXPECT_EQ(unlimited.gateway.records().size(), 5u);
}

TEST(GatewayLimits, ConservationUnderTightCaps) {
  Fixture f(4, /*limit=*/1);
  util::Rng rng(3);
  GridJobId id = 1;
  double t = 0.0;
  std::vector<GridJob> jobs;
  for (int i = 0; i < 120; ++i) {
    t += rng.uniform(0.0, 10.0);
    const std::size_t origin = rng.below(4);
    std::vector<std::size_t> targets{origin};
    for (std::size_t c = 0; c < 4; ++c) {
      if (c != origin) targets.push_back(c);
    }
    GridJob job = make_grid_job(id++, origin, targets,
                                static_cast<sched::UserId>(rng.below(3)),
                                rng.uniform(1.0, 60.0));
    job.spec.nodes = static_cast<int>(rng.between(1, 8));
    job.spec.submit_time = t;
    jobs.push_back(job);
  }
  for (const GridJob& job : jobs) {
    f.sim.schedule_at(job.spec.submit_time,
                      [&g = f.gateway, &job] { g.submit(job); },
                      des::Priority::kArrival);
  }
  f.sim.run();
  EXPECT_EQ(f.gateway.records().size(), 120u);  // every job ran once
  EXPECT_GT(f.gateway.replicas_rejected(), 0u);  // and the cap did bind
}

}  // namespace
}  // namespace rrsim::grid
