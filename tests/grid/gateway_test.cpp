#include "rrsim/grid/gateway.h"

#include <gtest/gtest.h>

#include "rrsim/grid/platform.h"

namespace rrsim::grid {
namespace {

struct Fixture {
  des::Simulation sim;
  Platform platform;
  Gateway gateway;

  explicit Fixture(std::size_t n, int nodes = 8,
                   sched::Algorithm algo = sched::Algorithm::kEasy,
                   bool predictions = false)
      : platform(sim, homogeneous_configs(n, nodes, workload::LublinParams{}),
                 algo),
        gateway(sim, platform, predictions) {}
};

GridJob make_grid_job(GridJobId id, std::size_t origin,
                      std::vector<std::size_t> targets, int nodes,
                      double runtime, double requested = -1.0) {
  GridJob job;
  job.id = id;
  job.origin = origin;
  job.targets = std::move(targets);
  job.redundant = job.targets.size() > 1;
  job.spec.nodes = nodes;
  job.spec.runtime = runtime;
  job.spec.requested_time = requested < 0.0 ? runtime : requested;
  return job;
}

TEST(Gateway, SingleTargetJobRunsLocally) {
  Fixture f(3);
  f.gateway.submit(make_grid_job(1, 1, {1}, 4, 50.0));
  f.sim.run();
  ASSERT_EQ(f.gateway.records().size(), 1u);
  const metrics::JobRecord& r = f.gateway.records()[0];
  EXPECT_EQ(r.winner_cluster, 1u);
  EXPECT_EQ(r.origin_cluster, 1u);
  EXPECT_FALSE(r.redundant);
  EXPECT_EQ(r.replicas, 1);
  EXPECT_EQ(r.finish_time, 50.0);
}

TEST(Gateway, ValidatesSubmissions) {
  Fixture f(3);
  EXPECT_THROW(f.gateway.submit(make_grid_job(1, 0, {}, 1, 1.0)),
               std::invalid_argument);
  EXPECT_THROW(f.gateway.submit(make_grid_job(2, 0, {1, 2}, 1, 1.0)),
               std::invalid_argument);  // origin not in targets
  EXPECT_THROW(f.gateway.submit(make_grid_job(3, 0, {0, 1, 1}, 1, 1.0)),
               std::invalid_argument);  // duplicate target
  EXPECT_THROW(f.gateway.submit(make_grid_job(4, 0, {0}, 1, 1.0), 0.5),
               std::invalid_argument);  // inflation < 1
  f.gateway.submit(make_grid_job(5, 0, {0}, 1, 1.0));
  EXPECT_THROW(f.gateway.submit(make_grid_job(5, 0, {0}, 1, 1.0)),
               std::invalid_argument);  // duplicate grid id
}

TEST(Gateway, JobRunsExactlyOnceDespiteReplicas) {
  Fixture f(4);
  f.gateway.submit(make_grid_job(1, 0, {0, 1, 2, 3}, 8, 30.0));
  f.sim.run();
  ASSERT_EQ(f.gateway.records().size(), 1u);
  EXPECT_EQ(f.gateway.finished(), 1u);
  // All four qsubs are issued (direct delivery never drops); the three
  // losing replicas are declined at their grants, each counting as one
  // cancellation.
  EXPECT_EQ(f.gateway.replicas_dropped(), 0u);
  EXPECT_EQ(f.gateway.cancellations_issued(), 3u);
  // Only one cluster actually ran anything.
  int clusters_with_work = 0;
  for (std::size_t c = 0; c < 4; ++c) {
    if (f.platform.scheduler(c).counters().starts > 0) ++clusters_with_work;
  }
  EXPECT_EQ(clusters_with_work, 1);
}

TEST(Gateway, ReplicaWinsOnLeastLoadedCluster) {
  Fixture f(2);
  // Occupy cluster 0 for a long time.
  f.gateway.submit(make_grid_job(1, 0, {0}, 8, 1000.0));
  // A redundant job must win on the idle cluster 1 immediately.
  f.gateway.submit(make_grid_job(2, 0, {0, 1}, 8, 10.0));
  f.sim.run_until(0.0);
  // Find record... job 2 finishes at t=10.
  f.sim.run_until(10.0);
  ASSERT_EQ(f.gateway.records().size(), 1u);
  EXPECT_EQ(f.gateway.records()[0].grid_id, 2u);
  EXPECT_EQ(f.gateway.records()[0].winner_cluster, 1u);
  EXPECT_EQ(f.gateway.records()[0].start_time, 0.0);
  f.sim.run();
}

TEST(Gateway, SimultaneousGrantsResolveToOneStart) {
  // Two idle clusters grant the same grid job at the same instant (at
  // submission); exactly one start must win, the other replica declined.
  Fixture f(2);
  f.gateway.submit(make_grid_job(1, 0, {0, 1}, 4, 25.0));
  f.sim.run();
  ASSERT_EQ(f.gateway.records().size(), 1u);
  const auto total = f.platform.total_counters();
  EXPECT_EQ(total.starts, 1u);
  EXPECT_EQ(total.finishes, 1u);
  // Both same-instant qsubs reach their schedulers; the loser is declined
  // at its grant and recorded as one cancellation.
  EXPECT_EQ(total.submits, 2u);
  EXPECT_EQ(f.gateway.cancellations_issued(), 1u);
}

TEST(Gateway, RemoteInflationAppliedOnlyToRemoteReplicas) {
  Fixture f(2);
  // Make cluster 1 busy so the local replica wins and we can inspect its
  // requested time; remote replica goes to cluster 1's queue.
  f.gateway.submit(make_grid_job(1, 1, {1}, 8, 500.0));
  f.gateway.submit(make_grid_job(2, 0, {0, 1}, 2, 40.0, 40.0));
  f.sim.run_until(0.0);
  f.sim.run_until(45.0);
  // Job 2 won at its origin (cluster 0): requested stays 40.
  bool found = false;
  for (const auto& r : f.gateway.records()) {
    if (r.grid_id == 2) {
      EXPECT_EQ(r.winner_cluster, 0u);
      EXPECT_DOUBLE_EQ(r.requested_time, 40.0);
      found = true;
    }
  }
  EXPECT_TRUE(found);
  f.sim.run();
}

TEST(Gateway, RemoteInflationVisibleWhenRemoteWins) {
  Fixture f(2);
  // Local cluster 0 busy; remote cluster 1 idle -> remote replica wins
  // with inflated requested time.
  f.gateway.submit(make_grid_job(1, 0, {0}, 8, 500.0));
  f.gateway.submit(make_grid_job(2, 0, {0, 1}, 2, 40.0, 40.0), 1.5);
  f.sim.run();
  for (const auto& r : f.gateway.records()) {
    if (r.grid_id == 2) {
      EXPECT_EQ(r.winner_cluster, 1u);
      EXPECT_DOUBLE_EQ(r.requested_time, 60.0);  // 40 * 1.5
      EXPECT_DOUBLE_EQ(r.actual_time, 40.0);
    }
  }
}

TEST(Gateway, RecordsCarryClassAndReplicaCount) {
  Fixture f(3);
  f.gateway.submit(make_grid_job(1, 0, {0, 1, 2}, 2, 10.0));
  f.gateway.submit(make_grid_job(2, 1, {1}, 2, 10.0));
  f.sim.run();
  ASSERT_EQ(f.gateway.records().size(), 2u);
  for (const auto& r : f.gateway.records()) {
    if (r.grid_id == 1) {
      EXPECT_TRUE(r.redundant);
      EXPECT_EQ(r.replicas, 3);
    } else {
      EXPECT_FALSE(r.redundant);
      EXPECT_EQ(r.replicas, 1);
    }
  }
}

TEST(Gateway, PredictionRecordedAsMinOverReplicas) {
  Fixture f(2, 8, sched::Algorithm::kCbf, /*predictions=*/true);
  // Cluster 0 busy until 100; cluster 1 busy until 30.
  f.gateway.submit(make_grid_job(1, 0, {0}, 8, 100.0));
  f.gateway.submit(make_grid_job(2, 1, {1}, 8, 30.0));
  f.gateway.submit(make_grid_job(3, 0, {0, 1}, 8, 10.0));
  f.sim.run();
  for (const auto& r : f.gateway.records()) {
    if (r.grid_id == 3) {
      ASSERT_TRUE(r.predicted_start.has_value());
      EXPECT_DOUBLE_EQ(*r.predicted_start, 30.0);  // min(100, 30)
      EXPECT_EQ(r.start_time, 30.0);
    }
  }
}

TEST(Gateway, ManyRedundantJobsConservation_Property) {
  Fixture f(4, 16);
  util::Rng rng(5);
  GridJobId id = 1;
  double t = 0.0;
  std::vector<GridJob> jobs;
  for (int i = 0; i < 200; ++i) {
    t += rng.uniform(0.0, 5.0);
    const std::size_t origin = rng.below(4);
    std::vector<std::size_t> targets{origin};
    for (std::size_t c = 0; c < 4; ++c) {
      if (c != origin && rng.chance(0.5)) targets.push_back(c);
    }
    GridJob job = make_grid_job(id++, origin, targets,
                                static_cast<int>(rng.between(1, 16)),
                                rng.uniform(1.0, 60.0));
    job.spec.submit_time = t;
    jobs.push_back(job);
  }
  for (const GridJob& job : jobs) {
    f.sim.schedule_at(job.spec.submit_time,
                      [&g = f.gateway, &job] { g.submit(job); },
                      des::Priority::kArrival);
  }
  f.sim.run();
  // Conservation: every grid job finished exactly once.
  EXPECT_EQ(f.gateway.records().size(), 200u);
  EXPECT_EQ(f.gateway.submitted(), 200u);
  EXPECT_EQ(f.gateway.finished(), 200u);
  const auto total = f.platform.total_counters();
  EXPECT_EQ(total.starts, 200u);
  EXPECT_EQ(total.finishes, 200u);
  // Accounting identity: every accepted replica either ran (one per grid
  // job) or was cancelled/declined exactly once.
  EXPECT_EQ(f.gateway.cancellations_issued() + 200u, total.submits);
  // Total work delivered equals the sum of job work (no duplicate runs):
  double expected = 0.0;
  for (const GridJob& j : jobs) {
    expected += j.spec.runtime * j.spec.nodes;
  }
  double measured = 0.0;
  for (const auto& r : f.gateway.records()) {
    measured += r.actual_time * r.nodes;
  }
  EXPECT_NEAR(measured, expected, 1e-6 * expected);
}

}  // namespace
}  // namespace rrsim::grid
