#include "rrsim/grid/platform.h"

#include <gtest/gtest.h>

namespace rrsim::grid {
namespace {

TEST(Platform, HomogeneousFactory) {
  const auto configs = homogeneous_configs(5, 128, workload::LublinParams{});
  ASSERT_EQ(configs.size(), 5u);
  for (const ClusterConfig& c : configs) {
    EXPECT_EQ(c.nodes, 128);
  }
  EXPECT_THROW(homogeneous_configs(0, 128, workload::LublinParams{}),
               std::invalid_argument);
}

TEST(Platform, BuildsSchedulersOfRequestedAlgorithm) {
  des::Simulation sim;
  Platform platform(sim, homogeneous_configs(3, 64, workload::LublinParams{}),
                    sched::Algorithm::kCbf);
  EXPECT_EQ(platform.size(), 3u);
  EXPECT_EQ(platform.algorithm(), sched::Algorithm::kCbf);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(platform.scheduler(i).name(), "cbf");
    EXPECT_EQ(platform.scheduler(i).total_nodes(), 64);
  }
}

TEST(Platform, HeterogeneousSizes) {
  des::Simulation sim;
  std::vector<ClusterConfig> configs(3);
  configs[0].nodes = 16;
  configs[1].nodes = 128;
  configs[2].nodes = 256;
  Platform platform(sim, configs, sched::Algorithm::kEasy);
  EXPECT_EQ(platform.cluster_sizes(), (std::vector<int>{16, 128, 256}));
  EXPECT_EQ(platform.config(2).nodes, 256);
}

TEST(Platform, RejectsEmpty) {
  des::Simulation sim;
  EXPECT_THROW(Platform(sim, {}, sched::Algorithm::kEasy),
               std::invalid_argument);
}

TEST(Platform, TotalCountersSumAcrossClusters) {
  des::Simulation sim;
  Platform platform(sim, homogeneous_configs(2, 8, workload::LublinParams{}),
                    sched::Algorithm::kFcfs);
  sched::Job job;
  job.id = 1;
  job.nodes = 4;
  job.requested_time = 10.0;
  job.actual_time = 10.0;
  platform.scheduler(0).submit(job);
  job.id = 2;
  platform.scheduler(1).submit(job);
  job.id = 3;
  platform.scheduler(1).submit(job);
  sim.run();
  const sched::OpCounters total = platform.total_counters();
  EXPECT_EQ(total.submits, 3u);
  EXPECT_EQ(total.starts, 3u);
  EXPECT_EQ(total.finishes, 3u);
}

}  // namespace
}  // namespace rrsim::grid
