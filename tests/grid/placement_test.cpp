#include "rrsim/grid/placement.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

namespace rrsim::grid {
namespace {

const std::vector<int> kTenIdentical(10, 128);
const std::vector<std::size_t> kNoQueues{};

PlatformView view_of(const std::vector<int>& sizes) {
  return PlatformView{sizes, kNoQueues};
}

TEST(UniformPlacement, NeverPicksOriginOrDuplicates) {
  util::Rng rng(1);
  const UniformPlacement p;
  for (int trial = 0; trial < 500; ++trial) {
    const auto picks = p.choose_remotes(3, 16, view_of(kTenIdentical), 4, rng);
    ASSERT_EQ(picks.size(), 4u);
    std::set<std::size_t> unique(picks.begin(), picks.end());
    ASSERT_EQ(unique.size(), picks.size());
    ASSERT_EQ(unique.count(3), 0u);
    for (const std::size_t c : picks) ASSERT_LT(c, 10u);
  }
}

TEST(UniformPlacement, IsApproximatelyUniform) {
  util::Rng rng(2);
  const UniformPlacement p;
  std::map<std::size_t, int> counts;
  const int trials = 90000;
  for (int i = 0; i < trials; ++i) {
    for (const std::size_t c : p.choose_remotes(0, 1, view_of(kTenIdentical), 1, rng)) {
      ++counts[c];
    }
  }
  for (std::size_t c = 1; c < 10; ++c) {
    EXPECT_NEAR(counts[c], trials / 9, trials / 9 * 0.1) << "cluster " << c;
  }
}

TEST(UniformPlacement, AllRemotesWhenCountIsLarge) {
  util::Rng rng(3);
  const UniformPlacement p;
  const auto picks = p.choose_remotes(0, 1, view_of(kTenIdentical), 99, rng);
  EXPECT_EQ(picks.size(), 9u);  // everything except the origin
}

TEST(UniformPlacement, FiltersCapacityIneligibleClusters) {
  util::Rng rng(4);
  const UniformPlacement p;
  const std::vector<int> sizes{16, 32, 64, 128, 256};
  for (int trial = 0; trial < 200; ++trial) {
    const auto picks = p.choose_remotes(4, 100, view_of(sizes), 4, rng);
    ASSERT_EQ(picks.size(), 1u);  // only cluster 3 (128) qualifies
    EXPECT_EQ(picks[0], 3u);
  }
}

TEST(UniformPlacement, NoEligibleRemotes) {
  util::Rng rng(5);
  const UniformPlacement p;
  const std::vector<int> sizes{256, 16, 16};
  EXPECT_TRUE(p.choose_remotes(0, 100, view_of(sizes), 3, rng).empty());
}

TEST(BiasedPlacement, GeometricWeighting) {
  util::Rng rng(6);
  const BiasedPlacement p;
  std::map<std::size_t, int> counts;
  const int trials = 200000;
  for (int i = 0; i < trials; ++i) {
    // Origin 9 so that eligible remotes are clusters 0..8 in id order.
    for (const std::size_t c : p.choose_remotes(9, 1, view_of(kTenIdentical), 1, rng)) {
      ++counts[c];
    }
  }
  // Each cluster should be picked ~twice as often as the next one.
  for (std::size_t c = 0; c + 1 < 6; ++c) {
    const double ratio = static_cast<double>(counts[c]) /
                         static_cast<double>(counts[c + 1]);
    EXPECT_NEAR(ratio, 2.0, 0.25) << "clusters " << c << "/" << c + 1;
  }
}

TEST(BiasedPlacement, WithoutReplacement) {
  util::Rng rng(7);
  const BiasedPlacement p;
  for (int trial = 0; trial < 500; ++trial) {
    const auto picks = p.choose_remotes(0, 1, view_of(kTenIdentical), 9, rng);
    ASSERT_EQ(picks.size(), 9u);
    std::set<std::size_t> unique(picks.begin(), picks.end());
    ASSERT_EQ(unique.size(), 9u);
    ASSERT_EQ(unique.count(0), 0u);
  }
}

TEST(BiasedPlacement, RespectsCapacityFilter) {
  util::Rng rng(8);
  const BiasedPlacement p;
  const std::vector<int> sizes{16, 256, 16, 256, 16};
  for (int trial = 0; trial < 200; ++trial) {
    const auto picks = p.choose_remotes(1, 100, view_of(sizes), 3, rng);
    ASSERT_EQ(picks.size(), 1u);
    EXPECT_EQ(picks[0], 3u);
  }
}

TEST(LeastLoadedPlacement, PicksShortestQueues) {
  util::Rng rng(9);
  const LeastLoadedPlacement p;
  const std::vector<std::size_t> queues{50, 3, 40, 1, 20, 7, 60, 2, 90, 10};
  const PlatformView view{kTenIdentical, queues};
  const auto picks = p.choose_remotes(0, 1, view, 3, rng);
  // Shortest remote queues: cluster 3 (1), 7 (2), 1 (3).
  EXPECT_EQ(picks, (std::vector<std::size_t>{3, 7, 1}));
}

TEST(LeastLoadedPlacement, TieBreaksByClusterId) {
  util::Rng rng(10);
  const LeastLoadedPlacement p;
  const std::vector<int> sizes(4, 128);
  const std::vector<std::size_t> queues{5, 5, 5, 5};
  const PlatformView view{sizes, queues};
  const auto picks = p.choose_remotes(2, 1, view, 2, rng);
  EXPECT_EQ(picks, (std::vector<std::size_t>{0, 1}));
}

TEST(LeastLoadedPlacement, RespectsCapacityFilter) {
  util::Rng rng(11);
  const LeastLoadedPlacement p;
  const std::vector<int> sizes{256, 16, 256, 16};
  const std::vector<std::size_t> queues{9, 0, 5, 0};
  const PlatformView view{sizes, queues};
  const auto picks = p.choose_remotes(0, 100, view, 4, rng);
  EXPECT_EQ(picks, (std::vector<std::size_t>{2}));  // only fitting remote
}

TEST(LeastLoadedPlacement, FallsBackToUniformWithoutQueueData) {
  util::Rng rng(12);
  const LeastLoadedPlacement p;
  std::set<std::size_t> seen;
  for (int i = 0; i < 200; ++i) {
    const auto picks = p.choose_remotes(0, 1, view_of(kTenIdentical), 1, rng);
    ASSERT_EQ(picks.size(), 1u);
    seen.insert(picks[0]);
  }
  EXPECT_GT(seen.size(), 5u);  // random spread, not a fixed answer
}

TEST(MakePlacement, Factory) {
  EXPECT_EQ(make_placement("uniform")->name(), "uniform");
  EXPECT_EQ(make_placement("biased")->name(), "biased");
  EXPECT_EQ(make_placement("least-loaded")->name(), "least-loaded");
  EXPECT_THROW(make_placement("fancy"), std::invalid_argument);
}

}  // namespace
}  // namespace rrsim::grid
