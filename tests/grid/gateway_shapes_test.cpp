// Shaped (moldable) submissions through the gateway — the paper's
// redundancy option (iv): several differently-sized requests for the
// same job, possibly in the same batch queue; first to start wins.
#include <gtest/gtest.h>

#include "rrsim/grid/gateway.h"
#include "rrsim/grid/platform.h"

namespace rrsim::grid {
namespace {

struct Fixture {
  des::Simulation sim;
  Platform platform;
  Gateway gateway;

  explicit Fixture(std::size_t n, int nodes = 8)
      : platform(sim, homogeneous_configs(n, nodes, workload::LublinParams{}),
                 sched::Algorithm::kEasy),
        gateway(sim, platform) {}
};

workload::JobSpec spec_of(int nodes, double runtime, double requested = -1) {
  workload::JobSpec s;
  s.nodes = nodes;
  s.runtime = runtime;
  s.requested_time = requested < 0 ? runtime : requested;
  return s;
}

GridJob shaped_job(GridJobId id, std::size_t origin,
                   std::vector<std::size_t> targets,
                   std::vector<workload::JobSpec> shapes) {
  GridJob job;
  job.id = id;
  job.origin = origin;
  job.targets = std::move(targets);
  job.replica_specs = std::move(shapes);
  job.redundant = job.targets.size() > 1;
  job.spec = job.replica_specs.front();
  return job;
}

TEST(GatewayShapes, ValidatesSpecCount) {
  Fixture f(2);
  GridJob bad = shaped_job(1, 0, {0, 1}, {spec_of(4, 10.0)});
  EXPECT_THROW(f.gateway.submit(bad), std::invalid_argument);
}

TEST(GatewayShapes, DuplicateTargetsAllowedOnlyWithShapes) {
  Fixture f(1);
  GridJob uniform;
  uniform.id = 1;
  uniform.origin = 0;
  uniform.targets = {0, 0};
  uniform.spec = spec_of(4, 10.0);
  EXPECT_THROW(f.gateway.submit(uniform), std::invalid_argument);

  GridJob shaped = shaped_job(2, 0, {0, 0},
                              {spec_of(8, 10.0), spec_of(4, 17.0)});
  EXPECT_NO_THROW(f.gateway.submit(shaped));
  f.sim.run();
  EXPECT_EQ(f.gateway.records().size(), 1u);
}

TEST(GatewayShapes, NarrowShapeWinsWhenClusterIsHalfBusy) {
  Fixture f(1);
  // Occupy 4 of 8 nodes for a long time.
  GridJob wall;
  wall.id = 1;
  wall.origin = 0;
  wall.targets = {0};
  wall.spec = spec_of(4, 1000.0);
  f.gateway.submit(wall);
  // Moldable job: 8-node x 10 s or 4-node x 19 s. Only the narrow shape
  // fits now; it must win immediately.
  f.gateway.submit(shaped_job(2, 0, {0, 0},
                              {spec_of(8, 10.0), spec_of(4, 19.0)}));
  f.sim.run_until(0.0);
  bool found = false;
  f.sim.run();
  for (const auto& rec : f.gateway.records()) {
    if (rec.grid_id == 2) {
      found = true;
      EXPECT_EQ(rec.nodes, 4);
      EXPECT_DOUBLE_EQ(rec.start_time, 0.0);
      EXPECT_DOUBLE_EQ(rec.actual_time, 19.0);
    }
  }
  EXPECT_TRUE(found);
}

TEST(GatewayShapes, WideShapeWinsOnIdleCluster) {
  Fixture f(1);
  f.gateway.submit(shaped_job(1, 0, {0, 0},
                              {spec_of(8, 10.0), spec_of(4, 19.0)}));
  f.sim.run();
  ASSERT_EQ(f.gateway.records().size(), 1u);
  // Both shapes fit at t=0; the first-listed (wide) shape is granted
  // first and wins; the narrow sibling is dropped or declined.
  EXPECT_EQ(f.gateway.records()[0].nodes, 8);
  EXPECT_DOUBLE_EQ(f.gateway.records()[0].finish_time, 10.0);
}

TEST(GatewayShapes, ShapesAcrossClusters) {
  Fixture f(2);
  // Cluster 0 fully busy; cluster 1 has only 2 free nodes... simulate by
  // filling 6 of 8.
  GridJob wall0;
  wall0.id = 1;
  wall0.origin = 0;
  wall0.targets = {0};
  wall0.spec = spec_of(8, 500.0);
  f.gateway.submit(wall0);
  GridJob wall1;
  wall1.id = 2;
  wall1.origin = 1;
  wall1.targets = {1};
  wall1.spec = spec_of(6, 500.0);
  f.gateway.submit(wall1);
  // Wide shape to cluster 0, narrow shape to cluster 1.
  f.gateway.submit(shaped_job(3, 0, {0, 1},
                              {spec_of(8, 20.0), spec_of(2, 70.0)}));
  f.sim.run();
  for (const auto& rec : f.gateway.records()) {
    if (rec.grid_id == 3) {
      EXPECT_EQ(rec.winner_cluster, 1u);  // narrow fits beside wall1
      EXPECT_EQ(rec.nodes, 2);
      EXPECT_DOUBLE_EQ(rec.start_time, 0.0);
    }
  }
}

TEST(GatewayShapes, ConservationWithManyMoldableJobs) {
  Fixture f(2, 16);
  util::Rng rng(9);
  GridJobId id = 1;
  double t = 0.0;
  std::vector<GridJob> jobs;
  for (int i = 0; i < 100; ++i) {
    t += rng.uniform(0.0, 8.0);
    const int base_nodes = static_cast<int>(rng.between(2, 16));
    const double runtime = rng.uniform(5.0, 60.0);
    const int narrow = std::max(1, base_nodes / 2);
    GridJob job = shaped_job(
        id++, rng.below(2), {0, 0, 1},
        {spec_of(base_nodes, runtime),
         spec_of(narrow, runtime * 1.8),
         spec_of(base_nodes, runtime)});
    job.origin = job.targets[0];
    job.spec.submit_time = t;
    jobs.push_back(job);
  }
  for (const GridJob& job : jobs) {
    f.sim.schedule_at(job.spec.submit_time,
                      [&g = f.gateway, &job] { g.submit(job); },
                      des::Priority::kArrival);
  }
  f.sim.run();
  EXPECT_EQ(f.gateway.records().size(), 100u);  // each ran exactly once
  EXPECT_EQ(f.platform.total_counters().finishes, 100u);
}

}  // namespace
}  // namespace rrsim::grid
