// Exercises the RRSIM_VALIDATE invariant layer from both sides: a full
// redundant-request run with every validator armed must stay silent, and
// each corruption hook — a deliberately planted bug of the class the
// validator exists to catch — must abort the process with the expected
// message. This binary compiles the core sources directly with
// RRSIM_VALIDATE=1, so the death tests work regardless of how the
// enclosing build was configured.
#include <gtest/gtest.h>

#include "rrsim/des/simulation.h"
#include "rrsim/grid/gateway.h"
#include "rrsim/grid/platform.h"
#include "rrsim/sched/cbf.h"
#include "rrsim/sched/profile.h"

namespace rrsim {
namespace {

static_assert(RRSIM_VALIDATE_ENABLED,
              "validate_tests must be compiled with RRSIM_VALIDATE=1");

grid::GridJob make_grid_job(grid::GridJobId id, std::size_t origin,
                            std::vector<std::size_t> targets, int nodes,
                            double runtime) {
  grid::GridJob job;
  job.id = id;
  job.origin = origin;
  job.targets = std::move(targets);
  job.redundant = job.targets.size() > 1;
  job.spec.nodes = nodes;
  job.spec.runtime = runtime;
  job.spec.requested_time = runtime;
  return job;
}

sched::Job make_job(sched::JobId id, int nodes, double runtime) {
  sched::Job job;
  job.id = id;
  job.nodes = nodes;
  job.requested_time = runtime;
  job.actual_time = runtime;
  return job;
}

// --- positive runs: armed validators stay silent --------------------------

TEST(ValidateClean, RedundantCampaignRunsWithValidatorsArmed) {
  des::Simulation sim;
  grid::Platform platform(
      sim, grid::homogeneous_configs(3, 8, workload::LublinParams{}),
      sched::Algorithm::kCbf);
  grid::Gateway gateway(sim, platform);
  // Enough redundant jobs to queue, start, cancel siblings, and finish —
  // every per-operation validator fires many times along the way.
  for (grid::GridJobId id = 1; id <= 12; ++id) {
    const std::size_t origin = id % 3;
    gateway.submit(make_grid_job(id, origin, {0, 1, 2}, 4, 30.0 + id));
  }
  sim.run();
  EXPECT_EQ(gateway.finished(), 12u);
  gateway.debug_validate();
  for (std::size_t i = 0; i < platform.size(); ++i) {
    platform.scheduler(i).debug_validate();
  }
}

TEST(ValidateClean, ProfileSurvivesReserveReleaseChurn) {
  sched::Profile p(16);
  p.reserve(0.0, 10.0, 4);
  p.reserve(5.0, 10.0, 8);
  p.release(0.0, 10.0, 4);
  p.reserve(2.0, 6.0, 16 - 8);
  p.release_until(2.0, 8.0, 8);
  p.release(5.0, 10.0, 8);
  p.prune_before(1.0);
  p.debug_validate();
  EXPECT_EQ(p.free_at(100.0), 16);
}

TEST(ValidateClean, ResetFingerprintMatchesFreshSimulation) {
  des::Simulation sim;
  for (int i = 0; i < 50; ++i) {
    sim.schedule_at(static_cast<des::Time>(i), [] {});
  }
  sim.run_until(25.0);
  sim.reset();  // the reset-coverage oracle runs inside
  EXPECT_EQ(sim.debug_fingerprint(), des::Simulation().debug_fingerprint());
}

// --- death tests: every planted corruption must trip its validator --------

TEST(ValidateDeath, DispatchOrderOracleTripsOnTimeRegression) {
  des::Simulation sim;
  sim.schedule_at(10.0, [] {});
  // Pretend an event at t=100 already fired; popping t=10 next is the
  // out-of-order dispatch a broken calendar queue would produce.
  sim.debug_force_dispatch_watermark(100.0);
  EXPECT_DEATH(sim.step(), "dispatch time went backwards");
}

TEST(ValidateDeath, ResetCoverageOracleTripsOnLeakedState) {
  des::Simulation sim;
  sim.schedule_at(1.0, [] {});
  sim.run();
  sim.debug_leak_state_on_reset(true);
  EXPECT_DEATH(sim.reset(),
               "reset\\(\\) state differs from a freshly constructed");
}

TEST(ValidateDeath, ProfileValidatorTripsOnBrokenCanonicalForm) {
  sched::Profile p(8);
  p.reserve(0.0, 5.0, 3);
  p.debug_break_canonical();
  EXPECT_DEATH(p.debug_validate(), "not canonical");
}

TEST(ValidateDeath, SchedulerValidatorTripsOnAccountingLeak) {
  des::Simulation sim;
  sched::CbfScheduler sched(sim, 8);
  sched.submit(make_job(1, 2, 100.0));
  sim.run_until(0.0);  // let the scheduling pass start the job
  sched.debug_corrupt_accounting();
  EXPECT_DEATH(sched.debug_validate(),
               "free-node count disagrees with the running set");
}

TEST(ValidateDeath, CbfValidatorTripsOnCorruptQueueIndex) {
  des::Simulation sim;
  sched::CbfScheduler sched(sim, 4);
  sched.submit(make_job(1, 4, 100.0));
  sched.submit(make_job(2, 4, 100.0));  // cannot start: stays queued
  sim.run_until(0.0);
  ASSERT_GE(sched.queue_length(), 1u);
  sched.debug_corrupt_index();
  EXPECT_DEATH(sched.debug_validate(),
               "pos_ entry does not point at the job's queue slot");
}

TEST(ValidateDeath, GatewayValidatorTripsOnCorruptReplicaIndex) {
  des::Simulation sim;
  grid::Platform platform(
      sim, grid::homogeneous_configs(2, 8, workload::LublinParams{}),
      sched::Algorithm::kCbf);
  grid::Gateway gateway(sim, platform);
  gateway.submit(make_grid_job(1, 0, {0, 1}, 4, 100.0));
  gateway.debug_corrupt_tracking();
  EXPECT_DEATH(gateway.debug_validate(), "does not map a tracked replica");
}

}  // namespace
}  // namespace rrsim
