// RRSIM_VALIDATE coverage for the PDES layer: a full multi-window
// redundant run with every invariant armed must stay silent (including
// the cross-agent tracking sweep), and the planted mailbox corruption —
// a message warped into its destination's past, exactly the class of bug
// the conservative contract exists to prevent — must abort.
#include <gtest/gtest.h>

#include "rrsim/exec/pdes.h"
#include "rrsim/grid/pdes_gateway.h"
#include "rrsim/sched/factory.h"

namespace rrsim {
namespace {

static_assert(RRSIM_VALIDATE_ENABLED,
              "validate_tests must be compiled with RRSIM_VALIDATE=1");

grid::GridJob make_pdes_job(grid::GridJobId id, std::size_t origin,
                            std::vector<std::size_t> targets, int nodes,
                            double runtime) {
  grid::GridJob job;
  job.id = id;
  job.origin = origin;
  job.targets = std::move(targets);
  job.redundant = job.targets.size() > 1;
  job.spec.nodes = nodes;
  job.spec.runtime = runtime;
  job.spec.requested_time = runtime;
  return job;
}

TEST(ValidateClean, PdesRedundantRunWithValidatorsArmed) {
  constexpr std::size_t kN = 3;
  constexpr double kLatency = 5.0;
  exec::PdesCoordinator coord(kN, kLatency, 2);
  std::vector<std::unique_ptr<sched::ClusterScheduler>> owned;
  std::vector<sched::ClusterScheduler*> scheds;
  for (std::size_t i = 0; i < kN; ++i) {
    owned.push_back(
        sched::make_scheduler(sched::Algorithm::kCbf, coord.partition(i), 8));
    scheds.push_back(owned.back().get());
  }
  grid::PdesGateway gateway(coord, scheds, kLatency);
  // Staggered redundant submissions from every origin: enough traffic to
  // queue, start, cancel in-flight siblings, and produce duplicate
  // starts — every mailbox/horizon/tracking validator fires repeatedly.
  for (grid::GridJobId id = 1; id <= 12; ++id) {
    const std::size_t origin = id % kN;
    coord.partition(origin).schedule_at(
        static_cast<double>(id) * 2.0, [&gateway, id, origin] {
          gateway.submit(make_pdes_job(id, origin, {0, 1, 2}, 4,
                                       30.0 + static_cast<double>(id)));
        });
  }
  coord.run();
  gateway.debug_validate();
  EXPECT_EQ(gateway.submitted(), 12u);
  EXPECT_EQ(gateway.finished(), 12u);
  EXPECT_GT(coord.messages_delivered(), 0u);
}

// --- planted corruption: the oracle must catch the bug ---------------------

using ValidateDeath = ::testing::Test;

TEST(ValidateDeath, CorruptedMailboxDeliveryAborts) {
  // Single worker so the death-test child stays single-threaded.
  exec::PdesCoordinator coord(2, 5.0, 1);
  coord.partition(0).schedule_at(0.0, [&coord] {
    coord.post(0, 1, 5.0, des::Priority::kArrival, [] {});
  });
  coord.debug_corrupt_next_delivery();
  EXPECT_DEATH(coord.run(), "destination's past");
}

}  // namespace
}  // namespace rrsim
