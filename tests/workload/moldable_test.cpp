#include "rrsim/workload/moldable.h"

#include <gtest/gtest.h>

#include <set>

namespace rrsim::workload {
namespace {

TEST(AmdahlSpeedup, Validation) {
  EXPECT_THROW(AmdahlSpeedup(-0.1), std::invalid_argument);
  EXPECT_THROW(AmdahlSpeedup(1.1), std::invalid_argument);
  const AmdahlSpeedup s(0.5);
  EXPECT_THROW(s.runtime(0.0, 4, 8), std::invalid_argument);
  EXPECT_THROW(s.runtime(10.0, 0, 8), std::invalid_argument);
  EXPECT_THROW(s.runtime(10.0, 4, 0), std::invalid_argument);
}

TEST(AmdahlSpeedup, BaseShapeIsFixedPoint) {
  const AmdahlSpeedup s(0.7);
  EXPECT_DOUBLE_EQ(s.runtime(100.0, 8, 8), 100.0);
}

TEST(AmdahlSpeedup, PerfectlyParallelScalesLinearly) {
  const AmdahlSpeedup s(1.0);
  EXPECT_DOUBLE_EQ(s.runtime(100.0, 4, 8), 50.0);
  EXPECT_DOUBLE_EQ(s.runtime(100.0, 4, 2), 200.0);
}

TEST(AmdahlSpeedup, FullySerialIgnoresNodes) {
  const AmdahlSpeedup s(0.0);
  EXPECT_DOUBLE_EQ(s.runtime(100.0, 4, 64), 100.0);
  EXPECT_DOUBLE_EQ(s.runtime(100.0, 4, 1), 100.0);
}

TEST(AmdahlSpeedup, AmdahlLimitHolds) {
  // f = 0.9: speedup can never exceed 10x the serial part.
  const AmdahlSpeedup s(0.9);
  EXPECT_GT(s.runtime(100.0, 1, 1000000), 10.0);
  EXPECT_NEAR(s.runtime(100.0, 1, 1000000), 10.0, 0.1);
}

TEST(AmdahlSpeedup, MonotoneInNodes) {
  const AmdahlSpeedup s(0.8);
  double prev = s.runtime(100.0, 8, 1);
  for (int n = 2; n <= 128; n *= 2) {
    const double cur = s.runtime(100.0, 8, n);
    EXPECT_LT(cur, prev);
    prev = cur;
  }
}

JobSpec base_spec(int nodes, double runtime, double requested) {
  JobSpec s;
  s.nodes = nodes;
  s.runtime = runtime;
  s.requested_time = requested;
  return s;
}

TEST(MoldableShapes, BaseShapeFirstAndDistinctWidths) {
  const AmdahlSpeedup s(0.9);
  const auto shapes = moldable_shapes(base_spec(8, 100.0, 100.0), s, 128, 4);
  ASSERT_EQ(shapes.size(), 4u);
  EXPECT_EQ(shapes[0].nodes, 8);
  EXPECT_DOUBLE_EQ(shapes[0].runtime, 100.0);
  std::set<int> widths;
  for (const JobShape& shape : shapes) widths.insert(shape.nodes);
  EXPECT_EQ(widths.size(), shapes.size());
  // Halve/double alternation: 8, 4, 16, 2.
  EXPECT_EQ(shapes[1].nodes, 4);
  EXPECT_EQ(shapes[2].nodes, 16);
  EXPECT_EQ(shapes[3].nodes, 2);
}

TEST(MoldableShapes, WidthsClampedToCluster) {
  const AmdahlSpeedup s(0.9);
  const auto shapes = moldable_shapes(base_spec(96, 100.0, 100.0), s, 128, 3);
  for (const JobShape& shape : shapes) {
    EXPECT_GE(shape.nodes, 1);
    EXPECT_LE(shape.nodes, 128);
  }
}

TEST(MoldableShapes, PreservesOverestimationFactor) {
  const AmdahlSpeedup s(0.8);
  // Requested = 2x runtime at the base shape; every shape keeps that.
  const auto shapes = moldable_shapes(base_spec(8, 100.0, 200.0), s, 128, 3);
  for (const JobShape& shape : shapes) {
    EXPECT_NEAR(shape.requested_time / shape.runtime, 2.0, 1e-9);
  }
}

TEST(MoldableShapes, SerialJobHasLimitedShapes) {
  const AmdahlSpeedup s(0.5);
  // Base 1 node on a 2-node cluster: only widths 1 and 2 exist.
  const auto shapes = moldable_shapes(base_spec(1, 100.0, 100.0), s, 2, 5);
  EXPECT_EQ(shapes.size(), 2u);
}

TEST(MoldableShapes, Validation) {
  const AmdahlSpeedup s(0.5);
  EXPECT_THROW(moldable_shapes(base_spec(8, 10.0, 10.0), s, 128, 0),
               std::invalid_argument);
  EXPECT_THROW(moldable_shapes(base_spec(256, 10.0, 10.0), s, 128, 2),
               std::invalid_argument);
}

}  // namespace
}  // namespace rrsim::workload
