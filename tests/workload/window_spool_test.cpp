#include "rrsim/workload/window_spool.h"

#include <dirent.h>
#include <unistd.h>

#include <cmath>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace rrsim::workload {
namespace {

JobSpec spec_of(std::size_t i) {
  JobSpec s;
  // Values with non-trivial mantissas, so "equal" can only mean
  // bit-exact round-tripping, not lucky rounding.
  s.submit_time = 100.0 + static_cast<double>(i) / 3.0;
  s.nodes = static_cast<int>(i % 97) + 1;
  s.runtime = 1.0 + static_cast<double>(i) * 0.1 / 7.0;
  s.requested_time = s.runtime * 2.0 + 1e-9;
  return s;
}

std::shared_ptr<const WindowSpool> build_spool(std::size_t window,
                                               std::size_t jobs) {
  WindowSpool spool(window);
  for (std::size_t i = 0; i < jobs; ++i) spool.append(spec_of(i));
  spool.finish();
  return std::make_shared<const WindowSpool>(std::move(spool));
}

/// Entries in `dir` other than "." and "..".
std::size_t dir_entries(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return static_cast<std::size_t>(-1);
  std::size_t n = 0;
  while (const dirent* e = ::readdir(d)) {
    if (std::strcmp(e->d_name, ".") != 0 && std::strcmp(e->d_name, "..") != 0) {
      ++n;
    }
  }
  ::closedir(d);
  return n;
}

TEST(WindowSpool, RoundTripsJobsBitExactly) {
  const std::size_t kJobs = 1000;
  const auto spool = build_spool(64, kJobs);
  EXPECT_EQ(spool->total_jobs(), kJobs);

  WindowSpool::Reader reader(spool);
  JobStream out;
  std::size_t seen = 0;
  while (!reader.exhausted()) {
    const std::size_t n = reader.next(64, out);
    ASSERT_GT(n, 0u);
    ASSERT_EQ(out.size(), n);
    for (std::size_t i = 0; i < n; ++i) {
      const JobSpec want = spec_of(seen + i);
      // EXPECT_EQ on doubles is exact comparison — the contract is
      // identical bits, not closeness.
      EXPECT_EQ(out[i].submit_time, want.submit_time);
      EXPECT_EQ(out[i].nodes, want.nodes);
      EXPECT_EQ(out[i].runtime, want.runtime);
      EXPECT_EQ(out[i].requested_time, want.requested_time);
    }
    seen += n;
  }
  EXPECT_EQ(seen, kJobs);
  EXPECT_EQ(reader.jobs_emitted(), kJobs);
  EXPECT_EQ(reader.next(64, out), 0u);  // exhausted: empty pull, no throw
}

TEST(WindowSpool, ChunksAtMostMaxJobsAndExactlyRemainderAtEnd) {
  const auto spool = build_spool(16, 50);
  WindowSpool::Reader reader(spool);
  JobStream out;
  EXPECT_EQ(reader.next(30, out), 30u);
  EXPECT_EQ(reader.next(30, out), 20u);  // only 20 remain
  EXPECT_TRUE(reader.exhausted());
}

TEST(WindowSpool, ReaderSeeksToWindowBoundary) {
  const auto spool = build_spool(16, 50);  // windows at jobs 0,16,32,48
  WindowSpool::Reader reader(spool, 2);
  EXPECT_EQ(reader.jobs_emitted(), 32u);
  JobStream out;
  ASSERT_EQ(reader.next(100, out), 18u);
  EXPECT_EQ(out.front().submit_time, spec_of(32).submit_time);
  EXPECT_EQ(out.back().submit_time, spec_of(49).submit_time);
  // Seeking to one-past-the-last window yields an exhausted reader...
  WindowSpool::Reader at_end(spool, 4);
  EXPECT_TRUE(at_end.exhausted());
  // ...and further is rejected.
  EXPECT_THROW(WindowSpool::Reader(spool, 5), std::invalid_argument);
}

TEST(WindowSpool, EmptySpoolReadsAsExhausted) {
  WindowSpool spool(8);
  spool.finish();
  const auto shared = std::make_shared<const WindowSpool>(std::move(spool));
  EXPECT_EQ(shared->total_jobs(), 0u);
  WindowSpool::Reader reader(shared);
  EXPECT_TRUE(reader.exhausted());
  JobStream out;
  EXPECT_EQ(reader.next(8, out), 0u);
}

TEST(WindowSpool, RejectsMisuse) {
  EXPECT_THROW(WindowSpool(0), std::invalid_argument);

  WindowSpool unfinished(8);
  unfinished.append(spec_of(0));
  // Readers only attach to sealed spools.
  EXPECT_THROW(
      WindowSpool::Reader(
          std::make_shared<const WindowSpool>(std::move(unfinished))),
      std::logic_error);

  WindowSpool sealed(8);
  sealed.append(spec_of(0));
  sealed.finish();
  sealed.finish();  // idempotent
  EXPECT_THROW(sealed.append(spec_of(1)), std::logic_error);
  const auto shared = std::make_shared<const WindowSpool>(std::move(sealed));
  WindowSpool::Reader reader(shared);
  JobStream out;
  EXPECT_THROW(reader.next(0, out), std::invalid_argument);
}

TEST(WindowSpool, IndexChargesOnlyCheckpointBytes) {
  const auto spool = build_spool(10, 95);  // 10 windows
  EXPECT_GE(spool->payload_bytes(),
            10 * sizeof(WindowSpool::WindowIndex));
  // The record bytes live on disk, not in the resident payload.
  EXPECT_EQ(spool->file_bytes(), 95u * 32u);
  EXPECT_LT(spool->payload_bytes(), spool->file_bytes());
}

TEST(WindowSpool, TempDirStaysEmptyForTheSpoolsWholeLifetime) {
  char tmpl[] = "/tmp/rrsim-spool-test-XXXXXX";
  ASSERT_NE(::mkdtemp(tmpl), nullptr);
  const std::string dir = tmpl;
  {
    WindowSpool spool(4, dir);
    // mkstemp + immediate unlink: no directory entry even while live.
    EXPECT_EQ(dir_entries(dir), 0u);
    for (std::size_t i = 0; i < 9; ++i) spool.append(spec_of(i));
    spool.finish();
    EXPECT_EQ(dir_entries(dir), 0u);
    const auto shared = std::make_shared<const WindowSpool>(std::move(spool));
    WindowSpool::Reader reader(shared);
    JobStream out;
    EXPECT_EQ(reader.next(100, out), 9u);
    EXPECT_EQ(dir_entries(dir), 0u);
  }
  EXPECT_EQ(dir_entries(dir), 0u);
  // An exception mid-append leaks nothing by name either.
  try {
    WindowSpool spool(4, dir);
    spool.append(spec_of(0));
    spool.finish();
    spool.append(spec_of(1));  // throws std::logic_error
    FAIL() << "append after finish should throw";
  } catch (const std::logic_error&) {
  }
  EXPECT_EQ(dir_entries(dir), 0u);
  EXPECT_EQ(::rmdir(dir.c_str()), 0);  // empty, so removable
}

TEST(WindowSpool, ReaderKeepsSpoolAliveAfterOwnerDropsIt) {
  auto spool = build_spool(8, 40);
  WindowSpool::Reader reader(spool);
  spool.reset();  // simulate cache eviction mid-run
  JobStream out;
  std::size_t seen = 0;
  while (reader.next(8, out) > 0) {
    for (const JobSpec& s : out) {
      EXPECT_EQ(s.submit_time, spec_of(seen).submit_time);
      ++seen;
    }
  }
  EXPECT_EQ(seen, 40u);
}

TEST(WindowSpool, ConcurrentReadersSeeIndependentCursors) {
  const auto spool = build_spool(8, 32);
  WindowSpool::Reader a(spool);
  WindowSpool::Reader b(spool, 2);
  JobStream out_a;
  JobStream out_b;
  ASSERT_EQ(a.next(8, out_a), 8u);
  ASSERT_EQ(b.next(8, out_b), 8u);
  EXPECT_EQ(out_a.front().submit_time, spec_of(0).submit_time);
  EXPECT_EQ(out_b.front().submit_time, spec_of(16).submit_time);
  ASSERT_EQ(a.next(8, out_a), 8u);
  EXPECT_EQ(out_a.front().submit_time, spec_of(8).submit_time);
}

TEST(WindowSpool, MoveTransfersOwnership) {
  WindowSpool spool(8);
  for (std::size_t i = 0; i < 20; ++i) spool.append(spec_of(i));
  WindowSpool moved(std::move(spool));
  moved.finish();
  EXPECT_EQ(moved.total_jobs(), 20u);
  WindowSpool assigned(4);
  assigned = std::move(moved);
  EXPECT_EQ(assigned.total_jobs(), 20u);
  const auto shared = std::make_shared<const WindowSpool>(std::move(assigned));
  WindowSpool::Reader reader(shared);
  JobStream out;
  EXPECT_EQ(reader.next(100, out), 20u);
  EXPECT_EQ(out.back().requested_time, spec_of(19).requested_time);
}

}  // namespace
}  // namespace rrsim::workload
