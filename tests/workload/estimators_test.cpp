#include "rrsim/workload/estimators.h"

#include <gtest/gtest.h>

#include <cmath>

namespace rrsim::workload {
namespace {

TEST(ExactEstimator, Identity) {
  util::Rng rng(1);
  const ExactEstimator e;
  EXPECT_EQ(e.requested_for(123.0, rng), 123.0);
  EXPECT_EQ(e.mean_factor(), 1.0);
  EXPECT_EQ(e.name(), "exact");
}

TEST(PhiEstimator, RejectsBadPhi) {
  EXPECT_THROW(PhiEstimator(0.0), std::invalid_argument);
  EXPECT_THROW(PhiEstimator(1.0), std::invalid_argument);
  EXPECT_THROW(PhiEstimator(-0.2), std::invalid_argument);
}

TEST(PhiEstimator, NeverUnderestimates) {
  util::Rng rng(2);
  const PhiEstimator e(0.10);
  for (int i = 0; i < 10000; ++i) {
    ASSERT_GE(e.requested_for(100.0, rng), 100.0);
  }
}

TEST(PhiEstimator, FactorBounded) {
  util::Rng rng(3);
  const PhiEstimator e(0.10);
  for (int i = 0; i < 10000; ++i) {
    const double f = e.requested_for(1.0, rng);
    ASSERT_LE(f, 10.0 + 1e-9);  // at most 1/phi
  }
}

TEST(PhiEstimator, EmpiricalMeanMatchesClosedForm) {
  util::Rng rng(4);
  const PhiEstimator e(0.10);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += e.requested_for(1.0, rng);
  EXPECT_NEAR(sum / n, e.mean_factor(), 0.02);
  // ln(10)/0.9 ~ 2.558
  EXPECT_NEAR(e.mean_factor(), 2.558, 0.01);
}

TEST(UniformFactorEstimator, RejectsMeanBelowOne) {
  EXPECT_THROW(UniformFactorEstimator(0.9), std::invalid_argument);
}

TEST(UniformFactorEstimator, MeanMatchesPaperValue) {
  util::Rng rng(5);
  const UniformFactorEstimator e;  // paper's 2.16
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += e.requested_for(1.0, rng);
  EXPECT_NEAR(sum / n, 2.16, 0.02);
}

TEST(UniformFactorEstimator, FactorUniformlyBounded) {
  util::Rng rng(6);
  const UniformFactorEstimator e(2.16);
  for (int i = 0; i < 10000; ++i) {
    const double f = e.requested_for(1.0, rng);
    ASSERT_GE(f, 1.0);
    ASSERT_LE(f, 2.0 * 2.16 - 1.0);
  }
}

TEST(ApplyEstimator, RewritesRequestedTimes) {
  util::Rng rng(7);
  JobStream stream(100);
  for (std::size_t i = 0; i < stream.size(); ++i) {
    stream[i].runtime = static_cast<double>(i + 1);
    stream[i].requested_time = stream[i].runtime;
  }
  apply_estimator(stream, UniformFactorEstimator(2.0), rng);
  for (const JobSpec& j : stream) {
    ASSERT_GE(j.requested_time, j.runtime);
    ASSERT_LE(j.requested_time, 3.0 * j.runtime + 1e-9);
  }
}

TEST(MakeEstimator, FactoryNames) {
  EXPECT_EQ(make_estimator("exact")->name(), "exact");
  EXPECT_EQ(make_estimator("phi")->name(), "phi(0.10)");
  EXPECT_EQ(make_estimator("uniform216")->name(), "uniform-factor");
  EXPECT_THROW(make_estimator("bogus"), std::invalid_argument);
}

}  // namespace
}  // namespace rrsim::workload
