#include "rrsim/workload/lublin.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace rrsim::workload {
namespace {

bool is_power_of_two(int n) { return n > 0 && (n & (n - 1)) == 0; }

TEST(LublinParams, DefaultMeanInterarrivalMatchesPaper) {
  const LublinParams p;
  // alpha * beta = 10.23 * 0.4871 ~ 4.98 s ("roughly 5 seconds").
  EXPECT_NEAR(p.mean_interarrival(), 5.0, 0.1);
}

TEST(LublinParams, WithMeanInterarrivalRescales) {
  const LublinParams p = LublinParams{}.with_mean_interarrival(20.0);
  EXPECT_NEAR(p.mean_interarrival(), 20.0, 1e-12);
  EXPECT_DOUBLE_EQ(p.arrival_alpha, 10.23);  // burstiness preserved
}

TEST(LublinParams, RejectsNonPositiveMean) {
  EXPECT_THROW(LublinParams{}.with_mean_interarrival(0.0),
               std::invalid_argument);
}

TEST(LublinModel, RejectsBadConstruction) {
  EXPECT_THROW(LublinModel(LublinParams{}, 0), std::invalid_argument);
  LublinParams bad;
  bad.serial_prob = 1.5;
  EXPECT_THROW(LublinModel(bad, 128), std::invalid_argument);
  LublinParams bad2;
  bad2.min_runtime = 0.0;
  EXPECT_THROW(LublinModel(bad2, 128), std::invalid_argument);
  LublinParams bad3;
  bad3.rt_log_base = 1.0;
  EXPECT_THROW(LublinModel(bad3, 128), std::invalid_argument);
  LublinParams bad4;
  bad4.arrival_beta = -1.0;
  EXPECT_THROW(LublinModel(bad4, 128), std::invalid_argument);
}

TEST(LublinModel, InterarrivalMeanMatchesParams) {
  util::Rng rng(1);
  const LublinModel m(LublinParams{}, 128);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double gap = m.sample_interarrival(rng);
    ASSERT_GT(gap, 0.0);
    sum += gap;
  }
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(LublinModel, NodesWithinClusterBounds) {
  util::Rng rng(2);
  const LublinModel m(LublinParams{}, 128);
  for (int i = 0; i < 50000; ++i) {
    const int nodes = m.sample_nodes(rng);
    ASSERT_GE(nodes, 1);
    ASSERT_LE(nodes, 128);
  }
}

TEST(LublinModel, SerialFractionMatchesModel) {
  util::Rng rng(3);
  const LublinModel m(LublinParams{}, 128);
  int serial = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (m.sample_nodes(rng) == 1) ++serial;
  }
  // serial_prob = 0.244 plus a small contribution from parallel draws
  // rounding down to 1.
  EXPECT_NEAR(static_cast<double>(serial) / n, 0.244, 0.03);
}

TEST(LublinModel, NodeCountsBiasedTowardPowersOfTwo) {
  util::Rng rng(4);
  const LublinModel m(LublinParams{}, 128);
  int pow2 = 0;
  int parallel = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const int nodes = m.sample_nodes(rng);
    if (nodes == 1) continue;
    ++parallel;
    if (is_power_of_two(nodes)) ++pow2;
  }
  // At least pow2_prob of parallel jobs land exactly on powers of two
  // (plus rounding coincidences from the non-snapped branch).
  EXPECT_GT(static_cast<double>(pow2) / parallel, 0.576);
}

TEST(LublinModel, SingleNodeClusterAlwaysSerial) {
  util::Rng rng(5);
  const LublinModel m(LublinParams{}, 1);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(m.sample_nodes(rng), 1);
}

TEST(LublinModel, SmallClusterKeepsStagesOrdered) {
  util::Rng rng(6);
  // log2(4) = 2 < umed_offset cases must not throw and stay in range.
  const LublinModel m(LublinParams{}, 4);
  for (int i = 0; i < 10000; ++i) {
    const int nodes = m.sample_nodes(rng);
    ASSERT_GE(nodes, 1);
    ASSERT_LE(nodes, 4);
  }
}

TEST(LublinModel, RuntimesClamped) {
  util::Rng rng(7);
  LublinParams p;
  p.min_runtime = 10.0;
  p.max_runtime = 1000.0;
  const LublinModel m(p, 128);
  for (int i = 0; i < 20000; ++i) {
    const double rt = m.sample_runtime(rng, 4);
    ASSERT_GE(rt, 10.0);
    ASSERT_LE(rt, 1000.0);
  }
}

TEST(LublinModel, WiderJobsRunLonger) {
  // The mixture probability p decreases with nodes, so the long-runtime
  // class dominates for wide jobs.
  util::Rng rng(8);
  const LublinModel m(LublinParams{}, 128);
  double narrow = 0.0;
  double wide = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) narrow += m.sample_runtime(rng, 1);
  for (int i = 0; i < n; ++i) wide += m.sample_runtime(rng, 128);
  EXPECT_GT(wide / n, 2.0 * narrow / n);
}

TEST(LublinModel, RuntimeDistributionIsBimodal) {
  // Base-2 defaults: short class ~2^4 s, long class ~2^9.4 s. Check both
  // modes are populated for mid-size jobs.
  util::Rng rng(9);
  const LublinModel m(LublinParams{}, 128);
  int shorts = 0;
  int longs = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double rt = m.sample_runtime(rng, 8);
    if (rt < 120.0) ++shorts;
    if (rt > 300.0) ++longs;
  }
  EXPECT_GT(shorts, n / 10);
  EXPECT_GT(longs, n / 10);
}

TEST(LublinModel, LogBaseEGivesHeavierRuntimes) {
  util::Rng rng_a(10);
  util::Rng rng_b(10);
  LublinParams pe;
  pe.rt_log_base = std::exp(1.0);
  const LublinModel m2(LublinParams{}, 128);
  const LublinModel me(pe, 128);
  double sum2 = 0.0;
  double sume = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum2 += m2.sample_runtime(rng_a, 8);
  for (int i = 0; i < n; ++i) sume += me.sample_runtime(rng_b, 8);
  EXPECT_GT(sume, 3.0 * sum2);
}

TEST(LublinModel, StreamIsTimeOrderedWithinHorizon) {
  util::Rng rng(11);
  const LublinModel m(LublinParams{}, 128);
  const JobStream stream = m.generate_stream(rng, 3600.0);
  ASSERT_FALSE(stream.empty());
  double prev = 0.0;
  for (const JobSpec& j : stream) {
    ASSERT_GT(j.submit_time, prev);
    ASSERT_LE(j.submit_time, 3600.0);
    ASSERT_GE(j.nodes, 1);
    ASSERT_GT(j.runtime, 0.0);
    ASSERT_EQ(j.requested_time, j.runtime);  // exact estimates by default
    prev = j.submit_time;
  }
}

TEST(LublinModel, StreamSizeTracksHorizon) {
  util::Rng rng(12);
  const LublinModel m(LublinParams{}, 128);
  const JobStream s1 = m.generate_stream(rng, 3600.0);
  // ~720 jobs expected at 5 s inter-arrival.
  EXPECT_NEAR(static_cast<double>(s1.size()), 720.0, 120.0);
}

TEST(LublinModel, EmptyHorizonGivesEmptyStream) {
  util::Rng rng(13);
  const LublinModel m(LublinParams{}, 128);
  EXPECT_TRUE(m.generate_stream(rng, 0.0).empty());
  EXPECT_THROW(m.generate_stream(rng, -1.0), std::invalid_argument);
}

TEST(LublinModel, MeanWorkEstimatePositiveAndStable) {
  util::Rng rng(14);
  const LublinModel m(LublinParams{}, 128);
  const double w1 = m.estimate_mean_work(rng, 40000);
  const double w2 = m.estimate_mean_work(rng, 40000);
  EXPECT_GT(w1, 0.0);
  EXPECT_NEAR(w1, w2, 0.35 * w1);  // heavy-tailed, but same ballpark
  EXPECT_THROW(m.estimate_mean_work(rng, 0), std::invalid_argument);
}

TEST(LublinModel, DeterministicGivenSeed) {
  const LublinModel m(LublinParams{}, 128);
  util::Rng a(77);
  util::Rng b(77);
  const JobStream s1 = m.generate_stream(a, 1800.0);
  const JobStream s2 = m.generate_stream(b, 1800.0);
  ASSERT_EQ(s1.size(), s2.size());
  for (std::size_t i = 0; i < s1.size(); ++i) {
    ASSERT_EQ(s1[i].submit_time, s2[i].submit_time);
    ASSERT_EQ(s1[i].nodes, s2[i].nodes);
    ASSERT_EQ(s1[i].runtime, s2[i].runtime);
  }
}

}  // namespace
}  // namespace rrsim::workload
