#include "rrsim/workload/swf.h"

#include <gtest/gtest.h>

#include <sstream>

#include "rrsim/util/rng.h"
#include "rrsim/workload/lublin.h"

namespace rrsim::workload {
namespace {

TEST(SwfReader, ParsesMinimalTrace) {
  std::istringstream in(
      "; comment header\n"
      "\n"
      "1 10 5 100 4 -1 -1 4 200 -1 1 -1 -1 -1 -1 -1 -1 -1\n"
      "2 20 0 50 8 -1 -1 8 60 -1 1 -1 -1 -1 -1 -1 -1 -1\n");
  const JobStream s = read_swf(in);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s[0].submit_time, 10.0);
  EXPECT_EQ(s[0].runtime, 100.0);
  EXPECT_EQ(s[0].nodes, 4);
  EXPECT_EQ(s[0].requested_time, 200.0);
  EXPECT_EQ(s[1].nodes, 8);
}

TEST(SwfReader, FallsBackToAllocatedProcs) {
  std::istringstream in("1 0 0 100 16 -1 -1 -1 -1\n");
  const JobStream s = read_swf(in);
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s[0].nodes, 16);
  EXPECT_EQ(s[0].requested_time, 100.0);  // falls back to runtime
}

TEST(SwfReader, SkipsCancelledEntries) {
  std::istringstream in(
      "1 0 0 -1 4 -1 -1 4 100 -1 0 -1 -1 -1 -1 -1 -1 -1\n"
      "2 5 0 50 0 -1 -1 0 100 -1 0 -1 -1 -1 -1 -1 -1 -1\n"
      "3 9 0 50 2 -1 -1 2 100 -1 1 -1 -1 -1 -1 -1 -1 -1\n");
  const JobStream s = read_swf(in);
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s[0].submit_time, 9.0);
}

TEST(SwfReader, SortsBySubmitTime) {
  std::istringstream in(
      "1 30 0 10 1 -1 -1 1 10 -1 1 -1 -1 -1 -1 -1 -1 -1\n"
      "2 10 0 10 1 -1 -1 1 10 -1 1 -1 -1 -1 -1 -1 -1 -1\n");
  const JobStream s = read_swf(in);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_LT(s[0].submit_time, s[1].submit_time);
}

TEST(SwfReader, MalformedLineThrows) {
  std::istringstream in("1 2 3\n");
  EXPECT_THROW(read_swf(in), std::runtime_error);
}

TEST(SwfReader, RequestedTimeNeverBelowRuntime) {
  std::istringstream in("1 0 0 100 4 -1 -1 4 50 -1 1 -1 -1 -1 -1 -1 -1 -1\n");
  const JobStream s = read_swf(in);
  ASSERT_EQ(s.size(), 1u);
  EXPECT_GE(s[0].requested_time, s[0].runtime);
}

TEST(SwfRoundTrip, PreservesJobs) {
  util::Rng rng(5);
  const LublinModel model(LublinParams{}, 64);
  const JobStream original = model.generate_stream(rng, 1800.0);
  ASSERT_FALSE(original.empty());
  std::stringstream buffer;
  write_swf(buffer, original);
  const JobStream restored = read_swf(buffer);
  ASSERT_EQ(restored.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    // Text round trip: compare with tolerance.
    ASSERT_NEAR(restored[i].submit_time, original[i].submit_time, 1e-4);
    ASSERT_EQ(restored[i].nodes, original[i].nodes);
    ASSERT_NEAR(restored[i].runtime, original[i].runtime,
                1e-4 * original[i].runtime + 1e-4);
    ASSERT_NEAR(restored[i].requested_time, original[i].requested_time,
                1e-4 * original[i].requested_time + 1e-4);
  }
}

TEST(SwfWriter, EmitsHeaderWithMaxProcs) {
  JobStream s(1);
  s[0].nodes = 32;
  std::ostringstream out;
  write_swf(out, s);
  EXPECT_NE(out.str().find("MaxProcs: 32"), std::string::npos);
}

TEST(SwfFile, MissingFileThrows) {
  EXPECT_THROW(read_swf_file("/nonexistent/path.swf"), std::runtime_error);
}

}  // namespace
}  // namespace rrsim::workload
