// StreamWindow contract: concatenating windows reproduces
// generate_stream + apply_estimator bit-for-bit regardless of window size,
// seed, or estimator; checkpoints make any window rematerializable in
// isolation; and the argument-validation throws fire.
#include "rrsim/workload/stream_window.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "rrsim/util/rng.h"
#include "rrsim/workload/estimators.h"
#include "rrsim/workload/lublin.h"

namespace rrsim::workload {
namespace {

constexpr int kMaxNodes = 128;
constexpr double kHorizon = 1800.0;  // a few hundred jobs at 5 s spacing

/// The reference the windowed path must match: the eager pipeline exactly
/// as the resolver runs it (whole stream, then the estimator pass).
JobStream materialized(const LublinParams& params, double horizon,
                       std::uint64_t seed, const RuntimeEstimator& est) {
  util::Rng stream_rng(seed);
  util::Rng est_rng(seed + 1000);
  const LublinModel model(params, kMaxNodes);
  JobStream stream = model.generate_stream(stream_rng, horizon);
  apply_estimator(stream, est, est_rng);
  return stream;
}

/// Drains a fresh StreamWindow in `window`-sized pulls.
JobStream windowed(const LublinParams& params, double horizon,
                   std::uint64_t seed, const RuntimeEstimator& est,
                   std::size_t window) {
  StreamWindow gen(params, kMaxNodes, horizon, util::Rng(seed),
                   util::Rng(seed + 1000), est);
  JobStream all;
  JobStream buf;
  while (gen.next(window, buf) > 0) {
    all.insert(all.end(), buf.begin(), buf.end());
  }
  return all;
}

void expect_same_jobs(const JobStream& got, const JobStream& want,
                      std::size_t offset = 0) {
  ASSERT_EQ(got.size(), want.size());  // offset only labels the messages
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i].submit_time, want[i].submit_time) << "job " << i + offset;
    ASSERT_EQ(got[i].nodes, want[i].nodes) << "job " << i + offset;
    ASSERT_EQ(got[i].runtime, want[i].runtime) << "job " << i + offset;
    ASSERT_EQ(got[i].requested_time, want[i].requested_time)
        << "job " << i + offset;
  }
}

TEST(StreamWindow, BitIdenticalToMaterializedAcrossSeedsWindowsEstimators) {
  const LublinParams params;
  for (const char* estimator_name : {"exact", "phi", "uniform216"}) {
    const std::unique_ptr<RuntimeEstimator> est =
        make_estimator(estimator_name);
    for (const std::uint64_t seed : {1ULL, 7ULL, 42ULL}) {
      const JobStream want = materialized(params, kHorizon, seed, *est);
      ASSERT_GT(want.size(), 100u);  // the comparison must have teeth
      // W = 1 (every boundary), small/odd, typical, and W > stream length
      // (single pull) must all concatenate to the same stream.
      for (const std::size_t window :
           {std::size_t{1}, std::size_t{7}, std::size_t{64},
            want.size() + 100}) {
        SCOPED_TRACE(std::string(estimator_name) + " seed=" +
                     std::to_string(seed) + " W=" + std::to_string(window));
        expect_same_jobs(windowed(params, kHorizon, seed, *est, window),
                         want);
      }
    }
  }
}

TEST(StreamWindow, CheckpointSeekMaterializesAnyWindowInIsolation) {
  const LublinParams params;
  const ExactEstimator est;
  const std::uint64_t seed = 11;
  const std::size_t window = 16;
  const JobStream want = materialized(params, kHorizon, seed, est);
  const CheckpointedTrace trace =
      scan_checkpoints(params, kMaxNodes, kHorizon, util::Rng(seed),
                       util::Rng(seed + 1000), est, window);
  EXPECT_EQ(trace.window, window);
  EXPECT_EQ(trace.total_jobs, want.size());
  ASSERT_EQ(trace.checkpoints.size(), (want.size() + window - 1) / window);

  // Rematerialize the windows out of order — each from its checkpoint
  // alone — and compare against the contiguous slice of the reference.
  JobStream buf;
  for (std::size_t k = trace.checkpoints.size(); k-- > 0;) {
    const StreamCheckpoint& at = trace.checkpoints[k];
    EXPECT_EQ(at.job_index, k * window);
    StreamWindow gen(params, kMaxNodes, kHorizon, at, est);
    const std::size_t got = gen.next(window, buf);
    const std::size_t begin = k * window;
    ASSERT_EQ(got, std::min(window, want.size() - begin));
    const JobStream slice(want.begin() + static_cast<std::ptrdiff_t>(begin),
                          want.begin() + static_cast<std::ptrdiff_t>(
                                             begin + got));
    expect_same_jobs(buf, slice, begin);
  }
}

TEST(StreamWindow, ResumedGeneratorContinuesToTheEndOfTheStream) {
  const LublinParams params;
  const ExactEstimator est;
  const JobStream want = materialized(params, kHorizon, 3, est);
  StreamWindow gen(params, kMaxNodes, kHorizon, util::Rng(3),
                   util::Rng(1003), est);
  JobStream buf;
  gen.next(10, buf);  // consume a prefix...
  const StreamCheckpoint mid = gen.checkpoint();
  EXPECT_EQ(mid.job_index, 10u);
  // ...then resume from the captured state and drain the whole suffix.
  StreamWindow resumed(params, kMaxNodes, kHorizon, mid, est);
  JobStream suffix;
  while (resumed.next(1000, buf) > 0) {
    suffix.insert(suffix.end(), buf.begin(), buf.end());
  }
  EXPECT_TRUE(resumed.exhausted());
  EXPECT_EQ(resumed.jobs_emitted(), want.size());
  expect_same_jobs(suffix,
                   JobStream(want.begin() + 10, want.end()), 10);
}

TEST(StreamWindow, EmptyStreamIsExhaustedImmediately) {
  const LublinParams params;
  const ExactEstimator est;
  // Horizon 0: the primed first arrival (> 0) already falls outside.
  StreamWindow gen(params, kMaxNodes, 0.0, util::Rng(5), util::Rng(6), est);
  EXPECT_TRUE(gen.exhausted());
  JobStream buf{JobSpec{}};  // next() must clear stale contents
  EXPECT_EQ(gen.next(8, buf), 0u);
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(gen.jobs_emitted(), 0u);
  const CheckpointedTrace trace = scan_checkpoints(
      params, kMaxNodes, 0.0, util::Rng(5), util::Rng(6), est, 4);
  EXPECT_EQ(trace.total_jobs, 0u);
  EXPECT_TRUE(trace.checkpoints.empty());
}

TEST(StreamWindow, RejectsInvalidArguments) {
  const LublinParams params;
  const ExactEstimator est;
  EXPECT_THROW(StreamWindow(params, kMaxNodes, -1.0, util::Rng(1),
                            util::Rng(2), est),
               std::invalid_argument);
  StreamWindow gen(params, kMaxNodes, 100.0, util::Rng(1), util::Rng(2), est);
  JobStream buf;
  EXPECT_THROW(gen.next(0, buf), std::invalid_argument);
  EXPECT_THROW(scan_checkpoints(params, kMaxNodes, 100.0, util::Rng(1),
                                util::Rng(2), est, 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace rrsim::workload
