#include "rrsim/workload/calibrate.h"

#include <gtest/gtest.h>

namespace rrsim::workload {
namespace {

TEST(Calibrate, RejectsBadUtilization) {
  util::Rng rng(1);
  const LublinModel m(LublinParams{}, 128);
  EXPECT_THROW(interarrival_for_utilization(m, 0.0, rng),
               std::invalid_argument);
  EXPECT_THROW(interarrival_for_utilization(m, -0.5, rng),
               std::invalid_argument);
}

TEST(Calibrate, HigherUtilizationMeansFasterArrivals) {
  util::Rng rng(2);
  const LublinModel m(LublinParams{}, 128);
  const double iat_light = interarrival_for_utilization(m, 0.5, rng, 50000);
  const double iat_heavy = interarrival_for_utilization(m, 1.5, rng, 50000);
  EXPECT_GT(iat_light, iat_heavy);
  EXPECT_NEAR(iat_light / iat_heavy, 3.0, 0.6);  // inversely proportional
}

TEST(Calibrate, ScalesWithMeanWork) {
  // iat = E[work] / (util * nodes): verify the identity directly. (Note
  // bigger clusters draw bigger jobs under the Lublin model, so iat does
  // not simply shrink with cluster size.)
  util::Rng rng_a(3);
  util::Rng rng_b(3);
  const LublinModel m(LublinParams{}, 64);
  const double work = m.estimate_mean_work(rng_a, 20000);
  const double iat = interarrival_for_utilization(m, 0.9, rng_b, 20000);
  EXPECT_NEAR(iat, work / (0.9 * 64.0), 1e-9);
}

TEST(Calibrate, AchievedOfferedLoadNearTarget) {
  util::Rng rng(4);
  const double target = 0.9;
  const LublinParams params =
      calibrate_params(LublinParams{}, 128, target, rng, 100000);
  const LublinModel m(params, 128);
  // Generate a long stream and measure its empirical offered load.
  util::Rng rng2(5);
  const double horizon = 200.0 * 3600.0;
  const JobStream stream = m.generate_stream(rng2, horizon);
  const double load = offered_load(stream, 128, horizon);
  EXPECT_NEAR(load, target, 0.25 * target);  // heavy tails => loose bound
}

TEST(OfferedLoad, EmptyStreamIsZero) {
  EXPECT_EQ(offered_load({}, 128, 100.0), 0.0);
}

TEST(OfferedLoad, HandComputedValue) {
  JobStream s(2);
  s[0].nodes = 4;
  s[0].runtime = 100.0;
  s[1].nodes = 2;
  s[1].runtime = 50.0;
  // work = 400 + 100 = 500 node-seconds over 10 nodes * 50 s = 500.
  EXPECT_DOUBLE_EQ(offered_load(s, 10, 50.0), 1.0);
}

TEST(OfferedLoad, RejectsBadNodes) {
  EXPECT_THROW(offered_load({}, 0, 100.0), std::invalid_argument);
}

}  // namespace
}  // namespace rrsim::workload
