// TraceCache contract: one generation per distinct key, shared snapshots
// on hits, generate-every-time when disabled, bitwise key sensitivity,
// checkpoint-table entries alongside streams, and least-recently-used
// eviction under a byte budget (hits refresh recency).
#include "rrsim/workload/trace_cache.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace rrsim::workload {
namespace {

TraceKey key_with(std::uint64_t stream_state, double mean_factor = 1.0) {
  TraceKey k;
  k.max_nodes = 128;
  k.horizon = 3600.0;
  k.stream_rng = {stream_state, 1442695040888963407ULL};
  k.est_rng = {7, 11};
  k.estimator_name = "exact";
  k.estimator_mean_factor = mean_factor;
  return k;
}

JobStream make_stream(int jobs) {
  JobStream s;
  for (int i = 0; i < jobs; ++i) {
    JobSpec spec;
    spec.submit_time = static_cast<double>(i);
    s.push_back(spec);
  }
  return s;
}

TEST(TraceCache, GeneratesOncePerKeyAndSharesTheSnapshot) {
  TraceCache cache;
  int generations = 0;
  const auto gen = [&generations] {
    ++generations;
    return make_stream(3);
  };
  const auto a = cache.get_or_generate(key_with(1), gen);
  const auto b = cache.get_or_generate(key_with(1), gen);
  EXPECT_EQ(generations, 1);
  EXPECT_EQ(a.get(), b.get());  // same buffer, not an equal copy
  EXPECT_EQ(a->size(), 3u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_EQ(cache.resident_bytes(), 3 * sizeof(JobSpec));
}

TEST(TraceCache, DisabledModeGeneratesEveryTimeAndPublishesNothing) {
  TraceCache cache;
  cache.set_enabled(false);
  EXPECT_FALSE(cache.enabled());
  int generations = 0;
  const auto gen = [&generations] {
    ++generations;
    return make_stream(1);
  };
  const auto a = cache.get_or_generate(key_with(1), gen);
  const auto b = cache.get_or_generate(key_with(1), gen);
  EXPECT_EQ(generations, 2);
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 2u);  // counts what memoization would absorb

  cache.set_enabled(true);
  cache.get_or_generate(key_with(1), gen);
  EXPECT_EQ(generations, 3);  // nothing was published while disabled
  EXPECT_EQ(cache.entries(), 1u);
}

TEST(TraceCache, KeysAreBitwiseSensitive) {
  TraceCache cache;
  int generations = 0;
  const auto gen = [&generations] {
    ++generations;
    return make_stream(1);
  };
  cache.get_or_generate(key_with(1), gen);
  // A different Rng fingerprint is a different trace.
  cache.get_or_generate(key_with(2), gen);
  // Same estimator name, different mean factor (UniformFactorEstimator's
  // name does not encode its parameter) — must not collide.
  cache.get_or_generate(key_with(1, 2.16), gen);
  EXPECT_EQ(generations, 3);
  EXPECT_EQ(cache.entries(), 3u);
  // And the originals still hit.
  cache.get_or_generate(key_with(1), gen);
  cache.get_or_generate(key_with(1, 2.16), gen);
  EXPECT_EQ(generations, 3);
  EXPECT_EQ(cache.hits(), 2u);
}

TEST(TraceCache, ClearDropsEntriesAndZeroesCounters) {
  TraceCache cache;
  cache.get_or_generate(key_with(1), [] { return make_stream(2); });
  cache.get_or_generate(key_with(1), [] { return make_stream(2); });
  cache.clear();
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
  EXPECT_EQ(cache.resident_bytes(), 0u);
  int generations = 0;
  cache.get_or_generate(key_with(1), [&generations] {
    ++generations;
    return make_stream(2);
  });
  EXPECT_EQ(generations, 1);  // the cleared entry is really gone
}

TEST(TraceCache, ByteBudgetEvictsOldestFirst) {
  TraceCache cache;
  cache.set_byte_budget(2 * sizeof(JobSpec));
  int generations = 0;
  const auto gen = [&generations] {
    ++generations;
    return make_stream(1);
  };
  cache.get_or_generate(key_with(1), gen);
  cache.get_or_generate(key_with(2), gen);
  EXPECT_EQ(cache.entries(), 2u);
  cache.get_or_generate(key_with(3), gen);  // evicts key 1 (oldest)
  EXPECT_EQ(cache.entries(), 2u);
  EXPECT_EQ(cache.resident_bytes(), 2 * sizeof(JobSpec));
  cache.get_or_generate(key_with(3), gen);  // newest still resident
  cache.get_or_generate(key_with(2), gen);
  EXPECT_EQ(generations, 3);
  cache.get_or_generate(key_with(1), gen);  // evicted: regenerates
  EXPECT_EQ(generations, 4);
}

TEST(TraceCache, HitsRefreshRecencySoEvictionIsGenuinelyLru) {
  TraceCache cache;
  cache.set_byte_budget(2 * sizeof(JobSpec));
  int generations = 0;
  const auto gen = [&generations] {
    ++generations;
    return make_stream(1);
  };
  cache.get_or_generate(key_with(1), gen);
  cache.get_or_generate(key_with(2), gen);
  cache.get_or_generate(key_with(1), gen);  // hit: key 1 is now the newest
  cache.get_or_generate(key_with(3), gen);  // evicts key 2, not key 1
  EXPECT_EQ(generations, 3);
  cache.get_or_generate(key_with(1), gen);  // still resident
  EXPECT_EQ(generations, 3);
  cache.get_or_generate(key_with(2), gen);  // the real victim: regenerates
  EXPECT_EQ(generations, 4);
}

TEST(TraceCache, CheckpointTablesAreCachedPerKeyAndWindow) {
  TraceCache cache;
  int builds = 0;
  const auto build = [&builds] {
    ++builds;
    CheckpointedTrace t;
    t.window = 8;
    t.total_jobs = 20;
    t.checkpoints.resize(3);
    return t;
  };
  const auto a = cache.get_or_build_checkpoints(key_with(1), 8, build);
  const auto b = cache.get_or_build_checkpoints(key_with(1), 8, build);
  EXPECT_EQ(builds, 1);
  EXPECT_EQ(a.get(), b.get());  // shared snapshot, not an equal copy
  EXPECT_EQ(cache.checkpoint_hits(), 1u);
  EXPECT_EQ(cache.checkpoint_misses(), 1u);
  // Stream counters are untouched by checkpoint traffic and vice versa.
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
  // A different window of the same trace is a different table.
  cache.get_or_build_checkpoints(key_with(1), 16, build);
  EXPECT_EQ(builds, 2);
  // And a checkpoint entry never collides with the stream entry for the
  // same trace key.
  int generations = 0;
  cache.get_or_generate(key_with(1), [&generations] {
    ++generations;
    return make_stream(1);
  });
  EXPECT_EQ(generations, 1);
  EXPECT_EQ(cache.entries(), 3u);
  EXPECT_THROW(cache.get_or_build_checkpoints(key_with(1), 0, build),
               std::invalid_argument);
}

TEST(TraceCache, DisabledModeCountsCheckpointMissesWithoutPublishing) {
  TraceCache cache;
  cache.set_enabled(false);
  int builds = 0;
  const auto build = [&builds] {
    ++builds;
    return CheckpointedTrace{};
  };
  cache.get_or_build_checkpoints(key_with(1), 8, build);
  cache.get_or_build_checkpoints(key_with(1), 8, build);
  EXPECT_EQ(builds, 2);
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.checkpoint_misses(), 2u);
  EXPECT_EQ(cache.checkpoint_hits(), 0u);
}

TEST(TraceCache, ByteBudgetEvictsAcrossEntryKinds) {
  TraceCache cache;
  // Room for one 2-job stream plus a little; a checkpoint table then
  // pushes the older stream out.
  cache.set_byte_budget(2 * sizeof(JobSpec) +
                        2 * sizeof(StreamCheckpoint));
  int generations = 0;
  const auto gen = [&generations] {
    ++generations;
    return make_stream(2);
  };
  cache.get_or_generate(key_with(1), gen);
  const auto build = [] {
    CheckpointedTrace t;
    t.window = 4;
    t.checkpoints.resize(2);
    t.checkpoints.shrink_to_fit();
    return t;
  };
  cache.get_or_build_checkpoints(key_with(2), 4, build);
  cache.get_or_generate(key_with(3), gen);  // evicts until under budget
  EXPECT_LE(cache.resident_bytes(),
            2 * sizeof(JobSpec) + 2 * sizeof(StreamCheckpoint));
  // The oldest entry (stream 1) is gone; the newest (stream 3) survived.
  cache.get_or_generate(key_with(3), gen);
  EXPECT_EQ(generations, 2);
  cache.get_or_generate(key_with(1), gen);
  EXPECT_EQ(generations, 3);
}

TEST(TraceCache, ClearZeroesCheckpointCounters) {
  TraceCache cache;
  cache.get_or_build_checkpoints(key_with(1), 8,
                                 [] { return CheckpointedTrace{}; });
  cache.get_or_build_checkpoints(key_with(1), 8,
                                 [] { return CheckpointedTrace{}; });
  cache.clear();
  EXPECT_EQ(cache.checkpoint_hits(), 0u);
  EXPECT_EQ(cache.checkpoint_misses(), 0u);
  EXPECT_EQ(cache.entries(), 0u);
}

DrawSegmentKey draw_key_with(std::uint64_t users_state,
                             std::uint64_t count = 100) {
  DrawSegmentKey k;
  k.users_start = {users_state, 3};
  k.redundancy_start = {5, 7};
  k.count = count;
  k.users_per_cluster = 8;
  k.scheme_active = true;
  return k;
}

TEST(TraceCache, DrawSegmentsAreMemoizedPerKey) {
  TraceCache cache;
  int advances = 0;
  const auto advance = [&advances] {
    ++advances;
    DrawSegment s;
    s.users_end = {11, 3};
    s.redundancy_end = {13, 7};
    return s;
  };
  const DrawSegment a = cache.get_or_advance_draws(draw_key_with(1), advance);
  const DrawSegment b = cache.get_or_advance_draws(draw_key_with(1), advance);
  EXPECT_EQ(advances, 1);
  EXPECT_EQ(a.users_end, b.users_end);
  EXPECT_EQ(a.redundancy_end, b.redundancy_end);
  EXPECT_EQ(b.users_end, (std::pair<std::uint64_t, std::uint64_t>{11, 3}));
  EXPECT_EQ(cache.draw_hits(), 1u);
  EXPECT_EQ(cache.draw_misses(), 1u);
  // Draw traffic touches neither the stream nor the checkpoint counters.
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.checkpoint_hits(), 0u);
  // Every key field is significant: a different start state, count,
  // user-count, or scheme activeness is a different segment.
  cache.get_or_advance_draws(draw_key_with(2), advance);
  cache.get_or_advance_draws(draw_key_with(1, 101), advance);
  DrawSegmentKey inactive = draw_key_with(1);
  inactive.scheme_active = false;
  cache.get_or_advance_draws(inactive, advance);
  DrawSegmentKey more_users = draw_key_with(1);
  more_users.users_per_cluster = 9;
  cache.get_or_advance_draws(more_users, advance);
  EXPECT_EQ(advances, 5);
  EXPECT_EQ(cache.entries(), 5u);

  cache.clear();
  EXPECT_EQ(cache.draw_hits(), 0u);
  EXPECT_EQ(cache.draw_misses(), 0u);
}

TEST(TraceCache, DisabledModeAdvancesDrawsEveryTimeWithoutPublishing) {
  TraceCache cache;
  cache.set_enabled(false);
  int advances = 0;
  const auto advance = [&advances] {
    ++advances;
    return DrawSegment{};
  };
  cache.get_or_advance_draws(draw_key_with(1), advance);
  cache.get_or_advance_draws(draw_key_with(1), advance);
  EXPECT_EQ(advances, 2);
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.draw_misses(), 2u);
  EXPECT_EQ(cache.draw_hits(), 0u);
}

TEST(TraceCache, FreshEntryLargerThanBudgetIsEvictedYetStillReturned) {
  // Regression: with a budget smaller than a single payload, insertion
  // evicts the just-inserted entry itself. The returned snapshot must be
  // the caller-held payload, not a reference into the erased map node
  // (which was a use-after-free).
  TraceCache cache;
  cache.set_byte_budget(1);
  const auto held =
      cache.get_or_generate(key_with(1), [] { return make_stream(4); });
  ASSERT_NE(held, nullptr);
  EXPECT_EQ(held->size(), 4u);
  EXPECT_EQ(cache.entries(), 0u);  // the fresh entry itself was evicted
  EXPECT_EQ(cache.resident_bytes(), 0u);
  const auto table = cache.get_or_build_checkpoints(key_with(2), 8, [] {
    CheckpointedTrace t;
    t.window = 8;
    t.total_jobs = 20;
    t.checkpoints.resize(3);
    return t;
  });
  ASSERT_NE(table, nullptr);
  EXPECT_EQ(table->total_jobs, 20u);
  EXPECT_EQ(cache.entries(), 0u);
}

TEST(TraceCache, LiveConsumersSurviveEviction) {
  TraceCache cache;
  cache.set_byte_budget(sizeof(JobSpec));
  const auto held =
      cache.get_or_generate(key_with(1), [] { return make_stream(1); });
  cache.get_or_generate(key_with(2), [] { return make_stream(1); });
  EXPECT_EQ(cache.entries(), 1u);  // key 1 evicted...
  EXPECT_EQ(held->size(), 1u);     // ...but the held snapshot stays valid
}

}  // namespace
}  // namespace rrsim::workload
