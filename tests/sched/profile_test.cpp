#include "rrsim/sched/profile.h"

#include <gtest/gtest.h>

#include "rrsim/util/rng.h"

namespace rrsim::sched {
namespace {

TEST(Profile, StartsFullyFree) {
  const Profile p(64);
  EXPECT_EQ(p.total_nodes(), 64);
  EXPECT_EQ(p.free_at(0.0), 64);
  EXPECT_EQ(p.free_at(1e9), 64);
}

TEST(Profile, RejectsBadConstruction) {
  EXPECT_THROW(Profile(0), std::invalid_argument);
  EXPECT_THROW(Profile(-5), std::invalid_argument);
}

TEST(Profile, ReserveCreatesStep) {
  Profile p(10);
  p.reserve(5.0, 10.0, 4);
  EXPECT_EQ(p.free_at(0.0), 10);
  EXPECT_EQ(p.free_at(5.0), 6);
  EXPECT_EQ(p.free_at(14.999), 6);
  EXPECT_EQ(p.free_at(15.0), 10);
}

TEST(Profile, OverlappingReservationsStack) {
  Profile p(10);
  p.reserve(0.0, 10.0, 3);
  p.reserve(5.0, 10.0, 3);
  EXPECT_EQ(p.free_at(2.0), 7);
  EXPECT_EQ(p.free_at(7.0), 4);
  EXPECT_EQ(p.free_at(12.0), 7);
  EXPECT_EQ(p.free_at(20.0), 10);
}

TEST(Profile, ReserveRejectsOverCapacity) {
  Profile p(4);
  p.reserve(0.0, 10.0, 3);
  EXPECT_THROW(p.reserve(5.0, 2.0, 2), std::logic_error);
}

TEST(Profile, ReserveRejectsBadArguments) {
  Profile p(4);
  EXPECT_THROW(p.reserve(-1.0, 1.0, 1), std::invalid_argument);
  EXPECT_THROW(p.reserve(0.0, 0.0, 1), std::invalid_argument);
  EXPECT_THROW(p.reserve(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Profile, MinFreeOverWindow) {
  Profile p(10);
  p.reserve(5.0, 5.0, 6);
  EXPECT_EQ(p.min_free(0.0, 5.0), 10);   // window ends as dip begins
  EXPECT_EQ(p.min_free(0.0, 6.0), 4);    // window overlaps the dip
  EXPECT_EQ(p.min_free(6.0, 2.0), 4);    // inside the dip
  EXPECT_EQ(p.min_free(10.0, 5.0), 10);  // after release
}

TEST(Profile, EarliestStartImmediateWhenFree) {
  Profile p(8);
  EXPECT_EQ(p.earliest_start(0.0, 8, 100.0), 0.0);
  EXPECT_EQ(p.earliest_start(42.0, 1, 1.0), 42.0);
}

TEST(Profile, EarliestStartWaitsForRelease) {
  Profile p(8);
  p.reserve(0.0, 50.0, 8);
  EXPECT_EQ(p.earliest_start(0.0, 1, 10.0), 50.0);
}

TEST(Profile, EarliestStartFindsGapBetweenReservations) {
  Profile p(8);
  p.reserve(0.0, 10.0, 8);
  p.reserve(30.0, 10.0, 8);
  // A 20-second job fits exactly in the [10, 30) gap.
  EXPECT_EQ(p.earliest_start(0.0, 8, 20.0), 10.0);
  // A 21-second job does not; it must wait until 40.
  EXPECT_EQ(p.earliest_start(0.0, 8, 21.0), 40.0);
}

TEST(Profile, EarliestStartSkipsTooSmallGap) {
  Profile p(8);
  p.reserve(0.0, 10.0, 4);   // 4 free until 10
  p.reserve(10.0, 10.0, 8);  // 0 free in [10, 20)
  // 5 nodes for 15 s cannot use [0,10) (only 4 free) nor span [10,20).
  EXPECT_EQ(p.earliest_start(0.0, 5, 15.0), 20.0);
}

TEST(Profile, EarliestStartRespectsFromInsideSegment) {
  Profile p(8);
  p.reserve(20.0, 10.0, 8);
  EXPECT_EQ(p.earliest_start(5.0, 8, 15.0), 5.0);
  EXPECT_EQ(p.earliest_start(6.0, 8, 15.0), 30.0);  // would hit the wall
}

TEST(Profile, EarliestStartRejectsBadArguments) {
  Profile p(8);
  EXPECT_THROW(p.earliest_start(0.0, 0, 1.0), std::invalid_argument);
  EXPECT_THROW(p.earliest_start(0.0, 9, 1.0), std::invalid_argument);
  EXPECT_THROW(p.earliest_start(0.0, 1, 0.0), std::invalid_argument);
}

TEST(Profile, ReserveAtEarliestStartNeverThrows_Property) {
  // Property: for any reservation pattern, reserving at the time
  // earliest_start returns is always feasible.
  util::Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    Profile p(16);
    for (int i = 0; i < 30; ++i) {
      const int nodes = static_cast<int>(rng.between(1, 16));
      const double duration = rng.uniform(0.5, 50.0);
      const double from = rng.uniform(0.0, 100.0);
      const Time start = p.earliest_start(from, nodes, duration);
      ASSERT_GE(start, from);
      ASSERT_GE(p.min_free(start, duration), nodes);
      ASSERT_NO_THROW(p.reserve(start, duration, nodes));
    }
    // Capacity is never negative anywhere.
    for (const auto& [t, free] : p.steps()) {
      ASSERT_GE(free, 0);
      ASSERT_LE(free, 16);
    }
    // The final segment always returns to full capacity.
    ASSERT_EQ(p.steps().back().second, 16);
  }
}

TEST(Profile, EarliestStartIsEarliest_Property) {
  // Property: no feasible start strictly earlier than the returned one
  // exists at any breakpoint or at `from` itself.
  util::Rng rng(8);
  for (int trial = 0; trial < 100; ++trial) {
    Profile p(8);
    for (int i = 0; i < 10; ++i) {
      const int nodes = static_cast<int>(rng.between(1, 8));
      const double duration = rng.uniform(1.0, 20.0);
      const Time start = p.earliest_start(0.0, nodes, duration);
      p.reserve(start, duration, nodes);
    }
    const int nodes = static_cast<int>(rng.between(1, 8));
    const double duration = rng.uniform(1.0, 20.0);
    const Time start = p.earliest_start(0.0, nodes, duration);
    // Check candidate times strictly before `start`.
    if (p.min_free(0.0, duration) >= nodes) {
      ASSERT_EQ(start, 0.0);
    }
    for (const auto& [t, free] : p.steps()) {
      if (t >= start) break;
      ASSERT_LT(p.min_free(t, duration), nodes)
          << "found earlier feasible anchor at " << t;
    }
  }
}

}  // namespace
}  // namespace rrsim::sched
