#include "rrsim/sched/profile.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "rrsim/util/rng.h"

namespace rrsim::sched {
namespace {

TEST(Profile, StartsFullyFree) {
  const Profile p(64);
  EXPECT_EQ(p.total_nodes(), 64);
  EXPECT_EQ(p.free_at(0.0), 64);
  EXPECT_EQ(p.free_at(1e9), 64);
}

TEST(Profile, RejectsBadConstruction) {
  EXPECT_THROW(Profile(0), std::invalid_argument);
  EXPECT_THROW(Profile(-5), std::invalid_argument);
}

TEST(Profile, ReserveCreatesStep) {
  Profile p(10);
  p.reserve(5.0, 10.0, 4);
  EXPECT_EQ(p.free_at(0.0), 10);
  EXPECT_EQ(p.free_at(5.0), 6);
  EXPECT_EQ(p.free_at(14.999), 6);
  EXPECT_EQ(p.free_at(15.0), 10);
}

TEST(Profile, OverlappingReservationsStack) {
  Profile p(10);
  p.reserve(0.0, 10.0, 3);
  p.reserve(5.0, 10.0, 3);
  EXPECT_EQ(p.free_at(2.0), 7);
  EXPECT_EQ(p.free_at(7.0), 4);
  EXPECT_EQ(p.free_at(12.0), 7);
  EXPECT_EQ(p.free_at(20.0), 10);
}

TEST(Profile, ReserveRejectsOverCapacity) {
  Profile p(4);
  p.reserve(0.0, 10.0, 3);
  EXPECT_THROW(p.reserve(5.0, 2.0, 2), std::logic_error);
}

TEST(Profile, ReserveRejectsBadArguments) {
  Profile p(4);
  EXPECT_THROW(p.reserve(-1.0, 1.0, 1), std::invalid_argument);
  EXPECT_THROW(p.reserve(0.0, 0.0, 1), std::invalid_argument);
  EXPECT_THROW(p.reserve(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Profile, MinFreeOverWindow) {
  Profile p(10);
  p.reserve(5.0, 5.0, 6);
  EXPECT_EQ(p.min_free(0.0, 5.0), 10);   // window ends as dip begins
  EXPECT_EQ(p.min_free(0.0, 6.0), 4);    // window overlaps the dip
  EXPECT_EQ(p.min_free(6.0, 2.0), 4);    // inside the dip
  EXPECT_EQ(p.min_free(10.0, 5.0), 10);  // after release
}

TEST(Profile, EarliestStartImmediateWhenFree) {
  Profile p(8);
  EXPECT_EQ(p.earliest_start(0.0, 8, 100.0), 0.0);
  EXPECT_EQ(p.earliest_start(42.0, 1, 1.0), 42.0);
}

TEST(Profile, EarliestStartWaitsForRelease) {
  Profile p(8);
  p.reserve(0.0, 50.0, 8);
  EXPECT_EQ(p.earliest_start(0.0, 1, 10.0), 50.0);
}

TEST(Profile, EarliestStartFindsGapBetweenReservations) {
  Profile p(8);
  p.reserve(0.0, 10.0, 8);
  p.reserve(30.0, 10.0, 8);
  // A 20-second job fits exactly in the [10, 30) gap.
  EXPECT_EQ(p.earliest_start(0.0, 8, 20.0), 10.0);
  // A 21-second job does not; it must wait until 40.
  EXPECT_EQ(p.earliest_start(0.0, 8, 21.0), 40.0);
}

TEST(Profile, EarliestStartSkipsTooSmallGap) {
  Profile p(8);
  p.reserve(0.0, 10.0, 4);   // 4 free until 10
  p.reserve(10.0, 10.0, 8);  // 0 free in [10, 20)
  // 5 nodes for 15 s cannot use [0,10) (only 4 free) nor span [10,20).
  EXPECT_EQ(p.earliest_start(0.0, 5, 15.0), 20.0);
}

TEST(Profile, EarliestStartRespectsFromInsideSegment) {
  Profile p(8);
  p.reserve(20.0, 10.0, 8);
  EXPECT_EQ(p.earliest_start(5.0, 8, 15.0), 5.0);
  EXPECT_EQ(p.earliest_start(6.0, 8, 15.0), 30.0);  // would hit the wall
}

TEST(Profile, EarliestStartRejectsBadArguments) {
  Profile p(8);
  EXPECT_THROW(p.earliest_start(0.0, 0, 1.0), std::invalid_argument);
  EXPECT_THROW(p.earliest_start(0.0, 9, 1.0), std::invalid_argument);
  EXPECT_THROW(p.earliest_start(0.0, 1, 0.0), std::invalid_argument);
}

TEST(Profile, ReserveAtEarliestStartNeverThrows_Property) {
  // Property: for any reservation pattern, reserving at the time
  // earliest_start returns is always feasible.
  util::Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    Profile p(16);
    for (int i = 0; i < 30; ++i) {
      const int nodes = static_cast<int>(rng.between(1, 16));
      const double duration = rng.uniform(0.5, 50.0);
      const double from = rng.uniform(0.0, 100.0);
      const Time start = p.earliest_start(from, nodes, duration);
      ASSERT_GE(start, from);
      ASSERT_GE(p.min_free(start, duration), nodes);
      ASSERT_NO_THROW(p.reserve(start, duration, nodes));
    }
    // Capacity is never negative anywhere.
    for (const auto& [t, free] : p.steps()) {
      ASSERT_GE(free, 0);
      ASSERT_LE(free, 16);
    }
    // The final segment always returns to full capacity.
    ASSERT_EQ(p.steps().back().second, 16);
  }
}

TEST(Profile, EarliestStartIsEarliest_Property) {
  // Property: no feasible start strictly earlier than the returned one
  // exists at any breakpoint or at `from` itself.
  util::Rng rng(8);
  for (int trial = 0; trial < 100; ++trial) {
    Profile p(8);
    for (int i = 0; i < 10; ++i) {
      const int nodes = static_cast<int>(rng.between(1, 8));
      const double duration = rng.uniform(1.0, 20.0);
      const Time start = p.earliest_start(0.0, nodes, duration);
      p.reserve(start, duration, nodes);
    }
    const int nodes = static_cast<int>(rng.between(1, 8));
    const double duration = rng.uniform(1.0, 20.0);
    const Time start = p.earliest_start(0.0, nodes, duration);
    // Check candidate times strictly before `start`.
    if (p.min_free(0.0, duration) >= nodes) {
      ASSERT_EQ(start, 0.0);
    }
    for (const auto& [t, free] : p.steps()) {
      if (t >= start) break;
      ASSERT_LT(p.min_free(t, duration), nodes)
          << "found earlier feasible anchor at " << t;
    }
  }
}

TEST(Profile, ReleaseIsExactInverseOfReserve) {
  Profile p(10);
  p.reserve(0.0, 20.0, 3);
  p.reserve(5.0, 10.0, 4);
  const auto before = p.steps();
  p.reserve(7.5, 4.0, 2);
  p.release(7.5, 4.0, 2);
  EXPECT_EQ(p.steps(), before);  // breakpoints restored bit-exactly
}

TEST(Profile, ReleaseCoalescesAdjacentEqualLevels) {
  Profile p(10);
  p.reserve(5.0, 10.0, 4);
  p.release(5.0, 10.0, 4);
  // Back to a single fully-free segment: no leftover breakpoints.
  ASSERT_EQ(p.steps().size(), 1u);
  EXPECT_EQ(p.steps().front(), (std::pair<Time, int>{0.0, 10}));
}

TEST(Profile, ReleaseRejectsUnmatchedAndLeavesProfileUntouched) {
  Profile p(10);
  p.reserve(0.0, 10.0, 3);
  const auto before = p.steps();
  // [5, 15) is only covered by a reservation on [5, 10): releasing 3
  // nodes over the whole window would push [10, 15) above capacity.
  EXPECT_THROW(p.release(5.0, 10.0, 3), std::logic_error);
  EXPECT_EQ(p.steps(), before);
  EXPECT_THROW(p.release(-1.0, 1.0, 1), std::invalid_argument);
  EXPECT_THROW(p.release(0.0, 0.0, 1), std::invalid_argument);
  EXPECT_THROW(p.release(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Profile, ReserveRejectsOverCapacityAndLeavesProfileUntouched) {
  Profile p(4);
  p.reserve(0.0, 10.0, 3);
  const auto before = p.steps();
  EXPECT_THROW(p.reserve(5.0, 10.0, 2), std::logic_error);
  EXPECT_EQ(p.steps(), before);
}

TEST(Profile, ReleaseUntilHitsExactEndBreakpoint) {
  Profile p(8);
  const Time start = 0.1;
  const Time duration = 0.2;
  p.reserve(start, duration, 5);
  // 0.1 + 0.2 is not representable; the breakpoint sits at the rounded
  // sum. Releasing the tail from mid-interval must erase it exactly.
  const Time end = start + duration;
  p.release_until(0.15, end, 5);
  p.release_until(start, 0.15, 5);
  ASSERT_EQ(p.steps().size(), 1u);
  EXPECT_EQ(p.free_at(0.2), 8);
}

TEST(Profile, ResetRestoresFullyFree) {
  Profile p(6);
  p.reserve(1.0, 2.0, 3);
  p.reserve(10.0, 5.0, 6);
  p.reset();
  ASSERT_EQ(p.steps().size(), 1u);
  EXPECT_EQ(p.free_at(0.0), 6);
  EXPECT_EQ(p.total_nodes(), 6);
}

TEST(Profile, PruneBeforePreservesTheFutureFunction) {
  Profile p(8);
  p.reserve(0.0, 10.0, 8);   // expired by t=20
  p.reserve(15.0, 10.0, 4);  // active at t=20
  p.reserve(30.0, 10.0, 6);
  const Profile copy = p;
  p.prune_before(20.0);
  EXPECT_LT(p.steps().size(), copy.steps().size());
  for (double t : {20.0, 24.999, 25.0, 30.0, 39.0, 40.0, 100.0}) {
    EXPECT_EQ(p.free_at(t), copy.free_at(t)) << "t=" << t;
  }
  // The result-defining anchors survive with their exact values.
  EXPECT_EQ(p.earliest_start(20.0, 6, 5.0), copy.earliest_start(20.0, 6, 5.0));
  EXPECT_EQ(p.earliest_start(20.0, 8, 1.0), copy.earliest_start(20.0, 8, 1.0));
  EXPECT_TRUE(p.future_equals(copy, 20.0));
}

TEST(Profile, FutureEqualsDiscriminates) {
  Profile a(8);
  Profile b(8);
  a.reserve(10.0, 5.0, 3);
  b.reserve(10.0, 5.0, 3);
  EXPECT_TRUE(a.future_equals(b, 0.0));
  b.reserve(20.0, 1.0, 1);
  EXPECT_FALSE(a.future_equals(b, 0.0));
  EXPECT_TRUE(a.future_equals(b, 21.0));  // past differences invisible
}

TEST(Profile, CanonicalAfterRandomReserveRelease_Property) {
  // Property: after any interleaving of reserves and exact releases, the
  // representation stays canonical (no adjacent equal levels) and the
  // capacity function matches a brute-force per-unit-time oracle.
  // Integer-valued times keep the oracle's unit sampling exact.
  constexpr int kTotal = 12;
  constexpr int kHorizon = 200;
  util::Rng rng(21);
  for (int trial = 0; trial < 50; ++trial) {
    Profile p(kTotal);
    std::vector<int> oracle(kHorizon, kTotal);  // free nodes per unit slot
    struct Res {
      Time start, duration;
      int nodes;
    };
    std::vector<Res> active;
    for (int op = 0; op < 120; ++op) {
      const bool do_release = !active.empty() && rng.chance(0.4);
      if (do_release) {
        const std::size_t k = rng.below(active.size());
        const Res r = active[k];
        active.erase(active.begin() + static_cast<std::ptrdiff_t>(k));
        ASSERT_NO_THROW(p.release(r.start, r.duration, r.nodes));
        for (int t = static_cast<int>(r.start);
             t < static_cast<int>(r.start + r.duration); ++t) {
          oracle[static_cast<std::size_t>(t)] += r.nodes;
        }
      } else {
        const Res r{static_cast<Time>(rng.between(0, 150)),
                    static_cast<Time>(rng.between(1, 40)),
                    static_cast<int>(rng.between(1, kTotal))};
        const int end = static_cast<int>(r.start + r.duration);
        const int window_min = *std::min_element(
            oracle.begin() + static_cast<int>(r.start), oracle.begin() + end);
        if (window_min < r.nodes) {
          ASSERT_THROW(p.reserve(r.start, r.duration, r.nodes),
                       std::logic_error);
          continue;
        }
        ASSERT_NO_THROW(p.reserve(r.start, r.duration, r.nodes));
        active.push_back(r);
        for (int t = static_cast<int>(r.start); t < end; ++t) {
          oracle[static_cast<std::size_t>(t)] -= r.nodes;
        }
      }
      // Canonical: strictly increasing times, no adjacent equal levels.
      const auto& steps = p.steps();
      for (std::size_t i = 1; i < steps.size(); ++i) {
        ASSERT_LT(steps[i - 1].first, steps[i].first);
        ASSERT_NE(steps[i - 1].second, steps[i].second);
      }
      // Function matches the oracle at every unit-slot midpoint.
      for (int t = 0; t < kHorizon; ++t) {
        ASSERT_EQ(p.free_at(t + 0.5), oracle[static_cast<std::size_t>(t)])
            << "trial=" << trial << " op=" << op << " t=" << t;
      }
    }
    // Releasing everything returns the profile to a single free segment.
    for (const Res& r : active) p.release(r.start, r.duration, r.nodes);
    ASSERT_EQ(p.steps().size(), 1u);
    ASSERT_EQ(p.steps().front().second, kTotal);
  }
}

TEST(Profile, HintedLookupsMatchBruteForce_Property) {
  // Property: point lookups are hint-independent — interleaving sequential
  // scans with far jumps (which make the hint maximally stale) always
  // matches a from-scratch scan over steps().
  util::Rng rng(22);
  Profile p(16);
  for (int i = 0; i < 40; ++i) {
    const int nodes = static_cast<int>(rng.between(1, 8));
    const double duration = rng.uniform(0.5, 30.0);
    const Time start = p.earliest_start(rng.uniform(0.0, 300.0), nodes,
                                        duration);
    p.reserve(start, duration, nodes);
  }
  const auto& steps = p.steps();
  auto brute = [&](Time t) {
    int level = steps.front().second;
    for (const auto& [bt, free] : steps) {
      if (bt <= t) level = free;
    }
    return level;
  };
  for (int q = 0; q < 2000; ++q) {
    // Alternate short forward steps with uniform jumps.
    const Time t = (q % 3 == 2) ? rng.uniform(0.0, 400.0)
                                : static_cast<Time>(q) * 0.2;
    ASSERT_EQ(p.free_at(t), brute(t)) << "t=" << t;
  }
}

}  // namespace
}  // namespace rrsim::sched
