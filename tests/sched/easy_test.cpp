#include "rrsim/sched/easy.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

namespace rrsim::sched {
namespace {

Job make_job(JobId id, int nodes, Time requested, Time actual = -1.0) {
  Job j;
  j.id = id;
  j.nodes = nodes;
  j.requested_time = requested;
  j.actual_time = actual < 0.0 ? requested : actual;
  return j;
}

struct Recorder {
  std::map<JobId, Time> start_times;
  std::vector<JobId> start_order;

  ClusterScheduler::Callbacks callbacks(des::Simulation& sim) {
    ClusterScheduler::Callbacks cb;
    cb.on_start = [this, &sim](const Job& j) {
      start_times[j.id] = sim.now();
      start_order.push_back(j.id);
    };
    return cb;
  }
};

TEST(Easy, BackfillsShortNarrowJob) {
  des::Simulation sim;
  EasyScheduler sched(sim, 8);
  Recorder rec;
  sched.set_callbacks(rec.callbacks(sim));
  sched.submit(make_job(1, 8, 100.0));  // running, all nodes
  sched.submit(make_job(2, 8, 100.0));  // head: shadow at t=100
  sched.submit(make_job(3, 1, 1.0));    // cannot fit: 0 free nodes
  sim.run_until(0.0);
  EXPECT_EQ(rec.start_order, (std::vector<JobId>{1}));
  sim.run();
  // Job 3 backfills when... nothing is free until 100; at 100 head starts.
  // With exact estimates there is never idle space for 3 before 100, and
  // at 100 job 2 takes everything; 3 runs at 200.
  EXPECT_EQ(rec.start_times[2], 100.0);
  EXPECT_EQ(rec.start_times[3], 200.0);
}

TEST(Easy, BackfillUsesFreeNodesBesideHead) {
  des::Simulation sim;
  EasyScheduler sched(sim, 8);
  Recorder rec;
  sched.set_callbacks(rec.callbacks(sim));
  sched.submit(make_job(1, 6, 100.0));  // running; 2 free
  sched.submit(make_job(2, 8, 50.0));   // head: shadow at 100
  sched.submit(make_job(3, 2, 100.0));  // fits now but would delay head? no:
  // 3 uses the 2 free nodes; at shadow (100) job 1's 6 + these 2 are
  // needed by the head (8). Job 3 would still hold them until 100+? Its
  // requested end is 100 == shadow, so it terminates exactly at the
  // shadow: allowed.
  sim.run_until(0.0);
  EXPECT_EQ(rec.start_times[3], 0.0);
  sim.run();
  EXPECT_EQ(rec.start_times[2], 100.0);
}

TEST(Easy, BackfillRejectedWhenItWouldDelayHead) {
  des::Simulation sim;
  EasyScheduler sched(sim, 8);
  Recorder rec;
  sched.set_callbacks(rec.callbacks(sim));
  sched.submit(make_job(1, 6, 100.0));  // running; 2 free
  sched.submit(make_job(2, 8, 50.0));   // head: shadow 100, extra 0
  sched.submit(make_job(3, 2, 150.0));  // fits now but ends at 150 > 100
  sim.run_until(0.0);
  // Job 3 must NOT start: it would hold 2 of the head's nodes past 100.
  EXPECT_EQ(rec.start_times.count(3), 0u);
  sim.run();
  EXPECT_EQ(rec.start_times[2], 100.0);
  EXPECT_EQ(rec.start_times[3], 150.0);
}

TEST(Easy, BackfillAllowedWithinExtraNodes) {
  des::Simulation sim;
  EasyScheduler sched(sim, 8);
  Recorder rec;
  sched.set_callbacks(rec.callbacks(sim));
  sched.submit(make_job(1, 6, 100.0));  // running; 2 free
  sched.submit(make_job(2, 6, 50.0));   // head: shadow 100, extra = 2
  sched.submit(make_job(3, 2, 500.0));  // long, but fits in the extra
  sim.run_until(0.0);
  EXPECT_EQ(rec.start_times[3], 0.0);  // allowed: head keeps its 6 at 100
  sim.run();
  EXPECT_EQ(rec.start_times[2], 100.0);
}

TEST(Easy, HeadNeverDelayedBeyondInitialShadow_Property) {
  // The EASY guarantee: once a job is at the queue head with shadow time
  // S, it starts at or before S (with exact runtime estimates).
  des::Simulation sim;
  EasyScheduler sched(sim, 8);
  Recorder rec;
  sched.set_callbacks(rec.callbacks(sim));
  sched.submit(make_job(1, 5, 80.0));
  sched.submit(make_job(2, 4, 60.0));  // head once submitted
  const auto shadow = sched.head_shadow_time();
  ASSERT_TRUE(shadow.has_value());
  // Pile on backfill candidates.
  JobId id = 10;
  for (int i = 0; i < 20; ++i) {
    sched.submit(make_job(id++, 3, 10.0));
    sched.submit(make_job(id++, 1, 200.0));
  }
  sim.run();
  EXPECT_LE(rec.start_times[2], *shadow);
}

TEST(Easy, ShadowTimeReporting) {
  des::Simulation sim;
  EasyScheduler sched(sim, 8);
  EXPECT_FALSE(sched.head_shadow_time().has_value());
  sched.submit(make_job(1, 8, 100.0));
  EXPECT_FALSE(sched.head_shadow_time().has_value());  // started, queue empty
  sched.submit(make_job(2, 8, 10.0));
  ASSERT_TRUE(sched.head_shadow_time().has_value());
  EXPECT_EQ(*sched.head_shadow_time(), 100.0);
}

TEST(Easy, CancellationOpensBackfill) {
  des::Simulation sim;
  EasyScheduler sched(sim, 8);
  Recorder rec;
  sched.set_callbacks(rec.callbacks(sim));
  sched.submit(make_job(1, 6, 100.0));  // running
  sched.submit(make_job(2, 8, 50.0));   // head, shadow 100, extra 0
  sched.submit(make_job(3, 2, 150.0));  // blocked (would delay head)
  EXPECT_EQ(rec.start_times.count(3), 0u);
  EXPECT_TRUE(sched.cancel(2));  // head leaves; 3 is the new head and fits
  EXPECT_EQ(rec.start_times[3], 0.0);
}

TEST(Easy, EarlyCompletionTriggersBackfill) {
  des::Simulation sim;
  EasyScheduler sched(sim, 8);
  Recorder rec;
  sched.set_callbacks(rec.callbacks(sim));
  sched.submit(make_job(1, 8, 100.0, 20.0));  // finishes early at 20
  sched.submit(make_job(2, 4, 50.0));
  sim.run();
  EXPECT_EQ(rec.start_times[2], 20.0);
}

TEST(Easy, MultipleBackfillsInOnePass) {
  des::Simulation sim;
  EasyScheduler sched(sim, 10);
  Recorder rec;
  sched.set_callbacks(rec.callbacks(sim));
  sched.submit(make_job(1, 6, 100.0));  // running; 4 free
  sched.submit(make_job(2, 10, 50.0));  // head: shadow 100
  sched.submit(make_job(3, 2, 90.0));   // backfill (ends 90 < 100)
  sched.submit(make_job(4, 2, 90.0));   // backfill
  sched.submit(make_job(5, 2, 90.0));   // no room left (0 free)
  sim.run_until(0.0);
  EXPECT_EQ(rec.start_times[3], 0.0);
  EXPECT_EQ(rec.start_times[4], 0.0);
  EXPECT_EQ(rec.start_times.count(5), 0u);
}

TEST(Easy, DeclineDuringBackfillKeepsSchedulingSound) {
  des::Simulation sim;
  EasyScheduler sched(sim, 8);
  ClusterScheduler::Callbacks cb;
  std::vector<JobId> started;
  cb.on_grant = [](const Job& j) { return j.id != 3; };
  cb.on_start = [&started](const Job& j) { started.push_back(j.id); };
  sched.set_callbacks(std::move(cb));
  sched.submit(make_job(1, 6, 100.0));  // running
  sched.submit(make_job(2, 8, 50.0));   // head
  sched.submit(make_job(3, 2, 50.0));   // backfill candidate -> declined
  sched.submit(make_job(4, 2, 50.0));   // next candidate, should start
  sim.run_until(0.0);
  EXPECT_EQ(started, (std::vector<JobId>{1, 4}));
  EXPECT_EQ(sched.counters().declines, 1u);
  sim.run();
  EXPECT_EQ(sched.counters().finishes, 3u);  // 1, 2, 4 ran
}

TEST(Easy, ExactEstimatesNeverOversubscribe_Property) {
  des::Simulation sim;
  EasyScheduler sched(sim, 16);
  int max_used = 0;
  ClusterScheduler::Callbacks cb;
  cb.on_start = [&](const Job&) {
    max_used = std::max(max_used, 16 - sched.free_nodes());
    ASSERT_GE(sched.free_nodes(), 0);
  };
  sched.set_callbacks(std::move(cb));
  // A mix of widths/durations arriving over time.
  JobId id = 1;
  for (int wave = 0; wave < 10; ++wave) {
    sim.schedule_at(wave * 7.0, [&sched, &id] {
      for (int k = 0; k < 6; ++k) {
        sched.submit(make_job(id, (static_cast<int>(id) * 7 % 16) + 1,
                              5.0 + static_cast<double>(id % 40)));
        ++id;
      }
    });
  }
  sim.run();
  EXPECT_LE(max_used, 16);
  EXPECT_EQ(sched.counters().finishes, 60u);
}

TEST(Easy, QueueLengthReflectsPending) {
  des::Simulation sim;
  EasyScheduler sched(sim, 4);
  sched.submit(make_job(1, 4, 10.0));
  EXPECT_EQ(sched.queue_length(), 0u);
  sched.submit(make_job(2, 4, 10.0));
  sched.submit(make_job(3, 4, 10.0));
  EXPECT_EQ(sched.queue_length(), 2u);
  sim.run();
  EXPECT_EQ(sched.queue_length(), 0u);
}

}  // namespace
}  // namespace rrsim::sched
