// The forget-terminal-ids mode (streaming campaigns): terminal lifecycle
// entries are erased as they occur, the schedule itself is unchanged, and
// the documented behavioural edges hold — cancel() on a forgotten id says
// false exactly like the terminal-state answer, and a reused terminal id
// is no longer caught as a duplicate.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "rrsim/sched/factory.h"
#include "rrsim/util/rng.h"
#include "rrsim/workload/lublin.h"

namespace rrsim::sched {
namespace {

Job make_job(JobId id, int nodes, double runtime) {
  Job job;
  job.id = id;
  job.nodes = nodes;
  job.actual_time = runtime;
  job.requested_time = runtime * 2.0;
  return job;
}

struct Trace {
  std::vector<JobId> starts;
  std::vector<JobId> finishes;
  OpCounters counters;
  std::size_t live_bytes = 0;
};

/// A churn workload (submissions, cancels, grant declines) on one
/// scheduler, with the forget flag on or off. Everything observable from
/// the outside must be identical in the two modes.
Trace run_churn(Algorithm algo, bool forget, std::uint64_t seed) {
  des::Simulation sim;
  auto sched = make_scheduler(algo, sim, 64);
  sched->set_forget_terminal_ids(forget);
  Trace trace;
  ClusterScheduler::Callbacks cb;
  util::Rng grant_rng(seed ^ 0x9e3779b97f4a7c15ULL);
  cb.on_grant = [&](const Job&) { return !grant_rng.chance(0.2); };
  cb.on_start = [&](const Job& j) { trace.starts.push_back(j.id); };
  cb.on_finish = [&](const Job& j) { trace.finishes.push_back(j.id); };
  sched->set_callbacks(std::move(cb));

  util::Rng rng(seed);
  const workload::LublinModel model(workload::LublinParams{}, 64);
  double t = 0.0;
  for (JobId id = 1; id <= 400; ++id) {
    t += rng.uniform(1.0, 60.0);
    const workload::JobSpec spec = model.sample_job(rng);
    const Job job = make_job(id, spec.nodes, spec.runtime);
    sim.schedule_at(t, [&s = *sched, job] { s.submit(job); },
                    des::Priority::kArrival);
    if (rng.chance(0.25)) {
      sim.schedule_at(t + rng.uniform(0.0, 120.0),
                      [&s = *sched, id] { s.cancel(id); },
                      des::Priority::kArrival);
    }
  }
  sim.run();
  trace.counters = sched->counters();
  trace.live_bytes = sched->live_state_bytes();
  return trace;
}

TEST(ForgetTerminalIds, ScheduleIsIdenticalWithAndWithoutForgetting) {
  for (const Algorithm algo :
       {Algorithm::kFcfs, Algorithm::kEasy, Algorithm::kCbf}) {
    for (const std::uint64_t seed : {11ULL, 23ULL}) {
      const Trace keep = run_churn(algo, false, seed);
      const Trace drop = run_churn(algo, true, seed);
      EXPECT_EQ(keep.starts, drop.starts);
      EXPECT_EQ(keep.finishes, drop.finishes);
      EXPECT_EQ(keep.counters.submits, drop.counters.submits);
      EXPECT_EQ(keep.counters.cancels, drop.counters.cancels);
      EXPECT_EQ(keep.counters.declines, drop.counters.declines);
      EXPECT_EQ(keep.counters.finishes, drop.counters.finishes);
      EXPECT_EQ(keep.counters.sched_passes, drop.counters.sched_passes);
      // The point of the mode: the per-job tables stop growing with run
      // length. (Capacity-based accounting, so strict < is the claim.)
      EXPECT_LT(drop.live_bytes, keep.live_bytes);
    }
  }
}

TEST(ForgetTerminalIds, ForgottenIdsAnswerLikeTerminalOnes) {
  des::Simulation sim;
  auto sched = make_scheduler(Algorithm::kFcfs, sim, 8);
  sched->set_forget_terminal_ids(true);
  sim.schedule_at(1.0, [&] { sched->submit(make_job(1, 8, 10.0)); },
                  des::Priority::kArrival);
  sim.run();
  EXPECT_EQ(sched->counters().finishes, 1U);
  // Finished and forgotten: cancel answers false through the unknown-id
  // path — indistinguishable from the kept kFinished entry.
  EXPECT_FALSE(sched->cancel(1));
  // The prediction recorded at submit is dropped with the lifecycle entry.
  EXPECT_FALSE(sched->predicted_start_at_submit(1).has_value());
  // The documented trade: a reused terminal id is accepted again instead
  // of throwing. Only drivers that never reuse ids may enable the mode.
  EXPECT_NO_THROW(sched->submit(make_job(1, 8, 10.0)));
}

TEST(ForgetTerminalIds, ResetTurnsForgettingOff) {
  des::Simulation sim;
  auto sched = make_scheduler(Algorithm::kFcfs, sim, 8);
  sched->set_forget_terminal_ids(true);
  sched->reset();
  sim.schedule_at(1.0, [&] { sched->submit(make_job(1, 8, 10.0)); },
                  des::Priority::kArrival);
  sim.run();
  // Back to the historical full-lifecycle table: duplicate ids throw.
  EXPECT_THROW(sched->submit(make_job(1, 8, 10.0)), std::invalid_argument);
}

}  // namespace
}  // namespace rrsim::sched
