#include "rrsim/sched/cbf.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

namespace rrsim::sched {
namespace {

Job make_job(JobId id, int nodes, Time requested, Time actual = -1.0) {
  Job j;
  j.id = id;
  j.nodes = nodes;
  j.requested_time = requested;
  j.actual_time = actual < 0.0 ? requested : actual;
  return j;
}

struct Recorder {
  std::map<JobId, Time> start_times;

  ClusterScheduler::Callbacks callbacks(des::Simulation& sim) {
    ClusterScheduler::Callbacks cb;
    cb.on_start = [this, &sim](const Job& j) { start_times[j.id] = sim.now(); };
    return cb;
  }
};

TEST(Cbf, ImmediateStartWhenFree) {
  des::Simulation sim;
  CbfScheduler sched(sim, 8);
  Recorder rec;
  sched.set_callbacks(rec.callbacks(sim));
  sched.submit(make_job(1, 8, 10.0));
  EXPECT_EQ(rec.start_times[1], 0.0);
  EXPECT_EQ(sched.queue_length(), 0u);
}

TEST(Cbf, EveryJobGetsReservationAtSubmit) {
  des::Simulation sim;
  CbfScheduler sched(sim, 8);
  sched.submit(make_job(1, 8, 100.0));
  sched.submit(make_job(2, 8, 50.0));
  sched.submit(make_job(3, 8, 25.0));
  EXPECT_EQ(sched.predicted_start_at_submit(1), 0.0);
  EXPECT_EQ(sched.predicted_start_at_submit(2), 100.0);
  EXPECT_EQ(sched.predicted_start_at_submit(3), 150.0);
  EXPECT_EQ(sched.current_reservation(2), 100.0);
  EXPECT_FALSE(sched.current_reservation(1).has_value());  // running
}

TEST(Cbf, BackfillsIntoProfileHoles) {
  des::Simulation sim;
  CbfScheduler sched(sim, 8);
  Recorder rec;
  sched.set_callbacks(rec.callbacks(sim));
  sched.submit(make_job(1, 6, 100.0));  // running; 2 free
  sched.submit(make_job(2, 8, 50.0));   // reserved at 100
  sched.submit(make_job(3, 2, 120.0));  // would overlap job 2's slot:
                                        // must wait until 150
  sched.submit(make_job(4, 2, 100.0));  // fits exactly in the [0,100) hole
  sim.run_until(0.0);
  EXPECT_EQ(rec.start_times.count(3), 0u);
  EXPECT_EQ(*sched.current_reservation(3), 150.0);
  EXPECT_EQ(rec.start_times[4], 0.0);
  // Job 3's reservation must not delay job 2.
  EXPECT_EQ(*sched.predicted_start_at_submit(2), 100.0);
  sim.run();
  EXPECT_EQ(rec.start_times[2], 100.0);
}

TEST(Cbf, ReservationsNeverDelayedByLaterSubmissions_Property) {
  des::Simulation sim;
  CbfScheduler sched(sim, 16);
  std::map<JobId, Time> reserved;
  JobId id = 1;
  for (int i = 0; i < 40; ++i) {
    const int nodes = (static_cast<int>(id) * 5 % 16) + 1;
    const double req = 10.0 + static_cast<double>(id % 30);
    sched.submit(make_job(id, nodes, req));
    reserved[id] = sched.predicted_start_at_submit(id).value();
    // Invariant: every earlier job's current reservation is still at or
    // before the value promised at its submission.
    for (const auto& [jid, promise] : reserved) {
      const auto current = sched.current_reservation(jid);
      if (current) {
        ASSERT_LE(*current, promise) << "job " << jid << " pushed back";
      }
    }
    ++id;
  }
}

TEST(Cbf, StartsHappenAtReservations) {
  des::Simulation sim;
  CbfScheduler sched(sim, 8);
  Recorder rec;
  sched.set_callbacks(rec.callbacks(sim));
  sched.submit(make_job(1, 8, 100.0));
  sched.submit(make_job(2, 4, 50.0));
  sched.submit(make_job(3, 4, 80.0));
  sim.run();
  EXPECT_EQ(rec.start_times[1], 0.0);
  EXPECT_EQ(rec.start_times[2], 100.0);
  EXPECT_EQ(rec.start_times[3], 100.0);  // runs beside job 2
}

TEST(Cbf, CompressionAfterEarlyCompletion) {
  des::Simulation sim;
  CbfScheduler sched(sim, 8);
  Recorder rec;
  sched.set_callbacks(rec.callbacks(sim));
  sched.submit(make_job(1, 8, 100.0, 20.0));  // claims 100, runs 20
  sched.submit(make_job(2, 8, 50.0));         // reserved at 100
  EXPECT_EQ(*sched.predicted_start_at_submit(2), 100.0);
  sim.run();
  EXPECT_EQ(rec.start_times[2], 20.0);  // compression pulled it forward
}

TEST(Cbf, NoCompressionWhenDisabled) {
  des::Simulation sim;
  CbfScheduler sched(sim, 8, /*compress_on_early_completion=*/false);
  Recorder rec;
  sched.set_callbacks(rec.callbacks(sim));
  sched.submit(make_job(1, 8, 100.0, 20.0));
  sched.submit(make_job(2, 8, 50.0));
  sim.run();
  EXPECT_EQ(rec.start_times[2], 100.0);  // sticks to its reservation
}

TEST(Cbf, CancellationCompressesQueue) {
  des::Simulation sim;
  CbfScheduler sched(sim, 8);
  Recorder rec;
  sched.set_callbacks(rec.callbacks(sim));
  sched.submit(make_job(1, 8, 100.0));
  sched.submit(make_job(2, 8, 50.0));   // reserved at 100
  sched.submit(make_job(3, 8, 25.0));   // reserved at 150
  EXPECT_TRUE(sched.cancel(2));
  EXPECT_EQ(*sched.current_reservation(3), 100.0);
  sim.run();
  EXPECT_EQ(rec.start_times[3], 100.0);
}

TEST(Cbf, CancelRunningFails) {
  des::Simulation sim;
  CbfScheduler sched(sim, 8);
  sched.submit(make_job(1, 8, 100.0));
  EXPECT_FALSE(sched.cancel(1));
}

TEST(Cbf, DeclineReleasesReservation) {
  des::Simulation sim;
  CbfScheduler sched(sim, 8);
  ClusterScheduler::Callbacks cb;
  std::map<JobId, Time> started;
  cb.on_grant = [](const Job& j) { return j.id != 2; };
  cb.on_start = [&started, &sim](const Job& j) { started[j.id] = sim.now(); };
  sched.set_callbacks(std::move(cb));
  sched.submit(make_job(1, 8, 100.0));
  sched.submit(make_job(2, 8, 50.0));
  sched.submit(make_job(3, 8, 25.0));
  sim.run();
  EXPECT_EQ(started.count(2), 0u);
  EXPECT_EQ(started[3], 100.0);  // slot vacated by the declined job
}

TEST(Cbf, FifoAmongEqualJobs) {
  // With identical jobs, CBF reduces to FCFS: reservations are in
  // submission order.
  des::Simulation sim;
  CbfScheduler sched(sim, 4);
  for (JobId id = 1; id <= 6; ++id) {
    sched.submit(make_job(id, 4, 10.0));
  }
  Time prev = -1.0;
  for (JobId id = 2; id <= 6; ++id) {
    const Time r = sched.predicted_start_at_submit(id).value();
    EXPECT_GT(r, prev);
    prev = r;
  }
}

TEST(Cbf, PredictionExactWithExactEstimatesAndNoChurn_Property) {
  // With exact runtime estimates and no cancellations, CBF predictions
  // are exact: every job starts precisely when its reservation said.
  des::Simulation sim;
  CbfScheduler sched(sim, 16);
  std::map<JobId, Time> predicted;
  std::map<JobId, Time> actual;
  ClusterScheduler::Callbacks cb;
  cb.on_start = [&actual, &sim](const Job& j) { actual[j.id] = sim.now(); };
  sched.set_callbacks(std::move(cb));
  JobId id = 1;
  for (int i = 0; i < 50; ++i) {
    const int nodes = (static_cast<int>(id) * 3 % 16) + 1;
    const double req = 5.0 + static_cast<double>((id * 11) % 50);
    sched.submit(make_job(id, nodes, req));
    predicted[id] = sched.predicted_start_at_submit(id).value();
    ++id;
  }
  sim.run();
  ASSERT_EQ(actual.size(), predicted.size());
  for (const auto& [jid, p] : predicted) {
    ASSERT_DOUBLE_EQ(actual[jid], p) << "job " << jid;
  }
}

TEST(Cbf, OverestimatedRuntimesMakePredictionsConservative) {
  des::Simulation sim;
  CbfScheduler sched(sim, 8);
  Recorder rec;
  sched.set_callbacks(rec.callbacks(sim));
  // Requested 100 but actually run 25 each: predictions stack at 100,
  // 200, ..., actual starts at 25, 50, ...
  for (JobId id = 1; id <= 4; ++id) {
    sched.submit(make_job(id, 8, 100.0, 25.0));
  }
  const Time predicted4 = sched.predicted_start_at_submit(4).value();
  sim.run();
  EXPECT_EQ(predicted4, 300.0);
  EXPECT_EQ(rec.start_times[4], 75.0);
  // Over-prediction factor 4 — the Section 5 effect in miniature.
}

TEST(Cbf, QueueDrainsCompletely) {
  des::Simulation sim;
  CbfScheduler sched(sim, 8);
  JobId id = 1;
  for (int i = 0; i < 30; ++i) {
    sched.submit(make_job(id, (static_cast<int>(id) % 8) + 1,
                          1.0 + static_cast<double>(id % 17)));
    ++id;
  }
  sim.run();
  EXPECT_EQ(sched.queue_length(), 0u);
  EXPECT_EQ(sched.running_count(), 0u);
  EXPECT_EQ(sched.counters().finishes, 30u);
  EXPECT_EQ(sched.free_nodes(), 8);
}

}  // namespace
}  // namespace rrsim::sched
