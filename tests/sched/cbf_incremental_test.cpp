// Oracle tests for the incremental CBF core: the scheduler must behave
// exactly — event for event, double for double — like the historical
// implementation that rebuilt its availability profile from scratch on
// every cancel, early completion, and decline. A verbatim replica of that
// implementation (LegacyCbf below) runs the same randomized workloads and
// the two traces are compared bit-exactly. Independently, the scheduler's
// own self-check mode re-derives every reservation from a from-scratch
// rebuild after each compression and counts mismatches.
#include "rrsim/sched/cbf.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <type_traits>
#include <vector>

#include "rrsim/sched/profile.h"
#include "rrsim/util/rng.h"

namespace rrsim::sched {
namespace {

// --- Verbatim replica of the pre-incremental CBF ------------------------
// Rebuilds the profile from scratch on every queue change, scans the
// queue linearly in dispatch, and computes wake-ups with an O(Q) sweep.
class LegacyCbf final : public ClusterScheduler {
 public:
  LegacyCbf(des::Simulation& sim, int total_nodes, bool compress)
      : ClusterScheduler(sim, total_nodes),
        compress_(compress),
        profile_(total_nodes) {}

  std::string name() const override { return "cbf-legacy"; }
  std::size_t queue_length() const override { return queue_.size(); }

 protected:
  void handle_submit(Job job) override {
    const Time now = sim_.now();
    const Time s = profile_.earliest_start(now, job.nodes, job.requested_time);
    profile_.reserve(s, job.requested_time, job.nodes);
    record_prediction(job.id, s);
    queue_.push_back(Entry{std::move(job), s});
    dispatch_ready();
  }

  Job handle_cancel(JobId id) override {
    const auto it =
        std::find_if(queue_.begin(), queue_.end(),
                     [id](const Entry& e) { return e.job.id == id; });
    if (it == queue_.end()) {
      throw std::logic_error("legacy cbf: cancel of non-pending job");
    }
    Job job = it->job;
    queue_.erase(it);
    rebuild_profile();
    dispatch_ready();
    return job;
  }

  void handle_completion(const Job& job) override {
    const bool early = job.finish_time < job.start_time + job.requested_time;
    if (early && compress_) rebuild_profile();
    dispatch_ready();
  }

  std::vector<const Job*> pending_in_order() const override {
    std::vector<const Job*> out;
    out.reserve(queue_.size());
    for (const Entry& e : queue_) out.push_back(&e.job);
    return out;
  }

 private:
  struct Entry {
    Job job;
    Time reserved_start = 0.0;
  };

  void rebuild_profile() {
    count_pass();
    const Time now = sim_.now();
    profile_ = Profile(total_nodes());
    for (const auto& [end, nodes] : running_requested_ends()) {
      if (end > now) profile_.reserve(now, end - now, nodes);
    }
    for (Entry& e : queue_) {
      e.reserved_start =
          profile_.earliest_start(now, e.job.nodes, e.job.requested_time);
      profile_.reserve(e.reserved_start, e.job.requested_time, e.job.nodes);
    }
  }

  void dispatch_ready() {
    count_pass();
    const Time now = sim_.now();
    bool again = true;
    while (again) {
      again = false;
      for (auto it = queue_.begin(); it != queue_.end(); ++it) {
        if (it->reserved_start > now) continue;
        if (it->job.nodes > free_nodes()) continue;
        Job job = it->job;
        queue_.erase(it);
        if (!try_start(std::move(job))) rebuild_profile();
        again = true;
        break;
      }
    }
    wakeup_.cancel();
    Time next = des::kTimeInfinity;
    for (const Entry& e : queue_) {
      if (e.reserved_start > now) next = std::min(next, e.reserved_start);
    }
    if (next < des::kTimeInfinity) {
      wakeup_ = sim_.schedule_at(
          next, [this] { dispatch_ready(); }, des::Priority::kControl);
    }
  }

  bool compress_;
  std::vector<Entry> queue_;
  Profile profile_;
  des::Simulation::EventHandle wakeup_;
};

// --- Randomized workload driver -----------------------------------------

struct Trace {
  // (kind, id, time): kind is 's'tart, 'f'inish, 'c'ancel.
  std::vector<std::tuple<char, JobId, Time>> events;
  std::vector<std::pair<JobId, Time>> predictions;
  OpCounters counters;
  std::uint64_t fallbacks = 0;
  std::uint64_t rebuilds = 0;
  std::uint64_t cancels_issued = 0;
};

struct WorkloadParams {
  std::uint64_t seed = 1;
  int nodes = 24;
  int jobs = 250;
  double cancel_fraction = 0.5;
  bool declines = true;
  bool compress = true;
};

template <typename Scheduler>
Trace run_workload(const WorkloadParams& wp) {
  des::Simulation sim;
  Scheduler sched(sim, wp.nodes, wp.compress);
  Trace trace;

  ClusterScheduler::Callbacks cb;
  cb.on_grant = [&](const Job& j) {
    return !(wp.declines && j.id % 11 == 3);  // deterministic declines
  };
  cb.on_start = [&](const Job& j) {
    trace.events.emplace_back('s', j.id, j.start_time);
  };
  cb.on_finish = [&](const Job& j) {
    trace.events.emplace_back('f', j.id, j.finish_time);
  };
  cb.on_cancelled = [&](const Job& j) {
    trace.events.emplace_back('c', j.id, sim.now());
  };
  sched.set_callbacks(std::move(cb));

  util::Rng rng(wp.seed);
  double t = 0.0;
  for (JobId id = 1; id <= static_cast<JobId>(wp.jobs); ++id) {
    t += rng.uniform(0.05, 12.0);
    Job job;
    job.id = id;
    job.nodes = static_cast<int>(rng.between(1, wp.nodes));
    job.requested_time = rng.uniform(5.0, 250.0);
    // Frequent early completions exercise the compression path.
    job.actual_time = rng.chance(0.3)
                          ? job.requested_time
                          : job.requested_time * rng.uniform(0.15, 0.95);
    sim.schedule_at(t, [&s = sched, job] { s.submit(job); },
                    des::Priority::kArrival);
    if (rng.chance(wp.cancel_fraction)) {
      const double cancel_at = t + rng.uniform(0.0, 120.0);
      sim.schedule_at(cancel_at,
                      [&s = sched, &trace, id] {
                        if (s.cancel(id)) ++trace.cancels_issued;
                      },
                      des::Priority::kCancel);
    }
  }
  sim.run();

  for (JobId id = 1; id <= static_cast<JobId>(wp.jobs); ++id) {
    if (const auto p = sched.predicted_start_at_submit(id)) {
      trace.predictions.emplace_back(id, *p);
    }
  }
  trace.counters = sched.counters();
  if constexpr (std::is_same_v<Scheduler, CbfScheduler>) {
    trace.fallbacks = sched.self_check_fallbacks();
    trace.rebuilds = sched.rebuilds();
  }
  return trace;
}

void expect_traces_equal(const Trace& a, const Trace& b,
                         std::uint64_t seed) {
  ASSERT_EQ(a.events.size(), b.events.size()) << "seed=" << seed;
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i], b.events[i]) << "seed=" << seed << " i=" << i;
  }
  EXPECT_EQ(a.predictions, b.predictions) << "seed=" << seed;
  EXPECT_EQ(a.counters.submits, b.counters.submits) << "seed=" << seed;
  EXPECT_EQ(a.counters.starts, b.counters.starts) << "seed=" << seed;
  EXPECT_EQ(a.counters.cancels, b.counters.cancels) << "seed=" << seed;
  EXPECT_EQ(a.counters.finishes, b.counters.finishes) << "seed=" << seed;
  EXPECT_EQ(a.counters.declines, b.counters.declines) << "seed=" << seed;
  EXPECT_EQ(a.counters.sched_passes, b.counters.sched_passes)
      << "seed=" << seed;
}

TEST(CbfIncremental, MatchesLegacyRebuildTraceBitExactly) {
  for (std::uint64_t seed : {11u, 23u, 47u, 90u, 181u}) {
    WorkloadParams wp;
    wp.seed = seed;
    const Trace legacy = run_workload<LegacyCbf>(wp);
    const Trace incremental = run_workload<CbfScheduler>(wp);
    expect_traces_equal(legacy, incremental, seed);
    ASSERT_GT(incremental.cancels_issued, 20u) << "workload too tame";
  }
}

TEST(CbfIncremental, MatchesLegacyWithCompressionDisabled) {
  for (std::uint64_t seed : {5u, 71u, 123u}) {
    WorkloadParams wp;
    wp.seed = seed;
    wp.compress = false;
    const Trace legacy = run_workload<LegacyCbf>(wp);
    const Trace incremental = run_workload<CbfScheduler>(wp);
    expect_traces_equal(legacy, incremental, seed);
  }
}

TEST(CbfIncremental, MatchesLegacyWithoutDeclines) {
  WorkloadParams wp;
  wp.seed = 400;
  wp.declines = false;
  const Trace legacy = run_workload<LegacyCbf>(wp);
  const Trace incremental = run_workload<CbfScheduler>(wp);
  expect_traces_equal(legacy, incremental, wp.seed);
}

TEST(CbfIncremental, SelfCheckReportsNoDivergence) {
  // The built-in oracle re-derives every reservation from a from-scratch
  // rebuild after each compression; any mismatch is a correctness bug in
  // the incremental update.
  for (const bool compress : {true, false}) {
    for (std::uint64_t seed : {3u, 59u, 322u}) {
      des::Simulation sim;
      CbfScheduler sched(sim, 16, compress);
      sched.set_self_check(true);
      util::Rng rng(seed);
      double t = 0.0;
      for (JobId id = 1; id <= 200; ++id) {
        t += rng.uniform(0.05, 10.0);
        Job job;
        job.id = id;
        job.nodes = static_cast<int>(rng.between(1, 16));
        job.requested_time = rng.uniform(5.0, 200.0);
        job.actual_time = job.requested_time * rng.uniform(0.1, 1.0);
        sim.schedule_at(t, [&sched, job] { sched.submit(job); },
                        des::Priority::kArrival);
        if (rng.chance(0.6)) {
          sim.schedule_at(t + rng.uniform(0.0, 90.0),
                          [&sched, id] { sched.cancel(id); },
                          des::Priority::kCancel);
        }
      }
      sim.run();
      EXPECT_EQ(sched.self_check_fallbacks(), 0u)
          << "compress=" << compress << " seed=" << seed;
      EXPECT_GT(sched.counters().cancels, 30u);
    }
  }
}

TEST(CbfIncremental, IncrementalPathCarriesTheCancelLoad) {
  // The rebuild fallback must be the exception, not the rule: with
  // compression on, cancels and early completions should overwhelmingly
  // take the in-place compression path.
  WorkloadParams wp;
  wp.seed = 77;
  wp.jobs = 400;
  const Trace trace = run_workload<CbfScheduler>(wp);
  const std::uint64_t compress_events =
      trace.counters.cancels + trace.counters.declines;
  ASSERT_GT(compress_events, 50u);
  EXPECT_LT(trace.rebuilds, compress_events / 2)
      << "rebuild fallback dominates; incremental gate too conservative";
}

}  // namespace
}  // namespace rrsim::sched
