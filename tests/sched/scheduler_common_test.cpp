// Invariants that must hold for every scheduling algorithm, exercised as
// parameterised property sweeps over algorithm x seed.
#include <gtest/gtest.h>

#include <map>
#include <tuple>
#include <vector>

#include "rrsim/sched/factory.h"
#include "rrsim/util/rng.h"
#include "rrsim/workload/lublin.h"

namespace rrsim::sched {
namespace {

using Param = std::tuple<Algorithm, std::uint64_t>;

class SchedulerInvariants : public ::testing::TestWithParam<Param> {};

struct RunOutcome {
  std::map<JobId, Job> finished;
  int max_nodes_used = 0;
  bool oversubscribed = false;
};

RunOutcome run_random_workload(Algorithm algo, std::uint64_t seed,
                               int cluster_nodes, int jobs,
                               double cancel_fraction) {
  des::Simulation sim;
  auto sched = make_scheduler(algo, sim, cluster_nodes);
  RunOutcome outcome;

  ClusterScheduler::Callbacks cb;
  cb.on_start = [&](const Job&) {
    const int used = cluster_nodes - sched->free_nodes();
    outcome.max_nodes_used = std::max(outcome.max_nodes_used, used);
    if (used > cluster_nodes || sched->free_nodes() < 0) {
      outcome.oversubscribed = true;
    }
  };
  cb.on_finish = [&](const Job& j) { outcome.finished[j.id] = j; };
  sched->set_callbacks(std::move(cb));

  util::Rng rng(seed);
  const workload::LublinModel model(workload::LublinParams{}, cluster_nodes);
  double t = 0.0;
  std::vector<JobId> cancellable;
  for (JobId id = 1; id <= static_cast<JobId>(jobs); ++id) {
    t += rng.uniform(0.1, 30.0);
    const workload::JobSpec spec = model.sample_job(rng);
    Job job;
    job.id = id;
    job.nodes = spec.nodes;
    job.actual_time = spec.runtime;
    // Mix of exact and over-estimated requests.
    job.requested_time =
        rng.chance(0.5) ? spec.runtime : spec.runtime * rng.uniform(1.0, 4.0);
    sim.schedule_at(t, [&s = *sched, job] { s.submit(job); },
                    des::Priority::kArrival);
    if (rng.chance(cancel_fraction)) {
      const double cancel_at = t + rng.uniform(0.0, 60.0);
      sim.schedule_at(cancel_at, [&s = *sched, id] { s.cancel(id); },
                      des::Priority::kCancel);
    }
  }
  sim.run();
  return outcome;
}

TEST_P(SchedulerInvariants, NoOversubscriptionAndFullDrain) {
  const auto [algo, seed] = GetParam();
  const RunOutcome outcome = run_random_workload(algo, seed, 32, 120, 0.0);
  EXPECT_FALSE(outcome.oversubscribed);
  EXPECT_LE(outcome.max_nodes_used, 32);
  // Without cancellations, every submitted job finishes exactly once.
  EXPECT_EQ(outcome.finished.size(), 120u);
}

TEST_P(SchedulerInvariants, FinishedJobsHaveConsistentTimes) {
  const auto [algo, seed] = GetParam();
  const RunOutcome outcome = run_random_workload(algo, seed, 32, 100, 0.0);
  for (const auto& [id, job] : outcome.finished) {
    ASSERT_EQ(job.state, JobState::kFinished);
    ASSERT_GE(job.start_time, job.submit_time);
    ASSERT_DOUBLE_EQ(job.finish_time, job.start_time + job.actual_time);
    ASSERT_LE(job.actual_time, job.requested_time + 1e-12);
  }
}

TEST_P(SchedulerInvariants, CancellationsNeverBreakConservation) {
  const auto [algo, seed] = GetParam();
  const RunOutcome outcome = run_random_workload(algo, seed, 32, 100, 0.3);
  // Every job either finished exactly once or was cancelled; the run
  // draining at all (sim.run() returned) proves no event deadlock.
  EXPECT_LE(outcome.finished.size(), 100u);
  EXPECT_FALSE(outcome.oversubscribed);
}

TEST_P(SchedulerInvariants, DeterministicAcrossRuns) {
  const auto [algo, seed] = GetParam();
  const RunOutcome a = run_random_workload(algo, seed, 32, 80, 0.2);
  const RunOutcome b = run_random_workload(algo, seed, 32, 80, 0.2);
  ASSERT_EQ(a.finished.size(), b.finished.size());
  for (const auto& [id, job] : a.finished) {
    const auto it = b.finished.find(id);
    ASSERT_NE(it, b.finished.end());
    ASSERT_EQ(job.start_time, it->second.start_time);
    ASSERT_EQ(job.finish_time, it->second.finish_time);
  }
}

TEST_P(SchedulerInvariants, HypotheticalPredictionIsValidStart) {
  // predict_hypothetical_start must return a time no earlier than "now"
  // and must be feasible under conservative assumptions.
  const auto [algo, seed] = GetParam();
  des::Simulation sim;
  auto sched = make_scheduler(algo, sim, 16);
  util::Rng rng(seed);
  JobId id = 1;
  for (int i = 0; i < 20; ++i) {
    Job job;
    job.id = id++;
    job.nodes = static_cast<int>(rng.between(1, 16));
    job.requested_time = rng.uniform(10.0, 100.0);
    job.actual_time = job.requested_time;
    sched->submit(job);
  }
  const Time t = sched->predict_hypothetical_start(8, 50.0);
  EXPECT_GE(t, sim.now());
  EXPECT_THROW(sched->predict_hypothetical_start(17, 50.0),
               std::invalid_argument);
}

INSTANTIATE_TEST_SUITE_P(
    AlgorithmsAndSeeds, SchedulerInvariants,
    ::testing::Combine(::testing::Values(Algorithm::kFcfs, Algorithm::kEasy,
                                         Algorithm::kCbf),
                       ::testing::Values(1u, 2u, 3u, 7u, 2026u)),
    [](const ::testing::TestParamInfo<Param>& info) {
      return algorithm_name(std::get<0>(info.param)) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

TEST(Factory, ParseAndNames) {
  EXPECT_EQ(parse_algorithm("fcfs"), Algorithm::kFcfs);
  EXPECT_EQ(parse_algorithm("easy"), Algorithm::kEasy);
  EXPECT_EQ(parse_algorithm("cbf"), Algorithm::kCbf);
  EXPECT_THROW(parse_algorithm("EASY"), std::invalid_argument);
  EXPECT_EQ(algorithm_name(Algorithm::kEasy), "easy");
}

TEST(Factory, MakesWorkingSchedulers) {
  des::Simulation sim;
  for (const Algorithm algo :
       {Algorithm::kFcfs, Algorithm::kEasy, Algorithm::kCbf}) {
    auto s = make_scheduler(algo, sim, 4);
    EXPECT_EQ(s->total_nodes(), 4);
    EXPECT_EQ(s->name(), algorithm_name(algo));
  }
}

TEST(Scheduler, RejectsZeroNodeCluster) {
  des::Simulation sim;
  EXPECT_THROW(make_scheduler(Algorithm::kEasy, sim, 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace rrsim::sched
