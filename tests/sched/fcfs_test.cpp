#include "rrsim/sched/fcfs.h"

#include <gtest/gtest.h>

#include <vector>

namespace rrsim::sched {
namespace {

Job make_job(JobId id, int nodes, Time requested, Time actual = -1.0) {
  Job j;
  j.id = id;
  j.nodes = nodes;
  j.requested_time = requested;
  j.actual_time = actual < 0.0 ? requested : actual;
  return j;
}

struct Recorder {
  std::vector<JobId> starts;
  std::vector<JobId> finishes;
  std::vector<JobId> cancels;

  ClusterScheduler::Callbacks callbacks() {
    ClusterScheduler::Callbacks cb;
    cb.on_start = [this](const Job& j) { starts.push_back(j.id); };
    cb.on_finish = [this](const Job& j) { finishes.push_back(j.id); };
    cb.on_cancelled = [this](const Job& j) { cancels.push_back(j.id); };
    return cb;
  }
};

TEST(Fcfs, ImmediateStartWhenIdle) {
  des::Simulation sim;
  FcfsScheduler sched(sim, 8);
  Recorder rec;
  sched.set_callbacks(rec.callbacks());
  sched.submit(make_job(1, 4, 100.0));
  EXPECT_EQ(rec.starts, (std::vector<JobId>{1}));
  EXPECT_EQ(sched.free_nodes(), 4);
  sim.run();
  EXPECT_EQ(rec.finishes, (std::vector<JobId>{1}));
  EXPECT_EQ(sched.free_nodes(), 8);
  EXPECT_EQ(sim.now(), 100.0);
}

TEST(Fcfs, HeadBlocksSmallerLaterJobs) {
  des::Simulation sim;
  FcfsScheduler sched(sim, 8);
  Recorder rec;
  sched.set_callbacks(rec.callbacks());
  sched.submit(make_job(1, 8, 100.0));  // occupies everything
  sched.submit(make_job(2, 8, 10.0));   // head of queue, blocked
  sched.submit(make_job(3, 1, 1.0));    // would fit, but FCFS blocks it
  EXPECT_EQ(sched.queue_length(), 2u);
  sim.run();
  // Order must be 1, 2, 3 — no leapfrogging under FCFS.
  EXPECT_EQ(rec.starts, (std::vector<JobId>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 111.0);
}

TEST(Fcfs, ParallelStartsWhenTheyFitInOrder) {
  des::Simulation sim;
  FcfsScheduler sched(sim, 8);
  Recorder rec;
  sched.set_callbacks(rec.callbacks());
  sched.submit(make_job(1, 3, 50.0));
  sched.submit(make_job(2, 3, 50.0));
  sched.submit(make_job(3, 2, 50.0));
  EXPECT_EQ(rec.starts.size(), 3u);  // 3 + 3 + 2 = 8 nodes
  EXPECT_EQ(sched.free_nodes(), 0);
}

TEST(Fcfs, CompletionUnblocksQueue) {
  des::Simulation sim;
  FcfsScheduler sched(sim, 4);
  Recorder rec;
  sched.set_callbacks(rec.callbacks());
  sched.submit(make_job(1, 4, 10.0));
  sched.submit(make_job(2, 4, 10.0));
  EXPECT_EQ(rec.starts.size(), 1u);
  sim.run();
  EXPECT_EQ(rec.starts.size(), 2u);
  EXPECT_EQ(rec.finishes.size(), 2u);
  EXPECT_EQ(sim.now(), 20.0);
}

TEST(Fcfs, CancelRemovesPendingJob) {
  des::Simulation sim;
  FcfsScheduler sched(sim, 4);
  Recorder rec;
  sched.set_callbacks(rec.callbacks());
  sched.submit(make_job(1, 4, 10.0));
  sched.submit(make_job(2, 4, 10.0));
  EXPECT_TRUE(sched.cancel(2));
  EXPECT_EQ(rec.cancels, (std::vector<JobId>{2}));
  EXPECT_EQ(sched.queue_length(), 0u);
  sim.run();
  EXPECT_EQ(rec.starts, (std::vector<JobId>{1}));
}

TEST(Fcfs, CancelHeadUnblocksSuccessor) {
  des::Simulation sim;
  FcfsScheduler sched(sim, 4);
  Recorder rec;
  sched.set_callbacks(rec.callbacks());
  sched.submit(make_job(1, 4, 100.0));
  sched.submit(make_job(2, 4, 10.0));  // blocked head-of-queue
  sched.submit(make_job(3, 2, 10.0));
  EXPECT_TRUE(sched.cancel(2));
  EXPECT_EQ(rec.starts, (std::vector<JobId>{1}));  // 3 still behind nothing? no: head gone, but 3 needs free nodes
  sim.run();
  EXPECT_EQ(rec.starts, (std::vector<JobId>{1, 3}));
}

TEST(Fcfs, CancelRunningJobFails) {
  des::Simulation sim;
  FcfsScheduler sched(sim, 4);
  sched.submit(make_job(1, 4, 10.0));
  EXPECT_FALSE(sched.cancel(1));  // already running
  EXPECT_FALSE(sched.cancel(99));  // unknown
}

TEST(Fcfs, GrantDeclineRemovesJob) {
  des::Simulation sim;
  FcfsScheduler sched(sim, 4);
  ClusterScheduler::Callbacks cb;
  std::vector<JobId> started;
  cb.on_grant = [](const Job& j) { return j.id != 2; };
  cb.on_start = [&started](const Job& j) { started.push_back(j.id); };
  sched.set_callbacks(std::move(cb));
  sched.submit(make_job(1, 4, 10.0));
  sched.submit(make_job(2, 4, 10.0));
  sched.submit(make_job(3, 4, 10.0));
  sim.run();
  EXPECT_EQ(started, (std::vector<JobId>{1, 3}));
  EXPECT_EQ(sched.counters().declines, 1u);
}

TEST(Fcfs, EarlyCompletionUsesActualTime) {
  des::Simulation sim;
  FcfsScheduler sched(sim, 4);
  Recorder rec;
  sched.set_callbacks(rec.callbacks());
  sched.submit(make_job(1, 4, 100.0, 30.0));
  sched.submit(make_job(2, 4, 10.0));
  sim.run();
  EXPECT_EQ(sim.now(), 40.0);  // 30 (early finish) + 10
}

TEST(Fcfs, ActualClampedToRequested) {
  des::Simulation sim;
  FcfsScheduler sched(sim, 4);
  Job j = make_job(1, 4, 10.0);
  j.actual_time = 50.0;  // user under-requested; scheduler kills at 10
  sched.submit(j);
  sim.run();
  EXPECT_EQ(sim.now(), 10.0);
}

TEST(Fcfs, SubmitValidation) {
  des::Simulation sim;
  FcfsScheduler sched(sim, 4);
  EXPECT_THROW(sched.submit(make_job(1, 0, 10.0)), std::invalid_argument);
  EXPECT_THROW(sched.submit(make_job(2, 5, 10.0)), std::invalid_argument);
  EXPECT_THROW(sched.submit(make_job(3, 1, 0.0)), std::invalid_argument);
  sched.submit(make_job(4, 1, 1.0));
  EXPECT_THROW(sched.submit(make_job(4, 1, 1.0)), std::invalid_argument);
}

TEST(Fcfs, CountersTrackOperations) {
  des::Simulation sim;
  FcfsScheduler sched(sim, 4);
  sched.submit(make_job(1, 4, 10.0));
  sched.submit(make_job(2, 4, 10.0));
  sched.submit(make_job(3, 4, 10.0));
  sched.cancel(3);
  sim.run();
  const OpCounters& c = sched.counters();
  EXPECT_EQ(c.submits, 3u);
  EXPECT_EQ(c.cancels, 1u);
  EXPECT_EQ(c.starts, 2u);
  EXPECT_EQ(c.finishes, 2u);
  EXPECT_EQ(c.declines, 0u);
  EXPECT_GT(c.sched_passes, 0u);
}

TEST(Fcfs, WaitTimesAreFcfsOrdered) {
  des::Simulation sim;
  FcfsScheduler sched(sim, 2);
  std::vector<std::pair<JobId, Time>> starts;
  ClusterScheduler::Callbacks cb;
  cb.on_start = [&starts, &sim](const Job& j) {
    starts.emplace_back(j.id, sim.now());
  };
  sched.set_callbacks(std::move(cb));
  for (JobId id = 1; id <= 5; ++id) {
    sched.submit(make_job(id, 2, 10.0));
  }
  sim.run();
  ASSERT_EQ(starts.size(), 5u);
  for (std::size_t i = 1; i < starts.size(); ++i) {
    EXPECT_LT(starts[i - 1].first, starts[i].first);
    EXPECT_LE(starts[i - 1].second, starts[i].second);
  }
}

}  // namespace
}  // namespace rrsim::sched
