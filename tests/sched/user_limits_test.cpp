// Per-user pending-request limits — the mitigation knob the paper's
// Sections 2 and 6 point to ("batch schedulers can typically be
// configured so that a single user can only have a limited number of
// pending requests").
#include <gtest/gtest.h>

#include "rrsim/sched/factory.h"

namespace rrsim::sched {
namespace {

Job make_job(JobId id, UserId user, int nodes = 4, Time requested = 100.0) {
  Job j;
  j.id = id;
  j.user = user;
  j.nodes = nodes;
  j.requested_time = requested;
  j.actual_time = requested;
  return j;
}

class UserLimits : public ::testing::TestWithParam<Algorithm> {};

TEST_P(UserLimits, RejectsBeyondPendingCap) {
  des::Simulation sim;
  auto sched = make_scheduler(GetParam(), sim, 4);
  sched->set_per_user_pending_limit(2);
  // First job runs immediately (not pending); next two queue; the third
  // queued one must be refused.
  EXPECT_TRUE(sched->submit(make_job(1, 7)));
  EXPECT_TRUE(sched->submit(make_job(2, 7)));
  EXPECT_TRUE(sched->submit(make_job(3, 7)));
  EXPECT_FALSE(sched->submit(make_job(4, 7)));
  EXPECT_EQ(sched->counters().rejects, 1u);
  EXPECT_EQ(sched->queue_length(), 2u);
}

TEST_P(UserLimits, LimitIsPerUser) {
  des::Simulation sim;
  auto sched = make_scheduler(GetParam(), sim, 4);
  sched->set_per_user_pending_limit(1);
  EXPECT_TRUE(sched->submit(make_job(1, 7)));   // runs
  EXPECT_TRUE(sched->submit(make_job(2, 7)));   // pending (user 7: 1)
  EXPECT_FALSE(sched->submit(make_job(3, 7)));  // user 7 capped
  EXPECT_TRUE(sched->submit(make_job(4, 8)));   // other user unaffected
  EXPECT_FALSE(sched->submit(make_job(5, 8)));
}

TEST_P(UserLimits, ExemptJobsBypassTheCap) {
  des::Simulation sim;
  auto sched = make_scheduler(GetParam(), sim, 4);
  sched->set_per_user_pending_limit(0);  // nothing may pend...
  Job exempt = make_job(1, 7);
  exempt.limit_exempt = true;
  EXPECT_TRUE(sched->submit(exempt));  // ...except exempt submissions
  Job exempt2 = make_job(2, 7);
  exempt2.limit_exempt = true;
  EXPECT_TRUE(sched->submit(exempt2));
  EXPECT_FALSE(sched->submit(make_job(3, 7)));
}

TEST_P(UserLimits, StartsAndCancellationsReleaseSlots) {
  des::Simulation sim;
  auto sched = make_scheduler(GetParam(), sim, 4);
  sched->set_per_user_pending_limit(1);
  EXPECT_TRUE(sched->submit(make_job(1, 7, 4, 10.0)));  // runs
  EXPECT_TRUE(sched->submit(make_job(2, 7, 4, 10.0)));  // pending
  EXPECT_FALSE(sched->submit(make_job(3, 7, 4, 10.0)));
  // Cancelling the pending job frees the slot immediately.
  EXPECT_TRUE(sched->cancel(2));
  EXPECT_TRUE(sched->submit(make_job(4, 7, 4, 10.0)));
  // After everything runs, the pending count is zero again.
  sim.run();
  EXPECT_TRUE(sched->submit(make_job(5, 7, 4, 10.0)));
}

TEST_P(UserLimits, DisabledByDefault) {
  des::Simulation sim;
  auto sched = make_scheduler(GetParam(), sim, 4);
  for (JobId id = 1; id <= 20; ++id) {
    EXPECT_TRUE(sched->submit(make_job(id, 7)));
  }
  EXPECT_EQ(sched->counters().rejects, 0u);
}

TEST_P(UserLimits, RejectsNegativeLimit) {
  des::Simulation sim;
  auto sched = make_scheduler(GetParam(), sim, 4);
  EXPECT_THROW(sched->set_per_user_pending_limit(-1), std::invalid_argument);
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, UserLimits,
                         ::testing::Values(Algorithm::kFcfs, Algorithm::kEasy,
                                           Algorithm::kCbf),
                         [](const ::testing::TestParamInfo<Algorithm>& info) {
                           return algorithm_name(info.param);
                         });

}  // namespace
}  // namespace rrsim::sched
