#include "rrsim/core/options.h"

#include <gtest/gtest.h>

#include "rrsim/exec/campaign_runner.h"
#include "rrsim/workload/trace_cache.h"

namespace rrsim::core {
namespace {

ExperimentConfig parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  const util::Cli cli(static_cast<int>(argv.size()), argv.data());
  return apply_common_flags(ExperimentConfig{}, cli);
}

TEST(LoadModeParsing, RoundTrip) {
  EXPECT_EQ(parse_load_mode("shared"), LoadMode::kSharedPeak);
  EXPECT_EQ(parse_load_mode("peak"), LoadMode::kPerClusterPeak);
  EXPECT_EQ(parse_load_mode("util"), LoadMode::kCalibrated);
  EXPECT_THROW(parse_load_mode("bogus"), std::invalid_argument);
  for (const LoadMode m : {LoadMode::kSharedPeak, LoadMode::kPerClusterPeak,
                           LoadMode::kCalibrated}) {
    EXPECT_EQ(parse_load_mode(load_mode_name(m)), m);
  }
}

TEST(CommonFlags, DefaultsUntouchedWithoutFlags) {
  const ExperimentConfig base;
  const ExperimentConfig c = parse({});
  EXPECT_EQ(c.n_clusters, base.n_clusters);
  EXPECT_EQ(c.submit_horizon, base.submit_horizon);
  EXPECT_EQ(c.scheme, base.scheme);
  EXPECT_EQ(c.seed, base.seed);
}

TEST(CommonFlags, AppliesEachFlag) {
  const ExperimentConfig c = parse(
      {"--clusters=7", "--nodes=64", "--hours=3", "--algo=cbf",
       "--estimator=phi", "--scheme=R3", "--percent=40",
       "--placement=biased", "--load=peak", "--protocol=truncate",
       "--seed=99"});
  EXPECT_EQ(c.n_clusters, 7u);
  EXPECT_EQ(c.nodes_per_cluster, 64);
  EXPECT_DOUBLE_EQ(c.submit_horizon, 3.0 * 3600.0);
  EXPECT_EQ(c.algorithm, sched::Algorithm::kCbf);
  EXPECT_EQ(c.estimator, "phi");
  EXPECT_EQ(c.scheme, RedundancyScheme::fixed(3));
  EXPECT_DOUBLE_EQ(c.redundant_fraction, 0.4);
  EXPECT_EQ(c.placement, "biased");
  EXPECT_EQ(c.load_mode, LoadMode::kPerClusterPeak);
  EXPECT_FALSE(c.drain);
  EXPECT_EQ(c.seed, 99u);
}

TEST(CommonFlags, ExtensionFlags) {
  const ExperimentConfig c =
      parse({"--mw-rate=0.5", "--user-limit=2", "--users=16"});
  EXPECT_DOUBLE_EQ(c.middleware_ops_per_sec, 0.5);
  EXPECT_EQ(c.per_user_pending_limit, 2);
  EXPECT_EQ(c.users_per_cluster, 16);
  const ExperimentConfig d = parse({});
  EXPECT_EQ(d.middleware_ops_per_sec, 0.0);
  EXPECT_EQ(d.per_user_pending_limit, 0);
}

TEST(CommonFlags, PlacementLeastLoaded) {
  EXPECT_EQ(parse({"--placement=least-loaded"}).placement, "least-loaded");
}

TEST(CommonFlags, UtilFlagImpliesCalibratedMode) {
  const ExperimentConfig c = parse({"--util=0.8"});
  EXPECT_EQ(c.load_mode, LoadMode::kCalibrated);
  EXPECT_DOUBLE_EQ(c.target_utilization, 0.8);
}

TEST(CommonFlags, ProtocolDrain) {
  EXPECT_TRUE(parse({"--protocol=drain"}).drain);
  EXPECT_THROW(parse({"--protocol=xyz"}), std::invalid_argument);
}

TEST(CommonFlags, PdesAndLatencyFlags) {
  const ExperimentConfig base = parse({});
  EXPECT_FALSE(base.pdes);
  EXPECT_DOUBLE_EQ(base.cross_cluster_latency, 0.0);
  EXPECT_EQ(base.pdes_jobs, 0);

  const ExperimentConfig c = parse({"--pdes", "--latency=60", "--jobs=2"});
  EXPECT_TRUE(c.pdes);
  EXPECT_DOUBLE_EQ(c.cross_cluster_latency, 60.0);
  // --pdes snapshots the resolved worker count (--jobs here).
  EXPECT_EQ(c.pdes_jobs, 2);
  exec::set_default_jobs(0);  // --jobs is process-wide; don't leak it

  // Zero latency is valid: the degenerate path is the classic kernel.
  EXPECT_DOUBLE_EQ(parse({"--latency=0"}).cross_cluster_latency, 0.0);
}

TEST(CommonFlags, PdesWithOneWorkerFallsBackButStaysEnabled) {
  // jobs=1 still runs the windowed protocol (sequentially); the flag only
  // warns, it does not silently disable PDES.
  const ExperimentConfig c = parse({"--pdes", "--latency=1", "--jobs=1"});
  EXPECT_TRUE(c.pdes);
  EXPECT_EQ(c.pdes_jobs, 1);
  exec::set_default_jobs(0);  // --jobs is process-wide; don't leak it
}

TEST(CommonFlags, NegativeLatencyThrows) {
  EXPECT_THROW(parse({"--latency=-1"}), std::invalid_argument);
  EXPECT_THROW(parse({"--latency=-0.5", "--pdes"}), std::invalid_argument);
}

TEST(CommonFlags, WindowFlag) {
  EXPECT_EQ(parse({}).stream_window, 0u);  // default: whole-stream mode
  EXPECT_EQ(parse({"--window=256"}).stream_window, 256u);
  EXPECT_EQ(parse({"--window=0"}).stream_window, 0u);  // explicit disable
  EXPECT_THROW(parse({"--window=-1"}), std::invalid_argument);
}

TEST(CommonFlags, TraceCacheBudgetFlag) {
  workload::TraceCache& cache = workload::TraceCache::global();
  const std::size_t before = cache.byte_budget();
  EXPECT_EQ(before, 0u);  // default: unlimited, and no flag leaves it so
  parse({});
  EXPECT_EQ(cache.byte_budget(), 0u);

  parse({"--trace-cache-budget=1048576"});
  EXPECT_EQ(cache.byte_budget(), 1048576u);
  parse({"--trace-cache-budget=0"});  // explicit unlimited
  EXPECT_EQ(cache.byte_budget(), 0u);

  EXPECT_THROW(parse({"--trace-cache-budget=-1"}), std::invalid_argument);
  EXPECT_THROW(parse({"--trace-cache-budget=lots"}), std::invalid_argument);
  cache.set_byte_budget(0);  // process-wide; don't leak into other tests
}

TEST(CommonFlags, BadValuesThrow) {
  EXPECT_THROW(parse({"--algo=unknown"}), std::invalid_argument);
  EXPECT_THROW(parse({"--scheme=R0"}), std::invalid_argument);
  EXPECT_THROW(parse({"--load=none"}), std::invalid_argument);
}

}  // namespace
}  // namespace rrsim::core
