// Windowed input mode (stream_window > 0): pulling the workload through
// O(window)-sized StreamWindow buffers must reproduce the eager
// whole-stream pipeline bit-identically — same schedule, same metrics, on
// both the classic kernel and the PDES kernel — while the resident trace
// state drops from O(total jobs) to O(window x clusters).
#include "rrsim/core/experiment.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "rrsim/core/campaign.h"
#include "rrsim/core/paper.h"
#include "rrsim/metrics/summary.h"
#include "rrsim/workload/trace_cache.h"

namespace rrsim::core {
namespace {

ExperimentConfig streaming_config() {
  ExperimentConfig config;
  config.n_clusters = 4;
  config.nodes_per_cluster = 32;
  config.submit_horizon = 3600.0;
  config.scheme = RedundancyScheme::all();
  config.redundant_fraction = 0.5;
  config.seed = 7;
  config.retain_records = false;
  return config;
}

void expect_same_metrics(const metrics::ScheduleMetrics& got,
                         const metrics::ScheduleMetrics& want) {
  EXPECT_EQ(got.jobs, want.jobs);
  EXPECT_EQ(got.avg_stretch, want.avg_stretch);
  EXPECT_EQ(got.cv_stretch_percent, want.cv_stretch_percent);
  EXPECT_EQ(got.max_stretch, want.max_stretch);
  EXPECT_EQ(got.avg_turnaround, want.avg_turnaround);
  EXPECT_EQ(got.avg_wait, want.avg_wait);
}

void expect_same_run(const SimResult& got, const SimResult& want) {
  EXPECT_EQ(got.jobs_generated, want.jobs_generated);
  EXPECT_EQ(got.end_time, want.end_time);
  EXPECT_EQ(got.ops.starts, want.ops.starts);
  EXPECT_EQ(got.ops.finishes, want.ops.finishes);
  EXPECT_EQ(got.ops.cancels, want.ops.cancels);
  EXPECT_EQ(got.ops.sched_passes, want.ops.sched_passes);
  EXPECT_EQ(got.gateway_cancels, want.gateway_cancels);
  EXPECT_EQ(got.avg_max_queue, want.avg_max_queue);
  EXPECT_EQ(got.stream.jobs(), want.stream.jobs());
  expect_same_metrics(got.stream.metrics(), want.stream.metrics());
  const metrics::ClassifiedMetrics g = got.stream.classified();
  const metrics::ClassifiedMetrics w = want.stream.classified();
  expect_same_metrics(g.all, w.all);
  expect_same_metrics(g.redundant, w.redundant);
  expect_same_metrics(g.non_redundant, w.non_redundant);
}

TEST(Windowed, BitIdenticalToEagerStreamingAcrossWindowsAndEstimators) {
  for (const char* estimator : {"exact", "phi"}) {
    ExperimentConfig config = streaming_config();
    config.estimator = estimator;
    const SimResult eager = run_experiment(config);
    ASSERT_GT(eager.jobs_generated, 500u);
    // W = 1 exercises a refill per job; 64 is a typical window; the huge
    // window degenerates to one pull per cluster.
    for (const std::size_t window :
         {std::size_t{1}, std::size_t{64}, std::size_t{1} << 20}) {
      config.stream_window = window;
      const SimResult windowed = run_experiment(config);
      SCOPED_TRACE(std::string(estimator) + " W=" + std::to_string(window));
      expect_same_run(windowed, eager);
    }
  }
}

TEST(Windowed, RepeatedRunsHitTheDrawSegmentMemoAndStayBitIdentical) {
  // Input resolution memoizes the O(total jobs) user/redundancy substream
  // fast-forward per cluster segment; a repeated sweep point must hit that
  // memo (one hit per cluster) and reproduce the run bit-identically.
  ExperimentConfig config = streaming_config();
  config.stream_window = 64;
  const SimResult first = run_experiment(config);
  const workload::TraceCache& cache = workload::TraceCache::global();
  const std::uint64_t hits_before = cache.draw_hits();
  const std::uint64_t misses_before = cache.draw_misses();
  const SimResult second = run_experiment(config);
  EXPECT_EQ(cache.draw_hits(), hits_before + config.n_clusters);
  EXPECT_EQ(cache.draw_misses(), misses_before);
  expect_same_run(second, first);
  // A different redundant fraction still hits: chance() advances the
  // generator independently of p (see DrawSegmentKey), so fraction sweeps
  // share one fast-forward per segment.
  config.redundant_fraction = 0.25;
  run_experiment(config);
  EXPECT_EQ(cache.draw_hits(), hits_before + 2 * config.n_clusters);
  EXPECT_EQ(cache.draw_misses(), misses_before);
}

TEST(Windowed, ResidentTraceStateIsBoundedByTheWindow) {
  ExperimentConfig config = streaming_config();
  config.submit_horizon = 2.0 * 3600.0;
  const SimResult eager = run_experiment(config);
  config.stream_window = 32;
  const SimResult windowed = run_experiment(config);
  // The eager run holds every generated spec resident; the windowed run
  // holds checkpoint tables plus one 32-job buffer per cluster.
  ASSERT_GT(eager.resident_trace_bytes, 0u);
  ASSERT_GT(windowed.resident_trace_bytes, 0u);
  EXPECT_EQ(eager.resident_trace_bytes,
            eager.jobs_generated * sizeof(workload::JobSpec));
  EXPECT_LT(windowed.resident_trace_bytes, eager.resident_trace_bytes / 4);
  EXPECT_LT(windowed.live_state_bytes, eager.live_state_bytes);
}

TEST(Windowed, PdesKernelMatchesEagerPdesBitIdentically) {
  ExperimentConfig config = figure_config_quick();
  config.n_clusters = 4;
  config.submit_horizon = 0.4 * 3600.0;
  config.scheme = RedundancyScheme::all();
  config.seed = 11;
  config.pdes = true;
  config.cross_cluster_latency = 60.0;
  config.pdes_jobs = 2;
  const SimResult eager = run_experiment(config);
  ASSERT_GT(eager.jobs_generated, 0u);
  ASSERT_GT(eager.pdes_windows, 0u);

  config.stream_window = 32;
  const SimResult windowed = run_experiment(config);
  EXPECT_EQ(windowed.jobs_generated, eager.jobs_generated);
  EXPECT_EQ(windowed.pdes_windows, eager.pdes_windows);
  EXPECT_EQ(windowed.duplicate_starts, eager.duplicate_starts);
  EXPECT_EQ(windowed.ops.starts, eager.ops.starts);
  EXPECT_EQ(windowed.ops.finishes, eager.ops.finishes);
  EXPECT_EQ(windowed.ops.cancels, eager.ops.cancels);
  ASSERT_EQ(windowed.records.size(), eager.records.size());
  for (std::size_t i = 0; i < eager.records.size(); ++i) {
    EXPECT_EQ(windowed.records[i].grid_id, eager.records[i].grid_id)
        << "record " << i;
    EXPECT_EQ(windowed.records[i].origin_cluster,
              eager.records[i].origin_cluster)
        << "record " << i;
    EXPECT_EQ(windowed.records[i].redundant, eager.records[i].redundant)
        << "record " << i;
    EXPECT_EQ(windowed.records[i].submit_time, eager.records[i].submit_time)
        << "record " << i;
    EXPECT_EQ(windowed.records[i].start_time, eager.records[i].start_time)
        << "record " << i;
    EXPECT_EQ(windowed.records[i].finish_time, eager.records[i].finish_time)
        << "record " << i;
    EXPECT_EQ(windowed.records[i].requested_time,
              eager.records[i].requested_time)
        << "record " << i;
  }
  // PDES retains records by contract, but the *input* side is windowed:
  // checkpoint tables + per-cluster buffers, not whole streams.
  EXPECT_LT(windowed.resident_trace_bytes, eager.resident_trace_bytes);
}

TEST(Windowed, RelativeCampaignMatchesEagerStreaming) {
  ExperimentConfig config = streaming_config();
  config.submit_horizon = 1200.0;
  const RelativeMetrics eager = run_relative_campaign(config, 3, 1);
  config.stream_window = 128;
  const RelativeMetrics windowed = run_relative_campaign(config, 3, 1);
  EXPECT_EQ(windowed.reps, eager.reps);
  EXPECT_EQ(windowed.rel_avg_stretch, eager.rel_avg_stretch);
  EXPECT_EQ(windowed.rel_cv_stretch, eager.rel_cv_stretch);
  EXPECT_EQ(windowed.rel_max_stretch, eager.rel_max_stretch);
  EXPECT_EQ(windowed.win_rate, eager.win_rate);
}

TEST(Windowed, RejectsRetainedRecordsOnTheClassicKernel) {
  ExperimentConfig config = streaming_config();
  config.retain_records = true;
  config.stream_window = 64;
  EXPECT_THROW(run_experiment(config), std::invalid_argument);
}

TEST(Windowed, SwfTraceReplayIsAcceptedAndStillChecksTheFile) {
  // trace_files + stream_window used to be rejected outright; the
  // WindowSpool lifted that (bit-identity to retained replay is pinned in
  // swf_spool_test.cpp). A missing trace file still fails loudly — as a
  // file error from the spool build, not a config rejection.
  ExperimentConfig config = streaming_config();
  config.stream_window = 64;
  config.trace_files = {"/nonexistent.swf"};
  EXPECT_THROW(run_experiment(config), std::runtime_error);
}

}  // namespace
}  // namespace rrsim::core
