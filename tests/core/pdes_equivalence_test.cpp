// End-to-end equivalence suite for the PDES run path: identical configs
// must yield bit-identical per-job records for any worker count, the
// latency-0 / single-cluster degenerate cases must land on the classic
// kernel, and the unsupported-feature combinations must be rejected
// loudly rather than silently degrading.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "rrsim/core/experiment.h"
#include "rrsim/core/paper.h"

namespace rrsim::core {
namespace {

ExperimentConfig pdes_config(double latency_s, int jobs) {
  ExperimentConfig c = figure_config_quick();
  c.n_clusters = 4;
  c.submit_horizon = 0.4 * 3600.0;
  c.scheme = RedundancyScheme::all();
  c.seed = 11;
  c.pdes = true;
  c.cross_cluster_latency = latency_s;
  c.pdes_jobs = jobs;
  return c;
}

void expect_same_records(const metrics::JobRecords& a,
                         const metrics::JobRecords& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].grid_id, b[i].grid_id) << "record " << i;
    EXPECT_EQ(a[i].origin_cluster, b[i].origin_cluster) << "record " << i;
    EXPECT_EQ(a[i].winner_cluster, b[i].winner_cluster) << "record " << i;
    EXPECT_EQ(a[i].redundant, b[i].redundant) << "record " << i;
    EXPECT_EQ(a[i].replicas, b[i].replicas) << "record " << i;
    EXPECT_EQ(a[i].replicas_delivered, b[i].replicas_delivered)
        << "record " << i;
    EXPECT_EQ(a[i].nodes, b[i].nodes) << "record " << i;
    // Exact binary equality, not tolerance: PDES is the same arithmetic
    // in a different execution order only between jobs, never within one.
    EXPECT_EQ(a[i].submit_time, b[i].submit_time) << "record " << i;
    EXPECT_EQ(a[i].start_time, b[i].start_time) << "record " << i;
    EXPECT_EQ(a[i].finish_time, b[i].finish_time) << "record " << i;
    EXPECT_EQ(a[i].actual_time, b[i].actual_time) << "record " << i;
    EXPECT_EQ(a[i].requested_time, b[i].requested_time) << "record " << i;
  }
}

TEST(PdesEquivalence, RecordsBitIdenticalAcrossWorkerCounts) {
  for (const double latency : {1.0, 60.0}) {
    const SimResult ref = run_experiment(pdes_config(latency, 1));
    ASSERT_GT(ref.jobs_generated, 0u);
    ASSERT_GT(ref.pdes_windows, 0u);
    for (const int jobs : {2, 8}) {
      const SimResult got = run_experiment(pdes_config(latency, jobs));
      SCOPED_TRACE("latency=" + std::to_string(latency) +
                   " jobs=" + std::to_string(jobs));
      expect_same_records(ref.records, got.records);
      EXPECT_EQ(got.jobs_generated, ref.jobs_generated);
      EXPECT_EQ(got.pdes_windows, ref.pdes_windows);
      EXPECT_EQ(got.duplicate_starts, ref.duplicate_starts);
      EXPECT_EQ(got.duplicate_finishes, ref.duplicate_finishes);
      EXPECT_EQ(got.ops.starts, ref.ops.starts);
      EXPECT_EQ(got.ops.finishes, ref.ops.finishes);
      EXPECT_EQ(got.ops.cancels, ref.ops.cancels);
      EXPECT_EQ(got.ops.sched_passes, ref.ops.sched_passes);
    }
  }
}

TEST(PdesEquivalence, Table1StyleCellsBitIdenticalAcrossWorkerCounts) {
  // Table 1 varies scheduler x estimate model; the determinism guarantee
  // must hold for every cell, not just the fig1 defaults.
  for (const sched::Algorithm algo :
       {sched::Algorithm::kFcfs, sched::Algorithm::kCbf}) {
    ExperimentConfig c = pdes_config(60.0, 1);
    c.algorithm = algo;
    c.estimator = "phi";
    const SimResult ref = run_experiment(c);
    ASSERT_GT(ref.jobs_generated, 0u);
    c.pdes_jobs = 8;
    const SimResult got = run_experiment(c);
    SCOPED_TRACE("algo=" + std::to_string(static_cast<int>(algo)));
    expect_same_records(ref.records, got.records);
    EXPECT_EQ(got.pdes_windows, ref.pdes_windows);
  }
}

TEST(PdesEquivalence, ZeroLatencyTakesTheClassicKernel) {
  // pdes = true with latency 0 is the degenerate single-partition case:
  // it runs the sequential kernel and must reproduce it exactly.
  ExperimentConfig classic = pdes_config(0.0, 1);
  classic.pdes = false;
  classic.pdes_jobs = 0;
  const SimResult a = run_experiment(classic);

  ExperimentConfig degenerate = pdes_config(0.0, 8);
  const SimResult b = run_experiment(degenerate);
  expect_same_records(a.records, b.records);
  EXPECT_EQ(b.pdes_windows, 0u);  // never entered the windowed protocol
  EXPECT_EQ(b.duplicate_starts, 0u);
}

TEST(PdesEquivalence, SingleClusterFallsBackToClassic) {
  // One cluster has no cross-cluster edges: latency is irrelevant and
  // the classic kernel serves the run.
  ExperimentConfig one = pdes_config(60.0, 4);
  one.n_clusters = 1;
  one.scheme = RedundancyScheme::none();
  const SimResult a = run_experiment(one);
  EXPECT_EQ(a.pdes_windows, 0u);

  ExperimentConfig plain = one;
  plain.pdes = false;
  plain.cross_cluster_latency = 0.0;
  plain.pdes_jobs = 0;
  const SimResult b = run_experiment(plain);
  expect_same_records(a.records, b.records);
}

TEST(PdesEquivalence, LatencyMakesRedundancyMoreHarmful) {
  // The new measurable effect: with redundant requests everywhere, a
  // larger cross-cluster latency means more duplicate starts (cancels
  // arrive too late), burning capacity the zero-latency model never saw.
  const SimResult lo = run_experiment(pdes_config(1.0, 2));
  const SimResult hi = run_experiment(pdes_config(60.0, 2));
  EXPECT_GT(hi.duplicate_starts, 0u);
  EXPECT_GE(hi.duplicate_starts, lo.duplicate_starts);
}

TEST(PdesEquivalence, TruncateProtocolSupported) {
  ExperimentConfig c = pdes_config(1.0, 2);
  c.drain = false;
  c.truncate_factor = 1.0;
  const SimResult r = run_experiment(c);
  EXPECT_LE(r.records.size(), r.jobs_generated);
  for (const auto& rec : r.records) {
    EXPECT_LE(rec.finish_time, c.submit_horizon + 1e-9);
  }
}

TEST(PdesEquivalence, RejectsUnsupportedCombinations) {
  // Latency flag sanity is checked before any dispatch.
  ExperimentConfig c = pdes_config(1.0, 1);
  c.pdes = false;  // latency > 0 without --pdes
  EXPECT_THROW(run_experiment(c), std::invalid_argument);

  c = pdes_config(-1.0, 1);
  EXPECT_THROW(run_experiment(c), std::invalid_argument);

  // Features that assume the zero-delay single-gateway kernel.
  c = pdes_config(1.0, 1);
  c.middleware_ops_per_sec = 1000.0;
  EXPECT_THROW(run_experiment(c), std::invalid_argument);

  c = pdes_config(1.0, 1);
  c.record_predictions = true;
  EXPECT_THROW(run_experiment(c), std::invalid_argument);

  c = pdes_config(1.0, 1);
  c.retain_records = false;
  EXPECT_THROW(run_experiment(c), std::invalid_argument);

  c = pdes_config(1.0, 1);
  c.placement = "least-loaded";
  EXPECT_THROW(run_experiment(c), std::invalid_argument);

  c = pdes_config(1.0, 1);
  c.drain = false;
  c.truncate_factor = 0.0;
  EXPECT_THROW(run_experiment(c), std::invalid_argument);
}

}  // namespace
}  // namespace rrsim::core
