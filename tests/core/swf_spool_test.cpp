// SWF replay through the spill-to-disk window spool (trace_files +
// stream_window > 0) must reproduce the retained whole-stream replay
// bit-identically — including the integer-time ties real archive traces
// are full of, where same-second arrivals from different clusters must
// fire in the retained path's (time, cluster, within-file index) order.
#include <cstddef>
#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

#include "rrsim/core/experiment.h"
#include "rrsim/metrics/summary.h"
#include "rrsim/workload/swf.h"
#include "rrsim/workload/trace_cache.h"

namespace rrsim::core {
namespace {

/// A synthetic trace built for tie-breaking trouble: three jobs per
/// integer timestamp (within-file ties), replayed onto several clusters
/// (cross-cluster ties at every arrival), some jobs wider than the
/// clusters (exercises the width filter), and a tail past the horizon
/// (exercises the horizon cut).
std::string write_ties_trace() {
  workload::JobStream s;
  for (std::size_t i = 0; i < 150; ++i) {
    workload::JobSpec j;
    j.submit_time = 60.0 * static_cast<double>(i / 3);
    j.nodes = 1 + static_cast<int>((i * 7) % 24);  // up to 24 > 16 nodes
    j.runtime = 30.0 + static_cast<double>(i % 17) * 12.5;
    j.requested_time = j.runtime + static_cast<double>(i % 5) * 10.0;
    s.push_back(j);
  }
  const std::string path = ::testing::TempDir() + "/rrsim_ties.swf";
  workload::write_swf_file(path, s);
  return path;
}

ExperimentConfig replay_config(const std::string& path) {
  ExperimentConfig c;
  c.n_clusters = 3;  // same file on every cluster: ties at every arrival
  c.nodes_per_cluster = 16;
  c.submit_horizon = 2400.0;  // cuts the trace's tail
  c.trace_files = {path};
  c.scheme = RedundancyScheme::fixed(2);
  c.redundant_fraction = 0.5;
  c.seed = 13;
  return c;
}

void expect_same_metrics(const metrics::ScheduleMetrics& got,
                         const metrics::ScheduleMetrics& want) {
  EXPECT_EQ(got.jobs, want.jobs);
  EXPECT_EQ(got.avg_stretch, want.avg_stretch);
  EXPECT_EQ(got.cv_stretch_percent, want.cv_stretch_percent);
  EXPECT_EQ(got.max_stretch, want.max_stretch);
  EXPECT_EQ(got.avg_turnaround, want.avg_turnaround);
  EXPECT_EQ(got.avg_wait, want.avg_wait);
}

TEST(SwfSpool, WindowedReplayMatchesRetainedBitIdentically) {
  const std::string path = write_ties_trace();
  ExperimentConfig retained = replay_config(path);
  const SimResult eager = run_experiment(retained);
  ASSERT_GT(eager.jobs_generated, 100u);
  const metrics::ScheduleMetrics want = metrics::compute_metrics(eager.records);
  const metrics::ClassifiedMetrics want_cls =
      metrics::compute_classified_metrics(eager.records);

  for (const std::size_t window :
       {std::size_t{1}, std::size_t{4}, std::size_t{64}}) {
    SCOPED_TRACE("W=" + std::to_string(window));
    ExperimentConfig windowed = replay_config(path);
    windowed.retain_records = false;
    windowed.stream_window = window;
    const SimResult got = run_experiment(windowed);
    EXPECT_EQ(got.jobs_generated, eager.jobs_generated);
    EXPECT_EQ(got.end_time, eager.end_time);
    EXPECT_EQ(got.ops.starts, eager.ops.starts);
    EXPECT_EQ(got.ops.finishes, eager.ops.finishes);
    EXPECT_EQ(got.ops.cancels, eager.ops.cancels);
    EXPECT_EQ(got.ops.sched_passes, eager.ops.sched_passes);
    EXPECT_EQ(got.gateway_cancels, eager.gateway_cancels);
    EXPECT_EQ(got.avg_max_queue, eager.avg_max_queue);
    expect_same_metrics(got.stream.metrics(), want);
    const metrics::ClassifiedMetrics cls = got.stream.classified();
    expect_same_metrics(cls.all, want_cls.all);
    expect_same_metrics(cls.redundant, want_cls.redundant);
    expect_same_metrics(cls.non_redundant, want_cls.non_redundant);
    // The input side went through the spool: resident trace state is the
    // checkpoint index plus O(window) buffers, not the whole trace.
    EXPECT_LT(got.resident_trace_bytes, eager.resident_trace_bytes);
  }
}

TEST(SwfSpool, PdesWindowedReplayMatchesEagerRecordByRecord) {
  const std::string path = write_ties_trace();
  ExperimentConfig config = replay_config(path);
  config.pdes = true;
  config.cross_cluster_latency = 60.0;
  config.pdes_jobs = 2;
  const SimResult eager = run_experiment(config);
  ASSERT_GT(eager.jobs_generated, 0u);
  ASSERT_GT(eager.pdes_windows, 0u);

  config.stream_window = 8;
  const SimResult windowed = run_experiment(config);
  EXPECT_EQ(windowed.jobs_generated, eager.jobs_generated);
  EXPECT_EQ(windowed.pdes_windows, eager.pdes_windows);
  ASSERT_EQ(windowed.records.size(), eager.records.size());
  for (std::size_t i = 0; i < eager.records.size(); ++i) {
    EXPECT_EQ(windowed.records[i].grid_id, eager.records[i].grid_id)
        << "record " << i;
    EXPECT_EQ(windowed.records[i].origin_cluster,
              eager.records[i].origin_cluster)
        << "record " << i;
    EXPECT_EQ(windowed.records[i].redundant, eager.records[i].redundant)
        << "record " << i;
    EXPECT_EQ(windowed.records[i].submit_time, eager.records[i].submit_time)
        << "record " << i;
    EXPECT_EQ(windowed.records[i].start_time, eager.records[i].start_time)
        << "record " << i;
    EXPECT_EQ(windowed.records[i].finish_time, eager.records[i].finish_time)
        << "record " << i;
  }
  EXPECT_LT(windowed.resident_trace_bytes, eager.resident_trace_bytes);
}

TEST(SwfSpool, RepeatedWindowedRunsShareOneSpool) {
  const std::string path = write_ties_trace();
  ExperimentConfig config = replay_config(path);
  config.retain_records = false;
  config.stream_window = 16;

  const workload::TraceCache& cache = workload::TraceCache::global();
  const std::uint64_t hits0 = cache.spool_hits();
  const std::uint64_t misses0 = cache.spool_misses();
  const SimResult first = run_experiment(config);
  // Homogeneous clusters replaying one file share one SpoolKey: the
  // first cluster builds (miss), the rest attach readers (hits).
  EXPECT_EQ(cache.spool_misses(), misses0 + 1);
  EXPECT_EQ(cache.spool_hits(), hits0 + config.n_clusters - 1);
  const SimResult second = run_experiment(config);
  EXPECT_EQ(cache.spool_misses(), misses0 + 1);
  EXPECT_EQ(cache.spool_hits(), hits0 + 2 * config.n_clusters - 1);
  EXPECT_EQ(second.jobs_generated, first.jobs_generated);
  EXPECT_EQ(second.end_time, first.end_time);
  EXPECT_EQ(second.stream.metrics().avg_stretch,
            first.stream.metrics().avg_stretch);
}

TEST(SwfSpool, HorizonAndWidthFiltersMatchTheRetainedSemantics) {
  // The spool is built from the same load_swf_stream the retained path
  // uses, so the job count visible to both modes is the filtered count.
  const std::string path = write_ties_trace();
  ExperimentConfig retained = replay_config(path);
  const SimResult eager = run_experiment(retained);
  workload::JobStream raw = workload::read_swf_file(path);
  std::size_t kept = 0;
  const double t0 = raw.front().submit_time;
  for (const auto& j : raw) {
    if (j.submit_time - t0 > 2400.0) break;
    if (j.nodes > 16) continue;
    ++kept;
  }
  ASSERT_LT(kept, raw.size());  // both filters actually engaged
  EXPECT_EQ(eager.jobs_generated, retained.n_clusters * kept);

  ExperimentConfig windowed = replay_config(path);
  windowed.retain_records = false;
  windowed.stream_window = 4;
  EXPECT_EQ(run_experiment(windowed).jobs_generated, eager.jobs_generated);
}

}  // namespace
}  // namespace rrsim::core
