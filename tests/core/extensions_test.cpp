// End-to-end coverage of the extension features through the experiment
// engine: middleware stations, per-user limits, informed placement.
#include <gtest/gtest.h>

#include "rrsim/core/campaign.h"
#include "rrsim/core/paper.h"
#include "rrsim/grid/gateway.h"
#include "rrsim/grid/platform.h"
#include "rrsim/workload/swf.h"

namespace rrsim::core {
namespace {

ExperimentConfig small_config() {
  ExperimentConfig c = figure_config_quick();
  c.n_clusters = 4;
  c.submit_horizon = 0.5 * 3600.0;
  c.seed = 17;
  return c;
}

TEST(MiddlewareExperiment, StatsPopulatedAndJobsConserved) {
  ExperimentConfig c = small_config();
  c.scheme = RedundancyScheme::all();
  c.middleware_ops_per_sec = 5.0;
  const SimResult r = run_experiment(c);
  EXPECT_EQ(r.records.size(), r.jobs_generated);
  EXPECT_GT(r.middleware_max_backlog, 0.0);
  EXPECT_GT(r.middleware_mean_sojourn, 0.0);
  // Service is 0.2 s/op; sojourn can exceed it only via queueing.
  EXPECT_GE(r.middleware_mean_sojourn, 0.2 - 1e-9);
}

TEST(MiddlewareExperiment, SlowerMiddlewareMeansLongerSojourn) {
  ExperimentConfig fast = small_config();
  fast.scheme = RedundancyScheme::all();
  fast.middleware_ops_per_sec = 50.0;
  ExperimentConfig slow = fast;
  slow.middleware_ops_per_sec = 0.5;
  const SimResult rf = run_experiment(fast);
  const SimResult rs = run_experiment(slow);
  EXPECT_GT(rs.middleware_mean_sojourn, rf.middleware_mean_sojourn);
  EXPECT_GE(rs.middleware_max_backlog, rf.middleware_max_backlog);
}

TEST(MiddlewareExperiment, DisabledByDefault) {
  const SimResult r = run_experiment(small_config());
  EXPECT_EQ(r.middleware_max_backlog, 0.0);
  EXPECT_EQ(r.middleware_mean_sojourn, 0.0);
}

TEST(MiddlewareExperiment, IncompatibleWithPredictions) {
  ExperimentConfig c = small_config();
  c.middleware_ops_per_sec = 1.0;
  c.record_predictions = true;
  EXPECT_THROW(run_experiment(c), std::invalid_argument);
}

TEST(UserLimitExperiment, TrimsReplicasButConservesJobs) {
  ExperimentConfig c = small_config();
  c.scheme = RedundancyScheme::all();
  c.users_per_cluster = 2;
  c.per_user_pending_limit = 1;
  const SimResult r = run_experiment(c);
  EXPECT_EQ(r.records.size(), r.jobs_generated);
  EXPECT_GT(r.replicas_rejected, 0u);
  // Delivered replicas never exceed intent.
  for (const auto& rec : r.records) {
    EXPECT_LE(rec.replicas_delivered, rec.replicas);
    EXPECT_GE(rec.replicas_delivered, 1);
  }
}

TEST(UserLimitExperiment, TighterCapRejectsMore) {
  ExperimentConfig loose = small_config();
  loose.scheme = RedundancyScheme::all();
  loose.users_per_cluster = 2;
  loose.per_user_pending_limit = 8;
  ExperimentConfig tight = loose;
  tight.per_user_pending_limit = 1;
  const SimResult rl = run_experiment(loose);
  const SimResult rt = run_experiment(tight);
  EXPECT_GT(rt.replicas_rejected, rl.replicas_rejected);
}

TEST(UserLimitExperiment, ValidatesConfiguration) {
  ExperimentConfig c = small_config();
  c.per_user_pending_limit = -1;
  EXPECT_THROW(run_experiment(c), std::invalid_argument);
  c = small_config();
  c.users_per_cluster = 0;
  EXPECT_THROW(run_experiment(c), std::invalid_argument);
}

TEST(InformedPlacementExperiment, RunsAndBeatsBlindChoiceHere) {
  // N = 10 (the figure regime, where redundancy helps): least-loaded
  // targeting must be at least as good as blind uniform choice.
  ExperimentConfig blind = figure_config();
  blind.submit_horizon = 1.5 * 3600.0;
  blind.seed = 17;
  blind.scheme = RedundancyScheme::fixed(2);
  ExperimentConfig informed = blind;
  informed.placement = "least-loaded";
  const RelativeMetrics rb = run_relative_campaign(blind, 3);
  const RelativeMetrics ri = run_relative_campaign(informed, 3);
  EXPECT_LE(ri.rel_avg_stretch, rb.rel_avg_stretch * 1.1);
  EXPECT_LT(ri.rel_avg_stretch, 1.0);
}

TEST(MoldableGateway, WorksThroughMiddlewareToo) {
  // Shaped replicas + middleware stations compose.
  ExperimentConfig c = small_config();
  (void)c;  // engine-level moldable submission is exercised at grid level;
            // this test pins that the pieces at least coexist in one sim.
  des::Simulation sim;
  grid::Platform platform(
      sim, grid::homogeneous_configs(1, 8, workload::LublinParams{}),
      sched::Algorithm::kEasy);
  grid::Gateway gateway(sim, platform);
  grid::MiddlewareStation station(sim, 2.0);
  gateway.set_middleware({&station});
  grid::GridJob job;
  job.id = 1;
  job.origin = 0;
  job.targets = {0, 0};
  workload::JobSpec wide;
  wide.nodes = 8;
  wide.runtime = 10.0;
  wide.requested_time = 10.0;
  workload::JobSpec narrow;
  narrow.nodes = 4;
  narrow.runtime = 18.0;
  narrow.requested_time = 18.0;
  job.spec = wide;
  job.replica_specs = {wide, narrow};
  job.redundant = true;
  gateway.submit(job);
  sim.run();
  ASSERT_EQ(gateway.records().size(), 1u);
  EXPECT_GT(station.processed(), 0u);
}

TEST(TraceReplayExperiment, ReplaysSwfAcrossClusters) {
  // Generate a trace, write it to disk, replay it on a two-cluster
  // platform with redundancy — the paper's cross-check workflow.
  util::Rng rng(3);
  const workload::LublinModel model(
      workload::LublinParams{}.with_mean_interarrival(60.0), 64);
  workload::JobStream stream = model.generate_stream(rng, 3600.0);
  ASSERT_FALSE(stream.empty());
  const std::string path = ::testing::TempDir() + "/rrsim_trace.swf";
  workload::write_swf_file(path, stream);

  ExperimentConfig c;
  c.n_clusters = 2;
  c.nodes_per_cluster = 64;
  c.submit_horizon = 3600.0;
  c.trace_files = {path};
  c.scheme = RedundancyScheme::all();
  const SimResult r = run_experiment(c);
  // Both clusters replay the same trace.
  EXPECT_EQ(r.jobs_generated, 2 * stream.size());
  EXPECT_EQ(r.records.size(), r.jobs_generated);
  // Requested times come from the trace (exact here), not an estimator.
  for (const auto& rec : r.records) {
    EXPECT_LE(rec.actual_time, rec.requested_time + 1e-9);
  }
}

TEST(TraceReplayExperiment, SkipsJobsWiderThanCluster) {
  util::Rng rng(4);
  const workload::LublinModel model(
      workload::LublinParams{}.with_mean_interarrival(60.0), 128);
  workload::JobStream stream = model.generate_stream(rng, 3600.0);
  const std::string path = ::testing::TempDir() + "/rrsim_trace_wide.swf";
  workload::write_swf_file(path, stream);
  std::size_t fitting = 0;
  for (const auto& s : stream) {
    if (s.nodes <= 16) ++fitting;
  }
  ExperimentConfig c;
  c.n_clusters = 1;
  c.nodes_per_cluster = 16;  // most of the trace does not fit
  c.submit_horizon = 3600.0;
  c.trace_files = {path};
  const SimResult r = run_experiment(c);
  EXPECT_EQ(r.jobs_generated, fitting);
}

}  // namespace
}  // namespace rrsim::core
