#include "rrsim/core/campaign.h"

#include <gtest/gtest.h>

#include "rrsim/core/paper.h"

namespace rrsim::core {
namespace {

ExperimentConfig tiny_config() {
  ExperimentConfig c = figure_config_quick();
  c.n_clusters = 4;
  c.submit_horizon = 0.4 * 3600.0;
  c.seed = 3;
  return c;
}

TEST(RelativeCampaign, RejectsBadArguments) {
  ExperimentConfig c = tiny_config();
  c.scheme = RedundancyScheme::all();
  EXPECT_THROW(run_relative_campaign(c, 0), std::invalid_argument);
  c.scheme = RedundancyScheme::none();
  EXPECT_THROW(run_relative_campaign(c, 2), std::invalid_argument);
}

TEST(RelativeCampaign, ProducesOneRatioPerRepetition) {
  ExperimentConfig c = tiny_config();
  c.scheme = RedundancyScheme::fixed(2);
  const RelativeMetrics rel = run_relative_campaign(c, 3);
  EXPECT_EQ(rel.reps, 3u);
  EXPECT_EQ(rel.per_rep_rel_stretch.size(), 3u);
  EXPECT_GT(rel.rel_avg_stretch, 0.0);
  EXPECT_GT(rel.rel_cv_stretch, 0.0);
  EXPECT_GE(rel.win_rate, 0.0);
  EXPECT_LE(rel.win_rate, 1.0);
  EXPECT_GE(rel.worst_rel_stretch, rel.rel_avg_stretch * 0.999);
}

TEST(RelativeCampaign, PairedStreamsIdenticalUnderNone) {
  // The two runs of each pair must see identical streams: a paired run
  // of NONE-vs-NONE would be exactly 1.0. We emulate it by comparing two
  // independent run_experiment calls with the same seed.
  ExperimentConfig c = tiny_config();
  const SimResult a = run_experiment(c);
  const SimResult b = run_experiment(c);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    ASSERT_EQ(a.records[i].grid_id, b.records[i].grid_id);
    ASSERT_EQ(a.records[i].start_time, b.records[i].start_time);
  }
}

TEST(RelativeCampaign, SchemeDoesNotPerturbJobStreams) {
  // Changing the scheme must not change which jobs arrive when/where:
  // compare the multiset of (submit, nodes, actual) between NONE and ALL.
  ExperimentConfig none = tiny_config();
  ExperimentConfig all = tiny_config();
  all.scheme = RedundancyScheme::all();
  const SimResult rn = run_experiment(none);
  const SimResult ra = run_experiment(all);
  ASSERT_EQ(rn.records.size(), ra.records.size());
  auto key = [](const metrics::JobRecord& r) {
    return std::tuple(r.grid_id, r.submit_time, r.nodes, r.actual_time,
                      r.origin_cluster);
  };
  std::vector<std::tuple<std::uint64_t, double, int, double, std::size_t>> kn;
  std::vector<std::tuple<std::uint64_t, double, int, double, std::size_t>> ka;
  for (const auto& r : rn.records) kn.push_back(key(r));
  for (const auto& r : ra.records) ka.push_back(key(r));
  std::sort(kn.begin(), kn.end());
  std::sort(ka.begin(), ka.end());
  EXPECT_EQ(kn, ka);
}

TEST(ClassifiedCampaign, CountsPerClass) {
  ExperimentConfig c = tiny_config();
  c.scheme = RedundancyScheme::all();
  c.redundant_fraction = 0.5;
  const ClassifiedCampaign res = run_classified_campaign(c, 2);
  EXPECT_EQ(res.reps, 2u);
  EXPECT_GT(res.redundant_jobs, 0u);
  EXPECT_GT(res.non_redundant_jobs, 0u);
  EXPECT_GT(res.avg_stretch_all, 0.0);
  EXPECT_GT(res.avg_stretch_redundant, 0.0);
  EXPECT_GT(res.avg_stretch_non_redundant, 0.0);
}

TEST(ClassifiedCampaign, ZeroPercentHasNoRedundantJobs) {
  ExperimentConfig c = tiny_config();
  c.scheme = RedundancyScheme::all();
  c.redundant_fraction = 0.0;
  const ClassifiedCampaign res = run_classified_campaign(c, 1);
  EXPECT_EQ(res.redundant_jobs, 0u);
  EXPECT_EQ(res.avg_stretch_redundant, 0.0);
  EXPECT_GT(res.non_redundant_jobs, 0u);
}

TEST(PredictionCampaign, RecordsRatiosForBothClasses) {
  ExperimentConfig c = tiny_config();
  c.algorithm = sched::Algorithm::kCbf;
  c.estimator = "uniform216";
  c.scheme = RedundancyScheme::all();
  c.redundant_fraction = 0.4;
  const PredictionCampaign res = run_prediction_campaign(c, 1);
  EXPECT_GT(res.all.jobs, 0u);
  EXPECT_GT(res.redundant.jobs, 0u);
  EXPECT_GT(res.non_redundant.jobs, 0u);
  // Conservative requested times make queue-based predictions
  // over-estimates on average.
  EXPECT_GT(res.all.avg_ratio, 1.0);
}

}  // namespace
}  // namespace rrsim::core
