#include "rrsim/core/experiment.h"

#include <gtest/gtest.h>

#include <array>
#include <set>

#include "rrsim/core/paper.h"

namespace rrsim::core {
namespace {

ExperimentConfig small_config() {
  ExperimentConfig c = figure_config_quick();
  c.n_clusters = 3;
  c.submit_horizon = 0.5 * 3600.0;
  c.seed = 7;
  return c;
}

TEST(Experiment, ValidatesConfig) {
  ExperimentConfig c = small_config();
  c.n_clusters = 0;
  EXPECT_THROW(run_experiment(c), std::invalid_argument);

  c = small_config();
  c.cluster_nodes = {128, 128};  // wrong length for 3 clusters
  EXPECT_THROW(run_experiment(c), std::invalid_argument);

  c = small_config();
  c.cluster_mean_iat = {5.0};
  EXPECT_THROW(run_experiment(c), std::invalid_argument);

  c = small_config();
  c.redundant_fraction = 1.5;
  EXPECT_THROW(run_experiment(c), std::invalid_argument);

  c = small_config();
  c.submit_horizon = -1.0;
  EXPECT_THROW(run_experiment(c), std::invalid_argument);

  c = small_config();
  c.drain = false;
  c.truncate_factor = 0.0;
  EXPECT_THROW(run_experiment(c), std::invalid_argument);
}

TEST(Experiment, DrainCompletesEveryJob) {
  const SimResult r = run_experiment(small_config());
  EXPECT_GT(r.jobs_generated, 0u);
  EXPECT_EQ(r.records.size(), r.jobs_generated);
  EXPECT_EQ(r.ops.finishes, r.jobs_generated);
}

TEST(Experiment, TruncationKeepsOnlyCompletedJobs) {
  ExperimentConfig c = small_config();
  c.drain = false;
  c.truncate_factor = 1.0;
  const SimResult r = run_experiment(c);
  EXPECT_LE(r.records.size(), r.jobs_generated);
  for (const auto& rec : r.records) {
    EXPECT_LE(rec.finish_time, c.submit_horizon + 1e-9);
  }
}

TEST(Experiment, SchemeNoneHasSingleReplicas) {
  const SimResult r = run_experiment(small_config());
  for (const auto& rec : r.records) {
    EXPECT_FALSE(rec.redundant);
    EXPECT_EQ(rec.replicas, 1);
    EXPECT_EQ(rec.winner_cluster, rec.origin_cluster);
  }
}

TEST(Experiment, SchemeAllReplicatesEverywhere) {
  ExperimentConfig c = small_config();
  c.scheme = RedundancyScheme::all();
  const SimResult r = run_experiment(c);
  for (const auto& rec : r.records) {
    EXPECT_TRUE(rec.redundant);
    EXPECT_EQ(rec.replicas, 3);
  }
  EXPECT_GT(r.gateway_cancels, 0u);
}

TEST(Experiment, RedundantFractionSplitsPopulation) {
  ExperimentConfig c = small_config();
  c.scheme = RedundancyScheme::all();
  c.redundant_fraction = 0.5;
  const SimResult r = run_experiment(c);
  std::size_t redundant = 0;
  for (const auto& rec : r.records) {
    if (rec.redundant) ++redundant;
  }
  const double frac =
      static_cast<double>(redundant) / static_cast<double>(r.records.size());
  EXPECT_NEAR(frac, 0.5, 0.1);
}

TEST(Experiment, HeterogeneousClusterSizesRespected) {
  ExperimentConfig c = small_config();
  c.cluster_nodes = {16, 64, 256};
  c.scheme = RedundancyScheme::all();
  const SimResult r = run_experiment(c);
  for (const auto& rec : r.records) {
    // A job never runs on a cluster smaller than its node count, and
    // never exceeds its origin's size.
    EXPECT_LE(rec.nodes, c.cluster_nodes[rec.winner_cluster]);
    EXPECT_LE(rec.nodes, c.cluster_nodes[rec.origin_cluster]);
  }
}

TEST(Experiment, PerClusterIatOverride) {
  ExperimentConfig c = small_config();
  c.cluster_mean_iat = {30.0, 60.0, 120.0};
  const SimResult r = run_experiment(c);
  // Cluster 0 should originate roughly twice as many jobs as cluster 1.
  std::array<std::size_t, 3> counts{};
  for (const auto& rec : r.records) ++counts[rec.origin_cluster];
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[1], counts[2]);
}

TEST(Experiment, GridIdsUniqueAndDense) {
  const SimResult r = run_experiment(small_config());
  std::set<std::uint64_t> ids;
  for (const auto& rec : r.records) ids.insert(rec.grid_id);
  EXPECT_EQ(ids.size(), r.records.size());
  EXPECT_EQ(*ids.begin(), 1u);
  EXPECT_EQ(*ids.rbegin(), r.records.size());
}

TEST(Experiment, OpsCountersConsistent) {
  ExperimentConfig c = small_config();
  c.scheme = RedundancyScheme::fixed(2);
  const SimResult r = run_experiment(c);
  // Every grid job delivers `replicas_delivered` scheduler requests.
  std::uint64_t expected_submits = 0;
  for (const auto& rec : r.records) {
    expected_submits += static_cast<std::uint64_t>(rec.replicas_delivered);
    ASSERT_LE(rec.replicas_delivered, rec.replicas);
  }
  EXPECT_EQ(r.ops.submits, expected_submits);
  // starts == finishes == grid jobs; non-winning replicas were cancelled
  // or declined, never run.
  EXPECT_EQ(r.ops.starts, r.jobs_generated);
  EXPECT_EQ(r.ops.finishes, r.jobs_generated);
  EXPECT_EQ(r.gateway_cancels + r.jobs_generated, expected_submits);
}

TEST(Experiment, LoadModesProduceDifferentArrivalRates) {
  ExperimentConfig shared = small_config();
  ExperimentConfig peak = small_config();
  peak.load_mode = LoadMode::kPerClusterPeak;
  peak.submit_horizon = 600.0;  // keep the overloaded run small
  shared.submit_horizon = 600.0;
  const SimResult rs = run_experiment(shared);
  const SimResult rp = run_experiment(peak);
  // Per-cluster peak generates ~n_clusters times more jobs.
  EXPECT_GT(rp.jobs_generated, 2 * rs.jobs_generated);
}

TEST(Experiment, CalibratedModeHitsModerateLoad) {
  ExperimentConfig c = small_config();
  c.load_mode = LoadMode::kCalibrated;
  c.target_utilization = 0.5;
  c.submit_horizon = 4 * 3600.0;
  const SimResult r = run_experiment(c);
  // At 50% load with drain, the tail past the horizon is bounded by the
  // last jobs' own runtimes (clamped at max_runtime), not by backlog.
  EXPECT_LT(r.end_time,
            c.submit_horizon + c.base_workload.max_runtime + 3600.0);
}

TEST(Experiment, QueueGrowthReportedPerCluster) {
  ExperimentConfig c = small_config();
  const SimResult r = run_experiment(c);
  EXPECT_EQ(r.queue_growth_per_hour.size(), c.n_clusters);
}

TEST(PaperConfig, MatchesDocumentedDefaults) {
  const ExperimentConfig c = figure_config();
  EXPECT_EQ(c.n_clusters, 10u);
  EXPECT_EQ(c.nodes_per_cluster, 128);
  EXPECT_EQ(c.algorithm, sched::Algorithm::kEasy);
  EXPECT_EQ(c.load_mode, LoadMode::kSharedPeak);
  EXPECT_DOUBLE_EQ(c.submit_horizon, 6.0 * 3600.0);
  EXPECT_NEAR(c.base_workload.mean_interarrival(), kFigureBaseInterarrival,
              1e-9);
  EXPECT_TRUE(c.scheme.is_none());
}

}  // namespace
}  // namespace rrsim::core
