// Streaming (retain_records = false) runs must reproduce the retained
// pipeline's results: same simulated schedule, same metrics — bit-identical
// under the Lublin model, where cross-cluster submit-time ties are
// measure-zero — while keeping O(live jobs) memory.
#include "rrsim/core/experiment.h"

#include <gtest/gtest.h>

#include "rrsim/core/campaign.h"
#include "rrsim/metrics/summary.h"

namespace rrsim::core {
namespace {

ExperimentConfig small_config() {
  ExperimentConfig config;
  config.n_clusters = 4;
  config.nodes_per_cluster = 32;
  config.submit_horizon = 1200.0;
  config.scheme = RedundancyScheme::all();
  config.redundant_fraction = 0.5;
  config.seed = 7;
  return config;
}

void expect_same_metrics(const metrics::ScheduleMetrics& got,
                         const metrics::ScheduleMetrics& want) {
  EXPECT_EQ(got.jobs, want.jobs);
  EXPECT_EQ(got.avg_stretch, want.avg_stretch);
  EXPECT_EQ(got.cv_stretch_percent, want.cv_stretch_percent);
  EXPECT_EQ(got.max_stretch, want.max_stretch);
  EXPECT_EQ(got.avg_turnaround, want.avg_turnaround);
  EXPECT_EQ(got.avg_wait, want.avg_wait);
}

TEST(Streaming, BitIdenticalScheduleAndMetrics) {
  ExperimentConfig config = small_config();
  const SimResult retained = run_experiment(config);
  config.retain_records = false;
  const SimResult streamed = run_experiment(config);

  // The simulated schedule itself must be unchanged, not just the
  // summary statistics.
  EXPECT_FALSE(retained.streamed);
  EXPECT_TRUE(streamed.streamed);
  EXPECT_EQ(streamed.jobs_generated, retained.jobs_generated);
  EXPECT_EQ(streamed.end_time, retained.end_time);
  EXPECT_EQ(streamed.ops.starts, retained.ops.starts);
  EXPECT_EQ(streamed.ops.finishes, retained.ops.finishes);
  EXPECT_EQ(streamed.gateway_cancels, retained.gateway_cancels);
  EXPECT_EQ(streamed.avg_max_queue, retained.avg_max_queue);

  EXPECT_TRUE(streamed.records.empty());
  EXPECT_EQ(streamed.stream.jobs(), retained.records.size());
  expect_same_metrics(streamed.stream.metrics(),
                      metrics::compute_metrics(retained.records));
  const metrics::ClassifiedMetrics batch =
      metrics::compute_classified_metrics(retained.records);
  const metrics::ClassifiedMetrics online = streamed.stream.classified();
  expect_same_metrics(online.all, batch.all);
  expect_same_metrics(online.redundant, batch.redundant);
  expect_same_metrics(online.non_redundant, batch.non_redundant);
}

TEST(Streaming, PredictionAccuracyMatchesBatch) {
  ExperimentConfig config = small_config();
  config.record_predictions = true;
  const SimResult retained = run_experiment(config);
  config.retain_records = false;
  const SimResult streamed = run_experiment(config);
  for (auto cls : {std::optional<bool>{}, std::optional<bool>{true},
                   std::optional<bool>{false}}) {
    const metrics::PredictionAccuracy batch =
        metrics::compute_prediction_accuracy(retained.records, cls);
    const metrics::PredictionAccuracy online = streamed.stream.prediction(cls);
    EXPECT_EQ(online.jobs, batch.jobs);
    EXPECT_EQ(online.avg_ratio, batch.avg_ratio);
    EXPECT_EQ(online.cv_ratio_percent, batch.cv_ratio_percent);
  }
}

TEST(Streaming, WorkspaceAlternatesModesCleanly) {
  // Reusing one workspace across modes must not leak state either way.
  ExperimentConfig config = small_config();
  ExperimentWorkspace ws;
  const SimResult r1 = run_experiment(config, ws);
  config.retain_records = false;
  const SimResult s = run_experiment(config, ws);
  config.retain_records = true;
  const SimResult r2 = run_experiment(config, ws);
  EXPECT_EQ(r1.records.size(), r2.records.size());
  EXPECT_EQ(metrics::compute_metrics(r1.records).avg_stretch,
            metrics::compute_metrics(r2.records).avg_stretch);
  EXPECT_EQ(s.stream.metrics().avg_stretch,
            metrics::compute_metrics(r1.records).avg_stretch);
}

TEST(Streaming, LiveStateIsReportedAndSmallerThanRetained) {
  ExperimentConfig config = small_config();
  config.submit_horizon = 3600.0;
  const SimResult retained = run_experiment(config);
  config.retain_records = false;
  const SimResult streamed = run_experiment(config);
  ASSERT_GT(retained.live_state_bytes, 0u);
  ASSERT_GT(streamed.live_state_bytes, 0u);
  // Retained mode stages every grid job for the whole run; streaming keeps
  // only live jobs (plus 8 bytes/job of pre-drawn randomness).
  EXPECT_LT(streamed.live_state_bytes, retained.live_state_bytes);
}

TEST(Streaming, RelativeCampaignMatchesRetained) {
  ExperimentConfig config = small_config();
  const RelativeMetrics retained = run_relative_campaign(config, 3, 1);
  config.retain_records = false;
  const RelativeMetrics streamed = run_relative_campaign(config, 3, 1);
  EXPECT_EQ(streamed.reps, retained.reps);
  EXPECT_EQ(streamed.rel_avg_stretch, retained.rel_avg_stretch);
  EXPECT_EQ(streamed.rel_cv_stretch, retained.rel_cv_stretch);
  EXPECT_EQ(streamed.rel_max_stretch, retained.rel_max_stretch);
  EXPECT_EQ(streamed.win_rate, retained.win_rate);
}

TEST(Streaming, PredictionCampaignMatchesRetainedWithinRounding) {
  ExperimentConfig config = small_config();
  const PredictionCampaign retained = run_prediction_campaign(config, 3, 1);
  config.retain_records = false;
  const PredictionCampaign streamed = run_prediction_campaign(config, 3, 1);
  EXPECT_EQ(streamed.all.jobs, retained.all.jobs);
  EXPECT_EQ(streamed.redundant.jobs, retained.redundant.jobs);
  // Pooling across reps is a Welford merge in the streaming path vs. one
  // sequential pass over the concatenation in the retained path — equal
  // only to rounding.
  EXPECT_NEAR(streamed.all.avg_ratio, retained.all.avg_ratio,
              1e-9 * (retained.all.avg_ratio + 1.0));
  EXPECT_NEAR(streamed.all.cv_ratio_percent, retained.all.cv_ratio_percent,
              1e-9 * (retained.all.cv_ratio_percent + 1.0));
}

}  // namespace
}  // namespace rrsim::core
