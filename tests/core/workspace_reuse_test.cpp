// ExperimentWorkspace reuse contract: running an experiment inside a
// workspace that already hosted other runs produces bit-identical results
// to a fresh workspace (and to the workspace-free run_experiment), the
// Platform/Gateway pair is reused only when the cluster shape and
// algorithm match, and state from one run (middleware, predictions,
// per-user limits) never leaks into the next.
#include "rrsim/core/experiment.h"

#include <gtest/gtest.h>

#include "rrsim/core/paper.h"
#include "rrsim/metrics/summary.h"

namespace rrsim::core {
namespace {

ExperimentConfig tiny_config() {
  ExperimentConfig c = figure_config_quick();
  c.n_clusters = 3;
  c.submit_horizon = 0.2 * 3600.0;
  c.seed = 23;
  return c;
}

// Every comparison is exact: reuse must be invisible in the results.
void expect_identical(const SimResult& a, const SimResult& b) {
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].grid_id, b.records[i].grid_id);
    EXPECT_EQ(a.records[i].winner_cluster, b.records[i].winner_cluster);
    EXPECT_EQ(a.records[i].submit_time, b.records[i].submit_time);
    EXPECT_EQ(a.records[i].start_time, b.records[i].start_time);
    EXPECT_EQ(a.records[i].finish_time, b.records[i].finish_time);
    EXPECT_EQ(a.records[i].predicted_start, b.records[i].predicted_start);
  }
  EXPECT_EQ(a.ops.submits, b.ops.submits);
  EXPECT_EQ(a.ops.starts, b.ops.starts);
  EXPECT_EQ(a.ops.finishes, b.ops.finishes);
  EXPECT_EQ(a.ops.cancels, b.ops.cancels);
  EXPECT_EQ(a.ops.sched_passes, b.ops.sched_passes);
  EXPECT_EQ(a.gateway_cancels, b.gateway_cancels);
  EXPECT_EQ(a.replicas_rejected, b.replicas_rejected);
  EXPECT_EQ(a.replicas_dropped, b.replicas_dropped);
  EXPECT_EQ(a.jobs_generated, b.jobs_generated);
  EXPECT_EQ(a.avg_max_queue, b.avg_max_queue);
  EXPECT_EQ(a.end_time, b.end_time);
  const auto ma = metrics::compute_metrics(a.records);
  const auto mb = metrics::compute_metrics(b.records);
  EXPECT_EQ(ma.avg_stretch, mb.avg_stretch);
  EXPECT_EQ(ma.avg_turnaround, mb.avg_turnaround);
}

TEST(WorkspaceReuse, ReusedRunBitIdenticalToFreshRun) {
  ExperimentConfig c = tiny_config();
  c.scheme = RedundancyScheme::fixed(2);

  const SimResult reference = run_experiment(c);

  ExperimentWorkspace ws;
  const SimResult first = run_experiment(c, ws);
  EXPECT_EQ(ws.platform_reuses(), 0u);
  const SimResult second = run_experiment(c, ws);
  EXPECT_EQ(ws.platform_reuses(), 1u);  // same shape + algorithm: reused
  const SimResult third = run_experiment(c, ws);
  EXPECT_EQ(ws.platform_reuses(), 2u);

  expect_identical(first, reference);
  expect_identical(second, reference);
  expect_identical(third, reference);
}

TEST(WorkspaceReuse, SchemeAndSeedChangesReuseThePlatform) {
  // The shape add_relative produces: scheme run then NONE run, alternating
  // seeds — all on one 3-cluster EASY platform.
  ExperimentConfig with = tiny_config();
  with.scheme = RedundancyScheme::half();
  ExperimentConfig without = with;
  without.scheme = RedundancyScheme::none();

  ExperimentWorkspace ws;
  std::vector<SimResult> reused;
  for (int r = 0; r < 2; ++r) {
    ExperimentConfig cw = with;
    cw.seed = with.seed + static_cast<std::uint64_t>(r);
    ExperimentConfig co = without;
    co.seed = cw.seed;
    reused.push_back(run_experiment(cw, ws));
    reused.push_back(run_experiment(co, ws));
  }
  EXPECT_EQ(ws.platform_reuses(), 3u);

  std::size_t i = 0;
  for (int r = 0; r < 2; ++r) {
    ExperimentConfig cw = with;
    cw.seed = with.seed + static_cast<std::uint64_t>(r);
    ExperimentConfig co = without;
    co.seed = cw.seed;
    expect_identical(reused[i++], run_experiment(cw));
    expect_identical(reused[i++], run_experiment(co));
  }
}

TEST(WorkspaceReuse, ShapeOrAlgorithmChangeRebuilds) {
  ExperimentConfig easy3 = tiny_config();
  easy3.scheme = RedundancyScheme::fixed(2);
  ExperimentConfig easy2 = easy3;
  easy2.n_clusters = 2;
  ExperimentConfig cbf3 = easy3;
  cbf3.algorithm = sched::Algorithm::kCbf;

  ExperimentWorkspace ws;
  const SimResult a = run_experiment(easy3, ws);
  const SimResult b = run_experiment(easy2, ws);  // shape change: rebuild
  EXPECT_EQ(ws.platform_reuses(), 0u);
  const SimResult c = run_experiment(cbf3, ws);  // algorithm change
  EXPECT_EQ(ws.platform_reuses(), 0u);
  const SimResult d = run_experiment(easy3, ws);  // back again: rebuild
  EXPECT_EQ(ws.platform_reuses(), 0u);

  expect_identical(a, run_experiment(easy3));
  expect_identical(b, run_experiment(easy2));
  expect_identical(c, run_experiment(cbf3));
  expect_identical(d, a);
}

TEST(WorkspaceReuse, FeatureStateDoesNotLeakAcrossRuns) {
  // Middleware, per-user limits, and prediction recording each leave
  // state in the Gateway/schedulers; a following plain run must not see
  // any of it, and vice versa.
  ExperimentConfig plain = tiny_config();
  plain.scheme = RedundancyScheme::fixed(2);
  ExperimentConfig middleware = plain;
  middleware.middleware_ops_per_sec = 2.0;
  ExperimentConfig limited = plain;
  limited.per_user_pending_limit = 1;
  limited.users_per_cluster = 2;
  // Prediction recording needs CBF (the only scheduler that records
  // submit-time start predictions), so this pair also covers rebuilding
  // into and out of a prediction-recording gateway.
  ExperimentConfig predicting = plain;
  predicting.algorithm = sched::Algorithm::kCbf;
  predicting.record_predictions = true;

  ExperimentWorkspace ws;
  run_experiment(middleware, ws);
  const SimResult after_middleware = run_experiment(plain, ws);
  run_experiment(limited, ws);
  const SimResult after_limits = run_experiment(plain, ws);
  const SimResult predicted = run_experiment(predicting, ws);   // rebuild
  const SimResult after_predictions = run_experiment(plain, ws);  // rebuild
  EXPECT_EQ(ws.platform_reuses(), 3u);

  const SimResult reference = run_experiment(plain);
  expect_identical(after_middleware, reference);
  expect_identical(after_limits, reference);
  expect_identical(after_predictions, reference);
  expect_identical(predicted, run_experiment(predicting));
  ASSERT_FALSE(predicted.records.empty());
  ASSERT_FALSE(reference.records.empty());
  EXPECT_TRUE(predicted.records.front().predicted_start.has_value());
  EXPECT_FALSE(reference.records.front().predicted_start.has_value());
}

TEST(WorkspaceReuse, ThreadWorkspacePersistsPerThread) {
  ExperimentConfig c = tiny_config();
  c.scheme = RedundancyScheme::fixed(2);
  ExperimentWorkspace& ws = thread_workspace();
  EXPECT_EQ(&ws, &thread_workspace());  // one workspace per thread
  const std::uint64_t before = ws.platform_reuses();
  run_experiment(c, ws);
  run_experiment(c, ws);
  EXPECT_GT(ws.platform_reuses(), before);
}

}  // namespace
}  // namespace rrsim::core
