#include "rrsim/core/scheme.h"

#include <gtest/gtest.h>

namespace rrsim::core {
namespace {

TEST(Scheme, NoneDegreeIsOne) {
  const RedundancyScheme s = RedundancyScheme::none();
  EXPECT_TRUE(s.is_none());
  for (std::size_t n : {1u, 2u, 10u, 100u}) EXPECT_EQ(s.degree(n), 1u);
  EXPECT_EQ(s.name(), "NONE");
}

TEST(Scheme, FixedDegreeSaturatesAtN) {
  const RedundancyScheme r4 = RedundancyScheme::fixed(4);
  EXPECT_EQ(r4.degree(10), 4u);
  EXPECT_EQ(r4.degree(4), 4u);
  EXPECT_EQ(r4.degree(2), 2u);
  EXPECT_EQ(r4.name(), "R4");
  EXPECT_THROW(RedundancyScheme::fixed(0), std::invalid_argument);
}

TEST(Scheme, HalfIsCeilOfHalf) {
  const RedundancyScheme h = RedundancyScheme::half();
  EXPECT_EQ(h.degree(10), 5u);
  EXPECT_EQ(h.degree(9), 5u);
  EXPECT_EQ(h.degree(2), 1u);
  EXPECT_EQ(h.degree(1), 1u);
  EXPECT_EQ(h.degree(20), 10u);
  EXPECT_EQ(h.name(), "HALF");
}

TEST(Scheme, AllUsesEveryCluster) {
  const RedundancyScheme a = RedundancyScheme::all();
  EXPECT_EQ(a.degree(10), 10u);
  EXPECT_EQ(a.degree(1), 1u);
  EXPECT_EQ(a.name(), "ALL");
}

TEST(Scheme, ParseRoundTrip) {
  for (const char* name : {"NONE", "R2", "R3", "R4", "R17", "HALF", "ALL"}) {
    EXPECT_EQ(RedundancyScheme::parse(name).name(), name);
  }
  EXPECT_EQ(RedundancyScheme::parse("none").name(), "NONE");
  EXPECT_EQ(RedundancyScheme::parse("half").name(), "HALF");
  EXPECT_EQ(RedundancyScheme::parse("all").name(), "ALL");
  EXPECT_EQ(RedundancyScheme::parse("r3").name(), "R3");
}

TEST(Scheme, ParseRejectsGarbage) {
  for (const char* bad : {"", "R", "Rx", "R0", "R-1", "SOME", "R2extra"}) {
    EXPECT_THROW(RedundancyScheme::parse(bad), std::invalid_argument)
        << "input: " << bad;
  }
}

TEST(Scheme, DegreeRejectsEmptyPlatform) {
  EXPECT_THROW(RedundancyScheme::all().degree(0), std::invalid_argument);
}

TEST(Scheme, Equality) {
  EXPECT_EQ(RedundancyScheme::fixed(2), RedundancyScheme::parse("R2"));
  EXPECT_NE(RedundancyScheme::fixed(2), RedundancyScheme::fixed(3));
  EXPECT_NE(RedundancyScheme::none(), RedundancyScheme::all());
}

}  // namespace
}  // namespace rrsim::core
