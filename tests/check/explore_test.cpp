// Tie-break schedule explorer tests: DPOR-lite canonicalization, seeded
// determinism of the exploration itself, witness minimization, and the
// planted-bug contract — a schedule that *is* tie-sensitive must be
// caught (and the matching static pattern must be caught by the lint
// rule; see lint_self_test.cpp for that half).
#include "explore.h"

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "rrsim/des/simulation.h"
#include "ties_trace.h"

namespace rrsim::check {
namespace {

/// Minimal probe: `cohorts` groups of `size` same-(time, priority)
/// events, each event tagged with its own cluster id. The outcome digest
/// is either order-sensitive (sequential FNV over the firing order — any
/// permutation diverges) or commutative (no permutation can diverge).
/// `headline_drift` controls whether an order-sensitive divergence also
/// moves the headline metrics or stays a pure checksum divergence.
class ToyProbe final : public ScheduleProbe {
 public:
  ToyProbe(bool order_sensitive, std::size_t cohorts, std::size_t size,
           bool attach_probe = false, std::uint64_t coupling = 0,
           bool headline_drift = true)
      : order_sensitive_(order_sensitive),
        cohorts_(cohorts),
        size_(size),
        attach_probe_(attach_probe),
        coupling_(coupling),
        headline_drift_(headline_drift) {}

  RunOutcome run(des::TieBreakPolicy& policy) override {
    if (attach_probe_) {
      const std::uint64_t coupling = coupling_;
      policy.attach_coupling_probe(0, [coupling] { return coupling; });
    }
    des::Simulation sim;
    sim.set_tie_break_policy(&policy, 0);
    std::vector<std::uint32_t> fired;
    for (std::size_t g = 0; g < cohorts_; ++g) {
      const des::Time t = 10.0 * static_cast<double>(g + 1);
      for (std::size_t j = 0; j < size_; ++j) {
        const std::uint32_t label =
            static_cast<std::uint32_t>(g * 100 + j);
        sim.schedule_at(
            t, [&fired, label] { fired.push_back(label); },
            des::Priority::kControl, /*tag=*/static_cast<std::uint32_t>(j));
      }
    }
    sim.run();
    RunOutcome out;
    out.jobs = fired.size();
    if (order_sensitive_) {
      std::uint64_t h = 1469598103934665603ull;
      for (const std::uint32_t v : fired) {
        h ^= v;
        h *= 1099511628211ull;
      }
      out.outcome_hash = h;
      if (headline_drift_) {
        out.mean_stretch =
            1.0 + static_cast<double>(h % 1024) / 1024.0;
        out.p99_stretch = out.mean_stretch;
      }
    } else {
      std::uint64_t s = 0;
      for (const std::uint32_t v : fired) s += v * 2654435761ull;
      out.outcome_hash = s;
    }
    return out;
  }

 private:
  bool order_sensitive_;
  std::size_t cohorts_;
  std::size_t size_;
  bool attach_probe_;
  std::uint64_t coupling_;
  bool headline_drift_;
};

TieGroupRecord make_group(std::vector<std::uint32_t> tags,
                          std::uint64_t coupling) {
  TieGroupRecord g;
  g.id = 7;
  g.coupling = coupling;
  for (std::size_t i = 0; i < tags.size(); ++i) {
    g.members.push_back({/*seq=*/100 + i, tags[i]});
  }
  return g;
}

TEST(CanonicalRanks, IndependentSwapsBubbleToIdentity) {
  const TieGroupRecord g = make_group({0, 1, 2}, /*coupling=*/0);
  EXPECT_EQ(canonical_ranks(g, {1, 0, 2}),
            (std::vector<std::uint32_t>{0, 1, 2}));
  EXPECT_EQ(canonical_ranks(g, {2, 1, 0}),
            (std::vector<std::uint32_t>{0, 1, 2}));
}

TEST(CanonicalRanks, CouplingDisablesPruning) {
  const TieGroupRecord g = make_group({0, 1, 2}, /*coupling=*/3);
  EXPECT_EQ(canonical_ranks(g, {1, 0, 2}),
            (std::vector<std::uint32_t>{1, 0, 2}));
}

TEST(CanonicalRanks, UnknownCouplingDisablesPruning) {
  const TieGroupRecord g = make_group({0, 1, 2}, kCouplingUnknown);
  EXPECT_EQ(canonical_ranks(g, {2, 1, 0}),
            (std::vector<std::uint32_t>{2, 1, 0}));
}

TEST(CanonicalRanks, SameTagOrUntaggedEventsAreDependent) {
  const TieGroupRecord same = make_group({4, 4, 4}, 0);
  EXPECT_EQ(canonical_ranks(same, {1, 0, 2}),
            (std::vector<std::uint32_t>{1, 0, 2}));
  const TieGroupRecord untagged =
      make_group({des::kNoEventTag, des::kNoEventTag}, 0);
  EXPECT_EQ(canonical_ranks(untagged, {1, 0}),
            (std::vector<std::uint32_t>{1, 0}));
}

TEST(Explore, OrderInsensitiveOutcomeIsIdentical) {
  ToyProbe probe(/*order_sensitive=*/false, /*cohorts=*/3, /*size=*/3);
  ExploreOptions opts;
  opts.exhaustive_k = 3;
  const ExploreReport report = explore(probe, opts);
  EXPECT_EQ(report.groups_total, 3u);
  EXPECT_EQ(report.groups_explored, 3u);
  EXPECT_GT(report.schedules_explored, 0u);
  EXPECT_EQ(report.divergence_count, 0u);
  EXPECT_EQ(report.replay_mismatches, 0u);
  EXPECT_TRUE(report.identical);
  EXPECT_TRUE(report.within_tolerance);
  EXPECT_EQ(report.baseline.jobs, 9u);
}

TEST(Explore, PlantedOrderSensitivityIsCaught) {
  ToyProbe probe(/*order_sensitive=*/true, /*cohorts=*/2, /*size=*/3);
  ExploreOptions opts;
  opts.exhaustive_k = 3;
  const ExploreReport report = explore(probe, opts);
  EXPECT_FALSE(report.identical);
  EXPECT_FALSE(report.within_tolerance);
  EXPECT_GT(report.divergence_count, 0u);
  ASSERT_FALSE(report.divergences.empty());
  // Every alternative schedule of an order-sensitive outcome diverges:
  // both cohorts must be caught, 3! - 1 = 5 divergences each.
  EXPECT_EQ(report.divergence_count, 10u);
}

TEST(Explore, WitnessIsMinimizedToAdjacentTransposition) {
  ToyProbe probe(/*order_sensitive=*/true, /*cohorts=*/1, /*size=*/4);
  ExploreOptions opts;
  opts.exhaustive_k = 4;
  const ExploreReport report = explore(probe, opts);
  ASSERT_FALSE(report.divergences.empty());
  bool minimized = false;
  for (const Divergence& d : report.divergences) {
    if (!d.witness_is_transposition) continue;
    minimized = true;
    ASSERT_EQ(d.witness.size(), d.group_size);
    // A transposition differs from identity in exactly one adjacent pair.
    std::size_t displaced = 0;
    for (std::size_t i = 0; i < d.witness.size(); ++i) {
      if (d.witness[i] != i) ++displaced;
    }
    EXPECT_EQ(displaced, 2u);
  }
  EXPECT_TRUE(minimized);
  EXPECT_GT(report.witness_replays, 0u);
}

TEST(Explore, SameSeedSameScheduleSet) {
  // Cohort size above exhaustive_k forces the seeded sampling path.
  ExploreOptions opts;
  opts.exhaustive_k = 3;
  opts.samples_above_k = 6;
  opts.seed = 42;
  ToyProbe a(/*order_sensitive=*/true, /*cohorts=*/2, /*size=*/5);
  ToyProbe b(/*order_sensitive=*/true, /*cohorts=*/2, /*size=*/5);
  const ExploreReport ra = explore(a, opts);
  const ExploreReport rb = explore(b, opts);
  EXPECT_EQ(ra.schedules_explored, rb.schedules_explored);
  EXPECT_EQ(ra.schedules_pruned, rb.schedules_pruned);
  EXPECT_EQ(ra.divergence_count, rb.divergence_count);
  EXPECT_EQ(ra.baseline.outcome_hash, rb.baseline.outcome_hash);
  ASSERT_EQ(ra.divergences.size(), rb.divergences.size());
  for (std::size_t i = 0; i < ra.divergences.size(); ++i) {
    EXPECT_EQ(ra.divergences[i].group_id, rb.divergences[i].group_id);
    EXPECT_EQ(ra.divergences[i].permutation, rb.divergences[i].permutation);
    EXPECT_EQ(ra.divergences[i].outcome.outcome_hash,
              rb.divergences[i].outcome.outcome_hash);
  }
}

TEST(Explore, DifferentSeedMayVisitDifferentSamples) {
  // Not asserting inequality (seeds may collide on tiny spaces) — only
  // that a different seed still yields a valid, self-consistent report.
  ExploreOptions opts;
  opts.exhaustive_k = 2;
  opts.samples_above_k = 3;
  opts.seed = 7;
  ToyProbe probe(/*order_sensitive=*/false, /*cohorts=*/1, /*size=*/6);
  const ExploreReport report = explore(probe, opts);
  EXPECT_TRUE(report.identical);
  EXPECT_LE(report.schedules_explored, 3u);
}

TEST(Explore, DporPrunesIndependentPermutations) {
  // Distinct tags per member + a coupling probe reporting zero: every
  // alternative order canonicalizes to the identity, so nothing replays.
  ToyProbe probe(/*order_sensitive=*/false, /*cohorts=*/2, /*size=*/3,
                 /*attach_probe=*/true, /*coupling=*/0);
  ExploreOptions opts;
  opts.exhaustive_k = 3;
  const ExploreReport report = explore(probe, opts);
  EXPECT_EQ(report.schedules_explored, 0u);
  EXPECT_GT(report.schedules_pruned, 0u);
  EXPECT_TRUE(report.identical);

  // Nonzero coupling: the same cohorts must now replay in full.
  ToyProbe coupled(/*order_sensitive=*/false, /*cohorts=*/2, /*size=*/3,
                   /*attach_probe=*/true, /*coupling=*/1);
  const ExploreReport coupled_report = explore(coupled, opts);
  EXPECT_EQ(coupled_report.schedules_explored, 10u);  // 2 * (3! - 1)
  EXPECT_TRUE(coupled_report.identical);
}

TEST(Explore, ZeroToleranceRequiresBitIdentity) {
  // Pure checksum divergence: per-job outcomes move under permutation
  // but the headline aggregates land on identical values. Tolerance 0
  // documents "bit-identical under every explored schedule", so it must
  // fail even though measured drift is zero...
  ToyProbe strict(/*order_sensitive=*/true, /*cohorts=*/1, /*size=*/3,
                  /*attach_probe=*/false, /*coupling=*/0,
                  /*headline_drift=*/false);
  ExploreOptions opts;
  opts.exhaustive_k = 3;
  opts.drift_tolerance = 0.0;
  const ExploreReport report = explore(strict, opts);
  EXPECT_FALSE(report.identical);
  EXPECT_EQ(report.max_drift, 0.0);
  EXPECT_FALSE(report.within_tolerance);

  // ...while any nonzero tolerance gates on the measured drift alone.
  ToyProbe lenient(/*order_sensitive=*/true, /*cohorts=*/1, /*size=*/3,
                   /*attach_probe=*/false, /*coupling=*/0,
                   /*headline_drift=*/false);
  opts.drift_tolerance = 0.1;
  EXPECT_TRUE(explore(lenient, opts).within_tolerance);
}

TEST(CensusPolicy, ResumedGroupAcrossPartitionsRecordsOnce) {
  // PDES shape: partition 0's cohort resumes mid-drain (the kernel keeps
  // the group id) after partition 1 recorded a cohort in between. The
  // census must not record the resumed cohort a second time — a
  // duplicate with mid-drain membership would flag a spurious replay
  // mismatch when the second record is replayed.
  CensusPolicy census;
  const std::vector<des::TieEvent> a{{1, 0}, {2, 1}, {3, 0}};
  const std::vector<des::TieEvent> b{{4, 0}, {5, 1}};
  const des::TieGroup g0{/*id=*/5, /*partition=*/0, 10.0, 2, a.data(),
                         a.size()};
  const des::TieGroup g1{/*id=*/3, /*partition=*/1, 10.0, 2, b.data(),
                         b.size()};
  const des::TieGroup g0_resumed{/*id=*/5, /*partition=*/0, 10.0, 2,
                                 a.data() + 1, a.size() - 1};
  EXPECT_EQ(census.pick(g0), 0u);
  EXPECT_EQ(census.pick(g1), 0u);
  EXPECT_EQ(census.pick(g0_resumed), 0u);
  ASSERT_EQ(census.groups().size(), 2u);
  EXPECT_EQ(census.groups()[0].partition, 0u);
  EXPECT_EQ(census.groups()[0].members.size(), 3u);
  EXPECT_EQ(census.groups()[1].partition, 1u);
}

TEST(Explore, BudgetsAreHonored) {
  ToyProbe probe(/*order_sensitive=*/false, /*cohorts=*/4, /*size=*/3);
  ExploreOptions opts;
  opts.exhaustive_k = 3;
  opts.max_groups = 2;
  const ExploreReport report = explore(probe, opts);
  EXPECT_EQ(report.groups_total, 4u);
  EXPECT_EQ(report.groups_explored, 2u);
  EXPECT_EQ(report.groups_skipped, 2u);
}

/// Trace with three same-timestamp jobs per arrival slot (the shared
/// tie-heavy generator) — the experiment-level probe must surface real
/// tie cohorts from it.
std::string explore_ties_trace() {
  return write_ties_trace(/*slots=*/15, /*ties_per_slot=*/3,
                          "rrsim_explore_ties.swf");
}

core::ExperimentConfig ties_config(const std::string& path) {
  core::ExperimentConfig c;
  c.n_clusters = 2;
  c.nodes_per_cluster = 16;
  c.submit_horizon = 900.0;
  c.trace_files = {path};
  c.seed = 5;
  c.retain_records = true;
  return c;
}

TEST(ExperimentProbeTest, RequiresRetainedRecords) {
  core::ExperimentConfig c = ties_config(explore_ties_trace());
  c.retain_records = false;
  EXPECT_THROW(ExperimentProbe{c}, std::invalid_argument);
}

TEST(ExperimentProbeTest, ExplorationIsDeterministic) {
  const std::string path = explore_ties_trace();
  ExploreOptions opts;
  opts.exhaustive_k = 3;
  opts.max_groups = 4;
  opts.seed = 11;
  ExperimentProbe a(ties_config(path));
  ExperimentProbe b(ties_config(path));
  const ExploreReport ra = explore(a, opts);
  const ExploreReport rb = explore(b, opts);
  EXPECT_GT(ra.groups_total, 0u);
  EXPECT_EQ(ra.baseline.outcome_hash, rb.baseline.outcome_hash);
  EXPECT_EQ(ra.schedules_explored, rb.schedules_explored);
  EXPECT_EQ(ra.divergence_count, rb.divergence_count);
  EXPECT_EQ(ra.replay_mismatches, 0u);
  EXPECT_EQ(rb.replay_mismatches, 0u);
}

TEST(ExperimentProbeTest, RedundantArrivalsAreUntagged) {
  // Under a redundant scheme every arrival consumes shared global state
  // (the single placement substream plus the live queue-length snapshot
  // in place_job), so same-timestamp arrivals on different clusters are
  // still order-coupled. The schedule sites must leave them untagged —
  // a cluster tag would let the DPOR criterion prune their permutations
  // as independent and certify a falsely IDENTICAL verdict.
  const std::string path = explore_ties_trace();
  core::ExperimentConfig redundant = ties_config(path);
  redundant.scheme = core::RedundancyScheme::fixed(2);
  CensusPolicy census;
  redundant.tie_break_policy = &census;
  core::run_experiment(redundant);
  bool saw_arrival_cohort = false;
  for (const TieGroupRecord& g : census.groups()) {
    if (g.priority != static_cast<int>(des::Priority::kArrival)) continue;
    saw_arrival_cohort = true;
    for (const des::TieEvent& e : g.members) {
      EXPECT_EQ(e.tag, des::kNoEventTag);
    }
  }
  EXPECT_TRUE(saw_arrival_cohort);

  // Without redundancy no placement draw can happen: arrivals stay
  // cluster-tagged, so cross-cluster arrival permutations remain
  // prunable.
  core::ExperimentConfig plain = ties_config(path);
  CensusPolicy plain_census;
  plain.tie_break_policy = &plain_census;
  core::run_experiment(plain);
  bool saw_tagged_arrival = false;
  for (const TieGroupRecord& g : plain_census.groups()) {
    if (g.priority != static_cast<int>(des::Priority::kArrival)) continue;
    for (const des::TieEvent& e : g.members) {
      if (e.tag != des::kNoEventTag) saw_tagged_arrival = true;
    }
  }
  EXPECT_TRUE(saw_tagged_arrival);
}

TEST(OutcomeOf, CommutativeOverRecordOrder) {
  metrics::JobRecords records;
  for (int i = 0; i < 5; ++i) {
    metrics::JobRecord r{};
    r.grid_id = static_cast<std::uint64_t>(i);
    r.submit_time = 10.0 * i;
    r.start_time = r.submit_time + 1.0;
    r.finish_time = r.start_time + 30.0;
    r.actual_time = 30.0;
    r.nodes = 1 + i;
    records.push_back(r);
  }
  const RunOutcome forward = outcome_of(records, 2);
  metrics::JobRecords reversed(records.rbegin(), records.rend());
  const RunOutcome backward = outcome_of(reversed, 2);
  EXPECT_EQ(forward.outcome_hash, backward.outcome_hash);
  EXPECT_EQ(forward.jobs, backward.jobs);
  EXPECT_EQ(forward.mean_stretch, backward.mean_stretch);

  // And sensitive to a change in any record.
  records[3].finish_time += 1.0;
  EXPECT_NE(outcome_of(records, 2).outcome_hash, forward.outcome_hash);
}

}  // namespace
}  // namespace rrsim::check
