// Coordinator-level tests for the conservative PDES protocol: mailbox
// ordering, the lookahead contract, run-limit semantics, and the central
// guarantee — traces bit-identical for any worker count. The worker-count
// tests construct the coordinator with jobs = 0 (resolved via --jobs /
// RRSIM_JOBS), so CI can re-run this binary under an RRSIM_JOBS matrix
// and exercise the pooled path with real thread counts.
#include "rrsim/exec/pdes.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <functional>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "rrsim/exec/campaign_runner.h"

namespace rrsim::exec {
namespace {

std::string stamp(std::size_t partition, double t, int hops) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "p%zu@%.3f#%d", partition, t, hops);
  return buf;
}

/// Four partitions passing tokens around a ring with local echo events in
/// between. Each partition's callbacks write only that partition's log
/// slot (the vector is pre-sized, so no reallocation), which is exactly
/// the thread-confinement contract worker callbacks must obey.
std::vector<std::string> run_ring(int jobs, std::uint64_t* windows_out,
                                  std::uint64_t* delivered_out) {
  constexpr std::size_t kN = 4;
  constexpr double kLookahead = 2.0;
  constexpr double kEnd = 40.0;
  PdesCoordinator coord(kN, kLookahead, jobs);
  std::vector<std::vector<std::string>> log(kN);
  std::function<void(std::size_t, int)> hop = [&](std::size_t p, int hops) {
    des::Simulation& sim = coord.partition(p);
    log[p].push_back(stamp(p, sim.now(), hops));
    // Local work between hops: same-partition events need no mailbox.
    sim.schedule_in(0.7, [&log, &coord, p] {
      log[p].push_back(stamp(p, coord.partition(p).now(), -1));
    });
    if (sim.now() + kLookahead > kEnd) return;
    const std::size_t dest = (p + 1) % kN;
    coord.post(p, dest, sim.now() + kLookahead, des::Priority::kArrival,
               [&hop, dest, hops] { hop(dest, hops + 1); });
  };
  for (std::size_t p = 0; p < kN; ++p) {
    coord.partition(p).schedule_at(0.25 * static_cast<double>(p),
                                   [&hop, p] { hop(p, 0); });
  }
  coord.run();
  if (windows_out != nullptr) *windows_out = coord.windows();
  if (delivered_out != nullptr) *delivered_out = coord.messages_delivered();
  std::vector<std::string> flat;
  for (std::size_t p = 0; p < kN; ++p) {
    for (const std::string& s : log[p]) flat.push_back(s);
  }
  return flat;
}

TEST(PdesCoordinator, ValidatesConstruction) {
  EXPECT_THROW(PdesCoordinator(0, 1.0), std::invalid_argument);
  EXPECT_THROW(PdesCoordinator(2, 0.0), std::invalid_argument);
  EXPECT_THROW(PdesCoordinator(2, -1.0), std::invalid_argument);
  EXPECT_THROW(PdesCoordinator(2, std::numeric_limits<double>::infinity()),
               std::invalid_argument);
  EXPECT_THROW(PdesCoordinator(2, std::nan("")), std::invalid_argument);
}

TEST(PdesCoordinator, ClampsJobsToPartitionCount) {
  PdesCoordinator coord(2, 1.0, 8);
  EXPECT_EQ(coord.jobs(), 2);
  PdesCoordinator one(3, 1.0, 1);
  EXPECT_EQ(one.jobs(), 1);
}

TEST(PdesCoordinator, JobsZeroResolvesLikeCampaigns) {
  // jobs = 0 goes through resolve_jobs(): --jobs default, then
  // RRSIM_JOBS, then hardware_concurrency — clamped to the partitions.
  PdesCoordinator coord(4, 1.0, 0);
  const int expected = resolve_jobs(0) < 4 ? resolve_jobs(0) : 4;
  EXPECT_EQ(coord.jobs(), expected);
  EXPECT_GE(coord.jobs(), 1);
}

TEST(PdesCoordinator, MailboxTieBreakOrder) {
  // Five messages, all due at the same instant at partition 0. Delivery
  // must follow (time, priority, source, seq) regardless of posting
  // order, and the destination kernel preserves that order for the
  // same-(time, priority) runs because injection order sets its seq.
  constexpr double kL = 10.0;
  PdesCoordinator coord(4, kL, 1);
  std::vector<std::string> order;
  auto tag = [&order](const char* name) {
    return [&order, name] { order.emplace_back(name); };
  };
  coord.partition(1).schedule_at(0.0, [&] {
    coord.post(1, 0, kL, des::Priority::kControl, tag("A"));     // seq 0
    coord.post(1, 0, kL, des::Priority::kCompletion, tag("B"));  // seq 1
  });
  coord.partition(2).schedule_at(0.0, [&] {
    coord.post(2, 0, kL, des::Priority::kCompletion, tag("C"));  // seq 0
    coord.post(2, 0, kL, des::Priority::kCompletion, tag("D"));  // seq 1
  });
  coord.partition(3).schedule_at(0.0, [&] {
    coord.post(3, 0, kL, des::Priority::kArrival, tag("E"));
  });
  coord.run();
  // Priority band first (completion < cancel < arrival < control), then
  // source partition, then per-source posting sequence.
  EXPECT_EQ(order, (std::vector<std::string>{"B", "C", "D", "E", "A"}));
  EXPECT_EQ(coord.messages_delivered(), 5u);
}

TEST(PdesCoordinator, MailboxOrderIsWorkerCountInvariant) {
  constexpr double kL = 10.0;
  std::vector<std::vector<std::string>> runs;
  for (const int jobs : {1, 3}) {
    PdesCoordinator coord(4, kL, jobs);
    std::vector<std::string> order;
    for (std::size_t src = 1; src < 4; ++src) {
      coord.partition(src).schedule_at(0.0, [&coord, &order, src] {
        for (int k = 0; k < 3; ++k) {
          coord.post(src, 0, kL, des::Priority::kArrival,
                     [&order, src, k] { order.push_back(stamp(src, 0, k)); });
        }
      });
    }
    coord.run();
    runs.push_back(std::move(order));
  }
  ASSERT_EQ(runs[0].size(), 9u);
  EXPECT_EQ(runs[0], runs[1]);
}

TEST(PdesCoordinator, PostInsideLookaheadHorizonThrows) {
  PdesCoordinator coord(2, 5.0, 1);
  // now() is 0 on every partition: anything below t = 5 violates the
  // conservative contract.
  EXPECT_THROW(
      coord.post(0, 1, 4.999, des::Priority::kArrival, [] {}),
      std::logic_error);
  // Exactly now() + lookahead is the legal boundary.
  EXPECT_NO_THROW(coord.post(0, 1, 5.0, des::Priority::kArrival, [] {}));
}

TEST(PdesCoordinator, PostValidatesArguments) {
  PdesCoordinator coord(2, 1.0, 1);
  EXPECT_THROW(coord.post(0, 7, 2.0, des::Priority::kArrival, [] {}),
               std::out_of_range);
  EXPECT_THROW(coord.post(5, 1, 2.0, des::Priority::kArrival, [] {}),
               std::out_of_range);
  EXPECT_THROW(
      coord.post(0, 1, 2.0, des::Priority::kArrival, util::TaskFunction{}),
      std::invalid_argument);
}

TEST(PdesCoordinator, FiniteLimitMirrorsRunUntil) {
  // Events at the limit dispatch; later events stay queued; every
  // partition's clock ends exactly at the limit.
  PdesCoordinator coord(2, 1.0, 1);
  std::vector<std::string> fired;
  coord.partition(0).schedule_at(3.0, [&] { fired.emplace_back("early"); });
  coord.partition(1).schedule_at(10.0, [&] { fired.emplace_back("at"); });
  coord.partition(1).schedule_at(10.5, [&] { fired.emplace_back("late"); });
  // A message due exactly at the limit must be delivered too.
  coord.partition(0).schedule_at(9.0, [&] {
    coord.post(0, 1, 10.0, des::Priority::kArrival,
               [&fired] { fired.emplace_back("msg-at"); });
  });
  coord.run(10.0);
  // The kArrival message outranks the kControl event at the same instant.
  EXPECT_EQ(fired,
            (std::vector<std::string>{"early", "msg-at", "at"}));
  EXPECT_DOUBLE_EQ(coord.partition(0).now(), 10.0);
  EXPECT_DOUBLE_EQ(coord.partition(1).now(), 10.0);
  EXPECT_EQ(coord.partition(1).pending_events(), 1u);
  coord.run();
  EXPECT_EQ(fired.back(), "late");
}

TEST(PdesCoordinator, RunRejectsBadLimits) {
  PdesCoordinator coord(2, 1.0, 1);
  EXPECT_THROW(coord.run(-1.0), std::invalid_argument);
  EXPECT_THROW(coord.run(std::nan("")), std::invalid_argument);
}

TEST(PdesCoordinator, RingTraceBitIdenticalAcrossWorkerCounts) {
  std::uint64_t windows1 = 0, delivered1 = 0;
  const std::vector<std::string> ref = run_ring(1, &windows1, &delivered1);
  ASSERT_FALSE(ref.empty());
  ASSERT_GT(delivered1, 0u);
  for (const int jobs : {2, 4, 0}) {  // 0 = resolved (CI's RRSIM_JOBS axis)
    std::uint64_t windows = 0, delivered = 0;
    const std::vector<std::string> got = run_ring(jobs, &windows, &delivered);
    EXPECT_EQ(got, ref) << "jobs=" << jobs;
    EXPECT_EQ(windows, windows1) << "jobs=" << jobs;
    EXPECT_EQ(delivered, delivered1) << "jobs=" << jobs;
  }
}

}  // namespace
}  // namespace rrsim::exec
