// The sweep engine's determinism contract: a CampaignSweep with many
// queued points produces, for every point, exactly the result the
// equivalent back-to-back run_*_campaign calls produce — bit-identical
// for any worker count, unperturbed by what else shares the pool, with
// completion callbacks firing in add() order. The golden blocks pin a
// figure-shaped and a table-shaped sweep to the hex-exact values captured
// before the sweep engine existed (the same goldens as
// campaign_determinism_test.cpp), so "ported the benches onto the sweep
// driver" is provably a no-op on the science.
#include "rrsim/core/sweep.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <vector>

#include "rrsim/core/paper.h"
#include "rrsim/exec/sweep_runner.h"

namespace rrsim::core {
namespace {

ExperimentConfig tiny_config() {
  ExperimentConfig c = figure_config_quick();
  c.n_clusters = 3;
  c.submit_horizon = 0.3 * 3600.0;
  c.seed = 17;
  return c;
}

void expect_identical(const RelativeMetrics& a, const RelativeMetrics& b) {
  EXPECT_EQ(a.reps, b.reps);
  EXPECT_EQ(a.rel_avg_stretch, b.rel_avg_stretch);
  EXPECT_EQ(a.rel_cv_stretch, b.rel_cv_stretch);
  EXPECT_EQ(a.rel_max_stretch, b.rel_max_stretch);
  EXPECT_EQ(a.rel_avg_turnaround, b.rel_avg_turnaround);
  EXPECT_EQ(a.win_rate, b.win_rate);
  EXPECT_EQ(a.worst_rel_stretch, b.worst_rel_stretch);
  EXPECT_EQ(a.per_rep_rel_stretch, b.per_rep_rel_stretch);
}

// A figure-shaped sweep: several schemes of one config queued together.
std::vector<RelativeMetrics> run_figure_sweep(int jobs) {
  const std::vector<RedundancyScheme> schemes{
      RedundancyScheme::fixed(2), RedundancyScheme::half(),
      RedundancyScheme::all()};
  std::vector<RelativeMetrics> results(schemes.size());
  CampaignSweep sweep(6, jobs);
  for (std::size_t i = 0; i < schemes.size(); ++i) {
    ExperimentConfig c = tiny_config();
    c.scheme = schemes[i];
    sweep.add_relative(c, [&results, i](const RelativeMetrics& m) {
      results[i] = m;
    });
  }
  sweep.run();
  return results;
}

TEST(SweepDeterminism, FigureSweepIdenticalAcrossJobCounts) {
  const auto serial = run_figure_sweep(1);
  for (int jobs : {2, 8}) {
    const auto parallel = run_figure_sweep(jobs);
    for (std::size_t i = 0; i < serial.size(); ++i) {
      expect_identical(serial[i], parallel[i]);
    }
  }
}

TEST(SweepDeterminism, SweepPointsMatchBackToBackCampaigns) {
  // Sharing the pool, the workspace, and the trace cache with other
  // points must be invisible: each point equals its standalone campaign.
  const auto swept = run_figure_sweep(3);
  const std::vector<RedundancyScheme> schemes{
      RedundancyScheme::fixed(2), RedundancyScheme::half(),
      RedundancyScheme::all()};
  for (std::size_t i = 0; i < schemes.size(); ++i) {
    ExperimentConfig c = tiny_config();
    c.scheme = schemes[i];
    expect_identical(swept[i], run_relative_campaign(c, 6, 1));
  }
}

// Golden values captured from the pre-sweep-engine build (PR 1 / the
// incremental-scheduler PR) — the same constants pinned in
// campaign_determinism_test.cpp. Here the golden point runs *inside a
// multi-point sweep*, proving the sweep engine (flat pool + workspace
// reuse + trace cache) changes no mantissa bit of any point.
TEST(SweepDeterminism, FigureShapedSweepMatchesPreSweepGoldens) {
  RelativeMetrics r2;
  ClassifiedCampaign classified;
  CampaignSweep sweep(6);
  {
    ExperimentConfig c = tiny_config();
    c.scheme = RedundancyScheme::fixed(2);
    sweep.add_relative(c, [&r2](const RelativeMetrics& m) { r2 = m; });
  }
  {
    ExperimentConfig c = tiny_config();
    c.algorithm = sched::Algorithm::kFcfs;
    c.scheme = RedundancyScheme::all();
    c.redundant_fraction = 0.5;
    sweep.add_classified(
        c, [&classified](const ClassifiedCampaign& m) { classified = m; });
  }
  sweep.run();

  EXPECT_EQ(r2.reps, 6u);
  EXPECT_EQ(r2.rel_avg_stretch, 0x1.54ffd4d8c6d1bp-1);
  EXPECT_EQ(r2.rel_cv_stretch, 0x1.1de5af55aefd3p+0);
  EXPECT_EQ(r2.rel_max_stretch, 0x1.5d26b2f1be5c5p-1);
  EXPECT_EQ(r2.rel_avg_turnaround, 0x1.99c4f4e240079p-1);
  EXPECT_EQ(r2.win_rate, 0x1.5555555555555p-1);
  EXPECT_EQ(r2.worst_rel_stretch, 0x1.1d7c490632cd3p+0);

  EXPECT_EQ(classified.reps, 6u);
  EXPECT_EQ(classified.redundant_jobs, 2005u);
  EXPECT_EQ(classified.non_redundant_jobs, 2118u);
  EXPECT_EQ(classified.avg_stretch_all, 0x1.35e5560a129fap+8);
  EXPECT_EQ(classified.avg_stretch_redundant, 0x1.164aef99bc07dp+8);
  EXPECT_EQ(classified.avg_stretch_non_redundant, 0x1.532fb92d3e033p+8);
}

TEST(SweepDeterminism, TableShapedSweepMatchesPreSweepGoldens) {
  // Table-shaped: a CBF relative point and a CBF prediction point side by
  // side (the shape of table1/table4), at reps=4.
  RelativeMetrics r3;
  PredictionCampaign prediction;
  CampaignSweep sweep(4);
  {
    ExperimentConfig c = tiny_config();
    c.algorithm = sched::Algorithm::kCbf;
    c.scheme = RedundancyScheme::fixed(3);
    sweep.add_relative(c, [&r3](const RelativeMetrics& m) { r3 = m; });
  }
  {
    ExperimentConfig c = tiny_config();
    c.algorithm = sched::Algorithm::kCbf;
    c.estimator = "uniform216";
    c.scheme = RedundancyScheme::all();
    c.redundant_fraction = 0.4;
    sweep.add_prediction(
        c, [&prediction](const PredictionCampaign& m) { prediction = m; });
  }
  sweep.run();

  EXPECT_EQ(r3.reps, 4u);
  EXPECT_EQ(r3.rel_avg_stretch, 0x1.35e597336ace3p-1);
  EXPECT_EQ(r3.rel_cv_stretch, 0x1.dc2164b67bee1p-1);
  EXPECT_EQ(r3.rel_max_stretch, 0x1.22e50f4868ea1p-1);
  EXPECT_EQ(r3.rel_avg_turnaround, 0x1.b5e1e23ddc70fp-1);
  EXPECT_EQ(r3.win_rate, 0x1p+0);
  EXPECT_EQ(r3.worst_rel_stretch, 0x1.9b959cab86f41p-1);

  EXPECT_EQ(prediction.all.jobs, 1696u);
  EXPECT_EQ(prediction.redundant.jobs, 559u);
  EXPECT_EQ(prediction.non_redundant.jobs, 1137u);
  EXPECT_EQ(prediction.all.avg_ratio, 0x1.8cae5cb7686edp+2);
  EXPECT_EQ(prediction.redundant.avg_ratio, 0x1.9229ec7ca86c3p+2);
  EXPECT_EQ(prediction.non_redundant.avg_ratio, 0x1.89fc4eff1242fp+2);
}

TEST(SweepDeterminism, CallbacksFireInAddOrder) {
  std::vector<int> order;
  CampaignSweep sweep(2, 4);
  for (int i = 0; i < 4; ++i) {
    ExperimentConfig c = tiny_config();
    c.scheme = RedundancyScheme::fixed(2 + (i % 2));
    sweep.add_relative(c, [&order, i](const RelativeMetrics&) {
      order.push_back(i);
    });
  }
  sweep.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(SweepDeterminism, LastCacheStatsSeesCrossPointSharing) {
  // Two points differing only in a treatment knob (redundant fraction)
  // share one trace_affinity and one set of cached trace inputs: the
  // sweep-level delta counters must show the sharing.
  EXPECT_EQ(trace_affinity(tiny_config()), trace_affinity(tiny_config()));
  ExperimentConfig a = tiny_config();
  a.scheme = RedundancyScheme::fixed(2);
  ExperimentConfig b = a;
  b.redundant_fraction = 0.25;
  EXPECT_EQ(trace_affinity(a), trace_affinity(b));
  ExperimentConfig other_seed = a;
  other_seed.seed += 1;
  EXPECT_NE(trace_affinity(a), trace_affinity(other_seed));

  CampaignSweep sweep(1, 1);
  int fired = 0;
  sweep.add_classified(a, [&fired](const ClassifiedCampaign&) { ++fired; });
  sweep.add_classified(b, [&fired](const ClassifiedCampaign&) { ++fired; });
  sweep.run();
  EXPECT_EQ(fired, 2);
  // The second point's streams come straight from the cache the first
  // point (or an earlier test) populated.
  EXPECT_GT(sweep.last_cache_stats().stream_hits, 0u);
}

TEST(SweepDeterminism, ValidatesArguments) {
  EXPECT_THROW(CampaignSweep(0), std::invalid_argument);
  CampaignSweep sweep(2);
  ExperimentConfig c = tiny_config();  // scheme defaults to NONE
  EXPECT_THROW(sweep.add_relative(c, [](const RelativeMetrics&) {}),
               std::invalid_argument);
}

TEST(SweepRunner, CustomUnitsReduceInOrderForAnyJobCount) {
  for (int jobs : {1, 3}) {
    exec::SweepRunner runner(jobs);
    std::vector<int> doubled;
    std::vector<int> squared;
    runner.add(
        5, [](int u) { return 2 * u; },
        [&doubled](int, int v) { doubled.push_back(v); });
    runner.add(
        3, [](int u) { return u * u; },
        [&squared](int, int v) { squared.push_back(v); });
    runner.run();
    EXPECT_EQ(doubled, (std::vector<int>{0, 2, 4, 6, 8})) << "jobs=" << jobs;
    EXPECT_EQ(squared, (std::vector<int>{0, 1, 4})) << "jobs=" << jobs;
  }
}

TEST(SweepRunner, AffinityGroupingKeepsResultsBitIdentical) {
  // Affinity only reorders execution; reduction order — and therefore
  // every observable output — must match plain add() for any job count.
  for (int jobs : {1, 2, 8}) {
    exec::SweepRunner runner(jobs);
    std::vector<int> a;
    std::vector<int> b;
    std::vector<int> c;
    runner.add_affine(
        3, 42, [](int u) { return 10 + u; },
        [&a](int, int v) { a.push_back(v); });
    runner.add_affine(
        3, 42, [](int u) { return 20 + u; },
        [&b](int, int v) { b.push_back(v); });
    runner.add_affine(
        2, 7, [](int u) { return 30 + u; },
        [&c](int, int v) { c.push_back(v); });
    runner.run();
    EXPECT_EQ(a, (std::vector<int>{10, 11, 12})) << "jobs=" << jobs;
    EXPECT_EQ(b, (std::vector<int>{20, 21, 22})) << "jobs=" << jobs;
    EXPECT_EQ(c, (std::vector<int>{30, 31})) << "jobs=" << jobs;
  }
}

TEST(SweepRunner, SerialAffinityRunsLeadersImmediatelyBeforeFollowers) {
  // jobs=1: each (affinity, unit) group's leader runs, then its followers,
  // before the next group — the tightest locality for an LRU-budgeted
  // cache. Tasks: X and Y share affinity 5; Z opts out (affinity 0).
  // Execution order is observed on the map side (single-threaded here),
  // since results carry no execution-order information by design.
  std::vector<std::string> trace;
  const auto log = [&trace](const char* tag) {
    return [&trace, tag](int u) {
      trace.push_back(tag + std::to_string(u));
      return u;
    };
  };
  exec::SweepRunner runner(1);
  runner.add_affine(2, 5, log("X"), [](int, int) {});
  runner.add_affine(2, 5, log("Y"), [](int, int) {});
  runner.add_affine(1, 0, log("Z"), [](int, int) {});
  runner.run();
  // Flat order X0 X1 Y0 Y1 Z0. Groups: (5,0)={X0 leader, Y0 follower},
  // (5,1)={X1 leader, Y1 follower}, Z0 its own leader. Serial execution
  // merges each leader with its followers in leader order.
  EXPECT_EQ(trace,
            (std::vector<std::string>{"X0", "Y0", "X1", "Y1", "Z0"}));
}

TEST(SweepRunner, ParallelAffinityRunsAllLeadersBeforeAnyFollower) {
  // jobs>1: leaders fan out first, then a barrier, then followers. Record
  // the phase boundary via a counter snapshot.
  exec::SweepRunner runner(4);
  std::atomic<int> executed{0};
  std::atomic<int> followers_seen_before_leaders_done{0};
  constexpr int kLeaders = 3;  // units 0..2 of the first-queued task
  runner.add_affine(
      3, 9,
      [&executed](int u) {
        ++executed;
        return u;
      },
      [](int, int) {});
  runner.add_affine(
      3, 9,
      [&executed, &followers_seen_before_leaders_done](int u) {
        if (executed.load() < kLeaders) {
          ++followers_seen_before_leaders_done;
        }
        ++executed;
        return u;
      },
      [](int, int) {});
  runner.run();
  EXPECT_EQ(followers_seen_before_leaders_done.load(), 0);
  EXPECT_EQ(executed.load(), 6);
}

TEST(SweepRunner, MapExceptionPropagatesAndClearsTheBatch) {
  exec::SweepRunner runner(2);
  runner.add(
      3,
      [](int u) -> int {
        if (u == 1) throw std::runtime_error("unit failed");
        return u;
      },
      [](int, int) {});
  EXPECT_THROW(runner.run(), std::runtime_error);
  // The failed batch is gone; the runner stays usable.
  std::vector<int> out;
  runner.add(2, [](int u) { return u; },
             [&out](int, int v) { out.push_back(v); });
  runner.run();
  EXPECT_EQ(out, (std::vector<int>{0, 1}));
}

}  // namespace
}  // namespace rrsim::core
