// The determinism contract of the parallel campaign layer: campaign
// results are *bit-identical* for any worker count, because repetition r
// derives its randomness from config.seed + r and the reduction over
// per-rep results runs in repetition order. Every comparison below is
// exact (EXPECT_EQ on doubles), not approximate.
#include "rrsim/core/campaign.h"

#include <gtest/gtest.h>

#include "rrsim/core/paper.h"

namespace rrsim::core {
namespace {

ExperimentConfig tiny_config() {
  ExperimentConfig c = figure_config_quick();
  c.n_clusters = 3;
  c.submit_horizon = 0.3 * 3600.0;
  c.seed = 17;
  return c;
}

void expect_identical(const RelativeMetrics& a, const RelativeMetrics& b,
                      int jobs) {
  EXPECT_EQ(a.reps, b.reps) << "jobs=" << jobs;
  EXPECT_EQ(a.rel_avg_stretch, b.rel_avg_stretch) << "jobs=" << jobs;
  EXPECT_EQ(a.rel_cv_stretch, b.rel_cv_stretch) << "jobs=" << jobs;
  EXPECT_EQ(a.rel_max_stretch, b.rel_max_stretch) << "jobs=" << jobs;
  EXPECT_EQ(a.rel_avg_turnaround, b.rel_avg_turnaround) << "jobs=" << jobs;
  EXPECT_EQ(a.win_rate, b.win_rate) << "jobs=" << jobs;
  EXPECT_EQ(a.worst_rel_stretch, b.worst_rel_stretch) << "jobs=" << jobs;
  EXPECT_EQ(a.per_rep_rel_stretch, b.per_rep_rel_stretch) << "jobs=" << jobs;
}

TEST(CampaignDeterminism, RelativeCampaignIdenticalAcrossJobCounts) {
  ExperimentConfig c = tiny_config();
  c.scheme = RedundancyScheme::fixed(2);
  const RelativeMetrics serial = run_relative_campaign(c, 6, 1);
  ASSERT_GT(serial.reps, 0u);
  for (int jobs : {2, 8}) {
    const RelativeMetrics parallel = run_relative_campaign(c, 6, jobs);
    expect_identical(serial, parallel, jobs);
  }
}

TEST(CampaignDeterminism, ClassifiedCampaignIdenticalAcrossJobCounts) {
  ExperimentConfig c = tiny_config();
  c.scheme = RedundancyScheme::all();
  c.redundant_fraction = 0.5;
  const ClassifiedCampaign serial = run_classified_campaign(c, 6, 1);
  for (int jobs : {2, 8}) {
    const ClassifiedCampaign parallel = run_classified_campaign(c, 6, jobs);
    EXPECT_EQ(serial.reps, parallel.reps) << "jobs=" << jobs;
    EXPECT_EQ(serial.avg_stretch_all, parallel.avg_stretch_all)
        << "jobs=" << jobs;
    EXPECT_EQ(serial.avg_stretch_redundant, parallel.avg_stretch_redundant)
        << "jobs=" << jobs;
    EXPECT_EQ(serial.avg_stretch_non_redundant,
              parallel.avg_stretch_non_redundant)
        << "jobs=" << jobs;
    EXPECT_EQ(serial.redundant_jobs, parallel.redundant_jobs)
        << "jobs=" << jobs;
    EXPECT_EQ(serial.non_redundant_jobs, parallel.non_redundant_jobs)
        << "jobs=" << jobs;
  }
}

TEST(CampaignDeterminism, PredictionCampaignIdenticalAcrossJobCounts) {
  ExperimentConfig c = tiny_config();
  c.algorithm = sched::Algorithm::kCbf;
  c.estimator = "uniform216";
  c.scheme = RedundancyScheme::all();
  c.redundant_fraction = 0.4;
  const PredictionCampaign serial = run_prediction_campaign(c, 4, 1);
  ASSERT_GT(serial.all.jobs, 0u);
  for (int jobs : {2, 8}) {
    const PredictionCampaign parallel = run_prediction_campaign(c, 4, jobs);
    EXPECT_EQ(serial.all.jobs, parallel.all.jobs) << "jobs=" << jobs;
    EXPECT_EQ(serial.all.avg_ratio, parallel.all.avg_ratio)
        << "jobs=" << jobs;
    EXPECT_EQ(serial.redundant.jobs, parallel.redundant.jobs)
        << "jobs=" << jobs;
    EXPECT_EQ(serial.redundant.avg_ratio, parallel.redundant.avg_ratio)
        << "jobs=" << jobs;
    EXPECT_EQ(serial.non_redundant.jobs, parallel.non_redundant.jobs)
        << "jobs=" << jobs;
    EXPECT_EQ(serial.non_redundant.avg_ratio,
              parallel.non_redundant.avg_ratio)
        << "jobs=" << jobs;
  }
}

TEST(CampaignDeterminism, RepeatedParallelRunsAreStable) {
  // Two identical parallel invocations must agree with each other, not
  // just with the serial run (guards against iteration-order luck).
  ExperimentConfig c = tiny_config();
  c.scheme = RedundancyScheme::half();
  const RelativeMetrics a = run_relative_campaign(c, 5, 8);
  const RelativeMetrics b = run_relative_campaign(c, 5, 8);
  expect_identical(a, b, 8);
}

}  // namespace
}  // namespace rrsim::core
