// The determinism contract of the parallel campaign layer: campaign
// results are *bit-identical* for any worker count, because repetition r
// derives its randomness from config.seed + r and the reduction over
// per-rep results runs in repetition order. Every comparison below is
// exact (EXPECT_EQ on doubles), not approximate.
#include "rrsim/core/campaign.h"

#include <gtest/gtest.h>

#include "rrsim/core/paper.h"

namespace rrsim::core {
namespace {

ExperimentConfig tiny_config() {
  ExperimentConfig c = figure_config_quick();
  c.n_clusters = 3;
  c.submit_horizon = 0.3 * 3600.0;
  c.seed = 17;
  return c;
}

void expect_identical(const RelativeMetrics& a, const RelativeMetrics& b,
                      int jobs) {
  EXPECT_EQ(a.reps, b.reps) << "jobs=" << jobs;
  EXPECT_EQ(a.rel_avg_stretch, b.rel_avg_stretch) << "jobs=" << jobs;
  EXPECT_EQ(a.rel_cv_stretch, b.rel_cv_stretch) << "jobs=" << jobs;
  EXPECT_EQ(a.rel_max_stretch, b.rel_max_stretch) << "jobs=" << jobs;
  EXPECT_EQ(a.rel_avg_turnaround, b.rel_avg_turnaround) << "jobs=" << jobs;
  EXPECT_EQ(a.win_rate, b.win_rate) << "jobs=" << jobs;
  EXPECT_EQ(a.worst_rel_stretch, b.worst_rel_stretch) << "jobs=" << jobs;
  EXPECT_EQ(a.per_rep_rel_stretch, b.per_rep_rel_stretch) << "jobs=" << jobs;
}

TEST(CampaignDeterminism, RelativeCampaignIdenticalAcrossJobCounts) {
  ExperimentConfig c = tiny_config();
  c.scheme = RedundancyScheme::fixed(2);
  const RelativeMetrics serial = run_relative_campaign(c, 6, 1);
  ASSERT_GT(serial.reps, 0u);
  for (int jobs : {2, 8}) {
    const RelativeMetrics parallel = run_relative_campaign(c, 6, jobs);
    expect_identical(serial, parallel, jobs);
  }
}

TEST(CampaignDeterminism, ClassifiedCampaignIdenticalAcrossJobCounts) {
  ExperimentConfig c = tiny_config();
  c.scheme = RedundancyScheme::all();
  c.redundant_fraction = 0.5;
  const ClassifiedCampaign serial = run_classified_campaign(c, 6, 1);
  for (int jobs : {2, 8}) {
    const ClassifiedCampaign parallel = run_classified_campaign(c, 6, jobs);
    EXPECT_EQ(serial.reps, parallel.reps) << "jobs=" << jobs;
    EXPECT_EQ(serial.avg_stretch_all, parallel.avg_stretch_all)
        << "jobs=" << jobs;
    EXPECT_EQ(serial.avg_stretch_redundant, parallel.avg_stretch_redundant)
        << "jobs=" << jobs;
    EXPECT_EQ(serial.avg_stretch_non_redundant,
              parallel.avg_stretch_non_redundant)
        << "jobs=" << jobs;
    EXPECT_EQ(serial.redundant_jobs, parallel.redundant_jobs)
        << "jobs=" << jobs;
    EXPECT_EQ(serial.non_redundant_jobs, parallel.non_redundant_jobs)
        << "jobs=" << jobs;
  }
}

TEST(CampaignDeterminism, PredictionCampaignIdenticalAcrossJobCounts) {
  ExperimentConfig c = tiny_config();
  c.algorithm = sched::Algorithm::kCbf;
  c.estimator = "uniform216";
  c.scheme = RedundancyScheme::all();
  c.redundant_fraction = 0.4;
  const PredictionCampaign serial = run_prediction_campaign(c, 4, 1);
  ASSERT_GT(serial.all.jobs, 0u);
  for (int jobs : {2, 8}) {
    const PredictionCampaign parallel = run_prediction_campaign(c, 4, jobs);
    EXPECT_EQ(serial.all.jobs, parallel.all.jobs) << "jobs=" << jobs;
    EXPECT_EQ(serial.all.avg_ratio, parallel.all.avg_ratio)
        << "jobs=" << jobs;
    EXPECT_EQ(serial.redundant.jobs, parallel.redundant.jobs)
        << "jobs=" << jobs;
    EXPECT_EQ(serial.redundant.avg_ratio, parallel.redundant.avg_ratio)
        << "jobs=" << jobs;
    EXPECT_EQ(serial.non_redundant.jobs, parallel.non_redundant.jobs)
        << "jobs=" << jobs;
    EXPECT_EQ(serial.non_redundant.avg_ratio,
              parallel.non_redundant.avg_ratio)
        << "jobs=" << jobs;
  }
}

// Golden values captured from the pre-incremental-scheduler build (PR 1)
// with the exact configs below. The scheduler core has since been made
// incremental (O(1) cancels, in-place profile release, suffix-only CBF
// compression) under a behaviour-preservation contract: every metric must
// still come out bit-identical. Hex float literals pin every mantissa bit.
TEST(CampaignDeterminism, GoldenValuesMatchPreIncrementalScheduler) {
  {
    ExperimentConfig c = tiny_config();
    c.scheme = RedundancyScheme::fixed(2);
    const RelativeMetrics m = run_relative_campaign(c, 6, 1);
    EXPECT_EQ(m.reps, 6u);
    EXPECT_EQ(m.rel_avg_stretch, 0x1.54ffd4d8c6d1bp-1);
    EXPECT_EQ(m.rel_cv_stretch, 0x1.1de5af55aefd3p+0);
    EXPECT_EQ(m.rel_max_stretch, 0x1.5d26b2f1be5c5p-1);
    EXPECT_EQ(m.rel_avg_turnaround, 0x1.99c4f4e240079p-1);
    EXPECT_EQ(m.win_rate, 0x1.5555555555555p-1);
    EXPECT_EQ(m.worst_rel_stretch, 0x1.1d7c490632cd3p+0);
  }
  {
    ExperimentConfig c = tiny_config();
    c.algorithm = sched::Algorithm::kCbf;
    c.scheme = RedundancyScheme::fixed(3);
    const RelativeMetrics m = run_relative_campaign(c, 4, 1);
    EXPECT_EQ(m.reps, 4u);
    EXPECT_EQ(m.rel_avg_stretch, 0x1.35e597336ace3p-1);
    EXPECT_EQ(m.rel_cv_stretch, 0x1.dc2164b67bee1p-1);
    EXPECT_EQ(m.rel_max_stretch, 0x1.22e50f4868ea1p-1);
    EXPECT_EQ(m.rel_avg_turnaround, 0x1.b5e1e23ddc70fp-1);
    EXPECT_EQ(m.win_rate, 0x1p+0);
    EXPECT_EQ(m.worst_rel_stretch, 0x1.9b959cab86f41p-1);
  }
  {
    ExperimentConfig c = tiny_config();
    c.algorithm = sched::Algorithm::kFcfs;
    c.scheme = RedundancyScheme::all();
    c.redundant_fraction = 0.5;
    const ClassifiedCampaign m = run_classified_campaign(c, 6, 1);
    EXPECT_EQ(m.reps, 6u);
    EXPECT_EQ(m.redundant_jobs, 2005u);
    EXPECT_EQ(m.non_redundant_jobs, 2118u);
    EXPECT_EQ(m.avg_stretch_all, 0x1.35e5560a129fap+8);
    EXPECT_EQ(m.avg_stretch_redundant, 0x1.164aef99bc07dp+8);
    EXPECT_EQ(m.avg_stretch_non_redundant, 0x1.532fb92d3e033p+8);
  }
  {
    ExperimentConfig c = tiny_config();
    c.algorithm = sched::Algorithm::kCbf;
    c.estimator = "uniform216";
    c.scheme = RedundancyScheme::all();
    c.redundant_fraction = 0.4;
    const PredictionCampaign m = run_prediction_campaign(c, 4, 1);
    EXPECT_EQ(m.all.jobs, 1696u);
    EXPECT_EQ(m.redundant.jobs, 559u);
    EXPECT_EQ(m.non_redundant.jobs, 1137u);
    EXPECT_EQ(m.all.avg_ratio, 0x1.8cae5cb7686edp+2);
    EXPECT_EQ(m.redundant.avg_ratio, 0x1.9229ec7ca86c3p+2);
    EXPECT_EQ(m.non_redundant.avg_ratio, 0x1.89fc4eff1242fp+2);
  }
}

TEST(CampaignDeterminism, RepeatedParallelRunsAreStable) {
  // Two identical parallel invocations must agree with each other, not
  // just with the serial run (guards against iteration-order luck).
  ExperimentConfig c = tiny_config();
  c.scheme = RedundancyScheme::half();
  const RelativeMetrics a = run_relative_campaign(c, 5, 8);
  const RelativeMetrics b = run_relative_campaign(c, 5, 8);
  expect_identical(a, b, 8);
}

}  // namespace
}  // namespace rrsim::core
