// Pool and runner semantics only — no simulator dependency, so this file
// can also be compiled standalone under ThreadSanitizer (see
// tests/CMakeLists.txt, RRSIM_TSAN).
#include "rrsim/exec/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "rrsim/exec/campaign_runner.h"

namespace rrsim::exec {
namespace {

TEST(ThreadPool, ClampsToAtLeastOneWorker) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1);
  ThreadPool pool2(-3);
  EXPECT_EQ(pool2.size(), 1);
}

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, DestructorDrainsOutstandingTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    }
  }  // no wait_idle: the destructor must finish the queue before joining
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, WaitIdleIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.wait_idle();  // idle pool: returns immediately
  pool.submit([&count] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1);
  pool.submit([&count] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 2);
}

TEST(ParallelForEach, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  const int n = 500;
  std::vector<std::atomic<int>> hits(static_cast<std::size_t>(n));
  parallel_for_each(pool, n, [&](int i) {
    hits[static_cast<std::size_t>(i)].fetch_add(1);
  });
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "index " << i;
  }
}

TEST(ParallelForEach, EmptyRangeIsNoOp) {
  ThreadPool pool(2);
  parallel_for_each(pool, 0, [](int) { FAIL(); });
  parallel_for_each(pool, -5, [](int) { FAIL(); });
}

TEST(ParallelForEach, RethrowsLowestFailingIndex) {
  ThreadPool pool(4);
  try {
    parallel_for_each(pool, 64, [](int i) {
      if (i % 7 == 3) {  // fails at 3, 10, 17, ...
        throw std::runtime_error("boom " + std::to_string(i));
      }
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom 3");
  }
}

TEST(CampaignRunner, ReducesInIndexOrder) {
  for (int jobs : {1, 2, 8}) {
    CampaignRunner runner(jobs);
    EXPECT_EQ(runner.jobs(), jobs);
    std::vector<int> order;
    runner.map_reduce(
        40, [](int r) { return r * r; },
        [&order](int r, int v) {
          EXPECT_EQ(v, r * r);
          order.push_back(r);
        });
    std::vector<int> expected(40);
    std::iota(expected.begin(), expected.end(), 0);
    EXPECT_EQ(order, expected) << "jobs=" << jobs;
  }
}

TEST(CampaignRunner, MoveOnlyResultsSupported) {
  CampaignRunner runner(4);
  std::vector<int> collected;
  runner.map_reduce(
      10,
      [](int r) { return std::make_unique<int>(r + 100); },
      [&collected](int, std::unique_ptr<int> v) {
        collected.push_back(*v);
      });
  ASSERT_EQ(collected.size(), 10u);
  for (int r = 0; r < 10; ++r) EXPECT_EQ(collected[static_cast<std::size_t>(r)], r + 100);
}

TEST(CampaignRunner, MapExceptionPropagatesLowestIndex) {
  CampaignRunner runner(4);
  try {
    runner.map_reduce(
        20,
        [](int r) -> int {
          if (r >= 5) throw std::runtime_error("rep " + std::to_string(r));
          return r;
        },
        [](int, int) {});
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "rep 5");
  }
}

TEST(JobsResolution, ExplicitBeatsDefaultBeatsHardware) {
  set_default_jobs(0);  // reset process default
  EXPECT_EQ(resolve_jobs(7), 7);
  EXPECT_GE(resolve_jobs(0), 1);  // hardware fallback
  set_default_jobs(3);
  EXPECT_EQ(resolve_jobs(0), 3);
  EXPECT_EQ(default_jobs(), 3);
  EXPECT_EQ(resolve_jobs(2), 2);  // explicit still wins
  set_default_jobs(0);
}

TEST(JobsResolution, EnvVariableIsHonoured) {
  set_default_jobs(0);
  ASSERT_EQ(setenv("RRSIM_JOBS", "5", 1), 0);
  EXPECT_EQ(resolve_jobs(0), 5);
  ASSERT_EQ(setenv("RRSIM_JOBS", "garbage", 1), 0);
  EXPECT_GE(resolve_jobs(0), 1);  // malformed env falls through to hardware
  ASSERT_EQ(unsetenv("RRSIM_JOBS"), 0);
}

}  // namespace
}  // namespace rrsim::exec
