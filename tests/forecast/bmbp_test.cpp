#include "rrsim/forecast/bmbp.h"

#include <gtest/gtest.h>

#include <cmath>

#include "rrsim/util/distributions.h"
#include "rrsim/util/rng.h"

namespace rrsim::forecast {
namespace {

TEST(BinomialCdf, KnownValues) {
  // X ~ Binomial(5, 0.5): P[X<=2] = (1+5+10)/32 = 0.5.
  EXPECT_NEAR(binomial_cdf(2, 5, 0.5), 0.5, 1e-12);
  // P[X<=0] = 0.5^5.
  EXPECT_NEAR(binomial_cdf(0, 5, 0.5), 1.0 / 32.0, 1e-12);
  // Full support.
  EXPECT_DOUBLE_EQ(binomial_cdf(5, 5, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(binomial_cdf(9, 5, 0.5), 1.0);
}

TEST(BinomialCdf, EdgeProbabilities) {
  EXPECT_DOUBLE_EQ(binomial_cdf(0, 10, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(binomial_cdf(3, 10, 1.0), 0.0);
  EXPECT_THROW(binomial_cdf(1, 2, -0.1), std::invalid_argument);
  EXPECT_THROW(binomial_cdf(1, 2, 1.1), std::invalid_argument);
}

TEST(BinomialCdf, MonotoneInK) {
  double prev = 0.0;
  for (std::size_t k = 0; k <= 20; ++k) {
    const double v = binomial_cdf(k, 20, 0.3);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(BinomialCdf, LargeNStable) {
  // Median of Binomial(10000, 0.5): CDF at 4999 ~ 0.5.
  EXPECT_NEAR(binomial_cdf(4999, 10000, 0.5), 0.5, 0.01);
}

TEST(OrderStatistic, TooFewSamplesGivesNoBound) {
  // With q = c = 0.95, even the max of n samples only reaches confidence
  // 1 - 0.95^n; need n >= 59 for 95%.
  EXPECT_FALSE(bmbp_order_statistic(10, 0.95, 0.95).has_value());
  EXPECT_FALSE(bmbp_order_statistic(58, 0.95, 0.95).has_value());
  EXPECT_TRUE(bmbp_order_statistic(59, 0.95, 0.95).has_value());
  EXPECT_EQ(*bmbp_order_statistic(59, 0.95, 0.95), 59u);
}

TEST(OrderStatistic, MatchesDirectScan) {
  // Cross-check the binary search against a linear scan.
  for (const std::size_t n : {60u, 100u, 300u}) {
    const auto k = bmbp_order_statistic(n, 0.9, 0.95);
    ASSERT_TRUE(k.has_value());
    // k is feasible...
    EXPECT_GE(binomial_cdf(*k - 1, n, 0.9), 0.95);
    // ...and minimal.
    if (*k > 1) EXPECT_LT(binomial_cdf(*k - 2, n, 0.9), 0.95);
  }
}

TEST(OrderStatistic, Validation) {
  EXPECT_THROW(bmbp_order_statistic(10, 0.0, 0.5), std::invalid_argument);
  EXPECT_THROW(bmbp_order_statistic(10, 1.0, 0.5), std::invalid_argument);
  EXPECT_THROW(bmbp_order_statistic(10, 0.5, 0.0), std::invalid_argument);
  EXPECT_FALSE(bmbp_order_statistic(0, 0.5, 0.5).has_value());
}

TEST(BmbpPredictor, Validation) {
  EXPECT_THROW(BmbpPredictor(1.5, 0.95), std::invalid_argument);
  EXPECT_THROW(BmbpPredictor(0.95, 0.95, 0), std::invalid_argument);
  BmbpPredictor p;
  EXPECT_THROW(p.observe(-1.0), std::invalid_argument);
}

TEST(BmbpPredictor, NoBoundUntilEnoughHistory) {
  BmbpPredictor p(0.95, 0.95);
  for (int i = 0; i < 58; ++i) p.observe(static_cast<double>(i));
  EXPECT_FALSE(p.upper_bound().has_value());
  p.observe(58.0);
  EXPECT_TRUE(p.upper_bound().has_value());
}

TEST(BmbpPredictor, WindowSlides) {
  BmbpPredictor p(0.5, 0.5, 4);
  for (const double w : {100.0, 100.0, 100.0, 100.0}) p.observe(w);
  for (const double w : {1.0, 1.0, 1.0, 1.0}) p.observe(w);
  // Old observations evicted: the bound reflects only the small waits.
  const auto bound = p.upper_bound();
  ASSERT_TRUE(bound.has_value());
  EXPECT_DOUBLE_EQ(*bound, 1.0);
  EXPECT_EQ(p.history_size(), 4u);
}

TEST(BmbpPredictor, CoverageOnIidData_Property) {
  // On i.i.d. exponential waits, the 0.95-quantile bound at 95%
  // confidence must cover at least ~95% of future observations.
  util::Rng rng(11);
  BmbpPredictor p(0.95, 0.95, 256);
  for (int i = 0; i < 256; ++i) {
    p.observe(util::sample_exponential(rng, 100.0));
  }
  const auto bound = p.upper_bound();
  ASSERT_TRUE(bound.has_value());
  int covered = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    if (util::sample_exponential(rng, 100.0) <= *bound) ++covered;
  }
  EXPECT_GT(static_cast<double>(covered) / trials, 0.93);
}

TEST(BmbpPredictor, BoundTracksTrueQuantile) {
  // The bound should not be wildly conservative on clean data: for
  // exponential(100), the 0.95 quantile is ~300.
  util::Rng rng(12);
  BmbpPredictor p(0.95, 0.95, 512);
  for (int i = 0; i < 512; ++i) {
    p.observe(util::sample_exponential(rng, 100.0));
  }
  const auto bound = p.upper_bound();
  ASSERT_TRUE(bound.has_value());
  const double true_q = -100.0 * std::log(0.05);
  EXPECT_GT(*bound, true_q * 0.8);
  EXPECT_LT(*bound, true_q * 2.0);
}

}  // namespace
}  // namespace rrsim::forecast
