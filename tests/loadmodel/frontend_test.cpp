#include "rrsim/loadmodel/frontend.h"

#include <gtest/gtest.h>

namespace rrsim::loadmodel {
namespace {

TEST(FrontEnd, RejectsBadConstruction) {
  EXPECT_THROW(FrontEnd(0), std::invalid_argument);
}

TEST(FrontEnd, SubmitGrowsQueue) {
  FrontEnd fe(16);
  EXPECT_EQ(fe.queue_size(), 0u);
  fe.submit(4, 3600.0);
  fe.submit(8, 60.0);
  EXPECT_EQ(fe.queue_size(), 2u);
}

TEST(FrontEnd, SubmitValidation) {
  FrontEnd fe(16);
  EXPECT_THROW(fe.submit(0, 60.0), std::invalid_argument);
  EXPECT_THROW(fe.submit(17, 60.0), std::invalid_argument);
  EXPECT_THROW(fe.submit(1, 0.0), std::invalid_argument);
}

TEST(FrontEnd, CancelHeadShrinksQueue) {
  FrontEnd fe(16);
  fe.submit(1, 60.0);
  fe.submit(2, 60.0);
  EXPECT_TRUE(fe.cancel_head());
  EXPECT_EQ(fe.queue_size(), 1u);
  EXPECT_TRUE(fe.cancel_head());
  EXPECT_FALSE(fe.cancel_head());  // empty
}

TEST(FrontEnd, IdsAreUnique) {
  FrontEnd fe(16);
  const auto a = fe.submit(1, 60.0);
  const auto b = fe.submit(1, 60.0);
  EXPECT_NE(a, b);
}

TEST(FrontEnd, PrefillFillsWithoutSchedulingWork) {
  util::Rng rng(1);
  FrontEnd fe(16);
  fe.prefill(1000, rng);
  EXPECT_EQ(fe.queue_size(), 1000u);
  EXPECT_EQ(fe.work_performed(), 0u);
}

TEST(FrontEnd, PerOperationWorkGrowsWithQueueDepth) {
  util::Rng rng(2);
  FrontEnd shallow(16);
  shallow.prefill(10, rng);
  FrontEnd deep(16);
  deep.prefill(10000, rng);
  shallow.submit(1, 60.0);
  deep.submit(1, 60.0);
  // The Maui-style iteration is O(queue): the deep queue pays ~1000x.
  EXPECT_GT(deep.work_performed(), 100 * shallow.work_performed());
}

TEST(MeasureThroughput, ProducesOnePointPerDepth) {
  util::Rng rng(3);
  const auto points = measure_throughput(16, {0, 100, 500}, 50, rng);
  ASSERT_EQ(points.size(), 3u);
  EXPECT_EQ(points[0].queue_size, 0u);
  EXPECT_EQ(points[2].queue_size, 500u);
  for (const auto& p : points) EXPECT_GT(p.pairs_per_sec, 0.0);
}

TEST(MeasureThroughput, ThroughputDecaysWithQueueDepth) {
  // The Fig 5 shape: ops/sec at an empty queue clearly exceeds ops/sec
  // at a 20,000-deep queue (paper: ~2.2x), but not by orders of
  // magnitude (the fixed per-operation cost dominates shallow queues).
  util::Rng rng(4);
  const auto points = measure_throughput(16, {0, 20000}, 200, rng);
  ASSERT_EQ(points.size(), 2u);
  EXPECT_GT(points[0].pairs_per_sec, 1.5 * points[1].pairs_per_sec);
  EXPECT_LT(points[0].pairs_per_sec, 50.0 * points[1].pairs_per_sec);
}

TEST(FrontEnd, BaseOpCostIsConfigurable) {
  util::Rng rng(6);
  FrontEnd free_fe(16, 0);
  FrontEnd costly_fe(16, 200000);
  free_fe.submit(1, 60.0);
  costly_fe.submit(1, 60.0);
  // The queue-proportional work counter is identical; only wall time (via
  // the ballast computation) differs.
  EXPECT_EQ(free_fe.work_performed(), costly_fe.work_performed());
  EXPECT_EQ(free_fe.ballast(), 0.0);
  EXPECT_GT(costly_fe.ballast(), 0.0);
}

TEST(MeasureThroughput, RejectsBadPairs) {
  util::Rng rng(5);
  EXPECT_THROW(measure_throughput(16, {0}, 0, rng), std::invalid_argument);
}

}  // namespace
}  // namespace rrsim::loadmodel
