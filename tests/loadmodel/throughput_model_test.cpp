#include "rrsim/loadmodel/throughput_model.h"

#include <gtest/gtest.h>

namespace rrsim::loadmodel {
namespace {

TEST(ExpDecayModel, EvaluatesFormula) {
  const ExpDecayModel m(5.0, 6.0, 1000.0);
  EXPECT_DOUBLE_EQ(m.at(0.0), 11.0);
  EXPECT_NEAR(m.at(1000.0), 5.0 + 6.0 / 2.718281828, 1e-6);
  EXPECT_NEAR(m.at(1e9), 5.0, 1e-9);
}

TEST(ExpDecayModel, Validation) {
  EXPECT_THROW(ExpDecayModel(1.0, 1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(ExpDecayModel(-1.0, 1.0, 10.0), std::invalid_argument);
  EXPECT_THROW(ExpDecayModel(1.0, -1.0, 10.0), std::invalid_argument);
  const ExpDecayModel m(1.0, 1.0, 10.0);
  EXPECT_THROW(m.at(-1.0), std::invalid_argument);
}

TEST(ExpDecayModel, MonotonicallyDecreasing) {
  const ExpDecayModel m = ExpDecayModel::paper_calibrated();
  double prev = m.at(0.0);
  for (double q = 500.0; q <= 20000.0; q += 500.0) {
    const double cur = m.at(q);
    EXPECT_LT(cur, prev);
    prev = cur;
  }
}

TEST(ExpDecayModel, PaperCalibrationHitsReportedPoints) {
  // The paper reads ~11 ops/s empty, ~6 at 10,000, ~5 at 20,000.
  const ExpDecayModel m = ExpDecayModel::paper_calibrated();
  EXPECT_NEAR(m.at(0.0), 11.0, 0.5);
  EXPECT_NEAR(m.at(10000.0), 6.0, 0.5);
  EXPECT_NEAR(m.at(20000.0), 5.0, 0.5);
}

TEST(FitExpDecay, RecoversSyntheticParameters) {
  const ExpDecayModel truth(4.0, 7.0, 5000.0);
  std::vector<std::pair<double, double>> points;
  for (double q = 0.0; q <= 20000.0; q += 2000.0) {
    points.emplace_back(q, truth.at(q));
  }
  const ExpDecayModel fit = fit_exp_decay(points);
  for (double q = 0.0; q <= 20000.0; q += 1000.0) {
    EXPECT_NEAR(fit.at(q), truth.at(q), 0.1);
  }
}

TEST(FitExpDecay, RejectsDegenerateInput) {
  EXPECT_THROW(fit_exp_decay({{0.0, 1.0}, {1.0, 2.0}}),
               std::invalid_argument);
  EXPECT_THROW(fit_exp_decay({{0.0, 1.0}, {0.0, 2.0}, {0.0, 3.0}}),
               std::invalid_argument);
}

}  // namespace
}  // namespace rrsim::loadmodel
