#include "rrsim/loadmodel/capacity.h"

#include <gtest/gtest.h>

namespace rrsim::loadmodel {
namespace {

TEST(MaxRedundancy, PaperSchedulerBound) {
  // 6 submits/s and 6 cancels/s at iat = 5 s => r <= 30 (Section 4.1).
  EXPECT_EQ(max_redundancy(ServiceRates{6.0, 6.0}, 5.0), 30);
}

TEST(MaxRedundancy, PaperMiddlewareBound) {
  // GT4 WS-GRAM: 0.5/0.5 ops per second at iat = 5 s => r < 3
  // (Section 4.2 concludes "under 3 redundant requests per job").
  EXPECT_EQ(max_redundancy(gram_middleware(), 5.0), 2);
}

TEST(MaxRedundancy, CancelBoundBindsWhenSubmitsAreCheap) {
  // Submits free, cancels limited to 1/s at iat 4 s: (r-1)/4 <= 1 => r=5.
  EXPECT_EQ(max_redundancy(ServiceRates{100.0, 1.0}, 4.0), 5);
}

TEST(MaxRedundancy, AtLeastOne) {
  EXPECT_EQ(max_redundancy(ServiceRates{0.01, 0.01}, 1.0), 1);
}

TEST(MaxRedundancy, Validation) {
  EXPECT_THROW(max_redundancy(ServiceRates{1.0, 1.0}, 0.0),
               std::invalid_argument);
  EXPECT_THROW(max_redundancy(ServiceRates{-1.0, 1.0}, 1.0),
               std::invalid_argument);
}

TEST(SchedulerRates, ReadsPerDirectionRateFromModel) {
  const ExpDecayModel m = ExpDecayModel::paper_calibrated();
  const ServiceRates rates = scheduler_rates(m, 10000.0);
  EXPECT_NEAR(rates.submits_per_sec, 6.0, 0.5);
  EXPECT_EQ(rates.submits_per_sec, rates.cancels_per_sec);
}

TEST(AnalyzeCapacity, ReproducesSection4Conclusions) {
  const CapacityReport report = analyze_capacity(
      ExpDecayModel::paper_calibrated(), 10000.0, gram_middleware(), 5.0);
  // Scheduler tolerates ~30 requests/job; middleware only ~2; the
  // middleware is the bottleneck — the paper's headline Section 4 result.
  EXPECT_NEAR(report.scheduler_max_r, 30, 3);
  EXPECT_EQ(report.middleware_max_r, 2);
  EXPECT_EQ(report.system_max_r, report.middleware_max_r);
  EXPECT_TRUE(report.middleware_is_bottleneck);
}

TEST(AnalyzeCapacity, FasterMiddlewareShiftsBottleneck) {
  const CapacityReport report =
      analyze_capacity(ExpDecayModel::paper_calibrated(), 10000.0,
                       ServiceRates{100.0, 100.0}, 5.0);
  EXPECT_FALSE(report.middleware_is_bottleneck);
  EXPECT_EQ(report.system_max_r, report.scheduler_max_r);
}

TEST(AnalyzeCapacity, LongerInterarrivalAllowsMoreRedundancy) {
  const auto fast = analyze_capacity(ExpDecayModel::paper_calibrated(),
                                     10000.0, gram_middleware(), 2.0);
  const auto slow = analyze_capacity(ExpDecayModel::paper_calibrated(),
                                     10000.0, gram_middleware(), 20.0);
  EXPECT_GT(slow.system_max_r, fast.system_max_r);
}

TEST(AnalyzeCapacity, DeeperQueuesReduceSchedulerCapacity) {
  const auto shallow = analyze_capacity(ExpDecayModel::paper_calibrated(),
                                        0.0, gram_middleware(), 5.0);
  const auto deep = analyze_capacity(ExpDecayModel::paper_calibrated(),
                                     20000.0, gram_middleware(), 5.0);
  EXPECT_GT(shallow.scheduler_max_r, deep.scheduler_max_r);
}

}  // namespace
}  // namespace rrsim::loadmodel
