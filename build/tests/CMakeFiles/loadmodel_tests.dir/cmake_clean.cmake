file(REMOVE_RECURSE
  "CMakeFiles/loadmodel_tests.dir/loadmodel/capacity_test.cpp.o"
  "CMakeFiles/loadmodel_tests.dir/loadmodel/capacity_test.cpp.o.d"
  "CMakeFiles/loadmodel_tests.dir/loadmodel/frontend_test.cpp.o"
  "CMakeFiles/loadmodel_tests.dir/loadmodel/frontend_test.cpp.o.d"
  "CMakeFiles/loadmodel_tests.dir/loadmodel/throughput_model_test.cpp.o"
  "CMakeFiles/loadmodel_tests.dir/loadmodel/throughput_model_test.cpp.o.d"
  "loadmodel_tests"
  "loadmodel_tests.pdb"
  "loadmodel_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loadmodel_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
