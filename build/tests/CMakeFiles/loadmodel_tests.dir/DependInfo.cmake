
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/loadmodel/capacity_test.cpp" "tests/CMakeFiles/loadmodel_tests.dir/loadmodel/capacity_test.cpp.o" "gcc" "tests/CMakeFiles/loadmodel_tests.dir/loadmodel/capacity_test.cpp.o.d"
  "/root/repo/tests/loadmodel/frontend_test.cpp" "tests/CMakeFiles/loadmodel_tests.dir/loadmodel/frontend_test.cpp.o" "gcc" "tests/CMakeFiles/loadmodel_tests.dir/loadmodel/frontend_test.cpp.o.d"
  "/root/repo/tests/loadmodel/throughput_model_test.cpp" "tests/CMakeFiles/loadmodel_tests.dir/loadmodel/throughput_model_test.cpp.o" "gcc" "tests/CMakeFiles/loadmodel_tests.dir/loadmodel/throughput_model_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rrsim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/rrsim_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/rrsim_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/rrsim_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/rrsim_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/loadmodel/CMakeFiles/rrsim_loadmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/forecast/CMakeFiles/rrsim_forecast.dir/DependInfo.cmake"
  "/root/repo/build/src/des/CMakeFiles/rrsim_des.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rrsim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
