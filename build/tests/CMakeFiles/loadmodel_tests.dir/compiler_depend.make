# Empty compiler generated dependencies file for loadmodel_tests.
# This may be replaced when dependencies are built.
