file(REMOVE_RECURSE
  "CMakeFiles/sched_tests.dir/sched/cbf_test.cpp.o"
  "CMakeFiles/sched_tests.dir/sched/cbf_test.cpp.o.d"
  "CMakeFiles/sched_tests.dir/sched/easy_test.cpp.o"
  "CMakeFiles/sched_tests.dir/sched/easy_test.cpp.o.d"
  "CMakeFiles/sched_tests.dir/sched/fcfs_test.cpp.o"
  "CMakeFiles/sched_tests.dir/sched/fcfs_test.cpp.o.d"
  "CMakeFiles/sched_tests.dir/sched/profile_test.cpp.o"
  "CMakeFiles/sched_tests.dir/sched/profile_test.cpp.o.d"
  "CMakeFiles/sched_tests.dir/sched/scheduler_common_test.cpp.o"
  "CMakeFiles/sched_tests.dir/sched/scheduler_common_test.cpp.o.d"
  "CMakeFiles/sched_tests.dir/sched/user_limits_test.cpp.o"
  "CMakeFiles/sched_tests.dir/sched/user_limits_test.cpp.o.d"
  "sched_tests"
  "sched_tests.pdb"
  "sched_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
