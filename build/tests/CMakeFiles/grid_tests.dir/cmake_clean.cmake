file(REMOVE_RECURSE
  "CMakeFiles/grid_tests.dir/grid/gateway_limits_test.cpp.o"
  "CMakeFiles/grid_tests.dir/grid/gateway_limits_test.cpp.o.d"
  "CMakeFiles/grid_tests.dir/grid/gateway_shapes_test.cpp.o"
  "CMakeFiles/grid_tests.dir/grid/gateway_shapes_test.cpp.o.d"
  "CMakeFiles/grid_tests.dir/grid/gateway_test.cpp.o"
  "CMakeFiles/grid_tests.dir/grid/gateway_test.cpp.o.d"
  "CMakeFiles/grid_tests.dir/grid/middleware_test.cpp.o"
  "CMakeFiles/grid_tests.dir/grid/middleware_test.cpp.o.d"
  "CMakeFiles/grid_tests.dir/grid/placement_test.cpp.o"
  "CMakeFiles/grid_tests.dir/grid/placement_test.cpp.o.d"
  "CMakeFiles/grid_tests.dir/grid/platform_test.cpp.o"
  "CMakeFiles/grid_tests.dir/grid/platform_test.cpp.o.d"
  "grid_tests"
  "grid_tests.pdb"
  "grid_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grid_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
