# Empty dependencies file for rrsim_core.
# This may be replaced when dependencies are built.
