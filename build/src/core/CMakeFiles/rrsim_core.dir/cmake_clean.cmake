file(REMOVE_RECURSE
  "CMakeFiles/rrsim_core.dir/campaign.cpp.o"
  "CMakeFiles/rrsim_core.dir/campaign.cpp.o.d"
  "CMakeFiles/rrsim_core.dir/experiment.cpp.o"
  "CMakeFiles/rrsim_core.dir/experiment.cpp.o.d"
  "CMakeFiles/rrsim_core.dir/options.cpp.o"
  "CMakeFiles/rrsim_core.dir/options.cpp.o.d"
  "CMakeFiles/rrsim_core.dir/paper.cpp.o"
  "CMakeFiles/rrsim_core.dir/paper.cpp.o.d"
  "CMakeFiles/rrsim_core.dir/scheme.cpp.o"
  "CMakeFiles/rrsim_core.dir/scheme.cpp.o.d"
  "librrsim_core.a"
  "librrsim_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrsim_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
