
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/campaign.cpp" "src/core/CMakeFiles/rrsim_core.dir/campaign.cpp.o" "gcc" "src/core/CMakeFiles/rrsim_core.dir/campaign.cpp.o.d"
  "/root/repo/src/core/experiment.cpp" "src/core/CMakeFiles/rrsim_core.dir/experiment.cpp.o" "gcc" "src/core/CMakeFiles/rrsim_core.dir/experiment.cpp.o.d"
  "/root/repo/src/core/options.cpp" "src/core/CMakeFiles/rrsim_core.dir/options.cpp.o" "gcc" "src/core/CMakeFiles/rrsim_core.dir/options.cpp.o.d"
  "/root/repo/src/core/paper.cpp" "src/core/CMakeFiles/rrsim_core.dir/paper.cpp.o" "gcc" "src/core/CMakeFiles/rrsim_core.dir/paper.cpp.o.d"
  "/root/repo/src/core/scheme.cpp" "src/core/CMakeFiles/rrsim_core.dir/scheme.cpp.o" "gcc" "src/core/CMakeFiles/rrsim_core.dir/scheme.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/grid/CMakeFiles/rrsim_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/rrsim_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/rrsim_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/rrsim_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/des/CMakeFiles/rrsim_des.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rrsim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
