file(REMOVE_RECURSE
  "librrsim_core.a"
)
