file(REMOVE_RECURSE
  "CMakeFiles/rrsim_workload.dir/calibrate.cpp.o"
  "CMakeFiles/rrsim_workload.dir/calibrate.cpp.o.d"
  "CMakeFiles/rrsim_workload.dir/estimators.cpp.o"
  "CMakeFiles/rrsim_workload.dir/estimators.cpp.o.d"
  "CMakeFiles/rrsim_workload.dir/lublin.cpp.o"
  "CMakeFiles/rrsim_workload.dir/lublin.cpp.o.d"
  "CMakeFiles/rrsim_workload.dir/moldable.cpp.o"
  "CMakeFiles/rrsim_workload.dir/moldable.cpp.o.d"
  "CMakeFiles/rrsim_workload.dir/swf.cpp.o"
  "CMakeFiles/rrsim_workload.dir/swf.cpp.o.d"
  "librrsim_workload.a"
  "librrsim_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrsim_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
