# Empty dependencies file for rrsim_workload.
# This may be replaced when dependencies are built.
