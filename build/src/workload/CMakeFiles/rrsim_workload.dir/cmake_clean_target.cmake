file(REMOVE_RECURSE
  "librrsim_workload.a"
)
