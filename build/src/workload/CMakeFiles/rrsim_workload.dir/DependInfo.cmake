
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/calibrate.cpp" "src/workload/CMakeFiles/rrsim_workload.dir/calibrate.cpp.o" "gcc" "src/workload/CMakeFiles/rrsim_workload.dir/calibrate.cpp.o.d"
  "/root/repo/src/workload/estimators.cpp" "src/workload/CMakeFiles/rrsim_workload.dir/estimators.cpp.o" "gcc" "src/workload/CMakeFiles/rrsim_workload.dir/estimators.cpp.o.d"
  "/root/repo/src/workload/lublin.cpp" "src/workload/CMakeFiles/rrsim_workload.dir/lublin.cpp.o" "gcc" "src/workload/CMakeFiles/rrsim_workload.dir/lublin.cpp.o.d"
  "/root/repo/src/workload/moldable.cpp" "src/workload/CMakeFiles/rrsim_workload.dir/moldable.cpp.o" "gcc" "src/workload/CMakeFiles/rrsim_workload.dir/moldable.cpp.o.d"
  "/root/repo/src/workload/swf.cpp" "src/workload/CMakeFiles/rrsim_workload.dir/swf.cpp.o" "gcc" "src/workload/CMakeFiles/rrsim_workload.dir/swf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rrsim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
