# Empty dependencies file for rrsim_sched.
# This may be replaced when dependencies are built.
