file(REMOVE_RECURSE
  "CMakeFiles/rrsim_sched.dir/cbf.cpp.o"
  "CMakeFiles/rrsim_sched.dir/cbf.cpp.o.d"
  "CMakeFiles/rrsim_sched.dir/easy.cpp.o"
  "CMakeFiles/rrsim_sched.dir/easy.cpp.o.d"
  "CMakeFiles/rrsim_sched.dir/factory.cpp.o"
  "CMakeFiles/rrsim_sched.dir/factory.cpp.o.d"
  "CMakeFiles/rrsim_sched.dir/fcfs.cpp.o"
  "CMakeFiles/rrsim_sched.dir/fcfs.cpp.o.d"
  "CMakeFiles/rrsim_sched.dir/profile.cpp.o"
  "CMakeFiles/rrsim_sched.dir/profile.cpp.o.d"
  "CMakeFiles/rrsim_sched.dir/scheduler.cpp.o"
  "CMakeFiles/rrsim_sched.dir/scheduler.cpp.o.d"
  "librrsim_sched.a"
  "librrsim_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrsim_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
