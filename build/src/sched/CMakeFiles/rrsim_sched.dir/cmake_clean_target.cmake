file(REMOVE_RECURSE
  "librrsim_sched.a"
)
