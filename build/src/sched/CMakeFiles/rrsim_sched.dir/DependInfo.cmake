
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/cbf.cpp" "src/sched/CMakeFiles/rrsim_sched.dir/cbf.cpp.o" "gcc" "src/sched/CMakeFiles/rrsim_sched.dir/cbf.cpp.o.d"
  "/root/repo/src/sched/easy.cpp" "src/sched/CMakeFiles/rrsim_sched.dir/easy.cpp.o" "gcc" "src/sched/CMakeFiles/rrsim_sched.dir/easy.cpp.o.d"
  "/root/repo/src/sched/factory.cpp" "src/sched/CMakeFiles/rrsim_sched.dir/factory.cpp.o" "gcc" "src/sched/CMakeFiles/rrsim_sched.dir/factory.cpp.o.d"
  "/root/repo/src/sched/fcfs.cpp" "src/sched/CMakeFiles/rrsim_sched.dir/fcfs.cpp.o" "gcc" "src/sched/CMakeFiles/rrsim_sched.dir/fcfs.cpp.o.d"
  "/root/repo/src/sched/profile.cpp" "src/sched/CMakeFiles/rrsim_sched.dir/profile.cpp.o" "gcc" "src/sched/CMakeFiles/rrsim_sched.dir/profile.cpp.o.d"
  "/root/repo/src/sched/scheduler.cpp" "src/sched/CMakeFiles/rrsim_sched.dir/scheduler.cpp.o" "gcc" "src/sched/CMakeFiles/rrsim_sched.dir/scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/des/CMakeFiles/rrsim_des.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rrsim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
