# Empty dependencies file for rrsim_util.
# This may be replaced when dependencies are built.
