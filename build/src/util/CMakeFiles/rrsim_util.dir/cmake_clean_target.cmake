file(REMOVE_RECURSE
  "librrsim_util.a"
)
