file(REMOVE_RECURSE
  "CMakeFiles/rrsim_util.dir/cli.cpp.o"
  "CMakeFiles/rrsim_util.dir/cli.cpp.o.d"
  "CMakeFiles/rrsim_util.dir/distributions.cpp.o"
  "CMakeFiles/rrsim_util.dir/distributions.cpp.o.d"
  "CMakeFiles/rrsim_util.dir/stats.cpp.o"
  "CMakeFiles/rrsim_util.dir/stats.cpp.o.d"
  "CMakeFiles/rrsim_util.dir/table.cpp.o"
  "CMakeFiles/rrsim_util.dir/table.cpp.o.d"
  "librrsim_util.a"
  "librrsim_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrsim_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
