file(REMOVE_RECURSE
  "CMakeFiles/rrsim_forecast.dir/bmbp.cpp.o"
  "CMakeFiles/rrsim_forecast.dir/bmbp.cpp.o.d"
  "librrsim_forecast.a"
  "librrsim_forecast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrsim_forecast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
