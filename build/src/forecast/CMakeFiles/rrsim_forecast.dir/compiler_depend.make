# Empty compiler generated dependencies file for rrsim_forecast.
# This may be replaced when dependencies are built.
