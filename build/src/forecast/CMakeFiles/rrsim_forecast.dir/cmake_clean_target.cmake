file(REMOVE_RECURSE
  "librrsim_forecast.a"
)
