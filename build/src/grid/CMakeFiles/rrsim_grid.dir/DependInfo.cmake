
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/grid/gateway.cpp" "src/grid/CMakeFiles/rrsim_grid.dir/gateway.cpp.o" "gcc" "src/grid/CMakeFiles/rrsim_grid.dir/gateway.cpp.o.d"
  "/root/repo/src/grid/middleware.cpp" "src/grid/CMakeFiles/rrsim_grid.dir/middleware.cpp.o" "gcc" "src/grid/CMakeFiles/rrsim_grid.dir/middleware.cpp.o.d"
  "/root/repo/src/grid/placement.cpp" "src/grid/CMakeFiles/rrsim_grid.dir/placement.cpp.o" "gcc" "src/grid/CMakeFiles/rrsim_grid.dir/placement.cpp.o.d"
  "/root/repo/src/grid/platform.cpp" "src/grid/CMakeFiles/rrsim_grid.dir/platform.cpp.o" "gcc" "src/grid/CMakeFiles/rrsim_grid.dir/platform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sched/CMakeFiles/rrsim_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/rrsim_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/rrsim_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/des/CMakeFiles/rrsim_des.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rrsim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
