file(REMOVE_RECURSE
  "CMakeFiles/rrsim_grid.dir/gateway.cpp.o"
  "CMakeFiles/rrsim_grid.dir/gateway.cpp.o.d"
  "CMakeFiles/rrsim_grid.dir/middleware.cpp.o"
  "CMakeFiles/rrsim_grid.dir/middleware.cpp.o.d"
  "CMakeFiles/rrsim_grid.dir/placement.cpp.o"
  "CMakeFiles/rrsim_grid.dir/placement.cpp.o.d"
  "CMakeFiles/rrsim_grid.dir/platform.cpp.o"
  "CMakeFiles/rrsim_grid.dir/platform.cpp.o.d"
  "librrsim_grid.a"
  "librrsim_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrsim_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
