# Empty dependencies file for rrsim_grid.
# This may be replaced when dependencies are built.
