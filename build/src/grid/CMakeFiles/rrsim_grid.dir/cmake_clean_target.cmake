file(REMOVE_RECURSE
  "librrsim_grid.a"
)
