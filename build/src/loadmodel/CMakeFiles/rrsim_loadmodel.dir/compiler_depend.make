# Empty compiler generated dependencies file for rrsim_loadmodel.
# This may be replaced when dependencies are built.
