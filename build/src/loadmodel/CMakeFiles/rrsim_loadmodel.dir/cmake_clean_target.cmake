file(REMOVE_RECURSE
  "librrsim_loadmodel.a"
)
