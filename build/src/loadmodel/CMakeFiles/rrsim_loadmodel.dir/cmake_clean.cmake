file(REMOVE_RECURSE
  "CMakeFiles/rrsim_loadmodel.dir/capacity.cpp.o"
  "CMakeFiles/rrsim_loadmodel.dir/capacity.cpp.o.d"
  "CMakeFiles/rrsim_loadmodel.dir/frontend.cpp.o"
  "CMakeFiles/rrsim_loadmodel.dir/frontend.cpp.o.d"
  "CMakeFiles/rrsim_loadmodel.dir/throughput_model.cpp.o"
  "CMakeFiles/rrsim_loadmodel.dir/throughput_model.cpp.o.d"
  "librrsim_loadmodel.a"
  "librrsim_loadmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrsim_loadmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
