
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/loadmodel/capacity.cpp" "src/loadmodel/CMakeFiles/rrsim_loadmodel.dir/capacity.cpp.o" "gcc" "src/loadmodel/CMakeFiles/rrsim_loadmodel.dir/capacity.cpp.o.d"
  "/root/repo/src/loadmodel/frontend.cpp" "src/loadmodel/CMakeFiles/rrsim_loadmodel.dir/frontend.cpp.o" "gcc" "src/loadmodel/CMakeFiles/rrsim_loadmodel.dir/frontend.cpp.o.d"
  "/root/repo/src/loadmodel/throughput_model.cpp" "src/loadmodel/CMakeFiles/rrsim_loadmodel.dir/throughput_model.cpp.o" "gcc" "src/loadmodel/CMakeFiles/rrsim_loadmodel.dir/throughput_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rrsim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
