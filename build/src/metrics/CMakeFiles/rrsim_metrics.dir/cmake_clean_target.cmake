file(REMOVE_RECURSE
  "librrsim_metrics.a"
)
