file(REMOVE_RECURSE
  "CMakeFiles/rrsim_metrics.dir/queue_tracker.cpp.o"
  "CMakeFiles/rrsim_metrics.dir/queue_tracker.cpp.o.d"
  "CMakeFiles/rrsim_metrics.dir/summary.cpp.o"
  "CMakeFiles/rrsim_metrics.dir/summary.cpp.o.d"
  "librrsim_metrics.a"
  "librrsim_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrsim_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
