# Empty compiler generated dependencies file for rrsim_metrics.
# This may be replaced when dependencies are built.
