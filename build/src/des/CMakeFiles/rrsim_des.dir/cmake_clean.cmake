file(REMOVE_RECURSE
  "CMakeFiles/rrsim_des.dir/simulation.cpp.o"
  "CMakeFiles/rrsim_des.dir/simulation.cpp.o.d"
  "librrsim_des.a"
  "librrsim_des.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrsim_des.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
