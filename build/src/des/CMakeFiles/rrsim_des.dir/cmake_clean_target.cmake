file(REMOVE_RECURSE
  "librrsim_des.a"
)
