# Empty compiler generated dependencies file for rrsim_des.
# This may be replaced when dependencies are built.
