# Empty dependencies file for ext_moldable.
# This may be replaced when dependencies are built.
