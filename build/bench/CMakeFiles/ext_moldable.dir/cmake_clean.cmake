file(REMOVE_RECURSE
  "CMakeFiles/ext_moldable.dir/ext_moldable.cpp.o"
  "CMakeFiles/ext_moldable.dir/ext_moldable.cpp.o.d"
  "ext_moldable"
  "ext_moldable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_moldable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
