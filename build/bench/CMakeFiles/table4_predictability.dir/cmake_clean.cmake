file(REMOVE_RECURSE
  "CMakeFiles/table4_predictability.dir/table4_predictability.cpp.o"
  "CMakeFiles/table4_predictability.dir/table4_predictability.cpp.o.d"
  "table4_predictability"
  "table4_predictability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_predictability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
