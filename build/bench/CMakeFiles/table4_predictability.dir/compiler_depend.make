# Empty compiler generated dependencies file for table4_predictability.
# This may be replaced when dependencies are built.
