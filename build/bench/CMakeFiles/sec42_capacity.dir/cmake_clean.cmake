file(REMOVE_RECURSE
  "CMakeFiles/sec42_capacity.dir/sec42_capacity.cpp.o"
  "CMakeFiles/sec42_capacity.dir/sec42_capacity.cpp.o.d"
  "sec42_capacity"
  "sec42_capacity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec42_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
