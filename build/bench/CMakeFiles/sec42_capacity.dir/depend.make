# Empty dependencies file for sec42_capacity.
# This may be replaced when dependencies are built.
