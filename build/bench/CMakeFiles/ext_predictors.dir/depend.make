# Empty dependencies file for ext_predictors.
# This may be replaced when dependencies are built.
