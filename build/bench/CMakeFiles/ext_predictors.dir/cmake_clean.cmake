file(REMOVE_RECURSE
  "CMakeFiles/ext_predictors.dir/ext_predictors.cpp.o"
  "CMakeFiles/ext_predictors.dir/ext_predictors.cpp.o.d"
  "ext_predictors"
  "ext_predictors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_predictors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
