# Empty dependencies file for fig4_penalty.
# This may be replaced when dependencies are built.
