file(REMOVE_RECURSE
  "CMakeFiles/fig4_penalty.dir/fig4_penalty.cpp.o"
  "CMakeFiles/fig4_penalty.dir/fig4_penalty.cpp.o.d"
  "fig4_penalty"
  "fig4_penalty.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_penalty.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
