# Empty dependencies file for table3_heterogeneous.
# This may be replaced when dependencies are built.
