file(REMOVE_RECURSE
  "CMakeFiles/table3_heterogeneous.dir/table3_heterogeneous.cpp.o"
  "CMakeFiles/table3_heterogeneous.dir/table3_heterogeneous.cpp.o.d"
  "table3_heterogeneous"
  "table3_heterogeneous.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_heterogeneous.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
