# Empty compiler generated dependencies file for table2_biased_placement.
# This may be replaced when dependencies are built.
