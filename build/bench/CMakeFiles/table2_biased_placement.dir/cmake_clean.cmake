file(REMOVE_RECURSE
  "CMakeFiles/table2_biased_placement.dir/table2_biased_placement.cpp.o"
  "CMakeFiles/table2_biased_placement.dir/table2_biased_placement.cpp.o.d"
  "table2_biased_placement"
  "table2_biased_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_biased_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
