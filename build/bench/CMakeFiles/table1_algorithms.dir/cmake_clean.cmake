file(REMOVE_RECURSE
  "CMakeFiles/table1_algorithms.dir/table1_algorithms.cpp.o"
  "CMakeFiles/table1_algorithms.dir/table1_algorithms.cpp.o.d"
  "table1_algorithms"
  "table1_algorithms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_algorithms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
