# Empty dependencies file for sec41_queue_growth.
# This may be replaced when dependencies are built.
