file(REMOVE_RECURSE
  "CMakeFiles/sec41_queue_growth.dir/sec41_queue_growth.cpp.o"
  "CMakeFiles/sec41_queue_growth.dir/sec41_queue_growth.cpp.o.d"
  "sec41_queue_growth"
  "sec41_queue_growth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec41_queue_growth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
