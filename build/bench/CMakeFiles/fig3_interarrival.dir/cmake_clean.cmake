file(REMOVE_RECURSE
  "CMakeFiles/fig3_interarrival.dir/fig3_interarrival.cpp.o"
  "CMakeFiles/fig3_interarrival.dir/fig3_interarrival.cpp.o.d"
  "fig3_interarrival"
  "fig3_interarrival.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_interarrival.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
