# Empty dependencies file for fig3_interarrival.
# This may be replaced when dependencies are built.
