# Empty compiler generated dependencies file for fig2_relative_cv.
# This may be replaced when dependencies are built.
