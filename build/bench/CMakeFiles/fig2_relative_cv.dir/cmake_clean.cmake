file(REMOVE_RECURSE
  "CMakeFiles/fig2_relative_cv.dir/fig2_relative_cv.cpp.o"
  "CMakeFiles/fig2_relative_cv.dir/fig2_relative_cv.cpp.o.d"
  "fig2_relative_cv"
  "fig2_relative_cv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_relative_cv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
