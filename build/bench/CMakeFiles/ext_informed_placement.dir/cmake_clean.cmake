file(REMOVE_RECURSE
  "CMakeFiles/ext_informed_placement.dir/ext_informed_placement.cpp.o"
  "CMakeFiles/ext_informed_placement.dir/ext_informed_placement.cpp.o.d"
  "ext_informed_placement"
  "ext_informed_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_informed_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
