# Empty dependencies file for ext_informed_placement.
# This may be replaced when dependencies are built.
