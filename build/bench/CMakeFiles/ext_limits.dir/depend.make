# Empty dependencies file for ext_limits.
# This may be replaced when dependencies are built.
