file(REMOVE_RECURSE
  "CMakeFiles/ext_limits.dir/ext_limits.cpp.o"
  "CMakeFiles/ext_limits.dir/ext_limits.cpp.o.d"
  "ext_limits"
  "ext_limits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_limits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
