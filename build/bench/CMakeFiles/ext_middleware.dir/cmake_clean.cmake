file(REMOVE_RECURSE
  "CMakeFiles/ext_middleware.dir/ext_middleware.cpp.o"
  "CMakeFiles/ext_middleware.dir/ext_middleware.cpp.o.d"
  "ext_middleware"
  "ext_middleware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_middleware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
