# Empty compiler generated dependencies file for ext_middleware.
# This may be replaced when dependencies are built.
