file(REMOVE_RECURSE
  "CMakeFiles/sec312_inflation.dir/sec312_inflation.cpp.o"
  "CMakeFiles/sec312_inflation.dir/sec312_inflation.cpp.o.d"
  "sec312_inflation"
  "sec312_inflation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec312_inflation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
