# Empty dependencies file for sec312_inflation.
# This may be replaced when dependencies are built.
