# Empty dependencies file for fig1_relative_stretch.
# This may be replaced when dependencies are built.
