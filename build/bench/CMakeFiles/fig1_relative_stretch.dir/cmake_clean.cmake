file(REMOVE_RECURSE
  "CMakeFiles/fig1_relative_stretch.dir/fig1_relative_stretch.cpp.o"
  "CMakeFiles/fig1_relative_stretch.dir/fig1_relative_stretch.cpp.o.d"
  "fig1_relative_stretch"
  "fig1_relative_stretch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_relative_stretch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
