# Empty compiler generated dependencies file for fairness_probe.
# This may be replaced when dependencies are built.
