file(REMOVE_RECURSE
  "CMakeFiles/fairness_probe.dir/fairness_probe.cpp.o"
  "CMakeFiles/fairness_probe.dir/fairness_probe.cpp.o.d"
  "fairness_probe"
  "fairness_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fairness_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
