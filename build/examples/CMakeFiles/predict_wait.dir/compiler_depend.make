# Empty compiler generated dependencies file for predict_wait.
# This may be replaced when dependencies are built.
