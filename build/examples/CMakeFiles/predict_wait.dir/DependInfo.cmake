
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/predict_wait.cpp" "examples/CMakeFiles/predict_wait.dir/predict_wait.cpp.o" "gcc" "examples/CMakeFiles/predict_wait.dir/predict_wait.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rrsim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/rrsim_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/rrsim_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/rrsim_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/rrsim_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/loadmodel/CMakeFiles/rrsim_loadmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/des/CMakeFiles/rrsim_des.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rrsim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
