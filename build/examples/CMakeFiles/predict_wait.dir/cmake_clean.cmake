file(REMOVE_RECURSE
  "CMakeFiles/predict_wait.dir/predict_wait.cpp.o"
  "CMakeFiles/predict_wait.dir/predict_wait.cpp.o.d"
  "predict_wait"
  "predict_wait.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predict_wait.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
