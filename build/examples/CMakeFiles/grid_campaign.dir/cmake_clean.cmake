file(REMOVE_RECURSE
  "CMakeFiles/grid_campaign.dir/grid_campaign.cpp.o"
  "CMakeFiles/grid_campaign.dir/grid_campaign.cpp.o.d"
  "grid_campaign"
  "grid_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grid_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
