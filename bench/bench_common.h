// Shared plumbing for the experiment harnesses in bench/: every binary
// regenerates one table or figure of the paper, prints the paper's rows
// as aligned text plus a CSV block, and accepts the common flags from
// rrsim/core/options.h plus --reps and --full (paper-scale repetitions).
#pragma once

#include <cinttypes>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <exception>
#include <iostream>
#include <stdexcept>
#include <string>
#include <thread>

#include "rrsim/core/campaign.h"
#include "rrsim/core/options.h"
#include "rrsim/core/paper.h"
#include "rrsim/core/sweep.h"
#include "rrsim/exec/campaign_runner.h"
#include "rrsim/util/cli.h"
#include "rrsim/util/table.h"
#include "rrsim/workload/trace_cache.h"

namespace rrsim::bench {

/// Repetition count: --reps wins; --full selects the paper's 50; otherwise
/// `quick_default`. Rejects --reps < 1 at the flag layer so the mistake is
/// reported as a usage error, not from deep inside a campaign. Also
/// consumes --jobs here (harnesses parse --reps before printing the
/// banner, so the banner reports the configured worker count even when
/// apply_common_flags runs later).
inline int repetitions(const util::Cli& cli, int quick_default) {
  // Trace-cache byte budget from the environment, so CI can cap bench
  // memory without editing every invocation. Applied before the flags, so
  // an explicit --trace-cache-budget (apply_common_flags, which harnesses
  // call later) wins over the env var.
  if (const char* env = std::getenv("RRSIM_TRACE_CACHE_BUDGET")) {
    char* end = nullptr;
    const long long budget = std::strtoll(env, &end, 10);
    if (end == env || *end != '\0' || budget < 0) {
      throw std::invalid_argument(
          "RRSIM_TRACE_CACHE_BUDGET must be a non-negative byte count (got "
          "\"" + std::string(env) + "\")");
    }
    workload::TraceCache::global().set_byte_budget(
        static_cast<std::size_t>(budget));
  }
  if (cli.has("jobs")) {
    const std::int64_t jobs = cli.get_int("jobs", 0);
    if (jobs < 1) {
      throw std::invalid_argument("--jobs must be >= 1 (got " +
                                  std::to_string(jobs) + ")");
    }
    exec::set_default_jobs(static_cast<int>(jobs));
  }
  if (cli.has("reps")) {
    const std::int64_t reps = cli.get_int("reps", 0);
    if (reps < 1) {
      throw std::invalid_argument("--reps must be >= 1 (got " +
                                  std::to_string(reps) + ")");
    }
    return static_cast<int>(reps);
  }
  if (cli.get_bool("full", false)) return 50;
  return quick_default;
}

/// Prints the harness banner: what is being reproduced and with which
/// protocol, so the output is interpretable on its own.
inline void banner(const std::string& experiment, const std::string& claim,
                   int reps) {
  std::printf("=== %s ===\n", experiment.c_str());
  std::printf("%s\n", claim.c_str());
  std::printf("repetitions per data point: %d (use --full for the paper's "
              "50); campaign workers: %d (--jobs / RRSIM_JOBS)\n\n",
              reps, exec::default_jobs());
}

/// Prints the sweep execution summary harnesses emit after their tables:
/// worker count and trace-cache effectiveness. A sweep over K points with
/// shared streams should show roughly (K-1)/K hit rate per distinct
/// (seed, shape) pair; 0 hits on a sweep means the cache key is varying
/// when it should not (or the sweep genuinely shares nothing).
inline void sweep_summary(int jobs) {
  const workload::TraceCache& cache = workload::TraceCache::global();
  std::printf(
      "\n[sweep] workers: %d of %u hardware threads; trace cache: %" PRIu64
      " hits / %" PRIu64 " misses (%zu streams resident, %.1f MiB)\n",
      jobs, std::thread::hardware_concurrency(), cache.hits(),
      cache.misses(), cache.entries(),
      static_cast<double>(cache.resident_bytes()) / (1024.0 * 1024.0));
}

/// Peak resident set size of this process so far, in bytes (VmHWM from
/// /proc/self/status — the kernel's high-water mark, which survives
/// frees). 0 on platforms without procfs. This is the ground truth the
/// model-level live_state_bytes accounting is judged against.
inline std::size_t peak_rss_bytes() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  std::size_t kib = 0;
  char line[256];
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::sscanf(line, "VmHWM: %zu kB", &kib) == 1) break;
  }
  std::fclose(f);
  return kib * 1024;
}

/// Writes the execution-environment fields every BENCH_*.json record
/// carries (trailing comma included): the machine's hardware concurrency,
/// the worker count actually used, the process's peak RSS at write time,
/// the trace-cache counters (how much stream/checkpoint regeneration the
/// memoization absorbed, and what it holds resident), and a UTC timestamp.
/// PR 1's record was taken on a 1-core box with no way to tell from the
/// JSON — these fields make perf records comparable across machines and
/// time.
///
/// Pass include_trace_cache = false when this process's global cache saw
/// no traffic (e.g. micro_scale, whose measured runs happen in child
/// processes with their own caches): the block is then replaced by a note
/// pointing at the per-point stats, instead of an all-zero block that
/// reads as "the cache never hit".
inline void write_json_env_fields(std::FILE* f, int jobs_used,
                                  bool include_trace_cache = true) {
  char stamp[32] = "unknown";
  const std::time_t now = std::time(nullptr);
  std::tm utc{};
  if (gmtime_r(&now, &utc) != nullptr) {
    std::strftime(stamp, sizeof stamp, "%Y-%m-%dT%H:%M:%SZ", &utc);
  }
  std::fprintf(f,
               "  \"hardware_concurrency\": %u,\n"
               "  \"jobs_used\": %d,\n"
               "  \"peak_rss_bytes\": %zu,\n",
               std::thread::hardware_concurrency(), jobs_used,
               peak_rss_bytes());
  if (include_trace_cache) {
    const workload::TraceCache& cache = workload::TraceCache::global();
    std::fprintf(f,
                 "  \"trace_cache\": {\n"
                 "    \"hits\": %" PRIu64 ",\n"
                 "    \"misses\": %" PRIu64 ",\n"
                 "    \"checkpoint_hits\": %" PRIu64 ",\n"
                 "    \"checkpoint_misses\": %" PRIu64 ",\n"
                 "    \"draw_hits\": %" PRIu64 ",\n"
                 "    \"draw_misses\": %" PRIu64 ",\n"
                 "    \"spool_hits\": %" PRIu64 ",\n"
                 "    \"spool_misses\": %" PRIu64 ",\n"
                 "    \"entries\": %zu,\n"
                 "    \"resident_bytes\": %zu\n"
                 "  },\n",
                 cache.hits(), cache.misses(), cache.checkpoint_hits(),
                 cache.checkpoint_misses(), cache.draw_hits(),
                 cache.draw_misses(), cache.spool_hits(),
                 cache.spool_misses(), cache.entries(),
                 cache.resident_bytes());
  } else {
    std::fprintf(f,
                 "  \"trace_cache_note\": \"runs execute in isolated child "
                 "processes; see the per-point trace_cache stats\",\n");
  }
  std::fprintf(f, "  \"timestamp_utc\": \"%s\",\n", stamp);
}

/// Writes one parallel-speedup JSON field (trailing comma included). On a
/// single-hardware-thread machine a "speedup" of worker threads over one
/// thread measures only scheduling overhead — the 0.83 artifact an early
/// BENCH_sweep.json captured on a 1-core box — so the field is emitted as
/// null plus a <key>_note explaining why, instead of a misleading number.
inline void write_json_speedup_field(std::FILE* f, const char* key,
                                     double speedup) {
  if (std::thread::hardware_concurrency() <= 1) {
    std::fprintf(f,
                 "  \"%s\": null,\n"
                 "  \"%s_note\": \"single hardware thread: parallel speedup "
                 "is not measurable on this machine\",\n",
                 key, key);
  } else {
    std::fprintf(f, "  \"%s\": %.4f,\n", key, speedup);
  }
}

/// Runs `fn()` with top-level exception reporting; returns the process
/// exit code.
template <typename Fn>
int run_harness(Fn&& fn) {
  try {
    fn();
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}

}  // namespace rrsim::bench
