// Shared plumbing for the experiment harnesses in bench/: every binary
// regenerates one table or figure of the paper, prints the paper's rows
// as aligned text plus a CSV block, and accepts the common flags from
// rrsim/core/options.h plus --reps and --full (paper-scale repetitions).
#pragma once

#include <cstdio>
#include <exception>
#include <iostream>
#include <string>

#include "rrsim/core/campaign.h"
#include "rrsim/core/options.h"
#include "rrsim/core/paper.h"
#include "rrsim/util/cli.h"
#include "rrsim/util/table.h"

namespace rrsim::bench {

/// Repetition count: --reps wins; --full selects the paper's 50; otherwise
/// `quick_default`.
inline int repetitions(const util::Cli& cli, int quick_default) {
  if (cli.has("reps")) return static_cast<int>(cli.get_int("reps", 0));
  if (cli.get_bool("full", false)) return 50;
  return quick_default;
}

/// Prints the harness banner: what is being reproduced and with which
/// protocol, so the output is interpretable on its own.
inline void banner(const std::string& experiment, const std::string& claim,
                   int reps) {
  std::printf("=== %s ===\n", experiment.c_str());
  std::printf("%s\n", claim.c_str());
  std::printf("repetitions per data point: %d (use --full for the paper's "
              "50)\n\n",
              reps);
}

/// Runs `fn()` with top-level exception reporting; returns the process
/// exit code.
template <typename Fn>
int run_harness(Fn&& fn) {
  try {
    fn();
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}

}  // namespace rrsim::bench
