// Table 1: relative average stretch and relative CV of stretches for the
// HALF scheme at N = 10 clusters, for EASY / CBF / FCFS and for exact vs
// over-estimated ("real") runtime requests. Paper: all entries below 1
// (0.83-0.93).
//
//   ./table1_algorithms [--reps=3|--full] [--hours=2] [--seed=42] + common.
//   (Default window is 2 h: CBF's profile compression is quadratic in
//   queue depth, so the 6 h figure window is expensive under it.)

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace rrsim;
  return bench::run_harness([&] {
    const util::Cli cli(argc, argv);
    const int reps = bench::repetitions(cli, 3);
    bench::banner(
        "Table 1 - scheduling algorithms x runtime-estimate models",
        "HALF scheme, N=10; cells are relative to the NONE baseline; the\n"
        "paper reports 0.83-0.93 everywhere",
        reps);

    core::ExperimentConfig base = core::figure_config();
    base.submit_horizon = 2.0 * 3600.0;
    base = core::apply_common_flags(base, cli);
    base.scheme = core::RedundancyScheme::half();

    struct Row {
      sched::Algorithm algo;
      const char* label;
    };
    const Row rows[] = {{sched::Algorithm::kEasy, "EASY"},
                        {sched::Algorithm::kCbf, "CBF"},
                        {sched::Algorithm::kFcfs, "FCFS"}};
    struct Col {
      const char* estimator;
      const char* label;
    };
    const Col cols[] = {{"exact", "Exact"}, {"uniform216", "Real"}};

    util::Table table({"algorithm", "rel stretch (Exact)",
                       "rel stretch (Real)", "rel CV (Exact)",
                       "rel CV (Real)"});
    for (const Row& row : rows) {
      double stretch[2] = {0.0, 0.0};
      double cv[2] = {0.0, 0.0};
      for (int e = 0; e < 2; ++e) {
        core::ExperimentConfig c = base;
        c.algorithm = row.algo;
        c.estimator = cols[e].estimator;
        const core::RelativeMetrics rel =
            core::run_relative_campaign(c, reps);
        stretch[e] = rel.rel_avg_stretch;
        cv[e] = rel.rel_cv_stretch;
        std::fflush(stdout);
      }
      table.begin_row()
          .add(row.label)
          .add(stretch[0], 2)
          .add(stretch[1], 2)
          .add(cv[0], 2)
          .add(cv[1], 2);
    }
    table.print(std::cout);
  });
}
