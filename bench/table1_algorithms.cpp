// Table 1: relative average stretch and relative CV of stretches for the
// HALF scheme at N = 10 clusters, for EASY / CBF / FCFS and for exact vs
// over-estimated ("real") runtime requests. Paper: all entries below 1
// (0.83-0.93).
//
//   ./table1_algorithms [--reps=3|--full] [--hours=2] [--seed=42] + common.
//   (Default window is 2 h: CBF's profile compression is quadratic in
//   queue depth, so the 6 h figure window is expensive under it.)

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace rrsim;
  return bench::run_harness([&] {
    const util::Cli cli(argc, argv);
    const int reps = bench::repetitions(cli, 3);
    bench::banner(
        "Table 1 - scheduling algorithms x runtime-estimate models",
        "HALF scheme, N=10; cells are relative to the NONE baseline; the\n"
        "paper reports 0.83-0.93 everywhere",
        reps);

    core::ExperimentConfig base = core::figure_config();
    base.submit_horizon = 2.0 * 3600.0;
    base = core::apply_common_flags(base, cli);
    base.scheme = core::RedundancyScheme::half();

    struct Row {
      sched::Algorithm algo;
      const char* label;
    };
    const Row rows[] = {{sched::Algorithm::kEasy, "EASY"},
                        {sched::Algorithm::kCbf, "CBF"},
                        {sched::Algorithm::kFcfs, "FCFS"}};
    struct Col {
      const char* estimator;
      const char* label;
    };
    const Col cols[] = {{"exact", "Exact"}, {"uniform216", "Real"}};

    std::vector<std::vector<core::RelativeMetrics>> grid(
        3, std::vector<core::RelativeMetrics>(2));
    core::CampaignSweep sweep(reps);
    for (std::size_t i = 0; i < 3; ++i) {
      for (std::size_t e = 0; e < 2; ++e) {
        core::ExperimentConfig c = base;
        c.algorithm = rows[i].algo;
        c.estimator = cols[e].estimator;
        sweep.add_relative(c, [&grid, i, e](const core::RelativeMetrics& m) {
          grid[i][e] = m;
        });
      }
    }
    sweep.run();

    util::Table table({"algorithm", "rel stretch (Exact)",
                       "rel stretch (Real)", "rel CV (Exact)",
                       "rel CV (Real)"});
    for (std::size_t i = 0; i < 3; ++i) {
      table.begin_row()
          .add(rows[i].label)
          .add(grid[i][0].rel_avg_stretch, 2)
          .add(grid[i][1].rel_avg_stretch, 2)
          .add(grid[i][0].rel_cv_stretch, 2)
          .add(grid[i][1].rel_cv_stretch, 2);
    }
    table.print(std::cout);
    bench::sweep_summary(sweep.jobs());
  });
}
