// Extension (paper §2, option (iv)): moldable jobs submit redundant
// requests with *different node counts* to their own cluster's queue and
// keep whichever starts first — dodging the classic conundrum ("wait
// long for many nodes, or start sooner on few?") without choosing.
// The paper defers this option to future work; here it is measured on a
// single busy cluster with an Amdahl speedup model.
//
//   ./ext_moldable [--nodes=128] [--hours=6] [--shapes=3] [--seed=42]

#include <memory>

#include "bench_common.h"
#include "rrsim/grid/gateway.h"
#include "rrsim/grid/platform.h"
#include "rrsim/workload/calibrate.h"
#include "rrsim/workload/moldable.h"

int main(int argc, char** argv) {
  using namespace rrsim;
  return bench::run_harness([&] {
    const util::Cli cli(argc, argv);
    const int nodes = static_cast<int>(cli.get_int("nodes", 128));
    const double hours = cli.get_double("hours", 6.0);
    const int max_shapes = static_cast<int>(cli.get_int("shapes", 3));
    const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
    std::printf("=== Extension - moldable redundant requests (option iv) "
                "===\n");
    std::printf("one %d-node cluster at ~95%% load, EASY; each moldable job "
                "submits\nup to K shape variants (n, n/2, 2n, ...) to the "
                "same queue and keeps\nthe first to start\n\n", nodes);

    // One workload, replayed for each K so rows are directly comparable.
    util::Rng rng(seed);
    const workload::LublinParams params = workload::calibrate_params(
        workload::LublinParams{}, nodes, 0.95, rng);
    const workload::LublinModel model(params, nodes);
    util::Rng stream_rng(seed + 1);
    const workload::JobStream stream =
        model.generate_stream(stream_rng, hours * 3600.0);
    // Per-job parallel fractions (how well each job scales).
    util::Rng frac_rng(seed + 2);
    std::vector<double> parallel_fraction;
    parallel_fraction.reserve(stream.size());
    for (std::size_t i = 0; i < stream.size(); ++i) {
      parallel_fraction.push_back(frac_rng.uniform(0.5, 0.98));
    }

    // Each shape-count K is one custom work unit on the sweep pool; the
    // unit builds its own single-cluster world (the shared experiment
    // workspace models the paper's multi-cluster grid, not this one).
    struct Row {
      double avg_stretch = 0.0;
      double avg_turnaround = 0.0;
      double avg_wait = 0.0;
      double nodes_used = 0.0;
    };
    std::vector<Row> rows(static_cast<std::size_t>(max_shapes));
    core::CampaignSweep sweep(1);
    sweep.runner().add(
        max_shapes,
        [&stream, &parallel_fraction, &params, nodes](int unit) {
          const int k = unit + 1;
          des::Simulation sim;
          grid::Platform platform(
              sim, grid::homogeneous_configs(1, nodes, params),
              sched::Algorithm::kEasy);
          grid::Gateway gateway(sim, platform);
          std::vector<grid::GridJob> jobs;
          jobs.reserve(stream.size());
          grid::GridJobId id = 1;
          for (std::size_t i = 0; i < stream.size(); ++i) {
            const workload::AmdahlSpeedup speedup(parallel_fraction[i]);
            const auto shapes =
                workload::moldable_shapes(stream[i], speedup, nodes, k);
            grid::GridJob job;
            job.id = id++;
            job.origin = 0;
            job.spec = stream[i];
            job.targets.assign(shapes.size(), 0);
            job.redundant = shapes.size() > 1;
            for (const workload::JobShape& s : shapes) {
              workload::JobSpec spec;
              spec.nodes = s.nodes;
              spec.runtime = s.runtime;
              spec.requested_time = s.requested_time;
              job.replica_specs.push_back(spec);
            }
            jobs.push_back(std::move(job));
          }
          for (const grid::GridJob& job : jobs) {
            sim.schedule_at(job.spec.submit_time,
                            [&gateway, &job] { gateway.submit(job); },
                            des::Priority::kArrival);
          }
          sim.run();
          const auto m = metrics::compute_metrics(gateway.records());
          Row row;
          row.avg_stretch = m.avg_stretch;
          row.avg_turnaround = m.avg_turnaround;
          row.avg_wait = m.avg_wait;
          for (const auto& rec : gateway.records()) {
            row.nodes_used += rec.nodes;
          }
          row.nodes_used /=
              static_cast<double>(gateway.records().size());
          return row;
        },
        [&rows](int unit, Row row) {
          rows[static_cast<std::size_t>(unit)] = row;
        });
    sweep.run();

    util::Table table({"shape variants", "avg stretch", "avg turnaround (s)",
                       "avg wait (s)", "avg nodes used"});
    for (int k = 1; k <= max_shapes; ++k) {
      const Row& row = rows[static_cast<std::size_t>(k - 1)];
      table.begin_row()
          .add(static_cast<long long>(k))
          .add(row.avg_stretch, 2)
          .add(row.avg_turnaround, 0)
          .add(row.avg_wait, 0)
          .add(row.nodes_used, 1);
    }
    table.print(std::cout);
    bench::sweep_summary(sweep.jobs());
    std::printf("\n(stretch is measured against each job's *winning* shape "
                "runtime;\nmore variants = earlier starts, often on fewer "
                "nodes)\n");
  });
}
