// Table 3: heterogeneous platforms. N = 10 clusters whose sizes are drawn
// from {16, 32, 64, 128, 256} and whose job streams have per-cluster mean
// inter-arrival times drawn from the paper's [2, 20] s range (scaled by N
// onto the shared-load regime; see DESIGN.md). Jobs are sized to their
// origin cluster and replicas go only where they fit. Paper: redundancy
// is MORE beneficial than in the homogeneous case (stretch 0.63-0.83, CV
// 0.79-0.90), improving with the redundancy degree.
//
//   ./table3_heterogeneous [--reps=3|--full] [--seed=42] + common flags.

#include "bench_common.h"
#include "rrsim/util/rng.h"

int main(int argc, char** argv) {
  using namespace rrsim;
  return bench::run_harness([&] {
    const util::Cli cli(argc, argv);
    const int reps = bench::repetitions(cli, 3);
    bench::banner(
        "Table 3 - heterogeneous platforms (sizes 16..256, varied rates)",
        "N=10; values < 1 mean redundancy beneficial; the paper finds\n"
        "stronger gains than the homogeneous case (0.63-0.83)",
        reps);

    core::ExperimentConfig base =
        core::apply_common_flags(core::figure_config(), cli);

    // Platform drawn once from the experiment seed, as in the paper; the
    // repetitions vary the job streams on this platform. --iat-scale
    // multiplies the paper's [2, 20] s per-cluster inter-arrival draws;
    // the default of 2 keeps the mixed platform in the persistent-
    // queueing regime where the relative CV lands in the paper's band.
    const double iat_scale = cli.get_double("iat-scale", 2.0);
    util::Rng rng(base.seed ^ 0x7e7e7e7eULL);
    const int size_choices[] = {16, 32, 64, 128, 256};
    base.cluster_nodes.clear();
    base.cluster_mean_iat.clear();
    for (std::size_t i = 0; i < base.n_clusters; ++i) {
      base.cluster_nodes.push_back(size_choices[rng.below(5)]);
      base.cluster_mean_iat.push_back(rng.uniform(2.0, 20.0) * iat_scale);
    }
    std::printf("platform:");
    for (std::size_t i = 0; i < base.n_clusters; ++i) {
      std::printf(" %d@%.0fs", base.cluster_nodes[i],
                  base.cluster_mean_iat[i]);
    }
    std::printf("\n\n");

    const std::vector<std::string> schemes{"R2", "R3", "R4", "HALF", "ALL"};
    std::vector<core::RelativeMetrics> results(schemes.size());
    core::CampaignSweep sweep(reps);
    for (std::size_t j = 0; j < schemes.size(); ++j) {
      core::ExperimentConfig c = base;
      c.scheme = core::RedundancyScheme::parse(schemes[j]);
      sweep.add_relative(c, [&results, j](const core::RelativeMetrics& m) {
        results[j] = m;
      });
    }
    sweep.run();

    util::Table table(
        {"scheme", "Relative Average Stretch", "Relative C.V. of Stretches"});
    for (std::size_t j = 0; j < schemes.size(); ++j) {
      table.begin_row()
          .add(schemes[j])
          .add(results[j].rel_avg_stretch, 2)
          .add(results[j].rel_cv_stretch, 2);
    }
    table.print(std::cout);
    bench::sweep_summary(sweep.jobs());
  });
}
