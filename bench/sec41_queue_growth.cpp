// Section 4.1's two queue-population observations:
//  (1) at the model's literal peak arrival rate a cluster's queue grows by
//      several hundred jobs per hour (the paper quotes ~700/hour);
//  (2) in steady state, the ALL redundancy scheme's maximum queue size is
//      barely larger than with no redundancy (paper: < 2% at N=10 over
//      24 h) because replicas are cancelled as soon as their job starts.
//
//   ./sec41_queue_growth [--hours=4] [--seed=9] + common flags.

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace rrsim;
  return bench::run_harness([&] {
    const util::Cli cli(argc, argv);
    std::printf("=== Section 4.1 - queue growth and redundancy's effect on "
                "queue size ===\n\n");

    // (1) Peak-rate growth, no redundancy.
    {
      core::ExperimentConfig c;
      c.n_clusters = 3;
      c.load_mode = core::LoadMode::kPerClusterPeak;
      c.submit_horizon = cli.get_double("hours", 4.0) * 3600.0;
      c.drain = false;
      c.truncate_factor = 1.0;
      c.seed = static_cast<std::uint64_t>(cli.get_int("seed", 9));
      const core::SimResult r = core::run_experiment(c);
      util::Table table({"cluster", "queue growth (jobs/hour)"});
      double avg = 0.0;
      for (std::size_t i = 0; i < c.n_clusters; ++i) {
        table.begin_row()
            .add(static_cast<long long>(i))
            .add(r.queue_growth_per_hour[i], 0);
        avg += r.queue_growth_per_hour[i];
      }
      table.print(std::cout, false);
      std::printf("average growth: %.0f jobs/hour (paper: ~700 at the 5 s "
                  "peak rate)\n\n",
                  avg / static_cast<double>(c.n_clusters));
    }

    // (2) Steady-state max queue size, ALL vs NONE.
    {
      core::ExperimentConfig c = core::figure_config();
      c.load_mode = core::LoadMode::kCalibrated;
      c.target_utilization = 0.7;
      c.submit_horizon = 24.0 * 3600.0;
      c.queue_sample_interval = 300.0;
      c.seed = static_cast<std::uint64_t>(cli.get_int("seed", 9));
      c = core::apply_common_flags(c, cli);
      core::ExperimentConfig all = c;
      all.scheme = core::RedundancyScheme::all();
      const core::SimResult r_none = core::run_experiment(c);
      const core::SimResult r_all = core::run_experiment(all);
      util::Table table({"scheme", "avg max queue size", "replica submits",
                         "cancellations"});
      table.begin_row()
          .add("NONE")
          .add(r_none.avg_max_queue, 1)
          .add(static_cast<long long>(r_none.ops.submits))
          .add(static_cast<long long>(r_none.gateway_cancels));
      table.begin_row()
          .add("ALL")
          .add(r_all.avg_max_queue, 1)
          .add(static_cast<long long>(r_all.ops.submits))
          .add(static_cast<long long>(r_all.gateway_cancels));
      table.print(std::cout, false);
      const double rel =
          r_none.avg_max_queue > 0.0
              ? (r_all.avg_max_queue / r_none.avg_max_queue - 1.0) * 100.0
              : 0.0;
      std::printf("ALL vs NONE max queue: %+.0f%% (paper: < +2%% in steady "
                  "state; despite %.0fx more submissions, cancellations keep "
                  "the standing queue small)\n",
                  rel,
                  static_cast<double>(r_all.ops.submits) /
                      static_cast<double>(r_none.ops.submits));
    }
  });
}
