// Section 4.1's two queue-population observations:
//  (1) at the model's literal peak arrival rate a cluster's queue grows by
//      several hundred jobs per hour (the paper quotes ~700/hour);
//  (2) in steady state, the ALL redundancy scheme's maximum queue size is
//      barely larger than with no redundancy (paper: < 2% at N=10 over
//      24 h) because replicas are cancelled as soon as their job starts.
//
//   ./sec41_queue_growth [--hours=4] [--seed=9] + common flags.

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace rrsim;
  return bench::run_harness([&] {
    const util::Cli cli(argc, argv);
    std::printf("=== Section 4.1 - queue growth and redundancy's effect on "
                "queue size ===\n\n");

    // All three runs (peak-rate growth + the ALL/NONE steady-state pair)
    // go through one sweep pool as independent single-run units.
    core::ExperimentConfig peak;
    peak.n_clusters = 3;
    peak.load_mode = core::LoadMode::kPerClusterPeak;
    peak.submit_horizon = cli.get_double("hours", 4.0) * 3600.0;
    peak.drain = false;
    peak.truncate_factor = 1.0;
    peak.seed = static_cast<std::uint64_t>(cli.get_int("seed", 9));

    core::ExperimentConfig steady = core::figure_config();
    steady.load_mode = core::LoadMode::kCalibrated;
    steady.target_utilization = 0.7;
    steady.submit_horizon = 24.0 * 3600.0;
    steady.queue_sample_interval = 300.0;
    steady.seed = static_cast<std::uint64_t>(cli.get_int("seed", 9));
    steady = core::apply_common_flags(steady, cli);
    core::ExperimentConfig steady_all = steady;
    steady_all.scheme = core::RedundancyScheme::all();

    core::SimResult r_peak;
    core::SimResult r_none;
    core::SimResult r_all;
    core::CampaignSweep sweep(1);
    const auto queue_run = [&sweep](const core::ExperimentConfig& c,
                                    core::SimResult& out) {
      sweep.runner().add(
          1,
          [c](int) {
            return core::run_experiment(c, core::thread_workspace());
          },
          [&out](int, core::SimResult r) { out = std::move(r); });
    };
    queue_run(peak, r_peak);
    queue_run(steady, r_none);
    queue_run(steady_all, r_all);
    sweep.run();

    // (1) Peak-rate growth, no redundancy.
    {
      util::Table table({"cluster", "queue growth (jobs/hour)"});
      double avg = 0.0;
      for (std::size_t i = 0; i < peak.n_clusters; ++i) {
        table.begin_row()
            .add(static_cast<long long>(i))
            .add(r_peak.queue_growth_per_hour[i], 0);
        avg += r_peak.queue_growth_per_hour[i];
      }
      table.print(std::cout, false);
      std::printf("average growth: %.0f jobs/hour (paper: ~700 at the 5 s "
                  "peak rate)\n\n",
                  avg / static_cast<double>(peak.n_clusters));
    }

    // (2) Steady-state max queue size, ALL vs NONE.
    {
      util::Table table({"scheme", "avg max queue size", "replica submits",
                         "cancellations"});
      table.begin_row()
          .add("NONE")
          .add(r_none.avg_max_queue, 1)
          .add(static_cast<long long>(r_none.ops.submits))
          .add(static_cast<long long>(r_none.gateway_cancels));
      table.begin_row()
          .add("ALL")
          .add(r_all.avg_max_queue, 1)
          .add(static_cast<long long>(r_all.ops.submits))
          .add(static_cast<long long>(r_all.gateway_cancels));
      table.print(std::cout, false);
      const double rel =
          r_none.avg_max_queue > 0.0
              ? (r_all.avg_max_queue / r_none.avg_max_queue - 1.0) * 100.0
              : 0.0;
      std::printf("ALL vs NONE max queue: %+.0f%% (paper: < +2%% in steady "
                  "state; despite %.0fx more submissions, cancellations keep "
                  "the standing queue small)\n",
                  rel,
                  static_cast<double>(r_all.ops.submits) /
                      static_cast<double>(r_none.ops.submits));
    }
    bench::sweep_summary(sweep.jobs());
  });
}
